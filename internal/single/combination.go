package single

import (
	"pfcache/internal/core"
)

// Combination computes the schedule of the Combination algorithm of
// Corollary 2 of the paper: it runs Delay(d0) with d0 = BestDelay(F) if the
// analytic bound of Delay(d0) is smaller than the Theorem 1 bound of
// Aggressive for the instance's k and F, and the standard Aggressive strategy
// otherwise.  Its approximation ratio is therefore
// min{1 + F/(k + ceil(k/F) - 1), DelayUpperBound(d0, F)}, which tends to
// min{1 + F/(k + ceil(k/F) - 1), sqrt(3)}.
func Combination(in *core.Instance) (*core.Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	d0 := BestDelay(in.F)
	if DelayUpperBound(d0, in.F) < AggressiveUpperBound(in.K, in.F) {
		return Delay(in, d0)
	}
	return Aggressive(in)
}

// CombinationChoice reports which strategy Combination selects for a cache of
// size k and fetch time F, returning the delay parameter it would use and
// true when it picks Delay(d0), or 0 and false when it picks Aggressive.
func CombinationChoice(k, f int) (int, bool) {
	d0 := BestDelay(f)
	if DelayUpperBound(d0, f) < AggressiveUpperBound(k, f) {
		return d0, true
	}
	return 0, false
}
