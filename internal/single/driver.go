package single

import (
	"fmt"

	"pfcache/internal/core"
)

// ErrNotSingleDisk is returned when a single-disk algorithm is given a
// parallel-disk instance.
type ErrNotSingleDisk struct {
	Disks int
}

func (e *ErrNotSingleDisk) Error() string {
	return fmt.Sprintf("single: instance has %d disks; use package parallel", e.Disks)
}

// pendingFetch is a fetch that a policy has committed to but that starts only
// once its anchor has been reached (used by Delay, whose definition commits
// to a fetch before the position at which it is initiated).
type pendingFetch struct {
	anchor int
	block  core.BlockID
	evict  core.BlockID // NoBlock means "use a free cache location"
}

// driver simulates the single-disk system while a policy decides when to
// start fetches.  It mirrors the semantics of the executor in package sim but
// exposes the cache state to the policy at every decision point.  The fetches
// it emits, replayed through sim.Run, reproduce exactly the stall time the
// driver itself observes (this equivalence is asserted in the tests).
type driver struct {
	in *core.Instance
	ix *core.Index

	cache     map[core.BlockID]bool
	freeSlots int

	time      int
	served    int
	stall     int
	inflight  core.BlockID // NoBlock when the disk is idle
	busyUntil int

	pending    *pendingFetch
	noMoreWork bool // set by policies when no further fetch will ever be needed

	sched *core.Schedule
}

// policy decides, at a decision point (disk idle, no pending commitment),
// whether to commit to a fetch.  It returns nil when no fetch is initiated at
// this point.
type policy interface {
	decide(d *driver) *pendingFetch
}

func newDriver(in *core.Instance) (*driver, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if in.Disks != 1 {
		return nil, &ErrNotSingleDisk{Disks: in.Disks}
	}
	d := &driver{
		in:        in,
		ix:        core.NewIndex(in.Seq),
		cache:     make(map[core.BlockID]bool, in.K),
		freeSlots: in.K - len(in.InitialCache),
		inflight:  core.NoBlock,
		sched:     &core.Schedule{},
	}
	for _, b := range in.InitialCache {
		d.cache[b] = true
	}
	return d, nil
}

// cachedBlocks returns the blocks currently resident (excluding the in-flight
// block).
func (d *driver) cachedBlocks() []core.BlockID {
	out := make([]core.BlockID, 0, len(d.cache))
	for b := range d.cache {
		out = append(out, b)
	}
	return out
}

// nextMissing returns the position of the next request at or after pos whose
// block is neither cached, in flight, nor the block of the pending fetch.  It
// returns -1 if every remaining request is covered.
func (d *driver) nextMissing(pos int) int {
	for p := pos; p < d.in.N(); p++ {
		b := d.in.Seq[p]
		if d.cache[b] || b == d.inflight {
			continue
		}
		if d.pending != nil && d.pending.block == b {
			continue
		}
		return p
	}
	return -1
}

// run drives the simulation to completion using the given policy and returns
// the emitted schedule.
func (d *driver) run(p policy) (*core.Schedule, error) {
	n := d.in.N()
	for d.served < n {
		// Deliver a completed fetch.
		if d.inflight != core.NoBlock && d.time >= d.busyUntil {
			d.cache[d.inflight] = true
			d.inflight = core.NoBlock
		}
		// Ask the policy for a decision when the disk is idle and no fetch is
		// already committed.
		if d.inflight == core.NoBlock && d.pending == nil && !d.noMoreWork {
			d.pending = p.decide(d)
		}
		// Start the committed fetch once its anchor has been reached.
		if d.pending != nil && d.inflight == core.NoBlock && d.served >= d.pending.anchor {
			pf := d.pending
			d.pending = nil
			if pf.evict != core.NoBlock {
				if !d.cache[pf.evict] {
					return nil, fmt.Errorf("single: policy evicted absent block %v at request %d", pf.evict, d.served)
				}
				delete(d.cache, pf.evict)
			} else {
				if d.freeSlots <= 0 {
					return nil, fmt.Errorf("single: policy used a free cache location but none is available at request %d", d.served)
				}
				d.freeSlots--
			}
			d.inflight = pf.block
			d.busyUntil = d.time + d.in.F
			d.sched.Append(core.NewFetch(0, pf.anchor, pf.block, pf.evict))
		}
		b := d.in.Seq[d.served]
		switch {
		case d.cache[b]:
			d.time++
			d.served++
		case d.inflight != core.NoBlock:
			// Stall until the in-flight fetch completes (whether or not it
			// delivers b; if it does not, the next decision point handles b).
			d.stall += d.busyUntil - d.time
			d.time = d.busyUntil
		default:
			return nil, fmt.Errorf("single: request %d block %v is missing but the policy did not fetch it", d.served, b)
		}
	}
	return d.sched, nil
}
