package single

import (
	"math"
	"math/rand"
	"testing"

	"pfcache/internal/core"
	"pfcache/internal/paging"
	"pfcache/internal/sim"
	"pfcache/internal/workload"
)

// introInstance is the single-disk worked example from the paper's
// introduction: sigma = b1 b2 b3 b4 b4 b5 b1 b4 b4 b2, k = 4, F = 4, with
// b1..b4 initially cached (blocks renumbered from 0).
func introInstance() *core.Instance {
	seq := core.Sequence{0, 1, 2, 3, 3, 4, 0, 3, 3, 1}
	return core.SingleDisk(seq, 4, 4).WithInitialCache(0, 1, 2, 3)
}

func mustRun(t *testing.T, in *core.Instance, sched *core.Schedule) *sim.Result {
	t.Helper()
	res, err := sim.Run(in, sched, sim.Options{})
	if err != nil {
		t.Fatalf("schedule infeasible: %v\n%v", err, sched)
	}
	return res
}

// TestAggressiveIntroExample checks that Aggressive reproduces the first
// schedule discussed in the paper's introduction: it fetches b5 as soon as it
// can evict a block not requested before b5 (after serving b1, evicting b1),
// which leads to elapsed time 13.
func TestAggressiveIntroExample(t *testing.T) {
	in := introInstance()
	sched, err := Aggressive(in)
	if err != nil {
		t.Fatalf("Aggressive: %v", err)
	}
	res := mustRun(t, in, sched)
	if res.Elapsed != 13 || res.Stall != 3 {
		t.Fatalf("Aggressive elapsed=%d stall=%d, want 13 and 3\n%v", res.Elapsed, res.Stall, sched)
	}
	// The first fetch must start at the request to b2 and evict b1.
	f := sched.Fetches[0]
	if f.After != 1 || f.Block != 4 || f.Evict != 0 {
		t.Fatalf("first Aggressive fetch = %v, want +b4 -b0 at anchor 1", f)
	}
}

// TestConservativeIntroExample checks Conservative on the same example: MIN
// faults once (on b5) and evicts b3, the cached block that is never requested
// again; the fetch starts right after the last reference to b3, giving
// elapsed time 12.
func TestConservativeIntroExample(t *testing.T) {
	in := introInstance()
	sched, err := Conservative(in)
	if err != nil {
		t.Fatalf("Conservative: %v", err)
	}
	if sched.Len() != 1 {
		t.Fatalf("Conservative fetch count = %d, want 1\n%v", sched.Len(), sched)
	}
	f := sched.Fetches[0]
	if f.Block != 4 || f.Evict != 2 || f.After != 3 {
		t.Fatalf("Conservative fetch = %v, want +b4 -b2 at anchor 3", f)
	}
	res := mustRun(t, in, sched)
	if res.Elapsed != 12 || res.Stall != 2 {
		t.Fatalf("Conservative elapsed=%d stall=%d, want 12 and 2", res.Elapsed, res.Stall)
	}
}

// TestDelayOneIntroExample checks that Delay(1) finds the better schedule of
// the introduction (elapsed time 11): by looking one request ahead it evicts
// a block whose next reference is late and delays the fetch accordingly.
func TestDelayOneIntroExample(t *testing.T) {
	in := introInstance()
	sched, err := Delay(in, 1)
	if err != nil {
		t.Fatalf("Delay: %v", err)
	}
	res := mustRun(t, in, sched)
	if res.Elapsed != 11 || res.Stall != 1 {
		t.Fatalf("Delay(1) elapsed=%d stall=%d, want 11 and 1\n%v", res.Elapsed, res.Stall, sched)
	}
}

// TestDelayZeroMatchesAggressiveOnIntro checks that Delay(0) behaves like
// Aggressive on the introduction example.
func TestDelayZeroMatchesAggressiveOnIntro(t *testing.T) {
	in := introInstance()
	a, err := Aggressive(in)
	if err != nil {
		t.Fatalf("Aggressive: %v", err)
	}
	d, err := Delay(in, 0)
	if err != nil {
		t.Fatalf("Delay(0): %v", err)
	}
	ra := mustRun(t, in, a)
	rd := mustRun(t, in, d)
	if ra.Elapsed != rd.Elapsed {
		t.Fatalf("Delay(0) elapsed %d != Aggressive elapsed %d", rd.Elapsed, ra.Elapsed)
	}
}

// TestDemandBaseline checks that the demand-paging baseline pays the full
// fetch time for every MIN fault.
func TestDemandBaseline(t *testing.T) {
	in := introInstance()
	sched, err := Demand(in, paging.PolicyMIN)
	if err != nil {
		t.Fatalf("Demand: %v", err)
	}
	res := mustRun(t, in, sched)
	faults := len(paging.MIN(in.Seq, in.K, in.InitialCache))
	if res.Stall != faults*in.F {
		t.Fatalf("demand stall = %d, want %d", res.Stall, faults*in.F)
	}
}

// TestDemandLRUAndFIFOFeasible checks the other demand baselines produce
// feasible schedules.
func TestDemandLRUAndFIFOFeasible(t *testing.T) {
	seq := workload.Uniform(200, 12, 3)
	in := core.SingleDisk(seq, 4, 5)
	for _, p := range []paging.Policy{paging.PolicyLRU, paging.PolicyFIFO} {
		sched, err := Demand(in, p)
		if err != nil {
			t.Fatalf("Demand(%v): %v", p, err)
		}
		res := mustRun(t, in, sched)
		faults := len(paging.Run(p, in.Seq, in.K, in.InitialCache))
		if res.Stall != faults*in.F {
			t.Fatalf("Demand(%v) stall = %d, want %d", p, res.Stall, faults*in.F)
		}
	}
}

// TestSingleDiskOnlyRejectsParallelInstances checks that all single-disk
// algorithms reject multi-disk instances.
func TestSingleDiskOnlyRejectsParallelInstances(t *testing.T) {
	seq := core.Sequence{0, 1}
	in := core.MultiDisk(seq, 2, 2, 2, map[core.BlockID]int{0: 0, 1: 1})
	if _, err := Aggressive(in); err == nil {
		t.Errorf("Aggressive accepted a multi-disk instance")
	}
	if _, err := Conservative(in); err == nil {
		t.Errorf("Conservative accepted a multi-disk instance")
	}
	if _, err := Delay(in, 1); err == nil {
		t.Errorf("Delay accepted a multi-disk instance")
	}
	if _, err := Demand(in, paging.PolicyMIN); err == nil {
		t.Errorf("Demand accepted a multi-disk instance")
	}
	var e *ErrNotSingleDisk
	if _, err := Aggressive(in); err != nil {
		e = err.(*ErrNotSingleDisk)
		if e.Error() == "" || e.Disks != 2 {
			t.Errorf("unexpected error detail: %v", e)
		}
	}
}

// TestInvalidInputs checks parameter validation.
func TestInvalidInputs(t *testing.T) {
	seq := core.Sequence{0}
	bad := core.SingleDisk(seq, 0, 1)
	if _, err := Aggressive(bad); err == nil {
		t.Errorf("Aggressive accepted an invalid instance")
	}
	if _, err := Conservative(bad); err == nil {
		t.Errorf("Conservative accepted an invalid instance")
	}
	if _, err := Combination(bad); err == nil {
		t.Errorf("Combination accepted an invalid instance")
	}
	if _, err := Demand(bad, paging.PolicyMIN); err == nil {
		t.Errorf("Demand accepted an invalid instance")
	}
	good := core.SingleDisk(seq, 1, 1)
	if _, err := Delay(good, -1); err == nil {
		t.Errorf("Delay accepted a negative delay")
	}
}

// TestAggressiveLowerBoundConstruction runs Aggressive and the optimal-style
// schedule implied by Theorem 2 on the adversarial instance and checks that
// Aggressive's elapsed time per phase matches the analysis: k + l + F time
// units for Aggressive versus k + l + 2 for the optimum.
func TestAggressiveLowerBoundConstruction(t *testing.T) {
	k, f, phases := 7, 4, 6
	in, err := workload.AggressiveAdversary(k, f, phases)
	if err != nil {
		t.Fatalf("AggressiveAdversary: %v", err)
	}
	l := (k - 1) / (f - 1)
	sched, err := Aggressive(in)
	if err != nil {
		t.Fatalf("Aggressive: %v", err)
	}
	res := mustRun(t, in, sched)
	// Per the Theorem 2 analysis Aggressive needs k + l + F time units per
	// phase; only the F-1 units of stall spent re-loading a1 at the start of
	// the (non-existent) phase after the last one are saved.
	wantAggr := phases*(k+l+f) - (f - 1)
	if res.Elapsed != wantAggr {
		t.Fatalf("Aggressive elapsed = %d, want %d (k=%d F=%d l=%d phases=%d)",
			res.Elapsed, wantAggr, k, f, l, phases)
	}
	// Conservative (MIN replacements, earliest start) realises the optimal
	// behaviour described in Theorem 2 on this instance: per phase it evicts
	// only the previous phase's blocks and pays 2 units of stall.
	cons, err := Conservative(in)
	if err != nil {
		t.Fatalf("Conservative: %v", err)
	}
	cres := mustRun(t, in, cons)
	wantOpt := phases * (k + l + 2)
	if cres.Elapsed > wantOpt {
		t.Fatalf("Conservative elapsed = %d, want at most %d", cres.Elapsed, wantOpt)
	}
	ratio := float64(res.Elapsed) / float64(cres.Elapsed)
	// The ratio must approach (k+l+F)/(k+l+2) as the number of phases grows;
	// with 6 phases it is already well above the trivial ratio 1 and below
	// the Theorem 1 upper bound.
	lower := float64(wantAggr) / float64(wantOpt)
	if ratio < lower-1e-9 {
		t.Fatalf("ratio = %f, want at least %f", ratio, lower)
	}
	if ratio > AggressiveUpperBound(k, f)+1e-9 {
		t.Fatalf("ratio = %f exceeds the Theorem 1 bound %f", ratio, AggressiveUpperBound(k, f))
	}
}

// TestBoundsFormulas spot-checks the analytic bounds.
func TestBoundsFormulas(t *testing.T) {
	// k=7, F=4: ceil(7/4)=2, bound = 1 + 4/(7+2-1) = 1.5.
	if got := AggressiveUpperBound(7, 4); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("AggressiveUpperBound(7,4) = %f, want 1.5", got)
	}
	// The refined bound is never worse than Cao et al.'s bound.
	for k := 1; k <= 40; k++ {
		for f := 1; f <= 40; f++ {
			refined := AggressiveUpperBound(k, f)
			cao := CaoAggressiveBound(k, f)
			if refined > cao+1e-12 {
				t.Fatalf("refined bound %f worse than Cao bound %f for k=%d F=%d", refined, cao, k, f)
			}
			lower := AggressiveLowerBound(k, f)
			if lower > refined+1e-9 {
				t.Fatalf("lower bound %f exceeds upper bound %f for k=%d F=%d", lower, refined, k, f)
			}
		}
	}
	if got := AggressiveUpperBound(0, 3); got != 1 {
		t.Errorf("degenerate AggressiveUpperBound = %f", got)
	}
	if got := CaoAggressiveBound(0, 3); got != 1 {
		t.Errorf("degenerate CaoAggressiveBound = %f", got)
	}
	if got := AggressiveLowerBound(3, 1); got != 1 {
		t.Errorf("degenerate AggressiveLowerBound = %f", got)
	}
	if got := ConservativeUpperBound(); got != 2 {
		t.Errorf("ConservativeUpperBound = %f", got)
	}
	if got := DelayUpperBound(0, 10); math.Abs(got-2) > 1e-12 {
		t.Errorf("DelayUpperBound(0,10) = %f, want 2 (Aggressive end of the spectrum)", got)
	}
	if got := DelayUpperBound(3, 0); got != 1 {
		t.Errorf("degenerate DelayUpperBound = %f", got)
	}
	// Corollary 1: with d0 = floor((sqrt(3)-1)/2*F) the bound tends to
	// sqrt(3); for F = 1000 it should be within 1% of sqrt(3).
	f := 1000
	d0 := BestDelay(f)
	if got := DelayUpperBound(d0, f); math.Abs(got-math.Sqrt(3)) > 0.01*math.Sqrt(3) {
		t.Errorf("DelayUpperBound(d0,%d) = %f, want about sqrt(3)", f, got)
	}
	// The minimum over d of the bound is attained near d0.
	best := math.Inf(1)
	bestD := -1
	for d := 0; d <= 3*f; d++ {
		if b := DelayUpperBound(d, f); b < best {
			best, bestD = b, d
		}
	}
	if math.Abs(float64(bestD-d0)) > 2 {
		t.Errorf("empirical best delay %d far from analytic d0 %d", bestD, d0)
	}
	if CombinationUpperBound(7, 4) > AggressiveUpperBound(7, 4)+1e-12 {
		t.Errorf("Combination bound worse than Aggressive bound")
	}
	if CombinationUpperBound(2, 1000) > DelayUpperBound(BestDelay(1000), 1000)+1e-12 {
		t.Errorf("Combination bound worse than Delay bound")
	}
}

// TestCombinationChoice checks that Combination picks Delay for small caches
// with large fetch times and Aggressive for large caches.
func TestCombinationChoice(t *testing.T) {
	if _, useDelay := CombinationChoice(4, 100); !useDelay {
		t.Errorf("Combination should pick Delay for k=4, F=100")
	}
	if _, useDelay := CombinationChoice(1000, 4); useDelay {
		t.Errorf("Combination should pick Aggressive for k=1000, F=4")
	}
	in := introInstance()
	if _, err := Combination(in); err != nil {
		t.Errorf("Combination: %v", err)
	}
}

// TestAllAlgorithmsFeasibleOnRandomWorkloads is the main robustness test: on
// random workloads of several shapes, every algorithm must produce a feasible
// schedule that uses no extra cache locations, and the driver's notion of
// elapsed time must match the executor's.
func TestAllAlgorithmsFeasibleOnRandomWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	type gen func(trial int) core.Sequence
	gens := map[string]gen{
		"uniform": func(trial int) core.Sequence {
			return workload.Uniform(80+rng.Intn(60), 4+rng.Intn(12), int64(trial))
		},
		"zipf": func(trial int) core.Sequence {
			return workload.Zipf(80+rng.Intn(60), 4+rng.Intn(12), 1.1, int64(trial))
		},
		"loop": func(trial int) core.Sequence {
			return workload.Loop(3+rng.Intn(10), 3+rng.Intn(6))
		},
		"phased": func(trial int) core.Sequence {
			return workload.Phased(3, 30, 6, 2, int64(trial))
		},
	}
	algos := Algorithms()
	algos = append(algos,
		Algorithm{Name: "delay:2", Run: func(in *core.Instance) (*core.Schedule, error) { return Delay(in, 2) }},
		Algorithm{Name: "delay:7", Run: func(in *core.Instance) (*core.Schedule, error) { return Delay(in, 7) }},
		Algorithm{Name: "delay:1000", Run: func(in *core.Instance) (*core.Schedule, error) { return Delay(in, 1000) }},
	)
	for name, g := range gens {
		for trial := 0; trial < 10; trial++ {
			seq := g(trial)
			k := 2 + rng.Intn(6)
			f := 1 + rng.Intn(8)
			in := core.SingleDisk(seq, k, f)
			for _, a := range algos {
				sched, err := a.Run(in)
				if err != nil {
					t.Fatalf("%s on %s trial %d: %v", a.Name, name, trial, err)
				}
				res, err := sim.Run(in, sched, sim.Options{})
				if err != nil {
					t.Fatalf("%s on %s trial %d: infeasible schedule: %v", a.Name, name, trial, err)
				}
				if res.ExtraCache != 0 {
					t.Fatalf("%s on %s trial %d: used %d extra cache locations", a.Name, name, trial, res.ExtraCache)
				}
				if res.Elapsed < in.N() {
					t.Fatalf("%s on %s trial %d: elapsed %d below n=%d", a.Name, name, trial, res.Elapsed, in.N())
				}
				// Every schedule must fetch at least the cold misses.
				if res.FetchCount < in.ColdMisses() {
					t.Fatalf("%s on %s trial %d: only %d fetches for %d cold misses",
						a.Name, name, trial, res.FetchCount, in.ColdMisses())
				}
			}
		}
	}
}

// TestRegistryByName exercises the name-based lookup.
func TestRegistryByName(t *testing.T) {
	in := introInstance()
	for _, name := range []string{
		"aggressive", "conservative", "combination", "delay:auto", "delay:3",
		"online:4", "demand-min", "demand-lru", "demand-fifo",
	} {
		a, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		sched, err := a.Run(in)
		if err != nil {
			t.Fatalf("%q run: %v", name, err)
		}
		mustRun(t, in, sched)
	}
	for _, name := range []string{"nope", "delay:x", "delay:-3", "online:0", "online:x"} {
		if _, err := ByName(name); err == nil {
			t.Errorf("ByName(%q) succeeded, want error", name)
		}
	}
	if len(Algorithms()) < 5 {
		t.Errorf("Algorithms() returned too few entries")
	}
}

// TestConservativeNeverExceedsTwiceDemandMIN sanity-checks a weak relative
// guarantee that follows from the definitions: Conservative performs exactly
// the MIN replacements, so its stall time is at most F times the number of
// MIN faults (the demand baseline's stall), and its elapsed time is at most
// the demand baseline's.
func TestConservativeNeverExceedsDemand(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		seq := workload.Uniform(60+rng.Intn(40), 5+rng.Intn(8), int64(trial))
		in := core.SingleDisk(seq, 2+rng.Intn(5), 1+rng.Intn(6))
		cons, err := Conservative(in)
		if err != nil {
			t.Fatalf("Conservative: %v", err)
		}
		dem, err := Demand(in, paging.PolicyMIN)
		if err != nil {
			t.Fatalf("Demand: %v", err)
		}
		rc := mustRun(t, in, cons)
		rd := mustRun(t, in, dem)
		if rc.Elapsed > rd.Elapsed {
			t.Fatalf("trial %d: Conservative elapsed %d > demand elapsed %d", trial, rc.Elapsed, rd.Elapsed)
		}
	}
}
