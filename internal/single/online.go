package single

import (
	"fmt"

	"pfcache/internal/core"
)

// OnlineAggressive is an online variant of the Aggressive algorithm with a
// bounded lookahead window, addressing the open problem raised in the paper's
// conclusion ("investigate online variants of the problem when only limited
// information about the future is available").
//
// The algorithm sees, at any decision point, only the next `lookahead`
// requests (including the current one).  Whenever the disk is idle it fetches
// the first block within the window that is missing from the cache, provided
// it can evict a block that is not requested within the window before that
// block; the victim is the cached block whose next reference within the
// window is furthest (blocks not referenced within the window at all are
// preferred, ties broken by block identity).  With lookahead >= n it behaves
// exactly like the offline Aggressive algorithm.
func OnlineAggressive(in *core.Instance, lookahead int) (*core.Schedule, error) {
	if lookahead < 1 {
		return nil, fmt.Errorf("single: OnlineAggressive needs a lookahead of at least 1, got %d", lookahead)
	}
	d, err := newDriver(in)
	if err != nil {
		return nil, err
	}
	return d.run(&onlineAggressivePolicy{lookahead: lookahead})
}

type onlineAggressivePolicy struct {
	lookahead int
}

// windowNext returns the next reference of block b within the visible window
// [pos, pos+lookahead), or core.NoRef if b is not referenced there.  Online
// algorithms must not peek beyond the window, so references further out are
// indistinguishable from "never again".
func (p *onlineAggressivePolicy) windowNext(dr *driver, b core.BlockID, pos int) int {
	ref := dr.ix.NextAt(b, pos)
	if ref == core.NoRef || ref >= pos+p.lookahead {
		return core.NoRef
	}
	return ref
}

func (p *onlineAggressivePolicy) decide(dr *driver) *pendingFetch {
	i := dr.served
	end := i + p.lookahead
	if end > dr.in.N() {
		end = dr.in.N()
	}
	// The next missing block visible in the window.
	j := -1
	for pos := i; pos < end; pos++ {
		b := dr.in.Seq[pos]
		if dr.cache[b] || b == dr.inflight {
			continue
		}
		if dr.pending != nil && dr.pending.block == b {
			continue
		}
		j = pos
		break
	}
	if j < 0 {
		// Nothing missing is visible; unlike the offline policy we must keep
		// looking as the window slides, so noMoreWork stays unset.
		return nil
	}
	b := dr.in.Seq[j]
	if dr.freeSlots > 0 {
		return &pendingFetch{anchor: i, block: b, evict: core.NoBlock}
	}
	// Victim: the cached block whose next visible reference is furthest
	// (not referenced within the window counts as furthest).
	victim := core.NoBlock
	victimRef := -1
	for _, c := range dr.cachedBlocks() {
		ref := p.windowNext(dr, c, i)
		if victim == core.NoBlock || ref > victimRef || (ref == victimRef && c < victim) {
			victim, victimRef = c, ref
		}
	}
	if victim == core.NoBlock || (victimRef != core.NoRef && victimRef < j) {
		// Every cached block is requested before the missing block within the
		// visible window: serve the current request and reconsider.
		return nil
	}
	return &pendingFetch{anchor: i, block: b, evict: victim}
}
