package single

import (
	"pfcache/internal/core"
)

// Aggressive computes the schedule of the Aggressive algorithm of Cao et al.
// on a single-disk instance.
//
// Whenever the disk is idle, Aggressive initiates a prefetch for the next
// missing block in the sequence, provided it can evict a cached block that is
// not requested before the block to be fetched; it evicts the cached block
// whose next reference is furthest in the future.  Theorem 1 of the paper
// shows that its elapsed time is at most min{1 + F/(k + ceil(k/F) - 1), 2}
// times optimal, and Theorem 2 shows this is asymptotically tight.
func Aggressive(in *core.Instance) (*core.Schedule, error) {
	d, err := newDriver(in)
	if err != nil {
		return nil, err
	}
	return d.run(aggressivePolicy{})
}

type aggressivePolicy struct{}

func (aggressivePolicy) decide(dr *driver) *pendingFetch {
	i := dr.served
	j := dr.nextMissing(i)
	if j < 0 {
		dr.noMoreWork = true
		return nil
	}
	b := dr.in.Seq[j]
	// A free cache location is never requested again, so it is always a legal
	// "eviction" choice and the fetch can start immediately.
	if dr.freeSlots > 0 {
		return &pendingFetch{anchor: i, block: b, evict: core.NoBlock}
	}
	victim, ref := dr.ix.FurthestNext(dr.cachedBlocks(), i)
	if victim == core.NoBlock {
		// Cannot happen: k >= 1 and freeSlots == 0 imply a non-empty cache.
		return nil
	}
	if ref < j {
		// Every cached block is requested again before r_j: initiating a
		// fetch now would evict a block needed earlier than the fetched one.
		return nil
	}
	return &pendingFetch{anchor: i, block: b, evict: victim}
}
