package single

import (
	"math/rand"
	"testing"

	"pfcache/internal/core"
	"pfcache/internal/sim"
	"pfcache/internal/workload"
)

// TestOnlineAggressiveValidation checks parameter validation.
func TestOnlineAggressiveValidation(t *testing.T) {
	in := core.SingleDisk(core.Sequence{0, 1}, 1, 1)
	if _, err := OnlineAggressive(in, 0); err == nil {
		t.Errorf("lookahead 0 accepted")
	}
	multi := core.MultiDisk(core.Sequence{0}, 1, 1, 2, map[core.BlockID]int{0: 0})
	if _, err := OnlineAggressive(multi, 4); err == nil {
		t.Errorf("multi-disk instance accepted")
	}
}

// TestOnlineAggressiveFullLookaheadMatchesOffline checks that with full
// lookahead the online algorithm coincides with offline Aggressive.
func TestOnlineAggressiveFullLookaheadMatchesOffline(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		seq := workload.Uniform(60, 4+rng.Intn(8), int64(trial))
		in := core.SingleDisk(seq, 2+rng.Intn(4), 1+rng.Intn(5))
		off, err := Aggressive(in)
		if err != nil {
			t.Fatalf("Aggressive: %v", err)
		}
		on, err := OnlineAggressive(in, in.N())
		if err != nil {
			t.Fatalf("OnlineAggressive: %v", err)
		}
		offRes, err := sim.Run(in, off, sim.Options{})
		if err != nil {
			t.Fatalf("offline schedule: %v", err)
		}
		onRes, err := sim.Run(in, on, sim.Options{})
		if err != nil {
			t.Fatalf("online schedule: %v", err)
		}
		if offRes.Elapsed != onRes.Elapsed {
			t.Fatalf("trial %d: full-lookahead online elapsed %d != offline %d",
				trial, onRes.Elapsed, offRes.Elapsed)
		}
	}
}

// TestOnlineAggressiveFeasibleForAllLookaheads checks feasibility and the
// broad benefit-of-lookahead trend: more lookahead never makes the mean
// elapsed time dramatically worse, and the demand-like behaviour of
// lookahead 1 is the worst case.
func TestOnlineAggressiveFeasibleForAllLookaheads(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		seq := workload.Zipf(80, 10, 1.1, int64(trial))
		in := core.SingleDisk(seq, 4, 1+rng.Intn(5))
		elapsedAt := func(w int) int {
			sched, err := OnlineAggressive(in, w)
			if err != nil {
				t.Fatalf("OnlineAggressive(%d): %v", w, err)
			}
			res, err := sim.Run(in, sched, sim.Options{})
			if err != nil {
				t.Fatalf("OnlineAggressive(%d): infeasible: %v", w, err)
			}
			if res.ExtraCache != 0 {
				t.Fatalf("OnlineAggressive(%d): used extra cache", w)
			}
			return res.Elapsed
		}
		demandLike := elapsedAt(1)
		full := elapsedAt(in.N())
		if full > demandLike {
			t.Fatalf("trial %d: full lookahead (%d) worse than lookahead 1 (%d)", trial, full, demandLike)
		}
		for _, w := range []int{2, 4, 8, 16, 32} {
			elapsedAt(w)
		}
	}
}

// TestOnlineAggressiveLookaheadOneIsDemandLike checks that with lookahead 1
// the algorithm can only react to the current request, so every fault costs
// the full fetch time, exactly like demand paging.
func TestOnlineAggressiveLookaheadOneIsDemandLike(t *testing.T) {
	seq := workload.Loop(6, 4)
	in := core.SingleDisk(seq, 3, 4)
	sched, err := OnlineAggressive(in, 1)
	if err != nil {
		t.Fatalf("OnlineAggressive: %v", err)
	}
	res, err := sim.Run(in, sched, sim.Options{})
	if err != nil {
		t.Fatalf("infeasible: %v", err)
	}
	if res.Stall%in.F != 0 {
		t.Fatalf("with lookahead 1 every fault should stall a full fetch time; stall=%d F=%d", res.Stall, in.F)
	}
	if res.Stall != res.FetchCount*in.F {
		t.Fatalf("stall %d != fetches %d * F %d", res.Stall, res.FetchCount, in.F)
	}
}
