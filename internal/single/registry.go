package single

import (
	"fmt"
	"strconv"
	"strings"

	"pfcache/internal/core"
	"pfcache/internal/paging"
)

// Func is a single-disk prefetching/caching algorithm: it maps an instance to
// a schedule.
type Func func(*core.Instance) (*core.Schedule, error)

// Algorithm pairs an algorithm with its display name, for use by the
// experiment harness and the command-line tools.
type Algorithm struct {
	// Name is the canonical name, e.g. "aggressive" or "delay:3".
	Name string
	// Run computes the algorithm's schedule.
	Run Func
}

// Algorithms returns the standard single-disk algorithm suite: Aggressive,
// Conservative, Delay(d0) for the instance-dependent best delay, Combination,
// and the demand-paging baselines.
func Algorithms() []Algorithm {
	return []Algorithm{
		{Name: "aggressive", Run: Aggressive},
		{Name: "conservative", Run: Conservative},
		{Name: "delay:auto", Run: func(in *core.Instance) (*core.Schedule, error) {
			return Delay(in, BestDelay(in.F))
		}},
		{Name: "combination", Run: Combination},
		{Name: "demand-min", Run: func(in *core.Instance) (*core.Schedule, error) {
			return Demand(in, paging.PolicyMIN)
		}},
		{Name: "demand-lru", Run: func(in *core.Instance) (*core.Schedule, error) {
			return Demand(in, paging.PolicyLRU)
		}},
	}
}

// BoundSeeds returns the algorithms whose schedules seed the branch-and-bound
// incumbent of the exact search in package opt: the three greedy strategies
// with provable approximation guarantees (Aggressive, Conservative and
// Delay(d0)).  Every schedule they produce is feasible, so its executed stall
// time is an upper bound on the optimal stall time.  The demand-paging
// baselines are omitted: they are never cheaper than Aggressive on any
// instance, so they cannot tighten the bound.
func BoundSeeds() []Algorithm {
	var out []Algorithm
	for _, name := range []string{"aggressive", "conservative", "delay:auto"} {
		a, err := ByName(name)
		if err != nil {
			continue // unreachable: the names above are registered
		}
		out = append(out, a)
	}
	return out
}

// ByName resolves an algorithm by name.  Recognised names are "aggressive",
// "conservative", "combination", "delay:auto", "delay:<d>" for a non-negative
// integer d, "online:<w>" (Aggressive with a lookahead window of w requests),
// "demand-min", "demand-lru" and "demand-fifo".
func ByName(name string) (Algorithm, error) {
	switch name {
	case "aggressive":
		return Algorithm{Name: name, Run: Aggressive}, nil
	case "conservative":
		return Algorithm{Name: name, Run: Conservative}, nil
	case "combination":
		return Algorithm{Name: name, Run: Combination}, nil
	case "delay:auto":
		return Algorithm{Name: name, Run: func(in *core.Instance) (*core.Schedule, error) {
			return Delay(in, BestDelay(in.F))
		}}, nil
	case "demand-min":
		return Algorithm{Name: name, Run: func(in *core.Instance) (*core.Schedule, error) {
			return Demand(in, paging.PolicyMIN)
		}}, nil
	case "demand-lru":
		return Algorithm{Name: name, Run: func(in *core.Instance) (*core.Schedule, error) {
			return Demand(in, paging.PolicyLRU)
		}}, nil
	case "demand-fifo":
		return Algorithm{Name: name, Run: func(in *core.Instance) (*core.Schedule, error) {
			return Demand(in, paging.PolicyFIFO)
		}}, nil
	}
	if rest, ok := strings.CutPrefix(name, "delay:"); ok {
		d, err := strconv.Atoi(rest)
		if err != nil || d < 0 {
			return Algorithm{}, fmt.Errorf("single: bad delay parameter in %q", name)
		}
		return Algorithm{Name: name, Run: func(in *core.Instance) (*core.Schedule, error) {
			return Delay(in, d)
		}}, nil
	}
	if rest, ok := strings.CutPrefix(name, "online:"); ok {
		w, err := strconv.Atoi(rest)
		if err != nil || w < 1 {
			return Algorithm{}, fmt.Errorf("single: bad lookahead parameter in %q", name)
		}
		return Algorithm{Name: name, Run: func(in *core.Instance) (*core.Schedule, error) {
			return OnlineAggressive(in, w)
		}}, nil
	}
	return Algorithm{}, fmt.Errorf("single: unknown algorithm %q", name)
}
