package single

import (
	"pfcache/internal/core"
	"pfcache/internal/paging"
)

// Conservative computes the schedule of the Conservative algorithm of Cao et
// al. on a single-disk instance.
//
// Conservative performs exactly the block replacements of the optimal offline
// paging algorithm MIN and initiates each fetch at the earliest point in time
// that is consistent with the chosen eviction, i.e. immediately after the
// last reference to the evicted block that precedes the faulting request
// (and, implicitly, not before the previous fetch has completed, since a
// single disk performs fetches sequentially).  Its elapsed time is at most
// twice optimal, and this bound is tight.
func Conservative(in *core.Instance) (*core.Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if in.Disks != 1 {
		return nil, &ErrNotSingleDisk{Disks: in.Disks}
	}
	ix := core.NewIndex(in.Seq)
	decisions := paging.MIN(in.Seq, in.K, in.InitialCache)
	sched := &core.Schedule{}
	for _, dec := range decisions {
		anchor := 0
		if dec.Victim != core.NoBlock {
			if last := ix.LastBefore(dec.Victim, dec.Pos); last >= 0 {
				anchor = last + 1
			}
		}
		sched.Append(core.NewFetch(0, anchor, dec.Block, dec.Victim))
	}
	return sched, nil
}

// Demand computes the schedule of the classical demand-paging baseline with
// the given replacement policy: a missing block is fetched only when it is
// requested, so every fault costs the full fetch time F in stall.  It is the
// "no prefetching" baseline against which the integrated algorithms are
// compared in the experiment harness.
func Demand(in *core.Instance, policy paging.Policy) (*core.Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if in.Disks != 1 {
		return nil, &ErrNotSingleDisk{Disks: in.Disks}
	}
	decisions := paging.Run(policy, in.Seq, in.K, in.InitialCache)
	sched := &core.Schedule{}
	for _, dec := range decisions {
		sched.Append(core.NewFetch(0, dec.Pos, dec.Block, dec.Victim))
	}
	return sched, nil
}
