// Package single implements the single-disk integrated prefetching and
// caching algorithms studied in Section 2 of the paper:
//
//   - Aggressive: whenever the disk is idle, start a prefetch for the next
//     missing block, provided some cached block is not requested before that
//     block; evict the cached block whose next reference is furthest in the
//     future.  Theorem 1 of the paper bounds its elapsed-time approximation
//     ratio by min{1 + F/(k + ceil(k/F) - 1), 2}.
//
//   - Conservative: perform exactly the block replacements of the optimal
//     offline paging algorithm MIN, starting each fetch at the earliest point
//     consistent with the chosen eviction.  Its approximation ratio is 2.
//
//   - Delay(d): the family introduced by the paper that bridges Aggressive
//     (d = 0) and Conservative (d = |sigma|): the next fetch is delayed so
//     that the victim chosen d requests ahead need not be given up early.
//     Theorem 3 bounds its ratio by max{(d+F)/F, (d+2F)/(d+F), 3(d+F)/(d+2F)},
//     which is minimised near d0 = floor((sqrt(3)-1)/2 * F) at sqrt(3).
//
//   - Combination: run Delay(d0) or Aggressive, whichever has the better
//     analytic bound for the instance's k and F (Corollary 2).
//
//   - Demand: the classical no-prefetching baseline that fetches a block only
//     when it is requested, with MIN, LRU or FIFO replacement.
//
// Every algorithm returns a core.Schedule; costs are obtained by executing
// the schedule with package sim.  All algorithms in this package require a
// single-disk instance; their parallel-disk counterparts live in package
// parallel.
package single
