package single

import "math"

// AggressiveUpperBound returns the elapsed-time approximation guarantee of
// the Aggressive algorithm proved in Theorem 1 of the paper:
// min{1 + F/(k + ceil(k/F) - 1), 2}.
func AggressiveUpperBound(k, f int) float64 {
	if k <= 0 || f <= 0 {
		return 1
	}
	ceil := (k + f - 1) / f
	r := 1 + float64(f)/float64(k+ceil-1)
	return math.Min(r, 2)
}

// CaoAggressiveBound returns the original, weaker bound of Cao et al. on the
// Aggressive algorithm: min{1 + F/k, 2}.  The experiment harness reports it
// next to the refined bound of Theorem 1.
func CaoAggressiveBound(k, f int) float64 {
	if k <= 0 || f <= 0 {
		return 1
	}
	return math.Min(1+float64(f)/float64(k), 2)
}

// AggressiveLowerBound returns the asymptotic lower bound of Theorem 2 on the
// approximation ratio of Aggressive: min{1 + F/(k + (k-1)/(F-1)), 2} for
// F > 1 (the bound degenerates to 1 for F <= 1).
func AggressiveLowerBound(k, f int) float64 {
	if f <= 1 || k <= 0 {
		return 1
	}
	r := 1 + float64(f)/(float64(k)+float64(k-1)/float64(f-1))
	return math.Min(r, 2)
}

// ConservativeUpperBound returns the approximation guarantee of the
// Conservative algorithm (2, shown by Cao et al. and tight).
func ConservativeUpperBound() float64 { return 2 }

// DelayUpperBound returns the elapsed-time approximation guarantee of
// Delay(d) proved in Theorem 3: max{(d+F)/F, (d+2F)/(d+F), 3(d+F)/(d+2F)}.
func DelayUpperBound(d, f int) float64 {
	if f <= 0 {
		return 1
	}
	df := float64(d)
	ff := float64(f)
	a := (df + ff) / ff
	b := (df + 2*ff) / (df + ff)
	c := 3 * (df + ff) / (df + 2*ff)
	return math.Max(a, math.Max(b, c))
}

// BestDelay returns d0 = floor((sqrt(3)-1)/2 * F), the delay for which the
// bound of Theorem 3 approaches sqrt(3) (Corollary 1).
func BestDelay(f int) int {
	return int(math.Floor((math.Sqrt(3) - 1) / 2 * float64(f)))
}

// CombinationUpperBound returns the guarantee of the Combination algorithm of
// Corollary 2: min{1 + F/(k + ceil(k/F) - 1), DelayUpperBound(BestDelay(F), F)},
// which tends to min{1 + F/(k + ceil(k/F) - 1), sqrt(3)} as F grows.
func CombinationUpperBound(k, f int) float64 {
	return math.Min(AggressiveUpperBound(k, f), DelayUpperBound(BestDelay(f), f))
}
