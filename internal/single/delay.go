package single

import (
	"fmt"

	"pfcache/internal/core"
)

// Delay computes the schedule of the Delay(d) algorithm introduced in
// Section 2 of the paper for a single-disk instance.
//
// Let r_i be the next request to be served and r_j the next request whose
// block is missing.  If every cached block is requested again before r_j,
// Delay serves r_i without initiating a fetch.  Otherwise it sets
// d' = min{d, j-i}, picks as eviction victim the cached block whose next
// request after r_{i+d'-1} is furthest in the future, and commits to fetching
// r_j's block at the earliest point after r_{i-1} at which the victim is not
// requested again before r_j.  For d = 0 the algorithm behaves like
// Aggressive; for d at least the sequence length it behaves like
// Conservative.  Theorem 3 bounds its elapsed-time approximation ratio by
// max{(d+F)/F, (d+2F)/(d+F), 3(d+F)/(d+2F)}.
func Delay(in *core.Instance, d int) (*core.Schedule, error) {
	if d < 0 {
		return nil, fmt.Errorf("single: Delay needs a non-negative delay, got %d", d)
	}
	dr, err := newDriver(in)
	if err != nil {
		return nil, err
	}
	return dr.run(&delayPolicy{d: d})
}

type delayPolicy struct {
	d int
}

func (p *delayPolicy) decide(dr *driver) *pendingFetch {
	i := dr.served
	j := dr.nextMissing(i)
	if j < 0 {
		dr.noMoreWork = true
		return nil
	}
	b := dr.in.Seq[j]
	// A free cache location is never requested, so the fetch may start now.
	if dr.freeSlots > 0 {
		return &pendingFetch{anchor: i, block: b, evict: core.NoBlock}
	}
	cached := dr.cachedBlocks()
	if _, furthest := dr.ix.FurthestNext(cached, i); furthest < j {
		// All blocks in cache are requested before r_j: serve r_i without
		// initiating a fetch and reconsider at the next request.
		return nil
	}
	dprime := p.d
	if j-i < dprime {
		dprime = j - i
	}
	victim, _ := dr.ix.FurthestNext(cached, i+dprime)
	anchor := i
	if last := dr.ix.LastBefore(victim, j); last >= i {
		anchor = last + 1
	}
	return &pendingFetch{anchor: anchor, block: b, evict: victim}
}
