// Package stats provides the small set of descriptive statistics used by the
// experiment harness: means, extrema and ratio summaries over repeated runs.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	Count  int
	Mean   float64
	Min    float64
	Max    float64
	Median float64
	StdDev float64
}

// Summarize computes a Summary of the values.  An empty sample yields a zero
// Summary.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	s := Summary{Count: len(values), Min: values[0], Max: values[0]}
	sum := 0.0
	for _, v := range values {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(len(values))
	varSum := 0.0
	for _, v := range values {
		d := v - s.Mean
		varSum += d * d
	}
	if len(values) > 1 {
		s.StdDev = math.Sqrt(varSum / float64(len(values)-1))
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f min=%.3f max=%.3f", s.Count, s.Mean, s.Min, s.Max)
}

// Ratio returns a/b, or 1 when both are zero and +Inf when only b is zero.
// Elapsed-time and stall-time ratios against an optimum of zero are handled
// this way throughout the harness.
func Ratio(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return a / b
}

// MaxFloat returns the maximum of the values (0 for an empty slice).
func MaxFloat(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	m := values[0]
	for _, v := range values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// MeanInt returns the mean of integer observations.
func MeanInt(values []int) float64 {
	if len(values) == 0 {
		return 0
	}
	sum := 0
	for _, v := range values {
		sum += v
	}
	return float64(sum) / float64(len(values))
}
