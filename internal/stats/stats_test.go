package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.Count != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.Median != 2.5 {
		t.Fatalf("unexpected summary %+v", s)
	}
	if math.Abs(s.StdDev-1.2909944487) > 1e-6 {
		t.Fatalf("stddev = %f", s.StdDev)
	}
	odd := Summarize([]float64{3, 1, 2})
	if odd.Median != 2 {
		t.Fatalf("median = %f", odd.Median)
	}
	empty := Summarize(nil)
	if empty.Count != 0 || empty.Mean != 0 {
		t.Fatalf("empty summary %+v", empty)
	}
	if s.String() == "" {
		t.Fatalf("empty String")
	}
	one := Summarize([]float64{7})
	if one.StdDev != 0 || one.Median != 7 {
		t.Fatalf("single-value summary %+v", one)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Errorf("Ratio(6,3) wrong")
	}
	if Ratio(0, 0) != 1 {
		t.Errorf("Ratio(0,0) should be 1")
	}
	if !math.IsInf(Ratio(1, 0), 1) {
		t.Errorf("Ratio(1,0) should be +Inf")
	}
}

func TestMaxFloatAndMeanInt(t *testing.T) {
	if MaxFloat(nil) != 0 {
		t.Errorf("MaxFloat(nil) wrong")
	}
	if MaxFloat([]float64{1, 5, 2}) != 5 {
		t.Errorf("MaxFloat wrong")
	}
	if MeanInt(nil) != 0 {
		t.Errorf("MeanInt(nil) wrong")
	}
	if MeanInt([]int{2, 4}) != 3 {
		t.Errorf("MeanInt wrong")
	}
}

// TestSummarizeProperties checks with testing/quick that the summary respects
// Min <= Median <= Max and Min <= Mean <= Max for arbitrary samples.
func TestSummarizeProperties(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = float64(v)
		}
		s := Summarize(vals)
		return s.Min <= s.Median+1e-9 && s.Median <= s.Max+1e-9 &&
			s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && s.Count == len(vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
