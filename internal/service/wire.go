package service

import (
	"pfcache/internal/lp"
	"pfcache/internal/opt"
	"pfcache/internal/report"
)

// WorkloadSpec describes a generated request sequence.  Kind selects the
// generator of package workload; the other fields parameterise it (unused
// fields are ignored by the selected kind).
type WorkloadSpec struct {
	// Kind is one of "uniform", "zipf", "scan", "loop", "phased",
	// "interleaved" or "mixed".
	Kind string `json:"kind"`
	// N is the number of requests (uniform, zipf, scan, interleaved, mixed).
	N int `json:"n,omitempty"`
	// Blocks is the number of distinct blocks (uniform, zipf, scan; the loop
	// length for "loop"; the random-region size for "mixed"; the per-phase
	// working-set size for "phased").
	Blocks int `json:"blocks,omitempty"`
	// S is the Zipf exponent ("zipf" only).
	S float64 `json:"s,omitempty"`
	// Seed seeds the random generators (uniform, zipf, phased, mixed).
	Seed int64 `json:"seed,omitempty"`
	// Repeats is the number of passes for "loop".
	Repeats int `json:"repeats,omitempty"`
	// Phases and PerPhase shape the "phased" workload; Overlap is the number
	// of blocks consecutive working sets share.
	Phases   int `json:"phases,omitempty"`
	PerPhase int `json:"per_phase,omitempty"`
	Overlap  int `json:"overlap,omitempty"`
	// Streams and StreamLen shape the "interleaved" workload.
	Streams   int `json:"streams,omitempty"`
	StreamLen int `json:"stream_len,omitempty"`
	// ScanBlocks and Burst shape the "mixed" workload.
	ScanBlocks int `json:"scan_blocks,omitempty"`
	Burst      int `json:"burst,omitempty"`
}

// ScheduleRequest asks the service for one schedule.  Exactly one instance
// source must be set: Instance (the pfcache text format), Seq (an explicit
// reference sequence) or Workload (a generated sequence).
type ScheduleRequest struct {
	// Strategy names the algorithm: any name accepted by single.ByName for
	// single-disk instances (aggressive, conservative, combination,
	// delay:auto, delay:<d>, online:<w>, demand-min, demand-lru,
	// demand-fifo), any name accepted by parallel.ByName (lp-optimal,
	// aggressive, conservative, demand), or "opt" for the exact search.
	Strategy string `json:"strategy"`

	// Instance is a whole instance in the pfcache text format ("pfcache-
	// instance v1"); when set it carries k, F, disks and the sequence, and
	// the fields below are ignored.
	Instance string `json:"instance,omitempty"`

	// Seq is an explicit reference sequence of block IDs.
	Seq []int `json:"seq,omitempty"`
	// Workload generates the reference sequence instead of Seq.
	Workload *WorkloadSpec `json:"workload,omitempty"`

	// K, F and Disks shape the instance built from Seq or Workload.
	K     int `json:"k,omitempty"`
	F     int `json:"f,omitempty"`
	Disks int `json:"disks,omitempty"`
	// Assign selects the block-to-disk assignment for Disks > 1: "stripe"
	// (default), "partition" or "random" (seeded by AssignSeed).
	Assign     string `json:"assign,omitempty"`
	AssignSeed int64  `json:"assign_seed,omitempty"`
	// InitialCache lists blocks resident before the first request.
	InitialCache []int `json:"initial_cache,omitempty"`

	// IncludeSchedule adds the fetch list to the response.
	IncludeSchedule bool `json:"include_schedule,omitempty"`
}

// FetchWire is one fetch operation of a schedule.  Block IDs are plain
// integers; -1 is "no block" (a fetch into a free cache location).
type FetchWire struct {
	Disk       int `json:"disk"`
	After      int `json:"after"`
	MinTime    int `json:"min_time,omitempty"`
	Block      int `json:"block"`
	Evict      int `json:"evict"`
	EvictAtEnd int `json:"evict_at_end"`
}

// LPInfo reports the linear-programming work behind an lp-optimal schedule.
type LPInfo struct {
	LowerBound  float64 `json:"lower_bound"`
	Integral    bool    `json:"integral"`
	Offset      float64 `json:"offset"`
	Variables   int     `json:"variables"`
	Constraints int     `json:"constraints"`
	Iterations  int     `json:"iterations"`
	Candidates  int     `json:"candidates"`
}

// OptInfo reports the exact-search work behind an opt schedule.
type OptInfo struct {
	Expanded          int    `json:"expanded"`
	Generated         int    `json:"generated"`
	PrunedByBound     int    `json:"pruned_by_bound"`
	DuplicateHits     int    `json:"duplicate_hits"`
	PrunedByDominance int    `json:"pruned_by_dominance"`
	LandmarkHits      int    `json:"landmark_hits"`
	PeakTable         int    `json:"peak_table"`
	SeedAlgorithm     string `json:"seed_algorithm,omitempty"`
	SeedStall         int    `json:"seed_stall"`
	SeedOptimal       bool   `json:"seed_optimal"`
}

// ScheduleResponse is the outcome of one schedule request.  Responses are
// deterministic functions of the request, so the cache can replay them
// byte-identically.
type ScheduleResponse struct {
	// Key is the canonical instance fingerprint (hex), the value the service
	// shards and caches by (combined with the strategy).
	Key      string `json:"key"`
	Strategy string `json:"strategy"`

	// Instance summary.
	N          int `json:"n"`
	K          int `json:"k"`
	F          int `json:"f"`
	Disks      int `json:"disks"`
	Blocks     int `json:"blocks"`
	ColdMisses int `json:"cold_misses"`

	// Executed cost of the schedule.
	Stall      int `json:"stall"`
	Elapsed    int `json:"elapsed"`
	FetchCount int `json:"fetch_count"`
	ExtraCache int `json:"extra_cache"`

	Schedule []FetchWire `json:"schedule,omitempty"`
	LP       *LPInfo     `json:"lp,omitempty"`
	Opt      *OptInfo    `json:"opt,omitempty"`

	// downgrades counts the cascade rungs the LP solve abandoned before
	// verifying.  Deliberately unexported: a recovered response must stay
	// byte-identical to a clean one on the wire, and the field only exists so
	// the shard layer can discard a solver that needed recovering.
	downgrades int
}

// SessionCreateRequest opens a planning session (POST /v1/session) over an
// instance described exactly like a one-shot schedule request.  Sessions
// serve the lp-optimal strategy (Strategy may be left empty).  Session
// optionally pins the session identifier — clients normally leave it empty
// and use the server-assigned ID, while a session-aware front tier sets it
// so a transcript replayed onto another backend keeps the client's handle.
type SessionCreateRequest struct {
	ScheduleRequest
	Session string `json:"session,omitempty"`
}

// SessionExtendRequest appends requests to a session's trace
// (POST /v1/session/{id}/extend) and asks for the re-planned schedule.
type SessionExtendRequest struct {
	// Requests are the appended block references, in order.  They must name
	// blocks of the session's instance (referenced or initially cached): a
	// block the built program has never seen would need a rebuild with a disk
	// assignment the session cannot invent, and is rejected as a client error.
	Requests []int `json:"requests"`

	// IncludeSchedule adds the fetch list to the response.
	IncludeSchedule bool `json:"include_schedule,omitempty"`
}

// SessionResponse answers a session create or extend: the session handle,
// the current trace length, and the schedule response for the full trace so
// far — assembled by the same code as a one-shot lp-optimal request for that
// trace.  Rebuilt reports that this answer came from a cold transcript
// replay (a numeric taint forced the session to discard its warm state); the
// result is the same either way, only the path to it differs.
type SessionResponse struct {
	Session string            `json:"session"`
	Length  int               `json:"length"`
	Rebuilt bool              `json:"rebuilt,omitempty"`
	Result  *ScheduleResponse `json:"result"`
}

// SessionCloseResponse answers DELETE /v1/session/{id}.  Closed is false
// when the session was already gone (closed, evicted or expired) — closing
// is idempotent, so that is a 200, not an error.
type SessionCloseResponse struct {
	Session string `json:"session"`
	Closed  bool   `json:"closed"`
}

// TableWire is the wire form of one experiment result table.  Its JSON tags
// are the stable BENCH_*.json trajectory format.
type TableWire struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Note    string     `json:"note,omitempty"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
	Seconds float64    `json:"seconds,omitempty"`
}

// Table converts the wire table back into a renderable report.Table; the
// experiment ID and title become the table title, mirroring how pcbench
// labels its text output.
func (t *TableWire) Table() *report.Table {
	return &report.Table{
		Title:   t.ID + ": " + t.Title,
		Note:    t.Note,
		Headers: t.Headers,
		Rows:    t.Rows,
	}
}

// LPCountersWire mirrors lp.Counters with the stable JSON names of the
// trajectory format.
type LPCountersWire struct {
	Solves           uint64 `json:"solves"`
	Iterations       uint64 `json:"iterations"`
	PricingPasses    uint64 `json:"pricing_passes"`
	Refactorizations uint64 `json:"refactorizations"`
	EtaColumns       uint64 `json:"eta_columns"`
	LUFills          uint64 `json:"lu_fills"`
	WarmStarts       uint64 `json:"warm_starts"`
	VerifiedSolves   uint64 `json:"verified_solves"`
	VerifyFailures   uint64 `json:"verify_failures"`
	CascadeFallbacks uint64 `json:"cascade_fallbacks"`
	SymbolicReuses   uint64 `json:"symbolic_reuses"`
	NumericRefactors uint64 `json:"numeric_refactors"`
	DualPivots       uint64 `json:"dual_pivots"`
	FTUpdates        uint64 `json:"ft_updates"`
}

// lpCountersWire converts an lp.Counters snapshot to its wire form.
func lpCountersWire(c lp.Counters) LPCountersWire {
	return LPCountersWire{
		Solves:           c.Solves,
		Iterations:       c.Iterations,
		PricingPasses:    c.PricingPasses,
		Refactorizations: c.Refactorizations,
		EtaColumns:       c.EtaColumns,
		LUFills:          c.LUFills,
		WarmStarts:       c.WarmStarts,
		VerifiedSolves:   c.VerifiedSolves,
		VerifyFailures:   c.VerifyFailures,
		CascadeFallbacks: c.CascadeFallbacks,
		SymbolicReuses:   c.SymbolicReuses,
		NumericRefactors: c.NumericRefactors,
		DualPivots:       c.DualPivots,
		FTUpdates:        c.FTUpdates,
	}
}

// optCountersWire converts an opt.Counters snapshot to its wire form.
func optCountersWire(c opt.Counters) OptCountersWire {
	return OptCountersWire{
		Searches:          c.Searches,
		Expanded:          c.Expanded,
		Generated:         c.Generated,
		PrunedByBound:     c.PrunedByBound,
		DuplicateHits:     c.DuplicateHits,
		PrunedByDominance: c.PrunedByDominance,
		LandmarkHits:      c.LandmarkHits,
		PeakTable:         c.PeakTable,
		Workers:           c.Workers,
		WorkerExpanded:    c.WorkerExpanded,
	}
}

// OptCountersWire mirrors opt.Counters with the stable JSON names of the
// trajectory format.
type OptCountersWire struct {
	Searches          uint64 `json:"searches"`
	Expanded          uint64 `json:"expanded"`
	Generated         uint64 `json:"generated"`
	PrunedByBound     uint64 `json:"pruned_by_bound"`
	DuplicateHits     uint64 `json:"duplicate_hits"`
	PrunedByDominance uint64 `json:"pruned_by_dominance"`
	LandmarkHits      uint64 `json:"landmark_hits"`
	PeakTable         uint64 `json:"peak_table"`
	Workers           uint64 `json:"workers"`
	WorkerExpanded    uint64 `json:"worker_expanded"`
}

// SweepRequest runs named experiments.  An empty IDs list runs the whole
// suite.
type SweepRequest struct {
	IDs []string `json:"ids,omitempty"`
	// Stable omits per-experiment wall times so repeated sweeps are
	// byte-identical (the -stable flag of pcbench).
	Stable bool `json:"stable,omitempty"`
	// Workers is the experiment pool size (0 = one per CPU, 1 = sequential).
	Workers int `json:"workers,omitempty"`
	// Solver selects the simplex implementation ("revised" or "flat";
	// default "revised").
	Solver string `json:"solver,omitempty"`
	// Pricing overrides the revised simplex's entering-column rule
	// ("steepest-edge" or "dantzig"); empty keeps the suite's pinned
	// reproduction rule (dantzig — see experiments.SolverPricing).
	Pricing string `json:"pricing,omitempty"`
	// Basis overrides the revised simplex's basis representation ("lu" or
	// "eta"); empty keeps the suite's pinned reproduction representation
	// (eta — see experiments.SolverBasis).
	Basis string `json:"basis,omitempty"`
}

// SweepResponse is the result of a sweep.  Its encoding (see EncodeSweep) is
// byte-identical to `pcbench -json` output for the same configuration.
type SweepResponse struct {
	Solver  string      `json:"solver"`
	Pricing string      `json:"pricing"`
	Basis   string      `json:"basis"`
	Results []TableWire `json:"results"`
	// Timings carries ns/op wall-clock figures for the named Go benchmarks
	// of this revision (scripts/bench.sh fills it via `pcbench -timings`).
	// It is informational: cmd/benchdiff never compares it.
	Timings map[string]float64 `json:"timings,omitempty"`
	LP      LPCountersWire     `json:"lp"`
	Opt     OptCountersWire    `json:"opt"`
}

// StatsResponse reports service-level counters (GET /v1/stats), including
// the process-wide LP-solver and exact-search counters — the same blocks
// `pcbench -json` embeds, so a live server's solver work is observable
// without running a sweep.
type StatsResponse struct {
	Shards       int    `json:"shards"`
	CacheEntries int    `json:"cache_entries"`
	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
	Coalesced    uint64 `json:"coalesced"`
	Evictions    uint64 `json:"evictions"`
	Computed     uint64 `json:"computed"`
	Sweeps       uint64 `json:"sweeps"`

	// Robustness counters: requests shed on a full shard queue (503s),
	// panics recovered into errors, requests abandoned by their client, and
	// requests that hit the server-side schedule deadline.
	Shed     uint64 `json:"shed"`
	Panics   uint64 `json:"panics"`
	Canceled uint64 `json:"canceled"`
	Timeouts uint64 `json:"timeouts"`
	Draining bool   `json:"draining"`

	// Session counters: live sessions, lifecycle events, sessions dropped by
	// the LRU bound or the idle TTL, and extensions that had to discard their
	// warm state and replay the transcript cold (session_rebuilds).
	Sessions           int    `json:"sessions"`
	SessionCreates     uint64 `json:"session_creates"`
	SessionExtends     uint64 `json:"session_extends"`
	SessionCloses      uint64 `json:"session_closes"`
	SessionEvictions   uint64 `json:"session_evictions"`
	SessionExpirations uint64 `json:"session_expirations"`
	SessionRebuilds    uint64 `json:"session_rebuilds"`

	// SolverResets counts shard solvers discarded after a numerical failure
	// (a solve that needed the verification cascade, a cascade exhaustion,
	// or a recovered panic): the next request on that shard starts from a
	// fresh solver instead of possibly-poisoned warm state.  The lp block's
	// verify_failures / cascade_fallbacks counters record the failures
	// themselves.
	SolverResets uint64 `json:"solver_resets"`

	LP  LPCountersWire  `json:"lp"`
	Opt OptCountersWire `json:"opt"`
}
