package service_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"pfcache/internal/faultinject"
	"pfcache/internal/lp"
	"pfcache/internal/service"
)

// sessionWire mirrors service.SessionResponse with the schedule response
// kept raw, so tests can compare it against the cold reference bytes.
type sessionWire struct {
	Session string          `json:"session"`
	Length  int             `json:"length"`
	Rebuilt bool            `json:"rebuilt"`
	Result  json.RawMessage `json:"result"`
}

// postJSON posts v and returns the status code and body.
func postJSON(t *testing.T, client *http.Client, url string, v any) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// createSession opens a session and fails the test on any error.
func createSession(t *testing.T, client *http.Client, base string, req *service.SessionCreateRequest) *sessionWire {
	t.Helper()
	status, body := postJSON(t, client, base+"/v1/session", req)
	if status != http.StatusOK {
		t.Fatalf("create session: status %d: %s", status, body)
	}
	var out sessionWire
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("create session: %v", err)
	}
	if out.Session == "" || out.Result == nil {
		t.Fatalf("create session: incomplete response %s", body)
	}
	return &out
}

// extendSession extends a session, returning the decoded response (nil
// unless the status is 200) alongside the raw status and body.
func extendSession(t *testing.T, client *http.Client, base, id string, blocks []int) (*sessionWire, int, []byte) {
	t.Helper()
	status, body := postJSON(t, client, base+"/v1/session/"+id+"/extend",
		&service.SessionExtendRequest{Requests: blocks, IncludeSchedule: true})
	if status != http.StatusOK {
		return nil, status, body
	}
	var out sessionWire
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("extend session: %v", err)
	}
	return &out, status, body
}

// closeSession closes a session and returns whether it was live.
func closeSession(t *testing.T, client *http.Client, base, id string) bool {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/session/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Closed bool `json:"closed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("close session: status %d", resp.StatusCode)
	}
	return out.Closed
}

// assertPlanEquivalent checks that a session-served plan agrees with the cold
// one-shot reference on everything the LP certifies: the instance header and
// every simulated cost (stall, elapsed, fetch count, extra cache) must be
// byte-identical, the LP bound must agree to float tolerance, and the program
// shape (variables, constraints) must match.  Vertex-dependent detail is
// deliberately NOT compared: a warm dual re-solve certifies the same optimal
// objective but may land on a different optimal vertex of a degenerate LP, so
// the extracted schedule's fetch issue times, the chosen timeline offset and
// the effort counters can legitimately differ between equal-cost plans.
func assertPlanEquivalent(t *testing.T, context string, gotRaw, wantRaw []byte) {
	t.Helper()
	var got, want map[string]any
	if err := json.Unmarshal(gotRaw, &got); err != nil {
		t.Errorf("%s: decoding session plan: %v", context, err)
		return
	}
	if err := json.Unmarshal(wantRaw, &want); err != nil {
		t.Errorf("%s: decoding cold reference: %v", context, err)
		return
	}
	// fetch_count, extra_cache and the schedule rows are deliberately absent
	// here: they describe the particular optimal vertex the solver reached,
	// not the certified cost.
	for _, field := range []string{
		"key", "strategy", "n", "k", "f", "disks", "blocks", "cold_misses",
		"stall", "elapsed",
	} {
		if !reflect.DeepEqual(got[field], want[field]) {
			t.Errorf("%s: %s = %v, cold reference has %v", context, field, got[field], want[field])
		}
	}
	gotLP, ok1 := got["lp"].(map[string]any)
	wantLP, ok2 := want["lp"].(map[string]any)
	if !ok1 || !ok2 {
		t.Errorf("%s: missing lp block (got %v, want %v)", context, ok1, ok2)
		return
	}
	gb, _ := gotLP["lower_bound"].(float64)
	wb, _ := wantLP["lower_bound"].(float64)
	if diff := math.Abs(gb - wb); diff > 1e-6*(1+math.Abs(wb)) {
		t.Errorf("%s: lp.lower_bound = %v, cold reference has %v", context, gb, wb)
	}
	for _, field := range []string{"variables", "constraints"} {
		if !reflect.DeepEqual(gotLP[field], wantLP[field]) {
			t.Errorf("%s: lp.%s = %v, cold reference has %v", context, field, gotLP[field], wantLP[field])
		}
	}
	_, gotSched := got["schedule"]
	_, wantSched := want["schedule"]
	if gotSched != wantSched {
		t.Errorf("%s: schedule present=%v, cold reference has present=%v", context, gotSched, wantSched)
	}
}

// coldReference computes the one-shot lp-optimal response for seq through
// the sequential reference path (no server, no warm state).
func coldReference(t *testing.T, seq []int, k, f, disks int) []byte {
	t.Helper()
	ref, err := service.ScheduleBody(&service.ScheduleRequest{
		Strategy: "lp-optimal", Seq: seq, K: k, F: f, Disks: disks,
		IncludeSchedule: true,
	}, lp.Options{})
	if err != nil {
		t.Fatalf("cold reference for %d requests: %v", len(seq), err)
	}
	return ref
}

// sessionBaseSeq is a deterministic mixed-locality trace over 6 blocks.
func sessionBaseSeq(n int, rng *rand.Rand) []int {
	seq := make([]int, n)
	for i := range seq {
		seq[i] = rng.Intn(6)
	}
	return seq
}

// TestSessionMatchesColdSolve drives a session through a series of
// extensions and checks every served plan against the cold one-shot solve of
// the same full trace: identical stalls, simulated costs and LP bounds.  This
// is the end-to-end guarantee behind the session API — the incremental path
// is an acceleration, never a worse answer (on a degenerate LP it may pick a
// different equal-cost optimal vertex, which assertPlanEquivalent allows).
func TestSessionMatchesColdSolve(t *testing.T) {
	const k, f, disks = 3, 4, 2
	rng := rand.New(rand.NewSource(42))
	seq := sessionBaseSeq(18, rng)

	srv := service.NewServer(service.Options{Shards: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	sess := createSession(t, ts.Client(), ts.URL, &service.SessionCreateRequest{
		ScheduleRequest: service.ScheduleRequest{
			Strategy: "lp-optimal", Seq: seq, K: k, F: f, Disks: disks,
			IncludeSchedule: true,
		},
	})
	if sess.Length != len(seq) {
		t.Fatalf("created session length = %d, want %d", sess.Length, len(seq))
	}
	assertPlanEquivalent(t, "create", sess.Result, coldReference(t, seq, k, f, disks))

	for step := 0; step < 8; step++ {
		ext := make([]int, 1+rng.Intn(2))
		for i := range ext {
			ext[i] = rng.Intn(6)
		}
		seq = append(seq, ext...)
		out, status, body := extendSession(t, ts.Client(), ts.URL, sess.Session, ext)
		if status != http.StatusOK {
			t.Fatalf("step %d: status %d: %s", step, status, body)
		}
		if out.Length != len(seq) {
			t.Fatalf("step %d: session length = %d, want %d", step, out.Length, len(seq))
		}
		if out.Rebuilt {
			t.Errorf("step %d: fault-free extension claims a rebuild", step)
		}
		assertPlanEquivalent(t, fmt.Sprintf("step %d", step), out.Result, coldReference(t, seq, k, f, disks))
	}

	stats := srv.Stats()
	if stats.SessionCreates != 1 || stats.SessionExtends != 8 {
		t.Errorf("session counters: creates=%d extends=%d, want 1/8", stats.SessionCreates, stats.SessionExtends)
	}
	if stats.SessionRebuilds != 0 {
		t.Errorf("session_rebuilds = %d without any fault", stats.SessionRebuilds)
	}
	if !closeSession(t, ts.Client(), ts.URL, sess.Session) {
		t.Error("closing a live session reported closed=false")
	}
}

// TestSessionLifecycleErrors covers the handle-management edges: unknown and
// closed sessions answer 404 (the signal a session-aware front replays on),
// closing is idempotent, extensions naming new blocks grow seq-sourced
// sessions through a transparent rebuild but are rejected for explicit
// instances (whose verbatim disk layout cannot be invented for new blocks),
// and non-lp strategies are refused at create.
func TestSessionLifecycleErrors(t *testing.T) {
	srv := service.NewServer(service.Options{Shards: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	if _, status, _ := extendSession(t, client, ts.URL, "nonexistent", []int{1}); status != http.StatusNotFound {
		t.Fatalf("extending an unknown session: status %d, want 404", status)
	}

	status, body := postJSON(t, client, ts.URL+"/v1/session", &service.SessionCreateRequest{
		ScheduleRequest: service.ScheduleRequest{Strategy: "aggressive", Seq: []int{0, 1, 2}, K: 2, F: 2},
	})
	if status != http.StatusBadRequest {
		t.Fatalf("non-lp session create: status %d (%s), want 400", status, body)
	}

	sess := createSession(t, client, ts.URL, &service.SessionCreateRequest{
		ScheduleRequest: service.ScheduleRequest{
			Strategy: "lp-optimal", Seq: []int{0, 1, 2, 0, 1, 2}, K: 2, F: 2,
		},
	})

	// Block 99 was never referenced: the model cannot grow in place, so the
	// seq-sourced session rebuilds transparently and keeps serving.
	out, status, body := extendSession(t, client, ts.URL, sess.Session, []int{99})
	if status != http.StatusOK || out.Length != 7 {
		t.Fatalf("new-block extension: status %d (%s), want a transparent rebuild", status, body)
	}
	if !out.Rebuilt {
		t.Error("new-block extension did not report rebuilt=true")
	}
	if st := srv.Stats(); st.SessionRebuilds == 0 {
		t.Error("new-block growth left no session_rebuilds counter")
	}
	if out, status, body := extendSession(t, client, ts.URL, sess.Session, []int{0}); status != http.StatusOK || out.Length != 8 || out.Rebuilt {
		t.Fatalf("known-block extension after growth: status %d rebuilt=%v (%s)", status, out != nil && out.Rebuilt, body)
	}

	// A session over an explicit instance has its disk layout given verbatim:
	// an extension naming a block outside that layout cannot be placed and is
	// rejected as a client error, without damaging the session.
	inst := createSession(t, client, ts.URL, &service.SessionCreateRequest{
		ScheduleRequest: service.ScheduleRequest{
			Strategy: "lp-optimal",
			Instance: "pfcache-instance v1\nk 2\nf 2\ndisks 2\ndisk 0 0\ndisk 1 1\ndisk 2 0\nseq 0 1 2 0 1 2\n",
		},
	})
	if _, status, body := extendSession(t, client, ts.URL, inst.Session, []int{99}); status != http.StatusUnprocessableEntity {
		t.Fatalf("unknown-block extension of an explicit instance: status %d (%s), want 422", status, body)
	}
	if out, status, body := extendSession(t, client, ts.URL, inst.Session, []int{0}); status != http.StatusOK || out.Length != 7 {
		t.Fatalf("extension after a rejected one: status %d (%s)", status, body)
	}

	if !closeSession(t, client, ts.URL, sess.Session) {
		t.Fatal("closing a live session reported closed=false")
	}
	if closeSession(t, client, ts.URL, sess.Session) {
		t.Fatal("double close reported closed=true")
	}
	if _, status, _ := extendSession(t, client, ts.URL, sess.Session, []int{0}); status != http.StatusNotFound {
		t.Fatalf("extending a closed session: status %d, want 404", status)
	}
}

// TestSessionEvictionAndTTL pins the two reclamation paths: the LRU bound
// drops the least-recently-used session, and an idle session past the TTL
// expires.  Both surface to clients as the same 404.
func TestSessionEvictionAndTTL(t *testing.T) {
	srv := service.NewServer(service.Options{Shards: 1, SessionEntries: 2, SessionTTL: 150 * time.Millisecond})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	mk := func() string {
		return createSession(t, client, ts.URL, &service.SessionCreateRequest{
			ScheduleRequest: service.ScheduleRequest{
				Strategy: "lp-optimal", Seq: []int{0, 1, 2, 0, 1, 2}, K: 2, F: 2,
			},
		}).Session
	}
	first, second, third := mk(), mk(), mk()
	if _, status, _ := extendSession(t, client, ts.URL, first, []int{0}); status != http.StatusNotFound {
		t.Fatalf("LRU-evicted session: status %d, want 404", status)
	}
	if st := srv.Stats(); st.SessionEvictions == 0 {
		t.Error("eviction left no session_evictions counter")
	}

	time.Sleep(300 * time.Millisecond)
	if _, status, _ := extendSession(t, client, ts.URL, second, []int{0}); status != http.StatusNotFound {
		t.Fatalf("TTL-expired session: status %d, want 404", status)
	}
	_ = third
	if st := srv.Stats(); st.SessionExpirations == 0 {
		t.Error("expiry left no session_expirations counter")
	}
}

// TestSessionHealsTaintByReplay injects numeric corruption into every
// solve's first cascade rung and extends a session through it: the served
// plan must still be cost-equivalent to the cold reference, with
// the recovery visible as rebuilt=true and a session_rebuilds counter —
// never as an error.  After the injector is gone the session serves warm
// again from its rebuilt state.
func TestSessionHealsTaintByReplay(t *testing.T) {
	const k, f, disks = 3, 3, 2
	seq := []int{0, 1, 2, 3, 4, 0, 1, 2, 5, 3, 0, 4, 1, 5, 2, 3}

	srv := service.NewServer(service.Options{Shards: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	sess := createSession(t, ts.Client(), ts.URL, &service.SessionCreateRequest{
		ScheduleRequest: service.ScheduleRequest{
			Strategy: "lp-optimal", Seq: seq, K: k, F: f, Disks: disks,
			IncludeSchedule: true,
		},
	})

	inj := faultinject.NewNumericInjector(1)
	inj.Install()
	seq = append(seq, 0)
	out, status, body := extendSession(t, ts.Client(), ts.URL, sess.Session, []int{0})
	inj.Uninstall()
	if status != http.StatusOK {
		t.Fatalf("extension under injected corruption: status %d: %s", status, body)
	}
	if inj.Miscomputes.Load() == 0 {
		t.Fatal("injector never corrupted a solve")
	}
	if !out.Rebuilt {
		t.Error("corrupted extension did not report rebuilt=true")
	}
	assertPlanEquivalent(t, "healed extension", out.Result, coldReference(t, seq, k, f, disks))
	if st := srv.Stats(); st.SessionRebuilds == 0 {
		t.Error("taint recovery left no session_rebuilds counter")
	}

	// The injector is gone: the rebuilt session serves clean warm extensions.
	seq = append(seq, 1)
	out, status, body = extendSession(t, ts.Client(), ts.URL, sess.Session, []int{1})
	if status != http.StatusOK {
		t.Fatalf("extension after recovery: status %d: %s", status, body)
	}
	if out.Rebuilt {
		t.Error("clean extension after recovery still reports rebuilt=true")
	}
	assertPlanEquivalent(t, "post-recovery extension", out.Result, coldReference(t, seq, k, f, disks))
}

// TestSessionsConcurrent exercises several sessions advancing concurrently
// (the -race coverage for the store and the per-shard pinning): every
// session's final plan must match the cold solve of its own full trace.
func TestSessionsConcurrent(t *testing.T) {
	const k, f, disks = 3, 3, 1
	srv := service.NewServer(service.Options{Shards: 4})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			seq := sessionBaseSeq(12+g, rng)
			body, err := json.Marshal(&service.SessionCreateRequest{
				ScheduleRequest: service.ScheduleRequest{
					Strategy: "lp-optimal", Seq: seq, K: k, F: f, Disks: disks,
					IncludeSchedule: true,
				},
			})
			if err != nil {
				errs <- err
				return
			}
			resp, err := ts.Client().Post(ts.URL+"/v1/session", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			raw, readErr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if readErr != nil {
				errs <- readErr
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("session %d: create status %d: %s", g, resp.StatusCode, raw)
				return
			}
			var sess sessionWire
			if err := json.Unmarshal(raw, &sess); err != nil {
				errs <- err
				return
			}
			var last json.RawMessage
			for step := 0; step < 4; step++ {
				ext := []int{rng.Intn(6)}
				seq = append(seq, ext...)
				ebody, err := json.Marshal(&service.SessionExtendRequest{Requests: ext, IncludeSchedule: true})
				if err != nil {
					errs <- err
					return
				}
				eresp, err := ts.Client().Post(ts.URL+"/v1/session/"+sess.Session+"/extend", "application/json", bytes.NewReader(ebody))
				if err != nil {
					errs <- err
					return
				}
				eraw, readErr := io.ReadAll(eresp.Body)
				eresp.Body.Close()
				if readErr != nil {
					errs <- readErr
					return
				}
				if eresp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("session %d step %d: extend status %d: %s", g, step, eresp.StatusCode, eraw)
					return
				}
				var out sessionWire
				if err := json.Unmarshal(eraw, &out); err != nil {
					errs <- err
					return
				}
				last = out.Result
			}
			ref, err := service.ScheduleBody(&service.ScheduleRequest{
				Strategy: "lp-optimal", Seq: seq, K: k, F: f, Disks: disks,
				IncludeSchedule: true,
			}, lp.Options{})
			if err != nil {
				errs <- err
				return
			}
			assertPlanEquivalent(t, fmt.Sprintf("session %d final plan", g), last, ref)
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
