package service

import (
	"fmt"

	"pfcache/internal/core"
	"pfcache/internal/workload"
)

// generate builds the request sequence described by the spec.  The workload
// generators panic on invalid parameters (they are library entry points with
// programmer-error semantics); the recover converts those panics into request
// errors so a malformed HTTP request cannot take the service down.
func generate(spec *WorkloadSpec) (seq core.Sequence, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("service: invalid workload spec: %v", r)
		}
	}()
	switch spec.Kind {
	case "uniform":
		return workload.Uniform(spec.N, spec.Blocks, spec.Seed), nil
	case "zipf":
		s := spec.S
		if s == 0 {
			s = 1.1
		}
		return workload.Zipf(spec.N, spec.Blocks, s, spec.Seed), nil
	case "scan":
		return workload.SequentialScan(spec.N, spec.Blocks), nil
	case "loop":
		return workload.Loop(spec.Blocks, spec.Repeats), nil
	case "phased":
		return workload.Phased(spec.Phases, spec.PerPhase, spec.Blocks, spec.Overlap, spec.Seed), nil
	case "interleaved":
		return workload.Interleaved(spec.N, spec.Streams, spec.StreamLen), nil
	case "mixed":
		return workload.Mixed(spec.N, spec.Blocks, spec.ScanBlocks, spec.Burst, spec.Seed), nil
	}
	return nil, fmt.Errorf("service: unknown workload kind %q", spec.Kind)
}

// BuildInstance materialises the instance a schedule request describes and
// validates it.
func (r *ScheduleRequest) BuildInstance() (*core.Instance, error) {
	sources := 0
	if r.Instance != "" {
		sources++
	}
	if len(r.Seq) > 0 {
		sources++
	}
	if r.Workload != nil {
		sources++
	}
	if sources != 1 {
		return nil, fmt.Errorf("service: exactly one of instance, seq or workload must be set (got %d)", sources)
	}

	if r.Instance != "" {
		return workload.ParseString(r.Instance)
	}

	var seq core.Sequence
	if len(r.Seq) > 0 {
		seq = make(core.Sequence, len(r.Seq))
		for i, b := range r.Seq {
			seq[i] = core.BlockID(b)
		}
	} else {
		var err error
		if seq, err = generate(r.Workload); err != nil {
			return nil, err
		}
	}

	disks := r.Disks
	if disks == 0 {
		disks = 1
	}
	in := &core.Instance{Seq: seq, K: r.K, F: r.F, Disks: disks}
	if disks > 1 {
		strategy, err := workload.ParseAssignment(r.Assign)
		if err != nil {
			return nil, err
		}
		in.DiskOf = workload.AssignDisks(seq, disks, strategy, r.AssignSeed)
	}
	for _, b := range r.InitialCache {
		in.InitialCache = append(in.InitialCache, core.BlockID(b))
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("service: invalid instance: %w", err)
	}
	return in, nil
}
