package service

import (
	"context"
	"errors"
	"testing"
	"time"

	"pfcache/internal/lpmodel"
)

// TestShardPoolSheds proves the bounded queue: with one shard whose worker
// is blocked and whose queue is full, the next request is rejected with
// ErrShardBusy instead of queueing, and the shed counter records it.
func TestShardPoolSheds(t *testing.T) {
	p := newShardPool(1, 1)
	defer p.close()

	block := make(chan struct{})
	executing := make(chan struct{})
	go p.run(context.Background(), 0, func(context.Context, *lpmodel.ModelBatch) (bool, error) {
		close(executing)
		<-block
		return false, nil
	})
	<-executing // the worker is now busy

	// Fill the single queue slot, then wait until the slot is visibly
	// occupied (the worker is still blocked, so it cannot drain it).
	queued := make(chan error, 1)
	go func() {
		queued <- p.run(context.Background(), 0, func(context.Context, *lpmodel.ModelBatch) (bool, error) { return false, nil })
	}()
	for len(p.shards[0].tasks) != 1 {
		time.Sleep(time.Millisecond)
	}

	err := p.run(context.Background(), 0, func(context.Context, *lpmodel.ModelBatch) (bool, error) { return false, nil })
	if !errors.Is(err, ErrShardBusy) {
		t.Fatalf("full queue returned %v, want ErrShardBusy", err)
	}
	if p.shed.Load() != 1 {
		t.Errorf("shed counter = %d, want 1", p.shed.Load())
	}

	close(block)
	if err := <-queued; err != nil {
		t.Errorf("queued request failed after the worker unblocked: %v", err)
	}
}

// TestShardPoolRecoversPanic proves a panicking computation costs one
// request, not the worker: the panic comes back as a *PanicError and the
// same shard serves the next request normally.
func TestShardPoolRecoversPanic(t *testing.T) {
	p := newShardPool(1, 4)
	defer p.close()

	err := p.run(context.Background(), 0, func(context.Context, *lpmodel.ModelBatch) (bool, error) {
		panic("poisoned instance")
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("panic surfaced as %v, want *PanicError", err)
	}
	if p.panics.Load() != 1 {
		t.Errorf("panics counter = %d, want 1", p.panics.Load())
	}

	ran := false
	if err := p.run(context.Background(), 0, func(context.Context, *lpmodel.ModelBatch) (bool, error) {
		ran = true
		return false, nil
	}); err != nil || !ran {
		t.Errorf("shard did not survive the panic: ran=%v err=%v", ran, err)
	}
}

// TestShardPoolSkipsDeadTasks proves a canceled request releases its shard
// in queue-drain time: a task whose context is already dead when the worker
// reaches it is dropped without running.
func TestShardPoolSkipsDeadTasks(t *testing.T) {
	p := newShardPool(1, 4)
	defer p.close()

	block := make(chan struct{})
	executing := make(chan struct{})
	go p.run(context.Background(), 0, func(context.Context, *lpmodel.ModelBatch) (bool, error) {
		close(executing)
		<-block
		return false, nil
	})
	<-executing

	ctx, cancel := context.WithCancel(context.Background())
	ran := make(chan struct{}, 1)
	resc := make(chan error, 1)
	go func() {
		resc <- p.run(ctx, 0, func(context.Context, *lpmodel.ModelBatch) (bool, error) {
			ran <- struct{}{}
			return false, nil
		})
	}()
	// Cancel once the task visibly sits in the queue behind the blocker; the
	// caller returns immediately with the context error.
	for len(p.shards[0].tasks) != 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-resc; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled caller got %v, want context.Canceled", err)
	}

	close(block)
	// Drain: run one more task through the shard; by the time it executes,
	// the dead task must have been skipped, not run.
	if err := p.run(context.Background(), 0, func(context.Context, *lpmodel.ModelBatch) (bool, error) { return false, nil }); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ran:
		t.Error("task with a dead context was executed")
	default:
	}
	if p.skipped.Load() != 1 {
		t.Errorf("skipped counter = %d, want 1", p.skipped.Load())
	}
}

// TestFlightSurvivesLeaderCancel is the coalescing-under-cancellation
// regression test: a coalesced follower whose leader's request context is
// canceled must still receive the result — the computation runs under the
// flight's refcounted context, which stays alive while any waiter remains.
func TestFlightSurvivesLeaderCancel(t *testing.T) {
	g := newFlightGroup()
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	started := make(chan struct{})
	release := make(chan struct{})

	type result struct {
		body      []byte
		err       error
		coalesced bool
	}
	leaderc := make(chan result, 1)
	go func() {
		body, err, coalesced := g.do(leaderCtx, "k", func(fctx context.Context) ([]byte, error) {
			close(started)
			<-release
			// The leader's request context is canceled by now, but a
			// follower still wants the result: the flight context must be
			// alive.
			if fctx.Err() != nil {
				return nil, fctx.Err()
			}
			return []byte("result"), nil
		})
		leaderc <- result{body, err, coalesced}
	}()
	<-started

	followerc := make(chan result, 1)
	go func() {
		body, err, coalesced := g.do(context.Background(), "k", func(context.Context) ([]byte, error) {
			return nil, errors.New("follower must not compute")
		})
		followerc <- result{body, err, coalesced}
	}()
	for g.coalesced.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	cancelLeader()
	close(release)

	f := <-followerc
	if f.err != nil || !f.coalesced || string(f.body) != "result" {
		t.Errorf("follower after leader cancel: body=%q err=%v coalesced=%v, want the leader's result",
			f.body, f.err, f.coalesced)
	}
	// The leader (whose own handler returned nothing to a dead client) still
	// carried the computation to completion.
	l := <-leaderc
	if l.err != nil || string(l.body) != "result" {
		t.Errorf("leader: body=%q err=%v", l.body, l.err)
	}
}

// TestFlightCancelsWhenAllWaitersLeave proves the other half of the
// refcount: when every waiter's context ends, the flight context is
// canceled, so a queued or staged computation stops instead of running for
// nobody.
func TestFlightCancelsWhenAllWaitersLeave(t *testing.T) {
	g := newFlightGroup()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})

	done := make(chan error, 1)
	go func() {
		_, err, _ := g.do(ctx, "k", func(fctx context.Context) ([]byte, error) {
			close(started)
			<-fctx.Done() // must fire once the only waiter cancels
			return nil, fctx.Err()
		})
		done <- err
	}()
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("flight returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("flight context was never canceled after the last waiter left")
	}
}
