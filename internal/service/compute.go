package service

import (
	"context"
	"fmt"

	"pfcache/internal/core"
	"pfcache/internal/lp"
	"pfcache/internal/lpmodel"
	"pfcache/internal/opt"
	"pfcache/internal/parallel"
	"pfcache/internal/sim"
	"pfcache/internal/single"
)

// ComputeSchedule runs one strategy on one instance and assembles the
// response.  It is the single code path behind the HTTP handler, the shards
// and the tests: responses are byte-identical no matter which of them asks.
// mb may be nil (the model is built fresh and a pooled solver is drawn for
// LP work); shards pass their owned lpmodel.ModelBatch, so repeated LP
// requests on one shard reuse the built model, the tableau arenas, the
// pattern's symbolic factorization and its warm basis.
//
// ctx bounds the computation: it is checked before each expensive stage
// (exact search, LP build/solve/extract, simulation), so a canceled request
// stops consuming its shard at the next stage boundary.  The solver cores
// themselves are not interruptible mid-pivot; the stage checks bound the
// overshoot to one engine call.
func ComputeSchedule(ctx context.Context, in *core.Instance, strategy string, includeSchedule bool, mb *lpmodel.ModelBatch, opts lp.Options) (*ScheduleResponse, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	resp := responseHeader(in, strategy)

	var sched *core.Schedule
	switch strategy {
	case "opt":
		res, err := opt.Optimal(in, opt.Options{})
		if err != nil {
			return nil, err
		}
		sched = res.Schedule
		resp.Opt = &OptInfo{
			Expanded:          res.StatesExpanded,
			Generated:         res.StatesGenerated,
			PrunedByBound:     res.PrunedByBound,
			DuplicateHits:     res.DuplicateHits,
			PrunedByDominance: res.PrunedByDominance,
			LandmarkHits:      res.LandmarkHits,
			PeakTable:         res.PeakTableSize,
			SeedAlgorithm:     res.SeedAlgorithm,
			SeedStall:         res.SeedStall,
			SeedOptimal:       res.SeedOptimal,
		}
	case "lp-optimal":
		var m *lpmodel.Model
		var frac *lpmodel.Fractional
		var err error
		// Every served solve runs under the verification cascade: the result
		// is checked against the independent optimality certificate, and a
		// numerical failure re-solves down the engine ladder instead of being
		// cached, replicated and frozen into benchmark tables.  A clean
		// solve's response is byte-identical with or without the cascade —
		// and with or without the batch (the lp.Batch cold-solve contract),
		// which only changes what is reused, never what is computed.
		opts.Cascade = true
		if mb != nil {
			m, err = mb.Model(in)
			if err != nil {
				return nil, err
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			frac, err = m.SolveBatch(mb.LP(), opts)
		} else {
			m, err = lpmodel.Build(in)
			if err != nil {
				return nil, err
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			frac, err = m.SolveWith(nil, opts)
		}
		if err != nil {
			return nil, err
		}
		if sched, err = lpSchedule(resp, m, frac); err != nil {
			return nil, err
		}
	default:
		var err error
		sched, err = greedySchedule(in, strategy)
		if err != nil {
			return nil, err
		}
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := finishSchedule(resp, in, strategy, sched, includeSchedule); err != nil {
		return nil, err
	}
	return resp, nil
}

// responseHeader fills the instance-summary fields of a fresh response.
func responseHeader(in *core.Instance, strategy string) *ScheduleResponse {
	return &ScheduleResponse{
		Key:        fmt.Sprintf("%016x", in.Fingerprint()),
		Strategy:   strategy,
		N:          in.N(),
		K:          in.K,
		F:          in.F,
		Disks:      in.Disks,
		Blocks:     len(in.Blocks()),
		ColdMisses: in.ColdMisses(),
	}
}

// lpSchedule extracts the integral schedule from a solved model, filling the
// LP block of the response; the caller simulates the schedule like any other
// strategy's.  It is shared between the one-shot lp-optimal path and the
// session path, so both assemble byte-identical responses from the same
// fractional solution.
func lpSchedule(resp *ScheduleResponse, m *lpmodel.Model, frac *lpmodel.Fractional) (*core.Schedule, error) {
	resp.downgrades = frac.Downgrades
	res, err := lpmodel.Extract(m, frac)
	if err != nil {
		return nil, err
	}
	resp.LP = &LPInfo{
		LowerBound:  res.LowerBound,
		Integral:    res.Integral,
		Offset:      res.Offset,
		Variables:   res.LPVariables,
		Constraints: res.LPConstraints,
		Iterations:  res.LPIterations,
		Candidates:  res.CandidatesTried,
	}
	return res.Schedule, nil
}

// finishSchedule simulates sched on in, filling the executed-cost fields and
// (when requested) the fetch list.
func finishSchedule(resp *ScheduleResponse, in *core.Instance, strategy string, sched *core.Schedule, includeSchedule bool) error {
	res, err := sim.Run(in, sched, sim.Options{})
	if err != nil {
		return fmt.Errorf("service: %s schedule is infeasible: %w", strategy, err)
	}
	resp.Stall = res.Stall
	resp.Elapsed = res.Elapsed
	resp.FetchCount = res.FetchCount
	resp.ExtraCache = res.ExtraCache

	if includeSchedule {
		resp.Schedule = make([]FetchWire, 0, sched.Len())
		for _, f := range sched.Fetches {
			resp.Schedule = append(resp.Schedule, FetchWire{
				Disk:       f.Disk,
				After:      f.After,
				MinTime:    f.MinTime,
				Block:      int(f.Block),
				Evict:      int(f.Evict),
				EvictAtEnd: int(f.EvictAtEnd),
			})
		}
	}
	return nil
}

// greedySchedule resolves a non-LP, non-exact strategy the same way the
// pcsim CLI does: single-disk instances try the single-disk registry first
// and fall back to the parallel suite (which accepts D == 1).
func greedySchedule(in *core.Instance, strategy string) (*core.Schedule, error) {
	if in.Disks == 1 {
		if a, err := single.ByName(strategy); err == nil {
			return a.Run(in)
		}
	}
	a, err := parallel.ByName(strategy)
	if err != nil {
		return nil, fmt.Errorf("service: unknown strategy %q for a %d-disk instance", strategy, in.Disks)
	}
	return a.Run(in)
}
