package service

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// lruCache is a bounded least-recently-used cache from canonical request
// keys to marshalled response bytes.  Storing the final bytes (rather than
// the response struct) guarantees that a cache hit replays exactly what the
// first computation sent.
type lruCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used
	entries  map[string]*list.Element

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type lruEntry struct {
	key  string
	body []byte
}

// newLRUCache builds a cache holding at most capacity entries; capacity <= 0
// disables caching (every lookup misses, nothing is stored).
func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// get returns the cached bytes for key, marking the entry most recently
// used.
func (c *lruCache) get(key string) ([]byte, bool) {
	if c.capacity <= 0 {
		c.misses.Add(1)
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*lruEntry).body, true
}

// peek is get without touching the hit/miss counters.  It is used by a
// flight leader re-checking the cache after winning the flight slot: a
// racing leader whose duplicate finished between the handler's cache lookup
// and the flight join must serve the stored bytes instead of re-solving,
// but that internal re-check is not a client-visible lookup.
func (c *lruCache) peek(key string) ([]byte, bool) {
	if c.capacity <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).body, true
}

// put stores the bytes for key, evicting the least recently used entry when
// the cache is full.
func (c *lruCache) put(key string, body []byte) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*lruEntry).body = body
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*lruEntry).key)
		c.evictions.Add(1)
	}
	c.entries[key] = c.order.PushFront(&lruEntry{key: key, body: body})
}

// len returns the current number of entries.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// flightGroup coalesces concurrent computations of the same key: the first
// caller runs fn, every concurrent duplicate blocks until that run finishes
// and shares its result.  Results are not retained beyond the in-flight
// window; pairing the group with the LRU cache gives "compute at most once
// at a time, remember the recent past".
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight

	coalesced atomic.Uint64
}

type flight struct {
	done chan struct{}
	body []byte
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flights: make(map[string]*flight)}
}

// do runs fn for key unless an identical computation is already in flight,
// in which case it waits for and shares that computation's result.  The
// second return value reports whether this call was coalesced onto another.
func (g *flightGroup) do(key string, fn func() ([]byte, error)) ([]byte, error, bool) {
	g.mu.Lock()
	if fl, ok := g.flights[key]; ok {
		g.mu.Unlock()
		g.coalesced.Add(1)
		<-fl.done
		return fl.body, fl.err, true
	}
	fl := &flight{done: make(chan struct{})}
	g.flights[key] = fl
	g.mu.Unlock()

	fl.body, fl.err = fn()

	g.mu.Lock()
	delete(g.flights, key)
	g.mu.Unlock()
	close(fl.done)
	return fl.body, fl.err, false
}
