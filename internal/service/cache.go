package service

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
)

// lruCache is a bounded least-recently-used cache from canonical request
// keys to marshalled response bytes.  Storing the final bytes (rather than
// the response struct) guarantees that a cache hit replays exactly what the
// first computation sent.
type lruCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used
	entries  map[string]*list.Element

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type lruEntry struct {
	key  string
	body []byte
}

// newLRUCache builds a cache holding at most capacity entries; capacity <= 0
// disables caching (every lookup misses, nothing is stored).
func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// get returns the cached bytes for key, marking the entry most recently
// used.
func (c *lruCache) get(key string) ([]byte, bool) {
	if c.capacity <= 0 {
		c.misses.Add(1)
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*lruEntry).body, true
}

// peek is get without touching the hit/miss counters.  It is used by a
// flight leader re-checking the cache after winning the flight slot: a
// racing leader whose duplicate finished between the handler's cache lookup
// and the flight join must serve the stored bytes instead of re-solving,
// but that internal re-check is not a client-visible lookup.
func (c *lruCache) peek(key string) ([]byte, bool) {
	if c.capacity <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).body, true
}

// put stores the bytes for key, evicting the least recently used entry when
// the cache is full.
func (c *lruCache) put(key string, body []byte) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*lruEntry).body = body
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*lruEntry).key)
		c.evictions.Add(1)
	}
	c.entries[key] = c.order.PushFront(&lruEntry{key: key, body: body})
}

// len returns the current number of entries.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// flightGroup coalesces concurrent computations of the same key: the first
// caller runs fn, every concurrent duplicate blocks until that run finishes
// and shares its result.  Results are not retained beyond the in-flight
// window; pairing the group with the LRU cache gives "compute at most once
// at a time, remember the recent past".
//
// Cancellation is reference-counted per flight: the computation runs under a
// flight-owned context that is canceled only when every interested caller
// (the leader and all coalesced followers) has canceled.  A follower whose
// leader's client disconnects therefore still receives the result — the
// computation outlives any individual request — while a flight nobody wants
// anymore is canceled promptly, releasing its shard.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight

	coalesced atomic.Uint64
}

type flight struct {
	done chan struct{}
	body []byte
	err  error

	// ctx is the computation's context; cancel fires when waiters hits zero
	// (every caller gave up) and again, harmlessly, when the flight retires.
	ctx    context.Context
	cancel context.CancelFunc

	mu      sync.Mutex
	waiters int
}

// leave records that one waiter's request context ended.  The last waiter
// out cancels the computation.
func (fl *flight) leave() {
	fl.mu.Lock()
	fl.waiters--
	last := fl.waiters == 0
	fl.mu.Unlock()
	if last {
		fl.cancel()
	}
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flights: make(map[string]*flight)}
}

// do runs fn for key unless an identical computation is already in flight,
// in which case it waits for and shares that computation's result.  fn
// receives the flight context described on flightGroup.  A follower whose
// own ctx ends before the flight completes returns ctx's error immediately
// (the flight keeps running for the remaining waiters).  The third return
// value reports whether this call was coalesced onto another.
func (g *flightGroup) do(ctx context.Context, key string, fn func(context.Context) ([]byte, error)) ([]byte, error, bool) {
	g.mu.Lock()
	if fl, ok := g.flights[key]; ok {
		fl.mu.Lock()
		fl.waiters++
		fl.mu.Unlock()
		g.mu.Unlock()
		g.coalesced.Add(1)
		stop := context.AfterFunc(ctx, fl.leave)
		select {
		case <-fl.done:
			// stop returns false when leave already ran (our ctx raced the
			// result); the flight is retired either way, so the stray
			// decrement is harmless.
			stop()
			return fl.body, fl.err, true
		case <-ctx.Done():
			return nil, ctx.Err(), true
		}
	}
	fl := &flight{done: make(chan struct{}), waiters: 1}
	fl.ctx, fl.cancel = context.WithCancel(context.Background())
	g.flights[key] = fl
	g.mu.Unlock()

	stop := context.AfterFunc(ctx, fl.leave)
	fl.body, fl.err = fn(fl.ctx)
	stop()

	g.mu.Lock()
	delete(g.flights, key)
	g.mu.Unlock()
	close(fl.done)
	fl.cancel()
	return fl.body, fl.err, false
}
