package service_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pfcache/internal/faultinject"
	"pfcache/internal/lp"
	"pfcache/internal/service"
)

// lpRequest is a small uncachable-by-accident lp-optimal request (seeded so
// repeated tests hit the same instance).
func lpRequest(seed int64) *service.ScheduleRequest {
	return &service.ScheduleRequest{
		Strategy:        "lp-optimal",
		Workload:        &service.WorkloadSpec{Kind: "uniform", N: 24, Blocks: 8, Seed: seed},
		K:               4,
		F:               3,
		Disks:           2,
		IncludeSchedule: true,
	}
}

func getStats(t *testing.T, client *http.Client, url string) map[string]any {
	t.Helper()
	resp, err := client.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestScheduleHealsCorruptionInvisibly corrupts every solve's first cascade
// rung and requires the served response to be byte-identical to the clean
// reference, with the damage visible only in the stats counters: nonzero
// verify_failures and cascade_fallbacks in the lp block, and a solver reset
// for the tainted shard solver.
func TestScheduleHealsCorruptionInvisibly(t *testing.T) {
	req := lpRequest(11)
	// The reference must be computed before the injector goes live: the lp
	// fault hook is process-global.
	ref, err := service.ScheduleBody(req, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}

	srv := service.NewServer(service.Options{Shards: 1, CacheEntries: 8})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	inj := faultinject.NewNumericInjector(1)
	inj.Install()
	defer inj.Uninstall()

	body, _, status, err := postSchedule(ts.Client(), ts.URL, req)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if !bytes.Equal(body, ref) {
		t.Fatalf("healed response differs from the clean reference:\n got %s\nwant %s", body, ref)
	}
	inj.Uninstall()

	stats := srv.Stats()
	if stats.SolverResets == 0 {
		t.Error("tainted shard solver was not reset")
	}
	if inj.Miscomputes.Load() == 0 {
		t.Fatal("injector never corrupted an objective")
	}
	if stats.LP.VerifyFailures == 0 {
		t.Error("corruption left no verify_failures in stats")
	}
	if stats.LP.CascadeFallbacks == 0 {
		t.Error("recovery left no cascade_fallbacks in stats")
	}
}

// TestScheduleExhaustionTyped500 proves the unrecoverable path: a cascade
// exhausted on every rung surfaces as a 500 carrying the typed error string
// (so front tiers retry it), resets the shard solver, and the identical
// retried request — the fault was one-shot — succeeds with the clean bytes.
func TestScheduleExhaustionTyped500(t *testing.T) {
	req := lpRequest(13)
	ref, err := service.ScheduleBody(req, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}

	srv := service.NewServer(service.Options{Shards: 1, CacheEntries: 8})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	inj := faultinject.NewNumericInjector(1 << 30)
	inj.Install()
	defer inj.Uninstall()
	inj.InjectExhaustion(1)

	body, _, status, err := postSchedule(ts.Client(), ts.URL, req)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusInternalServerError {
		t.Fatalf("exhausted solve answered %d (%s), want 500", status, body)
	}
	if !strings.Contains(string(body), "lp: solve cascade exhausted") {
		t.Fatalf("500 body %q does not carry the typed cascade error", body)
	}
	if resets := srv.Stats().SolverResets; resets != 1 {
		t.Fatalf("solver_resets = %d after exhaustion, want 1", resets)
	}

	// The one-shot fault is spent: the same request must now succeed and
	// match the clean reference byte for byte (the failure was never cached).
	body, _, status, err = postSchedule(ts.Client(), ts.URL, req)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK || !bytes.Equal(body, ref) {
		t.Fatalf("retry after exhaustion: status %d, body matches ref: %v", status, bytes.Equal(body, ref))
	}
}

// TestStatsWireFieldsGolden pins the new stats wire fields by their exact
// JSON names: external dashboards key on these strings, so renaming any of
// them is a breaking change this test makes loud.
func TestStatsWireFieldsGolden(t *testing.T) {
	srv := service.NewServer(service.Options{Shards: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	m := getStats(t, ts.Client(), ts.URL)
	if _, ok := m["solver_resets"]; !ok {
		t.Errorf("stats missing \"solver_resets\": %v", m)
	}
	lpBlock, ok := m["lp"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing lp block: %v", m)
	}
	for _, k := range []string{"verified_solves", "verify_failures", "cascade_fallbacks",
		"symbolic_reuses", "numeric_refactors"} {
		if _, ok := lpBlock[k]; !ok {
			t.Errorf("lp stats missing %q: %v", k, lpBlock)
		}
	}
	optBlock, ok := m["opt"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing opt block: %v", m)
	}
	for _, k := range []string{"searches", "expanded", "generated", "pruned_by_bound",
		"duplicate_hits", "pruned_by_dominance", "landmark_hits", "peak_table",
		"workers", "worker_expanded"} {
		if _, ok := optBlock[k]; !ok {
			t.Errorf("opt stats missing %q: %v", k, optBlock)
		}
	}
}
