package service

import (
	"container/list"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"pfcache/internal/core"
	"pfcache/internal/lp"
	"pfcache/internal/lpmodel"
)

// This file is the session mode of /v1/schedule: a client whose reference
// trace evolves opens a session over its current instance, then extends the
// trace one suffix at a time, and each extension is re-planned incrementally
// — the session's LP model grows in place (lpmodel.Model.Extend) and the
// dual simplex re-optimises from the previous optimal basis (lp.Options.Dual)
// instead of rebuilding and re-solving the whole program.  Extensions that
// outgrow the model (brand-new blocks), numeric taints, evictions and
// restarts all fall back to a cold rebuild of the full trace.  The responses
// are assembled by the same code path as one-shot lp-optimal requests, and
// every session solve runs under the verification cascade, so a session
// serves a plan cost-equivalent to what a cold /v1/schedule of the full
// extended trace would: the same certified LP bound and the same stall.  (On
// a degenerate LP the warm solve may reach a different equal-cost optimal
// vertex, so the fetch-by-fetch schedule detail may differ between two plans
// of identical certified cost.)

// errUnknownSession marks a session ID the store does not hold — never
// created here, closed, evicted or expired.  It surfaces as a 404, which a
// session-aware front tier treats as "replay the transcript".
var errUnknownSession = errors.New("service: unknown session")

// defaultSessionEntries bounds the live sessions when Options.SessionEntries
// is zero; defaultSessionTTL is the idle lifetime when Options.SessionTTL is.
const (
	defaultSessionEntries = 256
	defaultSessionTTL     = 15 * time.Minute
)

// session is one evolving-trace planning session: the creation-time instance,
// the transcript of accepted extensions, and the LP model and dedicated
// solver that carry the warm state from solve to solve.  Every operation for
// a session ID hashes to the same shard, and all fields below hash are
// touched only on that shard's goroutine, so the struct needs no lock.
type session struct {
	id   string
	hash uint64

	base *core.Instance // immutable snapshot of the creation instance
	ext  []core.BlockID // accepted extensions in order: the replay transcript
	// regrow re-derives the instance from the full extended trace the way a
	// cold request would (same disk-assignment strategy and seed), so an
	// extension introducing brand-new blocks can rebuild transparently.  It is
	// nil when the session was created from an explicit instance description:
	// its disk layout is given verbatim and cannot be invented for new blocks,
	// so such extensions are rejected instead.
	regrow *ScheduleRequest

	model  *lpmodel.Model
	solver *lp.Solver
}

// rebuildFrom reconstructs the session's model for its full transcript — the
// base instance, every accepted extension, plus extra (the extension being
// applied, when it forces a structural rebuild) — and solves it cold with a
// brand-new solver, so nothing from before the rebuild survives.  It is the
// create path (empty transcript), the recovery path after a numeric taint,
// and the growth path for extensions naming new blocks: the incremental path
// is an acceleration only, and replaying the transcript cold re-derives the
// plan a cold request for the same trace would serve.
func (sess *session) rebuildFrom(ctx context.Context, extra []core.BlockID, opts lp.Options) (*lpmodel.Fractional, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var in *core.Instance
	if sess.regrow != nil {
		rg := *sess.regrow
		rg.Seq = make([]int, 0, len(sess.base.Seq)+len(sess.ext)+len(extra))
		for _, b := range sess.base.Seq {
			rg.Seq = append(rg.Seq, int(b))
		}
		for _, b := range sess.ext {
			rg.Seq = append(rg.Seq, int(b))
		}
		for _, b := range extra {
			rg.Seq = append(rg.Seq, int(b))
		}
		var err error
		if in, err = rg.BuildInstance(); err != nil {
			return nil, err
		}
	} else {
		in = sess.base.Clone()
		seq := make(core.Sequence, 0, len(sess.base.Seq)+len(sess.ext)+len(extra))
		seq = append(append(append(seq, sess.base.Seq...), sess.ext...), extra...)
		in.Seq = seq
	}
	m, err := lpmodel.Build(in)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	solver := lp.NewSolver()
	frac, err := m.SolveWith(solver, opts)
	if err != nil {
		return nil, err
	}
	sess.model, sess.solver = m, solver
	return frac, nil
}

// sessionStore is the bounded LRU+TTL registry of live sessions.
type sessionStore struct {
	mu      sync.Mutex
	max     int
	ttl     time.Duration
	order   *list.List // front = most recently used
	entries map[string]*list.Element

	evictions   atomic.Uint64 // sessions dropped to respect the LRU bound
	expirations atomic.Uint64 // sessions dropped for exceeding the idle TTL
}

// sessionEntry is one LRU node: the session plus its last-touched time.
type sessionEntry struct {
	sess *session
	last time.Time
}

func newSessionStore(max int, ttl time.Duration) *sessionStore {
	if max <= 0 {
		max = defaultSessionEntries
	}
	if ttl <= 0 {
		ttl = defaultSessionTTL
	}
	return &sessionStore{
		max:     max,
		ttl:     ttl,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// get returns the live session for id, touching it most-recently-used.  A
// session idle past the TTL is expired on the spot and reported missing.
func (st *sessionStore) get(id string) (*session, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	el, ok := st.entries[id]
	if !ok {
		return nil, false
	}
	e := el.Value.(*sessionEntry)
	if time.Since(e.last) > st.ttl {
		st.order.Remove(el)
		delete(st.entries, id)
		st.expirations.Add(1)
		return nil, false
	}
	e.last = time.Now()
	st.order.MoveToFront(el)
	return e.sess, true
}

// put registers a session (replacing any same-ID predecessor), evicting the
// least-recently-used sessions beyond the bound and any that sit expired at
// the cold end — so idle sessions are reclaimed even when nobody asks for
// them again.
func (st *sessionStore) put(sess *session) {
	st.mu.Lock()
	defer st.mu.Unlock()
	now := time.Now()
	for el := st.order.Back(); el != nil; el = st.order.Back() {
		e := el.Value.(*sessionEntry)
		if now.Sub(e.last) <= st.ttl {
			break
		}
		st.order.Remove(el)
		delete(st.entries, e.sess.id)
		st.expirations.Add(1)
	}
	if el, ok := st.entries[sess.id]; ok {
		el.Value.(*sessionEntry).sess = sess
		el.Value.(*sessionEntry).last = now
		st.order.MoveToFront(el)
		return
	}
	for st.order.Len() >= st.max {
		oldest := st.order.Back()
		st.order.Remove(oldest)
		delete(st.entries, oldest.Value.(*sessionEntry).sess.id)
		st.evictions.Add(1)
	}
	st.entries[sess.id] = st.order.PushFront(&sessionEntry{sess: sess, last: now})
}

// remove drops the session for id, reporting whether it was live.
func (st *sessionStore) remove(id string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	el, ok := st.entries[id]
	if !ok {
		return false
	}
	st.order.Remove(el)
	delete(st.entries, id)
	return true
}

// len returns the number of live sessions.
func (st *sessionStore) len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.order.Len()
}

// newSessionID draws a random 128-bit hex session identifier.
func newSessionID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("service: generating session id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// sessionLPOptions is the solver configuration of every session solve: the
// server's engines under the verification cascade, like any served solve.
func (s *Server) sessionLPOptions() lp.Options {
	return lp.Options{Method: s.opts.Solver, Pricing: s.opts.Pricing,
		Basis: s.opts.Basis, Cascade: true}
}

// sessionCtx applies the server-side schedule deadline to a session request.
func (s *Server) sessionCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.opts.ScheduleTimeout > 0 {
		return context.WithTimeout(r.Context(), s.opts.ScheduleTimeout)
	}
	return r.Context(), func() {}
}

// sessionResponse assembles the schedule response served for a session's
// current trace, through the same helpers as the one-shot lp-optimal path.
func sessionResponse(ctx context.Context, m *lpmodel.Model, frac *lpmodel.Fractional, includeSchedule bool) (*ScheduleResponse, error) {
	resp := responseHeader(m.In, "lp-optimal")
	sched, err := lpSchedule(resp, m, frac)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := finishSchedule(resp, m.In, "lp-optimal", sched, includeSchedule); err != nil {
		return nil, err
	}
	return resp, nil
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var req SessionCreateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Strategy != "" && req.Strategy != "lp-optimal" {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("service: sessions serve the lp-optimal strategy, not %q", req.Strategy))
		return
	}
	in, err := req.BuildInstance()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	id := req.Session
	if id == "" {
		if id, err = newSessionID(); err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
	}

	ctx, cancel := s.sessionCtx(r)
	defer cancel()
	if err := ctx.Err(); err != nil {
		s.writeScheduleError(w, ctx, err)
		return
	}
	s.sweepMu.RLock()
	defer s.sweepMu.RUnlock()

	sess := &session{id: id, hash: fnvSum([]byte(id)), base: in.Clone()}
	if req.Instance == "" {
		rg := req.ScheduleRequest
		rg.Seq, rg.Workload = nil, nil
		sess.regrow = &rg
	}
	var out *SessionResponse
	err = s.pool.run(ctx, sess.hash, func(tctx context.Context, _ *lpmodel.ModelBatch) (bool, error) {
		frac, cerr := sess.rebuildFrom(tctx, nil, s.sessionLPOptions())
		if cerr != nil {
			return false, cerr
		}
		resp, cerr := sessionResponse(tctx, sess.model, frac, req.IncludeSchedule)
		if cerr != nil {
			return false, cerr
		}
		out = &SessionResponse{Session: id, Length: sess.model.In.N(), Result: resp}
		return false, nil
	})
	if err != nil {
		s.writeScheduleError(w, ctx, err)
		return
	}
	s.sessions.put(sess)
	s.sessCreates.Add(1)
	writeJSON(w, out)
}

func (s *Server) handleSessionExtend(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req SessionExtendRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Requests) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("service: extension must name at least one request"))
		return
	}
	blocks := make([]core.BlockID, len(req.Requests))
	for i, b := range req.Requests {
		if b < 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("service: request %d: negative block %d", i, b))
			return
		}
		blocks[i] = core.BlockID(b)
	}
	sess, ok := s.sessions.get(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("%w %q", errUnknownSession, id))
		return
	}

	ctx, cancel := s.sessionCtx(r)
	defer cancel()
	if err := ctx.Err(); err != nil {
		s.writeScheduleError(w, ctx, err)
		return
	}
	s.sweepMu.RLock()
	defer s.sweepMu.RUnlock()

	var out *SessionResponse
	err := s.pool.run(ctx, sess.hash, func(tctx context.Context, _ *lpmodel.ModelBatch) (bool, error) {
		rebuilt := false
		var frac *lpmodel.Fractional
		var serr error
		// Extend validates every request before mutating anything, so a
		// rejected extension leaves the session exactly as it was.
		if eerr := sess.model.Extend(blocks...); eerr != nil {
			if !errors.Is(eerr, lpmodel.ErrExtendRebuild) || sess.regrow == nil {
				return false, eerr
			}
			// The extension names blocks the model has no variables for, so it
			// is not expressible as in-place growth.  The trace still evolves:
			// the instance is re-derived from the full extended trace exactly
			// as a cold request would build it, and the session continues from
			// the cold solve.
			rebuilt = true
			s.sessRebuilds.Add(1)
			if frac, serr = sess.rebuildFrom(tctx, blocks, s.sessionLPOptions()); serr != nil {
				s.sessions.remove(sess.id)
				return false, serr
			}
			sess.ext = append(sess.ext, blocks...)
		} else {
			sess.ext = append(sess.ext, blocks...)
			frac, serr = sess.model.SolveIncremental(sess.solver, s.sessionLPOptions())
			switch {
			case serr == nil && frac.Downgrades == 0:
				// The common case: a clean (usually warm) incremental solve.
			case serr != nil && !numericFailure(serr):
				return false, serr
			default:
				// The incremental solve failed numerically, or succeeded only
				// by cascading down the engine ladder: the model and solver
				// that were live during the failure are suspect, so the
				// session is rebuilt from its transcript and the request is
				// answered from the cold solve — the same plan, re-derived
				// from scratch.
				rebuilt = true
				s.sessRebuilds.Add(1)
				if frac, serr = sess.rebuildFrom(tctx, nil, s.sessionLPOptions()); serr != nil {
					// Even the cold replay failed: the session is unusable.
					s.sessions.remove(sess.id)
					return false, serr
				}
			}
		}
		resp, cerr := sessionResponse(tctx, sess.model, frac, req.IncludeSchedule)
		if cerr != nil {
			return false, cerr
		}
		out = &SessionResponse{Session: sess.id, Length: sess.model.In.N(), Rebuilt: rebuilt, Result: resp}
		return false, nil
	})
	if err != nil {
		s.writeScheduleError(w, ctx, err)
		return
	}
	s.sessExtends.Add(1)
	writeJSON(w, out)
}

func (s *Server) handleSessionClose(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	closed := s.sessions.remove(id)
	if closed {
		s.sessCloses.Add(1)
	}
	writeJSON(w, &SessionCloseResponse{Session: id, Closed: closed})
}

// writeJSON writes v as the JSON response body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
