package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"pfcache/internal/experiments"
	"pfcache/internal/lp"
	"pfcache/internal/lpmodel"
	"pfcache/internal/opt"
)

// Options configures a Server.
type Options struct {
	// Shards is the number of worker shards (0 = one per CPU).
	Shards int
	// QueueDepth bounds each shard's backlog; a full queue sheds further
	// requests with 503 + Retry-After instead of queueing unboundedly
	// (0 = a small default).
	QueueDepth int
	// CacheEntries bounds the schedule-response LRU cache (0 disables it).
	CacheEntries int
	// ScheduleTimeout bounds one schedule computation server-side; a request
	// exceeding it fails with 504 (0 = no server-imposed deadline — client
	// disconnects still cancel).
	ScheduleTimeout time.Duration
	// Solver is the simplex implementation for schedule requests and the
	// default restored after sweeps (zero value = lp.MethodRevised).
	Solver lp.Method
	// Pricing is the revised simplex's entering-column rule for schedule
	// requests (zero value = lp.PricingSteepestEdge).  Sweeps pin their own
	// rule — see experiments.SolverPricing.
	Pricing lp.Pricing
	// Basis is the revised simplex's basis representation for schedule
	// requests (zero value = lp.BasisLU).
	Basis lp.BasisMethod
	// Workers is the experiment pool size restored after sweeps (0 = one
	// worker per CPU).
	Workers int
	// SessionEntries bounds the number of live planning sessions; beyond it
	// the least-recently-used session is dropped (0 = 256).
	SessionEntries int
	// SessionTTL is a session's idle lifetime; one untouched for longer is
	// expired (0 = 15 minutes).
	SessionTTL time.Duration
}

// Server is the sharded sweep service.  It implements http.Handler.
type Server struct {
	opts     Options
	pool     *shardPool
	cache    *lruCache
	flight   *flightGroup
	sessions *sessionStore
	mux      *http.ServeMux

	// sweepMu serialises sweeps against schedule requests: sweeps embed the
	// process-wide lp/opt counters in their output, so they must run with no
	// other solver work in the process to stay byte-reproducible.  Schedule
	// requests hold it shared, sweeps exclusively.
	sweepMu sync.RWMutex

	ready    atomic.Bool // shards started; flips /readyz to 200
	draining atomic.Bool // drain begun; flips /readyz back to 503

	computed atomic.Uint64 // schedule computations actually performed
	sweeps   atomic.Uint64
	canceled atomic.Uint64 // requests abandoned by their client
	timeouts atomic.Uint64 // requests that hit the server-side deadline
	panics   atomic.Uint64 // handler panics converted to 500s

	sessCreates  atomic.Uint64 // sessions opened
	sessExtends  atomic.Uint64 // session extensions served
	sessCloses   atomic.Uint64 // sessions explicitly closed
	sessRebuilds atomic.Uint64 // extensions answered by a cold transcript replay
}

// NewServer builds a server and starts its shard goroutines.
func NewServer(opts Options) *Server {
	s := &Server{
		opts:     opts,
		pool:     newShardPool(opts.Shards, opts.QueueDepth),
		cache:    newLRUCache(opts.CacheEntries),
		flight:   newFlightGroup(),
		sessions: newSessionStore(opts.SessionEntries, opts.SessionTTL),
		mux:      http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/schedule", s.handleSchedule)
	s.mux.HandleFunc("POST /v1/session", s.handleSessionCreate)
	s.mux.HandleFunc("POST /v1/session/{id}/extend", s.handleSessionExtend)
	s.mux.HandleFunc("DELETE /v1/session/{id}", s.handleSessionClose)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.ready.Store(true)
	return s
}

// ServeHTTP dispatches to the service endpoints.  A panic escaping a handler
// is converted into a 500 (and counted) instead of killing the connection's
// goroutine with a stack trace as the only evidence.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			s.panics.Add(1)
			httpError(w, http.StatusInternalServerError,
				fmt.Errorf("service: internal panic: %v", rec))
		}
	}()
	s.mux.ServeHTTP(w, r)
}

// BeginDrain flips the server to draining: /readyz answers 503 so load
// balancers and front tiers stop routing here, while in-flight and
// still-arriving requests are served normally.  The caller is expected to
// stop the listener (http.Server.Shutdown) after the traffic moves away,
// then Close the server.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close stops the shard goroutines.  In-flight requests complete first; no
// new requests may be served afterwards.
func (s *Server) Close() { s.pool.close() }

// Stats returns a snapshot of the service counters, embedding the
// process-wide LP-solver and exact-search counters so a live server's solver
// work is visible without running a sweep.
func (s *Server) Stats() StatsResponse {
	return StatsResponse{
		Shards:             s.pool.size(),
		CacheEntries:       s.cache.len(),
		CacheHits:          s.cache.hits.Load(),
		CacheMisses:        s.cache.misses.Load(),
		Coalesced:          s.flight.coalesced.Load(),
		Evictions:          s.cache.evictions.Load(),
		Computed:           s.computed.Load(),
		Sweeps:             s.sweeps.Load(),
		Shed:               s.pool.shed.Load(),
		Panics:             s.pool.panics.Load() + s.panics.Load(),
		Canceled:           s.canceled.Load(),
		Timeouts:           s.timeouts.Load(),
		Draining:           s.draining.Load(),
		SolverResets:       s.pool.resets.Load(),
		Sessions:           s.sessions.len(),
		SessionCreates:     s.sessCreates.Load(),
		SessionExtends:     s.sessExtends.Load(),
		SessionCloses:      s.sessCloses.Load(),
		SessionEvictions:   s.sessions.evictions.Load(),
		SessionExpirations: s.sessions.expirations.Load(),
		SessionRebuilds:    s.sessRebuilds.Load(),
		LP:                 lpCountersWire(lp.StatsSnapshot()),
		Opt:                optCountersWire(opt.StatsSnapshot()),
	}
}

// httpError reports err with the given status as a JSON body.
func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// decodeBody decodes a bounded JSON request body, distinguishing "too large"
// (413, the body exceeded maxRequestBody) from "malformed" (400).
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody)).Decode(dst)
	if err == nil {
		return true
	}
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("service: request body exceeds %d bytes", tooLarge.Limit))
		return false
	}
	httpError(w, http.StatusBadRequest, fmt.Errorf("service: bad request body: %w", err))
	return false
}

// scheduleKey is the cache/coalescing key of a schedule request: the
// strategy, the response shape, and the full canonical instance encoding
// (not its hash, so distinct instances can never collide in the cache).
func scheduleKey(req *ScheduleRequest, canonical []byte) string {
	b := make([]byte, 0, len(req.Strategy)+3+len(canonical))
	b = append(b, req.Strategy...)
	b = append(b, '|')
	if req.IncludeSchedule {
		b = append(b, 's')
	}
	b = append(b, '|')
	b = append(b, canonical...)
	return string(b)
}

// ScheduleBody computes the marshalled response body for a schedule request,
// bypassing cache, shards and HTTP.  It is the sequential reference the
// end-to-end tests compare the served bytes against.
func ScheduleBody(req *ScheduleRequest, opts lp.Options) ([]byte, error) {
	in, err := req.BuildInstance()
	if err != nil {
		return nil, err
	}
	resp, err := ComputeSchedule(context.Background(), in, req.Strategy, req.IncludeSchedule, nil, opts)
	if err != nil {
		return nil, err
	}
	return marshalBody(resp)
}

// marshalBody renders a schedule response exactly as the handler writes it.
func marshalBody(resp *ScheduleResponse) ([]byte, error) {
	body, err := json.Marshal(resp)
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}

// maxRequestBody caps request bodies: far above any realistic instance spec
// (an explicit million-request sequence fits comfortably), low enough that a
// hostile client cannot drive the decoder to exhaust memory.
const maxRequestBody = 16 << 20

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	var req ScheduleRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Strategy == "" {
		httpError(w, http.StatusBadRequest, errors.New("service: strategy must be set"))
		return
	}
	in, err := req.BuildInstance()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}

	ctx := r.Context()
	if s.opts.ScheduleTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.ScheduleTimeout)
		defer cancel()
	}

	// A request whose deadline has already passed (or whose client is gone)
	// fails up front rather than racing a fast computation to the line.
	if err := ctx.Err(); err != nil {
		s.writeScheduleError(w, ctx, err)
		return
	}

	s.sweepMu.RLock()
	defer s.sweepMu.RUnlock()

	// Encode the instance once; the bytes feed the cache key and, hashed,
	// the shard selection.
	canonical := in.AppendCanonical(make([]byte, 0, 64+4*in.N()))
	key := scheduleKey(&req, canonical)
	if body, ok := s.cache.get(key); ok {
		writeCached(w, body, "hit")
		return
	}
	body, err, coalesced := s.flight.do(ctx, key, func(fctx context.Context) ([]byte, error) {
		// A duplicate may have finished between the cache lookup above and
		// winning this flight slot (its flight is deleted only after its
		// cache.put); re-checking here keeps the "duplicates never
		// re-solve" guarantee airtight.
		if b, ok := s.cache.peek(key); ok {
			return b, nil
		}
		var resp *ScheduleResponse
		err := s.pool.run(fctx, fnvSum(canonical), func(tctx context.Context, batch *lpmodel.ModelBatch) (bool, error) {
			// Each shard's batch keeps per-pattern warm bases; WarmStart
			// lets the next same-shaped lp-optimal instance on this shard
			// skip phase one (and a repeated instance — a cache miss after
			// eviction — skip the model rebuild and the solve's pivots
			// entirely).
			var cerr error
			resp, cerr = ComputeSchedule(tctx, in, req.Strategy, req.IncludeSchedule, batch,
				lp.Options{Method: s.opts.Solver, Pricing: s.opts.Pricing,
					Basis: s.opts.Basis, WarmStart: true})
			if cerr != nil {
				// A numerical failure taints the batch even though the request
				// failed: whatever state drove the cascade to exhaustion must
				// not seed the next request's warm start or replay its
				// recorded factorizations.
				return numericFailure(cerr), cerr
			}
			// A solve the cascade had to downgrade succeeded, but the batch
			// that produced the failure is suspect; discard it.
			return resp.downgrades > 0, nil
		})
		if err != nil {
			return nil, err
		}
		s.computed.Add(1)
		b, merr := marshalBody(resp)
		if merr != nil {
			return nil, merr
		}
		s.cache.put(key, b)
		return b, nil
	})
	if err != nil {
		s.writeScheduleError(w, ctx, err)
		return
	}
	status := "miss"
	if coalesced {
		status = "coalesced"
	}
	writeCached(w, body, status)
}

// writeScheduleError maps a schedule computation failure to its HTTP shape:
// overload is 503 with a Retry-After hint, a server-side deadline is 504, a
// client disconnect is logged as a counter (the peer is gone; the status is
// moot), a recovered panic or an exhausted solve cascade is 500 (this
// replica's solver failed; another replica — or this one, after its shard
// solver is replaced — may well succeed, so front tiers retry it), and
// anything else is a 422 from the computation itself.
func (s *Server) writeScheduleError(w http.ResponseWriter, ctx context.Context, err error) {
	var pe *PanicError
	switch {
	case errors.Is(err, ErrShardBusy):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Add(1)
		httpError(w, http.StatusGatewayTimeout, errors.New("service: schedule deadline exceeded"))
	case errors.Is(err, context.Canceled):
		s.canceled.Add(1)
		httpError(w, statusClientClosedRequest, errors.New("service: request canceled"))
	case errors.As(err, &pe):
		httpError(w, http.StatusInternalServerError, err)
	case numericFailure(err):
		httpError(w, http.StatusInternalServerError, err)
	default:
		httpError(w, http.StatusUnprocessableEntity, err)
	}
}

// numericFailure reports whether err is a numerical-robustness failure of the
// LP solver — a cascade that ran out of engines, a pivot budget exhausted, or
// a result the certificate check rejected — as opposed to a problem with the
// request itself.  These taint the shard solver and surface as retryable
// 500s rather than 422s: the request is fine, this solver instance is not.
func numericFailure(err error) bool {
	var (
		ce *lp.CascadeExhaustedError
		pb *lp.PivotBudgetError
		ve *lp.VerificationError
	)
	return errors.As(err, &ce) || errors.As(err, &pb) || errors.As(err, &ve)
}

// statusClientClosedRequest is nginx's conventional status for "the client
// went away before the response": never seen by that client, but visible in
// logs and to proxies that time out more patiently than their callers.
const statusClientClosedRequest = 499

// writeCached writes a stored response body; the cache status travels in a
// header so hit, miss and coalesced bodies stay byte-identical.
func writeCached(w http.ResponseWriter, body []byte, status string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", status)
	w.Write(body)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !decodeBody(w, r, &req) {
		return
	}
	// Validate before taking the exclusive lock so malformed sweeps never
	// stall schedule traffic.
	if _, err := ResolveExperiments(req.IDs); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if _, err := lp.ParseMethod(solverName(req.Solver)); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}

	s.sweepMu.Lock()
	resp, err := RunSweep(&req)
	// Restore the server's configuration: RunSweep points the process-wide
	// experiment knobs at the request's values.
	experiments.SetSolverMethod(s.opts.Solver)
	experiments.ResetPricing()
	experiments.ResetBasis()
	experiments.SetWorkers(s.opts.Workers)
	s.sweepMu.Unlock()

	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.sweeps.Add(1)
	w.Header().Set("Content-Type", "application/json")
	EncodeSweep(w, resp)
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		ID    string `json:"id"`
		Title string `json:"title"`
	}
	var out []entry
	for _, e := range experiments.All() {
		out = append(out, entry{ID: e.ID, Title: e.Title})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Stats())
}

// handleHealth is liveness: the process is up and serving HTTP.  It stays
// 200 through drain — a draining process is alive — so orchestrators do not
// kill a server that is deliberately finishing its work.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "ok")
}

// handleReady is readiness: 200 only when the shards are warm and the
// server is not draining.  Front tiers and load balancers route on this.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() || s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// fnvSum hashes the canonical instance bytes for shard selection; it is the
// same FNV-1a that core.Instance.Fingerprint computes, without re-encoding
// the instance.
func fnvSum(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}
