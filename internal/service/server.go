package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"sync"
	"sync/atomic"

	"pfcache/internal/experiments"
	"pfcache/internal/lp"
	"pfcache/internal/opt"
)

// Options configures a Server.
type Options struct {
	// Shards is the number of worker shards (0 = one per CPU).
	Shards int
	// CacheEntries bounds the schedule-response LRU cache (0 disables it).
	CacheEntries int
	// Solver is the simplex implementation for schedule requests and the
	// default restored after sweeps (zero value = lp.MethodRevised).
	Solver lp.Method
	// Pricing is the revised simplex's entering-column rule for schedule
	// requests (zero value = lp.PricingSteepestEdge).  Sweeps pin their own
	// rule — see experiments.SolverPricing.
	Pricing lp.Pricing
	// Basis is the revised simplex's basis representation for schedule
	// requests (zero value = lp.BasisLU).
	Basis lp.BasisMethod
	// Workers is the experiment pool size restored after sweeps (0 = one
	// worker per CPU).
	Workers int
}

// Server is the sharded sweep service.  It implements http.Handler.
type Server struct {
	opts   Options
	pool   *shardPool
	cache  *lruCache
	flight *flightGroup
	mux    *http.ServeMux

	// sweepMu serialises sweeps against schedule requests: sweeps embed the
	// process-wide lp/opt counters in their output, so they must run with no
	// other solver work in the process to stay byte-reproducible.  Schedule
	// requests hold it shared, sweeps exclusively.
	sweepMu sync.RWMutex

	computed atomic.Uint64 // schedule computations actually performed
	sweeps   atomic.Uint64
}

// NewServer builds a server and starts its shard goroutines.
func NewServer(opts Options) *Server {
	s := &Server{
		opts:   opts,
		pool:   newShardPool(opts.Shards),
		cache:  newLRUCache(opts.CacheEntries),
		flight: newFlightGroup(),
		mux:    http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/schedule", s.handleSchedule)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	return s
}

// ServeHTTP dispatches to the service endpoints.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close stops the shard goroutines.  In-flight requests complete first; no
// new requests may be served afterwards.
func (s *Server) Close() { s.pool.close() }

// Stats returns a snapshot of the service counters, embedding the
// process-wide LP-solver and exact-search counters so a live server's solver
// work is visible without running a sweep.
func (s *Server) Stats() StatsResponse {
	return StatsResponse{
		Shards:       s.pool.size(),
		CacheEntries: s.cache.len(),
		CacheHits:    s.cache.hits.Load(),
		CacheMisses:  s.cache.misses.Load(),
		Coalesced:    s.flight.coalesced.Load(),
		Evictions:    s.cache.evictions.Load(),
		Computed:     s.computed.Load(),
		Sweeps:       s.sweeps.Load(),
		LP:           lpCountersWire(lp.StatsSnapshot()),
		Opt:          optCountersWire(opt.StatsSnapshot()),
	}
}

// httpError reports err with the given status as a JSON body.
func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// scheduleKey is the cache/coalescing key of a schedule request: the
// strategy, the response shape, and the full canonical instance encoding
// (not its hash, so distinct instances can never collide in the cache).
func scheduleKey(req *ScheduleRequest, canonical []byte) string {
	b := make([]byte, 0, len(req.Strategy)+3+len(canonical))
	b = append(b, req.Strategy...)
	b = append(b, '|')
	if req.IncludeSchedule {
		b = append(b, 's')
	}
	b = append(b, '|')
	b = append(b, canonical...)
	return string(b)
}

// ScheduleBody computes the marshalled response body for a schedule request,
// bypassing cache, shards and HTTP.  It is the sequential reference the
// end-to-end tests compare the served bytes against.
func ScheduleBody(req *ScheduleRequest, opts lp.Options) ([]byte, error) {
	in, err := req.BuildInstance()
	if err != nil {
		return nil, err
	}
	resp, err := ComputeSchedule(in, req.Strategy, req.IncludeSchedule, nil, opts)
	if err != nil {
		return nil, err
	}
	return marshalBody(resp)
}

// marshalBody renders a schedule response exactly as the handler writes it.
func marshalBody(resp *ScheduleResponse) ([]byte, error) {
	body, err := json.Marshal(resp)
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}

// maxRequestBody caps request bodies: far above any realistic instance spec
// (an explicit million-request sequence fits comfortably), low enough that a
// hostile client cannot drive the decoder to exhaust memory.
const maxRequestBody = 16 << 20

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	var req ScheduleRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("service: bad request body: %w", err))
		return
	}
	if req.Strategy == "" {
		httpError(w, http.StatusBadRequest, errors.New("service: strategy must be set"))
		return
	}
	in, err := req.BuildInstance()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}

	s.sweepMu.RLock()
	defer s.sweepMu.RUnlock()

	// Encode the instance once; the bytes feed the cache key and, hashed,
	// the shard selection.
	canonical := in.AppendCanonical(make([]byte, 0, 64+4*in.N()))
	key := scheduleKey(&req, canonical)
	if body, ok := s.cache.get(key); ok {
		writeCached(w, body, "hit")
		return
	}
	body, err, coalesced := s.flight.do(key, func() ([]byte, error) {
		// A duplicate may have finished between the cache lookup above and
		// winning this flight slot (its flight is deleted only after its
		// cache.put); re-checking here keeps the "duplicates never
		// re-solve" guarantee airtight.
		if b, ok := s.cache.peek(key); ok {
			return b, nil
		}
		var resp *ScheduleResponse
		var cerr error
		s.pool.run(fnvSum(canonical), func(solver *lp.Solver) {
			// Each shard's solver remembers its last optimal basis; WarmStart
			// lets the next same-shaped lp-optimal instance on this shard
			// skip phase one (and a repeated instance — a cache miss after
			// eviction — skip the solve's pivots entirely).
			resp, cerr = ComputeSchedule(in, req.Strategy, req.IncludeSchedule, solver,
				lp.Options{Method: s.opts.Solver, Pricing: s.opts.Pricing,
					Basis: s.opts.Basis, WarmStart: true})
		})
		if cerr != nil {
			return nil, cerr
		}
		s.computed.Add(1)
		b, merr := marshalBody(resp)
		if merr != nil {
			return nil, merr
		}
		s.cache.put(key, b)
		return b, nil
	})
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	status := "miss"
	if coalesced {
		status = "coalesced"
	}
	writeCached(w, body, status)
}

// writeCached writes a stored response body; the cache status travels in a
// header so hit, miss and coalesced bodies stay byte-identical.
func writeCached(w http.ResponseWriter, body []byte, status string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", status)
	w.Write(body)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("service: bad request body: %w", err))
		return
	}
	// Validate before taking the exclusive lock so malformed sweeps never
	// stall schedule traffic.
	if _, err := ResolveExperiments(req.IDs); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if _, err := lp.ParseMethod(solverName(req.Solver)); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}

	s.sweepMu.Lock()
	resp, err := RunSweep(&req)
	// Restore the server's configuration: RunSweep points the process-wide
	// experiment knobs at the request's values.
	experiments.SetSolverMethod(s.opts.Solver)
	experiments.ResetPricing()
	experiments.ResetBasis()
	experiments.SetWorkers(s.opts.Workers)
	s.sweepMu.Unlock()

	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.sweeps.Add(1)
	w.Header().Set("Content-Type", "application/json")
	EncodeSweep(w, resp)
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		ID    string `json:"id"`
		Title string `json:"title"`
	}
	var out []entry
	for _, e := range experiments.All() {
		out = append(out, entry{ID: e.ID, Title: e.Title})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Stats())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "ok")
}

// fnvSum hashes the canonical instance bytes for shard selection; it is the
// same FNV-1a that core.Instance.Fingerprint computes, without re-encoding
// the instance.
func fnvSum(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}
