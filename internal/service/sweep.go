package service

import (
	"encoding/json"
	"io"
	"strings"

	"pfcache/internal/experiments"
	"pfcache/internal/lp"
	"pfcache/internal/opt"
)

// ResolveExperiments maps a sweep request's IDs to experiments (the whole
// suite when the list is empty).
func ResolveExperiments(ids []string) ([]experiments.Experiment, error) {
	if len(ids) == 0 {
		return experiments.All(), nil
	}
	var out []experiments.Experiment
	for _, id := range ids {
		e, err := experiments.ByID(strings.TrimSpace(id))
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// RunSweep executes the requested experiments and packages their tables with
// the process-wide LP and exact-search counters, exactly as `pcbench -json`
// reports them: pcbench builds its output through this function, so the CLI
// and the /v1/sweep endpoint cannot drift apart.
//
// The run mutates process-wide state (the experiment pool size, the selected
// simplex method, the lp/opt counters); the caller is responsible for
// exclusion against other solver work (the server holds its sweep lock, the
// CLI is single-purpose).  Partial results are returned alongside the error
// when individual experiments fail.
func RunSweep(req *SweepRequest) (*SweepResponse, error) {
	exps, err := ResolveExperiments(req.IDs)
	if err != nil {
		return nil, err
	}
	method, err := lp.ParseMethod(solverName(req.Solver))
	if err != nil {
		return nil, err
	}
	experiments.SetSolverMethod(method)
	experiments.SetWorkers(req.Workers)

	lp.StatsReset()
	opt.StatsReset()
	results, runErr := experiments.RunAll(exps)
	lpc := lp.StatsSnapshot()
	optc := opt.StatsSnapshot()

	resp := &SweepResponse{
		Solver:  method.String(),
		Results: make([]TableWire, 0, len(results)),
		LP: LPCountersWire{
			Solves:           lpc.Solves,
			Iterations:       lpc.Iterations,
			PricingPasses:    lpc.PricingPasses,
			Refactorizations: lpc.Refactorizations,
			EtaColumns:       lpc.EtaColumns,
		},
		Opt: OptCountersWire{
			Searches:      optc.Searches,
			Expanded:      optc.Expanded,
			Generated:     optc.Generated,
			PrunedByBound: optc.PrunedByBound,
			DuplicateHits: optc.DuplicateHits,
			PeakTable:     optc.PeakTable,
		},
	}
	for _, r := range results {
		// One failed experiment must not hide the others' tables; failed
		// entries have a nil table and are skipped, mirroring pcbench.
		if r.Table == nil {
			continue
		}
		t := TableWire{
			ID:      r.Experiment.ID,
			Title:   r.Experiment.Title,
			Note:    r.Table.Note,
			Headers: r.Table.Headers,
			Rows:    r.Table.Rows,
		}
		if !req.Stable {
			t.Seconds = r.Elapsed.Seconds()
		}
		resp.Results = append(resp.Results, t)
	}
	return resp, runErr
}

// solverName defaults an empty solver field to the production method.
func solverName(s string) string {
	if s == "" {
		return "revised"
	}
	return s
}

// EncodeSweep writes the sweep response in the trajectory JSON format:
// two-space indentation plus a trailing newline, byte-identical to what
// `pcbench -json` prints and what BENCH_*.json files record.
func EncodeSweep(w io.Writer, resp *SweepResponse) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(resp)
}
