package service

import (
	"encoding/json"
	"io"
	"strings"

	"pfcache/internal/experiments"
	"pfcache/internal/lp"
	"pfcache/internal/opt"
)

// ResolveExperiments maps a sweep request's IDs to experiments (the whole
// suite when the list is empty).
func ResolveExperiments(ids []string) ([]experiments.Experiment, error) {
	if len(ids) == 0 {
		return experiments.All(), nil
	}
	var out []experiments.Experiment
	for _, id := range ids {
		e, err := experiments.ByID(strings.TrimSpace(id))
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// RunSweep executes the requested experiments and packages their tables with
// the process-wide LP and exact-search counters, exactly as `pcbench -json`
// reports them: pcbench builds its output through this function, so the CLI
// and the /v1/sweep endpoint cannot drift apart.
//
// The run mutates process-wide state (the experiment pool size, the selected
// simplex engines) and attributes lp/opt counter growth to itself; the
// caller is responsible for exclusion against other solver work (the server
// holds its sweep lock, the CLI is single-purpose).  Partial results are
// returned alongside the error when individual experiments fail.
func RunSweep(req *SweepRequest) (*SweepResponse, error) {
	exps, err := ResolveExperiments(req.IDs)
	if err != nil {
		return nil, err
	}
	method, err := lp.ParseMethod(solverName(req.Solver))
	if err != nil {
		return nil, err
	}
	experiments.SetSolverMethod(method)
	if req.Pricing != "" {
		pricing, err := lp.ParsePricing(req.Pricing)
		if err != nil {
			return nil, err
		}
		experiments.SetPricing(pricing)
	} else {
		experiments.ResetPricing()
	}
	if req.Basis != "" {
		basis, err := lp.ParseBasis(req.Basis)
		if err != nil {
			return nil, err
		}
		experiments.SetBasis(basis)
	} else {
		experiments.ResetBasis()
	}
	experiments.SetWorkers(req.Workers)
	// Start each sweep from an empty batch pool: no built model, warm basis
	// or recorded symbolic factorization carries over from earlier work, so
	// the batch counters below are attributable to this sweep and a recorded
	// single-worker sweep reproduces them exactly.
	experiments.ResetBatches()

	// The embedded counters are the sweep's own work: a before/after
	// snapshot difference rather than a reset-then-read, so a live server's
	// process-wide counters (exposed on /v1/stats) stay monotonic across
	// sweeps.  The caller's exclusion guarantee is what makes the
	// difference attributable to this sweep alone.
	lpBefore := lp.StatsSnapshot()
	optBefore := opt.StatsSnapshot()
	results, runErr := experiments.RunAll(exps)

	resp := &SweepResponse{
		Solver:  method.String(),
		Pricing: experiments.SolverPricing().String(),
		Basis:   experiments.SolverBasis().String(),
		Results: make([]TableWire, 0, len(results)),
		LP:      lpCountersWire(lpCountersDiff(lp.StatsSnapshot(), lpBefore)),
		Opt:     optCountersWire(optCountersDiff(opt.StatsSnapshot(), optBefore)),
	}
	for _, r := range results {
		// One failed experiment must not hide the others' tables; failed
		// entries have a nil table and are skipped, mirroring pcbench.
		if r.Table == nil {
			continue
		}
		t := TableWire{
			ID:      r.Experiment.ID,
			Title:   r.Experiment.Title,
			Note:    r.Table.Note,
			Headers: r.Table.Headers,
			Rows:    r.Table.Rows,
		}
		if !req.Stable {
			t.Seconds = r.Elapsed.Seconds()
		}
		resp.Results = append(resp.Results, t)
	}
	return resp, runErr
}

// lpCountersDiff returns the counter growth between two snapshots (the
// counters are monotonic, so the difference is well defined).
func lpCountersDiff(after, before lp.Counters) lp.Counters {
	return lp.Counters{
		Solves:           after.Solves - before.Solves,
		Iterations:       after.Iterations - before.Iterations,
		PricingPasses:    after.PricingPasses - before.PricingPasses,
		Refactorizations: after.Refactorizations - before.Refactorizations,
		EtaColumns:       after.EtaColumns - before.EtaColumns,
		LUFills:          after.LUFills - before.LUFills,
		WarmStarts:       after.WarmStarts - before.WarmStarts,
		VerifiedSolves:   after.VerifiedSolves - before.VerifiedSolves,
		VerifyFailures:   after.VerifyFailures - before.VerifyFailures,
		CascadeFallbacks: after.CascadeFallbacks - before.CascadeFallbacks,
		SymbolicReuses:   after.SymbolicReuses - before.SymbolicReuses,
		NumericRefactors: after.NumericRefactors - before.NumericRefactors,
	}
}

// optCountersDiff returns the counter growth between two snapshots.
// PeakTable and Workers are running maxima, not sums, so their differences
// would be meaningless: the after-values are reported as is (for a fresh
// process — the CLI, the trajectory files — they equal the sweep's own peaks).
func optCountersDiff(after, before opt.Counters) opt.Counters {
	return opt.Counters{
		Searches:          after.Searches - before.Searches,
		Expanded:          after.Expanded - before.Expanded,
		Generated:         after.Generated - before.Generated,
		PrunedByBound:     after.PrunedByBound - before.PrunedByBound,
		DuplicateHits:     after.DuplicateHits - before.DuplicateHits,
		PrunedByDominance: after.PrunedByDominance - before.PrunedByDominance,
		LandmarkHits:      after.LandmarkHits - before.LandmarkHits,
		PeakTable:         after.PeakTable,
		Workers:           after.Workers,
		WorkerExpanded:    after.WorkerExpanded - before.WorkerExpanded,
	}
}

// solverName defaults an empty solver field to the production method.
func solverName(s string) string {
	if s == "" {
		return "revised"
	}
	return s
}

// EncodeSweep writes the sweep response in the trajectory JSON format:
// two-space indentation plus a trailing newline, byte-identical to what
// `pcbench -json` prints and what BENCH_*.json files record.
func EncodeSweep(w io.Writer, resp *SweepResponse) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(resp)
}
