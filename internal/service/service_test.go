package service_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"pfcache/internal/lp"
	"pfcache/internal/service"
	"pfcache/internal/sim"
	"pfcache/internal/single"
	"pfcache/internal/workload"
)

// testRequests is a mixed bag of schedule requests: every instance source
// (explicit sequence, generated workload, text format), single and parallel
// disks, greedy, LP and exact strategies.  Sizes are small so the suite stays
// fast under -race.
func testRequests(t *testing.T) []service.ScheduleRequest {
	t.Helper()
	inst := workload.Marshal(workload.Instance(workload.Zipf(24, 8, 1.2, 7), 4, 3, 2, workload.AssignStripe, 7))
	return []service.ScheduleRequest{
		{Strategy: "aggressive", Seq: []int{0, 1, 2, 3, 0, 1, 4, 2, 0, 3}, K: 3, F: 4},
		{Strategy: "conservative", Seq: []int{0, 1, 2, 3, 0, 1, 4, 2, 0, 3}, K: 3, F: 4},
		{Strategy: "delay:auto", Workload: &service.WorkloadSpec{Kind: "uniform", N: 32, Blocks: 10, Seed: 3}, K: 4, F: 4},
		{Strategy: "combination", Workload: &service.WorkloadSpec{Kind: "zipf", N: 32, Blocks: 10, S: 1.1, Seed: 5}, K: 4, F: 4, IncludeSchedule: true},
		{Strategy: "demand-lru", Workload: &service.WorkloadSpec{Kind: "scan", N: 24, Blocks: 8}, K: 4, F: 2},
		{Strategy: "opt", Seq: []int{0, 1, 2, 3, 0, 1, 2, 4, 0, 3, 1, 2}, K: 3, F: 3, IncludeSchedule: true},
		{Strategy: "lp-optimal", Workload: &service.WorkloadSpec{Kind: "interleaved", N: 20, Streams: 2, StreamLen: 5}, K: 4, F: 3, Disks: 2, Assign: "stripe"},
		{Strategy: "aggressive", Instance: inst},
		{Strategy: "lp-optimal", Instance: inst, IncludeSchedule: true},
		{Strategy: "opt", Workload: &service.WorkloadSpec{Kind: "loop", Blocks: 5, Repeats: 4}, K: 3, F: 2},
	}
}

// postSchedule is goroutine-safe: it reports failures as errors instead of
// failing the test directly.
func postSchedule(client *http.Client, url string, req *service.ScheduleRequest) ([]byte, string, int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, "", 0, fmt.Errorf("marshal request: %w", err)
	}
	resp, err := client.Post(url+"/v1/schedule", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, "", 0, fmt.Errorf("POST /v1/schedule: %w", err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", 0, fmt.Errorf("read response: %w", err)
	}
	return got, resp.Header.Get("X-Cache"), resp.StatusCode, nil
}

// TestServerScheduleEndToEnd hammers the server concurrently with duplicate
// requests and asserts that (a) every response is byte-identical to the
// sequential in-process reference, (b) duplicates are answered from the
// cache or coalesced instead of re-solving, and (c) the costs agree with
// running the algorithm directly.
func TestServerScheduleEndToEnd(t *testing.T) {
	reqs := testRequests(t)

	// Sequential reference bytes, computed without server, shards or cache.
	refs := make([][]byte, len(reqs))
	for i := range reqs {
		b, err := service.ScheduleBody(&reqs[i], lp.Options{})
		if err != nil {
			t.Fatalf("reference for request %d (%s): %v", i, reqs[i].Strategy, err)
		}
		refs[i] = b
	}

	srv := service.NewServer(service.Options{Shards: 4, CacheEntries: 64})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const goroutines = 16
	const iters = 20
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				i := (g*13 + it*7) % len(reqs)
				got, cache, status, err := postSchedule(ts.Client(), ts.URL, &reqs[i])
				if err != nil {
					errc <- err
					return
				}
				if status != http.StatusOK {
					errc <- fmt.Errorf("request %d: status %d: %s", i, status, got)
					return
				}
				if cache != "hit" && cache != "miss" && cache != "coalesced" {
					errc <- fmt.Errorf("request %d: unexpected X-Cache %q", i, cache)
					return
				}
				if !bytes.Equal(got, refs[i]) {
					errc <- fmt.Errorf("request %d (%s): served bytes differ from sequential reference:\nserved: %s\nwant:   %s",
						i, reqs[i].Strategy, got, refs[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	stats := srv.Stats()
	if stats.Computed != uint64(len(reqs)) {
		t.Errorf("server computed %d schedules for %d distinct requests; duplicates were re-solved",
			stats.Computed, len(reqs))
	}
	if stats.CacheHits == 0 {
		t.Errorf("no cache hits recorded across %d duplicate requests", goroutines*iters-len(reqs))
	}
	if stats.CacheMisses == 0 || stats.CacheEntries == 0 {
		t.Errorf("implausible cache stats: %+v", stats)
	}
	// The process-wide solver counters ride along on /v1/stats: the request
	// set includes lp-optimal and exact-search strategies, so both blocks
	// must show work.
	if stats.LP.Solves == 0 || stats.LP.Iterations == 0 {
		t.Errorf("stats carry no LP solver work: %+v", stats.LP)
	}
	if stats.Opt.Searches == 0 {
		t.Errorf("stats carry no exact-search work: %+v", stats.Opt)
	}
}

// TestServerScheduleMatchesDirectRun cross-checks the served costs against
// running the algorithm and executor directly, the same path the pcsim CLI
// uses.
func TestServerScheduleMatchesDirectRun(t *testing.T) {
	srv := service.NewServer(service.Options{Shards: 2, CacheEntries: 8})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	req := service.ScheduleRequest{Strategy: "aggressive", Seq: []int{0, 1, 2, 3, 0, 1, 4, 2, 0, 3}, K: 3, F: 4}
	got, _, status, err := postSchedule(ts.Client(), ts.URL, &req)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, got)
	}
	var resp service.ScheduleResponse
	if err := json.Unmarshal(got, &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}

	in, err := req.BuildInstance()
	if err != nil {
		t.Fatal(err)
	}
	sched, err := single.Aggressive(in)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(in, sched, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stall != res.Stall || resp.Elapsed != res.Elapsed || resp.FetchCount != res.FetchCount {
		t.Errorf("served costs (stall=%d elapsed=%d fetches=%d) != direct run (stall=%d elapsed=%d fetches=%d)",
			resp.Stall, resp.Elapsed, resp.FetchCount, res.Stall, res.Elapsed, res.FetchCount)
	}
}

// TestServerSweepMatchesInProcess asserts the /v1/sweep endpoint streams
// exactly the bytes `pcbench -json -stable` would print for the same
// configuration.
func TestServerSweepMatchesInProcess(t *testing.T) {
	srv := service.NewServer(service.Options{Shards: 2, CacheEntries: 8})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	req := &service.SweepRequest{IDs: []string{"E1", "E2"}, Stable: true, Workers: 1}
	body, _ := json.Marshal(req)
	resp, err := ts.Client().Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	served, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, served)
	}

	local, err := service.RunSweep(req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := service.EncodeSweep(&buf, local); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, buf.Bytes()) {
		t.Errorf("served sweep differs from in-process run:\nserved: %s\nlocal:  %s", served, buf.Bytes())
	}
	if srv.Stats().Sweeps != 1 {
		t.Errorf("sweep counter = %d, want 1", srv.Stats().Sweeps)
	}
}

// TestServerRejectsBadRequests covers the error paths: malformed JSON, a
// missing strategy, an over-specified instance source, an unknown strategy
// and an unknown experiment.
func TestServerRejectsBadRequests(t *testing.T) {
	srv := service.NewServer(service.Options{Shards: 1, CacheEntries: 4})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	post := func(path, body string) (int, string) {
		resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	cases := []struct {
		path, body string
		want       int
	}{
		{"/v1/schedule", "{not json", http.StatusBadRequest},
		{"/v1/schedule", `{"seq":[0,1],"k":1,"f":1}`, http.StatusBadRequest},                                                                     // no strategy
		{"/v1/schedule", `{"strategy":"aggressive"}`, http.StatusBadRequest},                                                                     // no instance source
		{"/v1/schedule", `{"strategy":"aggressive","seq":[0,1],"workload":{"kind":"scan","n":4,"blocks":2},"k":1,"f":1}`, http.StatusBadRequest}, // two sources
		{"/v1/schedule", `{"strategy":"nope","seq":[0,1,0],"k":2,"f":1}`, http.StatusUnprocessableEntity},
		{"/v1/schedule", `{"strategy":"aggressive","workload":{"kind":"uniform","n":-4,"blocks":2},"k":2,"f":1}`, http.StatusBadRequest},
		{"/v1/sweep", `{"ids":["E99"]}`, http.StatusBadRequest},
		{"/v1/sweep", `{"solver":"bogus"}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		if got, body := post(c.path, c.body); got != c.want {
			t.Errorf("POST %s %s: status %d (%s), want %d", c.path, c.body, got, body, c.want)
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp, err)
	}
	resp.Body.Close()
	resp, err = ts.Client().Get(ts.URL + "/v1/experiments")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("experiments: %v %v", resp, err)
	}
	var list []struct{ ID, Title string }
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatalf("decode experiments: %v", err)
	}
	resp.Body.Close()
	if len(list) != 11 {
		t.Errorf("experiment list has %d entries, want 11", len(list))
	}
}
