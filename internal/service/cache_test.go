package service

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"pfcache/internal/lpmodel"
)

func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache(2)
	c.put("a", []byte("A"))
	c.put("b", []byte("B"))
	if _, ok := c.get("a"); !ok { // touch a: b becomes least recently used
		t.Fatal("a missing right after put")
	}
	c.put("c", []byte("C")) // evicts b
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted as least recently used")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a was evicted although it was recently used")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("c missing right after put")
	}
	if got := c.len(); got != 2 {
		t.Errorf("cache holds %d entries, want 2", got)
	}
	if got := c.evictions.Load(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	// Overwriting an existing key must not grow the cache.
	c.put("c", []byte("C2"))
	if got := c.len(); got != 2 {
		t.Errorf("cache holds %d entries after overwrite, want 2", got)
	}
	if b, _ := c.get("c"); string(b) != "C2" {
		t.Errorf("overwrite lost: got %q", b)
	}
}

func TestLRUCacheDisabled(t *testing.T) {
	c := newLRUCache(0)
	c.put("a", []byte("A"))
	if _, ok := c.get("a"); ok {
		t.Error("disabled cache returned a hit")
	}
}

// TestFlightGroupCoalesces proves that duplicate concurrent requests share
// one computation: a leader enters the (gated) compute function, a crowd of
// duplicates piles up behind it, and when the gate opens everyone gets the
// leader's bytes while the function ran exactly once.
func TestFlightGroupCoalesces(t *testing.T) {
	g := newFlightGroup()
	var computes atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})

	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		body, err, coalesced := g.do(context.Background(), "k", func(context.Context) ([]byte, error) {
			computes.Add(1)
			close(started)
			<-release
			return []byte("payload"), nil
		})
		if err != nil || coalesced || string(body) != "payload" {
			t.Errorf("leader: body=%q err=%v coalesced=%v", body, err, coalesced)
		}
	}()
	<-started // the flight is now registered and blocked

	const dups = 8
	var wg sync.WaitGroup
	errs := make(chan error, dups)
	for i := 0; i < dups; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, err, coalesced := g.do(context.Background(), "k", func(context.Context) ([]byte, error) {
				computes.Add(1)
				return []byte("duplicate computation"), nil
			})
			if err != nil {
				errs <- err
				return
			}
			if !coalesced {
				errs <- fmt.Errorf("duplicate was not coalesced")
				return
			}
			if !bytes.Equal(body, []byte("payload")) {
				errs <- fmt.Errorf("duplicate got %q, want leader's payload", body)
			}
		}()
	}
	// Wait until every duplicate is parked on the flight before releasing
	// the leader; the coalesced counter counts parked duplicates.
	for g.coalesced.Load() < dups {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	<-leaderDone
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := computes.Load(); n != 1 {
		t.Errorf("compute ran %d times for %d concurrent duplicates, want 1", n, dups+1)
	}
	if n := g.coalesced.Load(); n != dups {
		t.Errorf("coalesced counter = %d, want %d", n, dups)
	}

	// The flight is gone: a later request computes afresh.
	body, err, coalesced := g.do(context.Background(), "k", func(context.Context) ([]byte, error) { return []byte("later"), nil })
	if err != nil || coalesced || string(body) != "later" {
		t.Errorf("post-flight request: body=%q err=%v coalesced=%v", body, err, coalesced)
	}
}

// TestShardPoolAffinity checks that equal hashes run on the same shard (the
// same batch pointer) and that the pool drains cleanly.
func TestShardPoolAffinity(t *testing.T) {
	p := newShardPool(3, 64)
	seen := make(map[uint64]*lpmodel.ModelBatch)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 30; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := uint64(i % 3)
			p.run(context.Background(), h, func(_ context.Context, b *lpmodel.ModelBatch) (bool, error) {
				mu.Lock()
				defer mu.Unlock()
				if prev, ok := seen[h]; ok && prev != b {
					t.Errorf("hash %d ran on two different batches", h)
				}
				seen[h] = b
				return false, nil
			})
		}(i)
	}
	wg.Wait()
	p.close()
	if len(seen) != 3 {
		t.Errorf("saw %d distinct batches, want 3", len(seen))
	}
}
