package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"pfcache/internal/service"
)

// TestScheduleCanceledClientNoGoroutineLeak cancels clients mid-request and
// asserts that the server sheds the abandoned work: the next request is
// served promptly and the process returns to its baseline goroutine count
// (nothing is left blocked on a dead request).
func TestScheduleCanceledClientNoGoroutineLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()

	srv := service.NewServer(service.Options{Shards: 1, CacheEntries: 8})
	ts := httptest.NewServer(srv)

	// An exact-search request big enough that a millisecond-scale client
	// deadline expires while the computation is queued or running.
	slow, _ := json.Marshal(service.ScheduleRequest{
		Strategy: "opt",
		Workload: &service.WorkloadSpec{Kind: "zipf", N: 26, Blocks: 11, S: 1.1, Seed: 9},
		K:        5, F: 5,
	})
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
		req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/schedule", bytes.NewReader(slow))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Do(req)
		if err == nil {
			// The computation occasionally beats a tiny deadline; that is
			// fine — the test cares about the abandoned case.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		cancel()
	}

	// The shard must come free again: a fresh fast request completes within
	// an ordinary deadline even though canceled work was just abandoned.
	fast, _ := json.Marshal(service.ScheduleRequest{
		Strategy: "aggressive", Seq: []int{0, 1, 2, 0, 1}, K: 2, F: 2,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/schedule", bytes.NewReader(fast))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("request after canceled traffic failed: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after canceled traffic: status %d", resp.StatusCode)
	}

	ts.CloseClientConnections()
	ts.Close()
	srv.Close()

	// Goroutines unwind asynchronously; poll up to a deadline.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestScheduleRequestBodyTooLarge asserts oversized bodies get a clean 413
// on both POST endpoints instead of a parse attempt or a connection drop.
func TestScheduleRequestBodyTooLarge(t *testing.T) {
	srv := service.NewServer(service.Options{Shards: 1, CacheEntries: 4})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// A syntactically valid prefix whose string payload blows the 16 MiB
	// bound: the decoder must hit the size limit, not a syntax error.
	huge := `{"strategy":"` + strings.Repeat("a", 17<<20) + `"}`
	for _, path := range []string{"/v1/schedule", "/v1/sweep"} {
		resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(huge))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("POST %s with oversized body: status %d (%s), want 413",
				path, resp.StatusCode, body)
		}
	}
}

// TestReadinessAndDrain covers the liveness/readiness split: /readyz flips
// to 503 when the server drains while /healthz stays 200, and the server
// keeps answering requests throughout the drain window.
func TestReadinessAndDrain(t *testing.T) {
	srv := service.NewServer(service.Options{Shards: 1, CacheEntries: 4})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	get := func(path string) int {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz before drain: %d, want 200", got)
	}
	srv.BeginDrain()
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("/readyz during drain: %d, want 503", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Errorf("/healthz during drain: %d, want 200 (liveness is not readiness)", got)
	}
	if !srv.Stats().Draining {
		t.Error("stats do not report draining")
	}

	// In-flight and late-arriving requests are served normally during drain.
	body, _ := json.Marshal(service.ScheduleRequest{
		Strategy: "aggressive", Seq: []int{0, 1, 2, 0, 1}, K: 2, F: 2,
	})
	resp, err := ts.Client().Post(ts.URL+"/v1/schedule", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("schedule during drain: status %d, want 200", resp.StatusCode)
	}
}

// TestServerTimeoutStatus asserts a server-side schedule deadline surfaces
// as 504 with the timeout counted in stats.
func TestServerTimeoutStatus(t *testing.T) {
	srv := service.NewServer(service.Options{
		Shards: 1, CacheEntries: 4, ScheduleTimeout: time.Nanosecond,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body, _ := json.Marshal(service.ScheduleRequest{
		Strategy: "aggressive", Seq: []int{0, 1, 2, 0, 1}, K: 2, F: 2,
	})
	resp, err := ts.Client().Post(ts.URL+"/v1/schedule", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, b)
	}
	if srv.Stats().Timeouts == 0 {
		t.Error("timeout not counted in stats")
	}
}

// TestStatsCarryRobustnessCounters sanity-checks the new wire fields exist
// and decode.
func TestStatsCarryRobustnessCounters(t *testing.T) {
	srv := service.NewServer(service.Options{Shards: 1, CacheEntries: 4})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"shed", "panics", "canceled", "timeouts", "draining"} {
		if _, ok := m[k]; !ok {
			t.Errorf("stats missing %q: %v", k, m)
		}
	}
	_ = fmt.Sprint(m)
}
