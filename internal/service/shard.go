package service

import (
	"runtime"
	"sync"

	"pfcache/internal/lp"
)

// shard is one worker of the service: a goroutine draining a task queue,
// owning a reusable lp.Solver and the scratch state of its computations.
// Requests for the same instance always hash to the same shard, so a hot
// instance contends on one solver's buffers instead of re-allocating
// tableaus across the process.
type shard struct {
	tasks  chan func(*lp.Solver)
	solver *lp.Solver
}

// shardPool is a fixed set of shards plus the goroutine lifecycle around
// them.
type shardPool struct {
	shards []*shard
	wg     sync.WaitGroup
}

// newShardPool starts n shard goroutines (n <= 0 means one per CPU).
func newShardPool(n int) *shardPool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &shardPool{shards: make([]*shard, n)}
	for i := range p.shards {
		s := &shard{
			tasks:  make(chan func(*lp.Solver)),
			solver: lp.NewSolver(),
		}
		p.shards[i] = s
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for task := range s.tasks {
				task(s.solver)
			}
		}()
	}
	return p
}

// size returns the number of shards.
func (p *shardPool) size() int { return len(p.shards) }

// run executes fn on the shard selected by hash and blocks until it
// completes.  fn receives the shard's solver.
func (p *shardPool) run(hash uint64, fn func(*lp.Solver)) {
	s := p.shards[hash%uint64(len(p.shards))]
	done := make(chan struct{})
	s.tasks <- func(solver *lp.Solver) {
		defer close(done)
		fn(solver)
	}
	<-done
}

// close stops every shard goroutine and waits for in-flight tasks to
// finish.  run must not be called after close.
func (p *shardPool) close() {
	for _, s := range p.shards {
		close(s.tasks)
	}
	p.wg.Wait()
}
