package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"pfcache/internal/lpmodel"
)

// ErrShardBusy is returned by shardPool.run when the selected shard's queue
// is full: the pool sheds the request instead of queueing unboundedly, and
// the HTTP layer translates it into 503 + Retry-After.
var ErrShardBusy = errors.New("service: shard queue full")

// PanicError wraps a panic recovered from a shard task.  The worker survives
// (the panic is confined to the one request); the value travels to the
// caller as an ordinary error.
type PanicError struct {
	Value any
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("service: panic during compute: %v", e.Value)
}

// shardTask is one queued unit of work.  ctx is the computation's context
// (the flight context for coalesced schedule requests): a task whose context
// is already dead when a worker picks it up is skipped without touching the
// batch, so canceled requests release their shard in queue-drain time, not
// solve time.  fn's first result is the taint verdict: true means the batch
// suffered a numerical failure during the task (even a recovered one) and
// must be discarded.
type shardTask struct {
	ctx  context.Context
	fn   func(ctx context.Context, batch *lpmodel.ModelBatch) (taint bool, err error)
	err  error
	done chan struct{}
}

// shard is one worker of the service: a goroutine draining a bounded task
// queue, owning a reusable lpmodel.ModelBatch — built models, solver arenas,
// symbolic factorizations and per-pattern warm bases — as the scratch state
// of its computations.  Requests for the same instance always hash to the
// same shard, so a hot instance lands on the shard whose batch has already
// built its model and analysed its basis pattern, instead of re-allocating
// tableaus across the process.
type shard struct {
	tasks chan *shardTask
	batch *lpmodel.ModelBatch
}

// shardPool is a fixed set of shards plus the goroutine lifecycle around
// them.
type shardPool struct {
	shards []*shard
	wg     sync.WaitGroup

	shed    atomic.Uint64 // tasks rejected because a queue was full
	panics  atomic.Uint64 // panics recovered from tasks
	skipped atomic.Uint64 // tasks dropped because their context died in queue
	resets  atomic.Uint64 // shard batches discarded after a numerical failure
}

// newShardPool starts n shard goroutines (n <= 0 means one per CPU), each
// with a queue of depth queueDepth (<= 0 means a small default).  The queue
// bound is the load-shedding point: when a shard is queueDepth requests
// behind, further work for it is rejected with ErrShardBusy.
func newShardPool(n, queueDepth int) *shardPool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if queueDepth <= 0 {
		queueDepth = defaultQueueDepth
	}
	p := &shardPool{shards: make([]*shard, n)}
	for i := range p.shards {
		s := &shard{
			tasks: make(chan *shardTask, queueDepth),
			batch: lpmodel.NewModelBatch(),
		}
		p.shards[i] = s
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for task := range s.tasks {
				p.runTask(s, task)
			}
		}()
	}
	return p
}

// defaultQueueDepth bounds each shard's backlog.  A full queue means the
// shard is this many solves behind; shedding there keeps worst-case queueing
// latency proportional to the bound instead of to the burst size.
const defaultQueueDepth = 64

// runTask executes one task on the worker goroutine, converting a panic in
// the computation into an error for the caller so a poisoned instance kills
// one request, not the shard.  A task that taints its batch — a numerical
// failure, even one the cascade recovered from, or a panic that may have
// left batch state half-written — gets the whole batch discarded: models,
// warm bases and recorded symbolic factorizations alike, since any of them
// may carry the damage.  The next request on this shard starts from fresh
// buffers, at the cost of re-allocating and re-analysing once.
func (p *shardPool) runTask(s *shard, t *shardTask) {
	defer close(t.done)
	defer func() {
		if r := recover(); r != nil {
			p.panics.Add(1)
			t.err = &PanicError{Value: r}
			p.discardBatch(s)
		}
	}()
	if err := t.ctx.Err(); err != nil {
		p.skipped.Add(1)
		t.err = err
		return
	}
	taint, err := t.fn(t.ctx, s.batch)
	t.err = err
	if taint {
		p.discardBatch(s)
	}
}

// discardBatch replaces the shard's batch with a fresh one.  Only the
// shard's own goroutine calls it, so no locking is needed.
func (p *shardPool) discardBatch(s *shard) {
	s.batch = lpmodel.NewModelBatch()
	p.resets.Add(1)
}

// size returns the number of shards.
func (p *shardPool) size() int { return len(p.shards) }

// run executes fn on the shard selected by hash and waits for it to
// complete or for ctx to end.  fn receives the shard's batch on the
// shard's goroutine.  When the shard's queue is full the task is rejected
// immediately with ErrShardBusy (load shedding); when ctx ends first, run
// returns ctx's error while the queued task drains as a cheap no-op (the
// worker re-checks ctx before touching the batch).
func (p *shardPool) run(ctx context.Context, hash uint64, fn func(context.Context, *lpmodel.ModelBatch) (bool, error)) error {
	s := p.shards[hash%uint64(len(p.shards))]
	t := &shardTask{ctx: ctx, fn: fn, done: make(chan struct{})}
	select {
	case s.tasks <- t:
	case <-ctx.Done():
		return ctx.Err()
	default:
		p.shed.Add(1)
		return ErrShardBusy
	}
	select {
	case <-t.done:
		return t.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// close stops every shard goroutine and waits for in-flight tasks to
// finish.  run must not be called after close.
func (p *shardPool) close() {
	for _, s := range p.shards {
		close(s.tasks)
	}
	p.wg.Wait()
}
