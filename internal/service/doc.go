// Package service exposes the prefetching/caching algorithms and the
// experiment suite as a long-lived HTTP/JSON service (command pcserve).
//
// Two request families are served:
//
//   - POST /v1/schedule computes one schedule: the request names an instance
//     (an explicit reference sequence, a generated workload, or the pfcache
//     text format) and a strategy (aggressive, conservative, delay:<d>,
//     delay:auto, combination, demand-*, lp-optimal, opt, ...), and the
//     response carries the schedule, its stall/elapsed time and the
//     solver/search counters of the computation.
//   - POST /v1/sweep runs whole named experiments (E1-E8, A1, A2) through
//     experiments.RunAll and streams exactly the JSON that `pcbench -json`
//     emits; pcbench itself builds its -json output through RunSweep, so the
//     CLI and the service are thin clients of one code path.
//
// Internally, schedule requests are sharded by the instance's canonical
// fingerprint (core.Instance.Fingerprint) onto a fixed set of worker shards.
// Each shard processes its requests serially on one goroutine and owns a
// reusable lp.Solver, so the hot LP path keeps the steady-state allocation
// discipline of the solver pool while never sharing a tableau between
// concurrent solves.  In front of the shards sit a bounded LRU cache keyed
// by the canonical instance encoding plus the strategy (so repeated requests
// are answered from memory, byte-identically) and an in-flight table that
// coalesces duplicate concurrent requests into a single computation.
//
// Sweeps take an exclusive lock while schedule requests hold a shared one:
// the process-wide lp/opt counters embedded in sweep output stay exactly
// reproducible because no other solver work runs during a sweep.
//
// The service is hardened for fleet use behind a front tier (internal/front,
// command pcfront):
//
//   - Request contexts thread from the HTTP handler through the coalescing
//     table and shard queues into the solver loop, so a disconnected client
//     or an expired deadline cancels the work it queued; a coalesced
//     follower's cancellation only detaches that follower, and the shared
//     computation itself stops when its last waiter is gone.
//   - Shard queues are bounded; beyond the configured depth requests shed
//     with 503 and a Retry-After hint instead of queueing unboundedly, and a
//     server-side ScheduleTimeout maps to 504.
//   - Solver panics are recovered per-request into 500s (and counted), so
//     one poisoned instance cannot take the process down.
//   - lp-optimal solves run with the solver's verification cascade
//     (lp.Options.Cascade): every served LP solution carries a passed
//     certificate, and a solve damaged by numeric faults re-solves itself
//     down the engine ladder, byte-identically to a clean solve.  A shard
//     whose solve was downgraded — or whose solver panicked — discards its
//     pooled solver for a fresh one (counted in /v1/stats as
//     solver_resets), so latent corruption never carries into later
//     requests.  A cascade exhausted on every rung surfaces as a typed 500
//     carrying the lp.CascadeExhaustedError text, which the front tier
//     treats as retryable; failures are never cached.  The lp block of
//     /v1/stats exposes verified_solves, verify_failures and
//     cascade_fallbacks for dashboards to alarm on.
//   - Request bodies are bounded (413 beyond 16 MiB), and /healthz
//     (liveness: always 200 while the process runs) is split from /readyz
//     (readiness: 503 after BeginDrain), which lets a supervisor drain a
//     replica before stopping it.
package service
