// Package service exposes the prefetching/caching algorithms and the
// experiment suite as a long-lived HTTP/JSON service (command pcserve).
//
// Three request families are served:
//
//   - POST /v1/schedule computes one schedule: the request names an instance
//     (an explicit reference sequence, a generated workload, or the pfcache
//     text format) and a strategy (aggressive, conservative, delay:<d>,
//     delay:auto, combination, demand-*, lp-optimal, opt, ...), and the
//     response carries the schedule, its stall/elapsed time and the
//     solver/search counters of the computation.
//   - POST /v1/sweep runs whole named experiments (E1-E8, A1, A2) through
//     experiments.RunAll and streams exactly the JSON that `pcbench -json`
//     emits; pcbench itself builds its -json output through RunSweep, so the
//     CLI and the service are thin clients of one code path.
//   - The session family serves evolving traces incrementally.  POST
//     /v1/session opens a session over an instance and returns its plan plus
//     a session ID; POST /v1/session/{id}/extend appends requests to the
//     trace and re-plans; DELETE /v1/session/{id} closes it.  A session owns
//     a live LP model and solver pinned to one shard: an extension grows the
//     model in place (lpmodel.Model.Extend) and re-optimises with the dual
//     simplex from the previous optimal basis (lp.Options.Dual) instead of
//     rebuilding, which is what makes per-step re-planning O(pivots changed)
//     rather than O(whole program).  Extensions naming brand-new blocks,
//     numeric taints, evictions and restarts all fall back transparently to
//     a cold rebuild of the session's full transcript.  Sessions live in a
//     bounded LRU with an idle TTL; every session solve runs under the
//     verification cascade, so an extension's plan is cost-equivalent —
//     same certified LP bound, same stall — to a cold /v1/schedule of the
//     full extended trace.  An unknown, closed or expired session ID is a
//     404, which a session-aware front tier treats as "replay the
//     transcript onto a fresh session".
//
// Internally, schedule requests are sharded by the instance's canonical
// fingerprint (core.Instance.Fingerprint) onto a fixed set of worker shards.
// Each shard processes its requests serially on one goroutine and owns a
// reusable lpmodel.ModelBatch: the built LP models of its recent instances,
// one lp.Solver whose arenas are sized once and reused allocation-free, the
// recorded symbolic factorizations of its basis patterns and a warm basis
// per problem pattern.  Requests for the same instance always hash to the
// same shard, so within a shard every level of work is shared — a repeated
// instance (a cache miss after eviction) skips the model rebuild and pivots,
// a same-shaped instance reuses the symbolic analysis and warm-starts — and
// across shards nothing is shared, so no tableau is ever touched by two
// concurrent solves.  A shard's batch lives until a solve on it is tainted
// (see below); only then is it discarded wholesale.  In front of the shards
// sit a bounded LRU cache keyed by the canonical instance encoding plus the
// strategy (so repeated requests are answered from memory, byte-identically)
// and an in-flight table that coalesces duplicate concurrent requests into a
// single computation.
//
// Sweeps take an exclusive lock while schedule requests hold a shared one:
// the process-wide lp/opt counters embedded in sweep output stay exactly
// reproducible because no other solver work runs during a sweep.
//
// The service is hardened for fleet use behind a front tier (internal/front,
// command pcfront):
//
//   - Request contexts thread from the HTTP handler through the coalescing
//     table and shard queues into the solver loop, so a disconnected client
//     or an expired deadline cancels the work it queued; a coalesced
//     follower's cancellation only detaches that follower, and the shared
//     computation itself stops when its last waiter is gone.
//   - Shard queues are bounded; beyond the configured depth requests shed
//     with 503 and a Retry-After hint instead of queueing unboundedly, and a
//     server-side ScheduleTimeout maps to 504.
//   - Solver panics are recovered per-request into 500s (and counted), so
//     one poisoned instance cannot take the process down.
//   - lp-optimal solves run with the solver's verification cascade
//     (lp.Options.Cascade): every served LP solution carries a passed
//     certificate, and a solve damaged by numeric faults re-solves itself
//     down the engine ladder, byte-identically to a clean solve.  A shard
//     whose solve was downgraded — or whose solver panicked — discards its
//     whole batch for a fresh one (counted in /v1/stats as solver_resets):
//     the models, warm bases and recorded symbolic factorizations that were
//     live during the failure are all suspect, so latent corruption never
//     carries into later requests.  A cascade exhausted on every rung
//     surfaces as a typed 500 carrying the lp.CascadeExhaustedError text,
//     which the front tier treats as retryable; failures are never cached.
//     The lp block of /v1/stats exposes verified_solves, verify_failures,
//     cascade_fallbacks, symbolic_reuses and numeric_refactors for
//     dashboards to alarm on.
//   - Request bodies are bounded (413 beyond 16 MiB), and /healthz
//     (liveness: always 200 while the process runs) is split from /readyz
//     (readiness: 503 after BeginDrain), which lets a supervisor drain a
//     replica before stopping it.
package service
