package workload

import "fmt"

// ParseAssignment resolves a disk-assignment strategy by name ("stripe",
// "partition" or "random").  It is the inverse of DiskAssignment.String and
// is used by the command-line tools and the sweep service's wire format.
func ParseAssignment(name string) (DiskAssignment, error) {
	switch name {
	case "", "stripe":
		return AssignStripe, nil
	case "partition":
		return AssignPartition, nil
	case "random":
		return AssignRandom, nil
	}
	return 0, fmt.Errorf("workload: unknown disk assignment %q (want stripe, partition or random)", name)
}
