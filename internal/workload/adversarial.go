package workload

import (
	"fmt"

	"pfcache/internal/core"
)

// AggressiveAdversary builds the lower-bound instance of Theorem 2 of the
// paper: a phased request sequence on which the Aggressive algorithm's
// elapsed time approaches 1 + (F-2)/(k + (k-1)/(F-1) + 2) times the optimal
// elapsed time, i.e. for long sequences its approximation ratio approaches
// min{1 + F/(k + (k-1)/(F-1)), 2}.
//
// The construction requires F > 1, F <= k and (F-1) dividing (k-1).  Let
// l = (k-1)/(F-1).  Every phase has k + l requests: it requests a1, then the
// l "new" blocks introduced in the previous phase, then a2 .. a_{k-l}, and
// finally l brand-new blocks.  The cache initially holds a1..a_{k-l} and the
// l new blocks of a virtual phase 0.  Aggressive starts fetching the current
// phase's new blocks right after a1, is forced to evict a1 first, and pays
// F-1 extra stall time re-loading it; the optimum waits one request and
// evicts the previous phase's blocks instead.
func AggressiveAdversary(k, f, phases int) (*core.Instance, error) {
	if f <= 1 {
		return nil, fmt.Errorf("workload: AggressiveAdversary needs F > 1, got F=%d", f)
	}
	if f > k {
		return nil, fmt.Errorf("workload: AggressiveAdversary needs F <= k, got F=%d k=%d", f, k)
	}
	if (k-1)%(f-1) != 0 {
		return nil, fmt.Errorf("workload: AggressiveAdversary needs (F-1) | (k-1), got k=%d F=%d", k, f)
	}
	if phases < 1 {
		return nil, fmt.Errorf("workload: AggressiveAdversary needs at least one phase, got %d", phases)
	}
	l := (k - 1) / (f - 1)
	if k-l < 1 {
		return nil, fmt.Errorf("workload: AggressiveAdversary needs k - (k-1)/(F-1) >= 1, got k=%d F=%d", k, f)
	}

	// Block IDs: a_j -> j-1 for j = 1..k-l; the l new blocks of phase i
	// (i >= 0) occupy IDs (k-l) + i*l .. (k-l) + (i+1)*l - 1.
	aBlock := func(j int) core.BlockID { return core.BlockID(j - 1) }
	bBlock := func(phase, j int) core.BlockID { return core.BlockID((k - l) + phase*l + (j - 1)) }

	var seq core.Sequence
	for i := 1; i <= phases; i++ {
		seq = append(seq, aBlock(1))
		for j := 1; j <= l; j++ {
			seq = append(seq, bBlock(i-1, j))
		}
		for j := 2; j <= k-l; j++ {
			seq = append(seq, aBlock(j))
		}
		for j := 1; j <= l; j++ {
			seq = append(seq, bBlock(i, j))
		}
	}

	initial := make([]core.BlockID, 0, k)
	for j := 1; j <= k-l; j++ {
		initial = append(initial, aBlock(j))
	}
	for j := 1; j <= l; j++ {
		initial = append(initial, bBlock(0, j))
	}

	in := core.SingleDisk(seq, k, f).WithInitialCache(initial...)
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("workload: AggressiveAdversary produced an invalid instance: %w", err)
	}
	return in, nil
}

// AggressiveAdversaryRatioBound returns the asymptotic lower bound of
// Theorem 2 on Aggressive's approximation ratio for the given parameters,
// min{1 + F/(k + (k-1)/(F-1)), 2}.
func AggressiveAdversaryRatioBound(k, f int) float64 {
	if f <= 1 {
		return 1
	}
	r := 1 + float64(f)/(float64(k)+float64(k-1)/float64(f-1))
	if r > 2 {
		return 2
	}
	return r
}

// ConservativeAdversary builds a simple instance family on which the
// Conservative algorithm approaches its approximation ratio of 2: a cyclic
// scan over k+1 blocks with F >= k.  Every request after the first pass is a
// MIN fault that Conservative can overlap with at most k cached requests,
// while for F >= k the optimum pays roughly the same number of fetches, so
// both pay about one fetch per request; with F comparable to k the measured
// gap between Conservative and an aggressive prefetcher illustrates the
// separation studied in Section 2.
func ConservativeAdversary(k, f, repeats int) *core.Instance {
	seq := Loop(k+1, repeats)
	return core.SingleDisk(seq, k, f)
}
