// Package workload generates request sequences and problem instances for the
// experiment harness.
//
// The paper contains no measured workloads; its statements are worst-case
// bounds and constructions.  The generators in this package therefore cover
// two needs.  First, the synthetic access patterns that the integrated
// prefetching/caching literature (Cao et al., Kimbrel et al.) uses to
// motivate the problem: uniformly random accesses, Zipf-distributed hot/cold
// accesses, sequential scans, repeated loops slightly larger than the cache,
// and phased working sets.  Second, the paper's own adversarial
// constructions, most importantly the Theorem 2 phase construction that
// drives the Aggressive algorithm to its worst-case approximation ratio.
//
// For parallel-disk experiments the package assigns blocks to disks by
// striping, by hashing, or by contiguous partitioning, and it can also
// generate per-disk interleaved streams.  Instances can be serialised to and
// parsed from a small text format used by the command line tools.
package workload
