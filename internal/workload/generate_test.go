package workload

import (
	"math"
	"strings"
	"testing"

	"pfcache/internal/core"
)

func TestUniformDeterministicAndInRange(t *testing.T) {
	a := Uniform(100, 7, 42)
	b := Uniform(100, 7, 42)
	if len(a) != 100 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Uniform not deterministic at %d", i)
		}
		if a[i] < 0 || a[i] >= 7 {
			t.Fatalf("block out of range: %v", a[i])
		}
	}
	c := Uniform(100, 7, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("different seeds produced identical sequences")
	}
}

func TestZipfSkew(t *testing.T) {
	seq := Zipf(5000, 10, 1.2, 1)
	counts := make(map[core.BlockID]int)
	for _, b := range seq {
		if b < 0 || b >= 10 {
			t.Fatalf("block out of range: %v", b)
		}
		counts[b]++
	}
	if counts[0] <= counts[9] {
		t.Fatalf("Zipf not skewed: block0=%d block9=%d", counts[0], counts[9])
	}
	// s = 0 is uniform-ish: the most popular block should not dominate.
	flat := Zipf(5000, 10, 0, 1)
	fc := make(map[core.BlockID]int)
	for _, b := range flat {
		fc[b]++
	}
	if float64(fc[0]) > 0.3*float64(len(flat)) {
		t.Fatalf("Zipf with s=0 too skewed: %d of %d", fc[0], len(flat))
	}
}

func TestSequentialScanAndLoop(t *testing.T) {
	seq := SequentialScan(10, 4)
	want := core.Sequence{0, 1, 2, 3, 0, 1, 2, 3, 0, 1}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("SequentialScan[%d] = %v, want %v", i, seq[i], want[i])
		}
	}
	loop := Loop(3, 2)
	if len(loop) != 6 || loop[0] != 0 || loop[3] != 0 || loop[5] != 2 {
		t.Fatalf("Loop = %v", loop)
	}
}

func TestPhasedWorkingSets(t *testing.T) {
	seq := Phased(3, 20, 5, 1, 7)
	if len(seq) != 60 {
		t.Fatalf("len = %d", len(seq))
	}
	// The last phase uses blocks starting at 2*(5-1) = 8.
	foundHigh := false
	for _, b := range seq[40:] {
		if b < 8 || b >= 13 {
			t.Fatalf("phase 3 block out of range: %v", b)
		}
		if b >= 10 {
			foundHigh = true
		}
	}
	if !foundHigh {
		t.Logf("phase 3 never used its upper blocks (possible but unlikely)")
	}
}

func TestInterleavedStreams(t *testing.T) {
	seq := Interleaved(12, 3, 4)
	// Stream s owns blocks [4s, 4s+4); request i belongs to stream i%3.
	for i, b := range seq {
		s := i % 3
		if int(b) < 4*s || int(b) >= 4*s+4 {
			t.Fatalf("request %d block %v outside stream %d", i, b, s)
		}
	}
	// Within a stream the accesses are sequential.
	if seq[0] != 0 || seq[3] != 1 || seq[6] != 2 {
		t.Fatalf("stream 0 not sequential: %v", seq)
	}
}

func TestMixed(t *testing.T) {
	seq := Mixed(100, 8, 16, 5, 3)
	if len(seq) != 100 {
		t.Fatalf("len = %d", len(seq))
	}
	sawScan := false
	for _, b := range seq {
		if int(b) >= 8+16 || b < 0 {
			t.Fatalf("block out of range: %v", b)
		}
		if int(b) >= 8 {
			sawScan = true
		}
	}
	if !sawScan {
		t.Fatalf("no scan blocks generated")
	}
}

func TestGeneratorPanics(t *testing.T) {
	cases := []func(){
		func() { Uniform(-1, 3, 0) },
		func() { Uniform(3, 0, 0) },
		func() { Zipf(3, 0, 1, 0) },
		func() { SequentialScan(3, 0) },
		func() { Loop(0, 1) },
		func() { Phased(1, 1, 0, 0, 0) },
		func() { Phased(1, 1, 2, 3, 0) },
		func() { Interleaved(1, 0, 1) },
		func() { Mixed(1, 0, 1, 1, 0) },
		func() { AssignDisks(core.Sequence{0}, 0, AssignStripe, 0) },
		func() { AssignDisks(core.Sequence{0}, 2, DiskAssignment(9), 0) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestAssignDisks(t *testing.T) {
	seq := SequentialScan(20, 10)
	stripe := AssignDisks(seq, 3, AssignStripe, 0)
	for b, d := range stripe {
		if d != int(b)%3 {
			t.Fatalf("stripe: block %v on disk %d", b, d)
		}
	}
	part := AssignDisks(seq, 3, AssignPartition, 0)
	// Contiguity: disk index must be non-decreasing in block ID.
	prev := -1
	for b := core.BlockID(0); b < 10; b++ {
		d := part[b]
		if d < prev {
			t.Fatalf("partition not contiguous at block %v", b)
		}
		prev = d
	}
	rnd := AssignDisks(seq, 3, AssignRandom, 5)
	for b, d := range rnd {
		if d < 0 || d >= 3 {
			t.Fatalf("random: block %v on disk %d", b, d)
		}
	}
	for _, s := range []DiskAssignment{AssignStripe, AssignPartition, AssignRandom, DiskAssignment(9)} {
		if s.String() == "" {
			t.Errorf("empty assignment name")
		}
	}
}

func TestInstanceHelper(t *testing.T) {
	seq := SequentialScan(10, 5)
	single := Instance(seq, 3, 2, 1, AssignStripe, 0)
	if err := single.Validate(); err != nil {
		t.Fatalf("single-disk instance invalid: %v", err)
	}
	multi := Instance(seq, 3, 2, 2, AssignStripe, 0)
	if err := multi.Validate(); err != nil {
		t.Fatalf("multi-disk instance invalid: %v", err)
	}
	if multi.Disks != 2 {
		t.Fatalf("Disks = %d", multi.Disks)
	}
}

func TestAggressiveAdversaryStructure(t *testing.T) {
	k, f, phases := 7, 4, 3
	in, err := AggressiveAdversary(k, f, phases)
	if err != nil {
		t.Fatalf("AggressiveAdversary: %v", err)
	}
	l := (k - 1) / (f - 1) // 2
	if l != 2 {
		t.Fatalf("unexpected l = %d", l)
	}
	if in.N() != phases*(k+l) {
		t.Fatalf("n = %d, want %d", in.N(), phases*(k+l))
	}
	if len(in.InitialCache) != k {
		t.Fatalf("initial cache size = %d, want %d", len(in.InitialCache), k)
	}
	// Phase 1 must be: a1, b0_1, b0_2, a2..a5, b1_1, b1_2.
	phase1 := in.Seq[:k+l]
	want := core.Sequence{0, 5, 6, 1, 2, 3, 4, 7, 8}
	for i := range want {
		if phase1[i] != want[i] {
			t.Fatalf("phase 1 = %v, want %v", phase1, want)
		}
	}
	// The new blocks of phase i are requested again exactly once, early in
	// phase i+1.
	ix := core.NewIndex(in.Seq)
	if got := ix.Count(7); got != 2 {
		t.Fatalf("block b1_1 referenced %d times, want 2", got)
	}
	// Blocks of the final phase are referenced once.
	lastNew := in.Seq[in.N()-1]
	if got := ix.Count(lastNew); got != 1 {
		t.Fatalf("final new block referenced %d times, want 1", got)
	}
	if err := in.Validate(); err != nil {
		t.Fatalf("instance invalid: %v", err)
	}
}

func TestAggressiveAdversaryErrors(t *testing.T) {
	cases := []struct{ k, f, phases int }{
		{5, 1, 1}, // F too small
		{4, 6, 1}, // F > k
		{6, 4, 1}, // (F-1) does not divide (k-1)
		{7, 4, 0}, // no phases
		{3, 3, 1}, // k - l = 3 - 1 = 2 >= 1 is fine; use a genuinely bad one below
	}
	for i, tc := range cases[:4] {
		if _, err := AggressiveAdversary(tc.k, tc.f, tc.phases); err == nil {
			t.Errorf("case %d (k=%d F=%d phases=%d): expected error", i, tc.k, tc.f, tc.phases)
		}
	}
	// k=3, F=3 gives l=1, k-l=2: valid.
	if _, err := AggressiveAdversary(3, 3, 1); err != nil {
		t.Errorf("k=3 F=3 should be valid: %v", err)
	}
}

func TestAggressiveAdversaryRatioBound(t *testing.T) {
	if got := AggressiveAdversaryRatioBound(7, 4); math.Abs(got-(1+4.0/9.0)) > 1e-12 {
		t.Errorf("bound = %f", got)
	}
	if got := AggressiveAdversaryRatioBound(2, 10); got != 2 {
		t.Errorf("bound should clamp at 2, got %f", got)
	}
	if got := AggressiveAdversaryRatioBound(4, 1); got != 1 {
		t.Errorf("bound for F<=1 = %f, want 1", got)
	}
}

func TestConservativeAdversary(t *testing.T) {
	in := ConservativeAdversary(4, 4, 3)
	if err := in.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if in.N() != 15 {
		t.Fatalf("n = %d, want 15", in.N())
	}
	if len(in.Seq.Distinct()) != 5 {
		t.Fatalf("distinct = %d, want 5", len(in.Seq.Distinct()))
	}
}

func TestMarshalParseRoundTrip(t *testing.T) {
	seq := Uniform(50, 9, 3)
	in := Instance(seq, 4, 3, 3, AssignStripe, 0).WithInitialCache(0, 1)
	text := Marshal(in)
	back, err := ParseString(text)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if back.K != in.K || back.F != in.F || back.Disks != in.Disks {
		t.Fatalf("round trip changed parameters: %+v", back)
	}
	if len(back.Seq) != len(in.Seq) {
		t.Fatalf("round trip changed sequence length")
	}
	for i := range in.Seq {
		if back.Seq[i] != in.Seq[i] {
			t.Fatalf("round trip changed request %d", i)
		}
	}
	for _, b := range in.Blocks() {
		if back.Disk(b) != in.Disk(b) {
			t.Fatalf("round trip changed disk of %v", b)
		}
	}
	if len(back.InitialCache) != 2 {
		t.Fatalf("round trip lost initial cache")
	}
}

func TestWriteHelper(t *testing.T) {
	var sb strings.Builder
	in := core.SingleDisk(core.Sequence{0, 1}, 2, 2)
	if err := Write(&sb, in); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if !strings.Contains(sb.String(), "pfcache-instance v1") {
		t.Fatalf("missing header in %q", sb.String())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                                               // no header
		"bogus header\nk 3",                              // wrong header
		"pfcache-instance v1\nk x",                       // bad integer
		"pfcache-instance v1\nk 1 2",                     // too many args
		"pfcache-instance v1\nwhat 3",                    // unknown directive
		"pfcache-instance v1\ndisk 1",                    // bad disk line
		"pfcache-instance v1\ndisk a b",                  // non-numeric disk line
		"pfcache-instance v1\nseq x",                     // bad seq entry
		"pfcache-instance v1\ninitial x",                 // bad initial entry
		"pfcache-instance v1\nk 2\nf 1\ndisks 1\nseq -5", // invalid instance
	}
	for i, c := range cases {
		if _, err := ParseString(c); err == nil {
			t.Errorf("case %d: expected parse error for %q", i, c)
		}
	}
}

func TestParseIgnoresCommentsAndBlankLines(t *testing.T) {
	text := "# a comment\npfcache-instance v1\n\nk 2\nf 1\ndisks 1\n# another\nseq 0 1 0\n"
	in, err := ParseString(text)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if in.N() != 3 || in.K != 2 {
		t.Fatalf("parsed instance wrong: %+v", in)
	}
}
