package workload

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"pfcache/internal/core"
)

// The instance text format understood by Marshal and Parse:
//
//	pfcache-instance v1
//	k 4
//	f 4
//	disks 2
//	disk 0 0
//	disk 5 1
//	initial 0 1 2 3
//	seq 0 1 2 3 3 4
//	seq 0 3 3 1
//
// Lines starting with '#' and blank lines are ignored.  "disk" lines are
// optional for single-disk instances; multiple "seq" lines are concatenated.

const formatHeader = "pfcache-instance v1"

// Marshal renders the instance in the text format.
func Marshal(in *core.Instance) string {
	var b strings.Builder
	fmt.Fprintln(&b, formatHeader)
	fmt.Fprintf(&b, "k %d\n", in.K)
	fmt.Fprintf(&b, "f %d\n", in.F)
	fmt.Fprintf(&b, "disks %d\n", in.Disks)
	if in.Disks > 1 {
		blocks := in.Blocks()
		sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
		for _, blk := range blocks {
			fmt.Fprintf(&b, "disk %d %d\n", int(blk), in.Disk(blk))
		}
	}
	if len(in.InitialCache) > 0 {
		parts := make([]string, len(in.InitialCache))
		for i, blk := range in.InitialCache {
			parts[i] = strconv.Itoa(int(blk))
		}
		fmt.Fprintf(&b, "initial %s\n", strings.Join(parts, " "))
	}
	const perLine = 32
	for i := 0; i < len(in.Seq); i += perLine {
		end := i + perLine
		if end > len(in.Seq) {
			end = len(in.Seq)
		}
		parts := make([]string, 0, end-i)
		for _, blk := range in.Seq[i:end] {
			parts = append(parts, strconv.Itoa(int(blk)))
		}
		fmt.Fprintf(&b, "seq %s\n", strings.Join(parts, " "))
	}
	return b.String()
}

// Write writes the marshalled instance to w.
func Write(w io.Writer, in *core.Instance) error {
	_, err := io.WriteString(w, Marshal(in))
	return err
}

// Parse reads an instance in the text format.
func Parse(r io.Reader) (*core.Instance, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	in := &core.Instance{Disks: 1}
	sawHeader := false
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if !sawHeader {
			if text != formatHeader {
				return nil, fmt.Errorf("workload: line %d: expected header %q, got %q", line, formatHeader, text)
			}
			sawHeader = true
			continue
		}
		fields := strings.Fields(text)
		key := fields[0]
		args := fields[1:]
		switch key {
		case "k", "f", "disks":
			if len(args) != 1 {
				return nil, fmt.Errorf("workload: line %d: %q needs one argument", line, key)
			}
			v, err := strconv.Atoi(args[0])
			if err != nil {
				return nil, fmt.Errorf("workload: line %d: %v", line, err)
			}
			switch key {
			case "k":
				in.K = v
			case "f":
				in.F = v
			case "disks":
				in.Disks = v
			}
		case "disk":
			if len(args) != 2 {
				return nil, fmt.Errorf("workload: line %d: \"disk\" needs block and disk", line)
			}
			blk, err1 := strconv.Atoi(args[0])
			d, err2 := strconv.Atoi(args[1])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("workload: line %d: bad disk assignment %q", line, text)
			}
			if in.DiskOf == nil {
				in.DiskOf = make(map[core.BlockID]int)
			}
			in.DiskOf[core.BlockID(blk)] = d
		case "initial":
			for _, a := range args {
				v, err := strconv.Atoi(a)
				if err != nil {
					return nil, fmt.Errorf("workload: line %d: %v", line, err)
				}
				in.InitialCache = append(in.InitialCache, core.BlockID(v))
			}
		case "seq":
			for _, a := range args {
				v, err := strconv.Atoi(a)
				if err != nil {
					return nil, fmt.Errorf("workload: line %d: %v", line, err)
				}
				in.Seq = append(in.Seq, core.BlockID(v))
			}
		default:
			return nil, fmt.Errorf("workload: line %d: unknown directive %q", line, key)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawHeader {
		return nil, fmt.Errorf("workload: missing %q header", formatHeader)
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("workload: parsed instance is invalid: %w", err)
	}
	return in, nil
}

// ParseString parses an instance from a string.
func ParseString(s string) (*core.Instance, error) {
	return Parse(strings.NewReader(s))
}
