package workload

import (
	"fmt"
	"math"
	"math/rand"

	"pfcache/internal/core"
)

// Uniform returns a sequence of n requests drawn uniformly at random from
// numBlocks distinct blocks.
func Uniform(n, numBlocks int, seed int64) core.Sequence {
	if n < 0 || numBlocks <= 0 {
		panic(fmt.Sprintf("workload: invalid Uniform parameters n=%d blocks=%d", n, numBlocks))
	}
	rng := rand.New(rand.NewSource(seed))
	seq := make(core.Sequence, n)
	for i := range seq {
		seq[i] = core.BlockID(rng.Intn(numBlocks))
	}
	return seq
}

// Zipf returns a sequence of n requests over numBlocks blocks whose
// popularity follows a Zipf distribution with exponent s > 1 being more
// skewed.  Block 0 is the most popular block.
func Zipf(n, numBlocks int, s float64, seed int64) core.Sequence {
	if n < 0 || numBlocks <= 0 || s < 0 {
		panic(fmt.Sprintf("workload: invalid Zipf parameters n=%d blocks=%d s=%f", n, numBlocks, s))
	}
	rng := rand.New(rand.NewSource(seed))
	// Build the cumulative distribution explicitly; numBlocks is small in
	// every experiment, so the O(numBlocks) table is fine and keeps the
	// generator deterministic across Go versions.
	weights := make([]float64, numBlocks)
	total := 0.0
	for i := range weights {
		weights[i] = 1.0 / math.Pow(float64(i+1), s)
		total += weights[i]
	}
	cum := make([]float64, numBlocks)
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		cum[i] = acc
	}
	seq := make(core.Sequence, n)
	for i := range seq {
		u := rng.Float64()
		lo, hi := 0, numBlocks-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		seq[i] = core.BlockID(lo)
	}
	return seq
}

// SequentialScan returns a sequence that scans blocks 0..numBlocks-1
// cyclically for n requests.  Sequential scans are the canonical
// prefetch-friendly workload: every future request is known and distinct.
func SequentialScan(n, numBlocks int) core.Sequence {
	if n < 0 || numBlocks <= 0 {
		panic(fmt.Sprintf("workload: invalid SequentialScan parameters n=%d blocks=%d", n, numBlocks))
	}
	seq := make(core.Sequence, n)
	for i := range seq {
		seq[i] = core.BlockID(i % numBlocks)
	}
	return seq
}

// Loop returns a sequence of `repeats` passes over a loop of loopLen blocks.
// Loops slightly larger than the cache are the classical worst case for LRU
// and a natural stress test for integrated prefetching.
func Loop(loopLen, repeats int) core.Sequence {
	if loopLen <= 0 || repeats < 0 {
		panic(fmt.Sprintf("workload: invalid Loop parameters len=%d repeats=%d", loopLen, repeats))
	}
	seq := make(core.Sequence, 0, loopLen*repeats)
	for r := 0; r < repeats; r++ {
		for b := 0; b < loopLen; b++ {
			seq = append(seq, core.BlockID(b))
		}
	}
	return seq
}

// Phased returns a sequence of `phases` phases; in each phase, requestsPerPhase
// requests are drawn uniformly from a working set of workingSet blocks, and
// consecutive working sets overlap by `overlap` blocks.  This models programs
// whose locality shifts over time.
func Phased(phases, requestsPerPhase, workingSet, overlap int, seed int64) core.Sequence {
	if phases < 0 || requestsPerPhase < 0 || workingSet <= 0 || overlap < 0 || overlap > workingSet {
		panic(fmt.Sprintf("workload: invalid Phased parameters phases=%d reqs=%d ws=%d overlap=%d",
			phases, requestsPerPhase, workingSet, overlap))
	}
	rng := rand.New(rand.NewSource(seed))
	seq := make(core.Sequence, 0, phases*requestsPerPhase)
	base := 0
	for p := 0; p < phases; p++ {
		for i := 0; i < requestsPerPhase; i++ {
			seq = append(seq, core.BlockID(base+rng.Intn(workingSet)))
		}
		base += workingSet - overlap
	}
	return seq
}

// Interleaved returns a sequence interleaving `streams` sequential streams,
// each over streamLen private blocks, in round-robin order repeated until n
// requests are produced.  This models concurrent sequential readers, the
// motivating workload for parallel prefetching.
func Interleaved(n, streams, streamLen int) core.Sequence {
	if n < 0 || streams <= 0 || streamLen <= 0 {
		panic(fmt.Sprintf("workload: invalid Interleaved parameters n=%d streams=%d len=%d", n, streams, streamLen))
	}
	seq := make(core.Sequence, n)
	pos := make([]int, streams)
	for i := 0; i < n; i++ {
		s := i % streams
		seq[i] = core.BlockID(s*streamLen + pos[s]%streamLen)
		pos[s]++
	}
	return seq
}

// Mixed returns a sequence that alternates between a Zipf-distributed random
// working set and short sequential scans, approximating mixed OLTP/scan
// behaviour.  The scan blocks are disjoint from the random blocks.
func Mixed(n, randomBlocks, scanBlocks, burst int, seed int64) core.Sequence {
	if n < 0 || randomBlocks <= 0 || scanBlocks <= 0 || burst <= 0 {
		panic(fmt.Sprintf("workload: invalid Mixed parameters n=%d rnd=%d scan=%d burst=%d",
			n, randomBlocks, scanBlocks, burst))
	}
	rng := rand.New(rand.NewSource(seed))
	seq := make(core.Sequence, 0, n)
	scanPos := 0
	for len(seq) < n {
		// A burst of random accesses.
		for i := 0; i < burst && len(seq) < n; i++ {
			seq = append(seq, core.BlockID(rng.Intn(randomBlocks)))
		}
		// A burst of sequential accesses in the scan region.
		for i := 0; i < burst && len(seq) < n; i++ {
			seq = append(seq, core.BlockID(randomBlocks+scanPos%scanBlocks))
			scanPos++
		}
	}
	return seq
}

// DiskAssignment describes how blocks are assigned to disks.
type DiskAssignment int

// The supported disk assignment strategies.
const (
	// AssignStripe assigns block b to disk b mod D (round-robin striping).
	AssignStripe DiskAssignment = iota
	// AssignPartition splits the block ID space into D contiguous ranges.
	AssignPartition
	// AssignRandom assigns each block to a uniformly random disk.
	AssignRandom
)

// String names the assignment strategy.
func (a DiskAssignment) String() string {
	switch a {
	case AssignStripe:
		return "stripe"
	case AssignPartition:
		return "partition"
	case AssignRandom:
		return "random"
	default:
		return fmt.Sprintf("assignment(%d)", int(a))
	}
}

// AssignDisks maps every block of the sequence to a disk in [0, disks) using
// the given strategy.  The seed is only used by AssignRandom.
func AssignDisks(seq core.Sequence, disks int, strategy DiskAssignment, seed int64) map[core.BlockID]int {
	if disks <= 0 {
		panic(fmt.Sprintf("workload: invalid disk count %d", disks))
	}
	blocks := seq.Distinct()
	out := make(map[core.BlockID]int, len(blocks))
	switch strategy {
	case AssignStripe:
		for _, b := range blocks {
			out[b] = int(b) % disks
		}
	case AssignPartition:
		maxID := int(seq.MaxBlock()) + 1
		per := (maxID + disks - 1) / disks
		if per == 0 {
			per = 1
		}
		for _, b := range blocks {
			d := int(b) / per
			if d >= disks {
				d = disks - 1
			}
			out[b] = d
		}
	case AssignRandom:
		rng := rand.New(rand.NewSource(seed))
		for _, b := range blocks {
			out[b] = rng.Intn(disks)
		}
	default:
		panic(fmt.Sprintf("workload: unknown disk assignment %d", int(strategy)))
	}
	return out
}

// Instance bundles a generated sequence into a problem instance with the
// given cache size, fetch time and disk layout.  The initial cache is empty.
func Instance(seq core.Sequence, k, f, disks int, strategy DiskAssignment, seed int64) *core.Instance {
	if disks == 1 {
		return core.SingleDisk(seq, k, f)
	}
	return core.MultiDisk(seq, k, f, disks, AssignDisks(seq, disks, strategy, seed))
}
