// Package experiments regenerates the results of the paper.
//
// The paper is a theory paper without measured tables or figures, so each
// experiment is the executable counterpart of one of its claims: the worked
// examples of the introduction (E1, E2), the approximation bounds for the
// single-disk algorithms (E3-E6, reproducing Theorems 1-3 and Corollaries
// 1-2), the Theorem 4 guarantee for parallel disks (E7), the degradation of
// the greedy strategies with the number of disks that motivates Theorem 4
// (E8), and two ablations (A1, A2).  EXPERIMENTS.md maps every experiment to
// its paper section and describes the expected shape of the table.
//
// Experiments run on a bounded worker pool (see pool.go): RunAll executes
// whole experiments concurrently, and the row loops inside each experiment
// fan independent points out over the same pool.  Results land in
// index-addressed slots, so tables are byte-identical to sequential runs.
package experiments

import (
	"fmt"
	"sort"

	"pfcache/internal/report"
)

// Experiment is a named, runnable experiment producing one result table.
type Experiment struct {
	// ID is the experiment identifier used in EXPERIMENTS.md, e.g. "E3" or
	// "A1".
	ID string
	// Title is a one-line description.
	Title string
	// Run executes the experiment.
	Run func() (*report.Table, error)
}

// All returns every experiment in the suite, in presentation order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Title: "Introduction example, single disk (k=4, F=4)", Run: E1IntroExample},
		{ID: "E2", Title: "Introduction example, two disks (k=4, F=4)", Run: E2IntroParallelExample},
		{ID: "E3", Title: "Aggressive elapsed-time ratio vs Theorem 1 bound", Run: E3AggressiveRatio},
		{ID: "E4", Title: "Theorem 2 lower-bound construction for Aggressive", Run: E4AggressiveLowerBound},
		{ID: "E5", Title: "Delay(d) sweep and the sqrt(3) minimum (Theorem 3)", Run: E5DelaySweep},
		{ID: "E6", Title: "Head-to-head: Aggressive vs Conservative vs Delay vs Combination", Run: E6Combination},
		{ID: "E7", Title: "Theorem 4: LP schedule vs optimal stall on parallel disks", Run: E7ParallelLPOptimal},
		{ID: "E8", Title: "Parallel heuristics vs number of disks", Run: E8ParallelHeuristics},
		{ID: "A1", Title: "Ablation: synchronization and extra cache locations", Run: A1SynchronizationAblation},
		{ID: "A2", Title: "Ablation: removing prefetching / the eviction rule", Run: A2EvictionAblation},
		{ID: "R1", Title: "Trace replay: incremental re-solves vs per-step cold rebuilds", Run: R1TraceReplay},
	}
}

// ByID returns the experiment with the given identifier.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// IDs returns the identifiers of every experiment, sorted.
func IDs() []string {
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}
