package experiments

import (
	"errors"
	"fmt"

	"pfcache/internal/core"
	"pfcache/internal/lpmodel"
	"pfcache/internal/opt"
	"pfcache/internal/parallel"
	"pfcache/internal/report"
	"pfcache/internal/sim"
	"pfcache/internal/stats"
	"pfcache/internal/workload"
)

// runParallel executes a parallel-disk algorithm and returns its executor
// result.
func runParallel(in *core.Instance, a parallel.Algorithm) (*sim.Result, error) {
	sched, err := a.Run(in)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	res, err := sim.Run(in, sched, sim.Options{})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	return res, nil
}

// E2IntroParallelExample reproduces the two-disk worked example of the
// introduction, whose schedule has total stall time 3 (which the exhaustive
// search confirms to be optimal).  Expected shape: parallel Aggressive and
// the LP algorithm achieve stall 3; demand paging pays the full fetch time
// per fault.
func E2IntroParallelExample() (*report.Table, error) {
	in := IntroParallelInstance()
	t := report.NewTable("E2: introduction example, two disks (k=4, F=4, n=7)",
		"algorithm", "stall", "elapsed", "extra cache")
	t.Note = "Paper: the described schedule has stall time 3."
	for _, a := range parallel.AlgorithmsWith(lpOptions()) {
		res, err := runParallel(in, a)
		if err != nil {
			return nil, err
		}
		t.AddRow(a.Name, res.Stall, res.Elapsed, res.ExtraCache)
	}
	optRes, err := opt.Optimal(in, optOptions(opt.Options{}))
	if err != nil {
		return nil, err
	}
	t.AddRow("optimal (exhaustive)", optRes.Stall, optRes.Elapsed, 0)
	return t, nil
}

// E7ParallelLPOptimal is the reproduction of Theorem 4: on random multi-disk
// instances the LP-based schedule must not exceed the optimal stall time
// sOPT(sigma, k) while using at most 2(D-1) extra cache locations, improving
// on the previous D-approximation.  Expected shape: "stall ratio" at most
// 1.000 for every D (the schedule may even beat OPT(k) thanks to its extra
// locations) and "max extra" at most 2(D-1).  The n=11 rows are the
// historical instance size, the n=22 rows the sizes the A*/branch-and-bound
// search first unlocked, and the n=40 rows the sizes reachable with the
// layered bounds.  The four trailing columns attribute the exact engine's
// work per bound layer on the same instances: the matching-bound search
// alone ("astar"), with the landmark table ("astar+lm"), with landmarks and
// dominance merging ("astar+lm+dom" — the default engine), and the blind
// Dijkstra reference.  A -1 records a layer that exhausted its state budget.
func E7ParallelLPOptimal() (*report.Table, error) {
	t := report.NewTable("E7: Theorem 4 - LP schedule vs optimal stall",
		"D", "n", "instances", "mean stall ratio", "max stall ratio", "max extra cache", "budget 2(D-1)", "mean LP bound / OPT", "astar expanded", "astar+lm expanded", "astar+lm+dom expanded", "dijkstra expanded")
	t.Note = "Expected: stall ratio <= 1.000, extra cache within budget, expansions shrink with every bound layer."
	diskSet := []int{1, 2, 3}
	sizes := []struct{ n, blocks, k, f int }{
		{11, 6, 3, 2},
		{22, 10, 4, 4},
		{40, 16, 4, 6},
	}
	const seeds = 4
	type point struct {
		ratio, bound                     float64
		extra                            int
		astarExp, lmExp, domExp, dijkExp int
	}
	// layerExpansions runs one engine configuration and returns its expansion
	// count, or -1 when the configuration exhausts its state budget (the
	// instance is then out of that layer's reach; stall agreement is checked
	// only for configurations that complete).
	layerExpansions := func(in *core.Instance, o opt.Options, wantStall int, label string) (int, error) {
		res, err := opt.Optimal(in, o)
		if err != nil {
			var tle *opt.TooLargeError
			if errors.As(err, &tle) {
				return -1, nil
			}
			return 0, err
		}
		if res.Stall != wantStall {
			return 0, fmt.Errorf("E7: %s engine disagrees: stall %d, want %d", label, res.Stall, wantStall)
		}
		return res.StatesExpanded, nil
	}
	points := make([]point, len(diskSet)*len(sizes)*seeds)
	err := forEach(len(points), func(i int) error {
		disks := diskSet[i/(len(sizes)*seeds)]
		size := sizes[i/seeds%len(sizes)]
		seed := int64(i % seeds)
		seq := workload.Uniform(size.n, size.blocks, 900+seed)
		in := workload.Instance(seq, size.k, size.f, disks, workload.AssignStripe, 0)
		optRes, err := opt.Optimal(in, optOptions(opt.Options{}))
		if err != nil {
			return err
		}
		astarExp, err := layerExpansions(in, optOptions(opt.Options{NoLandmarks: true, NoDominance: true}), optRes.Stall, "matching-bound")
		if err != nil {
			return err
		}
		lmExp, err := layerExpansions(in, optOptions(opt.Options{NoDominance: true}), optRes.Stall, "landmark")
		if err != nil {
			return err
		}
		dijkExp, err := layerExpansions(in, optOptions(opt.Options{Bound: opt.BoundNone, NoHeuristic: true}), optRes.Stall, "dijkstra")
		if err != nil {
			return err
		}
		var res *lpmodel.PlanResult
		if BatchEnabled() {
			// The batched path shares solver arenas and symbolic
			// factorizations across the rows this worker processes; a cold
			// batched solve is bit-identical to the plain one, so the row
			// values (and the recorded trajectories) do not depend on -batch.
			mb := acquireBatch()
			res, err = lpmodel.PlanBatch(mb, in, lpOptions())
			releaseBatch(mb)
		} else {
			res, err = parallel.LPOptimalWith(in, lpOptions())
		}
		if err != nil {
			return err
		}
		points[i] = point{
			ratio:    stats.Ratio(float64(res.Stall), float64(optRes.Stall)),
			bound:    stats.Ratio(res.LowerBound, float64(optRes.Stall)),
			extra:    res.ExtraCache,
			astarExp: astarExp,
			lmExp:    lmExp,
			domExp:   optRes.StatesExpanded,
			dijkExp:  dijkExp,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// sumExp adds a layer's expansions across a row group; one exhausted seed
	// (-1) marks the whole cell -1, since the sum would not be comparable.
	sumExp := func(acc, v int) int {
		if acc < 0 || v < 0 {
			return -1
		}
		return acc + v
	}
	for di, disks := range diskSet {
		for si, size := range sizes {
			var ratios, bounds []float64
			maxExtra := 0
			astarExp, lmExp, domExp, dijkExp := 0, 0, 0, 0
			base := (di*len(sizes) + si) * seeds
			for _, p := range points[base : base+seeds] {
				ratios = append(ratios, p.ratio)
				bounds = append(bounds, p.bound)
				if p.extra > maxExtra {
					maxExtra = p.extra
				}
				astarExp = sumExp(astarExp, p.astarExp)
				lmExp = sumExp(lmExp, p.lmExp)
				domExp = sumExp(domExp, p.domExp)
				dijkExp = sumExp(dijkExp, p.dijkExp)
			}
			s := stats.Summarize(ratios)
			b := stats.Summarize(bounds)
			t.AddRow(disks, size.n, seeds, s.Mean, s.Max, maxExtra, 2*(disks-1), b.Mean, astarExp, lmExp, domExp, dijkExp)
		}
	}
	return t, nil
}

// E8ParallelHeuristics measures how the greedy parallel strategies degrade as
// the number of disks grows, normalising stall times by the LP lower bound
// (a certified lower bound on the optimal stall time).  Expected shape: the
// LP algorithm stays at ratio about 1 while Aggressive, Conservative and
// especially demand paging drift upwards with D, the behaviour that motivates
// Theorem 4 (prior guarantees degraded like D).
func E8ParallelHeuristics() (*report.Table, error) {
	t := report.NewTable("E8: parallel heuristics vs number of disks (stall / LP lower bound)",
		"D", "lp-optimal", "aggressive", "conservative", "demand")
	t.Note = "Expected: lp-optimal stays near 1; the others grow with D."
	diskSet := []int{1, 2, 3, 4}
	algos := parallel.AlgorithmsWith(lpOptions())
	// The interleaved workload is deterministic for a given D (the old
	// per-seed loop recomputed identical instances), so one point per D
	// suffices.
	points := make([][]float64, len(diskSet))
	err := forEach(len(points), func(i int) error {
		disks := diskSet[i]
		seq := workload.Interleaved(16, disks, 5)
		in := workload.Instance(seq, 4, 3, disks, workload.AssignStripe, 0)
		var mb *lpmodel.ModelBatch
		var m *lpmodel.Model
		var frac *lpmodel.Fractional
		var err error
		if BatchEnabled() {
			// Batched row group: the lower-bound solve below and the planning
			// re-solve in the lp-optimal branch run through one ModelBatch, so
			// the second solve reuses the built model (zero rebuild), the
			// symbolic factorization and the pattern's warm basis.
			mb = acquireBatch()
			defer releaseBatch(mb)
			m, err = mb.Model(in)
			if err != nil {
				return err
			}
			frac, err = m.SolveBatch(mb.LP(), lpOptions())
		} else {
			m, err = lpmodel.Build(in)
			if err != nil {
				return err
			}
			frac, err = m.Solve(lpOptions())
		}
		if err != nil {
			return err
		}
		lb := frac.Objective
		// Guard against a zero lower bound (nothing to fetch).
		if lb < 0.5 {
			lb = 1
		}
		vals := make([]float64, len(algos))
		for ai, a := range algos {
			if a.Name == "lp-optimal" {
				// The lower-bound solve above already solved this exact LP;
				// re-solving it warm terminates without a pivot at the same
				// vertex, so the row value is identical to a cold Plan while
				// the point pays for one phase-1 crash instead of two.  The
				// batched form also skips the model rebuild: the same built
				// Problem re-solved through the batch reuses the pattern's
				// warm basis and symbolic factorization automatically.
				var res *lpmodel.PlanResult
				var err error
				if mb != nil {
					var frac2 *lpmodel.Fractional
					frac2, err = m.SolveBatch(mb.LP(), lpOptions())
					if err == nil {
						res, err = lpmodel.Extract(m, frac2)
					}
				} else {
					res, err = lpmodel.PlanFrom(in, lpOptions(), m.Basis())
				}
				if err != nil {
					return fmt.Errorf("%s: %w", a.Name, err)
				}
				vals[ai] = float64(res.Stall) / lb
				continue
			}
			res, err := runParallel(in, a)
			if err != nil {
				return err
			}
			vals[ai] = float64(res.Stall) / lb
		}
		points[i] = vals
		return nil
	})
	if err != nil {
		return nil, err
	}
	for di, disks := range diskSet {
		row := []interface{}{disks}
		for ai := range algos {
			row = append(row, points[di][ai])
		}
		t.AddRow(row...)
	}
	return t, nil
}

// A1SynchronizationAblation quantifies the two relaxations behind Lemma 3 and
// Theorem 4: how much the optimal stall time improves when the cache gets
// D-1 extra locations, and how the synchronized LP lower bound compares with
// both.  Expected shape: OPT(k + D - 1) <= OPT(k), and the synchronized LP
// bound is at most OPT(k) (Lemma 3), typically equal to it.
func A1SynchronizationAblation() (*report.Table, error) {
	t := report.NewTable("A1: ablation - extra cache locations and synchronization",
		"D", "instance", "OPT(k)", "OPT(k+D-1)", "LP bound (synchronized, k+D-1)")
	t.Note = "Expected: LP bound <= OPT(k); extra locations never hurt."
	diskSet := []int{2, 3}
	const seeds = 3
	type row struct {
		base, extra int
		lb          float64
	}
	rows := make([]row, len(diskSet)*seeds)
	err := forEach(len(rows), func(i int) error {
		disks := diskSet[i/seeds]
		seed := int64(i % seeds)
		seq := workload.Uniform(10, 6, 300+seed)
		in := workload.Instance(seq, 3, 2, disks, workload.AssignStripe, 0)
		base, err := opt.OptimalStall(in, optOptions(opt.Options{}))
		if err != nil {
			return err
		}
		extra, err := opt.OptimalStall(in, optOptions(opt.Options{ExtraCache: disks - 1}))
		if err != nil {
			return err
		}
		lb, err := lpmodel.LowerBound(in, lpOptions())
		if err != nil {
			return err
		}
		rows[i] = row{base: base, extra: extra, lb: lb}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		t.AddRow(diskSet[i/seeds], fmt.Sprintf("uniform/%d", i%seeds), r.base, r.extra, r.lb)
	}
	return t, nil
}
