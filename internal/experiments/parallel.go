package experiments

import (
	"fmt"

	"pfcache/internal/core"
	"pfcache/internal/lp"
	"pfcache/internal/lpmodel"
	"pfcache/internal/opt"
	"pfcache/internal/parallel"
	"pfcache/internal/report"
	"pfcache/internal/sim"
	"pfcache/internal/stats"
	"pfcache/internal/workload"
)

// runParallel executes a parallel-disk algorithm and returns its executor
// result.
func runParallel(in *core.Instance, a parallel.Algorithm) (*sim.Result, error) {
	sched, err := a.Run(in)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	res, err := sim.Run(in, sched, sim.Options{})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	return res, nil
}

// E2IntroParallelExample reproduces the two-disk worked example of the
// introduction, whose schedule has total stall time 3 (which the exhaustive
// search confirms to be optimal).  Expected shape: parallel Aggressive and
// the LP algorithm achieve stall 3; demand paging pays the full fetch time
// per fault.
func E2IntroParallelExample() (*report.Table, error) {
	in := IntroParallelInstance()
	t := report.NewTable("E2: introduction example, two disks (k=4, F=4, n=7)",
		"algorithm", "stall", "elapsed", "extra cache")
	t.Note = "Paper: the described schedule has stall time 3."
	for _, a := range parallel.Algorithms() {
		res, err := runParallel(in, a)
		if err != nil {
			return nil, err
		}
		t.AddRow(a.Name, res.Stall, res.Elapsed, res.ExtraCache)
	}
	optRes, err := opt.Optimal(in, opt.Options{})
	if err != nil {
		return nil, err
	}
	t.AddRow("optimal (exhaustive)", optRes.Stall, optRes.Elapsed, 0)
	return t, nil
}

// E7ParallelLPOptimal is the reproduction of Theorem 4: on random multi-disk
// instances the LP-based schedule must match the optimal stall time while
// using at most 2(D-1) extra cache locations, improving on the previous
// D-approximation.  Expected shape: "stall ratio" 1.000 for every D and
// "max extra" at most 2(D-1).
func E7ParallelLPOptimal() (*report.Table, error) {
	t := report.NewTable("E7: Theorem 4 - LP schedule vs optimal stall",
		"D", "instances", "mean stall ratio", "max stall ratio", "max extra cache", "budget 2(D-1)", "mean LP bound / OPT")
	t.Note = "Expected: stall ratio 1.000, extra cache within budget."
	for _, disks := range []int{1, 2, 3} {
		var ratios, bounds []float64
		maxExtra := 0
		instances := 0
		for seed := int64(0); seed < 4; seed++ {
			seq := workload.Uniform(11, 6, 900+seed)
			in := workload.Instance(seq, 3, 2, disks, workload.AssignStripe, 0)
			optRes, err := opt.Optimal(in, opt.Options{})
			if err != nil {
				return nil, err
			}
			res, err := parallel.LPOptimal(in)
			if err != nil {
				return nil, err
			}
			instances++
			ratios = append(ratios, stats.Ratio(float64(res.Stall), float64(optRes.Stall)))
			bounds = append(bounds, stats.Ratio(res.LowerBound, float64(optRes.Stall)))
			if res.ExtraCache > maxExtra {
				maxExtra = res.ExtraCache
			}
		}
		s := stats.Summarize(ratios)
		b := stats.Summarize(bounds)
		t.AddRow(disks, instances, s.Mean, s.Max, maxExtra, 2*(disks-1), b.Mean)
	}
	return t, nil
}

// E8ParallelHeuristics measures how the greedy parallel strategies degrade as
// the number of disks grows, normalising stall times by the LP lower bound
// (a certified lower bound on the optimal stall time).  Expected shape: the
// LP algorithm stays at ratio about 1 while Aggressive, Conservative and
// especially demand paging drift upwards with D, the behaviour that motivates
// Theorem 4 (prior guarantees degraded like D).
func E8ParallelHeuristics() (*report.Table, error) {
	t := report.NewTable("E8: parallel heuristics vs number of disks (stall / LP lower bound)",
		"D", "lp-optimal", "aggressive", "conservative", "demand")
	t.Note = "Expected: lp-optimal stays near 1; the others grow with D."
	for _, disks := range []int{1, 2, 3, 4} {
		sums := map[string][]float64{}
		for seed := int64(0); seed < 3; seed++ {
			seq := workload.Interleaved(16, disks, 5)
			in := workload.Instance(seq, 4, 3, disks, workload.AssignStripe, 0)
			lb, err := lpmodel.LowerBound(in, lp.Options{})
			if err != nil {
				return nil, err
			}
			// Guard against a zero lower bound (nothing to fetch).
			if lb < 0.5 {
				lb = 1
			}
			for _, a := range parallel.Algorithms() {
				res, err := runParallel(in, a)
				if err != nil {
					return nil, err
				}
				sums[a.Name] = append(sums[a.Name], float64(res.Stall)/lb)
			}
		}
		t.AddRow(disks,
			stats.Summarize(sums["lp-optimal"]).Mean,
			stats.Summarize(sums["aggressive"]).Mean,
			stats.Summarize(sums["conservative"]).Mean,
			stats.Summarize(sums["demand"]).Mean)
	}
	return t, nil
}

// A1SynchronizationAblation quantifies the two relaxations behind Lemma 3 and
// Theorem 4: how much the optimal stall time improves when the cache gets
// D-1 extra locations, and how the synchronized LP lower bound compares with
// both.  Expected shape: OPT(k + D - 1) <= OPT(k), and the synchronized LP
// bound is at most OPT(k) (Lemma 3), typically equal to it.
func A1SynchronizationAblation() (*report.Table, error) {
	t := report.NewTable("A1: ablation - extra cache locations and synchronization",
		"D", "instance", "OPT(k)", "OPT(k+D-1)", "LP bound (synchronized, k+D-1)")
	t.Note = "Expected: LP bound <= OPT(k); extra locations never hurt."
	for _, disks := range []int{2, 3} {
		for seed := int64(0); seed < 3; seed++ {
			seq := workload.Uniform(10, 6, 300+seed)
			in := workload.Instance(seq, 3, 2, disks, workload.AssignStripe, 0)
			base, err := opt.OptimalStall(in, opt.Options{})
			if err != nil {
				return nil, err
			}
			extra, err := opt.OptimalStall(in, opt.Options{ExtraCache: disks - 1})
			if err != nil {
				return nil, err
			}
			lb, err := lpmodel.LowerBound(in, lp.Options{})
			if err != nil {
				return nil, err
			}
			t.AddRow(disks, fmt.Sprintf("uniform/%d", seed), base, extra, lb)
		}
	}
	return t, nil
}
