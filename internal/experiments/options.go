package experiments

import (
	"sync/atomic"

	"pfcache/internal/lp"
)

// solverMethod is the simplex implementation used by every LP-backed
// experiment (E7, E8, A1 and the E2 intro example's lp-optimal row).
var solverMethod atomic.Int64

// SetSolverMethod selects the simplex implementation the experiments solve
// their LPs with; the default is lp.MethodRevised.  Exposed to pcbench as the
// -solver flag so perf comparisons between implementations run the identical
// experiment code.
func SetSolverMethod(m lp.Method) { solverMethod.Store(int64(m)) }

// SolverMethod returns the configured simplex implementation.
func SolverMethod() lp.Method { return lp.Method(solverMethod.Load()) }

// lpOptions are the solver options every experiment passes to LP solves.
func lpOptions() lp.Options { return lp.Options{Method: SolverMethod()} }
