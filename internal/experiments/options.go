package experiments

import (
	"sync/atomic"

	"pfcache/internal/lp"
	"pfcache/internal/opt"
)

// The experiments pin the simplex engines their LPs are solved with.  The
// committed BENCH_*.json trajectory files record schedule values produced by
// Dantzig pricing over the eta-file basis, and on the degenerate alternative
// optima of the synchronized-schedule LPs both the entering-column rule and
// the refactorization's row reassignment decide which optimal vertex the
// solve lands on — so the suite keeps both pinned to the historical engines
// by default, keeping the extracted schedules byte-identical to the
// trajectory.  pcbench's -pricing/-basis flags override both for
// comparisons; the library defaults (steepest-edge, LU) serve every
// non-reproduction caller.
var (
	solverMethod  atomic.Int64
	solverPricing atomic.Int64 // 0 = suite default; otherwise 1+lp.Pricing
	solverBasis   atomic.Int64 // 0 = suite default; otherwise 1+lp.BasisMethod
)

// SetSolverMethod selects the simplex implementation the experiments solve
// their LPs with; the default is lp.MethodRevised.  Exposed to pcbench as the
// -solver flag so perf comparisons between implementations run the identical
// experiment code.
func SetSolverMethod(m lp.Method) { solverMethod.Store(int64(m)) }

// SolverMethod returns the configured simplex implementation.
func SolverMethod() lp.Method { return lp.Method(solverMethod.Load()) }

// SetPricing overrides the pinned entering-column rule (pcbench -pricing).
func SetPricing(p lp.Pricing) { solverPricing.Store(1 + int64(p)) }

// ResetPricing restores the suite's pinned default rule.
func ResetPricing() { solverPricing.Store(0) }

// SolverPricing returns the effective pricing rule: lp.PricingDantzig (the
// rule the committed trajectory files were recorded with) unless overridden.
func SolverPricing() lp.Pricing {
	if v := solverPricing.Load(); v != 0 {
		return lp.Pricing(v - 1)
	}
	return lp.PricingDantzig
}

// SetBasis overrides the basis representation (pcbench -basis).
func SetBasis(b lp.BasisMethod) { solverBasis.Store(1 + int64(b)) }

// ResetBasis restores the suite's default basis representation.
func ResetBasis() { solverBasis.Store(0) }

// SolverBasis returns the effective basis representation: lp.BasisEta (the
// representation the committed trajectory files were recorded with) unless
// overridden.
func SolverBasis() lp.BasisMethod {
	if v := solverBasis.Load(); v != 0 {
		return lp.BasisMethod(v - 1)
	}
	return lp.BasisEta
}

// lpOptions are the solver options every experiment passes to LP solves.
func lpOptions() lp.Options {
	return lp.Options{Method: SolverMethod(), Pricing: SolverPricing(), Basis: SolverBasis()}
}

// optWorkers holds the worker count the exact searches run with; 0 means the
// suite default of 1 (sequential), which keeps the recorded expansion
// counters byte-reproducible.  pcbench's -opt-workers flag raises it for
// wall-clock comparisons: stall values are worker-count invariant, only the
// effort counters move.
var optWorkers atomic.Int64

// SetOptWorkers selects the exact-search worker count used by experiments.
func SetOptWorkers(w int) { optWorkers.Store(int64(w)) }

// OptWorkers returns the effective exact-search worker count.
func OptWorkers() int {
	if v := optWorkers.Load(); v > 1 {
		return int(v)
	}
	return 1
}

// optOptions applies the suite-level exact-search settings to an experiment's
// option block.
func optOptions(o opt.Options) opt.Options {
	o.Workers = OptWorkers()
	return o
}
