package experiments

import (
	"fmt"
	"time"

	"pfcache/internal/core"
	"pfcache/internal/lp"
	"pfcache/internal/lpmodel"
	"pfcache/internal/report"
	"pfcache/internal/workload"
)

// This file is the trace-replay reproduction of the incremental solve path:
// a request trace that keeps growing (the session serving model) is served
// once through warm dual re-solves of an extended-in-place program, and once
// through full per-step rebuilds, and the two chains are compared step by
// step.  Both chains solve the same tie-broken program
// (Model.TieBreakObjective): the perturbation makes the optimal x unique, so
// the warm and cold solves provably land on the same vertex and the
// extracted schedules must be byte-identical at every step — a stronger
// check than the cost-equivalence the unperturbed serving path guarantees,
// where the degenerate optimal face lets different pivot paths serve
// different equal-cost schedules.

// replayEps is the tie-break magnitude: large enough that the solver's
// optimality tolerance still separates the perturbed vertices, small enough
// that the reported objective moves by less than 1e-3.
const replayEps = 1e-5

// ReplayRun is one pass of a growing trace: the served plan after every
// extension step.
type ReplayRun struct {
	// Stalls is the executed stall time of the plan served after each step.
	Stalls []int
	// Bounds is the certified LP lower bound after each step.
	Bounds []float64
	// Schedules is each step's extracted schedule in core.Schedule text form,
	// for byte-identity comparison against the other path.
	Schedules []string
	// Pivots is the total number of simplex pivots spent on the per-step
	// re-solves (the base solve of the incremental path is excluded: it is
	// setup both paths share).
	Pivots int
}

// ReplayIncremental serves the growing trace the way a session does: build
// and solve the base trace once, then per step extend the program in place
// and re-optimise warm with the dual simplex from the previous basis.
func ReplayIncremental(base *core.Instance, steps []core.BlockID, opts lp.Options) (*ReplayRun, error) {
	m, err := lpmodel.Build(base.Clone())
	if err != nil {
		return nil, err
	}
	m.TieBreakObjective(replayEps)
	solver := lp.NewSolver()
	if _, err := m.SolveWith(solver, opts); err != nil {
		return nil, err
	}
	run := &ReplayRun{}
	for _, b := range steps {
		if err := m.Extend(b); err != nil {
			return nil, err
		}
		m.TieBreakObjective(replayEps)
		frac, err := m.SolveIncremental(solver, opts)
		if err != nil {
			return nil, err
		}
		if err := run.record(m, frac); err != nil {
			return nil, err
		}
	}
	return run, nil
}

// ReplayCold serves the same growing trace without the incremental machinery:
// every step rebuilds the program for the full extended trace and solves it
// from scratch.  The rebuild reuses the model's and solver's buffers
// (BuildInto), so the comparison is against the best cold path the engine
// offers, not a strawman.
func ReplayCold(base *core.Instance, steps []core.BlockID, opts lp.Options) (*ReplayRun, error) {
	in := base.Clone()
	m := &lpmodel.Model{}
	solver := lp.NewSolver()
	run := &ReplayRun{}
	for _, b := range steps {
		in.Seq = append(in.Seq, b)
		if err := lpmodel.BuildInto(m, in); err != nil {
			return nil, err
		}
		m.TieBreakObjective(replayEps)
		frac, err := m.SolveWith(solver, opts)
		if err != nil {
			return nil, err
		}
		if err := run.record(m, frac); err != nil {
			return nil, err
		}
	}
	return run, nil
}

// record extracts the served plan of one step and appends it to the run.
func (r *ReplayRun) record(m *lpmodel.Model, frac *lpmodel.Fractional) error {
	r.Pivots += frac.Iterations
	res, err := lpmodel.Extract(m, frac)
	if err != nil {
		return err
	}
	r.Stalls = append(r.Stalls, res.Stall)
	r.Bounds = append(r.Bounds, res.LowerBound)
	r.Schedules = append(r.Schedules, res.Schedule.String())
	return nil
}

// CompareReplay checks two passes over the same growing trace for
// cost-equivalence and reports how they relate: an error when any step's
// stall or LP bound differs (the certified costs must agree), and otherwise
// whether every step's extracted schedule is byte-identical.
func CompareReplay(warm, cold *ReplayRun) (identical bool, err error) {
	if len(warm.Stalls) != len(cold.Stalls) {
		return false, fmt.Errorf("replay: %d warm steps vs %d cold steps", len(warm.Stalls), len(cold.Stalls))
	}
	identical = true
	for i := range warm.Stalls {
		if warm.Stalls[i] != cold.Stalls[i] {
			return false, fmt.Errorf("replay step %d: warm stall %d, cold stall %d",
				i, warm.Stalls[i], cold.Stalls[i])
		}
		if diff := warm.Bounds[i] - cold.Bounds[i]; diff > 1e-6 || diff < -1e-6 {
			return false, fmt.Errorf("replay step %d: warm bound %v, cold bound %v",
				i, warm.Bounds[i], cold.Bounds[i])
		}
		if warm.Schedules[i] != cold.Schedules[i] {
			identical = false
		}
	}
	return identical, nil
}

// replayScenario is one growing-trace workload of the R1 table.
type replayScenario struct {
	disks, baseN, steps, blocks, k, f int
	seed                              int64
}

// r1Scenarios are the growing traces R1 replays, smallest first.  Seeds are
// chosen so every step of both chains extracts a schedule: the fractional
// rounding of Section 4 still fails to find a feasible offset on some larger
// multi-disk optima (a pre-existing Extract limitation, hit identically by
// the warm and cold chains), and those traces say nothing about the
// incremental path this experiment pins.
func r1Scenarios() []replayScenario {
	return []replayScenario{
		{disks: 1, baseN: 30, steps: 10, blocks: 6, k: 3, f: 3, seed: 1000},
		{disks: 2, baseN: 30, steps: 10, blocks: 8, k: 4, f: 3, seed: 1000},
		{disks: 2, baseN: 60, steps: 12, blocks: 8, k: 4, f: 3, seed: 1010},
		{disks: 3, baseN: 45, steps: 12, blocks: 9, k: 4, f: 4, seed: 1000},
	}
}

// build materialises the scenario: the base instance and the extension
// requests, both drawn deterministically from the scenario seed.
func (sc replayScenario) build() (*core.Instance, []core.BlockID) {
	seq := workload.Uniform(sc.baseN, sc.blocks, sc.seed)
	in := workload.Instance(seq, sc.k, sc.f, sc.disks, workload.AssignStripe, 0)
	// Draw the extension over blocks the base trace references, so the warm
	// chain never needs a growth rebuild (rebuilds for brand-new blocks are
	// the service layer's job; the replay measures the pure incremental path).
	known := in.Blocks()
	ext := workload.Uniform(sc.steps, sc.blocks, sc.seed+1)
	steps := make([]core.BlockID, len(ext))
	for i, b := range ext {
		steps[i] = known[int(b)%len(known)]
	}
	return in, steps
}

// ReplayWorkload returns the growing trace the trace-replay benchmark
// (pcbench -replay, BenchmarkReplay*Step) measures: larger than the R1
// scenarios, because the gap between a warm dual re-solve and a cold
// rebuild-and-solve widens with the trace (the cold pivot count grows with
// the program, the warm one stays proportional to the perturbation).
func ReplayWorkload() (*core.Instance, []core.BlockID) {
	return replayScenario{disks: 2, baseN: 80, steps: 12, blocks: 10, k: 5, f: 4, seed: 1000}.build()
}

// R1TraceReplay replays growing traces through the incremental solve path
// (extend in place, re-optimise warm with the dual simplex) and through
// per-step cold rebuilds, and verifies the two chains serve cost-identical
// plans at every step.  Expected shape: "identical" is yes — the tie-broken
// objective has a unique optimum, so any correct solve lands on the same
// vertex — and the warm chain spends far fewer pivots than the cold chain;
// the wall-clock side of that gap is what BenchmarkReplayIncrementalStep vs
// BenchmarkReplayColdStep records in the timings block.
func R1TraceReplay() (*report.Table, error) {
	t := report.NewTable("R1: trace replay - incremental re-solves vs per-step cold rebuilds",
		"D", "base n", "steps", "final n", "final stall", "identical", "warm pivots", "cold pivots")
	t.Note = "Expected: identical=yes at every step (tie-broken objective, unique optimum); warm pivots far below cold."
	scs := r1Scenarios()
	type point struct {
		finalStall             int
		identical              string
		warmPivots, coldPivots int
	}
	points := make([]point, len(scs))
	err := forEach(len(points), func(i int) error {
		base, steps := scs[i].build()
		opts := lpOptions()
		warm, err := ReplayIncremental(base, steps, opts)
		if err != nil {
			return fmt.Errorf("R1 scenario %d incremental: %w", i, err)
		}
		cold, err := ReplayCold(base, steps, opts)
		if err != nil {
			return fmt.Errorf("R1 scenario %d cold: %w", i, err)
		}
		identical, err := CompareReplay(warm, cold)
		if err != nil {
			return fmt.Errorf("R1 scenario %d: %w", i, err)
		}
		p := point{finalStall: warm.Stalls[len(warm.Stalls)-1], identical: "yes",
			warmPivots: warm.Pivots, coldPivots: cold.Pivots}
		if !identical {
			p.identical = "no"
		}
		points[i] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, sc := range scs {
		p := points[i]
		t.AddRow(sc.disks, sc.baseN, sc.steps, sc.baseN+sc.steps, p.finalStall,
			p.identical, p.warmPivots, p.coldPivots)
	}
	return t, nil
}

// ReplayBench is the measured side of the trace replay: mean per-step
// re-solve latency of the two paths on the same growing trace.
type ReplayBench struct {
	// BaseN and Steps describe the trace; FinalN = BaseN + Steps.
	BaseN, Steps, FinalN int
	// WarmNS and ColdNS are mean per-step re-solve wall times in
	// nanoseconds: extend+incremental-solve vs rebuild+cold-solve.
	WarmNS, ColdNS float64
	// Speedup is ColdNS / WarmNS.
	Speedup float64
	// Identical reports whether every step's extracted schedule was
	// byte-identical between the two paths.
	Identical bool
	// WarmPivots and ColdPivots are the total simplex pivots each path spent.
	WarmPivots, ColdPivots int
}

// ReplayMeasure times the trace-replay workload: the warm incremental chain
// and the cold rebuild chain, re-solve only (the schedule extraction both
// paths share is done outside the timed region, and feeds the byte-identity
// check).  Cost-equivalence is enforced; measured times are machine-local.
func ReplayMeasure(base *core.Instance, steps []core.BlockID) (*ReplayBench, error) {
	opts := lpOptions()

	// Timed warm chain: extend + incremental re-solve per step.
	m, err := lpmodel.Build(base.Clone())
	if err != nil {
		return nil, err
	}
	m.TieBreakObjective(replayEps)
	solver := lp.NewSolver()
	if _, err := m.SolveWith(solver, opts); err != nil {
		return nil, err
	}
	warm := &ReplayRun{}
	var warmDur time.Duration
	for _, b := range steps {
		start := time.Now()
		if err := m.Extend(b); err != nil {
			return nil, err
		}
		m.TieBreakObjective(replayEps)
		frac, err := m.SolveIncremental(solver, opts)
		warmDur += time.Since(start)
		if err != nil {
			return nil, err
		}
		if err := warm.record(m, frac); err != nil {
			return nil, err
		}
	}

	// Timed cold chain: rebuild + from-scratch solve per step, into reused
	// model and solver buffers.
	in := base.Clone()
	cm := &lpmodel.Model{}
	csolver := lp.NewSolver()
	cold := &ReplayRun{}
	var coldDur time.Duration
	for _, b := range steps {
		in.Seq = append(in.Seq, b)
		start := time.Now()
		if err := lpmodel.BuildInto(cm, in); err != nil {
			return nil, err
		}
		cm.TieBreakObjective(replayEps)
		frac, err := cm.SolveWith(csolver, opts)
		coldDur += time.Since(start)
		if err != nil {
			return nil, err
		}
		if err := cold.record(cm, frac); err != nil {
			return nil, err
		}
	}

	identical, err := CompareReplay(warm, cold)
	if err != nil {
		return nil, err
	}
	n := len(steps)
	b := &ReplayBench{
		BaseN: base.N(), Steps: n, FinalN: base.N() + n,
		WarmNS:     float64(warmDur.Nanoseconds()) / float64(n),
		ColdNS:     float64(coldDur.Nanoseconds()) / float64(n),
		Identical:  identical,
		WarmPivots: warm.Pivots, ColdPivots: cold.Pivots,
	}
	if b.WarmNS > 0 {
		b.Speedup = b.ColdNS / b.WarmNS
	}
	return b, nil
}
