package experiments

import (
	"fmt"

	"pfcache/internal/core"
	"pfcache/internal/opt"
	"pfcache/internal/report"
	"pfcache/internal/sim"
	"pfcache/internal/single"
	"pfcache/internal/stats"
	"pfcache/internal/workload"
)

// IntroSingleDiskInstance returns the worked example from the introduction of
// the paper: sigma = b1 b2 b3 b4 b4 b5 b1 b4 b4 b2 with k = 4, F = 4 and
// b1..b4 initially cached.
func IntroSingleDiskInstance() *core.Instance {
	seq := core.Sequence{0, 1, 2, 3, 3, 4, 0, 3, 3, 1}
	return core.SingleDisk(seq, 4, 4).WithInitialCache(0, 1, 2, 3)
}

// IntroParallelInstance returns the two-disk worked example from the
// introduction: sigma = b1 b2 c1 c2 b3 c3 b4 with k = 4, F = 4, b1,b2,c1,c2
// initially cached, b-blocks on disk 0 and c-blocks on disk 1.
func IntroParallelInstance() *core.Instance {
	seq := core.Sequence{0, 1, 4, 5, 2, 6, 3}
	diskOf := map[core.BlockID]int{0: 0, 1: 0, 2: 0, 3: 0, 4: 1, 5: 1, 6: 1}
	return core.MultiDisk(seq, 4, 4, 2, diskOf).WithInitialCache(0, 1, 4, 5)
}

// runSingle executes a single-disk algorithm and returns its executor result.
func runSingle(in *core.Instance, a single.Algorithm) (*sim.Result, error) {
	sched, err := a.Run(in)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	res, err := sim.Run(in, sched, sim.Options{})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	return res, nil
}

// E1IntroExample reproduces the single-disk worked example of the paper's
// introduction.  The paper discusses two schedules, with elapsed times 13
// (the Aggressive-style early fetch) and 11 (the better, delayed fetch); the
// table reports what each implemented algorithm and the exhaustive optimum
// achieve.  Expected shape: Aggressive 13, optimal 11, Delay(1) and the LP
// pipeline 11.
func E1IntroExample() (*report.Table, error) {
	in := IntroSingleDiskInstance()
	t := report.NewTable("E1: introduction example, single disk (k=4, F=4, n=10)",
		"algorithm", "stall", "elapsed")
	t.Note = "Paper: early fetch gives elapsed 13, the better schedule 11."
	algos := []single.Algorithm{}
	for _, name := range []string{"aggressive", "conservative", "delay:1", "combination", "demand-min"} {
		a, err := single.ByName(name)
		if err != nil {
			return nil, err
		}
		algos = append(algos, a)
	}
	for _, a := range algos {
		res, err := runSingle(in, a)
		if err != nil {
			return nil, err
		}
		t.AddRow(a.Name, res.Stall, res.Elapsed)
	}
	optRes, err := opt.Optimal(in, optOptions(opt.Options{}))
	if err != nil {
		return nil, err
	}
	t.AddRow("optimal (exhaustive)", optRes.Stall, optRes.Elapsed)
	return t, nil
}

// E3AggressiveRatio measures the elapsed-time ratio of Aggressive against the
// exhaustive optimum across cache sizes, fetch times and workload shapes, and
// compares it with the refined Theorem 1 bound and the original bound of Cao
// et al.  Expected shape: every measured ratio is at most the Theorem 1 bound
// (which is itself at most the Cao bound and at most 2), and the bound
// tightens as k grows relative to F.
func E3AggressiveRatio() (*report.Table, error) {
	t := report.NewTable("E3: Aggressive elapsed-time ratio vs bounds (Theorem 1)",
		"k", "F", "workload", "mean ratio", "max ratio", "Thm1 bound", "Cao bound")
	t.Note = "Expected: max ratio <= Thm1 bound <= Cao bound <= 2.  The *-36 workloads are the larger instances unlocked by the A*/branch-and-bound search."
	type cfg struct{ k, f int }
	configs := []cfg{{3, 2}, {4, 2}, {4, 4}, {5, 3}, {5, 5}, {3, 5}}
	workloads := []struct {
		name string
		gen  func(seed int64) core.Sequence
	}{
		{"uniform", func(seed int64) core.Sequence { return workload.Uniform(20, 8, seed) }},
		{"zipf", func(seed int64) core.Sequence { return workload.Zipf(20, 8, 1.1, seed) }},
		{"loop", func(seed int64) core.Sequence { return workload.Loop(7, 3) }},
		{"uniform-36", func(seed int64) core.Sequence { return workload.Uniform(36, 10, seed) }},
		{"zipf-36", func(seed int64) core.Sequence { return workload.Zipf(36, 10, 1.1, seed) }},
	}
	type point struct{ mean, max float64 }
	points := make([]point, len(configs)*len(workloads))
	err := forEach(len(points), func(i int) error {
		c := configs[i/len(workloads)]
		w := workloads[i%len(workloads)]
		var ratios []float64
		for seed := int64(0); seed < 3; seed++ {
			in := core.SingleDisk(w.gen(seed), c.k, c.f)
			optRes, err := opt.Optimal(in, optOptions(opt.Options{}))
			if err != nil {
				return err
			}
			a, _ := single.ByName("aggressive")
			res, err := runSingle(in, a)
			if err != nil {
				return err
			}
			ratios = append(ratios, stats.Ratio(float64(res.Elapsed), float64(optRes.Elapsed)))
		}
		s := stats.Summarize(ratios)
		points[i] = point{mean: s.Mean, max: s.Max}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, p := range points {
		c := configs[i/len(workloads)]
		w := workloads[i%len(workloads)]
		t.AddRow(c.k, c.f, w.name, p.mean, p.max,
			single.AggressiveUpperBound(c.k, c.f), single.CaoAggressiveBound(c.k, c.f))
	}
	return t, nil
}

// E4AggressiveLowerBound runs Aggressive on the Theorem 2 phase construction
// and reports how its elapsed time compares with the optimal behaviour
// (realised here by Conservative, which on this instance evicts only the
// previous phase's blocks).  Expected shape: the measured ratio climbs with
// the number of phases towards the Theorem 2 bound 1 + F/(k + (k-1)/(F-1))
// and stays below the Theorem 1 upper bound.
func E4AggressiveLowerBound() (*report.Table, error) {
	t := report.NewTable("E4: Theorem 2 lower-bound construction",
		"k", "F", "phases", "aggressive elapsed", "optimal elapsed", "ratio", "Thm2 bound", "Thm1 bound")
	t.Note = "Expected: ratio climbs with phases towards (k+l+F)/(k+l+2), which tends to the Thm2 bound for large k and F."
	type cfg struct{ k, f int }
	configs := []cfg{{7, 4}, {5, 3}, {9, 5}, {13, 5}}
	phaseSet := []int{2, 6, 16, 40}
	type row struct{ agg, cons int }
	rows := make([]row, len(configs)*len(phaseSet))
	err := forEach(len(rows), func(i int) error {
		c := configs[i/len(phaseSet)]
		phases := phaseSet[i%len(phaseSet)]
		in, err := workload.AggressiveAdversary(c.k, c.f, phases)
		if err != nil {
			return err
		}
		ag, _ := single.ByName("aggressive")
		ares, err := runSingle(in, ag)
		if err != nil {
			return err
		}
		cons, _ := single.ByName("conservative")
		cres, err := runSingle(in, cons)
		if err != nil {
			return err
		}
		rows[i] = row{agg: ares.Elapsed, cons: cres.Elapsed}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		c := configs[i/len(phaseSet)]
		phases := phaseSet[i%len(phaseSet)]
		ratio := stats.Ratio(float64(r.agg), float64(r.cons))
		t.AddRow(c.k, c.f, phases, r.agg, r.cons, ratio,
			single.AggressiveLowerBound(c.k, c.f), single.AggressiveUpperBound(c.k, c.f))
	}
	return t, nil
}

// E5DelaySweep sweeps the delay parameter d of Delay(d) and reports the
// analytic Theorem 3 bound together with the measured worst-case ratio
// against the exhaustive optimum on small workloads.  Expected shape: the
// analytic bound has an interior minimum near d0 = floor((sqrt(3)-1)/2*F)
// with value about sqrt(3) = 1.732, bridging Aggressive (d = 0, bound 2 when
// F >= k) and Conservative-like behaviour for large d; measured ratios stay
// below the bound for every d.
func E5DelaySweep() (*report.Table, error) {
	const k, f = 4, 6
	t := report.NewTable(fmt.Sprintf("E5: Delay(d) sweep (k=%d, F=%d)", k, f),
		"n", "d", "Thm3 bound", "mean ratio", "max ratio")
	t.Note = fmt.Sprintf("Expected: bound minimised near d0=%d at about sqrt(3)=1.732.  n=20 are the historical rows, n=32 the larger instances.", single.BestDelay(f))
	sets := []struct {
		n    int
		gens []func(seed int64) core.Sequence
	}{
		{20, []func(seed int64) core.Sequence{
			func(seed int64) core.Sequence { return workload.Uniform(20, 7, seed) },
			func(seed int64) core.Sequence { return workload.Zipf(20, 7, 1.2, seed+100) },
		}},
		{32, []func(seed int64) core.Sequence{
			func(seed int64) core.Sequence { return workload.Uniform(32, 9, seed) },
			func(seed int64) core.Sequence { return workload.Zipf(32, 9, 1.2, seed+100) },
		}},
	}
	// Precompute the optima once per instance, in parallel.
	type inst struct {
		in  *core.Instance
		opt int
	}
	const instSeeds = 2
	// The flat index arithmetic below requires every size group to hold the
	// same number of instances.
	perSet := len(sets[0].gens) * instSeeds
	for _, set := range sets {
		if len(set.gens)*instSeeds != perSet {
			return nil, fmt.Errorf("E5: size group n=%d has %d generators, want %d", set.n, len(set.gens), perSet/instSeeds)
		}
	}
	instances := make([]inst, len(sets)*perSet)
	err := forEach(len(instances), func(i int) error {
		set := sets[i/perSet]
		j := i % perSet
		g := set.gens[j/instSeeds]
		seed := int64(j % instSeeds)
		in := core.SingleDisk(g(seed), k, f)
		o, err := opt.Optimal(in, optOptions(opt.Options{}))
		if err != nil {
			return err
		}
		instances[i] = inst{in: in, opt: o.Elapsed}
		return nil
	})
	if err != nil {
		return nil, err
	}
	type point struct{ mean, max float64 }
	sweep := 2*f + 1
	points := make([]point, len(sets)*sweep)
	err = forEach(len(points), func(i int) error {
		si := i / sweep
		d := i % sweep
		var ratios []float64
		for _, it := range instances[si*perSet : (si+1)*perSet] {
			sched, err := single.Delay(it.in, d)
			if err != nil {
				return err
			}
			res, err := sim.Run(it.in, sched, sim.Options{})
			if err != nil {
				return err
			}
			ratios = append(ratios, stats.Ratio(float64(res.Elapsed), float64(it.opt)))
		}
		s := stats.Summarize(ratios)
		points[i] = point{mean: s.Mean, max: s.Max}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, p := range points {
		t.AddRow(sets[i/sweep].n, i%sweep, single.DelayUpperBound(i%sweep, f), p.mean, p.max)
	}
	return t, nil
}

// E6Combination compares Aggressive, Conservative, Delay(d0), Combination and
// the demand baseline head to head against the exhaustive optimum.  Expected
// shape: Combination is never worse than both Aggressive and Conservative on
// the same instance family (Corollary 2), and every prefetching algorithm
// beats the demand baseline.
func E6Combination() (*report.Table, error) {
	t := report.NewTable("E6: head-to-head comparison (elapsed-time ratio to optimal)",
		"workload", "k", "F", "aggressive", "conservative", "delay:auto", "combination", "demand-min")
	t.Note = "Expected: combination <= max(aggressive, conservative); demand worst."
	type cfg struct {
		name string
		k, f int
		gen  func(seed int64) core.Sequence
	}
	configs := []cfg{
		{"uniform", 4, 3, func(seed int64) core.Sequence { return workload.Uniform(20, 8, seed) }},
		{"zipf", 4, 5, func(seed int64) core.Sequence { return workload.Zipf(20, 8, 1.2, seed) }},
		{"loop", 3, 4, func(seed int64) core.Sequence { return workload.Loop(6, 3) }},
		{"phased", 4, 4, func(seed int64) core.Sequence { return workload.Phased(2, 10, 5, 2, seed) }},
		{"uniform-32", 5, 4, func(seed int64) core.Sequence { return workload.Uniform(32, 10, seed) }},
		{"phased-32", 5, 3, func(seed int64) core.Sequence { return workload.Phased(2, 16, 8, 3, seed) }},
	}
	algoNames := []string{"aggressive", "conservative", "delay:auto", "combination", "demand-min"}
	const seeds = 3
	points := make([][]float64, len(configs)*seeds)
	err := forEach(len(points), func(i int) error {
		c := configs[i/seeds]
		seed := int64(i % seeds)
		in := core.SingleDisk(c.gen(seed), c.k, c.f)
		optRes, err := opt.Optimal(in, optOptions(opt.Options{}))
		if err != nil {
			return err
		}
		vals := make([]float64, len(algoNames))
		for ai, name := range algoNames {
			a, err := single.ByName(name)
			if err != nil {
				return err
			}
			res, err := runSingle(in, a)
			if err != nil {
				return err
			}
			vals[ai] = stats.Ratio(float64(res.Elapsed), float64(optRes.Elapsed))
		}
		points[i] = vals
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ci, c := range configs {
		row := []interface{}{c.name, c.k, c.f}
		for ai := range algoNames {
			var vals []float64
			for _, p := range points[ci*seeds : (ci+1)*seeds] {
				vals = append(vals, p[ai])
			}
			row = append(row, stats.Summarize(vals).Mean)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// A2EvictionAblation removes the two ingredients of the integrated algorithms
// one at a time: prefetching (demand paging with MIN replacement) and the
// optimal replacement rule (demand paging with LRU/FIFO replacement), and
// compares them with Aggressive on the same workloads.  Expected shape:
// integrated prefetching+MIN < demand+MIN < demand+LRU/FIFO in elapsed time.
func A2EvictionAblation() (*report.Table, error) {
	t := report.NewTable("A2: ablation - value of prefetching and of the eviction rule",
		"workload", "aggressive", "demand-min", "demand-lru", "demand-fifo")
	t.Note = "Mean elapsed time; expected ordering: aggressive < demand-min < demand-lru/fifo."
	type cfg struct {
		name string
		gen  func(seed int64) core.Sequence
	}
	configs := []cfg{
		{"uniform", func(seed int64) core.Sequence { return workload.Uniform(300, 24, seed) }},
		{"zipf", func(seed int64) core.Sequence { return workload.Zipf(300, 24, 1.1, seed) }},
		{"loop", func(seed int64) core.Sequence { return workload.Loop(10, 30) }},
	}
	algoNames := []string{"aggressive", "demand-min", "demand-lru", "demand-fifo"}
	const seeds = 3
	points := make([][]float64, len(configs)*seeds)
	err := forEach(len(points), func(i int) error {
		c := configs[i/seeds]
		seed := int64(i % seeds)
		in := core.SingleDisk(c.gen(seed), 8, 4)
		vals := make([]float64, len(algoNames))
		for ai, name := range algoNames {
			a, err := single.ByName(name)
			if err != nil {
				return err
			}
			res, err := runSingle(in, a)
			if err != nil {
				return err
			}
			vals[ai] = float64(res.Elapsed)
		}
		points[i] = vals
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ci, c := range configs {
		row := []interface{}{c.name}
		for ai := range algoNames {
			var vals []float64
			for _, p := range points[ci*seeds : (ci+1)*seeds] {
				vals = append(vals, p[ai])
			}
			row = append(row, stats.Summarize(vals).Mean)
		}
		t.AddRow(row...)
	}
	return t, nil
}
