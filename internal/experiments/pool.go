package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pfcache/internal/report"
)

// workerCount is the configured concurrency of the experiment driver; 0
// means one worker per CPU.
var workerCount atomic.Int64

// SetWorkers sets the number of concurrent workers used by RunAll and by
// the row-level loops inside the experiments.  n <= 0 restores the default
// (one worker per CPU); n == 1 forces fully sequential execution.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workerCount.Store(int64(n))
}

// Workers returns the effective worker count.
func Workers() int {
	if n := int(workerCount.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// extraWorkers counts the extra goroutines currently running across every
// forEach call, so the Workers() bound is global: nested fan-out (RunAll
// over experiments, each experiment fanning out its rows) shares one budget
// of Workers()-1 extras plus the calling goroutine, instead of multiplying
// worker counts per nesting level.
var extraWorkers atomic.Int64

// acquireExtra reserves one slot of the global extra-worker budget, or
// reports that the budget is exhausted.
func acquireExtra(budget int64) bool {
	for {
		cur := extraWorkers.Load()
		if cur >= budget {
			return false
		}
		if extraWorkers.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// forEach runs f(i) for every i in [0, n).  The calling goroutine always
// processes items itself (guaranteeing progress without holding budget) and
// is joined by extra goroutines while the global budget allows.  Each index
// is processed exactly once; on failure every failing index's error is
// returned (joined in index order), so the outcome is deterministic
// regardless of scheduling.  Every experiment point writes its result into
// an index-addressed slot, which keeps result tables byte-identical to the
// sequential driver's output.
func forEach(n int, f func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			errs[i] = f(i)
		}
	}
	budget := int64(Workers() - 1)
	var wg sync.WaitGroup
	for g := 0; g < n-1 && acquireExtra(budget); g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer extraWorkers.Add(-1)
			work()
		}()
	}
	work()
	wg.Wait()
	return errors.Join(errs...)
}

// Result is the outcome of one experiment run by RunAll.
type Result struct {
	// Experiment identifies what ran.
	Experiment Experiment
	// Table is the produced result table.
	Table *report.Table
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
}

// RunAll executes the given experiments concurrently (bounded by Workers())
// and returns their results in the same order, so output is deterministic
// regardless of which experiment finishes first.  On failure the error is
// tagged with the failing experiment's ID and the completed results are
// still returned (failed entries have a nil Table).
func RunAll(exps []Experiment) ([]Result, error) {
	out := make([]Result, len(exps))
	err := forEach(len(exps), func(i int) error {
		start := time.Now()
		tab, err := exps[i].Run()
		if err != nil {
			return fmt.Errorf("%s: %w", exps[i].ID, err)
		}
		out[i] = Result{Experiment: exps[i], Table: tab, Elapsed: time.Since(start)}
		return nil
	})
	return out, err
}
