package experiments

import (
	"testing"

	"pfcache/internal/lp"
	"pfcache/internal/lpmodel"
)

// TestReplayChainsAgree runs every R1 scenario through both replay paths and
// requires cost-identical plans at every step; on the pinned suite engines
// the extracted schedules must also be byte-identical, since that is the
// property the committed R1 rows record.
func TestReplayChainsAgree(t *testing.T) {
	for i, sc := range r1Scenarios() {
		if testing.Short() && sc.baseN > 30 {
			continue
		}
		base, steps := sc.build()
		opts := lpOptions()
		warm, err := ReplayIncremental(base, steps, opts)
		if err != nil {
			t.Fatalf("scenario %d incremental: %v", i, err)
		}
		cold, err := ReplayCold(base, steps, opts)
		if err != nil {
			t.Fatalf("scenario %d cold: %v", i, err)
		}
		identical, err := CompareReplay(warm, cold)
		if err != nil {
			t.Fatalf("scenario %d: %v", i, err)
		}
		if !identical {
			t.Errorf("scenario %d: schedules diverged on the pinned engines", i)
		}
		if warm.Pivots >= cold.Pivots {
			t.Errorf("scenario %d: warm chain spent %d pivots, cold chain only %d",
				i, warm.Pivots, cold.Pivots)
		}
	}
}

// TestReplayMeasure smoke-tests the timed driver on the benchmark workload:
// it must report cost-equivalent chains and a positive speedup.  The >=5x
// figure itself is recorded by the benchmarks below, not asserted here —
// wall-clock ratios are machine-local.
func TestReplayMeasure(t *testing.T) {
	if testing.Short() {
		t.Skip("timed replay is slow")
	}
	base, steps := ReplayWorkload()
	b, err := ReplayMeasure(base, steps)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Identical {
		t.Errorf("benchmark workload schedules diverged between warm and cold chains")
	}
	if b.Speedup <= 1 {
		t.Errorf("warm re-solves slower than cold rebuilds: speedup %.2f", b.Speedup)
	}
	t.Logf("replay n=%d+%d: warm %.0fns cold %.0fns speedup %.1fx pivots %d/%d",
		b.BaseN, b.Steps, b.WarmNS, b.ColdNS, b.Speedup, b.WarmPivots, b.ColdPivots)
}

// BenchmarkReplayIncrementalStep measures one steady-state step of the
// trace-replay workload's warm chain: extend the program in place, re-solve
// with the dual simplex from the previous basis.  Its ratio to
// BenchmarkReplayColdStep is the speedup BENCH_*.json's timings record.
func BenchmarkReplayIncrementalStep(b *testing.B) {
	base, steps := ReplayWorkload()
	opts := lpOptions()
	solver := lp.NewSolver()
	m, err := lpmodel.Build(base.Clone())
	if err != nil {
		b.Fatal(err)
	}
	m.TieBreakObjective(replayEps)
	if _, err := m.SolveWith(solver, opts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%len(steps) == 0 {
			// Rebase so the program size stays the workload's, not b.N's.
			b.StopTimer()
			if err := lpmodel.BuildInto(m, base.Clone()); err != nil {
				b.Fatal(err)
			}
			m.TieBreakObjective(replayEps)
			if _, err := m.SolveWith(solver, opts); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		if err := m.Extend(steps[i%len(steps)]); err != nil {
			b.Fatal(err)
		}
		m.TieBreakObjective(replayEps)
		if _, err := m.SolveIncremental(solver, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplayColdStep is the cold side of the same workload: each step
// rebuilds the full extended trace into reused buffers and solves from
// scratch.
func BenchmarkReplayColdStep(b *testing.B) {
	base, steps := ReplayWorkload()
	opts := lpOptions()
	solver := lp.NewSolver()
	m := &lpmodel.Model{}
	in := base.Clone()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%len(steps) == 0 {
			b.StopTimer()
			in = base.Clone()
			b.StartTimer()
		}
		in.Seq = append(in.Seq, steps[i%len(steps)])
		if err := lpmodel.BuildInto(m, in); err != nil {
			b.Fatal(err)
		}
		m.TieBreakObjective(replayEps)
		if _, err := m.SolveWith(solver, opts); err != nil {
			b.Fatal(err)
		}
	}
}
