package experiments

import (
	"sync"
	"sync/atomic"

	"pfcache/internal/lpmodel"
)

// The LP-heavy experiment rows (E7's lp-optimal points, E8's lower-bound and
// planning solves) route through pooled lpmodel.ModelBatch values: each
// worker goroutine checks a batch out of a free stack for the duration of a
// point, so solver arenas, symbolic factorizations and per-pattern warm bases
// amortise across the rows a worker processes.  Cold solves through a batch
// are bit-identical to non-batched solves (the lp.Batch contract), so the
// tables — and the committed BENCH_*.json trajectories — do not depend on
// the flag, the pool state or the worker count.
//
// The pool is an explicit mutex-guarded stack rather than a sync.Pool on
// purpose: sync.Pool may drop members at any GC, which would make the new
// symbolic_reuses/numeric_refactors counters nondeterministic run to run.
// With the stack, a single-worker sweep started from ResetBatches reuses
// batches in a deterministic order, so the counter blocks in recorded
// benchmarks reproduce exactly.

// batchOff is inverted so the zero value means "batching on" — the default.
var batchOff atomic.Bool

// SetBatch enables or disables the batched LP path (pcbench -batch).
func SetBatch(on bool) { batchOff.Store(!on) }

// BatchEnabled reports whether the batched LP path is active.
func BatchEnabled() bool { return !batchOff.Load() }

var (
	batchMu   sync.Mutex
	batchFree []*lpmodel.ModelBatch
)

// acquireBatch checks a ModelBatch out of the pool, creating one when the
// stack is empty.  The caller owns it until releaseBatch.
func acquireBatch() *lpmodel.ModelBatch {
	batchMu.Lock()
	defer batchMu.Unlock()
	if n := len(batchFree); n > 0 {
		b := batchFree[n-1]
		batchFree = batchFree[:n-1]
		return b
	}
	return lpmodel.NewModelBatch()
}

// releaseBatch returns a ModelBatch to the pool.
func releaseBatch(b *lpmodel.ModelBatch) {
	batchMu.Lock()
	defer batchMu.Unlock()
	batchFree = append(batchFree, b)
}

// ResetBatches discards every pooled batch, releasing their arenas and warm
// state.  The service calls it at the start of each sweep so sweeps are
// hermetic: no batch state (and thus no counter value) carries over from
// whatever ran before.
func ResetBatches() {
	batchMu.Lock()
	defer batchMu.Unlock()
	batchFree = nil
}
