package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestRegistry checks the experiment registry.
func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 11 {
		t.Fatalf("expected 11 experiments, got %d", len(all))
	}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		got, err := ByID(e.ID)
		if err != nil || got.ID != e.ID {
			t.Fatalf("ByID(%q) failed: %v", e.ID, err)
		}
	}
	if _, err := ByID("E99"); err == nil {
		t.Fatalf("unknown experiment accepted")
	}
	if len(IDs()) != len(all) {
		t.Fatalf("IDs() length mismatch")
	}
}

// TestE1Numbers checks the worked-example numbers of the paper: Aggressive
// reaches elapsed time 13 and the optimum 11.
func TestE1Numbers(t *testing.T) {
	tab, err := E1IntroExample()
	if err != nil {
		t.Fatalf("E1: %v", err)
	}
	values := map[string]string{}
	for _, row := range tab.Rows {
		values[row[0]] = row[2]
	}
	if values["aggressive"] != "13" {
		t.Errorf("aggressive elapsed = %s, want 13", values["aggressive"])
	}
	if values["optimal (exhaustive)"] != "11" {
		t.Errorf("optimal elapsed = %s, want 11", values["optimal (exhaustive)"])
	}
	if values["delay:1"] != "11" {
		t.Errorf("delay:1 elapsed = %s, want 11", values["delay:1"])
	}
}

// TestE2Numbers checks that the two-disk worked example's optimal stall is 3
// and that the LP algorithm matches it.
func TestE2Numbers(t *testing.T) {
	tab, err := E2IntroParallelExample()
	if err != nil {
		t.Fatalf("E2: %v", err)
	}
	stall := map[string]string{}
	for _, row := range tab.Rows {
		stall[row[0]] = row[1]
	}
	if stall["optimal (exhaustive)"] != "3" {
		t.Errorf("optimal stall = %s, want 3", stall["optimal (exhaustive)"])
	}
	if stall["aggressive"] != "3" {
		t.Errorf("parallel aggressive stall = %s, want 3", stall["aggressive"])
	}
	if v, err := strconv.Atoi(stall["lp-optimal"]); err != nil || v > 3 {
		t.Errorf("lp-optimal stall = %s, want at most 3", stall["lp-optimal"])
	}
}

// TestE3RespectsBounds checks that every measured Aggressive ratio stays
// below the Theorem 1 bound reported in the same row.
func TestE3RespectsBounds(t *testing.T) {
	tab, err := E3AggressiveRatio()
	if err != nil {
		t.Fatalf("E3: %v", err)
	}
	if len(tab.Rows) == 0 {
		t.Fatalf("empty table")
	}
	for _, row := range tab.Rows {
		max, err1 := strconv.ParseFloat(row[4], 64)
		bound, err2 := strconv.ParseFloat(row[5], 64)
		cao, err3 := strconv.ParseFloat(row[6], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			t.Fatalf("bad row %v", row)
		}
		if max > bound+1e-9 {
			t.Errorf("row %v: measured ratio exceeds Theorem 1 bound", row)
		}
		if bound > cao+1e-9 {
			t.Errorf("row %v: refined bound worse than Cao bound", row)
		}
		if bound > 2+1e-9 {
			t.Errorf("row %v: bound exceeds 2", row)
		}
	}
}

// TestE4RatioGrowsWithPhases checks the Theorem 2 construction: for each
// (k, F) the measured ratio is non-decreasing in the number of phases and
// stays between 1 and the Theorem 1 bound.
func TestE4RatioGrowsWithPhases(t *testing.T) {
	tab, err := E4AggressiveLowerBound()
	if err != nil {
		t.Fatalf("E4: %v", err)
	}
	prevKey := ""
	prevRatio := 0.0
	for _, row := range tab.Rows {
		key := row[0] + "/" + row[1]
		ratio, err := strconv.ParseFloat(row[5], 64)
		if err != nil {
			t.Fatalf("bad ratio in %v", row)
		}
		upper, _ := strconv.ParseFloat(row[7], 64)
		if ratio < 1-1e-9 || ratio > upper+1e-9 {
			t.Errorf("row %v: ratio %f outside [1, %f]", row, ratio, upper)
		}
		if key == prevKey && ratio+1e-9 < prevRatio {
			t.Errorf("row %v: ratio decreased with more phases (%f -> %f)", row, prevRatio, ratio)
		}
		prevKey, prevRatio = key, ratio
	}
}

// TestE5ShapeAndBounds checks the Delay sweep: within each instance-size
// group the analytic bound has an interior minimum near d0 with value below
// 1.8, and measured ratios never exceed the analytic bound.
func TestE5ShapeAndBounds(t *testing.T) {
	tab, err := E5DelaySweep()
	if err != nil {
		t.Fatalf("E5: %v", err)
	}
	groups := map[string][][]string{}
	var order []string
	for _, row := range tab.Rows {
		n := row[0]
		if _, ok := groups[n]; !ok {
			order = append(order, n)
		}
		groups[n] = append(groups[n], row)
		d, _ := strconv.Atoi(row[1])
		bound, _ := strconv.ParseFloat(row[2], 64)
		max, _ := strconv.ParseFloat(row[4], 64)
		if max > bound+1e-9 {
			t.Errorf("n=%s d=%d: measured ratio %f exceeds Theorem 3 bound %f", n, d, max, bound)
		}
	}
	if len(order) < 2 {
		t.Fatalf("expected at least two instance-size groups, got %v", order)
	}
	for _, n := range order {
		rows := groups[n]
		minBound := 10.0
		minD := -1
		for _, row := range rows {
			d, _ := strconv.Atoi(row[1])
			bound, _ := strconv.ParseFloat(row[2], 64)
			if bound < minBound {
				minBound, minD = bound, d
			}
		}
		if minBound > 1.8 {
			t.Errorf("n=%s: minimum Theorem 3 bound %f is not near sqrt(3)", n, minBound)
		}
		first, _ := strconv.ParseFloat(rows[0][2], 64)
		last, _ := strconv.ParseFloat(rows[len(rows)-1][2], 64)
		if !(minBound < first && minBound < last) {
			t.Errorf("n=%s: bound minimum (d=%d) is not interior: ends %f %f min %f", n, minD, first, last, minBound)
		}
	}
}

// TestE6CombinationNeverWorst checks Corollary 2's shape: Combination's mean
// ratio never exceeds the worse of Aggressive and Conservative, and the
// demand baseline is the worst column.
func TestE6CombinationNeverWorst(t *testing.T) {
	tab, err := E6Combination()
	if err != nil {
		t.Fatalf("E6: %v", err)
	}
	for _, row := range tab.Rows {
		ag, _ := strconv.ParseFloat(row[3], 64)
		cons, _ := strconv.ParseFloat(row[4], 64)
		comb, _ := strconv.ParseFloat(row[6], 64)
		demand, _ := strconv.ParseFloat(row[7], 64)
		worse := ag
		if cons > worse {
			worse = cons
		}
		if comb > worse+1e-9 {
			t.Errorf("row %v: combination %f worse than both classical algorithms", row, comb)
		}
		if demand+1e-9 < ag || demand+1e-9 < cons {
			t.Errorf("row %v: demand baseline unexpectedly beats a prefetching algorithm", row)
		}
	}
}

// TestE7Theorem4 checks the headline result: the LP schedule's stall never
// exceeds the optimum (ratio at most 1.0) and the extra cache stays within
// 2(D-1).  It also checks the bound-layer attribution the table carries: on
// every row that every layer completes, expansions must shrink (weakly) with
// each added layer and the full engine must expand strictly fewer states than
// the blind Dijkstra reference.
func TestE7Theorem4(t *testing.T) {
	tab, err := E7ParallelLPOptimal()
	if err != nil {
		t.Fatalf("E7: %v", err)
	}
	for _, row := range tab.Rows {
		maxRatio, _ := strconv.ParseFloat(row[4], 64)
		extra, _ := strconv.Atoi(row[5])
		budget, _ := strconv.Atoi(row[6])
		astar, _ := strconv.Atoi(row[8])
		lm, _ := strconv.Atoi(row[9])
		dom, _ := strconv.Atoi(row[10])
		dijkstra, _ := strconv.Atoi(row[11])
		if maxRatio > 1+1e-9 {
			t.Errorf("row %v: LP stall ratio %f exceeds 1", row, maxRatio)
		}
		if extra > budget {
			t.Errorf("row %v: extra cache %d exceeds budget %d", row, extra, budget)
		}
		if astar < 0 || lm < 0 || dom < 0 || dijkstra < 0 {
			continue // a layer exhausted its budget; nothing to compare
		}
		if dom > lm || lm > astar {
			t.Errorf("row %v: expansions grew with a bound layer (astar %d, +lm %d, +dom %d)", row, astar, lm, dom)
		}
		if dom >= dijkstra {
			t.Errorf("row %v: full engine expanded %d states, not fewer than dijkstra's %d", row, dom, dijkstra)
		}
	}
}

// TestE8Shape checks that the LP algorithm's normalised stall never exceeds
// the other algorithms' and that demand paging is the worst strategy.
func TestE8Shape(t *testing.T) {
	tab, err := E8ParallelHeuristics()
	if err != nil {
		t.Fatalf("E8: %v", err)
	}
	for _, row := range tab.Rows {
		lpv, _ := strconv.ParseFloat(row[1], 64)
		ag, _ := strconv.ParseFloat(row[2], 64)
		cons, _ := strconv.ParseFloat(row[3], 64)
		demand, _ := strconv.ParseFloat(row[4], 64)
		if lpv > ag+1e-9 || lpv > cons+1e-9 || lpv > demand+1e-9 {
			t.Errorf("row %v: lp-optimal is not the best strategy", row)
		}
		if demand+1e-9 < ag {
			t.Errorf("row %v: demand beats aggressive", row)
		}
	}
}

// TestA1Shape checks the ablation invariants: extra cache never hurts and the
// synchronized LP bound never exceeds OPT(k).
func TestA1Shape(t *testing.T) {
	tab, err := A1SynchronizationAblation()
	if err != nil {
		t.Fatalf("A1: %v", err)
	}
	for _, row := range tab.Rows {
		base, _ := strconv.Atoi(row[2])
		extra, _ := strconv.Atoi(row[3])
		lb, _ := strconv.ParseFloat(row[4], 64)
		if extra > base {
			t.Errorf("row %v: extra cache increased the optimal stall", row)
		}
		if lb > float64(base)+1e-6 {
			t.Errorf("row %v: LP bound %f exceeds OPT(k) %d", row, lb, base)
		}
	}
}

// TestA2Shape checks the prefetching/eviction ablation ordering.
func TestA2Shape(t *testing.T) {
	tab, err := A2EvictionAblation()
	if err != nil {
		t.Fatalf("A2: %v", err)
	}
	for _, row := range tab.Rows {
		ag, _ := strconv.ParseFloat(row[1], 64)
		min, _ := strconv.ParseFloat(row[2], 64)
		lru, _ := strconv.ParseFloat(row[3], 64)
		if ag > min+1e-9 {
			t.Errorf("row %v: aggressive worse than demand-min", row)
		}
		if min > lru+1e-9 {
			t.Errorf("row %v: demand-min worse than demand-lru", row)
		}
	}
}

// TestTableRendering exercises the table renderers on a real experiment.
func TestTableRendering(t *testing.T) {
	tab, err := E1IntroExample()
	if err != nil {
		t.Fatalf("E1: %v", err)
	}
	text := tab.String()
	if !strings.Contains(text, "aggressive") || !strings.Contains(text, "E1") {
		t.Errorf("text rendering missing content:\n%s", text)
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "algorithm,stall,elapsed") {
		t.Errorf("csv rendering missing header:\n%s", csv)
	}
}

// TestConcurrentDriverDeterministic runs an experiment with the sequential
// and the concurrent driver and requires byte-identical tables, the
// guarantee the worker pool makes for every experiment.
func TestConcurrentDriverDeterministic(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(1)
	seq, err := E5DelaySweep()
	if err != nil {
		t.Fatalf("sequential E5: %v", err)
	}
	SetWorkers(4)
	par, err := E5DelaySweep()
	if err != nil {
		t.Fatalf("concurrent E5: %v", err)
	}
	if seq.String() != par.String() {
		t.Fatalf("concurrent table differs from sequential:\n--- sequential ---\n%s--- concurrent ---\n%s", seq, par)
	}
}

// TestRunAllPreservesOrder checks that RunAll returns results in input
// order with the right tables attached, regardless of worker scheduling.
func TestRunAllPreservesOrder(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(4)
	e1, err := ByID("E1")
	if err != nil {
		t.Fatal(err)
	}
	e2, err := ByID("E2")
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunAll([]Experiment{e2, e1})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Experiment.ID != "E2" || results[1].Experiment.ID != "E1" {
		t.Fatalf("unexpected result order: %+v", results)
	}
	for _, r := range results {
		if r.Table == nil || len(r.Table.Rows) == 0 {
			t.Fatalf("%s: empty table", r.Experiment.ID)
		}
		if r.Elapsed <= 0 {
			t.Fatalf("%s: non-positive elapsed time", r.Experiment.ID)
		}
	}
}

// TestSetWorkersClamps exercises the worker-count accessors.
func TestSetWorkersClamps(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(-3)
	if Workers() <= 0 {
		t.Fatalf("Workers() = %d after reset, want > 0", Workers())
	}
	SetWorkers(2)
	if Workers() != 2 {
		t.Fatalf("Workers() = %d, want 2", Workers())
	}
}
