package lpmodel

import (
	"fmt"

	"pfcache/internal/core"
	"pfcache/internal/lp"
)

// Interval is a fetch interval (i, j) in the paper's notation: a fetch that
// starts after request r_i and completes before request r_j, overlapping the
// service of the j-i-1 requests in between.  Start and End use the paper's
// 1-based request numbers, so Start ranges over 0..n-1 and End over 1..n with
// Start < End and End-Start-1 <= F.
type Interval struct {
	Start int
	End   int
}

// Length is the number of requests served during the fetch, |I| = End-Start-1.
func (iv Interval) Length() int { return iv.End - iv.Start - 1 }

// Stall is the stall time charged at the end of the interval, F - |I|.
func (iv Interval) Stall(f int) int { return f - iv.Length() }

// ContainsRequest reports whether the 1-based request number q lies strictly
// inside the interval.
func (iv Interval) ContainsRequest(q int) bool { return iv.Start < q && q < iv.End }

// String renders the interval.
func (iv Interval) String() string { return fmt.Sprintf("(%d,%d)", iv.Start, iv.End) }

// noVar marks an (interval, block) pair without a fetch/eviction variable.
const noVar = -1

// Model is the synchronized-schedule linear program for one instance.
type Model struct {
	// In is the original instance.
	In *core.Instance
	// Intervals enumerates every candidate fetch interval.
	Intervals []Interval
	// Dummies are the never-requested blocks added (on disk 0) to fill the
	// initial cache to k+D-1 locations, as in the paper's S_init.
	Dummies []core.BlockID
	// Blocks is every block of the program: the instance's blocks plus the
	// dummies.
	Blocks []core.BlockID
	// Problem is the LP relaxation.
	Problem *lp.Problem

	// Variable lookup is flat and index-based: intervals are numbered by
	// position in Intervals, blocks by position in Blocks, so the dense maps
	// of the earlier implementation become slice lookups.
	xVar []int // interval -> x(I) variable
	fVar []int // interval*len(Blocks)+blockPos -> fetch variable or noVar
	eVar []int // interval*len(Blocks)+blockPos -> eviction variable or noVar
	sVar []int // interval*Disks+disk -> scratch fetch variable

	ix      *core.Index
	initial map[core.BlockID]bool

	// Constraint-assembly scratch, reused across every constraint of a build
	// and across builds (BuildInto): AddConstraint copies coefficients into
	// the Problem's own arena, so these can be recycled immediately.
	coefBuf  []lp.Coef
	coefBuf2 []lp.Coef
	refBuf   []int

	// startOff[s] is the index in Intervals of the first interval with
	// Start == s (startOff has n+1 entries; the enumeration in Build is
	// start-major, so the intervals starting at s are the contiguous run
	// Intervals[startOff[s]:startOff[s+1]], ordered by increasing End).
	// gapIntervals answers every (lo, hi) query from these offsets.
	startOff []int

	gapBuf []int // scratch for gapIntervals

	// Trace-extension bookkeeping (see extend.go).  Build records, per block
	// position, the 1-based request number of the block's last reference
	// (0 = never referenced) and the index of its trailing "evicted at most
	// once" row (-1 when the build emitted none), plus per boundary q the
	// index of its "at most one interval spans q" row.  Extensions append
	// intervals outside the start-major runs startOff describes; extStart[s]
	// lists them per start, ordered by increasing End, so gapIntervals stays
	// exact on an extended model.
	lastRef     []int
	tailRow     []int
	boundaryRow []int
	extStart    [][]int32

	// warm is the basis seeding the next solve: captured automatically from
	// this model's last optimal solve, or transplanted from a same-shaped
	// model via WarmStart.  The solver falls back to a cold start whenever
	// the basis does not transfer, so a stale or foreign basis is never
	// unsafe — see lp.WarmBasis.
	warm *lp.WarmBasis
}

// Fractional is an optimal solution of the LP relaxation.
type Fractional struct {
	// X is the value of x(I) for every interval (indexed like Model.Intervals).
	X []float64
	// Objective is the optimal objective value: a lower bound on the optimal
	// stall time sOPT(sigma, k).
	Objective float64
	// Iterations is the number of simplex pivots used.
	Iterations int
	// Integral reports whether every x(I) is within tolerance of 0 or 1.
	Integral bool
	// Downgrades is the number of self-healing cascade rungs the solve
	// abandoned before this solution verified (0 without lp.Options.Cascade,
	// and 0 when the configured engines' own result passed verification).
	// It never appears on the wire: a recovered solve is byte-identical to a
	// clean one, and the counter exists so the service can taint the shard
	// solver that needed recovering.
	Downgrades int
}

// Build constructs the linear program of Section 3 for the instance.
func Build(in *core.Instance) (*Model, error) {
	m := &Model{}
	if err := BuildInto(m, in); err != nil {
		return nil, err
	}
	return m, nil
}

// BuildInto rebuilds m as the linear program of Section 3 for the instance,
// reusing every buffer m already owns: the interval/block/variable tables,
// the start-bucketed interval offsets, the constraint-assembly scratch and
// the Problem itself (reset in place, keeping its coefficient arena).  A
// model cycled through BuildInto across the rows of a sweep performs no
// steady-state allocations beyond the per-instance block index.
//
// BuildInto leaves m exactly as Build would: in particular any previously
// seeded warm basis is dropped (the batch path keeps warm bases per pattern
// in lp.Batch instead, where they survive model reuse safely).
func BuildInto(m *Model, in *core.Instance) error {
	if err := in.Validate(); err != nil {
		return err
	}
	n := in.N()
	if n == 0 {
		return fmt.Errorf("lpmodel: empty request sequence")
	}
	m.In = in
	m.ix = core.NewIndex(in.Seq)
	if m.initial == nil {
		m.initial = make(map[core.BlockID]bool)
	} else {
		clear(m.initial)
	}
	m.Dummies = m.Dummies[:0]
	m.Blocks = m.Blocks[:0]
	m.Intervals = m.Intervals[:0]
	m.warm = nil
	for _, b := range in.InitialCache {
		m.initial[b] = true
	}

	// Dummy blocks on disk 0 fill the initial cache to k + D - 1 locations.
	nextID := in.Seq.MaxBlock() + 1
	for _, b := range in.InitialCache {
		if b >= nextID {
			nextID = b + 1
		}
	}
	need := in.K + in.Disks - 1 - len(in.InitialCache)
	for i := 0; i < need; i++ {
		d := nextID + core.BlockID(i)
		m.Dummies = append(m.Dummies, d)
		m.initial[d] = true
	}
	m.Blocks = append(m.Blocks, in.Blocks()...)
	m.Blocks = append(m.Blocks, m.Dummies...)

	// Enumerate intervals: Start in [0, n-1], End in [Start+1, min(n, Start+F+1)].
	if cap(m.startOff) < n+1 {
		m.startOff = make([]int, n+1)
	} else {
		m.startOff = m.startOff[:n+1]
	}
	for i := 0; i < n; i++ {
		m.startOff[i] = len(m.Intervals)
		for j := i + 1; j <= n && j-i-1 <= in.F; j++ {
			m.Intervals = append(m.Intervals, Interval{Start: i, End: j})
		}
	}
	m.startOff[n] = len(m.Intervals)
	m.extStart = m.extStart[:cap(m.extStart)]
	for i := range m.extStart {
		m.extStart[i] = m.extStart[i][:0]
	}
	m.extStart = m.extStart[:0]

	prob := m.Problem
	if prob == nil {
		prob = lp.NewProblem(0)
		m.Problem = prob
	} else {
		prob.Reset(0)
	}
	m.xVar = resizeInts(m.xVar, len(m.Intervals))
	for idx, iv := range m.Intervals {
		m.xVar[idx] = prob.AddVariable(float64(iv.Stall(in.F)))
	}
	// Fetch and eviction variables exist only for (interval, block) pairs
	// where the block is not referenced strictly inside the interval (the
	// paper's constraint that a block may not be fetched or evicted while it
	// is being referenced).
	m.fVar = resizeInts(m.fVar, len(m.Intervals)*len(m.Blocks))
	m.eVar = resizeInts(m.eVar, len(m.Intervals)*len(m.Blocks))
	for idx, iv := range m.Intervals {
		base := idx * len(m.Blocks)
		for bi, b := range m.Blocks {
			if m.blockReferencedInside(b, iv) {
				m.fVar[base+bi] = noVar
				m.eVar[base+bi] = noVar
				continue
			}
			m.fVar[base+bi] = prob.AddVariable(0)
			m.eVar[base+bi] = prob.AddVariable(0)
		}
	}
	// Scratch variables implement the idle-disk fetches of Lemma 3: a disk
	// that has nothing useful to fetch during a synchronized interval loads
	// an arbitrary block into an extra cache location and discards it when
	// the interval ends.  A scratch fetch therefore counts towards the
	// disk's fetch balance but needs no eviction and affects no block's
	// presence constraints.
	m.sVar = resizeInts(m.sVar, len(m.Intervals)*in.Disks)
	for idx := range m.Intervals {
		for d := 0; d < in.Disks; d++ {
			m.sVar[idx*in.Disks+d] = prob.AddVariable(0)
		}
	}

	m.boundaryRow = resizeInts(m.boundaryRow, n)
	m.lastRef = resizeInts(m.lastRef, len(m.Blocks))
	m.tailRow = resizeInts(m.tailRow, len(m.Blocks))
	m.addBoundaryConstraints()
	m.addPerIntervalConstraints()
	m.addBlockFlowConstraints()
	return nil
}

// resizeInts returns buf with length n, reallocating only when capacity is
// short (contents are fully overwritten by the callers).
func resizeInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// fetchVar returns the fetch variable of (interval idx, block position bi),
// or noVar when the pair has none.
func (m *Model) fetchVar(idx, bi int) int { return m.fVar[idx*len(m.Blocks)+bi] }

// evictVar returns the eviction variable of (interval idx, block position
// bi), or noVar when the pair has none.
func (m *Model) evictVar(idx, bi int) int { return m.eVar[idx*len(m.Blocks)+bi] }

// blockDisk returns the disk a block resides on; dummy blocks live on disk 0.
func (m *Model) blockDisk(b core.BlockID) int {
	for _, d := range m.Dummies {
		if d == b {
			return 0
		}
	}
	return m.In.Disk(b)
}

// blockReferencedInside reports whether block b has a reference strictly
// inside interval iv.
func (m *Model) blockReferencedInside(b core.BlockID, iv Interval) bool {
	// References use 1-based request numbers: position p is request p+1.
	pos := m.ix.NextAt(b, iv.Start) // first reference at 0-based position >= Start
	if pos == core.NoRef {
		return false
	}
	q := pos + 1
	return iv.ContainsRequest(q)
}

// addBoundaryConstraints adds, for every request boundary q in [1, n-1], the
// constraint that at most one interval spans it.  An interval (s, e) spans q
// when s <= q-1 and e >= q+1; per start s the spanning intervals are a
// suffix of the End-sorted run startOff[s]:startOff[s+1], so each boundary
// is assembled from the offsets without scanning the interval list.
func (m *Model) addBoundaryConstraints() {
	n := m.In.N()
	coeffs := m.coefBuf
	m.boundaryRow[0] = -1
	for q := 1; q <= n-1; q++ {
		coeffs = coeffs[:0]
		lo := q - m.In.F // smallest start whose run (End <= s+F+1) reaches End >= q+1
		if lo < 0 {
			lo = 0
		}
		for s := lo; s <= q-1; s++ {
			base := m.startOff[s]
			run := m.startOff[s+1] - base
			skip := q - s // run entries with End in s+1 .. q do not span q
			for t := skip; t < run; t++ {
				coeffs = append(coeffs, lp.Coef{Var: m.xVar[base+t], Value: 1})
			}
		}
		m.boundaryRow[q] = -1
		if len(coeffs) > 0 {
			m.boundaryRow[q] = m.Problem.AddConstraint(coeffs, lp.LE, 1)
		}
	}
	m.coefBuf = coeffs
}

// addPerIntervalConstraints adds, for every interval, the per-disk fetch
// balance (every disk fetches exactly x(I)) and the fetch/evict balance.
func (m *Model) addPerIntervalConstraints() {
	for idx := range m.Intervals {
		m.addIntervalRows(idx)
	}
}

// addIntervalRows adds the per-disk fetch balance and the fetch/evict balance
// of the single interval idx; it is shared by the full build and the
// trace-extension path, which appends these rows for each new interval.
func (m *Model) addIntervalRows(idx int) {
	x := m.xVar[idx]
	for d := 0; d < m.In.Disks; d++ {
		coeffs := append(m.coefBuf[:0],
			lp.Coef{Var: x, Value: -1}, lp.Coef{Var: m.sVar[idx*m.In.Disks+d], Value: 1})
		for bi, b := range m.Blocks {
			if m.blockDisk(b) != d {
				continue
			}
			if v := m.fetchVar(idx, bi); v != noVar {
				coeffs = append(coeffs, lp.Coef{Var: v, Value: 1})
			}
		}
		m.Problem.AddConstraint(coeffs, lp.EQ, 0)
		m.coefBuf = coeffs
	}
	coeffs := m.coefBuf[:0]
	for bi := range m.Blocks {
		if v := m.fetchVar(idx, bi); v != noVar {
			coeffs = append(coeffs, lp.Coef{Var: v, Value: 1})
		}
		if v := m.evictVar(idx, bi); v != noVar {
			coeffs = append(coeffs, lp.Coef{Var: v, Value: -1})
		}
	}
	m.Problem.AddConstraint(coeffs, lp.EQ, 0)
	m.coefBuf = coeffs
}

// gapIntervals returns the indices of intervals fully contained in the open
// request-number gap (lo, hi): Start >= lo and End <= hi.  The returned
// slice is valid until the next call.
//
// The intervals starting at s are the contiguous, End-sorted index run
// startOff[s]:startOff[s+1] with End covering s+1 .. s+(run length), so the
// matches per start are a prefix of the run whose length is arithmetic — no
// interval is ever inspected and rejected, making the whole query
// output-sensitive: O(hi-lo + matches) instead of a scan of all intervals.
func (m *Model) gapIntervals(lo, hi int) []int {
	out := m.gapBuf[:0]
	n := m.In.N()
	n0 := len(m.startOff) - 1 // starts covered by the build-time runs
	if lo < 0 {
		lo = 0
	}
	for s := lo; s < n && s < hi; s++ {
		if s < n0 {
			base := m.startOff[s]
			count := hi - s // intervals with End in s+1 .. hi
			if run := m.startOff[s+1] - base; count > run {
				count = run
			}
			for t := 0; t < count; t++ {
				out = append(out, base+t)
			}
		}
		if s >= len(m.extStart) {
			continue
		}
		// Extension intervals starting at s, End-ascending like the runs.
		for _, idx := range m.extStart[s] {
			if m.Intervals[idx].End > hi {
				break
			}
			out = append(out, int(idx))
		}
	}
	m.gapBuf = out
	return out
}

// addBlockFlowConstraints adds the per-block presence constraints: a block
// must be in cache whenever it is referenced, evictions between consecutive
// references are matched by re-fetches, and initially cached blocks (real or
// dummy) are evicted at most once before their next use.
func (m *Model) addBlockFlowConstraints() {
	n := m.In.N()
	for bi, b := range m.Blocks {
		occ := m.ix.Occurrences(b)
		m.lastRef[bi] = 0
		m.tailRow[bi] = -1
		if len(occ) == 0 {
			// Never-referenced block (a dummy or an unused initial block):
			// it may be evicted at most once over the whole sequence.
			if !m.initial[b] {
				continue
			}
			coeffs := m.coefBuf[:0]
			for _, idx := range m.gapIntervals(0, n) {
				if v := m.evictVar(idx, bi); v != noVar {
					coeffs = append(coeffs, lp.Coef{Var: v, Value: 1})
				}
			}
			if len(coeffs) > 0 {
				m.tailRow[bi] = m.Problem.AddConstraint(coeffs, lp.LE, 1)
			}
			m.coefBuf = coeffs
			continue
		}
		refs := resizeInts(m.refBuf, len(occ))
		m.refBuf = refs
		for i, p := range occ {
			refs[i] = p + 1 // 1-based request numbers
		}
		first := refs[0]
		if !m.initial[b] {
			// The block must be fetched, and not evicted, before its first
			// reference.
			fc := m.coefBuf[:0]
			ec := m.coefBuf2[:0]
			for _, idx := range m.gapIntervals(0, first) {
				if v := m.fetchVar(idx, bi); v != noVar {
					fc = append(fc, lp.Coef{Var: v, Value: 1})
				}
				if v := m.evictVar(idx, bi); v != noVar {
					ec = append(ec, lp.Coef{Var: v, Value: 1})
				}
			}
			m.Problem.AddConstraint(fc, lp.EQ, 1)
			if len(ec) > 0 {
				m.Problem.AddConstraint(ec, lp.EQ, 0)
			}
			m.coefBuf, m.coefBuf2 = fc, ec
		} else {
			// Initially cached: within the gap before the first reference the
			// block may be evicted and fetched back, at most once.
			m.addGapBalance(bi, 0, first)
		}
		for i := 0; i+1 < len(refs); i++ {
			m.addGapBalance(bi, refs[i], refs[i+1])
		}
		// After the last reference the block may be evicted at most once.
		m.lastRef[bi] = refs[len(refs)-1]
		coeffs := m.coefBuf[:0]
		for _, idx := range m.gapIntervals(refs[len(refs)-1], n) {
			if v := m.evictVar(idx, bi); v != noVar {
				coeffs = append(coeffs, lp.Coef{Var: v, Value: 1})
			}
		}
		if len(coeffs) > 0 {
			m.tailRow[bi] = m.Problem.AddConstraint(coeffs, lp.LE, 1)
		}
		m.coefBuf = coeffs
	}
}

// addGapBalance adds, for the block at position bi and the gap (lo, hi)
// between two of its references (or before its first reference when it
// starts in cache), the constraints sum f = sum e and sum e <= 1 over
// intervals inside the gap.
func (m *Model) addGapBalance(bi, lo, hi int) {
	balance := m.coefBuf[:0]
	evict := m.coefBuf2[:0]
	for _, idx := range m.gapIntervals(lo, hi) {
		if v := m.fetchVar(idx, bi); v != noVar {
			balance = append(balance, lp.Coef{Var: v, Value: 1})
		}
		if v := m.evictVar(idx, bi); v != noVar {
			balance = append(balance, lp.Coef{Var: v, Value: -1})
			evict = append(evict, lp.Coef{Var: v, Value: 1})
		}
	}
	if len(balance) > 0 {
		m.Problem.AddConstraint(balance, lp.EQ, 0)
	}
	if len(evict) > 0 {
		m.Problem.AddConstraint(evict, lp.LE, 1)
	}
	m.coefBuf, m.coefBuf2 = balance, evict
}

// Solve solves the LP relaxation and returns the fractional solution, using
// a pooled solver.
func (m *Model) Solve(opts lp.Options) (*Fractional, error) {
	return m.SolveWith(nil, opts)
}

// WarmStart seeds this model's next solve with a basis captured from a
// same-shaped model's optimal solve (Model.Basis).  The solve falls back to
// a cold start when the basis does not transfer.
func (m *Model) WarmStart(b *lp.WarmBasis) { m.warm = b }

// Basis returns the optimal basis captured by this model's last successful
// solve (nil before the first), for warm-starting the next same-shaped
// model's solve — the pattern the experiment row-loops and the service
// shards use to amortise phase-1 work across a sweep.
func (m *Model) Basis() *lp.WarmBasis { return m.warm }

// SolveWith solves the LP relaxation with the given reusable Solver (nil
// falls back to the package solver pool), so sweeps that solve many models
// of similar size can reuse one set of tableau buffers.  The solve warm
// starts from the model's seeded basis when one is set, and captures the
// optimal basis for the next solve either way.
func (m *Model) SolveWith(s *lp.Solver, opts lp.Options) (*Fractional, error) {
	opts.CaptureBasis = true
	var sol *lp.Solution
	var err error
	if s != nil {
		sol, err = s.SolveFrom(m.Problem, opts, m.warm)
	} else {
		sol, err = lp.SolveFrom(m.Problem, opts, m.warm)
	}
	if err != nil {
		return nil, err
	}
	if sol.Basis != nil {
		m.warm = sol.Basis
	}
	if sol.Status != lp.StatusOptimal {
		return nil, fmt.Errorf("lpmodel: LP relaxation ended with status %v", sol.Status)
	}
	frac := &Fractional{
		X:          make([]float64, len(m.Intervals)),
		Objective:  sol.Objective,
		Iterations: sol.Iterations,
		Integral:   true,
		Downgrades: sol.Downgrades,
	}
	const tol = 1e-6
	for idx := range m.Intervals {
		v := sol.X[m.xVar[idx]]
		if v < tol {
			v = 0
		}
		frac.X[idx] = v
		if v > tol && v < 1-tol {
			frac.Integral = false
		}
	}
	return frac, nil
}

// VariableCounts reports the number of interval, fetch and eviction variables
// in the program (useful for reporting and testing).
func (m *Model) VariableCounts() (x, f, e int) {
	x = len(m.xVar)
	for _, v := range m.fVar {
		if v != noVar {
			f++
		}
	}
	for _, v := range m.eVar {
		if v != noVar {
			e++
		}
	}
	return x, f, e
}
