package lpmodel

import (
	"math"
	"math/rand"
	"slices"
	"testing"

	"pfcache/internal/core"
	"pfcache/internal/lp"
	"pfcache/internal/workload"
)

func introInstance() *core.Instance {
	seq := core.Sequence{0, 1, 2, 3, 3, 4, 0, 3, 3, 1}
	return core.SingleDisk(seq, 4, 4).WithInitialCache(0, 1, 2, 3)
}

func introParallelInstance() *core.Instance {
	seq := core.Sequence{0, 1, 4, 5, 2, 6, 3}
	diskOf := map[core.BlockID]int{0: 0, 1: 0, 2: 0, 3: 0, 4: 1, 5: 1, 6: 1}
	return core.MultiDisk(seq, 4, 4, 2, diskOf).WithInitialCache(0, 1, 4, 5)
}

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{Start: 2, End: 5}
	if iv.Length() != 2 {
		t.Errorf("Length = %d, want 2", iv.Length())
	}
	if iv.Stall(4) != 2 {
		t.Errorf("Stall = %d, want 2", iv.Stall(4))
	}
	if !iv.ContainsRequest(3) || !iv.ContainsRequest(4) || iv.ContainsRequest(2) || iv.ContainsRequest(5) {
		t.Errorf("ContainsRequest wrong for %v", iv)
	}
	if iv.String() != "(2,5)" {
		t.Errorf("String = %q", iv.String())
	}
}

func TestBuildBasicStructure(t *testing.T) {
	in := introParallelInstance()
	m, err := Build(in)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Dummy blocks fill the cache from 4 to k + D - 1 = 5 locations.
	if len(m.Dummies) != 1 {
		t.Fatalf("dummies = %d, want 1", len(m.Dummies))
	}
	// Interval count: for each start i in [0,n-1], ends i+1..min(n, i+F+1).
	n, f := in.N(), in.F
	want := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j <= n && j-i-1 <= f; j++ {
			want++
		}
	}
	if len(m.Intervals) != want {
		t.Fatalf("intervals = %d, want %d", len(m.Intervals), want)
	}
	x, fv, ev := m.VariableCounts()
	if x != len(m.Intervals) || fv == 0 || ev != fv {
		t.Fatalf("variable counts x=%d f=%d e=%d", x, fv, ev)
	}
	if m.Problem.NumConstraints() == 0 {
		t.Fatalf("no constraints generated")
	}
	// Dummy blocks live on disk 0.
	if m.blockDisk(m.Dummies[0]) != 0 {
		t.Fatalf("dummy on disk %d, want 0", m.blockDisk(m.Dummies[0]))
	}
}

func TestBuildRejectsInvalid(t *testing.T) {
	if _, err := Build(core.SingleDisk(core.Sequence{}, 2, 2)); err == nil {
		t.Errorf("empty sequence accepted")
	}
	if _, err := Build(core.SingleDisk(core.Sequence{0}, 0, 2)); err == nil {
		t.Errorf("invalid instance accepted")
	}
	if _, err := Plan(core.SingleDisk(core.Sequence{0}, 0, 2), lp.Options{}); err == nil {
		t.Errorf("Plan accepted an invalid instance")
	}
	if _, err := LowerBound(core.SingleDisk(core.Sequence{0}, 0, 2), lp.Options{}); err == nil {
		t.Errorf("LowerBound accepted an invalid instance")
	}
}

// TestLowerBoundMatchesOptimalIntro checks that the LP relaxation value
// equals the true optimal stall time on the two worked examples of the paper.
func TestLowerBoundMatchesOptimalIntro(t *testing.T) {
	lb, err := LowerBound(introInstance(), lp.Options{})
	if err != nil {
		t.Fatalf("LowerBound(single): %v", err)
	}
	if math.Abs(lb-1) > 1e-6 {
		t.Fatalf("single-disk intro lower bound = %f, want 1", lb)
	}
	lb, err = LowerBound(introParallelInstance(), lp.Options{})
	if err != nil {
		t.Fatalf("LowerBound(parallel): %v", err)
	}
	if lb > 3+1e-6 {
		t.Fatalf("parallel intro lower bound = %f, want at most 3", lb)
	}
	if lb < 2-1e-6 {
		t.Fatalf("parallel intro lower bound = %f, implausibly small", lb)
	}
}

// TestPlanIntroExamples checks the full pipeline on the worked examples: the
// extracted schedule must match the optimal stall time and stay within the
// Theorem 4 extra-cache budget.
func TestPlanIntroExamples(t *testing.T) {
	res, err := Plan(introInstance(), lp.Options{})
	if err != nil {
		t.Fatalf("Plan(single): %v", err)
	}
	if res.Stall != 1 {
		t.Fatalf("single-disk intro stall = %d, want 1\n%v", res.Stall, res.Schedule)
	}
	if res.ExtraCache > 0 {
		t.Fatalf("single-disk intro used %d extra locations, want 0", res.ExtraCache)
	}
	pres, err := Plan(introParallelInstance(), lp.Options{})
	if err != nil {
		t.Fatalf("Plan(parallel): %v", err)
	}
	if pres.Stall > 3 {
		t.Fatalf("parallel intro stall = %d, want at most 3\n%v", pres.Stall, pres.Schedule)
	}
	if pres.ExtraCache > 2 {
		t.Fatalf("parallel intro used %d extra locations, want at most 2(D-1)=2", pres.ExtraCache)
	}
}

// TestGapIntervalsMatchesScan cross-checks the offset-indexed gapIntervals
// against a direct scan of every interval, on the full range and on random
// (lo, hi) gaps, including empty and out-of-range ones.
func TestGapIntervalsMatchesScan(t *testing.T) {
	seq := workload.Uniform(14, 6, 42)
	in := workload.Instance(seq, 3, 2, 2, workload.AssignStripe, 0)
	m, err := Build(in)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	n := in.N()
	check := func(lo, hi int) {
		got := append([]int(nil), m.gapIntervals(lo, hi)...)
		var want []int
		for idx, iv := range m.Intervals {
			if iv.Start >= lo && iv.End <= hi {
				want = append(want, idx)
			}
		}
		if !slices.Equal(got, want) {
			t.Fatalf("gapIntervals(%d, %d) = %v, scan says %v", lo, hi, got, want)
		}
	}
	check(0, n)
	check(0, 0)
	check(n, n)
	check(-1, n+3)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		lo := rng.Intn(n + 1)
		hi := lo + rng.Intn(n+2-lo)
		check(lo, hi)
	}
}
