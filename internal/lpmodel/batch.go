package lpmodel

import (
	"fmt"

	"pfcache/internal/core"
	"pfcache/internal/lp"
)

// ModelBatch amortises model building and LP solving across the rows of a
// sweep.  It keeps a small LRU set of Models keyed by instance fingerprint —
// a repeated instance (the warm re-solve the experiment rows and the service
// shards run) is a zero-rebuild hit that hands back the already-built Model,
// and a new instance is built with BuildInto into the least-recently-used
// slot, reusing its interval tables, variable maps and Problem arena — and it
// owns the lp.Batch whose solver-level arenas and symbolic-factorization
// cache the solves share.
//
// A ModelBatch is single-goroutine, like the lp.Batch it wraps; the service
// gives each shard worker its own, and the experiments package pools them
// per sweep.
type ModelBatch struct {
	lpb   *lp.Batch
	slots []*modelSlot
}

type modelSlot struct {
	fp    uint64
	model *Model
	used  uint64 // LRU tick of the last hit
}

// maxModelSlots bounds the per-batch model set.  Sweeps alternate over a
// handful of instance shapes at a time; eight slots covers the experiment
// row loops with room to spare while keeping eviction scans trivial.
const maxModelSlots = 8

// NewModelBatch returns an empty ModelBatch owning a fresh lp.Batch.
func NewModelBatch() *ModelBatch {
	return &ModelBatch{lpb: lp.NewBatch()}
}

// LP exposes the underlying lp.Batch, for callers that also solve raw
// problems on the same arenas.
func (b *ModelBatch) LP() *lp.Batch { return b.lpb }

// tick returns the next LRU timestamp.
func (b *ModelBatch) tick() uint64 {
	var max uint64
	for _, s := range b.slots {
		if s.used > max {
			max = s.used
		}
	}
	return max + 1
}

// Model returns a built Model for the instance: the cached one when the
// instance's fingerprint matches a slot (no rebuild at all), otherwise a
// BuildInto over the least-recently-used slot's storage.  The returned Model
// is owned by the batch and valid until the slot is recycled — callers
// solve it (SolveBatch) before requesting the next model.
func (b *ModelBatch) Model(in *core.Instance) (*Model, error) {
	fp := in.Fingerprint()
	for _, s := range b.slots {
		if s.fp == fp {
			s.used = b.tick()
			return s.model, nil
		}
	}
	var victim *modelSlot
	if len(b.slots) < maxModelSlots {
		victim = &modelSlot{model: &Model{}}
		b.slots = append(b.slots, victim)
	} else {
		victim = b.slots[0]
		for _, s := range b.slots[1:] {
			if s.used < victim.used {
				victim = s
			}
		}
	}
	if err := BuildInto(victim.model, in); err != nil {
		// A failed build leaves the slot's storage valid but its contents
		// unspecified: drop the fingerprint so nothing matches it.
		victim.fp = 0
		victim.used = 0
		return nil, err
	}
	victim.fp = fp
	victim.used = b.tick()
	return victim.model, nil
}

// SolveBatch solves the model's LP relaxation through the batch's lp.Batch.
// It is SolveWith's batched twin: the same Fractional assembly, but the
// solve routes through lp.Batch.Solve, so same-pattern solves share the
// symbolic factorization, the solver arenas and the per-pattern warm basis
// (a re-solve of the same built model warm-starts automatically; see the
// lp.Batch contract).  The model's own seeded warm basis is not consulted —
// the batch members supersede it.
func (m *Model) SolveBatch(b *lp.Batch, opts lp.Options) (*Fractional, error) {
	sol, err := b.Solve(m.Problem, opts)
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.StatusOptimal {
		return nil, fmt.Errorf("lpmodel: LP relaxation ended with status %v", sol.Status)
	}
	frac := &Fractional{
		X:          make([]float64, len(m.Intervals)),
		Objective:  sol.Objective,
		Iterations: sol.Iterations,
		Integral:   true,
		Downgrades: sol.Downgrades,
	}
	const tol = 1e-6
	for idx := range m.Intervals {
		v := sol.X[m.xVar[idx]]
		if v < tol {
			v = 0
		}
		frac.X[idx] = v
		if v > tol && v < 1-tol {
			frac.Integral = false
		}
	}
	return frac, nil
}
