package lpmodel

import (
	"testing"

	"pfcache/internal/lp"
	"pfcache/internal/workload"
)

// The D=2, n=35, k=4, F=3 uniform family is the smallest family in which the
// paper's classic rounding - start offsets only, planned against k + (D-1)
// locations - systematically fails to produce any feasible schedule: the
// narrow budget forces evictions that defer a block to a later sampled
// interval that never comes.  The seeds below were found by scanning that
// family for classic-enumeration failures; the widened enumeration (interval
// end offsets, then the full k + 2(D-1) budget of Theorem 4) must turn every
// one of them into a feasible schedule within the theorem's extra-cache
// bound.
func regressInstance(seed int64) (*Model, *Fractional, error) {
	seq := workload.Uniform(35, 12, seed)
	in := workload.Instance(seq, 4, 3, 2, workload.AssignStripe, 0)
	m, err := Build(in)
	if err != nil {
		return nil, nil, err
	}
	frac, err := m.Solve(lp.Options{Pricing: lp.PricingDantzig, Basis: lp.BasisEta})
	if err != nil {
		return nil, nil, err
	}
	return m, frac, nil
}

func TestExtractRegressionSeeds(t *testing.T) {
	// Every seed here fails the classic enumeration and passes the widened
	// one.
	for _, seed := range []int64{7, 11, 33, 46, 56, 75, 113, 117, 119, 128, 129} {
		m, frac, err := regressInstance(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := Extract(m, frac)
		if err != nil {
			t.Errorf("seed %d: %v", seed, err)
			continue
		}
		if budget := 2 * (m.In.Disks - 1); res.ExtraCache > budget {
			t.Errorf("seed %d: extra cache %d exceeds the 2(D-1) = %d budget", seed, res.ExtraCache, budget)
		}
	}
}

func TestExtractRegressionOpenSeeds(t *testing.T) {
	// Seeds the widened enumeration still cannot extract: tracked here so a
	// future extraction improvement un-skips them (the test validates the
	// schedule as soon as Extract starts succeeding).
	for _, seed := range []int64{97} {
		m, frac, err := regressInstance(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := Extract(m, frac)
		if err != nil {
			t.Skipf("seed %d still fails extraction: %v", seed, err)
		}
		if budget := 2 * (m.In.Disks - 1); res.ExtraCache > budget {
			t.Errorf("seed %d: extra cache %d exceeds the 2(D-1) = %d budget", seed, res.ExtraCache, budget)
		}
	}
}
