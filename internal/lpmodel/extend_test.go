package lpmodel

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"pfcache/internal/core"
	"pfcache/internal/lp"
	"pfcache/internal/workload"
)

// extendEngines is the engine grid the incremental path is pinned against:
// the default LU engine, the Forrest–Tomlin update, and the eta-file basis.
var extendEngines = []struct {
	name string
	opts lp.Options
}{
	{"steepest-lu", lp.Options{}},
	{"steepest-lu-ft", lp.Options{Update: lp.UpdateFT}},
	{"dantzig-eta", lp.Options{Pricing: lp.PricingDantzig, Basis: lp.BasisEta}},
}

// programSignature canonicalises a model's LP: every variable is renamed to a
// structural name derived from what it means (interval stall, fetch, evict,
// scratch), and every constraint becomes a string over those names, sorted.
// Two models of the same instance get identical signatures exactly when their
// programs are identical up to row order and variable numbering — the
// equivalence Extend promises against Build of the extended trace.
func programSignature(t *testing.T, m *Model) []string {
	t.Helper()
	names := make([]string, m.Problem.NumVars())
	name := func(v int, format string, args ...any) {
		if v == noVar {
			return
		}
		if names[v] != "" {
			t.Fatalf("variable %d named twice: %s and %s", v, names[v], fmt.Sprintf(format, args...))
		}
		names[v] = fmt.Sprintf(format, args...)
	}
	for idx, iv := range m.Intervals {
		name(m.xVar[idx], "x%v", iv)
		for bi, b := range m.Blocks {
			name(m.fVar[idx*len(m.Blocks)+bi], "f%v@%v", b, iv)
			name(m.eVar[idx*len(m.Blocks)+bi], "e%v@%v", b, iv)
		}
		for d := 0; d < m.In.Disks; d++ {
			name(m.sVar[idx*m.In.Disks+d], "s%d@%v", d, iv)
		}
	}
	for v, nm := range names {
		if nm == "" {
			t.Fatalf("variable %d has no structural meaning", v)
		}
		if c := m.Problem.Objective(v); c != 0 {
			names[v] = fmt.Sprintf("%s[c=%g]", nm, c)
		}
	}
	sig := make([]string, 0, m.Problem.NumConstraints())
	var sb strings.Builder
	for i := 0; i < m.Problem.NumConstraints(); i++ {
		c := m.Problem.Constraint(i)
		terms := make([]string, 0, len(c.Coeffs))
		for _, co := range c.Coeffs {
			terms = append(terms, fmt.Sprintf("%g*%s", co.Value, names[co.Var]))
		}
		sort.Strings(terms)
		sb.Reset()
		fmt.Fprintf(&sb, "%s %v %g", strings.Join(terms, " + "), c.Sense, c.RHS)
		sig = append(sig, sb.String())
	}
	sort.Strings(sig)
	return sig
}

func assertSamePrograms(t *testing.T, ext, cold *Model) {
	t.Helper()
	if ext.Problem.NumVars() != cold.Problem.NumVars() {
		t.Fatalf("variables: extended %d, rebuilt %d", ext.Problem.NumVars(), cold.Problem.NumVars())
	}
	if ext.Problem.NumConstraints() != cold.Problem.NumConstraints() {
		t.Fatalf("constraints: extended %d, rebuilt %d", ext.Problem.NumConstraints(), cold.Problem.NumConstraints())
	}
	es, cs := programSignature(t, ext), programSignature(t, cold)
	for i := range es {
		if es[i] != cs[i] {
			t.Fatalf("programs differ at canonical row %d:\n  extended: %s\n  rebuilt:  %s", i, es[i], cs[i])
		}
	}
}

// randomExtendInstance draws a small instance with mixed disks and a partial
// initial cache (so some initial blocks await their first reference).
func randomExtendInstance(rng *rand.Rand) *core.Instance {
	n := 3 + rng.Intn(8)
	blocks := 2 + rng.Intn(5)
	seq := make(core.Sequence, n)
	for i := range seq {
		seq[i] = core.BlockID(rng.Intn(blocks))
	}
	k := 1 + rng.Intn(blocks)
	f := 1 + rng.Intn(3)
	disks := 1 + rng.Intn(3)
	in := workload.Instance(seq, k, f, disks, workload.AssignStripe, 0)
	var init []core.BlockID
	for b := 0; b < blocks && len(init) < k; b++ {
		if rng.Intn(2) == 0 {
			init = append(init, core.BlockID(b))
		}
	}
	return in.WithInitialCache(init...)
}

// TestExtendBuildsIdenticalProgram is the structural half of the incremental
// contract: after any sequence of in-place extensions the model's LP must be
// the same program (same variables, same constraint multiset) as a from-
// scratch Build of the extended trace.
func TestExtendBuildsIdenticalProgram(t *testing.T) {
	rng := rand.New(rand.NewSource(1711))
	for trial := 0; trial < 200; trial++ {
		in := randomExtendInstance(rng)
		known := in.Blocks()
		ext, err := Build(in.Clone())
		if err != nil {
			t.Fatalf("trial %d: build: %v", trial, err)
		}
		suffix := make([]core.BlockID, 1+rng.Intn(4))
		for i := range suffix {
			suffix[i] = known[rng.Intn(len(known))]
		}
		if err := ext.Extend(suffix...); err != nil {
			t.Fatalf("trial %d: extend %v: %v", trial, suffix, err)
		}
		full := in.Clone()
		full.Seq = append(full.Seq, suffix...)
		cold, err := Build(full)
		if err != nil {
			t.Fatalf("trial %d: rebuild: %v", trial, err)
		}
		assertSamePrograms(t, ext, cold)
	}
}

// TestExtendResolveMatchesCold pins the numerical half across the engine
// grid: an incremental dual re-solve of the extended model reaches the same
// status and optimal value as a cold solve of the rebuilt program, one
// request at a time over a random suffix.
func TestExtendResolveMatchesCold(t *testing.T) {
	for gi, eng := range extendEngines {
		rng := rand.New(rand.NewSource(int64(2025 + gi)))
		solver := lp.NewSolver()
		for trial := 0; trial < 60; trial++ {
			in := randomExtendInstance(rng)
			known := in.Blocks()
			ext, err := Build(in.Clone())
			if err != nil {
				t.Fatalf("%s trial %d: build: %v", eng.name, trial, err)
			}
			if _, err := ext.SolveWith(solver, eng.opts); err != nil {
				t.Fatalf("%s trial %d: base solve: %v", eng.name, trial, err)
			}
			full := in.Clone()
			for step := 0; step < 1+rng.Intn(3); step++ {
				req := known[rng.Intn(len(known))]
				if err := ext.Extend(req); err != nil {
					t.Fatalf("%s trial %d: extend: %v", eng.name, trial, err)
				}
				warm, err := ext.SolveIncremental(solver, eng.opts)
				if err != nil {
					t.Fatalf("%s trial %d step %d: incremental solve: %v", eng.name, trial, step, err)
				}
				full.Seq = append(full.Seq, req)
				cold, err := Build(full)
				if err != nil {
					t.Fatalf("%s trial %d: rebuild: %v", eng.name, trial, err)
				}
				coldFrac, err := cold.Solve(eng.opts)
				if err != nil {
					t.Fatalf("%s trial %d step %d: cold solve: %v", eng.name, trial, step, err)
				}
				if math.Abs(warm.Objective-coldFrac.Objective) > 1e-6*(1+math.Abs(coldFrac.Objective)) {
					t.Fatalf("%s trial %d step %d: incremental objective %g, cold %g",
						eng.name, trial, step, warm.Objective, coldFrac.Objective)
				}
			}
		}
	}
}

// TestExtendResolveE7Shaped runs the E7-sized workload the experiment suite
// uses: a single-request extension must re-solve warm in fewer pivots than
// the cold solve of the rebuilt program while matching its optimum, for
// every engine.
func TestExtendResolveE7Shaped(t *testing.T) {
	seq := workload.Uniform(40, 8, 900)
	base := workload.Instance(seq, 4, 3, 2, workload.AssignStripe, 0)
	for _, eng := range extendEngines {
		solver := lp.NewSolver()
		m, err := Build(base.Clone())
		if err != nil {
			t.Fatalf("%s: build: %v", eng.name, err)
		}
		if _, err := m.SolveWith(solver, eng.opts); err != nil {
			t.Fatalf("%s: base solve: %v", eng.name, err)
		}
		req := base.Seq[len(base.Seq)-3]
		if err := m.Extend(req); err != nil {
			t.Fatalf("%s: extend: %v", eng.name, err)
		}
		warm, err := m.SolveIncremental(solver, eng.opts)
		if err != nil {
			t.Fatalf("%s: incremental solve: %v", eng.name, err)
		}
		full := base.Clone()
		full.Seq = append(full.Seq, req)
		cold, err := Build(full)
		if err != nil {
			t.Fatalf("%s: rebuild: %v", eng.name, err)
		}
		coldFrac, err := cold.Solve(eng.opts)
		if err != nil {
			t.Fatalf("%s: cold solve: %v", eng.name, err)
		}
		if math.Abs(warm.Objective-coldFrac.Objective) > 1e-6*(1+math.Abs(coldFrac.Objective)) {
			t.Fatalf("%s: incremental objective %g, cold %g", eng.name, warm.Objective, coldFrac.Objective)
		}
		if warm.Iterations >= coldFrac.Iterations {
			t.Errorf("%s: incremental re-solve took %d pivots, cold %d — warm start is not paying",
				eng.name, warm.Iterations, coldFrac.Iterations)
		}
	}
}

// TestExtendVerifiedCascade runs the incremental path under the self-healing
// cascade: the re-solve must certify (no downgrades) and match the cold
// optimum.
func TestExtendVerifiedCascade(t *testing.T) {
	seq := workload.Uniform(24, 6, 901)
	in := workload.Instance(seq, 3, 2, 2, workload.AssignStripe, 0)
	solver := lp.NewSolver()
	opts := lp.Options{Cascade: true}
	m, err := Build(in.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.SolveWith(solver, opts); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 4; step++ {
		req := in.Seq[step*3]
		if err := m.Extend(req); err != nil {
			t.Fatalf("step %d: extend: %v", step, err)
		}
		warm, err := m.SolveIncremental(solver, opts)
		if err != nil {
			t.Fatalf("step %d: incremental solve: %v", step, err)
		}
		if warm.Downgrades != 0 {
			t.Fatalf("step %d: verified incremental solve needed %d downgrades", step, warm.Downgrades)
		}
	}
}

// TestExtendRejectsUnknownBlocks covers the rebuild sentinel: requests for
// blocks the program has never seen (or its synthetic dummies) must fail
// with ErrExtendRebuild before mutating anything.
func TestExtendRejectsUnknownBlocks(t *testing.T) {
	in := introParallelInstance()
	m, err := Build(in.Clone())
	if err != nil {
		t.Fatal(err)
	}
	vars, cons, n := m.Problem.NumVars(), m.Problem.NumConstraints(), m.In.N()
	bad := []core.BlockID{core.NoBlock, 99, m.Dummies[0]}
	for _, b := range bad {
		if err := m.Extend(b); !errors.Is(err, ErrExtendRebuild) {
			t.Errorf("Extend(%v) = %v, want ErrExtendRebuild", b, err)
		}
	}
	// A mixed batch with one bad request must be rejected atomically.
	if err := m.Extend(in.Seq[0], 99); !errors.Is(err, ErrExtendRebuild) {
		t.Errorf("mixed Extend = %v, want ErrExtendRebuild", err)
	}
	if m.Problem.NumVars() != vars || m.Problem.NumConstraints() != cons || m.In.N() != n {
		t.Errorf("rejected extension mutated the model")
	}
}

// TestExtendFirstReferenceOfInitialBlock pins the gap-balance path for an
// initially cached block that is referenced for the first time by the
// extension (its never-referenced eviction row must close into a proper
// fetch/evict balance).
func TestExtendFirstReferenceOfInitialBlock(t *testing.T) {
	seq := core.Sequence{0, 1, 0, 2}
	in := core.SingleDisk(seq, 3, 2).WithInitialCache(0, 3) // block 3 cached, never referenced
	ext, err := Build(in.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if err := ext.Extend(3, 1, 3); err != nil {
		t.Fatalf("extend: %v", err)
	}
	full := in.Clone()
	full.Seq = append(full.Seq, 3, 1, 3)
	cold, err := Build(full)
	if err != nil {
		t.Fatal(err)
	}
	assertSamePrograms(t, ext, cold)
}

// BenchmarkModelExtendResolve measures the steady-state incremental cycle on
// the E7-sized workload: one appended request, one warm dual re-solve.  The
// cold counterpart (rebuild + solve from scratch) is BenchmarkModelColdResolve;
// the ratio is the speedup the trace-replay benchmark (pcbench -replay)
// records.
func BenchmarkModelExtendResolve(b *testing.B) {
	seq := workload.Uniform(40, 8, 900)
	base := workload.Instance(seq, 4, 3, 2, workload.AssignStripe, 0)
	solver := lp.NewSolver()
	m, err := Build(base.Clone())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.SolveWith(solver, lp.Options{}); err != nil {
		b.Fatal(err)
	}
	reqs := base.Seq
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%16 == 0 {
			// Rebase so the program size stays representative of serving.
			b.StopTimer()
			if err := BuildInto(m, base.Clone()); err != nil {
				b.Fatal(err)
			}
			if _, err := m.SolveWith(solver, lp.Options{}); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		if err := m.Extend(reqs[i%len(reqs)]); err != nil {
			b.Fatal(err)
		}
		if _, err := m.SolveIncremental(solver, lp.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelColdResolve is the cold baseline of the incremental cycle:
// the same appended request served by a full rebuild and a from-scratch
// solve.
func BenchmarkModelColdResolve(b *testing.B) {
	seq := workload.Uniform(40, 8, 900)
	base := workload.Instance(seq, 4, 3, 2, workload.AssignStripe, 0)
	solver := lp.NewSolver()
	in := base.Clone()
	m := &Model{}
	reqs := base.Seq
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%16 == 0 {
			b.StopTimer()
			in = base.Clone()
			b.StartTimer()
		}
		in.Seq = append(in.Seq, reqs[i%len(reqs)])
		if err := BuildInto(m, in); err != nil {
			b.Fatal(err)
		}
		if _, err := m.SolveWith(solver, lp.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
