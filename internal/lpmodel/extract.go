package lpmodel

import (
	"fmt"
	"math"
	"sort"

	"pfcache/internal/core"
	"pfcache/internal/sim"
)

// PlanResult is the outcome of the LP-based parallel-disk algorithm of
// Theorem 4: an integral schedule together with the fractional lower bound it
// is measured against.
type PlanResult struct {
	// Schedule is the extracted prefetching/caching schedule.
	Schedule *core.Schedule
	// Stall is the schedule's total stall time (measured by the executor).
	Stall int
	// ExtraCache is the number of cache locations the schedule uses beyond k.
	// Theorem 4 guarantees a schedule with at most 2(D-1) extra locations.
	ExtraCache int
	// LowerBound is the optimal value of the LP relaxation, a lower bound on
	// the optimal stall time sOPT(sigma, k).
	LowerBound float64
	// Integral reports whether the fractional optimum was already integral.
	Integral bool
	// Offset is the timeline offset t in [0,1) whose sampled schedule was
	// selected.
	Offset float64
	// LPVariables and LPConstraints describe the size of the program.
	LPVariables   int
	LPConstraints int
	// LPIterations is the number of simplex pivots used.
	LPIterations int
	// CandidatesTried is the number of timeline offsets that were evaluated.
	CandidatesTried int
}

// sampledInterval is one occurrence of an interval on the fractional
// timeline.
type sampledInterval struct {
	iv   Interval
	time float64
}

// support returns the indices of intervals with positive x, ordered by
// (start, end), together with their timeline offsets dist(I).
func support(m *Model, frac *Fractional) ([]int, []float64, float64) {
	var idxs []int
	for idx := range m.Intervals {
		if frac.X[idx] > 1e-9 {
			idxs = append(idxs, idx)
		}
	}
	sort.Slice(idxs, func(a, b int) bool {
		ia, ib := m.Intervals[idxs[a]], m.Intervals[idxs[b]]
		if ia.Start != ib.Start {
			return ia.Start < ib.Start
		}
		if ia.End != ib.End {
			return ia.End < ib.End
		}
		return idxs[a] < idxs[b]
	})
	dist := make([]float64, len(idxs))
	total := 0.0
	for i, idx := range idxs {
		dist[i] = total
		total += frac.X[idx]
	}
	return idxs, dist, total
}

// sample collects the interval occurrences hit by the integer-offset samples
// t, t+1, t+2, ... on the fractional timeline.
func sample(m *Model, frac *Fractional, idxs []int, dist []float64, total, t float64) []sampledInterval {
	var out []sampledInterval
	for s := t; s < total-1e-12; s++ {
		// Find the interval whose span [dist, dist+x) contains s.
		pos := sort.Search(len(idxs), func(i int) bool { return dist[i] > s+1e-12 }) - 1
		if pos < 0 {
			pos = 0
		}
		idx := idxs[pos]
		if s < dist[pos]-1e-9 || s >= dist[pos]+frac.X[idx]+1e-9 {
			continue
		}
		out = append(out, sampledInterval{iv: m.Intervals[idx], time: s})
	}
	return out
}

// extractSchedule turns a sampled interval multiset into a concrete schedule:
// every sampled interval performs, on each disk, a fetch of the missing block
// with the earliest next reference (property (1) of the paper), evicting a
// resident block whose next reference is furthest in the future (property
// (2)) only when the planning cache budget is full.  A fetch is skipped when
// even the furthest-referenced resident block is requested before the block
// to be fetched - evicting it would only create an earlier miss; a later
// sampled interval handles the block instead.
func extractSchedule(in *core.Instance, samples []sampledInterval, budget int) *core.Schedule {
	ix := core.NewIndex(in.Seq)
	planned := make(map[core.BlockID]bool, in.K)
	for _, b := range in.InitialCache {
		planned[b] = true
	}
	sched := &core.Schedule{}
	for _, s := range samples {
		pos := s.iv.Start // 0-based position of the first request after the interval opens
		// Collect the per-disk fetch candidates and handle the most urgent
		// one first, so that blocks needed soon claim free cache locations
		// and safe victims before blocks that could wait for a later
		// interval.
		type cand struct {
			disk  int
			block core.BlockID
			ref   int
		}
		var cands []cand
		for d := 0; d < in.Disks; d++ {
			b := earliestMissingOnDisk(in, ix, planned, d, pos)
			if b == core.NoBlock {
				continue
			}
			cands = append(cands, cand{disk: d, block: b, ref: ix.NextAt(b, pos)})
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].ref != cands[b].ref {
				return cands[a].ref < cands[b].ref
			}
			return cands[a].disk < cands[b].disk
		})
		// Blocks fetched within this sample are still in flight while the
		// synchronized batch executes, so they must not be chosen as
		// eviction victims for the batch's other fetches.
		justFetched := make(map[core.BlockID]bool, len(cands))
		for _, c := range cands {
			evict := core.NoBlock
			if len(planned) >= budget {
				victim, victimRef := furthestResidentRef(ix, planned, justFetched, pos)
				if victim == core.NoBlock {
					continue
				}
				if victimRef < c.ref {
					// Every evictable resident block is requested again
					// before the block we would fetch: fetching now cannot
					// help; a later interval handles this block.
					continue
				}
				evict = victim
				delete(planned, evict)
			}
			planned[c.block] = true
			justFetched[c.block] = true
			sched.Append(core.NewFetch(c.disk, s.iv.Start, c.block, evict))
		}
	}
	return sched
}

// earliestMissingOnDisk returns the block on disk d, not yet planned to be
// resident, whose next reference at or after pos is earliest; NoBlock if
// every future request on disk d is covered.
func earliestMissingOnDisk(in *core.Instance, ix *core.Index, planned map[core.BlockID]bool, d, pos int) core.BlockID {
	for p := pos; p < in.N(); p++ {
		b := in.Seq[p]
		if in.Disk(b) != d || planned[b] {
			continue
		}
		return b
	}
	return core.NoBlock
}

// furthestResidentRef returns the planned-resident block, not in the excluded
// set, whose next reference at or after pos is furthest in the future,
// together with that reference.
func furthestResidentRef(ix *core.Index, planned, excluded map[core.BlockID]bool, pos int) (core.BlockID, int) {
	cands := make([]core.BlockID, 0, len(planned))
	for b := range planned {
		if excluded[b] {
			continue
		}
		cands = append(cands, b)
	}
	return ix.FurthestNext(cands, pos)
}

// evaluate runs the schedule on the real instance.  The evictions planned
// against the k+(D-1) budget may name blocks that are not resident on the
// real cache timeline (e.g. a block still in flight); such schedules are
// rejected here and the caller tries another timeline offset.
func evaluate(in *core.Instance, sched *core.Schedule) (*sim.Result, *core.Schedule, error) {
	clean, _, err := sim.Sanitize(in, sched)
	if err != nil {
		return nil, nil, err
	}
	res, err := sim.Run(in, clean, sim.Options{})
	if err != nil {
		return nil, nil, err
	}
	return res, clean, nil
}

// Extract converts a fractional solution into an integral schedule by trying
// every candidate timeline offset and keeping the best feasible one.
func Extract(m *Model, frac *Fractional) (*PlanResult, error) {
	in := m.In
	idxs, dist, total := support(m, frac)
	result := &PlanResult{
		LowerBound:    frac.Objective,
		Integral:      frac.Integral,
		LPIterations:  frac.Iterations,
		LPVariables:   m.Problem.NumVars(),
		LPConstraints: m.Problem.NumConstraints(),
	}
	if total < 1e-9 {
		// No fetches needed at all.
		result.Schedule = &core.Schedule{}
		res, err := sim.Run(in, result.Schedule, sim.Options{})
		if err != nil {
			return nil, fmt.Errorf("lpmodel: empty schedule infeasible: %w", err)
		}
		result.Stall = res.Stall
		result.ExtraCache = res.ExtraCache
		return result, nil
	}

	// Candidate offsets and planning budgets, in three tiers.  Tier 1 is the
	// paper's rounding: the fractional part of every interval's start on the
	// timeline (nudged inside the interval), plus 0 for the integral case,
	// planned against k + (D-1) locations.  Tier 2 widens the enumeration to
	// the remaining distinct fractional offsets of the solution - every
	// interval's end.  Tier 3 re-tries every offset with the full
	// k + 2(D-1) planning budget Theorem 4 allows: the narrow budget forces
	// evictions that can defer a block to a later sampled interval that never
	// comes, while the full allowance keeps such blocks resident (the
	// resulting schedules still respect the theorem's extra-cache bound).
	// Each tier is consulted only when the previous tiers produced no
	// feasible schedule, so instances the classic enumeration handles keep
	// their historical schedules.
	seen := make(map[int64]bool)
	var starts, ends []float64
	add := func(list []float64, t float64) []float64 {
		t = t - math.Floor(t)
		keyVal := int64(math.Round(t * 1e9))
		if !seen[keyVal] {
			seen[keyVal] = true
			list = append(list, t)
		}
		return list
	}
	starts = add(starts, 1e-7)
	for i := range idxs {
		starts = add(starts, dist[i]+1e-7)
	}
	for i, idx := range idxs {
		ends = add(ends, dist[i]+frac.X[idx]+1e-7)
	}

	var best *sim.Result
	var bestSched *core.Schedule
	var bestT float64
	var lastErr error
	try := func(candidates []float64, budget int) {
		for _, t := range candidates {
			samples := sample(m, frac, idxs, dist, total, t)
			sched := extractSchedule(in, samples, budget)
			res, clean, err := evaluate(in, sched)
			if err != nil {
				lastErr = err
				continue
			}
			result.CandidatesTried++
			if best == nil || res.Stall < best.Stall ||
				(res.Stall == best.Stall && res.ExtraCache < best.ExtraCache) {
				best, bestSched, bestT = res, clean, t
			}
		}
	}
	narrow := in.K + in.Disks - 1
	wide := in.K + 2*(in.Disks-1)
	try(starts, narrow)
	if best == nil {
		try(ends, narrow)
	}
	if best == nil && wide > narrow {
		try(starts, wide)
		try(ends, wide)
	}
	if best == nil {
		return nil, fmt.Errorf("lpmodel: no candidate offset produced a feasible schedule (last error: %v)", lastErr)
	}
	result.Schedule = bestSched
	result.Stall = best.Stall
	result.ExtraCache = best.ExtraCache
	result.Offset = bestT
	return result, nil
}
