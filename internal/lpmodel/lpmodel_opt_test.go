package lpmodel_test

import (
	"math/rand"
	"testing"

	"pfcache/internal/core"
	"pfcache/internal/lp"
	"pfcache/internal/lpmodel"
	"pfcache/internal/opt"
	"pfcache/internal/sim"
	"pfcache/internal/workload"
)

// TestTheorem4OnRandomInstances is the central Theorem 4 reproduction test:
// on random small multi-disk instances the LP lower bound must not exceed the
// exhaustive optimum, and the extracted schedule must achieve stall time at
// most the exhaustive optimum while using at most 2(D-1) extra locations.
func TestTheorem4OnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	trials := 0
	for trials < 18 {
		n := 6 + rng.Intn(5)
		blocks := 4 + rng.Intn(3)
		k := 2 + rng.Intn(2)
		f := 1 + rng.Intn(3)
		disks := 1 + rng.Intn(3)
		seq := workload.Uniform(n, blocks, int64(1000+trials))
		in := workload.Instance(seq, k, f, disks, workload.AssignStripe, 0)
		optRes, err := opt.Optimal(in, opt.Options{})
		if err != nil {
			t.Fatalf("opt: %v", err)
		}
		res, err := lpmodel.Plan(in, lp.Options{})
		if err != nil {
			t.Fatalf("Plan: %v (seq=%v k=%d F=%d D=%d)", err, seq, k, f, disks)
		}
		trials++
		if res.LowerBound > float64(optRes.Stall)+1e-6 {
			t.Fatalf("LP lower bound %.4f exceeds optimal stall %d (seq=%v k=%d F=%d D=%d)",
				res.LowerBound, optRes.Stall, seq, k, f, disks)
		}
		if res.Stall > optRes.Stall {
			t.Errorf("extracted stall %d exceeds optimal stall %d (lower bound %.3f, integral=%v, seq=%v k=%d F=%d D=%d)",
				res.Stall, optRes.Stall, res.LowerBound, res.Integral, seq, k, f, disks)
		}
		if res.ExtraCache > 2*(disks-1) {
			t.Errorf("extracted schedule uses %d extra locations, budget 2(D-1)=%d (seq=%v k=%d F=%d D=%d)",
				res.ExtraCache, 2*(disks-1), seq, k, f, disks)
		}
		// The schedule must of course be executable on the real instance.
		if _, err := sim.Run(in, res.Schedule, sim.Options{}); err != nil {
			t.Fatalf("extracted schedule infeasible: %v", err)
		}
	}
}

// TestPlanSingleDiskMatchesOptimal checks that with D = 1 the pipeline
// reproduces the polynomial-time optimality result of Albers, Garg and
// Leonardi: stall equal to OPT with no extra cache locations.
func TestPlanSingleDiskMatchesOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := 8 + rng.Intn(6)
		blocks := 4 + rng.Intn(3)
		k := 2 + rng.Intn(2)
		f := 2 + rng.Intn(2)
		seq := workload.Uniform(n, blocks, int64(trial))
		in := core.SingleDisk(seq, k, f)
		optStall, err := opt.OptimalStall(in, opt.Options{})
		if err != nil {
			t.Fatalf("opt: %v", err)
		}
		res, err := lpmodel.Plan(in, lp.Options{})
		if err != nil {
			t.Fatalf("Plan: %v", err)
		}
		if res.Stall != optStall {
			t.Errorf("trial %d: LP schedule stall %d != optimal %d (lower bound %.3f, seq=%v k=%d F=%d)",
				trial, res.Stall, optStall, res.LowerBound, seq, k, f)
		}
		if res.ExtraCache != 0 {
			t.Errorf("trial %d: single-disk schedule used %d extra locations", trial, res.ExtraCache)
		}
	}
}
