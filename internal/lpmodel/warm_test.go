package lpmodel

import (
	"math"
	"reflect"
	"testing"

	"pfcache/internal/lp"
	"pfcache/internal/workload"
)

// TestPlanFromMatchesColdPlan verifies the warm-start contract the E8 row
// loop relies on: planning an instance warm-started from the basis of its
// own lower-bound solve produces the identical PlanResult a cold Plan does
// (same schedule, stall, bound), with the LP solved in zero pivots.
func TestPlanFromMatchesColdPlan(t *testing.T) {
	for _, disks := range []int{1, 2, 3} {
		seq := workload.Interleaved(16, disks, 5)
		in := workload.Instance(seq, 4, 3, disks, workload.AssignStripe, 0)

		cold, err := Plan(in, lp.Options{})
		if err != nil {
			t.Fatalf("D=%d: cold plan: %v", disks, err)
		}

		m, err := Build(in)
		if err != nil {
			t.Fatalf("D=%d: build: %v", disks, err)
		}
		frac, err := m.Solve(lp.Options{})
		if err != nil {
			t.Fatalf("D=%d: lower-bound solve: %v", disks, err)
		}
		if m.Basis() == nil {
			t.Fatalf("D=%d: model captured no basis", disks)
		}
		warm, err := PlanFrom(in, lp.Options{}, m.Basis())
		if err != nil {
			t.Fatalf("D=%d: warm plan: %v", disks, err)
		}

		if warm.LPIterations != 0 {
			t.Errorf("D=%d: warm plan spent %d pivots re-solving the identical LP", disks, warm.LPIterations)
		}
		if math.Abs(warm.LowerBound-frac.Objective) > 1e-9 {
			t.Errorf("D=%d: warm bound %g, lower-bound solve %g", disks, warm.LowerBound, frac.Objective)
		}
		if warm.Stall != cold.Stall || warm.ExtraCache != cold.ExtraCache ||
			math.Abs(warm.LowerBound-cold.LowerBound) > 1e-9 || warm.Offset != cold.Offset {
			t.Errorf("D=%d: warm plan diverged: stall %d/%d extra %d/%d bound %g/%g offset %g/%g",
				disks, warm.Stall, cold.Stall, warm.ExtraCache, cold.ExtraCache,
				warm.LowerBound, cold.LowerBound, warm.Offset, cold.Offset)
		}
		if !reflect.DeepEqual(warm.Schedule, cold.Schedule) {
			t.Errorf("D=%d: warm plan extracted a different schedule", disks)
		}
	}
}

// TestModelResolveWarmStarts verifies that re-solving the same model warm
// starts automatically and reproduces the first solve.
func TestModelResolveWarmStarts(t *testing.T) {
	seq := workload.Uniform(11, 6, 900)
	in := workload.Instance(seq, 3, 2, 3, workload.AssignStripe, 0)
	m, err := Build(in)
	if err != nil {
		t.Fatal(err)
	}
	solver := lp.NewSolver()
	first, err := m.SolveWith(solver, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if first.Iterations == 0 {
		t.Fatal("first solve reported zero pivots; warm-start coverage needs a real solve")
	}
	second, err := m.SolveWith(solver, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if second.Iterations != 0 {
		t.Errorf("re-solve spent %d pivots despite the captured basis", second.Iterations)
	}
	if math.Abs(second.Objective-first.Objective) > 1e-9 {
		t.Errorf("re-solve objective %g, first %g", second.Objective, first.Objective)
	}
	// The warm solve recomputes the basic values through a fresh
	// factorization, so values match the first solve's to round-off, not
	// bit-for-bit.
	for i := range second.X {
		if math.Abs(second.X[i]-first.X[i]) > 1e-9 {
			t.Fatalf("re-solve X[%d] = %g, first %g", i, second.X[i], first.X[i])
		}
	}
}
