package lpmodel

import (
	"pfcache/internal/core"
	"pfcache/internal/lp"
)

// Plan runs the full Theorem 4 pipeline on an instance: build the
// synchronized-schedule LP, solve its relaxation, and extract an integral
// schedule from the fractional optimum.  The returned result contains both
// the schedule and the fractional lower bound, so the caller can verify the
// Theorem 4 guarantee (stall time equal to the lower bound and at most
// 2(D-1) extra cache locations) or detect that the extraction lost ground on
// a particular instance.  The solve draws a pooled solver, so repeated Plan
// calls reuse tableau buffers; callers holding their own lp.Solver can use
// Build plus Model.SolveWith plus Extract directly.
func Plan(in *core.Instance, opts lp.Options) (*PlanResult, error) {
	return PlanFrom(in, opts, nil)
}

// PlanFrom is Plan with the LP solve warm-started from a basis captured off
// a same-shaped model's optimal solve (Model.Basis): when the basis
// transfers, the solve skips phase one entirely — and when the donor model
// solved the identical instance, it terminates without a single pivot at the
// donor's vertex, so the extracted schedule is the one Plan would have
// produced.  A nil basis is an ordinary Plan.
func PlanFrom(in *core.Instance, opts lp.Options, warm *lp.WarmBasis) (*PlanResult, error) {
	m, err := Build(in)
	if err != nil {
		return nil, err
	}
	m.WarmStart(warm)
	frac, err := m.Solve(opts)
	if err != nil {
		return nil, err
	}
	return Extract(m, frac)
}

// PlanBatch is Plan routed through a ModelBatch: the model build reuses the
// batch's slot storage (a repeated instance skips the rebuild entirely) and
// the LP solve runs through the batch's lp.Batch, sharing solver arenas, the
// symbolic factorization cache and the per-pattern warm bases across the
// rows of a sweep.  A cold solve through the batch is bit-identical to Plan
// (see the lp.Batch contract), so the extracted schedule is too.
func PlanBatch(b *ModelBatch, in *core.Instance, opts lp.Options) (*PlanResult, error) {
	m, err := b.Model(in)
	if err != nil {
		return nil, err
	}
	frac, err := m.SolveBatch(b.LP(), opts)
	if err != nil {
		return nil, err
	}
	return Extract(m, frac)
}

// LowerBound solves only the LP relaxation and returns its optimal value, a
// certified lower bound on the optimal stall time sOPT(sigma, k).  It is
// useful for experiments on instances too large for the exhaustive search of
// package opt.
func LowerBound(in *core.Instance, opts lp.Options) (float64, error) {
	m, err := Build(in)
	if err != nil {
		return 0, err
	}
	frac, err := m.Solve(opts)
	if err != nil {
		return 0, err
	}
	return frac.Objective, nil
}
