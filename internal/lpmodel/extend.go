package lpmodel

import (
	"errors"
	"fmt"
	"sort"

	"pfcache/internal/core"
	"pfcache/internal/lp"
)

// ErrExtendRebuild reports that a trace extension is not expressible as an
// in-place append: the request names a block the built program has never
// seen (or one of the synthetic dummy blocks), so the interval and variable
// layout would have to change retroactively.  Callers handle it by rebuilding
// the model from the extended instance and solving cold — the two paths
// produce the same optimum, Extend is purely an acceleration.
var ErrExtendRebuild = errors.New("lpmodel: extension requires a rebuild")

// Extend appends the given requests to the model's instance and grows the
// linear program in place: new fetch intervals ending at each new request,
// their variables and per-interval rows, coefficient extensions of the
// boundary and trailing-eviction rows the new intervals fall into, and the
// gap-balance row closed by each re-reference.  Every pre-existing row keeps
// its index, sense and old-column coefficients, so a warm basis captured from
// the pre-extension solve transfers through lp.Options.Dual and the next
// solve re-optimises in a handful of dual pivots instead of from scratch
// (see SolveIncremental).
//
// The extended program is equivalent to Build of the extended instance: same
// variables and constraints up to ordering, hence the same optimal value and
// the same per-interval optimum.  Extend mutates m.In.Seq.
//
// Requests must name blocks the program already knows (referenced or
// initially cached); anything else fails with ErrExtendRebuild before any
// mutation.
func (m *Model) Extend(reqs ...core.BlockID) error {
	for _, b := range reqs {
		if !b.Valid() || m.blockPos(b) < 0 {
			return fmt.Errorf("lpmodel: request for unknown block %v: %w", b, ErrExtendRebuild)
		}
	}
	for _, b := range reqs {
		m.extendOne(b, m.blockPos(b))
	}
	return nil
}

// SolveIncremental re-solves the extended program warm: the dual simplex
// re-optimises from the previous optimal basis (new rows enter with their
// crash slacks, old rows keep their basic columns), falling back to a cold
// primal solve whenever the basis does not transfer or the re-optimisation
// fails to certify.  The result is exactly a SolveWith of the current
// program — only the path to it is shorter.
func (m *Model) SolveIncremental(s *lp.Solver, opts lp.Options) (*Fractional, error) {
	opts.Dual = true
	return m.SolveWith(s, opts)
}

// blockPos returns the position of block b in m.Blocks, or -1 when b is not
// one of the instance's real blocks (dummies are excluded: a request for a
// dummy would change its never-referenced role).  m.Blocks is ascending —
// the instance's sorted block set followed by the strictly larger dummy IDs —
// so the lookup is a binary search.
func (m *Model) blockPos(b core.BlockID) int {
	real := len(m.Blocks) - len(m.Dummies)
	i := sort.Search(real, func(i int) bool { return m.Blocks[i] >= b })
	if i < real && m.Blocks[i] == b {
		return i
	}
	return -1
}

// extendOne grows the program by the single request for block b (position bi
// in m.Blocks).  With n requests already present the new request is number
// n+1, and the cold build of the extended trace differs from the current
// program by exactly:
//
//   - the intervals (s, n+1) for s in [max(0, n-F), n] — every other
//     interval has End <= n and was already enumerated;
//   - their x / fetch / evict / scratch variables and per-interval rows;
//   - x(s, n+1) entering the boundary rows q = s+1 .. n (q = n is new);
//   - evict(I, b') entering each block's trailing "evicted at most once"
//     row for the new intervals I inside that block's trailing gap;
//   - for b itself, the trailing gap (lastRef, n+1) closing into a full
//     fetch/evict gap balance: its eviction row is the trailing row just
//     extended, and the balance equality over the whole gap is appended.
//
// New coefficients in old rows only name new variables, so the old basis
// stays dual-feasible after the append — the contract lp's warm dual path
// relies on.
func (m *Model) extendOne(b core.BlockID, bi int) {
	n := m.In.N()
	prob := m.Problem
	m.In.Seq = append(m.In.Seq, b)
	m.ix.Append(b)

	// New intervals, registered per start for gapIntervals.
	loS := n - m.In.F
	if loS < 0 {
		loS = 0
	}
	firstNew := len(m.Intervals)
	for s := loS; s <= n; s++ {
		idx := len(m.Intervals)
		iv := Interval{Start: s, End: n + 1}
		m.Intervals = append(m.Intervals, iv)
		for len(m.extStart) <= s {
			m.extStart = append(m.extStart, nil)
		}
		m.extStart[s] = append(m.extStart[s], int32(idx))
		m.xVar = append(m.xVar, prob.AddVariable(float64(iv.Stall(m.In.F))))
	}
	for idx := firstNew; idx < len(m.Intervals); idx++ {
		iv := m.Intervals[idx]
		for _, b2 := range m.Blocks {
			if m.blockReferencedInside(b2, iv) {
				m.fVar = append(m.fVar, noVar)
				m.eVar = append(m.eVar, noVar)
				continue
			}
			m.fVar = append(m.fVar, prob.AddVariable(0))
			m.eVar = append(m.eVar, prob.AddVariable(0))
		}
	}
	for idx := firstNew; idx < len(m.Intervals); idx++ {
		for d := 0; d < m.In.Disks; d++ {
			m.sVar = append(m.sVar, prob.AddVariable(0))
		}
	}

	// Boundary rows: interval (s, n+1) spans q for q in s+1 .. n.  The rows
	// for q <= n-1 exist whenever a new interval spans them (any spanning
	// interval forces F >= 1, and with F >= 1 the build emitted every
	// boundary row); q = n is this extension's new boundary.
	coeffs := m.coefBuf
	for q := loS + 1; q <= n-1; q++ {
		coeffs = coeffs[:0]
		for idx := firstNew; idx < len(m.Intervals); idx++ {
			if m.Intervals[idx].Start <= q-1 {
				coeffs = append(coeffs, lp.Coef{Var: m.xVar[idx], Value: 1})
			}
		}
		if len(coeffs) == 0 {
			continue
		}
		if row := m.boundaryRow[q]; row >= 0 {
			prob.ExtendConstraint(row, coeffs)
		} else {
			m.boundaryRow[q] = prob.AddConstraint(coeffs, lp.LE, 1)
		}
	}
	coeffs = coeffs[:0]
	for idx := firstNew; idx < len(m.Intervals); idx++ {
		if m.Intervals[idx].Start <= n-1 {
			coeffs = append(coeffs, lp.Coef{Var: m.xVar[idx], Value: 1})
		}
	}
	row := -1
	if len(coeffs) > 0 {
		row = prob.AddConstraint(coeffs, lp.LE, 1)
	}
	m.boundaryRow = append(m.boundaryRow, row)
	m.coefBuf = coeffs

	for idx := firstNew; idx < len(m.Intervals); idx++ {
		m.addIntervalRows(idx)
	}

	// Every other block's trailing gap now also contains the new intervals
	// past its last reference: its "evicted at most once" row gains their
	// eviction variables (or appears, when the old trailing gap was empty).
	for bj, b2 := range m.Blocks {
		if bj == bi {
			continue
		}
		if m.lastRef[bj] == 0 && !m.initial[b2] {
			continue // never referenced and not cached: no rows to maintain
		}
		ec := m.coefBuf[:0]
		for idx := firstNew; idx < len(m.Intervals); idx++ {
			if m.Intervals[idx].Start < m.lastRef[bj] {
				continue
			}
			if v := m.evictVar(idx, bj); v != noVar {
				ec = append(ec, lp.Coef{Var: v, Value: 1})
			}
		}
		if len(ec) > 0 {
			if row := m.tailRow[bj]; row >= 0 {
				prob.ExtendConstraint(row, ec)
			} else {
				m.tailRow[bj] = prob.AddConstraint(ec, lp.LE, 1)
			}
		}
		m.coefBuf = ec
	}

	// The requested block's trailing gap closes into a proper gap balance:
	// the trailing eviction row, extended with the new intervals, becomes
	// the gap's "evicted at most once" half, and the fetch/evict equality
	// over the whole gap (old and new intervals) is appended.  This is also
	// the first-reference path for an initially cached block: its trailing
	// gap is (0, n+1) and the same two rows are what Build would emit.
	lo := m.lastRef[bi]
	ec := m.coefBuf[:0]
	for idx := firstNew; idx < len(m.Intervals); idx++ {
		if m.Intervals[idx].Start < lo {
			continue
		}
		if v := m.evictVar(idx, bi); v != noVar {
			ec = append(ec, lp.Coef{Var: v, Value: 1})
		}
	}
	if len(ec) > 0 {
		if row := m.tailRow[bi]; row >= 0 {
			prob.ExtendConstraint(row, ec)
		} else {
			prob.AddConstraint(ec, lp.LE, 1)
		}
	}
	m.coefBuf = ec
	balance := m.coefBuf2[:0]
	for _, idx := range m.gapIntervals(lo, n+1) {
		if v := m.fetchVar(idx, bi); v != noVar {
			balance = append(balance, lp.Coef{Var: v, Value: 1})
		}
		if v := m.evictVar(idx, bi); v != noVar {
			balance = append(balance, lp.Coef{Var: v, Value: -1})
		}
	}
	if len(balance) > 0 {
		prob.AddConstraint(balance, lp.EQ, 0)
	}
	m.coefBuf2 = balance
	m.lastRef[bi] = n + 1
	m.tailRow[bi] = -1
}
