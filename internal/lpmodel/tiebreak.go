package lpmodel

// TieBreakObjective perturbs every interval variable's objective coefficient
// by a deterministic, interval-specific epsilon: cost(x_I) becomes
// stall(I) + eps*w(I) with w(I) in [0,1) hashed from the interval's
// (Start, End) identity.  The synchronized-schedule LPs are massively
// degenerate — their optimal face usually contains many vertices, and which
// one a solve lands on depends on the pivot path, so an incrementally
// re-optimised program (Extend + SolveIncremental) and a cold rebuild may
// serve different equal-cost schedules.  A generic perturbation makes the
// optimal x unique, so every correct solve — warm or cold, whatever the
// engine — lands on the same vertex and the extracted schedules are
// byte-identical, at the price of an O(eps · support) error in the reported
// objective.
//
// The epsilon depends only on the interval's endpoints, not its enumeration
// index: Extend enumerates the same intervals as Build of the extended trace
// but in a different order, and endpoint-keyed epsilons keep the two paths
// solving the identical perturbed program.  The trace-replay benchmark
// (pcbench -replay, R1) is the caller; the one-shot suite and the serving
// paths stay unperturbed so their committed trajectories are untouched.
func (m *Model) TieBreakObjective(eps float64) {
	for idx, v := range m.xVar {
		iv := m.Intervals[idx]
		base := float64(iv.Stall(m.In.F))
		m.Problem.SetObjective(v, base+eps*tieWeight(iv))
	}
}

// tieWeight hashes the interval's endpoints to [0,1) with pairwise-distinct
// values (a 64-bit mix), which is what makes the perturbed objective
// generic.
func tieWeight(iv Interval) float64 {
	x := uint64(iv.Start)*0x9E3779B97F4A7C15 ^ uint64(iv.End)*0xC2B2AE3D27D4EB4F
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	return float64(x>>11) / float64(1<<53)
}
