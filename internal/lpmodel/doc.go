// Package lpmodel implements the linear-programming approach of Section 3 of
// the paper: computing prefetching/caching schedules for D parallel disks
// whose stall time is bounded by the optimal stall time sOPT(sigma, k), using
// a small number of extra cache locations.
//
// # The synchronized-schedule linear program
//
// Following the paper, a schedule is synchronized if fetch operations on the
// D disks are performed completely in parallel: no two fetch operations
// properly intersect and during a fetch interval every disk fetches.  Lemma 3
// shows that allowing D-1 extra cache locations there is always a
// synchronized schedule whose stall time is at most sOPT(sigma, k).  The
// program therefore optimises over synchronized schedules with k+D-1 cache
// locations:
//
//   - For every interval I = (i, j) of length |I| = j-i-1 <= F (a fetch
//     starting after request r_i and ending before r_j) a variable x(I) says
//     whether synchronized fetches are performed in I; the objective
//     minimises the total end-of-interval stall sum_I x(I) (F - |I|).
//   - Variables f_{I,a} and e_{I,a} say whether block a is fetched (evicted)
//     in interval I.  Constraints: at most one interval spans any request
//     boundary; every disk fetches exactly x(I) in I; fetches equal evictions
//     in I; every block is in cache when referenced (first-reference and
//     between-references flow constraints); blocks are not fetched or evicted
//     in intervals containing their own references; initially cached blocks
//     (including k+D-1 dummy blocks that are never requested, standing in for
//     the initially irrelevant cache contents) are evicted at most once
//     before their next use.
//
// The relaxation is solved with the simplex solver of package lp; its
// optimal value is a lower bound on sOPT(sigma, k).  Build assembles the
// program in near-linear time in its size: intervals are enumerated
// start-major, so the per-start runs (contiguous, End-sorted index ranges)
// answer both the boundary-spanning and the gap-containment queries without
// scanning the interval list.
//
// # Extracting an integral schedule
//
// The paper converts an optimal fractional solution into an integral one by
// ordering the intervals (after an untangling step that makes nested
// intervals share endpoints), associating each interval I with the time span
// [dist(I), dist(I)+x(I)) where dist(I) is the total x-mass of earlier
// intervals, sampling the timeline at integer offsets t, t+1, t+2, ... for a
// best offset t in [0,1), and normalising fetches and evictions so that every
// disk fetches the missing block with the earliest next reference (property
// (1)) and evicts a block whose next reference is furthest in the future
// (property (2)); the eviction bookkeeping (the set Q_t in Lemma 4) leaves at
// most D-1 fetches without an eviction, for a total of at most 2(D-1) extra
// cache locations.
//
// This package follows that recipe with one simplification that keeps the
// implementation verifiable: instead of normalising the fractional fetch and
// eviction variables by repeated exchange steps, the extractor takes only the
// sampled interval multiset I_t from the fractional solution and re-derives
// the fetched blocks and eviction victims greedily along the timeline using
// exactly the rules of properties (1) and (2), with a cache budget of
// k + (D-1) during planning (matching the fractional program) and eviction
// only when the budget is exhausted.  Every candidate offset's schedule is
// then executed on the real instance (cache size k, extra locations measured)
// and the best feasible one is returned; the result records the fractional
// lower bound so callers can check the Theorem 4 guarantee (stall equal to
// the lower bound, at most 2(D-1) extra locations), and the test suite
// asserts it against the exhaustive optimum of package opt on small
// instances.  When the fractional optimum happens to be integral - the common
// case on the instance sizes this solver targets - the sampled multiset is
// exactly the set of x(I)=1 intervals and the extraction is faithful to the
// paper without any simplification.
package lpmodel
