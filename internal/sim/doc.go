// Package sim executes prefetching/caching schedules on the disk model of
// package core and measures their cost.
//
// The executor is a small discrete-event simulator.  It advances a cursor
// through the request sequence, starting fetches as soon as they are eligible
// (their anchor has been reached and their disk is idle), evicting blocks at
// fetch initiation, delivering blocks at fetch completion, and stalling the
// cursor whenever the next requested block is not resident.  While the cursor
// stalls, all in-flight fetches keep making progress, which is exactly the
// parallel-disk semantics of the paper.  The executor reports the total stall
// time, the elapsed time (stall plus number of requests), and the maximum
// number of cache locations used at any instant, from which the "extra memory
// locations" figure of Theorem 4 is derived.
//
// The executor is also the schedule validator: it rejects schedules that
// evict absent blocks, fetch blocks that are already resident, or leave a
// requested block with no pending fetch that could deliver it.
package sim
