package sim

import (
	"fmt"

	"pfcache/internal/core"
)

// Options controls schedule execution.
type Options struct {
	// Trace records an event log in the result.
	Trace bool
	// MaxResident, when positive, makes execution fail as soon as more than
	// MaxResident cache locations are in use at the same instant.  It is used
	// to enforce the "k + extra" bounds of Section 3 of the paper.
	MaxResident int
	// DropRedundantFetches silently skips fetches whose block is already
	// resident (in cache or in flight) at initiation time instead of
	// reporting an error.  The number of skipped fetches is reported in
	// Result.DroppedFetches.
	DropRedundantFetches bool
}

// EventKind classifies trace events.
type EventKind int

// Event kinds recorded in the execution trace.
const (
	EventServe      EventKind = iota // a request was served
	EventStall                       // the processor stalled
	EventFetchStart                  // a fetch was initiated (and its eviction performed)
	EventFetchEnd                    // a fetch completed (block became resident)
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventServe:
		return "serve"
	case EventStall:
		return "stall"
	case EventFetchStart:
		return "fetch-start"
	case EventFetchEnd:
		return "fetch-end"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one entry of the execution trace.
type Event struct {
	// Time is the wall-clock time at which the event happened.
	Time int
	// Kind classifies the event.
	Kind EventKind
	// Request is the 0-based request position for serve and stall events,
	// and the cursor position for fetch events.
	Request int
	// Block is the block involved (served, fetched or arriving).
	Block core.BlockID
	// Evict is the block evicted for fetch-start events, or NoBlock.
	Evict core.BlockID
	// Disk is the disk involved for fetch events.
	Disk int
	// Duration is the stall length for stall events.
	Duration int
}

// String renders the event.
func (e Event) String() string {
	switch e.Kind {
	case EventServe:
		return fmt.Sprintf("t=%d serve r%d=%v", e.Time, e.Request+1, e.Block)
	case EventStall:
		return fmt.Sprintf("t=%d stall %d before r%d", e.Time, e.Duration, e.Request+1)
	case EventFetchStart:
		if e.Evict != core.NoBlock {
			return fmt.Sprintf("t=%d disk%d fetch %v evict %v", e.Time, e.Disk, e.Block, e.Evict)
		}
		return fmt.Sprintf("t=%d disk%d fetch %v", e.Time, e.Disk, e.Block)
	case EventFetchEnd:
		return fmt.Sprintf("t=%d disk%d loaded %v", e.Time, e.Disk, e.Block)
	default:
		return fmt.Sprintf("t=%d %v", e.Time, e.Kind)
	}
}

// Result reports the cost and resource usage of an executed schedule.
type Result struct {
	// Stall is the total processor stall time.
	Stall int
	// Elapsed is the elapsed time: the number of requests plus Stall.
	Elapsed int
	// Requests is the number of requests served.
	Requests int
	// FetchCount is the number of fetch operations performed.
	FetchCount int
	// MaxResident is the maximum number of cache locations in use at any
	// instant (resident blocks plus reserved locations of in-flight fetches).
	MaxResident int
	// ExtraCache is max(0, MaxResident - k): the number of memory locations
	// used beyond the nominal cache size.
	ExtraCache int
	// PerRequestStall[i] is the stall time incurred immediately before
	// serving request i.
	PerRequestStall []int
	// DroppedFetches counts redundant fetches skipped under
	// Options.DropRedundantFetches.
	DroppedFetches int
	// Events is the execution trace (only when Options.Trace is set).
	Events []Event
}

// Error types reported by the executor.

// MissingBlockError reports that a requested block was not resident and no
// pending fetch could deliver it, i.e. the schedule is infeasible.
type MissingBlockError struct {
	Request int
	Block   core.BlockID
}

func (e *MissingBlockError) Error() string {
	return fmt.Sprintf("request %d: block %v is not in cache and no pending fetch delivers it", e.Request+1, e.Block)
}

// EvictAbsentError reports an eviction of a block that is not resident.
type EvictAbsentError struct {
	FetchIndex int
	Block      core.BlockID
}

func (e *EvictAbsentError) Error() string {
	return fmt.Sprintf("fetch %d: evicted block %v is not in cache", e.FetchIndex, e.Block)
}

// RedundantFetchError reports a fetch of a block that is already resident or
// already being fetched.
type RedundantFetchError struct {
	FetchIndex int
	Block      core.BlockID
}

func (e *RedundantFetchError) Error() string {
	return fmt.Sprintf("fetch %d: block %v is already resident or in flight", e.FetchIndex, e.Block)
}

// ResidencyError reports that the schedule used more cache locations than the
// configured limit allows.
type ResidencyError struct {
	Time     int
	Resident int
	Limit    int
}

func (e *ResidencyError) Error() string {
	return fmt.Sprintf("time %d: %d cache locations in use, limit is %d", e.Time, e.Resident, e.Limit)
}

// queuedFetch is a fetch together with its index in the original schedule.
type queuedFetch struct {
	core.Fetch
	index int
}

// inflight describes the fetch currently executing on a disk.
type inflight struct {
	active     bool
	block      core.BlockID
	done       int
	evictAtEnd core.BlockID
	index      int
}

// executor holds the mutable state of one schedule execution.
type executor struct {
	in   *core.Instance
	opts Options

	queues  [][]queuedFetch // per-disk pending fetches, in order
	qpos    []int           // next queue index per disk
	flights []inflight      // per-disk in-flight fetch

	cache map[core.BlockID]bool

	pinned bool // the schedule carries wall-clock MinTime pins

	time   int
	served int
	stall  int

	res Result

	kept    []bool // kept[i] reports whether schedule fetch i was executed
	dropped int
}

// Run executes the schedule on the instance and returns its cost, or an error
// if the schedule is infeasible.
func Run(in *core.Instance, sched *core.Schedule, opts Options) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("invalid instance: %w", err)
	}
	if err := sched.Validate(in); err != nil {
		return nil, fmt.Errorf("invalid schedule: %w", err)
	}
	ex := newExecutor(in, sched, opts)
	if err := ex.run(); err != nil {
		return nil, err
	}
	return &ex.res, nil
}

// Stall is a convenience wrapper returning only the total stall time.
func Stall(in *core.Instance, sched *core.Schedule) (int, error) {
	r, err := Run(in, sched, Options{})
	if err != nil {
		return 0, err
	}
	return r.Stall, nil
}

// Elapsed is a convenience wrapper returning only the elapsed time.
func Elapsed(in *core.Instance, sched *core.Schedule) (int, error) {
	r, err := Run(in, sched, Options{})
	if err != nil {
		return 0, err
	}
	return r.Elapsed, nil
}

// Sanitize executes the schedule with redundant fetches dropped and returns a
// copy of the schedule containing only the fetches that were actually
// executed, together with the number of dropped fetches.  It is used to clean
// up schedules produced by the linear-programming rounding, which may contain
// fetches of blocks that are already resident (such fetches never help and
// never hurt the stall time, so removing them is always safe).
func Sanitize(in *core.Instance, sched *core.Schedule) (*core.Schedule, int, error) {
	opts := Options{DropRedundantFetches: true}
	ex := newExecutor(in, sched, opts)
	if err := ex.run(); err != nil {
		return nil, 0, err
	}
	out := &core.Schedule{}
	for i, f := range sched.Fetches {
		if ex.kept[i] {
			out.Append(f)
		}
	}
	return out, ex.dropped, nil
}

func newExecutor(in *core.Instance, sched *core.Schedule, opts Options) *executor {
	ex := &executor{
		in:      in,
		opts:    opts,
		queues:  make([][]queuedFetch, in.Disks),
		qpos:    make([]int, in.Disks),
		flights: make([]inflight, in.Disks),
		cache:   make(map[core.BlockID]bool, in.K),
		kept:    make([]bool, len(sched.Fetches)),
	}
	for i, f := range sched.Fetches {
		ex.queues[f.Disk] = append(ex.queues[f.Disk], queuedFetch{Fetch: f, index: i})
		if f.MinTime > 0 {
			ex.pinned = true
		}
	}
	for _, b := range in.InitialCache {
		ex.cache[b] = true
	}
	ex.res.PerRequestStall = make([]int, in.N())
	ex.res.MaxResident = len(in.InitialCache)
	return ex
}

// resident returns the number of cache locations currently in use.
func (ex *executor) resident() int {
	n := len(ex.cache)
	for d := range ex.flights {
		if ex.flights[d].active {
			n++
		}
	}
	return n
}

func (ex *executor) noteResidency() error {
	r := ex.resident()
	if r > ex.res.MaxResident {
		ex.res.MaxResident = r
	}
	if ex.opts.MaxResident > 0 && r > ex.opts.MaxResident {
		return &ResidencyError{Time: ex.time, Resident: r, Limit: ex.opts.MaxResident}
	}
	return nil
}

func (ex *executor) event(e Event) {
	if ex.opts.Trace {
		e.Time = ex.time
		ex.res.Events = append(ex.res.Events, e)
	}
}

// deliver completes every in-flight fetch whose completion time has been
// reached.
func (ex *executor) deliver() error {
	for d := range ex.flights {
		fl := &ex.flights[d]
		if !fl.active || fl.done > ex.time {
			continue
		}
		fl.active = false
		ex.cache[fl.block] = true
		ex.event(Event{Kind: EventFetchEnd, Request: ex.served, Block: fl.block, Disk: d})
		if fl.evictAtEnd != core.NoBlock {
			if !ex.cache[fl.evictAtEnd] {
				return &EvictAbsentError{FetchIndex: fl.index, Block: fl.evictAtEnd}
			}
			delete(ex.cache, fl.evictAtEnd)
		}
	}
	return nil
}

// startEligible initiates every fetch that is eligible (anchor reached, disk
// idle), in schedule order per disk.
func (ex *executor) startEligible() error {
	for d := range ex.queues {
		for !ex.flights[d].active && ex.qpos[d] < len(ex.queues[d]) {
			qf := ex.queues[d][ex.qpos[d]]
			if qf.After > ex.served || qf.MinTime > ex.time {
				break
			}
			ex.qpos[d]++
			if ex.cache[qf.Block] || ex.blockInFlight(qf.Block) {
				if ex.opts.DropRedundantFetches {
					ex.dropped++
					ex.res.DroppedFetches++
					continue
				}
				return &RedundantFetchError{FetchIndex: qf.index, Block: qf.Block}
			}
			if qf.Evict != core.NoBlock {
				if !ex.cache[qf.Evict] {
					return &EvictAbsentError{FetchIndex: qf.index, Block: qf.Evict}
				}
				delete(ex.cache, qf.Evict)
			}
			ex.flights[d] = inflight{
				active:     true,
				block:      qf.Block,
				done:       ex.time + ex.in.F,
				evictAtEnd: qf.EvictAtEnd,
				index:      qf.index,
			}
			ex.kept[qf.index] = true
			ex.res.FetchCount++
			ex.event(Event{Kind: EventFetchStart, Request: ex.served, Block: qf.Block, Evict: qf.Evict, Disk: d})
			if err := ex.noteResidency(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (ex *executor) blockInFlight(b core.BlockID) bool {
	for d := range ex.flights {
		if ex.flights[d].active && ex.flights[d].block == b {
			return true
		}
	}
	return false
}

// diskFetching returns the disk currently fetching block b, or -1.
func (ex *executor) diskFetching(b core.BlockID) int {
	for d := range ex.flights {
		if ex.flights[d].active && ex.flights[d].block == b {
			return d
		}
	}
	return -1
}

// reachable reports whether a pending (not yet started) fetch for block b can
// still be started given that the cursor is stuck at the current position:
// the fetch and every fetch queued ahead of it on the same disk must have
// their request-count anchor satisfied already (wall-clock lower bounds are
// satisfied simply by letting time pass).
func (ex *executor) reachable(b core.BlockID) bool {
	for d := range ex.queues {
		for i := ex.qpos[d]; i < len(ex.queues[d]); i++ {
			qf := ex.queues[d][i]
			if qf.After > ex.served {
				break
			}
			if qf.Block == b {
				return true
			}
		}
	}
	return false
}

// earliestTimeGate returns the smallest wall-clock lower bound, strictly in
// the future, among the fetches at the head of their disk queues whose
// request-count anchor is already satisfied.  It returns -1 if there is none.
func (ex *executor) earliestTimeGate() int {
	best := -1
	for d := range ex.queues {
		if ex.flights[d].active || ex.qpos[d] >= len(ex.queues[d]) {
			continue
		}
		qf := ex.queues[d][ex.qpos[d]]
		if qf.After > ex.served || qf.MinTime <= ex.time {
			continue
		}
		if best == -1 || qf.MinTime < best {
			best = qf.MinTime
		}
	}
	return best
}

// earliestCompletion returns the earliest completion time among in-flight
// fetches, or -1 if no fetch is in flight.
func (ex *executor) earliestCompletion() int {
	best := -1
	for d := range ex.flights {
		if ex.flights[d].active && (best == -1 || ex.flights[d].done < best) {
			best = ex.flights[d].done
		}
	}
	return best
}

func (ex *executor) run() error {
	n := ex.in.N()
	if err := ex.noteResidency(); err != nil {
		return err
	}
	for {
		if err := ex.deliver(); err != nil {
			return err
		}
		if err := ex.startEligible(); err != nil {
			return err
		}
		if ex.served == n {
			break
		}
		b := ex.in.Seq[ex.served]
		if ex.cache[b] {
			ex.event(Event{Kind: EventServe, Request: ex.served, Block: b})
			ex.time++
			ex.served++
			continue
		}
		// The requested block is missing: stall until it arrives, letting
		// in-flight fetches progress and starting newly startable fetches as
		// disks become idle.
		if d := ex.diskFetching(b); d >= 0 {
			next := ex.flights[d].done
			if ex.pinned {
				// A schedule with wall-clock pins (MinTime) encodes an exact
				// execution plan: a fetch may be pinned to start mid-stall,
				// possibly right after another disk's completion frees its
				// disk.  Advance through intermediate completions and time
				// gates so those initiations happen at their pinned times
				// instead of being lumped together at b's delivery.  Unpinned
				// schedules take the single jump, as before.
				if ec := ex.earliestCompletion(); ec < next {
					next = ec
				}
				if gate := ex.earliestTimeGate(); gate > ex.time && gate < next {
					next = gate
				}
			}
			ex.addStall(next - ex.time)
			ex.time = next
			continue
		}
		if !ex.reachable(b) {
			return &MissingBlockError{Request: ex.served, Block: b}
		}
		done := ex.earliestCompletion()
		if done < 0 {
			// Nothing is in flight, so the fetch chain leading to b must be
			// waiting on a wall-clock lower bound: idle until the earliest
			// such bound (this counts as stall).
			gate := ex.earliestTimeGate()
			if gate <= ex.time {
				return &MissingBlockError{Request: ex.served, Block: b}
			}
			ex.addStall(gate - ex.time)
			ex.time = gate
			continue
		}
		ex.addStall(done - ex.time)
		ex.time = done
	}
	ex.res.Stall = ex.stall
	ex.res.Requests = n
	ex.res.Elapsed = n + ex.stall
	ex.res.ExtraCache = ex.res.MaxResident - ex.in.K
	if ex.res.ExtraCache < 0 {
		ex.res.ExtraCache = 0
	}
	return nil
}

func (ex *executor) addStall(d int) {
	if d <= 0 {
		return
	}
	ex.stall += d
	ex.res.PerRequestStall[ex.served] += d
	ex.event(Event{Kind: EventStall, Request: ex.served, Duration: d})
}
