package sim

import (
	"errors"
	"testing"

	"pfcache/internal/core"
)

// introSingleDiskInstance is the worked example from the introduction of the
// paper: sigma = b1 b2 b3 b4 b4 b5 b1 b4 b4 b2, k = 4, F = 4, with b1..b4
// initially in cache.  Blocks are renamed to 0-based IDs (b1 -> 0, ...).
func introSingleDiskInstance() *core.Instance {
	seq := core.Sequence{0, 1, 2, 3, 3, 4, 0, 3, 3, 1}
	return core.SingleDisk(seq, 4, 4).WithInitialCache(0, 1, 2, 3)
}

// TestIntroExampleEarlyFetch reproduces the first schedule discussed in the
// paper's introduction: fetching b5 at the request to b2 forces the eviction
// of b1 and leads to 3 units of stall (elapsed time 13).
func TestIntroExampleEarlyFetch(t *testing.T) {
	in := introSingleDiskInstance()
	sched := &core.Schedule{Fetches: []core.Fetch{
		core.NewFetch(0, 1, 4, 0), // fetch b5 at the request to b2, evict b1
		core.NewFetch(0, 5, 0, 2), // re-load b1, evict b3
	}}
	res, err := Run(in, sched, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Stall != 3 {
		t.Errorf("stall = %d, want 3", res.Stall)
	}
	if res.Elapsed != 13 {
		t.Errorf("elapsed = %d, want 13", res.Elapsed)
	}
	if res.ExtraCache != 0 {
		t.Errorf("extra cache = %d, want 0", res.ExtraCache)
	}
}

// TestIntroExampleBetterFetch reproduces the second schedule of the
// introduction: starting the fetch for b5 at the request to b3 evicts b2 and
// yields 1 unit of stall (elapsed time 11).
func TestIntroExampleBetterFetch(t *testing.T) {
	in := introSingleDiskInstance()
	sched := &core.Schedule{Fetches: []core.Fetch{
		core.NewFetch(0, 2, 4, 1), // fetch b5 at the request to b3, evict b2
		core.NewFetch(0, 5, 1, 2), // fetch b2 back, evict b3
	}}
	res, err := Run(in, sched, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Stall != 1 {
		t.Errorf("stall = %d, want 1", res.Stall)
	}
	if res.Elapsed != 11 {
		t.Errorf("elapsed = %d, want 11", res.Elapsed)
	}
}

// introParallelInstance is the two-disk example from the introduction:
// b1..b4 on disk 0, c1..c3 on disk 1, k = 4, F = 4,
// sigma = b1 b2 c1 c2 b3 c3 b4 with b1, b2, c1, c2 initially in cache.
// Block IDs: b1..b4 -> 0..3, c1..c3 -> 4..6.
func introParallelInstance() *core.Instance {
	seq := core.Sequence{0, 1, 4, 5, 2, 6, 3}
	diskOf := map[core.BlockID]int{0: 0, 1: 0, 2: 0, 3: 0, 4: 1, 5: 1, 6: 1}
	in := core.MultiDisk(seq, 4, 4, 2, diskOf)
	return in.WithInitialCache(0, 1, 4, 5)
}

// TestIntroParallelExample reproduces the schedule described in the
// introduction for the two-disk example, with total stall time 3.
func TestIntroParallelExample(t *testing.T) {
	in := introParallelInstance()
	sched := &core.Schedule{Fetches: []core.Fetch{
		core.NewFetch(0, 1, 2, 0), // disk 1 fetches b3 at the request to b2, evicts b1
		core.NewFetch(1, 2, 6, 1), // disk 2 fetches c3 one request later, evicts b2
		core.NewFetch(0, 4, 3, 4), // disk 1 fetches b4 at the request to b3, evicts c1
	}}
	res, err := Run(in, sched, Options{Trace: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Stall != 3 {
		t.Errorf("stall = %d, want 3", res.Stall)
	}
	if res.Elapsed != 10 {
		t.Errorf("elapsed = %d, want 10", res.Elapsed)
	}
	// One unit of stall before the request to b3 (position 4) and two units
	// before the request to b4 (position 6).
	if res.PerRequestStall[4] != 1 || res.PerRequestStall[6] != 2 {
		t.Errorf("per-request stall = %v, want 1 at position 4 and 2 at position 6", res.PerRequestStall)
	}
	if len(res.Events) == 0 {
		t.Errorf("trace requested but empty")
	}
	if res.FetchCount != 3 {
		t.Errorf("fetch count = %d, want 3", res.FetchCount)
	}
}

// TestNoFetchNeeded checks that a sequence fully covered by the initial cache
// incurs no stall.
func TestNoFetchNeeded(t *testing.T) {
	seq, _ := core.ParseSequence("a b a b a")
	in := core.SingleDisk(seq, 2, 3).WithInitialCache(0, 1)
	res, err := Run(in, &core.Schedule{}, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Stall != 0 || res.Elapsed != 5 {
		t.Errorf("stall=%d elapsed=%d, want 0 and 5", res.Stall, res.Elapsed)
	}
}

// TestDemandFetchIntoFreeSlot checks that fetching into an initially free
// cache location needs no eviction and that a fetch anchored at the request
// itself pays the full fetch time as stall.
func TestDemandFetchIntoFreeSlot(t *testing.T) {
	seq, _ := core.ParseSequence("a")
	in := core.SingleDisk(seq, 2, 5)
	sched := &core.Schedule{Fetches: []core.Fetch{core.NewFetch(0, 0, 0, core.NoBlock)}}
	res, err := Run(in, sched, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Stall != 5 {
		t.Errorf("stall = %d, want 5", res.Stall)
	}
	if res.Elapsed != 6 {
		t.Errorf("elapsed = %d, want 6", res.Elapsed)
	}
	if res.ExtraCache != 0 {
		t.Errorf("extra cache = %d, want 0", res.ExtraCache)
	}
}

// TestPrefetchOverlapsService checks that a fetch started F requests before
// its reference incurs no stall.
func TestPrefetchOverlapsService(t *testing.T) {
	seq, _ := core.ParseSequence("a b c d e")
	// e (block 4) is missing; a..d are cached and the fifth cache location is
	// free; F = 4 and the fetch starts at the beginning, so it completes
	// exactly when e is requested.
	in := core.SingleDisk(seq, 5, 4).WithInitialCache(0, 1, 2, 3)
	sched := &core.Schedule{Fetches: []core.Fetch{core.NewFetch(0, 0, 4, core.NoBlock)}}
	res, err := Run(in, sched, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Stall != 0 {
		t.Errorf("stall = %d, want 0", res.Stall)
	}
}

// TestMissingBlockError checks that a schedule that never fetches a requested
// block is rejected.
func TestMissingBlockError(t *testing.T) {
	seq, _ := core.ParseSequence("a b")
	in := core.SingleDisk(seq, 2, 2).WithInitialCache(0)
	_, err := Run(in, &core.Schedule{}, Options{})
	var miss *MissingBlockError
	if !errors.As(err, &miss) {
		t.Fatalf("error = %v, want MissingBlockError", err)
	}
	if miss.Request != 1 || miss.Block != 1 {
		t.Errorf("error detail = %+v", miss)
	}
}

// TestDeadlockedAnchorError checks that a fetch anchored after a request that
// can never be served (because it depends on that very fetch) is detected.
func TestDeadlockedAnchorError(t *testing.T) {
	seq, _ := core.ParseSequence("a b")
	in := core.SingleDisk(seq, 2, 2).WithInitialCache(0)
	// The fetch for b may only start after both requests are served, but the
	// second request needs b: deadlock.
	sched := &core.Schedule{Fetches: []core.Fetch{core.NewFetch(0, 2, 1, core.NoBlock)}}
	_, err := Run(in, sched, Options{})
	var miss *MissingBlockError
	if !errors.As(err, &miss) {
		t.Fatalf("error = %v, want MissingBlockError", err)
	}
}

// TestEvictAbsentError checks that evicting a block that is not resident is
// rejected.
func TestEvictAbsentError(t *testing.T) {
	seq, _ := core.ParseSequence("a b")
	in := core.SingleDisk(seq, 2, 2).WithInitialCache(0)
	sched := &core.Schedule{Fetches: []core.Fetch{core.NewFetch(0, 0, 1, 5)}}
	_, err := Run(in, sched, Options{})
	var ev *EvictAbsentError
	if !errors.As(err, &ev) {
		t.Fatalf("error = %v, want EvictAbsentError", err)
	}
}

// TestRedundantFetchError checks that fetching an already-resident block is
// rejected by default and dropped under DropRedundantFetches.
func TestRedundantFetchError(t *testing.T) {
	seq, _ := core.ParseSequence("a b")
	in := core.SingleDisk(seq, 2, 2).WithInitialCache(0, 1)
	sched := &core.Schedule{Fetches: []core.Fetch{core.NewFetch(0, 0, 0, core.NoBlock)}}
	_, err := Run(in, sched, Options{})
	var red *RedundantFetchError
	if !errors.As(err, &red) {
		t.Fatalf("error = %v, want RedundantFetchError", err)
	}
	res, err := Run(in, sched, Options{DropRedundantFetches: true})
	if err != nil {
		t.Fatalf("Run with drop: %v", err)
	}
	if res.DroppedFetches != 1 || res.FetchCount != 0 {
		t.Errorf("dropped=%d fetched=%d, want 1 and 0", res.DroppedFetches, res.FetchCount)
	}
}

// TestSanitize checks that Sanitize removes redundant fetches and keeps the
// schedule cost unchanged.
func TestSanitize(t *testing.T) {
	in := introSingleDiskInstance()
	sched := &core.Schedule{Fetches: []core.Fetch{
		core.NewFetch(0, 0, 3, core.NoBlock), // b4 is already cached: redundant
		core.NewFetch(0, 2, 4, 1),
		core.NewFetch(0, 5, 1, 2),
	}}
	clean, dropped, err := Sanitize(in, sched)
	if err != nil {
		t.Fatalf("Sanitize: %v", err)
	}
	if dropped != 1 || clean.Len() != 2 {
		t.Fatalf("dropped=%d len=%d, want 1 and 2", dropped, clean.Len())
	}
	res, err := Run(in, clean, Options{})
	if err != nil {
		t.Fatalf("Run(clean): %v", err)
	}
	if res.Stall != 1 {
		t.Errorf("stall = %d, want 1", res.Stall)
	}
}

// TestExtraCacheAccounting checks that fetches without evictions beyond the
// cache size are counted as extra locations and that the residency limit is
// enforced.
func TestExtraCacheAccounting(t *testing.T) {
	seq, _ := core.ParseSequence("a b c")
	in := core.SingleDisk(seq, 1, 2)
	sched := &core.Schedule{Fetches: []core.Fetch{
		core.NewFetch(0, 0, 0, core.NoBlock),
		core.NewFetch(0, 0, 1, core.NoBlock),
		core.NewFetch(0, 0, 2, core.NoBlock),
	}}
	res, err := Run(in, sched, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.ExtraCache != 2 {
		t.Errorf("extra cache = %d, want 2", res.ExtraCache)
	}
	_, err = Run(in, sched, Options{MaxResident: 2})
	var lim *ResidencyError
	if !errors.As(err, &lim) {
		t.Fatalf("error = %v, want ResidencyError", err)
	}
}

// TestEvictAtEnd checks the Lemma 3 style "fetch into an extra location and
// drop it at the end of the interval" operation.
func TestEvictAtEnd(t *testing.T) {
	seq, _ := core.ParseSequence("a b a b")
	in := core.SingleDisk(seq, 2, 2).WithInitialCache(0, 1)
	f := core.NewFetch(0, 0, 2, core.NoBlock) // block c is never requested
	f.EvictAtEnd = 2
	sched := &core.Schedule{Fetches: []core.Fetch{f}}
	res, err := Run(in, sched, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Stall != 0 {
		t.Errorf("stall = %d, want 0", res.Stall)
	}
	if res.ExtraCache != 1 {
		t.Errorf("extra cache = %d, want 1 (transient extra location)", res.ExtraCache)
	}
	if res.MaxResident != 3 {
		t.Errorf("max resident = %d, want 3", res.MaxResident)
	}
}

// TestEvictAtEndAbsent checks that an end-of-fetch eviction of an absent
// block is rejected.
func TestEvictAtEndAbsent(t *testing.T) {
	seq, _ := core.ParseSequence("a a a")
	in := core.SingleDisk(seq, 2, 2).WithInitialCache(0)
	f := core.NewFetch(0, 0, 1, core.NoBlock)
	f.EvictAtEnd = 7
	sched := &core.Schedule{Fetches: []core.Fetch{f}}
	_, err := Run(in, sched, Options{})
	var ev *EvictAbsentError
	if !errors.As(err, &ev) {
		t.Fatalf("error = %v, want EvictAbsentError", err)
	}
}

// TestFetchStartsDuringStall checks that an eligible fetch on a second disk
// is initiated while the processor stalls for the first disk.
func TestFetchStartsDuringStall(t *testing.T) {
	// Request a (disk 0, missing) then b (disk 1, missing).  Both fetches are
	// anchored at 0.  The stall for a lets b's fetch run in parallel, so the
	// second request stalls less.
	seq := core.Sequence{0, 1}
	diskOf := map[core.BlockID]int{0: 0, 1: 1}
	in := core.MultiDisk(seq, 2, 4, 2, diskOf)
	sched := &core.Schedule{Fetches: []core.Fetch{
		core.NewFetch(0, 0, 0, core.NoBlock),
		core.NewFetch(1, 0, 1, core.NoBlock),
	}}
	res, err := Run(in, sched, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Both fetches start at time 0; a arrives at 4 (stall 4), is served by 5;
	// b arrived at 4 already, so no further stall.
	if res.Stall != 4 {
		t.Errorf("stall = %d, want 4", res.Stall)
	}
	if res.Elapsed != 6 {
		t.Errorf("elapsed = %d, want 6", res.Elapsed)
	}
}

// TestSerialFetchesOnOneDisk checks that two fetches on the same disk cannot
// overlap even if both are eligible.
func TestSerialFetchesOnOneDisk(t *testing.T) {
	seq := core.Sequence{0, 1}
	in := core.SingleDisk(seq, 2, 4)
	sched := &core.Schedule{Fetches: []core.Fetch{
		core.NewFetch(0, 0, 0, core.NoBlock),
		core.NewFetch(0, 0, 1, core.NoBlock),
	}}
	res, err := Run(in, sched, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Fetch a: 0-4 (stall 4, serve at 5).  Fetch b starts at 4, done at 8:
	// request b starts at 5, stalls 3, served by 9.  Total stall 7.
	if res.Stall != 7 {
		t.Errorf("stall = %d, want 7", res.Stall)
	}
}

// TestStallConvenienceWrappers exercises Stall and Elapsed.
func TestStallConvenienceWrappers(t *testing.T) {
	in := introSingleDiskInstance()
	sched := &core.Schedule{Fetches: []core.Fetch{
		core.NewFetch(0, 2, 4, 1),
		core.NewFetch(0, 5, 1, 2),
	}}
	st, err := Stall(in, sched)
	if err != nil || st != 1 {
		t.Errorf("Stall = %d, %v; want 1, nil", st, err)
	}
	el, err := Elapsed(in, sched)
	if err != nil || el != 11 {
		t.Errorf("Elapsed = %d, %v; want 11, nil", el, err)
	}
	if _, err := Stall(in, &core.Schedule{Fetches: []core.Fetch{core.NewFetch(0, 0, 0, core.NoBlock)}}); err == nil {
		t.Errorf("Stall accepted an infeasible schedule")
	}
	if _, err := Elapsed(in, &core.Schedule{Fetches: []core.Fetch{core.NewFetch(0, 0, 0, core.NoBlock)}}); err == nil {
		t.Errorf("Elapsed accepted an infeasible schedule")
	}
}

// TestInvalidInputsRejected checks that Run validates instance and schedule.
func TestInvalidInputsRejected(t *testing.T) {
	seq, _ := core.ParseSequence("a")
	bad := core.SingleDisk(seq, 0, 1)
	if _, err := Run(bad, &core.Schedule{}, Options{}); err == nil {
		t.Errorf("invalid instance accepted")
	}
	good := core.SingleDisk(seq, 1, 1)
	badSched := &core.Schedule{Fetches: []core.Fetch{core.NewFetch(3, 0, 0, core.NoBlock)}}
	if _, err := Run(good, badSched, Options{}); err == nil {
		t.Errorf("invalid schedule accepted")
	}
}

// TestEventStrings exercises the trace event formatting.
func TestEventStrings(t *testing.T) {
	events := []Event{
		{Kind: EventServe, Request: 0, Block: 1},
		{Kind: EventStall, Request: 1, Duration: 3},
		{Kind: EventFetchStart, Block: 2, Evict: 1, Disk: 0},
		{Kind: EventFetchStart, Block: 2, Evict: core.NoBlock, Disk: 0},
		{Kind: EventFetchEnd, Block: 2, Disk: 1},
		{Kind: EventKind(99)},
	}
	for _, e := range events {
		if e.String() == "" {
			t.Errorf("empty String for %+v", e)
		}
	}
	kinds := []EventKind{EventServe, EventStall, EventFetchStart, EventFetchEnd, EventKind(42)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("empty String for kind %d", int(k))
		}
	}
}

// TestErrorStrings exercises the error formatting paths.
func TestErrorStrings(t *testing.T) {
	errs := []error{
		&MissingBlockError{Request: 1, Block: 2},
		&EvictAbsentError{FetchIndex: 0, Block: 3},
		&RedundantFetchError{FetchIndex: 2, Block: 4},
		&ResidencyError{Time: 5, Resident: 7, Limit: 6},
	}
	for _, err := range errs {
		if err.Error() == "" {
			t.Errorf("empty error string for %T", err)
		}
	}
}
