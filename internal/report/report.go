// Package report renders experiment results as fixed-width text tables and
// CSV, the two output formats of the benchmark harness.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple column-oriented result table.
type Table struct {
	// Title is printed above the table.
	Title string
	// Note is an optional free-form line printed below the title, typically
	// the expected shape of the result ("who wins, by roughly what factor").
	Note    string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v unless they are strings
// or float64 (rendered with three decimals).
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case string:
			row[i] = x
		case float64:
			row[i] = fmt.Sprintf("%.3f", x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned fixed-width columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (headers first).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
		}
		return s
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(esc(c))
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
