package report

import (
	"strings"
	"testing"
)

func TestTableString(t *testing.T) {
	tab := NewTable("demo", "name", "value")
	tab.Note = "a note"
	tab.AddRow("alpha", 1)
	tab.AddRow("beta", 2.5)
	text := tab.String()
	for _, want := range []string{"== demo ==", "a note", "name", "alpha", "2.500", "----"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendering missing %q:\n%s", want, text)
		}
	}
	// Columns are aligned: every data line has the value column starting at
	// the same offset as the header's.
	lines := strings.Split(strings.TrimSpace(text), "\n")
	headerIdx := strings.Index(lines[2], "value")
	if headerIdx < 0 {
		t.Fatalf("header line not found")
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow("x,y", `quote"inside`)
	csv := tab.CSV()
	if !strings.Contains(csv, `"x,y"`) || !strings.Contains(csv, `"quote""inside"`) {
		t.Errorf("CSV escaping wrong:\n%s", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Errorf("CSV header wrong:\n%s", csv)
	}
}

func TestEmptyTable(t *testing.T) {
	tab := NewTable("empty", "only")
	if tab.String() == "" || tab.CSV() == "" {
		t.Errorf("empty table should still render headers")
	}
}
