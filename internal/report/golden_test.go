package report_test

import (
	"testing"

	"pfcache/internal/service"
)

// TestTableWireGolden pins the exact rendering of a table that travelled
// through the service wire format: the sweep endpoint ships TableWire values
// and clients re-render them through report.Table, so the round trip
// (alignment, separator, note placement, title composition) must not drift.
func TestTableWireGolden(t *testing.T) {
	wire := service.TableWire{
		ID:      "E6",
		Title:   "Head-to-head",
		Note:    "combination should win",
		Headers: []string{"workload", "k", "stall"},
		Rows: [][]string{
			{"zipf", "4", "12"},
			{"sequential-scan", "8", "0"},
		},
	}
	// Cells are %-*s padded, so short values in the last column carry
	// trailing spaces; that is the shipped format, pinned here as-is.
	const golden = "== E6: Head-to-head ==\n" +
		"combination should win\n" +
		"workload         k  stall\n" +
		"---------------  -  -----\n" +
		"zipf             4  12   \n" +
		"sequential-scan  8  0    \n"
	if got := wire.Table().String(); got != golden {
		t.Errorf("wire table rendering drifted:\ngot:\n%s\nwant:\n%s", got, golden)
	}

	const goldenCSV = "workload,k,stall\n" +
		"zipf,4,12\n" +
		"sequential-scan,8,0\n"
	if got := wire.Table().CSV(); got != goldenCSV {
		t.Errorf("wire table CSV drifted:\ngot:\n%s\nwant:\n%s", got, goldenCSV)
	}
}
