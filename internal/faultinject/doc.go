// Package faultinject is the test harness for the serving tier's failure
// modes.  It injects two distinct fault families, on command and
// deterministically:
//
// # Network chaos (Proxy)
//
// A chaos proxy sits between a client (typically the pcfront tier under
// test) and one HTTP backend, injecting the failures real fleets produce —
// added latency, abrupt connection resets, 5xx replies, mid-body truncation,
// and whole-backend outages ("kill" / "restart").  The proxy is plain
// net/http plus connection hijacking, so it composes with httptest servers
// on both sides; the end-to-end chaos tests in internal/front drive it.
// These faults exercise the front tier's retry, health-check and breaker
// machinery: the computation below is always correct, the transport is not.
//
// # Numeric chaos (NumericInjector)
//
// A numeric injector corrupts the LP solver itself, through the lp package's
// fault hook (lp.SetFaultHook): basis-factorization entries are scaled,
// refactorizations are forced singular, or the pivot budget is exhausted.
// These faults exercise the solver's verification cascade and the service
// tier's solver-discarding — the transport is fine, the arithmetic is not.
// A corrupted solve must either be caught by the optimality certificate
// (lp.Verify) and re-solved down the engine cascade, or fail with a typed
// error the service maps to a retryable 500; a client must never observe a
// wrong schedule.
//
// The two families compose: the numeric end-to-end tests in internal/front
// run both at once to prove the stack heals arithmetic faults as invisibly
// as network ones.
package faultinject
