package faultinject

import (
	"sync"
	"sync/atomic"

	"pfcache/internal/lp"
)

// NumericInjector drives the lp package's fault hook: while installed, every
// Nth top-level solve in the process is handed a numeric fault on its first
// cascade rung, rotating through three shapes — a corrupted reported
// objective (deterministically caught by the certificate's recomputation),
// factorization corruption (every factor entry scaled, surfacing as a failed
// certificate, an untrusted terminal status or a singular basis), and a
// forced-singular refactorization.  All are faults the verification cascade
// must absorb: the damaged rung is abandoned and the cascade re-solves
// clean, so the served bytes stay identical to an unfaulted solve.
//
// InjectExhaustion arms a harsher fault — a one-pivot budget on every rung —
// that no cascade can absorb; it surfaces as lp.CascadeExhaustedError and
// tests the typed-500/retry path instead of the self-healing path.
//
// The underlying hook is process-global, so at most one injector may be
// installed at a time, and all solvers in the process (every in-process
// backend of an end-to-end test) see its faults.
type NumericInjector struct {
	every int

	mu      sync.Mutex
	solves  int // solves seen since Install
	exhaust int // pending InjectExhaustion plans

	// Counters of injected faults (for test assertions).
	Miscomputes atomic.Int64 // corrupted reported objectives
	Corruptions atomic.Int64 // corrupted basis factorizations
	Singulars   atomic.Int64 // forced-singular refactorizations
	Exhaustions atomic.Int64 // exhausted pivot budgets
}

// NewNumericInjector builds an injector that faults every Nth solve
// (every <= 1 means every solve).
func NewNumericInjector(every int) *NumericInjector {
	if every < 1 {
		every = 1
	}
	return &NumericInjector{every: every}
}

// Install points the process-global lp fault hook at this injector.
// Uninstall must be called before installing another.
func (n *NumericInjector) Install() { lp.SetFaultHook(n.plan) }

// Uninstall clears the process-global lp fault hook.
func (n *NumericInjector) Uninstall() { lp.SetFaultHook(nil) }

// InjectExhaustion arms count upcoming solves (cadence-independent: the very
// next count solves, whatever their position) with a one-pivot budget on
// every cascade rung, guaranteeing lp.CascadeExhaustedError.
func (n *NumericInjector) InjectExhaustion(count int) {
	n.mu.Lock()
	n.exhaust += count
	n.mu.Unlock()
}

// plan is the lp.SetFaultHook callback: called once per top-level solve, it
// decides that solve's fault schedule.
func (n *NumericInjector) plan() lp.FaultPlan {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.exhaust > 0 {
		n.exhaust--
		n.Exhaustions.Add(1)
		return func(rung int) *lp.Fault {
			return &lp.Fault{PivotBudget: 1}
		}
	}
	n.solves++
	if n.solves%n.every != 0 {
		return nil
	}
	// Rotate the three recoverable faults; all hit rung 0 only, so the
	// cascade's first clean re-solve heals them.
	var f *lp.Fault
	switch (n.solves/n.every - 1) % 3 {
	case 0:
		f = &lp.Fault{CorruptObjective: true}
		n.Miscomputes.Add(1)
	case 1:
		f = &lp.Fault{CorruptFactor: true, CorruptEntry: -1}
		n.Corruptions.Add(1)
	default:
		f = &lp.Fault{ForceSingular: true}
		n.Singulars.Add(1)
	}
	return func(rung int) *lp.Fault {
		if rung == 0 {
			return f
		}
		return nil
	}
}
