package faultinject

import (
	"errors"
	"math"
	"testing"

	"pfcache/internal/lp"
)

// productionLP is a small LP with a known unique optimum (objective -36 at
// (2,6)): maximise 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18.
func productionLP() *lp.Problem {
	p := lp.NewProblem(2)
	p.SetObjective(0, -3)
	p.SetObjective(1, -5)
	p.AddConstraint([]lp.Coef{{Var: 0, Value: 1}}, lp.LE, 4)
	p.AddConstraint([]lp.Coef{{Var: 1, Value: 2}}, lp.LE, 12)
	p.AddConstraint([]lp.Coef{{Var: 0, Value: 3}, {Var: 1, Value: 2}}, lp.LE, 18)
	return p
}

// TestNumericInjectorCadence proves the injector faults exactly every Nth
// solve, alternating corruption and forced singularity, and that every
// faulted solve still returns the clean optimum — the cascade absorbs the
// damage, visibly (Downgrades, counters) but without changing the answer.
func TestNumericInjectorCadence(t *testing.T) {
	p := productionLP()
	before := lp.StatsSnapshot()

	inj := NewNumericInjector(3)
	inj.Install()
	defer inj.Uninstall()

	solver := lp.NewSolver()
	faulted := 0
	for i := 1; i <= 9; i++ {
		sol, err := solver.Solve(p, lp.Options{Cascade: true})
		if err != nil {
			t.Fatalf("solve %d: %v", i, err)
		}
		if sol.Status != lp.StatusOptimal {
			t.Fatalf("solve %d: status %v", i, sol.Status)
		}
		if math.Abs(sol.Objective-(-36)) > 1e-6 {
			t.Fatalf("solve %d: objective %g, want -36", i, sol.Objective)
		}
		if i%3 == 0 {
			if sol.Downgrades == 0 {
				t.Errorf("solve %d should have been faulted but reported no downgrades", i)
			}
			faulted++
		} else if sol.Downgrades != 0 {
			t.Errorf("clean solve %d reported %d downgrades", i, sol.Downgrades)
		}
	}

	if got := inj.Miscomputes.Load() + inj.Corruptions.Load() + inj.Singulars.Load(); got != int64(faulted) {
		t.Errorf("injected %d faults, want %d", got, faulted)
	}
	if inj.Miscomputes.Load() == 0 || inj.Corruptions.Load() == 0 || inj.Singulars.Load() == 0 {
		t.Errorf("fault mix did not rotate: miscomputes=%d corruptions=%d singulars=%d",
			inj.Miscomputes.Load(), inj.Corruptions.Load(), inj.Singulars.Load())
	}
	after := lp.StatsSnapshot()
	if d := after.VerifyFailures - before.VerifyFailures; d < uint64(inj.Miscomputes.Load()) {
		t.Errorf("verify failures rose by %d, want >= %d miscomputes", d, inj.Miscomputes.Load())
	}
	if d := after.CascadeFallbacks - before.CascadeFallbacks; d < uint64(faulted) {
		t.Errorf("cascade fallbacks rose by %d, want >= %d", d, faulted)
	}
}

// TestNumericInjectorExhaustion proves InjectExhaustion is unabsorbable: a
// one-pivot budget on every rung exhausts the whole cascade into the typed
// error pair, and the very next solve is clean again.
func TestNumericInjectorExhaustion(t *testing.T) {
	p := productionLP()
	inj := NewNumericInjector(1 << 30) // cadence effectively off
	inj.Install()
	defer inj.Uninstall()

	inj.InjectExhaustion(1)
	solver := lp.NewSolver()
	_, err := solver.Solve(p, lp.Options{Cascade: true})
	var ce *lp.CascadeExhaustedError
	if !errors.As(err, &ce) {
		t.Fatalf("exhausted solve returned %v, want *lp.CascadeExhaustedError", err)
	}
	var pb *lp.PivotBudgetError
	if !errors.As(err, &pb) {
		t.Fatalf("exhaustion cause is %v, want *lp.PivotBudgetError via Unwrap", ce.Last)
	}
	if inj.Exhaustions.Load() != 1 {
		t.Errorf("exhaustion counter = %d, want 1", inj.Exhaustions.Load())
	}

	sol, err := solver.Solve(p, lp.Options{Cascade: true})
	if err != nil || sol.Status != lp.StatusOptimal || math.Abs(sol.Objective-(-36)) > 1e-6 {
		t.Fatalf("solve after exhaustion: sol=%+v err=%v, want the clean optimum", sol, err)
	}
}

// TestNumericInjectorUninstall proves Uninstall actually clears the global
// hook: solves afterwards see no faults at any cadence.
func TestNumericInjectorUninstall(t *testing.T) {
	p := productionLP()
	inj := NewNumericInjector(1) // fault every solve
	inj.Install()
	inj.Uninstall()

	sol, err := lp.Solve(p, lp.Options{Cascade: true})
	if err != nil || sol.Status != lp.StatusOptimal || sol.Downgrades != 0 {
		t.Fatalf("post-uninstall solve: sol=%+v err=%v, want a clean undowngraded optimum", sol, err)
	}
	if n := inj.Miscomputes.Load() + inj.Corruptions.Load() + inj.Singulars.Load(); n != 0 {
		t.Errorf("uninstalled injector still faulted %d solves", n)
	}
}
