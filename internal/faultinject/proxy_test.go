package faultinject

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// upstream returns a trivial backend echoing a fixed body.
func upstream(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "the quick brown fox jumps over the lazy dog")
	}))
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, url string) (*http.Response, []byte, error) {
	t.Helper()
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	resp, err := client.Get(url)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp, body, err
	}
	return resp, body, nil
}

func TestProxyForwardsCleanly(t *testing.T) {
	p := New(upstream(t).URL)
	defer p.Close()
	resp, body, err := get(t, p.URL())
	if err != nil || resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "quick brown fox") {
		t.Fatalf("clean forward: status=%v body=%q err=%v", resp, body, err)
	}
	if p.Forwarded.Load() != 1 {
		t.Errorf("forwarded = %d, want 1", p.Forwarded.Load())
	}
}

func TestProxyInjects500(t *testing.T) {
	p := New(upstream(t).URL)
	defer p.Close()
	p.InjectStatus500(1)
	resp, _, err := get(t, p.URL())
	if err != nil || resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("injected 500: resp=%v err=%v", resp, err)
	}
	// The budget is spent: the next request is clean.
	resp, _, err = get(t, p.URL())
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("after budget: resp=%v err=%v", resp, err)
	}
	if p.Statuses.Load() != 1 {
		t.Errorf("statuses = %d, want 1", p.Statuses.Load())
	}
}

func TestProxyInjectsReset(t *testing.T) {
	p := New(upstream(t).URL)
	defer p.Close()
	p.InjectResets(1)
	if _, _, err := get(t, p.URL()); err == nil {
		t.Fatal("injected reset produced a successful response")
	}
	if resp, _, err := get(t, p.URL()); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("after budget: resp=%v err=%v", resp, err)
	}
}

func TestProxyTruncatesBody(t *testing.T) {
	p := New(upstream(t).URL)
	defer p.Close()
	p.InjectTruncations(1)
	_, body, err := get(t, p.URL())
	if err == nil {
		t.Fatalf("truncated body read succeeded: %q", body)
	}
	if len(body) == 0 {
		t.Error("truncation sent no bytes at all; want a partial body")
	}
	if p.Truncations.Load() != 1 {
		t.Errorf("truncations = %d, want 1", p.Truncations.Load())
	}
	if resp, body, err := get(t, p.URL()); err != nil || resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("after budget: resp=%v err=%v", resp, err)
	}
}

func TestProxyDownAndRestart(t *testing.T) {
	p := New(upstream(t).URL)
	defer p.Close()
	p.SetDown(true)
	if _, _, err := get(t, p.URL()); err == nil {
		t.Fatal("request to a down backend succeeded")
	}
	p.SetDown(false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _, err := get(t, p.URL())
		if err == nil && resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("backend never came back after restart: resp=%v err=%v", resp, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestProxyLatency(t *testing.T) {
	p := New(upstream(t).URL)
	defer p.Close()
	p.SetLatency(60 * time.Millisecond)
	start := time.Now()
	if _, _, err := get(t, p.URL()); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 60*time.Millisecond {
		t.Errorf("latency injection: request took %v, want >= 60ms", d)
	}
}
