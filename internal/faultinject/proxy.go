package faultinject

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"
)

// Proxy forwards requests to a single upstream, applying injected faults.
// All methods are safe for concurrent use.
type Proxy struct {
	upstream string // base URL, no trailing slash
	server   *httptest.Server
	client   *http.Client

	mu      sync.Mutex
	latency time.Duration
	down    bool  // simulate a killed backend: reset every connection
	reset   int64 // budget of connection resets to inject
	status  int64 // budget of 500 replies to inject
	trunc   int64 // budget of mid-body truncations to inject

	// Counters of injected faults (for test assertions).
	Resets      atomic.Int64
	Statuses    atomic.Int64
	Truncations atomic.Int64
	Forwarded   atomic.Int64
}

// New starts a chaos proxy in front of upstream (a base URL such as an
// httptest server's URL).  Close must be called to stop it.
func New(upstream string) *Proxy {
	p := &Proxy{
		upstream: upstream,
		client:   &http.Client{Transport: &http.Transport{DisableKeepAlives: true}},
	}
	p.server = httptest.NewServer(http.HandlerFunc(p.handle))
	return p
}

// URL is the proxy's front address; point the system under test here.
func (p *Proxy) URL() string { return p.server.URL }

// Close stops the proxy listener.
func (p *Proxy) Close() {
	p.server.CloseClientConnections()
	p.server.Close()
}

// SetLatency adds a fixed delay before every forwarded request (0 clears).
func (p *Proxy) SetLatency(d time.Duration) {
	p.mu.Lock()
	p.latency = d
	p.mu.Unlock()
}

// SetDown simulates killing (true) or restarting (false) the backend: while
// down, every connection is reset without reaching the upstream, which is
// what a client observes of a freshly dead process whose port is still
// routable.
func (p *Proxy) SetDown(down bool) {
	p.mu.Lock()
	p.down = down
	p.mu.Unlock()
	if down {
		p.server.CloseClientConnections()
	}
}

// InjectResets makes the next n requests reset their connection mid-request.
func (p *Proxy) InjectResets(n int) {
	p.mu.Lock()
	p.reset += int64(n)
	p.mu.Unlock()
}

// InjectStatus500 makes the next n requests answer 500 without reaching the
// upstream.
func (p *Proxy) InjectStatus500(n int) {
	p.mu.Lock()
	p.status += int64(n)
	p.mu.Unlock()
}

// InjectTruncations makes the next n requests forward to the upstream but
// cut the response body in half mid-stream, closing the connection with the
// declared Content-Length unfulfilled.
func (p *Proxy) InjectTruncations(n int) {
	p.mu.Lock()
	p.trunc += int64(n)
	p.mu.Unlock()
}

// take consumes one unit from a fault budget.
func take(n *int64) bool {
	if *n > 0 {
		*n--
		return true
	}
	return false
}

func (p *Proxy) handle(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	latency := p.latency
	down := p.down
	doReset := false
	doStatus := false
	doTrunc := false
	// Health probes pass through un-faulted so the checker sees the backend's
	// true liveness; only a full outage (down) affects them.  This keeps the
	// injected fault budgets for real traffic.
	healthProbe := r.URL.Path == "/healthz" || r.URL.Path == "/readyz"
	if !down && !healthProbe {
		doReset = take(&p.reset)
		if !doReset {
			doStatus = take(&p.status)
		}
		if !doReset && !doStatus {
			doTrunc = take(&p.trunc)
		}
	}
	p.mu.Unlock()

	if latency > 0 {
		time.Sleep(latency)
	}
	if down || doReset {
		p.Resets.Add(1)
		hijackClose(w)
		return
	}
	if doStatus {
		p.Statuses.Add(1)
		http.Error(w, "faultinject: injected 500", http.StatusInternalServerError)
		return
	}

	// Forward to the upstream, buffering the reply so truncation can cut a
	// known-complete body at a known point.
	req, err := http.NewRequestWithContext(r.Context(), r.Method, p.upstream+r.URL.RequestURI(), r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := p.client.Do(req)
	if err != nil {
		http.Error(w, fmt.Sprintf("faultinject: upstream: %v", err), http.StatusBadGateway)
		return
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		http.Error(w, fmt.Sprintf("faultinject: upstream body: %v", err), http.StatusBadGateway)
		return
	}

	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set("Content-Length", fmt.Sprint(len(body)))

	if doTrunc && len(body) > 1 {
		p.Truncations.Add(1)
		w.WriteHeader(resp.StatusCode)
		w.Write(body[:len(body)/2])
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		hijackClose(w)
		return
	}

	p.Forwarded.Add(1)
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
}

// hijackClose tears the client connection down abruptly, producing the
// "connection reset by peer" / unexpected-EOF failures real dead backends
// cause.
func hijackClose(w http.ResponseWriter) {
	if hj, ok := w.(http.Hijacker); ok {
		if conn, _, err := hj.Hijack(); err == nil {
			conn.Close()
			return
		}
	}
	// Fallback when hijacking is unavailable: an empty 502 is still a
	// retryable failure for the front.
	w.WriteHeader(http.StatusBadGateway)
}
