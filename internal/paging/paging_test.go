package paging

import (
	"math/rand"
	"testing"

	"pfcache/internal/core"
)

func seqOf(s string) core.Sequence {
	seq, _ := core.ParseSequence(s)
	return seq
}

func TestMINClassicExample(t *testing.T) {
	// Classic Belady example: a b c d a b e a b c d e with k = 3 and an
	// empty initial cache has 7 faults under MIN.
	seq := seqOf("a b c d a b e a b c d e")
	dec := MIN(seq, 3, nil)
	if got := Faults(dec); got != 7 {
		t.Fatalf("MIN faults = %d, want 7", got)
	}
}

func TestMINVictimChoice(t *testing.T) {
	// After a b c with k=3, the fault on d must evict the block whose next
	// reference is furthest: sequence a b c d a b -> evict c.
	seq := seqOf("a b c d a b")
	dec := MIN(seq, 3, nil)
	if len(dec) != 4 {
		t.Fatalf("faults = %d, want 4", len(dec))
	}
	last := dec[3]
	if last.Block != 3 || last.Victim != 2 {
		t.Fatalf("MIN decision = %v, want load b3 evict b2", last)
	}
}

func TestMINWithInitialCache(t *testing.T) {
	seq := seqOf("a b c")
	dec := MIN(seq, 3, []core.BlockID{0, 1, 2})
	if len(dec) != 0 {
		t.Fatalf("expected no faults with a warm cache, got %v", dec)
	}
}

func TestLRUOrder(t *testing.T) {
	// a b c d with k = 3: the fault on d evicts a (least recently used).
	seq := seqOf("a b c d")
	dec := LRU(seq, 3, nil)
	if len(dec) != 4 {
		t.Fatalf("faults = %d, want 4", len(dec))
	}
	if dec[3].Victim != 0 {
		t.Fatalf("LRU victim = %v, want b0", dec[3].Victim)
	}
}

func TestLRUInitialCacheAging(t *testing.T) {
	// Initial cache [a b]; requesting c must evict a, the older initial block.
	seq := core.Sequence{2}
	dec := LRU(seq, 2, []core.BlockID{0, 1})
	if len(dec) != 1 || dec[0].Victim != 0 {
		t.Fatalf("LRU with warm cache = %v, want evict b0", dec)
	}
}

func TestFIFOOrder(t *testing.T) {
	// a b c a d with k = 3: FIFO evicts a on the fault for d even though a
	// was just used.
	seq := seqOf("a b c a d")
	dec := FIFO(seq, 3, nil)
	if len(dec) != 4 {
		t.Fatalf("faults = %d, want 4", len(dec))
	}
	if dec[3].Victim != 0 {
		t.Fatalf("FIFO victim = %v, want b0", dec[3].Victim)
	}
}

func TestRunDispatchAndStrings(t *testing.T) {
	seq := seqOf("a b a c")
	for _, p := range []Policy{PolicyMIN, PolicyLRU, PolicyFIFO} {
		dec := Run(p, seq, 2, nil)
		if len(dec) == 0 {
			t.Errorf("%v produced no decisions", p)
		}
		if p.String() == "" {
			t.Errorf("empty policy name")
		}
		for _, d := range dec {
			if d.String() == "" {
				t.Errorf("empty decision string")
			}
		}
	}
	if Policy(99).String() == "" {
		t.Errorf("unknown policy has empty name")
	}
}

func TestRunPanicsOnUnknownPolicy(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for unknown policy")
		}
	}()
	Run(Policy(99), seqOf("a"), 1, nil)
}

// TestMINOptimality checks on random small sequences that MIN never incurs
// more faults than LRU or FIFO (Belady's optimality), and that every policy
// incurs at least the number of distinct blocks beyond the initial cache.
func TestMINOptimality(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 5 + rng.Intn(40)
		blocks := 2 + rng.Intn(6)
		k := 1 + rng.Intn(4)
		seq := make(core.Sequence, n)
		for i := range seq {
			seq[i] = core.BlockID(rng.Intn(blocks))
		}
		min := Faults(MIN(seq, k, nil))
		lru := Faults(LRU(seq, k, nil))
		fifo := Faults(FIFO(seq, k, nil))
		if min > lru || min > fifo {
			t.Fatalf("trial %d: MIN=%d LRU=%d FIFO=%d on %v (k=%d)", trial, min, lru, fifo, seq, k)
		}
		distinct := len(seq.Distinct())
		lower := distinct
		if lower > 0 && min < lowerBoundColdMisses(seq, k) {
			t.Fatalf("trial %d: MIN=%d below cold-miss bound", trial, min)
		}
	}
}

// lowerBoundColdMisses returns the number of distinct blocks, the trivial
// lower bound on faults with an empty initial cache.
func lowerBoundColdMisses(seq core.Sequence, k int) int {
	return len(seq.Distinct())
}

// TestFaultsMatchCacheSimulation replays MIN decisions through an explicit
// cache and verifies that every request is a hit unless a decision is
// recorded at that position (i.e. the decision list is consistent).
func TestFaultsMatchCacheSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 5 + rng.Intn(30)
		blocks := 2 + rng.Intn(5)
		k := 1 + rng.Intn(4)
		seq := make(core.Sequence, n)
		for i := range seq {
			seq[i] = core.BlockID(rng.Intn(blocks))
		}
		for _, p := range []Policy{PolicyMIN, PolicyLRU, PolicyFIFO} {
			dec := Run(p, seq, k, nil)
			byPos := make(map[int]Decision)
			for _, d := range dec {
				byPos[d.Pos] = d
			}
			cache := make(map[core.BlockID]bool)
			for pos, b := range seq {
				d, faulted := byPos[pos]
				if cache[b] {
					if faulted {
						t.Fatalf("%v: fault recorded on a hit at %d", p, pos)
					}
					continue
				}
				if !faulted {
					t.Fatalf("%v: miss at %d not recorded", p, pos)
				}
				if d.Block != b {
					t.Fatalf("%v: decision block %v, want %v", p, d.Block, b)
				}
				if d.Victim != core.NoBlock {
					if !cache[d.Victim] {
						t.Fatalf("%v: victim %v not cached", p, d.Victim)
					}
					delete(cache, d.Victim)
				} else if len(cache) >= k {
					t.Fatalf("%v: no victim but cache full", p)
				}
				cache[b] = true
				if len(cache) > k {
					t.Fatalf("%v: cache overflow", p)
				}
			}
		}
	}
}
