// Package paging implements classical demand-paging replacement policies:
// Belady's optimal offline algorithm MIN, LRU and FIFO.
//
// These policies are substrates for the integrated prefetching/caching
// algorithms of the paper: the Conservative algorithm performs exactly the
// block replacements of MIN while starting each fetch as early as the chosen
// eviction allows, and LRU/FIFO serve as classical baselines in the
// experiment harness.  The policies operate purely on the request sequence
// and cache size; fetch timing is layered on top by package single.
package paging

import (
	"fmt"

	"pfcache/internal/core"
)

// Decision records one page fault of a replacement policy: at request
// position Pos the missing block Block was brought in, evicting Victim.
// Victim is core.NoBlock when a free cache location was used.
type Decision struct {
	// Pos is the 0-based position of the faulting request.
	Pos int
	// Block is the block that was missing and is brought into the cache.
	Block core.BlockID
	// Victim is the evicted block, or core.NoBlock if a free location was used.
	Victim core.BlockID
}

// String renders the decision.
func (d Decision) String() string {
	if d.Victim == core.NoBlock {
		return fmt.Sprintf("r%d: load %v", d.Pos+1, d.Block)
	}
	return fmt.Sprintf("r%d: load %v evict %v", d.Pos+1, d.Block, d.Victim)
}

// Policy identifies a demand-paging replacement policy.
type Policy int

// The supported replacement policies.
const (
	// PolicyMIN is Belady's optimal offline policy: evict the cached block
	// whose next reference is furthest in the future.
	PolicyMIN Policy = iota
	// PolicyLRU evicts the least recently used block.
	PolicyLRU
	// PolicyFIFO evicts the block that entered the cache first.
	PolicyFIFO
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyMIN:
		return "MIN"
	case PolicyLRU:
		return "LRU"
	case PolicyFIFO:
		return "FIFO"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Run simulates demand paging with the given policy on the sequence using a
// cache of k locations, starting from the given initial cache contents, and
// returns the fault decisions in request order.
func Run(policy Policy, seq core.Sequence, k int, initial []core.BlockID) []Decision {
	switch policy {
	case PolicyMIN:
		return MIN(seq, k, initial)
	case PolicyLRU:
		return LRU(seq, k, initial)
	case PolicyFIFO:
		return FIFO(seq, k, initial)
	default:
		panic(fmt.Sprintf("paging: unknown policy %d", int(policy)))
	}
}

// MIN simulates Belady's optimal offline replacement policy and returns its
// fault decisions.  On a fault with a full cache it evicts the cached block
// whose next reference is furthest in the future (ties broken by smaller
// BlockID for determinism).
func MIN(seq core.Sequence, k int, initial []core.BlockID) []Decision {
	ix := core.NewIndex(seq)
	cache := newCacheSet(k, initial)
	var out []Decision
	for pos, b := range seq {
		if cache.contains(b) {
			continue
		}
		victim := core.NoBlock
		if cache.full() {
			victim, _ = ix.FurthestNext(cache.members(), pos)
			cache.remove(victim)
		}
		cache.add(b)
		out = append(out, Decision{Pos: pos, Block: b, Victim: victim})
	}
	return out
}

// LRU simulates least-recently-used replacement and returns its fault
// decisions.
func LRU(seq core.Sequence, k int, initial []core.BlockID) []Decision {
	cache := newCacheSet(k, initial)
	lastUse := make(map[core.BlockID]int)
	// Initial blocks are treated as used before the sequence starts, in the
	// order given (earlier entries are older).
	for i, b := range initial {
		lastUse[b] = -len(initial) + i
	}
	var out []Decision
	for pos, b := range seq {
		if cache.contains(b) {
			lastUse[b] = pos
			continue
		}
		victim := core.NoBlock
		if cache.full() {
			oldest := core.NoBlock
			oldestUse := 0
			for _, c := range cache.members() {
				u := lastUse[c]
				if oldest == core.NoBlock || u < oldestUse || (u == oldestUse && c < oldest) {
					oldest, oldestUse = c, u
				}
			}
			victim = oldest
			cache.remove(victim)
		}
		cache.add(b)
		lastUse[b] = pos
		out = append(out, Decision{Pos: pos, Block: b, Victim: victim})
	}
	return out
}

// FIFO simulates first-in-first-out replacement and returns its fault
// decisions.
func FIFO(seq core.Sequence, k int, initial []core.BlockID) []Decision {
	cache := newCacheSet(k, initial)
	var queue []core.BlockID
	queue = append(queue, initial...)
	var out []Decision
	for pos, b := range seq {
		if cache.contains(b) {
			continue
		}
		victim := core.NoBlock
		if cache.full() {
			victim = queue[0]
			queue = queue[1:]
			cache.remove(victim)
		}
		cache.add(b)
		queue = append(queue, b)
		out = append(out, Decision{Pos: pos, Block: b, Victim: victim})
	}
	return out
}

// Faults returns the number of faults, i.e. len(decisions); it exists for
// readability at call sites.
func Faults(decisions []Decision) int { return len(decisions) }

// cacheSet is a small set of blocks with a capacity.
type cacheSet struct {
	k   int
	set map[core.BlockID]bool
}

func newCacheSet(k int, initial []core.BlockID) *cacheSet {
	c := &cacheSet{k: k, set: make(map[core.BlockID]bool, k)}
	for _, b := range initial {
		c.set[b] = true
	}
	return c
}

func (c *cacheSet) contains(b core.BlockID) bool { return c.set[b] }
func (c *cacheSet) full() bool                   { return len(c.set) >= c.k }
func (c *cacheSet) add(b core.BlockID)           { c.set[b] = true }
func (c *cacheSet) remove(b core.BlockID)        { delete(c.set, b) }

// members returns the cached blocks in increasing BlockID order-independent
// slice form; callers that need determinism sort or use Index helpers that
// break ties deterministically.
func (c *cacheSet) members() []core.BlockID {
	out := make([]core.BlockID, 0, len(c.set))
	for b := range c.set {
		out = append(out, b)
	}
	return out
}
