package opt

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"pfcache/internal/core"
)

// The parallel branch-and-bound driver (Options.Workers > 1).  The open list
// is sharded across workers — each worker owns a mutex-guarded bucket queue
// and a stable chunked node arena — with work stealing on exhaustion, a
// shared atomic incumbent, and a shared mutex-sharded closed table keyed on
// canonicalized states.  Invariants (argued in doc.go):
//
//   - Node records are immutable once published: an improved path to a state
//     allocates a NEW record and atomically redirects the table entry's ref,
//     so readers (thieves popping stolen refs, reconstruction) never observe
//     a half-written record.  Publication happens-before consumption via the
//     queue and shard mutexes; arena chunks are published with atomic
//     pointers so a thief can dereference a victim's record while the victim
//     keeps allocating.
//   - The search is run to exhaustion under incumbent pruning (f >= incumbent
//     is discarded; goals update the incumbent by CAS-min), so the returned
//     stall is the exact optimum regardless of interleaving: a strictly
//     improving path always has f below every incumbent value that existed
//     before its goal was recorded, hence is never pruned.  Stall/elapsed are
//     therefore deterministic; effort counters are not.
//   - Termination: a pending counter is incremented before every queue push
//     and decremented after the popped item is fully processed (its children
//     pushed).  pending == 0 means no queued work and no in-flight
//     expansions.  An abort flag (MaxStates exhaustion, worker panic) breaks
//     the idle-spin so exhaustion failures cannot deadlock the join.
const (
	chunkShift = 12
	chunkSize  = 1 << chunkShift
	chunkMask  = chunkSize - 1

	// maxWorkers caps Options.Workers (the global ref encoding and any sane
	// machine allow far more than this).
	maxWorkers = 64
)

// testWorkerFault, when non-nil, is invoked by each worker as it starts; the
// parallel failure-edge tests use it to inject a panic into a live worker.
var testWorkerFault func(worker int)

// workerArena is a chunked node store whose records never move: chunk
// pointers are published atomically into a fixed-length slot slice, so
// records can be dereferenced by other goroutines that learned the index
// through a queue or table (both mutex-guarded, providing happens-before for
// the record contents written prior to publication).
type workerArena struct {
	chunks []atomic.Pointer[[chunkSize]nodeRec]
	n      int32
}

func newWorkerArena(maxRecs int) *workerArena {
	return &workerArena{chunks: make([]atomic.Pointer[[chunkSize]nodeRec], maxRecs>>chunkShift+1)}
}

// alloc reserves the next record index, or -1 when the arena is full (the
// caller aborts the search with a state-budget error).
func (a *workerArena) alloc() int32 {
	idx := a.n
	ci := int(idx >> chunkShift)
	if ci >= len(a.chunks) {
		return -1
	}
	if a.chunks[ci].Load() == nil {
		a.chunks[ci].Store(new([chunkSize]nodeRec))
	}
	a.n++
	return idx
}

func (a *workerArena) rec(idx int32) *nodeRec {
	c := a.chunks[idx>>chunkShift].Load()
	return &c[idx&chunkMask]
}

// A global node reference packs the owning worker (plus one, so 0 stays the
// nil sentinel) and the index within its arena.
func globalRef(worker int, idx int32) int64 { return int64(worker+1)<<32 | int64(uint32(idx)) }
func refWorker(ref int64) int               { return int(ref>>32) - 1 }
func refIndex(ref int64) int32              { return int32(uint32(ref)) }

// pEntry is one closed-table entry: the canonical key, the ref of the best
// known record for the class, and its g (path cost) and h.  ref == 0 marks
// an empty slot.
type pEntry struct {
	key  stateKey
	ref  int64
	g, h int32
}

// pShard is one mutex-guarded slice of the closed table (linear probing,
// power-of-two slots, grown at 3/4 load).
type pShard struct {
	mu    sync.Mutex
	slots []pEntry
	count int
}

const numShards = 64 // power of two

func (sh *pShard) lookup(key *stateKey, hash uint64) *pEntry {
	mask := uint64(len(sh.slots) - 1)
	for i := hash & mask; ; i = (i + 1) & mask {
		e := &sh.slots[i]
		if e.ref == 0 {
			return nil
		}
		if e.key == *key {
			return e
		}
	}
}

// insert adds a new entry; the shard lock must be held and the key absent.
func (sh *pShard) insert(e pEntry) {
	if (sh.count+1)*4 >= len(sh.slots)*3 {
		old := sh.slots
		sh.slots = make([]pEntry, 2*len(old))
		for i := range old {
			if old[i].ref != 0 {
				sh.place(&old[i])
			}
		}
	}
	sh.place(&e)
	sh.count++
}

func (sh *pShard) place(e *pEntry) {
	mask := uint64(len(sh.slots) - 1)
	i := e.key.hash() & mask
	for sh.slots[i].ref != 0 {
		i = (i + 1) & mask
	}
	sh.slots[i] = *e
}

// pQueue is a worker's mutex-guarded bucket queue of global refs, keyed by f.
type pQueue struct {
	mu      sync.Mutex
	buckets [][]int64
	cur     int
	count   int
}

func (q *pQueue) push(f int, ref int64) {
	q.mu.Lock()
	for f >= len(q.buckets) {
		q.buckets = append(q.buckets, nil)
	}
	q.buckets[f] = append(q.buckets[f], ref)
	if f < q.cur {
		q.cur = f
	}
	q.count++
	q.mu.Unlock()
}

func (q *pQueue) pop() (ref int64, f int, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.count == 0 {
		return 0, 0, false
	}
	for len(q.buckets[q.cur]) == 0 {
		q.cur++
	}
	b := q.buckets[q.cur]
	ref = b[len(b)-1]
	q.buckets[q.cur] = b[:len(b)-1]
	q.count--
	return ref, q.cur, true
}

// stealHalf removes up to half (at least one) of the OLDEST entries of the
// victim's lowest non-empty bucket.  Taking from the front leaves the
// victim's LIFO end untouched, which keeps its depth-first momentum.
func (q *pQueue) stealHalf() (f int, items []int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.count == 0 {
		return 0, nil
	}
	for len(q.buckets[q.cur]) == 0 {
		q.cur++
	}
	b := q.buckets[q.cur]
	k := (len(b) + 1) / 2
	items = append([]int64(nil), b[:k]...)
	q.buckets[q.cur] = b[k:]
	q.count -= k
	return q.cur, items
}

func (q *pQueue) pushMany(f int, items []int64) {
	q.mu.Lock()
	for f >= len(q.buckets) {
		q.buckets = append(q.buckets, nil)
	}
	q.buckets[f] = append(q.buckets[f], items...)
	if f < q.cur {
		q.cur = f
	}
	q.count += len(items)
	q.mu.Unlock()
}

// pWorker is one search worker's private state.
type pWorker struct {
	arena   *workerArena
	queue   pQueue
	fetches []fetchAction
	buf     succBuf
	hs      *hscratch

	expanded  int
	generated int
	pruned    int
	dupHits   int
	prunedDom int
}

// pGoal records the best goal transition found so far, under its own mutex.
type pGoal struct {
	mu      sync.Mutex
	found   bool
	g       int32
	cost    int32
	anchor  int32
	parent  int64
	fetches []fetchAction
}

// pSearch is the shared state of one parallel run.
type pSearch struct {
	s       *searcher
	workers []*pWorker
	shards  [numShards]pShard

	incumbent atomic.Int64 // best known total stall (math.MaxInt32 when none)
	tableSize atomic.Int64
	pending   atomic.Int64
	abort     atomic.Bool
	tooLarge  atomic.Bool

	panicMu  sync.Mutex
	panicVal any

	goal pGoal
}

func (p *pSearch) deref(ref int64) *nodeRec {
	return p.workers[refWorker(ref)].arena.rec(refIndex(ref))
}

func (p *pSearch) shardFor(hash uint64) *pShard {
	return &p.shards[hash&(numShards-1)]
}

// runParallel is the Workers > 1 entry point, called from searcher.run.
func (s *searcher) runParallel() (*Result, error) {
	w := s.opts.Workers
	if w > maxWorkers {
		w = maxWorkers
	}
	if s.opts.Bound == BoundGreedy {
		s.seedIncumbent()
	}
	start := s.initialKey()
	h0 := s.heuristic(&start, s.hs)
	s.generated++
	if s.incumbent >= 0 && int(h0) >= s.incumbent {
		// Same early exit as the sequential engine: the root's lower bound
		// already reaches the incumbent, so the seed is proven optimal.
		s.pruned++
		s.recordStats()
		res := s.result(s.seedStall, s.seedSched.Clone(), true)
		res.Workers = w
		res.WorkerExpanded = make([]int, w)
		return res, nil
	}
	p := &pSearch{s: s, workers: make([]*pWorker, w)}
	maxRecs := s.maxStates()
	for i := range p.workers {
		p.workers[i] = &pWorker{arena: newWorkerArena(maxRecs), hs: newHScratch(s.n)}
	}
	for i := range p.shards {
		p.shards[i].slots = make([]pEntry, minTableSlots/numShards)
	}
	if s.incumbent >= 0 {
		p.incumbent.Store(int64(s.incumbent))
	} else {
		p.incumbent.Store(math.MaxInt32)
	}

	// Root: worker 0 owns the start record.
	rootIdx := p.workers[0].arena.alloc()
	root := p.workers[0].arena.rec(rootIdx)
	root.key = start
	root.h = h0
	rootRef := globalRef(0, rootIdx)
	tstart := s.tableKey(&start)
	sh := p.shardFor(tstart.hash())
	sh.insert(pEntry{key: tstart, ref: rootRef, g: 0, h: h0})
	p.tableSize.Store(1)
	p.pending.Store(1)
	p.workers[0].generated = 1 // the root, mirroring the sequential engine
	p.workers[0].queue.push(int(h0), rootRef)

	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					p.panicMu.Lock()
					if p.panicVal == nil {
						p.panicVal = r
					}
					p.panicMu.Unlock()
					p.abort.Store(true)
				}
			}()
			if testWorkerFault != nil {
				testWorkerFault(worker)
			}
			p.workerLoop(worker)
		}(i)
	}
	wg.Wait()

	res := p.finish(w)
	if p.panicVal != nil {
		return nil, fmt.Errorf("opt: parallel worker panicked: %v", p.panicVal)
	}
	if p.tooLarge.Load() {
		return nil, &TooLargeError{States: s.maxStates()}
	}
	if p.goal.found && (s.incumbent < 0 || int(p.goal.g) < s.seedStall) {
		res.Stall = int(p.goal.g)
		res.Elapsed = s.n + res.Stall
		res.Schedule = p.reconstruct()
		return res, nil
	}
	if s.seedSched != nil {
		res.Stall = s.seedStall
		res.Elapsed = s.n + res.Stall
		res.Schedule = s.seedSched.Clone()
		res.SeedOptimal = true
		return res, nil
	}
	return nil, fmt.Errorf("opt: search exhausted without serving every request (internal error)")
}

// workerLoop drains the worker's own queue, stealing from siblings when it
// runs dry, until the whole search is exhausted or aborted.
func (p *pSearch) workerLoop(worker int) {
	w := p.workers[worker]
	for {
		if p.abort.Load() {
			return
		}
		ref, f, ok := w.queue.pop()
		if !ok {
			if p.trySteal(worker) {
				continue
			}
			if p.pending.Load() == 0 {
				return
			}
			runtime.Gosched()
			continue
		}
		p.process(worker, ref, f)
		p.pending.Add(-1)
	}
}

// trySteal moves half of some sibling's cheapest bucket into this worker's
// queue; it reports whether anything was stolen.
func (p *pSearch) trySteal(worker int) bool {
	for off := 1; off < len(p.workers); off++ {
		victim := p.workers[(worker+off)%len(p.workers)]
		if f, items := victim.queue.stealHalf(); len(items) > 0 {
			p.workers[worker].queue.pushMany(f, items)
			return true
		}
	}
	return false
}

// process expands one popped node unless it is stale (the table holds a
// better record for its class) or pruned by the incumbent.
func (p *pSearch) process(worker int, ref int64, f int) {
	w := p.workers[worker]
	if int64(f) >= p.incumbent.Load() {
		return
	}
	rec := p.deref(ref)
	tkey := p.s.tableKey(&rec.key)
	hash := tkey.hash()
	sh := p.shardFor(hash)
	sh.mu.Lock()
	e := sh.lookup(&tkey, hash)
	stale := e == nil || e.ref != ref
	sh.mu.Unlock()
	if stale {
		return
	}
	w.expanded++
	key := rec.key
	g := rec.g
	p.s.generate(&key, &w.buf)
	for i := range w.buf.recs {
		sr := &w.buf.recs[i]
		p.relaxParallel(worker, ref, g, sr)
	}
}

// relaxParallel merges one staged successor into the shared table, pushing
// improved records onto the worker's own queue and routing goal states to
// the incumbent.
func (p *pSearch) relaxParallel(worker int, parent int64, parentG int32, sr *succRec) {
	s := p.s
	w := p.workers[worker]
	w.generated++
	newG := parentG + sr.cost
	if int(sr.key.served) == s.n {
		p.recordGoal(worker, parent, newG, sr)
		return
	}
	tkey := s.tableKey(&sr.key)
	hash := tkey.hash()
	sh := p.shardFor(hash)

	var h int32
	haveH := false
	for {
		sh.mu.Lock()
		e := sh.lookup(&tkey, hash)
		if e != nil {
			if s.dominance && p.deref(e.ref).key != sr.key {
				w.prunedDom++
			} else {
				w.dupHits++
			}
			if e.g <= newG {
				sh.mu.Unlock()
				return
			}
			h = e.h
			if int64(newG)+int64(h) >= p.incumbent.Load() {
				sh.mu.Unlock()
				w.pruned++
				return
			}
			idx := w.arena.alloc()
			if idx < 0 {
				sh.mu.Unlock()
				p.tooLarge.Store(true)
				p.abort.Store(true)
				return
			}
			rec := w.arena.rec(idx)
			p.fillRec(rec, worker, parent, newG, h, sr)
			ref := globalRef(worker, idx)
			e.g = newG
			e.ref = ref
			sh.mu.Unlock()
			p.pending.Add(1)
			w.queue.push(int(newG)+int(h), ref)
			return
		}
		if haveH {
			// Insert a fresh entry (h computed while unlocked).
			idx := w.arena.alloc()
			if idx < 0 {
				sh.mu.Unlock()
				p.tooLarge.Store(true)
				p.abort.Store(true)
				return
			}
			rec := w.arena.rec(idx)
			p.fillRec(rec, worker, parent, newG, h, sr)
			ref := globalRef(worker, idx)
			count := int(p.tableSize.Add(1))
			sh.insert(pEntry{key: tkey, ref: ref, g: newG, h: h})
			sh.mu.Unlock()
			if count > s.maxStates() {
				p.tooLarge.Store(true)
				p.abort.Store(true)
				return
			}
			p.pending.Add(1)
			w.queue.push(int(newG)+int(h), ref)
			return
		}
		// Compute h outside the lock (it walks the request tail), then
		// re-check: another worker may have inserted the class meanwhile.
		sh.mu.Unlock()
		h = s.heuristic(&sr.key, w.hs)
		if int64(newG)+int64(h) >= p.incumbent.Load() {
			w.pruned++
			return
		}
		haveH = true
	}
}

// fillRec writes an immutable node record prior to publication.  The caller
// holds the shard lock of the record's class; the record becomes reachable
// only through e.ref (same lock) or the queue push (queue lock), both of
// which order these writes before any reader.
func (p *pSearch) fillRec(rec *nodeRec, worker int, parent int64, g, h int32, sr *succRec) {
	w := p.workers[worker]
	off := int32(len(w.fetches))
	w.fetches = append(w.fetches, w.buf.fetchesOf(sr)...)
	rec.key = sr.key
	rec.g = g
	rec.h = h
	rec.cost = uint16(sr.cost)
	rec.parent = 0
	rec.anchor = sr.anchor
	rec.fetchOff = off
	rec.fetchCnt = sr.fetchCnt
	rec.parentRef = parent
}

// recordGoal lowers the shared incumbent and keeps the best goal transition
// for reconstruction.
func (p *pSearch) recordGoal(worker int, parent int64, g int32, sr *succRec) {
	for {
		cur := p.incumbent.Load()
		if int64(g) >= cur {
			return
		}
		if p.incumbent.CompareAndSwap(cur, int64(g)) {
			break
		}
	}
	w := p.workers[worker]
	p.goal.mu.Lock()
	if !p.goal.found || g < p.goal.g {
		p.goal.found = true
		p.goal.g = g
		p.goal.cost = sr.cost
		p.goal.anchor = sr.anchor
		p.goal.parent = parent
		p.goal.fetches = append(p.goal.fetches[:0], w.buf.fetchesOf(sr)...)
	}
	p.goal.mu.Unlock()
}

// reconstruct rebuilds the optimal schedule from the recorded goal by walking
// parent refs across the worker arenas (all immutable once the workers have
// joined) and replaying the chain through the shared buildSchedule.
func (p *pSearch) reconstruct() *core.Schedule {
	s := p.s
	var refs []int64
	for ref := p.goal.parent; ref != 0; ref = p.deref(ref).parentRef {
		refs = append(refs, ref)
	}
	steps := make([]chainStep, 0, len(refs)+1)
	for i := len(refs) - 2; i >= 0; i-- {
		rec := p.deref(refs[i])
		parent := p.deref(refs[i+1])
		wk := p.workers[refWorker(refs[i])]
		steps = append(steps, chainStep{
			serve:   rec.key.served == parent.key.served+1,
			cost:    int(rec.cost),
			anchor:  int(rec.anchor),
			minTime: int(parent.key.served) + int(parent.g),
			fetches: wk.fetches[rec.fetchOff : rec.fetchOff+int32(rec.fetchCnt)],
		})
	}
	last := p.deref(refs[0])
	steps = append(steps, chainStep{
		serve:   true,
		cost:    int(p.goal.cost),
		anchor:  int(p.goal.anchor),
		minTime: int(last.key.served) + int(last.g),
		fetches: p.goal.fetches,
	})
	return s.buildSchedule(steps)
}

// finish sums the per-worker counters into a Result shell (stall, schedule
// and seed fields are filled by runParallel) and the process-wide stats.
func (p *pSearch) finish(workers int) *Result {
	s := p.s
	res := &Result{
		Workers:        workers,
		WorkerExpanded: make([]int, workers),
		SeedAlgorithm:  s.seedName,
		SeedStall:      -1,
	}
	if s.seedSched != nil {
		res.SeedStall = s.seedStall
	}
	res.LandmarkHits = s.hs.landmarkHits // root evaluation
	var workerExpanded uint64
	for i, w := range p.workers {
		res.WorkerExpanded[i] = w.expanded
		res.StatesExpanded += w.expanded
		res.StatesGenerated += w.generated
		res.PrunedByBound += w.pruned
		res.DuplicateHits += w.dupHits
		res.PrunedByDominance += w.prunedDom
		res.LandmarkHits += w.hs.landmarkHits
		workerExpanded += uint64(w.expanded)
	}
	res.PeakTableSize = int(p.tableSize.Load())
	statSearches.Add(1)
	statExpanded.Add(uint64(res.StatesExpanded))
	statGenerated.Add(uint64(res.StatesGenerated))
	statPruned.Add(uint64(res.PrunedByBound))
	statDup.Add(uint64(res.DuplicateHits))
	statDom.Add(uint64(res.PrunedByDominance))
	statLandmark.Add(uint64(res.LandmarkHits))
	statWorkerExpand.Add(workerExpanded)
	casMax(&statWorkers, uint64(workers))
	casMax(&statPeak, uint64(res.PeakTableSize))
	return res
}
