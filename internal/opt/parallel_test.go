package opt

import (
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"

	"pfcache/internal/sim"
	"pfcache/internal/workload"
)

// TestParallelMatchesSequential is the parallel driver's core property test:
// across random multi-disk instances, Workers=4 must produce the same
// stall/elapsed as the sequential engine, a feasible schedule realising that
// stall, and per-worker expansion counts that sum to the total.
func TestParallelMatchesSequential(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		n := 10 + trial%8
		blocks := 5 + trial%4
		k := 2 + trial%3
		f := 1 + trial%4
		disks := 1 + trial%3
		seq := workload.Uniform(n, blocks, int64(4100+trial))
		in := workload.Instance(seq, k, f, disks, workload.AssignStripe, 0)

		seqRes, err := Optimal(in, Options{})
		if err != nil {
			t.Fatalf("trial %d: sequential: %v", trial, err)
		}
		parRes, err := Optimal(in, Options{Workers: 4})
		if err != nil {
			t.Fatalf("trial %d: parallel: %v", trial, err)
		}
		if parRes.Stall != seqRes.Stall || parRes.Elapsed != seqRes.Elapsed {
			t.Fatalf("trial %d: parallel stall/elapsed = %d/%d, sequential %d/%d",
				trial, parRes.Stall, parRes.Elapsed, seqRes.Stall, seqRes.Elapsed)
		}
		if parRes.Workers != 4 || len(parRes.WorkerExpanded) != 4 {
			t.Fatalf("trial %d: Workers = %d, WorkerExpanded = %v", trial, parRes.Workers, parRes.WorkerExpanded)
		}
		sum := 0
		for _, e := range parRes.WorkerExpanded {
			sum += e
		}
		if sum != parRes.StatesExpanded {
			t.Fatalf("trial %d: WorkerExpanded sums to %d, StatesExpanded = %d", trial, sum, parRes.StatesExpanded)
		}
		res, err := sim.Run(in, parRes.Schedule, sim.Options{})
		if err != nil {
			t.Fatalf("trial %d: parallel schedule infeasible: %v", trial, err)
		}
		if res.Stall != parRes.Stall {
			t.Fatalf("trial %d: parallel schedule executes with stall %d, reported %d", trial, res.Stall, parRes.Stall)
		}
	}
}

// TestParallelWorkers1BitIdentical pins Workers=1 (and Workers=0) to the
// sequential engine: the full Result — counters, seed fields, and the
// schedule itself — must be identical, because Workers<=1 routes to the very
// same code path.
func TestParallelWorkers1BitIdentical(t *testing.T) {
	seq := workload.Uniform(18, 8, 77)
	in := workload.Instance(seq, 3, 3, 2, workload.AssignStripe, 0)
	base, err := Optimal(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	one, err := Optimal(in, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, one) {
		t.Fatalf("Workers=1 result differs from sequential:\n  base: %+v\n  one:  %+v", base, one)
	}
}

// TestParallelWorkerPanicRecovery injects a panic into one worker and
// verifies the driver recovers it into an error instead of crashing the
// process or deadlocking the remaining workers.
func TestParallelWorkerPanicRecovery(t *testing.T) {
	var once sync.Once
	testWorkerFault = func(worker int) {
		if worker == 1 {
			once.Do(func() {})
			panic("injected worker fault")
		}
	}
	defer func() { testWorkerFault = nil }()
	seq := workload.Uniform(16, 7, 99)
	in := workload.Instance(seq, 3, 3, 2, workload.AssignStripe, 0)
	_, err := Optimal(in, Options{Workers: 4})
	if err == nil {
		t.Fatal("expected an error from the panicking worker")
	}
	if !strings.Contains(err.Error(), "injected worker fault") {
		t.Fatalf("error does not carry the panic value: %v", err)
	}
}

// TestParallelMaxStatesExhaustion drives the parallel driver into its state
// budget mid-run (work stealing active with 4 workers on a deliberately tiny
// budget) and verifies every worker unwinds into a TooLargeError rather than
// deadlocking on the pending counter.
func TestParallelMaxStatesExhaustion(t *testing.T) {
	seq := workload.Uniform(24, 10, 55)
	in := workload.Instance(seq, 3, 4, 3, workload.AssignStripe, 0)
	_, err := Optimal(in, Options{Workers: 4, MaxStates: 16, Bound: BoundNone})
	var tle *TooLargeError
	if !errors.As(err, &tle) {
		t.Fatalf("err = %v, want *TooLargeError", err)
	}
	if tle.States != 16 {
		t.Fatalf("TooLargeError.States = %d, want 16", tle.States)
	}
}

// TestParallelChaosIncumbentRace exercises incumbent updates racing prunes:
// with no greedy seed (Bound=none) every improving goal lowers the shared
// incumbent while other workers are mid-relaxation; run under -race in CI's
// chaos job.  Stall must stay deterministic across repetitions.
func TestParallelChaosIncumbentRace(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		seq := workload.Uniform(20, 9, int64(8800+trial))
		in := workload.Instance(seq, 3, 3, 3, workload.AssignStripe, 0)
		want, err := Optimal(in, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for rep := 0; rep < 3; rep++ {
			got, err := Optimal(in, Options{Workers: 8, Bound: BoundNone})
			if err != nil {
				t.Fatalf("trial %d rep %d: %v", trial, rep, err)
			}
			if got.Stall != want.Stall {
				t.Fatalf("trial %d rep %d: parallel stall %d, want %d", trial, rep, got.Stall, want.Stall)
			}
			res, err := sim.Run(in, got.Schedule, sim.Options{})
			if err != nil || res.Stall != got.Stall {
				t.Fatalf("trial %d rep %d: schedule check failed: stall=%d err=%v", trial, rep, res.Stall, err)
			}
		}
	}
}

// TestParallelSeedOptimal verifies the parallel driver proves a greedy seed
// optimal (returning SeedOptimal with the seed schedule) exactly like the
// sequential engine does when no strictly better path exists.
func TestParallelSeedOptimal(t *testing.T) {
	// A sequential scan with ample cache: prefetching hides every fetch, the
	// greedy seed already achieves the optimum.
	seq := workload.SequentialScan(12, 6)
	in := workload.Instance(seq, 4, 2, 2, workload.AssignStripe, 0)
	seqRes, err := Optimal(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := Optimal(in, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if parRes.Stall != seqRes.Stall {
		t.Fatalf("parallel stall %d, sequential %d", parRes.Stall, seqRes.Stall)
	}
	if seqRes.SeedOptimal != parRes.SeedOptimal {
		t.Fatalf("SeedOptimal: sequential %v, parallel %v", seqRes.SeedOptimal, parRes.SeedOptimal)
	}
}
