package opt

import (
	"container/heap"
	"fmt"
	"math/bits"

	"pfcache/internal/core"
)

// maxDisks is the largest number of disks supported by the state encoding.
const maxDisks = 8

// maxBlocks is the largest number of distinct blocks supported (the resident
// set is encoded as a 64-bit mask).
const maxBlocks = 64

// DefaultMaxStates is the default cap on the number of distinct states the
// search may create before giving up.
const DefaultMaxStates = 4_000_000

// Options configures the exhaustive search.
type Options struct {
	// ExtraCache is the number of cache locations available beyond the
	// instance's k.  The paper's sOPT(sigma, k) corresponds to ExtraCache = 0.
	ExtraCache int
	// Full enables full branching over every missing block and every eviction
	// victim.  The default (pruned) branching fetches the earliest-referenced
	// missing block per disk and evicts a furthest-referenced block, which is
	// optimal by standard exchange arguments; Full exists to validate the
	// pruning on small instances.
	Full bool
	// MaxStates caps the number of states (0 means DefaultMaxStates).
	MaxStates int
}

// Result is the outcome of an exhaustive search.
type Result struct {
	// Stall is the minimum total stall time.
	Stall int
	// Elapsed is the minimum elapsed time (n + Stall).
	Elapsed int
	// Schedule is an optimal schedule realising Stall.
	Schedule *core.Schedule
	// StatesExpanded counts the states popped from the priority queue.
	StatesExpanded int
}

// TooLargeError reports that the search exceeded its state budget.
type TooLargeError struct {
	States int
}

func (e *TooLargeError) Error() string {
	return fmt.Sprintf("opt: exhaustive search exceeded %d states; the instance is too large", e.States)
}

// Optimal computes a minimum-stall schedule for the instance by uniform-cost
// search.  It is exact but exponential in the worst case, so it is intended
// for the small instances used to validate the approximation algorithms and
// the linear-programming approach.
func Optimal(in *core.Instance, opts Options) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if in.Disks > maxDisks {
		return nil, fmt.Errorf("opt: at most %d disks supported, got %d", maxDisks, in.Disks)
	}
	blocks := in.Blocks()
	if len(blocks) > maxBlocks {
		return nil, fmt.Errorf("opt: at most %d distinct blocks supported, got %d", maxBlocks, len(blocks))
	}
	s := newSearcher(in, opts, blocks)
	return s.run()
}

// OptimalStall returns only the minimum stall time.
func OptimalStall(in *core.Instance, opts Options) (int, error) {
	r, err := Optimal(in, opts)
	if err != nil {
		return 0, err
	}
	return r.Stall, nil
}

// stateKey identifies a search state: the cursor position, the resident set,
// and for every disk the block being fetched (plus one) and its remaining
// fetch time.
type stateKey struct {
	served  int32
	cache   uint64
	flights [maxDisks]uint16
}

// fetchAction records one fetch initiation on a transition, for schedule
// reconstruction.
type fetchAction struct {
	disk   int
	block  int // block index
	victim int // block index, or -1 for a free location
}

// nodeInfo is the bookkeeping attached to each reached state.
type nodeInfo struct {
	cost      int
	parent    stateKey
	hasParent bool
	anchor    int // requests served when the transition's fetches were initiated
	fetches   []fetchAction
}

type searcher struct {
	in     *core.Instance
	opts   Options
	ix     *core.Index
	blocks []core.BlockID
	idxOf  map[core.BlockID]int
	diskOf []int // per block index
	cap    int   // cache capacity including extra locations

	nodes map[stateKey]*nodeInfo
	queue *costQueue
}

func newSearcher(in *core.Instance, opts Options, blocks []core.BlockID) *searcher {
	s := &searcher{
		in:     in,
		opts:   opts,
		ix:     core.NewIndex(in.Seq),
		blocks: blocks,
		idxOf:  make(map[core.BlockID]int, len(blocks)),
		diskOf: make([]int, len(blocks)),
		cap:    in.K + opts.ExtraCache,
		nodes:  make(map[stateKey]*nodeInfo),
		queue:  &costQueue{},
	}
	for i, b := range blocks {
		s.idxOf[b] = i
		s.diskOf[i] = in.Disk(b)
	}
	return s
}

func (s *searcher) maxStates() int {
	if s.opts.MaxStates > 0 {
		return s.opts.MaxStates
	}
	return DefaultMaxStates
}

// flight encoding helpers.

func flightOf(block, remaining int) uint16 { return uint16(block+1)<<8 | uint16(remaining) }

func flightBlock(f uint16) int     { return int(f>>8) - 1 }
func flightRemaining(f uint16) int { return int(f & 0xff) }

func (s *searcher) initialKey() stateKey {
	var key stateKey
	for _, b := range s.in.InitialCache {
		key.cache |= 1 << uint(s.idxOf[b])
	}
	return key
}

func (s *searcher) run() (*Result, error) {
	start := s.initialKey()
	s.nodes[start] = &nodeInfo{cost: 0}
	heap.Push(s.queue, costItem{key: start, cost: 0})
	n := s.in.N()
	expanded := 0
	for s.queue.Len() > 0 {
		item := heap.Pop(s.queue).(costItem)
		info := s.nodes[item.key]
		if info == nil || item.cost > info.cost {
			continue // stale queue entry
		}
		expanded++
		if int(item.key.served) == n {
			sched := s.reconstruct(item.key)
			return &Result{
				Stall:          info.cost,
				Elapsed:        n + info.cost,
				Schedule:       sched,
				StatesExpanded: expanded,
			}, nil
		}
		s.expand(item.key, info)
		if len(s.nodes) > s.maxStates() {
			return nil, &TooLargeError{States: s.maxStates()}
		}
	}
	return nil, fmt.Errorf("opt: search exhausted without serving every request (internal error)")
}

// expand generates the successors of a state.
func (s *searcher) expand(key stateKey, info *nodeInfo) {
	// Enumerate fetch-initiation combinations over idle disks, then advance.
	var combo []fetchAction
	s.enumerate(key, 0, key.cache, s.inFlightMask(key), combo, func(fetches []fetchAction, cache uint64, flights [maxDisks]uint16) {
		s.advance(key, info, fetches, cache, flights)
	})
}

// inFlightMask returns the mask of blocks currently being fetched.
func (s *searcher) inFlightMask(key stateKey) uint64 {
	var m uint64
	for d := 0; d < s.in.Disks; d++ {
		if key.flights[d] != 0 {
			m |= 1 << uint(flightBlock(key.flights[d]))
		}
	}
	return m
}

// enumerate recursively chooses, for each idle disk, whether and what to
// fetch, and calls emit for every combination.  cache and inflight are the
// working copies reflecting the choices made for disks < d.
func (s *searcher) enumerate(key stateKey, d int, cache uint64, inflight uint64, acc []fetchAction, emit func([]fetchAction, uint64, [maxDisks]uint16)) {
	if d == s.in.Disks {
		flights := key.flights
		for _, fa := range acc {
			flights[fa.disk] = flightOf(fa.block, s.in.F)
		}
		emit(acc, cache, flights)
		return
	}
	// Option 1: no new fetch on disk d.
	s.enumerate(key, d+1, cache, inflight, acc, emit)
	if key.flights[d] != 0 {
		return // disk busy: no other option
	}
	served := int(key.served)
	free := s.cap - bits.OnesCount64(cache) - bits.OnesCount64(inflight)
	for _, block := range s.fetchCandidates(d, served, cache, inflight) {
		for _, victim := range s.victimCandidates(served, cache, free) {
			newCache := cache
			if victim >= 0 {
				newCache &^= 1 << uint(victim)
			}
			fa := fetchAction{disk: d, block: block, victim: victim}
			s.enumerate(key, d+1, newCache, inflight|1<<uint(block), append(acc, fa), emit)
		}
	}
}

// fetchCandidates returns the block indices that may be fetched on disk d in
// the current state.  In pruned mode it is just the missing block on disk d
// with the earliest next reference; in full mode it is every missing block on
// disk d that is still referenced.
func (s *searcher) fetchCandidates(d, served int, cache, inflight uint64) []int {
	n := s.in.N()
	if !s.opts.Full {
		for p := served; p < n; p++ {
			bi := s.idxOf[s.in.Seq[p]]
			if s.diskOf[bi] != d {
				continue
			}
			if cache&(1<<uint(bi)) != 0 || inflight&(1<<uint(bi)) != 0 {
				continue
			}
			return []int{bi}
		}
		return nil
	}
	seen := make(map[int]bool)
	var out []int
	for p := served; p < n; p++ {
		bi := s.idxOf[s.in.Seq[p]]
		if s.diskOf[bi] != d || seen[bi] {
			continue
		}
		seen[bi] = true
		if cache&(1<<uint(bi)) != 0 || inflight&(1<<uint(bi)) != 0 {
			continue
		}
		out = append(out, bi)
	}
	return out
}

// victimCandidates returns the eviction choices: -1 for a free location when
// one is available (always preferred; using a free location never hurts), and
// otherwise cached blocks.  In pruned mode only a furthest-referenced cached
// block is considered.
func (s *searcher) victimCandidates(served int, cache uint64, free int) []int {
	if free > 0 {
		return []int{-1}
	}
	if cache == 0 {
		return nil
	}
	if !s.opts.Full {
		best := -1
		bestRef := -1
		for bi := 0; bi < len(s.blocks); bi++ {
			if cache&(1<<uint(bi)) == 0 {
				continue
			}
			ref := s.ix.NextAt(s.blocks[bi], served)
			if best == -1 || ref > bestRef || (ref == bestRef && bi < best) {
				best, bestRef = bi, ref
			}
		}
		return []int{best}
	}
	var out []int
	for bi := 0; bi < len(s.blocks); bi++ {
		if cache&(1<<uint(bi)) != 0 {
			out = append(out, bi)
		}
	}
	return out
}

// advance applies the serve-or-stall step to the state obtained after the
// fetch initiations and records the successor.
func (s *searcher) advance(key stateKey, info *nodeInfo, fetches []fetchAction, cache uint64, flights [maxDisks]uint16) {
	served := int(key.served)
	b := s.in.Seq[served]
	bi := s.idxOf[b]
	if cache&(1<<uint(bi)) != 0 {
		// Serve the request: one time unit passes.
		nc, nf := tick(cache, flights, 1, s.in.Disks)
		next := stateKey{served: int32(served + 1), cache: nc, flights: nf}
		s.relax(key, info, next, 0, served, fetches)
		return
	}
	// The requested block is missing: stall until the earliest completion.
	minRem := 0
	for d := 0; d < s.in.Disks; d++ {
		if flights[d] == 0 {
			continue
		}
		r := flightRemaining(flights[d])
		if minRem == 0 || r < minRem {
			minRem = r
		}
	}
	if minRem == 0 {
		return // nothing in flight: this branch can never serve the request
	}
	nc, nf := tick(cache, flights, minRem, s.in.Disks)
	next := stateKey{served: int32(served), cache: nc, flights: nf}
	s.relax(key, info, next, minRem, served, fetches)
}

// tick advances every in-flight fetch by delta time units, delivering
// completed blocks into the cache.
func tick(cache uint64, flights [maxDisks]uint16, delta, disks int) (uint64, [maxDisks]uint16) {
	for d := 0; d < disks; d++ {
		if flights[d] == 0 {
			continue
		}
		r := flightRemaining(flights[d])
		if r <= delta {
			cache |= 1 << uint(flightBlock(flights[d]))
			flights[d] = 0
		} else {
			flights[d] = flightOf(flightBlock(flights[d]), r-delta)
		}
	}
	return cache, flights
}

// relax performs the Dijkstra relaxation step for the edge key -> next.
func (s *searcher) relax(key stateKey, info *nodeInfo, next stateKey, cost, anchor int, fetches []fetchAction) {
	newCost := info.cost + cost
	if existing, ok := s.nodes[next]; ok && existing.cost <= newCost {
		return
	}
	var fcopy []fetchAction
	if len(fetches) > 0 {
		fcopy = make([]fetchAction, len(fetches))
		copy(fcopy, fetches)
	}
	s.nodes[next] = &nodeInfo{
		cost:      newCost,
		parent:    key,
		hasParent: true,
		anchor:    anchor,
		fetches:   fcopy,
	}
	heap.Push(s.queue, costItem{key: next, cost: newCost})
}

// reconstruct rebuilds an optimal schedule by walking parent pointers from
// the goal state.
func (s *searcher) reconstruct(goal stateKey) *core.Schedule {
	var chain []*nodeInfo
	key := goal
	for {
		info := s.nodes[key]
		chain = append(chain, info)
		if !info.hasParent {
			break
		}
		key = info.parent
	}
	sched := &core.Schedule{}
	for i := len(chain) - 1; i >= 0; i-- {
		info := chain[i]
		// The wall-clock time at which this transition's fetches were
		// initiated is the parent's cursor position plus the stall paid so
		// far; recording it as MinTime pins cross-disk dependencies (a fetch
		// started right after another disk's completion must not start
		// earlier when the schedule is replayed).
		var minTime int
		if i+1 < len(chain) {
			parent := chain[i+1]
			minTime = int(info.parent.served) + parent.cost
		}
		for _, fa := range info.fetches {
			evict := core.NoBlock
			if fa.victim >= 0 {
				evict = s.blocks[fa.victim]
			}
			f := core.NewFetch(fa.disk, info.anchor, s.blocks[fa.block], evict)
			f.MinTime = minTime
			sched.Append(f)
		}
	}
	return sched
}

// costItem and costQueue implement the priority queue for Dijkstra's
// algorithm.
type costItem struct {
	key  stateKey
	cost int
}

type costQueue []costItem

func (q costQueue) Len() int            { return len(q) }
func (q costQueue) Less(i, j int) bool  { return q[i].cost < q[j].cost }
func (q costQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *costQueue) Push(x interface{}) { *q = append(*q, x.(costItem)) }
func (q *costQueue) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}
