package opt

import (
	"fmt"
	"math/bits"

	"pfcache/internal/core"
)

// maxDisks is the largest number of disks supported by the state encoding.
const maxDisks = 8

// maxBlocks is the largest number of distinct blocks supported (the resident
// set is encoded as a 64-bit mask).
const maxBlocks = 64

// DefaultMaxStates is the default cap on the number of distinct states the
// search may create before giving up.
const DefaultMaxStates = 4_000_000

// BoundMode selects how the branch-and-bound incumbent is seeded.
type BoundMode int

const (
	// BoundGreedy (the default) seeds the incumbent with the cheapest of the
	// greedy schedules (package single's registry for one disk, package
	// parallel's strategies otherwise) before the search starts.
	BoundGreedy BoundMode = iota
	// BoundNone disables incumbent pruning.
	BoundNone
)

// String names the bound mode as accepted by ParseBound.
func (m BoundMode) String() string {
	switch m {
	case BoundGreedy:
		return "greedy"
	case BoundNone:
		return "none"
	default:
		return fmt.Sprintf("bound(%d)", int(m))
	}
}

// ParseBound parses a bound mode name ("greedy" or "none").
func ParseBound(s string) (BoundMode, error) {
	switch s {
	case "greedy":
		return BoundGreedy, nil
	case "none":
		return BoundNone, nil
	default:
		return 0, fmt.Errorf("opt: unknown bound mode %q (want greedy or none)", s)
	}
}

// Options configures the exact search.
type Options struct {
	// ExtraCache is the number of cache locations available beyond the
	// instance's k.  The paper's sOPT(sigma, k) corresponds to ExtraCache = 0.
	ExtraCache int
	// Full enables full branching over every missing block and every eviction
	// victim.  The default (pruned) branching fetches the earliest-referenced
	// missing block per disk and evicts a furthest-referenced block, which is
	// optimal by standard exchange arguments; Full exists to validate the
	// pruning on small instances.
	Full bool
	// MaxStates caps the number of states (0 means DefaultMaxStates).
	MaxStates int
	// Bound selects the branch-and-bound incumbent seeding; the zero value
	// BoundGreedy prunes against the cheapest greedy schedule.
	Bound BoundMode
	// NoHeuristic disables the admissible lower bound h, reducing A* to
	// uniform-cost (Dijkstra) order.  Together with Bound: BoundNone this is
	// exactly the historical blind search, kept as the reference the property
	// tests pin the informed search against (landmarks and dominance are
	// auto-disabled in that configuration, see useDominance).
	NoHeuristic bool
	// NoLandmarks disables the precomputed landmark lower bounds
	// (landmark.go), leaving only the per-state fetch-work bounds.
	NoLandmarks bool
	// NoDominance disables canonicalized dominance merging of states that
	// differ only in never-again-referenced cache or in-flight content.
	NoDominance bool
	// Workers selects the parallel branch-and-bound driver (parallel.go) when
	// > 1.  Workers <= 1 runs the sequential A* engine; the stall/elapsed
	// results are identical either way (the optimum is unique in value), but
	// effort counters are nondeterministic across parallel runs.
	Workers int
}

// Result is the outcome of an exact search.
type Result struct {
	// Stall is the minimum total stall time.
	Stall int
	// Elapsed is the minimum elapsed time (n + Stall).
	Elapsed int
	// Schedule is an optimal schedule realising Stall.
	Schedule *core.Schedule
	// StatesExpanded counts the states popped from the priority queue and
	// expanded.
	StatesExpanded int
	// StatesGenerated counts the states produced for relaxation: the root
	// plus every successor produced by an expansion (including duplicates
	// and bound-pruned ones), so it is always at least DuplicateHits +
	// PrunedByBound.
	StatesGenerated int
	// PrunedByBound counts successors discarded because g + h reached the
	// branch-and-bound incumbent.
	PrunedByBound int
	// DuplicateHits counts successors that already had a node in the table
	// under the same raw state key.
	DuplicateHits int
	// PrunedByDominance counts successors merged into an existing node whose
	// raw key differed but whose canonicalized key (dead cache and in-flight
	// content removed) matched: the two states are equivalent, so only the
	// cheaper path survives.
	PrunedByDominance int
	// LandmarkHits counts heuristic evaluations where the precomputed
	// landmark bound strictly exceeded every per-state fetch-work bound.
	LandmarkHits int
	// PeakTableSize is the number of distinct states materialised.
	PeakTableSize int
	// Workers is the number of search workers used (1 for the sequential
	// engine).
	Workers int
	// WorkerExpanded is the per-worker expansion breakdown of a parallel run
	// (nil for the sequential engine); its sum equals StatesExpanded.
	WorkerExpanded []int
	// SeedAlgorithm names the greedy schedule seeding the incumbent ("" when
	// no incumbent was available).
	SeedAlgorithm string
	// SeedStall is the incumbent's stall time, or -1 when no incumbent was
	// available.
	SeedStall int
	// SeedOptimal reports that the search proved the incumbent optimal (every
	// strictly better path was pruned away) and Schedule is the seed schedule
	// itself.
	SeedOptimal bool
}

// TooLargeError reports that the search exceeded its state budget.
type TooLargeError struct {
	States int
}

func (e *TooLargeError) Error() string {
	return fmt.Sprintf("opt: exhaustive search exceeded %d states; the instance is too large", e.States)
}

// EncodingLimitError reports an instance parameter exceeding what the packed
// state encoding can represent.
type EncodingLimitError struct {
	// What names the offending parameter ("fetch time F" or "block index").
	What string
	// Value is the offending value and Limit the largest supported one.
	Value, Limit int
}

func (e *EncodingLimitError) Error() string {
	return fmt.Sprintf("opt: %s %d exceeds the packed state encoding limit %d", e.What, e.Value, e.Limit)
}

// Optimal computes a minimum-stall schedule for the instance by A* search
// with branch-and-bound pruning over system states: an admissible heuristic
// orders the queue and an incumbent seeded from the greedy schedules prunes
// provably non-improving states (see doc.go).  It is exact but exponential in
// the worst case, so it is intended for the instances used to validate the
// approximation algorithms and the linear-programming approach.
func Optimal(in *core.Instance, opts Options) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if in.Disks > maxDisks {
		return nil, fmt.Errorf("opt: at most %d disks supported, got %d", maxDisks, in.Disks)
	}
	blocks := in.Blocks()
	if len(blocks) > maxBlocks {
		return nil, fmt.Errorf("opt: at most %d distinct blocks supported, got %d", maxBlocks, len(blocks))
	}
	if in.F > maxFlightRemaining {
		return nil, &EncodingLimitError{What: "fetch time F", Value: in.F, Limit: maxFlightRemaining}
	}
	if len(blocks)-1 > maxFlightBlock {
		return nil, &EncodingLimitError{What: "block index", Value: len(blocks) - 1, Limit: maxFlightBlock}
	}
	s := newSearcher(in, opts, blocks)
	return s.run()
}

// OptimalStall returns only the minimum stall time.
func OptimalStall(in *core.Instance, opts Options) (int, error) {
	r, err := Optimal(in, opts)
	if err != nil {
		return 0, err
	}
	return r.Stall, nil
}

// fetchAction records one fetch initiation on a transition, for schedule
// reconstruction.
type fetchAction struct {
	disk   int
	block  int // block index
	victim int // block index, or freeLocation for a free cache location
}

// freeLocation is the victim sentinel meaning "use a free cache location".
const freeLocation = -1

type searcher struct {
	in     *core.Instance
	opts   Options
	blocks []core.BlockID
	idxOf  map[core.BlockID]int
	seqIdx []int32 // per request position, the block index requested
	diskOf []int   // per block index
	cap    int     // cache capacity including extra locations
	n      int

	// Heuristic tables (see heuristic.go / landmark.go), read-only after
	// construction so parallel workers can share them.
	futureMask []uint64
	diskMask   [maxDisks]uint64
	nextRef    []int32
	landmark   []int32
	hs         *hscratch
	dominance  bool // canonicalized dominance merging active (useDominance)

	// Branch-and-bound incumbent (see seed.go); incumbent < 0 means none.
	incumbent int
	seedName  string
	seedStall int
	seedSched *core.Schedule

	// Memory layer (see table.go) and queue (see bucket.go).
	nodes   nodeArena
	table   nodeTable
	fetches []fetchAction // shared arena of transition fetch records
	queue   bucketQueue
	succ    succBuf // per-expansion successor staging buffer

	expanded  int
	generated int
	pruned    int
	dupHits   int
	prunedDom int
}

// succRec is one staged successor of an expansion: the resulting state, the
// transition's stall cost and anchor position, and its fetch actions inside
// the staging buffer.  Staging decouples successor generation (pure, reads
// only the shared tables) from relaxation (mutates the node table and queue),
// which is what lets the parallel driver reuse the exact same generation
// code with per-worker buffers.
type succRec struct {
	key      stateKey
	cost     int32
	anchor   int32
	fetchOff int32
	fetchCnt uint16
}

type succBuf struct {
	recs    []succRec
	fetches []fetchAction
}

func (b *succBuf) reset() {
	b.recs = b.recs[:0]
	b.fetches = b.fetches[:0]
}

func (b *succBuf) add(key stateKey, cost, anchor int, fetches []fetchAction) {
	off := int32(len(b.fetches))
	b.fetches = append(b.fetches, fetches...)
	b.recs = append(b.recs, succRec{
		key: key, cost: int32(cost), anchor: int32(anchor),
		fetchOff: off, fetchCnt: uint16(len(fetches)),
	})
}

func (b *succBuf) fetchesOf(r *succRec) []fetchAction {
	return b.fetches[r.fetchOff : r.fetchOff+int32(r.fetchCnt)]
}

func newSearcher(in *core.Instance, opts Options, blocks []core.BlockID) *searcher {
	s := &searcher{
		in:        in,
		opts:      opts,
		blocks:    blocks,
		idxOf:     make(map[core.BlockID]int, len(blocks)),
		seqIdx:    make([]int32, in.N()),
		diskOf:    make([]int, len(blocks)),
		cap:       in.K + opts.ExtraCache,
		n:         in.N(),
		incumbent: -1,
		nodes:     newNodeArena(),
		table:     newNodeTable(),
	}
	for i, b := range blocks {
		s.idxOf[b] = i
		s.diskOf[i] = in.Disk(b)
	}
	for p, b := range in.Seq {
		s.seqIdx[p] = int32(s.idxOf[b])
	}
	s.hs = newHScratch(s.n)
	s.dominance = s.useDominance()
	s.initHeuristic()
	return s
}

// deadBlock is the sentinel block index canonicalize substitutes for a
// never-again-referenced in-flight block.  It is outside the valid range
// [0, maxBlocks) but still fits the flight encoding (maxFlightBlock).
const deadBlock = maxBlocks

// canonicalize maps a state key to its dominance-class representative: cache
// blocks that are never referenced again are dropped from the resident mask,
// and a dead in-flight block is renamed to the deadBlock sentinel (its
// remaining fetch time is kept — the disk stays busy that long either way).
// Two states with equal canonical keys are exactly bisimilar (doc.go), so the
// node table keys on the canonical form while nodeRec.key keeps the raw state
// of the best path, which reconstruction repairs against (buildSchedule).
func (s *searcher) canonicalize(key *stateKey) stateKey {
	c := *key
	future := s.futureMask[key.served]
	c.cache &= future
	for d := 0; d < s.in.Disks; d++ {
		if f := c.flights[d]; f != 0 {
			if bi := flightBlock(f); future&(1<<uint(bi)) == 0 {
				c.flights[d] = flightOf(deadBlock, flightRemaining(f))
			}
		}
	}
	return c
}

// tableKey returns the key the node table indexes a state under.
func (s *searcher) tableKey(key *stateKey) stateKey {
	if s.dominance {
		return s.canonicalize(key)
	}
	return *key
}

func (s *searcher) maxStates() int {
	if s.opts.MaxStates > 0 {
		return s.opts.MaxStates
	}
	return DefaultMaxStates
}

func (s *searcher) initialKey() stateKey {
	var key stateKey
	for _, b := range s.in.InitialCache {
		key.cache |= 1 << uint(s.idxOf[b])
	}
	return key
}

// result assembles a Result carrying the search counters.
func (s *searcher) result(stall int, sched *core.Schedule, seedOptimal bool) *Result {
	seedStall := -1
	if s.seedSched != nil {
		seedStall = s.seedStall
	}
	return &Result{
		Stall:             stall,
		Elapsed:           s.n + stall,
		Schedule:          sched,
		StatesExpanded:    s.expanded,
		StatesGenerated:   s.generated,
		PrunedByBound:     s.pruned,
		DuplicateHits:     s.dupHits,
		PrunedByDominance: s.prunedDom,
		LandmarkHits:      s.hs.landmarkHits,
		PeakTableSize:     s.table.count,
		Workers:           1,
		SeedAlgorithm:     s.seedName,
		SeedStall:         seedStall,
		SeedOptimal:       seedOptimal,
	}
}

func (s *searcher) run() (*Result, error) {
	if s.opts.Workers > 1 {
		return s.runParallel()
	}
	defer s.recordStats()
	if s.opts.Bound == BoundGreedy {
		s.seedIncumbent()
	}
	start := s.initialKey()
	h0 := s.heuristic(&start, s.hs)
	s.generated++
	if s.incumbent >= 0 && int(h0) >= s.incumbent {
		// Even the root's lower bound reaches the incumbent: the seed is
		// optimal without expanding a single state.
		s.pruned++
		return s.result(s.seedStall, s.seedSched.Clone(), true), nil
	}
	rootIdx := s.nodes.alloc()
	root := &s.nodes.recs[rootIdx]
	root.key = start
	root.h = h0
	tstart := s.tableKey(&start)
	s.table.put(&tstart, rootIdx)
	s.queue.push(int(h0), rootIdx)
	for {
		idx, f, ok := s.queue.pop()
		if !ok {
			break
		}
		rec := &s.nodes.recs[idx]
		if rec.closed || int(rec.g)+int(rec.h) != f {
			continue // stale queue entry (node expanded or reopened at lower cost)
		}
		rec.closed = true
		s.expanded++
		key := rec.key
		if int(key.served) == s.n {
			return s.result(int(rec.g), s.reconstruct(idx), false), nil
		}
		s.expand(idx, &key)
		if s.table.count > s.maxStates() {
			return nil, &TooLargeError{States: s.maxStates()}
		}
	}
	if s.seedSched != nil {
		// Every path was pruned against the incumbent, proving it optimal.
		return s.result(s.seedStall, s.seedSched.Clone(), true), nil
	}
	return nil, fmt.Errorf("opt: search exhausted without serving every request (internal error)")
}

// expand generates the successors of a state into the staging buffer and
// relaxes each: every combination of fetch initiations over idle disks,
// followed by the serve-or-stall step.
func (s *searcher) expand(idx int32, key *stateKey) {
	s.generate(key, &s.succ)
	for i := range s.succ.recs {
		sr := &s.succ.recs[i]
		s.relax(idx, &sr.key, int(sr.cost), int(sr.anchor), s.succ.fetchesOf(sr))
	}
}

// generate fills buf with the successors of a state.  It reads only the
// searcher's immutable tables, so it is safe to call concurrently with
// distinct buffers (the parallel driver does).
func (s *searcher) generate(key *stateKey, buf *succBuf) {
	buf.reset()
	var acc [maxDisks]fetchAction
	s.enumerate(key, 0, 0, key.cache, s.inFlightMask(key), &acc, buf)
}

// inFlightMask returns the mask of blocks currently being fetched.
func (s *searcher) inFlightMask(key *stateKey) uint64 {
	var m uint64
	for d := 0; d < s.in.Disks; d++ {
		if key.flights[d] != 0 {
			m |= 1 << uint(flightBlock(key.flights[d]))
		}
	}
	return m
}

// enumerate recursively chooses, for each idle disk, whether and what to
// fetch, and applies the serve-or-stall step for every combination.  cache
// and inflight are the working copies reflecting the choices made for disks
// < d; the chosen fetches live in acc[:nacc].
func (s *searcher) enumerate(key *stateKey, d, nacc int, cache, inflight uint64, acc *[maxDisks]fetchAction, buf *succBuf) {
	if d == s.in.Disks {
		flights := key.flights
		for i := 0; i < nacc; i++ {
			flights[acc[i].disk] = flightOf(acc[i].block, s.in.F)
		}
		s.advance(key, acc[:nacc], cache, flights, buf)
		return
	}
	// Option 1: no new fetch on disk d.
	s.enumerate(key, d+1, nacc, cache, inflight, acc, buf)
	if key.flights[d] != 0 {
		return // disk busy: no other option
	}
	served := int(key.served)
	free := s.cap - bits.OnesCount64(cache) - bits.OnesCount64(inflight)
	if !s.opts.Full {
		// Pruned mode: fetch the earliest-referenced missing block on disk d
		// (if any) and evict a furthest-referenced cached block.
		bi := s.earliestMissingOnDisk(d, served, cache|inflight)
		if bi < 0 {
			return
		}
		victim, ok := s.prunedVictim(served, cache, free)
		if !ok {
			return
		}
		newCache := cache
		if victim >= 0 {
			newCache &^= 1 << uint(victim)
		}
		acc[nacc] = fetchAction{disk: d, block: bi, victim: victim}
		s.enumerate(key, d+1, nacc+1, newCache, inflight|1<<uint(bi), acc, buf)
		return
	}
	for _, bi := range s.fullFetchCandidates(d, served, cache|inflight) {
		for _, victim := range s.fullVictimCandidates(cache, free) {
			newCache := cache
			if victim >= 0 {
				newCache &^= 1 << uint(victim)
			}
			acc[nacc] = fetchAction{disk: d, block: bi, victim: victim}
			s.enumerate(key, d+1, nacc+1, newCache, inflight|1<<uint(bi), acc, buf)
		}
	}
}

// earliestMissingOnDisk returns the block index of the missing block on disk
// d with the earliest next reference at or after served, or -1 if there is
// none.  resident is the union of the cached and in-flight masks.
func (s *searcher) earliestMissingOnDisk(d, served int, resident uint64) int {
	for p := served; p < s.n; p++ {
		bi := int(s.seqIdx[p])
		if s.diskOf[bi] != d || resident&(1<<uint(bi)) != 0 {
			continue
		}
		return bi
	}
	return -1
}

// prunedVictim returns the eviction choice of the pruned branching:
// freeLocation when a free location is available (always preferred; using a
// free location never hurts), and otherwise a cached block whose next
// reference is furthest in the future.  ok is false when no choice exists.
func (s *searcher) prunedVictim(served int, cache uint64, free int) (int, bool) {
	if free > 0 {
		return freeLocation, true
	}
	if cache == 0 {
		return 0, false
	}
	best := -1
	bestRef := -1
	for m := cache; m != 0; m &= m - 1 {
		bi := bits.TrailingZeros64(m)
		ref := s.nextRefAt(bi, served)
		if ref > bestRef {
			best, bestRef = bi, ref
		}
	}
	return best, true
}

// fullFetchCandidates returns every missing, still-referenced block on disk d
// in order of next reference (full branching mode only).
func (s *searcher) fullFetchCandidates(d, served int, resident uint64) []int {
	var seen uint64
	var out []int
	for p := served; p < s.n; p++ {
		bi := int(s.seqIdx[p])
		if s.diskOf[bi] != d || seen&(1<<uint(bi)) != 0 {
			continue
		}
		seen |= 1 << uint(bi)
		if resident&(1<<uint(bi)) != 0 {
			continue
		}
		out = append(out, bi)
	}
	return out
}

// fullVictimCandidates returns every eviction choice of the full branching
// mode: a free location when available, otherwise every cached block.
func (s *searcher) fullVictimCandidates(cache uint64, free int) []int {
	if free > 0 {
		return []int{freeLocation}
	}
	var out []int
	for m := cache; m != 0; m &= m - 1 {
		out = append(out, bits.TrailingZeros64(m))
	}
	return out
}

// advance applies the serve-or-stall step to the state obtained after the
// fetch initiations and stages the successor.
func (s *searcher) advance(key *stateKey, fetches []fetchAction, cache uint64, flights [maxDisks]uint16, buf *succBuf) {
	served := int(key.served)
	bi := int(s.seqIdx[served])
	if cache&(1<<uint(bi)) != 0 {
		// Serve the request: one time unit passes.
		nc, nf := tick(cache, flights, 1, s.in.Disks)
		buf.add(stateKey{served: key.served + 1, cache: nc, flights: nf}, 0, served, fetches)
		return
	}
	// The requested block is missing: stall until the earliest completion.
	minRem := 0
	for d := 0; d < s.in.Disks; d++ {
		if flights[d] == 0 {
			continue
		}
		r := flightRemaining(flights[d])
		if minRem == 0 || r < minRem {
			minRem = r
		}
	}
	if minRem == 0 {
		return // nothing in flight: this branch can never serve the request
	}
	nc, nf := tick(cache, flights, minRem, s.in.Disks)
	buf.add(stateKey{served: key.served, cache: nc, flights: nf}, minRem, served, fetches)
}

// saveFetches copies the transition's fetch actions into the shared arena.
func (s *searcher) saveFetches(fetches []fetchAction) (int32, uint16) {
	if len(fetches) == 0 {
		return 0, 0
	}
	off := int32(len(s.fetches))
	s.fetches = append(s.fetches, fetches...)
	return off, uint16(len(fetches))
}

// relax performs the A* relaxation for the edge parent -> next with the given
// stall cost, pruning against the incumbent and reopening closed nodes whose
// cost improves (the heuristic is admissible but not consistent).  With
// dominance active the table lookup keys on the canonicalized state, so a
// path reaching any bisimilar state merges into one node; the node's raw key
// and transition record always describe the best path's actual state.
func (s *searcher) relax(parent int32, next *stateKey, cost, anchor int, fetches []fetchAction) {
	s.generated++
	newG := s.nodes.recs[parent].g + int32(cost)
	tkey := s.tableKey(next)
	if idx := s.table.get(&tkey); idx != 0 {
		rec := &s.nodes.recs[idx]
		if s.dominance && rec.key != *next {
			s.prunedDom++
		} else {
			s.dupHits++
		}
		if rec.g <= newG {
			return
		}
		// No incumbent check here: the node passed g + h < incumbent when it
		// was inserted, and newG is smaller still.  h is invariant across the
		// dominance class (doc.go), so it is not recomputed on a merge.
		rec.key = *next
		rec.g = newG
		rec.cost = uint16(cost)
		rec.parent = parent
		rec.anchor = int32(anchor)
		rec.fetchOff, rec.fetchCnt = s.saveFetches(fetches)
		rec.closed = false
		s.queue.push(int(newG)+int(rec.h), idx)
		return
	}
	h := s.heuristic(next, s.hs)
	if s.incumbent >= 0 && int(newG)+int(h) >= s.incumbent {
		s.pruned++
		return
	}
	fetchOff, fetchCnt := s.saveFetches(fetches)
	idx := s.nodes.alloc()
	rec := &s.nodes.recs[idx]
	rec.key = *next
	rec.g = newG
	rec.h = h
	rec.cost = uint16(cost)
	rec.parent = parent
	rec.anchor = int32(anchor)
	rec.fetchOff, rec.fetchCnt = fetchOff, fetchCnt
	s.table.put(&tkey, idx)
	s.queue.push(int(newG)+int(h), idx)
}

// chainStep is one transition of a reconstructed optimal path, in forward
// (root-to-goal) order.
type chainStep struct {
	serve   bool // the step served a request (otherwise it stalled)
	cost    int  // stall units of the step (0 for a serve step)
	anchor  int  // requests served when the fetches were initiated
	minTime int  // wall-clock initiation time of the fetches
	fetches []fetchAction
}

// reconstruct rebuilds an optimal schedule by walking parent links from the
// goal node and replaying the transitions (buildSchedule).
func (s *searcher) reconstruct(goal int32) *core.Schedule {
	var chain []int32
	for idx := goal; idx != 0; idx = s.nodes.recs[idx].parent {
		chain = append(chain, idx)
	}
	steps := make([]chainStep, 0, len(chain)-1)
	for i := len(chain) - 2; i >= 0; i-- {
		rec := &s.nodes.recs[chain[i]]
		parent := &s.nodes.recs[chain[i+1]]
		steps = append(steps, chainStep{
			serve: rec.key.served == parent.key.served+1,
			cost:  int(rec.cost),
			// The wall-clock time at which this transition's fetches were
			// initiated is the parent's cursor position plus the stall paid
			// so far; recording it as MinTime pins cross-disk dependencies
			// (a fetch started right after another disk's completion must
			// not start earlier when the schedule is replayed).
			anchor:  int(rec.anchor),
			minTime: int(parent.key.served) + int(parent.g),
			fetches: s.fetches[rec.fetchOff : rec.fetchOff+int32(rec.fetchCnt)],
		})
	}
	return s.buildSchedule(steps)
}

// buildSchedule replays a transition chain from the true initial state and
// emits the schedule.  With dominance merging, a node's recorded transition
// was generated from SOME member of its parent's dominance class, which can
// differ from the replayed state in dead (never-again-referenced) cache and
// in-flight content; the fetched blocks, disks, and timings are identical
// across the class, but an eviction victim may be absent.  The repair is
// total: a recorded dead victim that is missing here is replaced by a free
// location or by one of this state's own dead residents (one of the two must
// exist, because the class members' live content and in-flight slot counts
// agree — see doc.go).  Without dominance the chain is self-consistent and
// the replay reproduces the historical schedules byte for byte.
func (s *searcher) buildSchedule(steps []chainStep) *core.Schedule {
	var cache uint64
	for _, b := range s.in.InitialCache {
		cache |= 1 << uint(s.idxOf[b])
	}
	var flights [maxDisks]uint16
	served := 0
	sched := &core.Schedule{}
	for _, st := range steps {
		var inflight uint64
		for d := 0; d < s.in.Disks; d++ {
			if flights[d] != 0 {
				inflight |= 1 << uint(flightBlock(flights[d]))
			}
		}
		free := s.cap - bits.OnesCount64(cache) - bits.OnesCount64(inflight)
		for _, fa := range st.fetches {
			victim := fa.victim
			if victim == freeLocation {
				if free <= 0 {
					victim = s.deadResident(cache, served)
				}
			} else if cache&(1<<uint(victim)) == 0 {
				if free > 0 {
					victim = freeLocation
				} else {
					victim = s.deadResident(cache, served)
				}
			}
			if victim >= 0 {
				cache &^= 1 << uint(victim)
			} else {
				free--
			}
			flights[fa.disk] = flightOf(fa.block, s.in.F)
			evict := core.NoBlock
			if victim >= 0 {
				evict = s.blocks[victim]
			}
			f := core.NewFetch(fa.disk, st.anchor, s.blocks[fa.block], evict)
			f.MinTime = st.minTime
			sched.Append(f)
		}
		delta := 1
		if !st.serve {
			delta = st.cost
		}
		cache, flights = tick(cache, flights, delta, s.in.Disks)
		if st.serve {
			served++
		}
	}
	return sched
}

// deadResident returns a cached block that is never referenced at or after
// served.  buildSchedule calls it only when the dominance-class argument
// guarantees one exists.
func (s *searcher) deadResident(cache uint64, served int) int {
	dead := cache &^ s.futureMask[served]
	if dead == 0 {
		panic("opt: reconstruction found no dead resident to evict (internal error)")
	}
	return bits.TrailingZeros64(dead)
}
