package opt

import (
	"fmt"
	"math/bits"

	"pfcache/internal/core"
)

// maxDisks is the largest number of disks supported by the state encoding.
const maxDisks = 8

// maxBlocks is the largest number of distinct blocks supported (the resident
// set is encoded as a 64-bit mask).
const maxBlocks = 64

// DefaultMaxStates is the default cap on the number of distinct states the
// search may create before giving up.
const DefaultMaxStates = 4_000_000

// BoundMode selects how the branch-and-bound incumbent is seeded.
type BoundMode int

const (
	// BoundGreedy (the default) seeds the incumbent with the cheapest of the
	// greedy schedules (package single's registry for one disk, package
	// parallel's strategies otherwise) before the search starts.
	BoundGreedy BoundMode = iota
	// BoundNone disables incumbent pruning.
	BoundNone
)

// String names the bound mode as accepted by ParseBound.
func (m BoundMode) String() string {
	switch m {
	case BoundGreedy:
		return "greedy"
	case BoundNone:
		return "none"
	default:
		return fmt.Sprintf("bound(%d)", int(m))
	}
}

// ParseBound parses a bound mode name ("greedy" or "none").
func ParseBound(s string) (BoundMode, error) {
	switch s {
	case "greedy":
		return BoundGreedy, nil
	case "none":
		return BoundNone, nil
	default:
		return 0, fmt.Errorf("opt: unknown bound mode %q (want greedy or none)", s)
	}
}

// Options configures the exact search.
type Options struct {
	// ExtraCache is the number of cache locations available beyond the
	// instance's k.  The paper's sOPT(sigma, k) corresponds to ExtraCache = 0.
	ExtraCache int
	// Full enables full branching over every missing block and every eviction
	// victim.  The default (pruned) branching fetches the earliest-referenced
	// missing block per disk and evicts a furthest-referenced block, which is
	// optimal by standard exchange arguments; Full exists to validate the
	// pruning on small instances.
	Full bool
	// MaxStates caps the number of states (0 means DefaultMaxStates).
	MaxStates int
	// Bound selects the branch-and-bound incumbent seeding; the zero value
	// BoundGreedy prunes against the cheapest greedy schedule.
	Bound BoundMode
	// NoHeuristic disables the admissible lower bound h, reducing A* to
	// uniform-cost (Dijkstra) order.  Together with Bound: BoundNone this is
	// exactly the historical blind search, kept as the reference the property
	// tests pin the informed search against.
	NoHeuristic bool
}

// Result is the outcome of an exact search.
type Result struct {
	// Stall is the minimum total stall time.
	Stall int
	// Elapsed is the minimum elapsed time (n + Stall).
	Elapsed int
	// Schedule is an optimal schedule realising Stall.
	Schedule *core.Schedule
	// StatesExpanded counts the states popped from the priority queue and
	// expanded.
	StatesExpanded int
	// StatesGenerated counts the states produced for relaxation: the root
	// plus every successor produced by an expansion (including duplicates
	// and bound-pruned ones), so it is always at least DuplicateHits +
	// PrunedByBound.
	StatesGenerated int
	// PrunedByBound counts successors discarded because g + h reached the
	// branch-and-bound incumbent.
	PrunedByBound int
	// DuplicateHits counts successors that already had a node in the table.
	DuplicateHits int
	// PeakTableSize is the number of distinct states materialised.
	PeakTableSize int
	// SeedAlgorithm names the greedy schedule seeding the incumbent ("" when
	// no incumbent was available).
	SeedAlgorithm string
	// SeedStall is the incumbent's stall time, or -1 when no incumbent was
	// available.
	SeedStall int
	// SeedOptimal reports that the search proved the incumbent optimal (every
	// strictly better path was pruned away) and Schedule is the seed schedule
	// itself.
	SeedOptimal bool
}

// TooLargeError reports that the search exceeded its state budget.
type TooLargeError struct {
	States int
}

func (e *TooLargeError) Error() string {
	return fmt.Sprintf("opt: exhaustive search exceeded %d states; the instance is too large", e.States)
}

// EncodingLimitError reports an instance parameter exceeding what the packed
// state encoding can represent.
type EncodingLimitError struct {
	// What names the offending parameter ("fetch time F" or "block index").
	What string
	// Value is the offending value and Limit the largest supported one.
	Value, Limit int
}

func (e *EncodingLimitError) Error() string {
	return fmt.Sprintf("opt: %s %d exceeds the packed state encoding limit %d", e.What, e.Value, e.Limit)
}

// Optimal computes a minimum-stall schedule for the instance by A* search
// with branch-and-bound pruning over system states: an admissible heuristic
// orders the queue and an incumbent seeded from the greedy schedules prunes
// provably non-improving states (see doc.go).  It is exact but exponential in
// the worst case, so it is intended for the instances used to validate the
// approximation algorithms and the linear-programming approach.
func Optimal(in *core.Instance, opts Options) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if in.Disks > maxDisks {
		return nil, fmt.Errorf("opt: at most %d disks supported, got %d", maxDisks, in.Disks)
	}
	blocks := in.Blocks()
	if len(blocks) > maxBlocks {
		return nil, fmt.Errorf("opt: at most %d distinct blocks supported, got %d", maxBlocks, len(blocks))
	}
	if in.F > maxFlightRemaining {
		return nil, &EncodingLimitError{What: "fetch time F", Value: in.F, Limit: maxFlightRemaining}
	}
	if len(blocks)-1 > maxFlightBlock {
		return nil, &EncodingLimitError{What: "block index", Value: len(blocks) - 1, Limit: maxFlightBlock}
	}
	s := newSearcher(in, opts, blocks)
	return s.run()
}

// OptimalStall returns only the minimum stall time.
func OptimalStall(in *core.Instance, opts Options) (int, error) {
	r, err := Optimal(in, opts)
	if err != nil {
		return 0, err
	}
	return r.Stall, nil
}

// fetchAction records one fetch initiation on a transition, for schedule
// reconstruction.
type fetchAction struct {
	disk   int
	block  int // block index
	victim int // block index, or freeLocation for a free cache location
}

// freeLocation is the victim sentinel meaning "use a free cache location".
const freeLocation = -1

type searcher struct {
	in     *core.Instance
	opts   Options
	blocks []core.BlockID
	idxOf  map[core.BlockID]int
	seqIdx []int32 // per request position, the block index requested
	diskOf []int   // per block index
	cap    int     // cache capacity including extra locations
	n      int

	// Heuristic tables (see heuristic.go).
	futureMask []uint64
	diskMask   [maxDisks]uint64
	nextRef    []int32

	// Branch-and-bound incumbent (see seed.go); incumbent < 0 means none.
	incumbent int
	seedName  string
	seedStall int
	seedSched *core.Schedule

	// Memory layer (see table.go) and queue (see bucket.go).
	nodes   nodeArena
	table   nodeTable
	fetches []fetchAction // shared arena of transition fetch records
	queue   bucketQueue

	expanded  int
	generated int
	pruned    int
	dupHits   int
}

func newSearcher(in *core.Instance, opts Options, blocks []core.BlockID) *searcher {
	s := &searcher{
		in:        in,
		opts:      opts,
		blocks:    blocks,
		idxOf:     make(map[core.BlockID]int, len(blocks)),
		seqIdx:    make([]int32, in.N()),
		diskOf:    make([]int, len(blocks)),
		cap:       in.K + opts.ExtraCache,
		n:         in.N(),
		incumbent: -1,
		nodes:     newNodeArena(),
		table:     newNodeTable(),
	}
	for i, b := range blocks {
		s.idxOf[b] = i
		s.diskOf[i] = in.Disk(b)
	}
	for p, b := range in.Seq {
		s.seqIdx[p] = int32(s.idxOf[b])
	}
	s.initHeuristic()
	return s
}

func (s *searcher) maxStates() int {
	if s.opts.MaxStates > 0 {
		return s.opts.MaxStates
	}
	return DefaultMaxStates
}

func (s *searcher) initialKey() stateKey {
	var key stateKey
	for _, b := range s.in.InitialCache {
		key.cache |= 1 << uint(s.idxOf[b])
	}
	return key
}

// result assembles a Result carrying the search counters.
func (s *searcher) result(stall int, sched *core.Schedule, seedOptimal bool) *Result {
	seedStall := -1
	if s.seedSched != nil {
		seedStall = s.seedStall
	}
	return &Result{
		Stall:           stall,
		Elapsed:         s.n + stall,
		Schedule:        sched,
		StatesExpanded:  s.expanded,
		StatesGenerated: s.generated,
		PrunedByBound:   s.pruned,
		DuplicateHits:   s.dupHits,
		PeakTableSize:   s.table.count,
		SeedAlgorithm:   s.seedName,
		SeedStall:       seedStall,
		SeedOptimal:     seedOptimal,
	}
}

func (s *searcher) run() (*Result, error) {
	defer s.recordStats()
	if s.opts.Bound == BoundGreedy {
		s.seedIncumbent()
	}
	start := s.initialKey()
	h0 := s.heuristic(&start)
	s.generated++
	if s.incumbent >= 0 && int(h0) >= s.incumbent {
		// Even the root's lower bound reaches the incumbent: the seed is
		// optimal without expanding a single state.
		s.pruned++
		return s.result(s.seedStall, s.seedSched.Clone(), true), nil
	}
	rootIdx := s.nodes.alloc()
	root := &s.nodes.recs[rootIdx]
	root.key = start
	root.h = h0
	s.table.put(&start, rootIdx)
	s.queue.push(int(h0), rootIdx)
	for {
		idx, f, ok := s.queue.pop()
		if !ok {
			break
		}
		rec := &s.nodes.recs[idx]
		if rec.closed || int(rec.g)+int(rec.h) != f {
			continue // stale queue entry (node expanded or reopened at lower cost)
		}
		rec.closed = true
		s.expanded++
		key := rec.key
		if int(key.served) == s.n {
			return s.result(int(rec.g), s.reconstruct(idx), false), nil
		}
		s.expand(idx, &key)
		if s.table.count > s.maxStates() {
			return nil, &TooLargeError{States: s.maxStates()}
		}
	}
	if s.seedSched != nil {
		// Every path was pruned against the incumbent, proving it optimal.
		return s.result(s.seedStall, s.seedSched.Clone(), true), nil
	}
	return nil, fmt.Errorf("opt: search exhausted without serving every request (internal error)")
}

// expand generates the successors of a state: every combination of fetch
// initiations over idle disks, each followed by the serve-or-stall step.
func (s *searcher) expand(idx int32, key *stateKey) {
	var acc [maxDisks]fetchAction
	s.enumerate(idx, key, 0, 0, key.cache, s.inFlightMask(key), &acc)
}

// inFlightMask returns the mask of blocks currently being fetched.
func (s *searcher) inFlightMask(key *stateKey) uint64 {
	var m uint64
	for d := 0; d < s.in.Disks; d++ {
		if key.flights[d] != 0 {
			m |= 1 << uint(flightBlock(key.flights[d]))
		}
	}
	return m
}

// enumerate recursively chooses, for each idle disk, whether and what to
// fetch, and applies the serve-or-stall step for every combination.  cache
// and inflight are the working copies reflecting the choices made for disks
// < d; the chosen fetches live in acc[:nacc].
func (s *searcher) enumerate(idx int32, key *stateKey, d, nacc int, cache, inflight uint64, acc *[maxDisks]fetchAction) {
	if d == s.in.Disks {
		flights := key.flights
		for i := 0; i < nacc; i++ {
			flights[acc[i].disk] = flightOf(acc[i].block, s.in.F)
		}
		s.advance(idx, key, acc[:nacc], cache, flights)
		return
	}
	// Option 1: no new fetch on disk d.
	s.enumerate(idx, key, d+1, nacc, cache, inflight, acc)
	if key.flights[d] != 0 {
		return // disk busy: no other option
	}
	served := int(key.served)
	free := s.cap - bits.OnesCount64(cache) - bits.OnesCount64(inflight)
	if !s.opts.Full {
		// Pruned mode: fetch the earliest-referenced missing block on disk d
		// (if any) and evict a furthest-referenced cached block.
		bi := s.earliestMissingOnDisk(d, served, cache|inflight)
		if bi < 0 {
			return
		}
		victim, ok := s.prunedVictim(served, cache, free)
		if !ok {
			return
		}
		newCache := cache
		if victim >= 0 {
			newCache &^= 1 << uint(victim)
		}
		acc[nacc] = fetchAction{disk: d, block: bi, victim: victim}
		s.enumerate(idx, key, d+1, nacc+1, newCache, inflight|1<<uint(bi), acc)
		return
	}
	for _, bi := range s.fullFetchCandidates(d, served, cache|inflight) {
		for _, victim := range s.fullVictimCandidates(cache, free) {
			newCache := cache
			if victim >= 0 {
				newCache &^= 1 << uint(victim)
			}
			acc[nacc] = fetchAction{disk: d, block: bi, victim: victim}
			s.enumerate(idx, key, d+1, nacc+1, newCache, inflight|1<<uint(bi), acc)
		}
	}
}

// earliestMissingOnDisk returns the block index of the missing block on disk
// d with the earliest next reference at or after served, or -1 if there is
// none.  resident is the union of the cached and in-flight masks.
func (s *searcher) earliestMissingOnDisk(d, served int, resident uint64) int {
	for p := served; p < s.n; p++ {
		bi := int(s.seqIdx[p])
		if s.diskOf[bi] != d || resident&(1<<uint(bi)) != 0 {
			continue
		}
		return bi
	}
	return -1
}

// prunedVictim returns the eviction choice of the pruned branching:
// freeLocation when a free location is available (always preferred; using a
// free location never hurts), and otherwise a cached block whose next
// reference is furthest in the future.  ok is false when no choice exists.
func (s *searcher) prunedVictim(served int, cache uint64, free int) (int, bool) {
	if free > 0 {
		return freeLocation, true
	}
	if cache == 0 {
		return 0, false
	}
	best := -1
	bestRef := -1
	for m := cache; m != 0; m &= m - 1 {
		bi := bits.TrailingZeros64(m)
		ref := s.nextRefAt(bi, served)
		if ref > bestRef {
			best, bestRef = bi, ref
		}
	}
	return best, true
}

// fullFetchCandidates returns every missing, still-referenced block on disk d
// in order of next reference (full branching mode only).
func (s *searcher) fullFetchCandidates(d, served int, resident uint64) []int {
	var seen uint64
	var out []int
	for p := served; p < s.n; p++ {
		bi := int(s.seqIdx[p])
		if s.diskOf[bi] != d || seen&(1<<uint(bi)) != 0 {
			continue
		}
		seen |= 1 << uint(bi)
		if resident&(1<<uint(bi)) != 0 {
			continue
		}
		out = append(out, bi)
	}
	return out
}

// fullVictimCandidates returns every eviction choice of the full branching
// mode: a free location when available, otherwise every cached block.
func (s *searcher) fullVictimCandidates(cache uint64, free int) []int {
	if free > 0 {
		return []int{freeLocation}
	}
	var out []int
	for m := cache; m != 0; m &= m - 1 {
		out = append(out, bits.TrailingZeros64(m))
	}
	return out
}

// advance applies the serve-or-stall step to the state obtained after the
// fetch initiations and relaxes the successor.
func (s *searcher) advance(idx int32, key *stateKey, fetches []fetchAction, cache uint64, flights [maxDisks]uint16) {
	served := int(key.served)
	bi := int(s.seqIdx[served])
	if cache&(1<<uint(bi)) != 0 {
		// Serve the request: one time unit passes.
		nc, nf := tick(cache, flights, 1, s.in.Disks)
		next := stateKey{served: key.served + 1, cache: nc, flights: nf}
		s.relax(idx, &next, 0, served, fetches)
		return
	}
	// The requested block is missing: stall until the earliest completion.
	minRem := 0
	for d := 0; d < s.in.Disks; d++ {
		if flights[d] == 0 {
			continue
		}
		r := flightRemaining(flights[d])
		if minRem == 0 || r < minRem {
			minRem = r
		}
	}
	if minRem == 0 {
		return // nothing in flight: this branch can never serve the request
	}
	nc, nf := tick(cache, flights, minRem, s.in.Disks)
	next := stateKey{served: key.served, cache: nc, flights: nf}
	s.relax(idx, &next, minRem, served, fetches)
}

// saveFetches copies the transition's fetch actions into the shared arena.
func (s *searcher) saveFetches(fetches []fetchAction) (int32, uint16) {
	if len(fetches) == 0 {
		return 0, 0
	}
	off := int32(len(s.fetches))
	s.fetches = append(s.fetches, fetches...)
	return off, uint16(len(fetches))
}

// relax performs the A* relaxation for the edge parent -> next with the given
// stall cost, pruning against the incumbent and reopening closed nodes whose
// cost improves (the heuristic is admissible but not consistent).
func (s *searcher) relax(parent int32, next *stateKey, cost, anchor int, fetches []fetchAction) {
	s.generated++
	newG := s.nodes.recs[parent].g + int32(cost)
	if idx := s.table.get(next); idx != 0 {
		s.dupHits++
		rec := &s.nodes.recs[idx]
		if rec.g <= newG {
			return
		}
		// No incumbent check here: the node passed g + h < incumbent when it
		// was inserted, and newG is smaller still.
		rec.g = newG
		rec.parent = parent
		rec.anchor = int32(anchor)
		rec.fetchOff, rec.fetchCnt = s.saveFetches(fetches)
		rec.closed = false
		s.queue.push(int(newG)+int(rec.h), idx)
		return
	}
	h := s.heuristic(next)
	if s.incumbent >= 0 && int(newG)+int(h) >= s.incumbent {
		s.pruned++
		return
	}
	fetchOff, fetchCnt := s.saveFetches(fetches)
	idx := s.nodes.alloc()
	rec := &s.nodes.recs[idx]
	rec.key = *next
	rec.g = newG
	rec.h = h
	rec.parent = parent
	rec.anchor = int32(anchor)
	rec.fetchOff, rec.fetchCnt = fetchOff, fetchCnt
	s.table.put(next, idx)
	s.queue.push(int(newG)+int(h), idx)
}

// reconstruct rebuilds an optimal schedule by walking parent links from the
// goal node.
func (s *searcher) reconstruct(goal int32) *core.Schedule {
	var chain []int32
	for idx := goal; idx != 0; idx = s.nodes.recs[idx].parent {
		chain = append(chain, idx)
	}
	sched := &core.Schedule{}
	for i := len(chain) - 1; i >= 0; i-- {
		rec := &s.nodes.recs[chain[i]]
		// The wall-clock time at which this transition's fetches were
		// initiated is the parent's cursor position plus the stall paid so
		// far; recording it as MinTime pins cross-disk dependencies (a fetch
		// started right after another disk's completion must not start
		// earlier when the schedule is replayed).
		var minTime int
		if i+1 < len(chain) {
			parent := &s.nodes.recs[chain[i+1]]
			minTime = int(parent.key.served) + int(parent.g)
		}
		for _, fa := range s.fetches[rec.fetchOff : rec.fetchOff+int32(rec.fetchCnt)] {
			evict := core.NoBlock
			if fa.victim >= 0 {
				evict = s.blocks[fa.victim]
			}
			f := core.NewFetch(fa.disk, int(rec.anchor), s.blocks[fa.block], evict)
			f.MinTime = minTime
			sched.Append(f)
		}
	}
	return sched
}
