package opt

// The memory layer of the search: node records live in a flat arena slice and
// are addressed by int32 indices, and an open-addressing hash table maps
// packed state keys to arena indices.  Compared with the former
// map[stateKey]*nodeInfo this removes the per-node heap allocation and the
// map's bucket overhead, which were the allocation hot spot of the search.

// nodeRec is the bookkeeping attached to each reached state.  The sequential
// engine links records with arena-index parents and mutates them in place;
// the parallel driver treats records as immutable once published and links
// them with cross-arena parentRef global refs instead.
type nodeRec struct {
	key       stateKey
	g         int32 // best known stall cost to reach the state
	h         int32 // admissible lower bound on the remaining stall (computed once)
	parent    int32 // arena index of the predecessor on the best known path (0 for the root)
	anchor    int32 // requests served when the transition's fetches were initiated
	fetchOff  int32 // offset into the owning fetch arena
	parentRef int64 // parallel driver: global ref of the predecessor (0 for the root)
	fetchCnt  uint16
	cost      uint16 // stall cost of the incoming transition (reconstruction replay)
	closed    bool   // expanded at its final cost (cleared again if the node is reopened)
}

// nodeArena is the flat node store.  Index 0 is a reserved dummy so that 0
// can serve as the "no node" sentinel in table slots and parent links.
type nodeArena struct {
	recs []nodeRec
}

func newNodeArena() nodeArena {
	return nodeArena{recs: make([]nodeRec, 1, 1024)}
}

// alloc appends a zeroed record and returns its index.  Appending may move
// the backing array, so callers must not hold *nodeRec pointers across calls.
func (a *nodeArena) alloc() int32 {
	a.recs = append(a.recs, nodeRec{})
	return int32(len(a.recs) - 1)
}

// tableSlot is one open-addressing slot; node == 0 means empty.
type tableSlot struct {
	key  stateKey
	node int32
}

// nodeTable is a linear-probing hash table from state keys to arena indices.
// The slot count is always a power of two; the table grows at 3/4 load.
type nodeTable struct {
	slots []tableSlot
	count int
}

const minTableSlots = 1 << 10

func newNodeTable() nodeTable {
	return nodeTable{slots: make([]tableSlot, minTableSlots)}
}

// get returns the arena index recorded for key, or 0 if the key is absent.
func (t *nodeTable) get(key *stateKey) int32 {
	mask := uint64(len(t.slots) - 1)
	for i := key.hash() & mask; ; i = (i + 1) & mask {
		s := &t.slots[i]
		if s.node == 0 {
			return 0
		}
		if s.key == *key {
			return s.node
		}
	}
}

// put records key -> node.  The key must not already be present.
func (t *nodeTable) put(key *stateKey, node int32) {
	if (t.count+1)*4 >= len(t.slots)*3 {
		t.grow()
	}
	t.insert(key, node)
	t.count++
}

func (t *nodeTable) insert(key *stateKey, node int32) {
	mask := uint64(len(t.slots) - 1)
	i := key.hash() & mask
	for t.slots[i].node != 0 {
		i = (i + 1) & mask
	}
	t.slots[i] = tableSlot{key: *key, node: node}
}

func (t *nodeTable) grow() {
	old := t.slots
	t.slots = make([]tableSlot, 2*len(old))
	for i := range old {
		if old[i].node != 0 {
			t.insert(&old[i].key, old[i].node)
		}
	}
}
