// Package opt computes exactly optimal prefetching/caching schedules for
// small instances by uniform-cost search over system states.
//
// The paper compares its algorithms against an information-theoretic optimum
// OPT: the minimum stall time (equivalently elapsed time) over all feasible
// schedules.  For single disks [Albers, Garg, Leonardi, JACM 2000] show OPT
// is computable in polynomial time, and Section 3 of the paper extends this
// to parallel disks at the cost of a little extra cache; both run through a
// linear program (package lpmodel).  For the experiment harness we
// additionally want a completely independent ground truth on small instances,
// obtained here by exhaustive search.
//
// A search state consists of the cursor position, the set of resident blocks,
// and, for every disk, the block currently being fetched together with its
// remaining fetch time.  Transitions either initiate fetches on idle disks,
// serve the next request (advancing every in-flight fetch by one time unit),
// or stall until the earliest fetch completion (paying the stall as cost).
// Dijkstra's algorithm over this graph yields the minimum total stall time.
//
// Two branching modes are provided.  The default pruned mode applies two
// exchange arguments that are standard for this model (and are proved for
// fractional solutions as properties (1) and (2) in Section 3 of the paper):
// an optimal schedule may be assumed to fetch, on each disk, the missing
// block with the earliest next reference, and to evict a block whose next
// reference is furthest in the future.  The full mode branches over every
// missing block and every eviction victim; the tests verify on small random
// instances that both modes agree, supporting the pruning.
package opt
