// Package opt computes exactly optimal prefetching/caching schedules for
// small instances by informed search (A* with branch-and-bound pruning) over
// system states, optionally sharded across goroutines.
//
// The paper compares its algorithms against an information-theoretic optimum
// OPT: the minimum stall time (equivalently elapsed time) over all feasible
// schedules.  For single disks [Albers, Garg, Leonardi, JACM 2000] show OPT
// is computable in polynomial time, and Section 3 of the paper extends this
// to parallel disks at the cost of a little extra cache; both run through a
// linear program (package lpmodel).  For the experiment harness we
// additionally want a completely independent ground truth, obtained here by
// exact state-space search.
//
// # State model
//
// A search state consists of the cursor position, the set of resident blocks,
// and, for every disk, the block currently being fetched together with its
// remaining fetch time.  Transitions either initiate fetches on idle disks,
// serve the next request (advancing every in-flight fetch by one time unit),
// or stall until the earliest fetch completion (paying the stall as cost).
// The minimum-cost path from the initial state to any state with every
// request served realises the minimum total stall time.
//
// # Search
//
// The engine is A* with branch-and-bound pruning.  Node records live in a
// flat arena addressed by int32 indices, reached states are looked up in an
// open-addressing hash table, and the frontier is a monotone bucket queue
// over f = g + h (stall costs are small non-negative integers), so the search
// performs no per-node heap allocations.  Options can disable every
// refinement (NoHeuristic, NoLandmarks, NoDominance, BoundNone); NoHeuristic
// plus BoundNone yields exactly the historical uniform-cost Dijkstra search
// (dominance auto-disables there), and the property tests pin the informed
// engine to the blind one on random instances.
//
// # The bound hierarchy and its admissibility
//
// h lower-bounds the stall time still to be paid from a state s with r
// unserved requests.  Let n be the request count, t(s) the wall-clock time
// already spent and g(s) the stall already paid, so t(s) = (n - r) + g(s).
// Any completion of s serves r more requests, so its remaining elapsed time E
// satisfies remaining stall = E - r, and any lower bound T on E gives the
// admissible h = max(0, T - r).  Three bound families are combined by max;
// each lower-bounds E for every feasible completion.
//
// Per-disk slot/reference matching.  Let disk d carry an in-flight fetch with
// rem_d time remaining (rem_d = 0 if idle) and let p_1 < p_2 < ... < p_m be
// the first future references of the m missing blocks on disk d (referenced
// at or after the cursor, neither resident nor in flight).  Fetches on one
// disk execute sequentially and cannot be aborted, so the j-th remaining
// fetch on disk d (any order) completes no earlier than slot_j = rem_d + j*F.
// Fix any completion and order the m fetches by the reference of the block
// they carry.  The fetch carrying the block referenced at p_j is, in that
// order, the j-th or later fetch, so it completes no earlier than slot_j; the
// requests p_j..n-1 can only be served after it, hence
//
//	E >= rem_d + j*F + (n - p_j)  for every j.
//
// This is the classic rearrangement (sorted-to-sorted matching) argument: the
// scheduler chooses the fetch order, but matching ascending completion slots
// to ascending references is the order that minimises the max of the chain
// bounds, so the max over j is a valid lower bound over all orders.  If the
// in-flight block itself is still referenced, at position q, its delivery
// completes rem_d from now and E >= rem_d + (n - q) joins the max.  The old
// PR-3 bound rem_d + m*F + (n - maxRef_d) is exactly the j = m term, so the
// matching bound dominates it.
//
// Disk-pair merged-slot relaxation.  For a pair of disks, merge their
// completion slots (the multiset {rem_1 + j*F} union {rem_2 + j*F}, sorted
// ascending) and their references (sorted ascending), and apply the same
// matching.  This relaxes the block-to-disk binding — it pretends either disk
// could fetch any of the pair's blocks — so it is weaker per block, but it
// sees the pair's joint saturation: the j-th earliest completion across both
// disks happens no earlier than the j-th smallest merged slot, which no
// per-disk bound can state.  Relaxations only remove constraints, so the
// bound remains admissible; it strictly wins when both disks are loaded and
// their references interleave.
//
// Landmark lower bounds.  Both bounds above are per-state; the landmark table
// (landmark.go) is precomputed once per search from counting relaxations of
// the instance suffix.  For a window of positions [p, t], any execution that
// has served fewer than p requests must, before serving request t, complete
// enough fetches to cover the window's demand regardless of cache content on
// entry; a waterfill over the best possible cache allocation gives a
// stall lower bound win(p, t) that holds for every state entering the window.
// Because a bound that holds for any entering state also holds after any
// earlier window has been traversed, the stall bounds of disjoint windows
// add, and the table lm[p] = max(lm[p+1], max_t win(p, t) + lm[t+1]) is a
// valid lower bound on the stall still to be paid from any state whose cursor
// is at p.  h takes the max of lm[cursor] with the per-state bounds; the
// LandmarkHits counter records evaluations where the landmark strictly won.
//
// h is admissible but not consistent (a delivery can drop a bound by more
// than the transition's cost), so closed nodes are reopened when reached with
// a smaller g; A* with reopening pops the goal with an optimal g.  At a goal
// r = 0 and every bound is 0.
//
// # Branch-and-bound
//
// Before the search, the existing greedy algorithms (package single's
// registry for one disk, package parallel's strategies otherwise) produce
// feasible schedules; the cheapest executed stall time seeds the incumbent
// upper bound, and every generated state with g + h >= incumbent is pruned.
// On an optimal path g + h never exceeds the optimal stall, so pruning is
// lossless while the incumbent is an upper bound; if the incumbent is itself
// optimal the search prunes every path and returns the seed schedule, whose
// optimality is thereby proved.  Seeds run on the nominal cache size k, so
// their stall also upper-bounds searches granted ExtraCache locations (extra
// cache never increases the optimum).
//
// # Dominance merging
//
// Two states can differ syntactically yet admit exactly the same completions
// at the same costs.  canonicalize (opt.go) maps a state to its
// dominance-class representative: resident blocks that are never referenced
// again are dropped from the cache mask, and an in-flight block that is never
// referenced again is renamed to the deadBlock sentinel (its remaining time
// is kept — it still occupies the disk).  The canonical form is a
// bisimulation quotient: a dead resident block never satisfies a future
// request, and evicting it is always at least as good as evicting a live
// block (any schedule that evicts a live block while a dead one is resident
// can be repaired, move for move, to evict the dead one first — the repaired
// schedule serves every request no later); a dead in-flight block's identity
// is irrelevant once its delivery can never serve a request, only its
// remaining occupancy matters.  Hence two states with equal canonical keys
// have identical optimal remaining costs, and the node table keys on the
// canonical form.  A hit with equal raw key counts as DuplicateHits (the
// historical path); a hit whose raw keys differ counts as PrunedByDominance.
// The free-slot direction is covered by the same repair: a state with a dead
// block occupying a cache slot is bisimilar to the state with the slot free,
// because the dead occupant can be evicted by the next fetch at no cost.
//
// # Parallel driver
//
// Options.Workers > 1 runs the same search sharded across goroutines
// (parallel.go): each worker owns an arena and a bucket queue, idle workers
// steal half a victim's frontier, the closed table is sharded under mutexes,
// and the incumbent is a shared atomic updated by CAS-min.  The invariants:
//
//   - Safety: a node is published to its table shard before any worker can
//     reach it, records are immutable once published, and the bound used for
//     pruning only ever decreases (CAS-min), so no worker prunes with a
//     stale-low incumbent.
//   - Termination: a pending-work counter is incremented before a push and
//     decremented after an expansion; it reaches zero exactly when every
//     queue is empty and no expansion is in flight.
//   - Optimality at the goal: workers do not stop at the first goal pop.  A
//     goal found with cost c only CAS-mins the incumbent; the search ends
//     when the pending counter drains, at which point every node with
//     g + h < incumbent has been expanded (none remains queued), so no
//     completion cheaper than the incumbent exists, and the recorded parent
//     chain of the incumbent goal — whose records are immutable — replays a
//     consistent optimal schedule.
//
// Stall and elapsed results are therefore worker-count invariant; expansion
// counters are not (workers race on duplicate discovery), which is why the
// experiment suite pins Workers = 1 for its byte-reproducible tables and the
// parallel driver is surfaced through pcopt -workers / pcbench -opt-workers
// for wall-clock work.  Workers = 1 routes through the sequential engine, so
// it is bit-identical to the default path by construction.
//
// # Branching modes
//
// Two branching modes are provided.  The default pruned mode applies two
// exchange arguments that are standard for this model (and are proved for
// fractional solutions as properties (1) and (2) in Section 3 of the paper):
// an optimal schedule may be assumed to fetch, on each disk, the missing
// block with the earliest next reference, and to evict a block whose next
// reference is furthest in the future.  The full mode branches over every
// missing block and every eviction victim; the tests verify on small random
// instances that both modes agree, supporting the pruning.
//
// # Schedule replay
//
// The reconstructed schedule carries wall-clock MinTime pins on its fetches:
// it encodes the exact execution plan the search costed, not just a fetch
// order.  The executor (internal/sim) honours this by advancing through
// intermediate completions and time gates while stalled on a pinned schedule,
// so mid-stall fetch initiations on other disks start exactly when the search
// assumed; MinTime-free schedules (the greedy and LP algorithms') keep the
// historical single-jump stall semantics.
package opt
