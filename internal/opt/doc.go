// Package opt computes exactly optimal prefetching/caching schedules for
// small instances by informed search (A* with branch-and-bound pruning) over
// system states.
//
// The paper compares its algorithms against an information-theoretic optimum
// OPT: the minimum stall time (equivalently elapsed time) over all feasible
// schedules.  For single disks [Albers, Garg, Leonardi, JACM 2000] show OPT
// is computable in polynomial time, and Section 3 of the paper extends this
// to parallel disks at the cost of a little extra cache; both run through a
// linear program (package lpmodel).  For the experiment harness we
// additionally want a completely independent ground truth, obtained here by
// exact state-space search.
//
// # State model
//
// A search state consists of the cursor position, the set of resident blocks,
// and, for every disk, the block currently being fetched together with its
// remaining fetch time.  Transitions either initiate fetches on idle disks,
// serve the next request (advancing every in-flight fetch by one time unit),
// or stall until the earliest fetch completion (paying the stall as cost).
// The minimum-cost path from the initial state to any state with every
// request served realises the minimum total stall time.
//
// # Search
//
// The engine is A* with branch-and-bound pruning.  Node records live in a
// flat arena addressed by int32 indices, reached states are looked up in an
// open-addressing hash table over the packed state keys, and the frontier is
// a monotone bucket queue over f = g + h (stall costs are small non-negative
// integers), so the search performs no per-node heap allocations.  Options
// can disable both refinements (NoHeuristic and BoundNone), which yields
// exactly the historical uniform-cost Dijkstra search; the property tests pin
// the informed engine to the blind one on random instances.
//
// # The heuristic and its admissibility
//
// h lower-bounds the stall time still to be paid from a state s with r
// unserved requests.  Let n be the request count, let t(s) be the wall-clock
// time already spent and g(s) the stall already paid, so t(s) = (n - r) +
// g(s).  Any completion of s serves r more requests, hence total elapsed time
// is t(s) + E where E, the remaining elapsed time, satisfies remaining stall
// = E - r.  Any lower bound on E therefore gives the admissible heuristic
// h = max(0, max_d T_d - r), where T_d lower-bounds E via the mandatory work
// of disk d:
//
//   - Let m_d be the number of distinct blocks that are referenced at or
//     after the cursor and are neither resident nor in flight, residing on
//     disk d.  Each such block must complete a fetch of length F on disk d
//     before its first future reference is served (blocks only become
//     resident through fetches on their own disk).  Fetches on one disk
//     execute sequentially, and an in-flight fetch (rem_d time units
//     remaining) cannot be aborted, so the last of these fetches completes no
//     earlier than rem_d + m_d*F from now.
//   - The scheduler chooses the fetch order, so the block fetched last can
//     only be one of the m_d missing blocks; after its completion, at least
//     the requests from its first future reference p to the end must still be
//     served, taking at least n - p time units.  Minimising over the
//     scheduler's choice gives the admissible residue n - maxRef_d, where
//     maxRef_d is the latest first-future-reference among the m_d blocks.
//     Hence T_d = rem_d + m_d*F + (n - maxRef_d).
//   - If disk d's in-flight block is itself still referenced (at position q),
//     its delivery completes rem_d from now and the requests q..n-1 are
//     served only afterwards: T_d >= rem_d + (n - q).  The maximum of both
//     bounds is used.
//
// Every quantity counts work that any feasible completion must perform, so
// h never exceeds the true remaining stall: A* with such an admissible h
// (with reopening of closed nodes, since h is not consistent — a delivery
// can drop T_d by more than the transition's cost) pops the goal with an
// optimal g.  At a goal state r = 0 and every mask is empty, so h = 0.
//
// # Branch-and-bound
//
// Before the search, the existing greedy algorithms (package single's
// registry for one disk, package parallel's strategies otherwise) produce
// feasible schedules; the cheapest executed stall time seeds the incumbent
// upper bound, and every generated state with g + h >= incumbent is pruned.
// On an optimal path g + h never exceeds the optimal stall, so pruning is
// lossless while the incumbent is an upper bound; if the incumbent is itself
// optimal the search prunes every path and returns the seed schedule, whose
// optimality is thereby proved.  Seeds run on the nominal cache size k, so
// their stall also upper-bounds searches granted ExtraCache locations (extra
// cache never increases the optimum).
//
// # Branching modes
//
// Two branching modes are provided.  The default pruned mode applies two
// exchange arguments that are standard for this model (and are proved for
// fractional solutions as properties (1) and (2) in Section 3 of the paper):
// an optimal schedule may be assumed to fetch, on each disk, the missing
// block with the earliest next reference, and to evict a block whose next
// reference is furthest in the future.  The full mode branches over every
// missing block and every eviction victim; the tests verify on small random
// instances that both modes agree, supporting the pruning.
package opt
