package opt

import (
	"errors"
	"math/rand"
	"testing"

	"pfcache/internal/core"
	"pfcache/internal/sim"
	"pfcache/internal/workload"
)

// dijkstraOptions is the configuration of the blind reference search: no
// heuristic (uniform-cost order) and no incumbent pruning, i.e. exactly the
// historical Dijkstra engine.
func dijkstraOptions(base Options) Options {
	base.Bound = BoundNone
	base.NoHeuristic = true
	return base
}

// TestAStarMatchesDijkstraProperty is the central engine property test: on
// random single- and multi-disk instances — including extra cache locations
// and full branching — the informed A*/branch-and-bound search must report
// exactly the stall and elapsed time of the unpruned Dijkstra reference, and
// both schedules must execute to the reported stall.
func TestAStarMatchesDijkstraProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 80; trial++ {
		n := 6 + rng.Intn(12)
		blocks := 3 + rng.Intn(5)
		k := 2 + rng.Intn(3)
		f := 1 + rng.Intn(4)
		disks := 1 + rng.Intn(3)
		extra := rng.Intn(2)
		full := trial%5 == 0 && n <= 9 // full branching only on tiny instances
		seq := workload.Uniform(n, blocks, int64(4000+trial))
		in := workload.Instance(seq, k, f, disks, workload.AssignStripe, 0)
		opts := Options{ExtraCache: extra, Full: full}
		astar, err := Optimal(in, opts)
		if err != nil {
			t.Fatalf("trial %d astar: %v", trial, err)
		}
		dijk, err := Optimal(in, dijkstraOptions(opts))
		if err != nil {
			t.Fatalf("trial %d dijkstra: %v", trial, err)
		}
		if astar.Stall != dijk.Stall || astar.Elapsed != dijk.Elapsed {
			t.Fatalf("trial %d: astar stall/elapsed %d/%d != dijkstra %d/%d (seq=%v k=%d F=%d D=%d extra=%d full=%v)",
				trial, astar.Stall, astar.Elapsed, dijk.Stall, dijk.Elapsed, seq, k, f, disks, extra, full)
		}
		if astar.StatesExpanded > dijk.StatesExpanded {
			t.Fatalf("trial %d: astar expanded %d states, more than dijkstra's %d (seq=%v k=%d F=%d D=%d)",
				trial, astar.StatesExpanded, dijk.StatesExpanded, seq, k, f, disks)
		}
		for name, res := range map[string]*Result{"astar": astar, "dijkstra": dijk} {
			simRes, err := sim.Run(in, res.Schedule, sim.Options{})
			if err != nil {
				t.Fatalf("trial %d: %s schedule infeasible: %v\n%v", trial, name, err, res.Schedule)
			}
			if simRes.Stall != res.Stall {
				t.Fatalf("trial %d: %s schedule executes to stall %d, reported %d", trial, name, simRes.Stall, res.Stall)
			}
			if simRes.ExtraCache > extra {
				t.Fatalf("trial %d: %s schedule used %d extra locations, budget %d", trial, name, simRes.ExtraCache, extra)
			}
		}
	}
}

// TestAStarExpandsFewerOnE7Size pins the acceptance criterion of the engine
// rewrite: on the E7-sized instances (the larger rows of experiment E7) the
// informed search expands strictly fewer states than the blind reference.
func TestAStarExpandsFewerOnE7Size(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		seq := workload.Uniform(22, 10, 900+seed)
		in := workload.Instance(seq, 4, 4, 3, workload.AssignStripe, 0)
		astar, err := Optimal(in, Options{})
		if err != nil {
			t.Fatalf("seed %d astar: %v", seed, err)
		}
		dijk, err := Optimal(in, dijkstraOptions(Options{}))
		if err != nil {
			t.Fatalf("seed %d dijkstra: %v", seed, err)
		}
		if astar.Stall != dijk.Stall {
			t.Fatalf("seed %d: stall mismatch %d vs %d", seed, astar.Stall, dijk.Stall)
		}
		if astar.StatesExpanded >= dijk.StatesExpanded {
			t.Errorf("seed %d: astar expanded %d states, want strictly fewer than dijkstra's %d",
				seed, astar.StatesExpanded, dijk.StatesExpanded)
		}
		if astar.PeakTableSize >= dijk.PeakTableSize {
			t.Errorf("seed %d: astar peak table %d, want strictly smaller than dijkstra's %d",
				seed, astar.PeakTableSize, dijk.PeakTableSize)
		}
	}
}

// TestSeedOptimalPath checks the branch-and-bound fast path: on an instance
// where a greedy schedule is optimal, the search proves it without finding a
// better goal and returns the seed schedule itself.
func TestSeedOptimalPath(t *testing.T) {
	// A sequential scan with a warm cache: Aggressive is optimal here.
	seq := workload.SequentialScan(16, 8)
	in := core.SingleDisk(seq, 4, 2).WithInitialCache(0, 1, 2, 3)
	res, err := Optimal(in, Options{})
	if err != nil {
		t.Fatalf("Optimal: %v", err)
	}
	dijk, err := Optimal(in, dijkstraOptions(Options{}))
	if err != nil {
		t.Fatalf("dijkstra: %v", err)
	}
	if res.Stall != dijk.Stall {
		t.Fatalf("stall %d != reference %d", res.Stall, dijk.Stall)
	}
	if res.SeedStall < 0 || res.SeedAlgorithm == "" {
		t.Fatalf("no incumbent was seeded: %+v", res)
	}
	if res.SeedStall < res.Stall {
		t.Fatalf("seed stall %d below the optimum %d: the incumbent was not an upper bound", res.SeedStall, res.Stall)
	}
	if res.SeedOptimal {
		// The seed was proved optimal: its stall must equal the optimum.
		if res.SeedStall != res.Stall {
			t.Fatalf("seed proved optimal but seed stall %d != reported stall %d", res.SeedStall, res.Stall)
		}
	}
	if _, err := sim.Run(in, res.Schedule, sim.Options{}); err != nil {
		t.Fatalf("returned schedule infeasible: %v", err)
	}
}

// TestFetchTimeEncodingLimit checks the satellite fix for the silent flight
// packing overflow: an instance with F beyond the packed encoding's range is
// rejected with a typed error instead of corrupting states.
func TestFetchTimeEncodingLimit(t *testing.T) {
	in := core.SingleDisk(core.Sequence{0, 1, 0, 1}, 2, maxFlightRemaining+1)
	_, err := Optimal(in, Options{})
	var lim *EncodingLimitError
	if !errors.As(err, &lim) {
		t.Fatalf("error = %v, want EncodingLimitError", err)
	}
	if lim.Value != maxFlightRemaining+1 || lim.Limit != maxFlightRemaining || lim.Error() == "" {
		t.Fatalf("unexpected error contents: %+v", lim)
	}
	// The largest representable F must still work.
	ok := core.SingleDisk(core.Sequence{0, 1, 0, 1}, 2, maxFlightRemaining)
	if _, err := Optimal(ok, Options{}); err != nil {
		t.Fatalf("F = %d rejected: %v", maxFlightRemaining, err)
	}
}

// TestParseBound exercises the bound-mode parsing and naming.
func TestParseBound(t *testing.T) {
	for _, c := range []struct {
		s    string
		want BoundMode
	}{{"greedy", BoundGreedy}, {"none", BoundNone}} {
		got, err := ParseBound(c.s)
		if err != nil || got != c.want {
			t.Errorf("ParseBound(%q) = %v, %v", c.s, got, err)
		}
		if got.String() != c.s {
			t.Errorf("BoundMode(%v).String() = %q, want %q", got, got.String(), c.s)
		}
	}
	if _, err := ParseBound("nope"); err == nil {
		t.Errorf("unknown bound mode accepted")
	}
	if BoundMode(42).String() == "" {
		t.Errorf("out-of-range bound mode has empty name")
	}
}

// TestCountersConsistency checks the counter relationships the new Result
// reports: every expansion comes from the table, generated covers duplicates
// and pruned states, and the process-wide counters accumulate.
func TestCountersConsistency(t *testing.T) {
	StatsReset()
	seq := workload.Uniform(16, 7, 12)
	in := workload.Instance(seq, 3, 3, 2, workload.AssignStripe, 0)
	res, err := Optimal(in, Options{})
	if err != nil {
		t.Fatalf("Optimal: %v", err)
	}
	if res.StatesExpanded > res.PeakTableSize {
		t.Errorf("expanded %d states but only %d were materialised", res.StatesExpanded, res.PeakTableSize)
	}
	if res.StatesGenerated < res.DuplicateHits+res.PrunedByBound {
		t.Errorf("generated %d < duplicates %d + pruned %d", res.StatesGenerated, res.DuplicateHits, res.PrunedByBound)
	}
	snap := StatsSnapshot()
	if snap.Searches == 0 || snap.Expanded != uint64(res.StatesExpanded) ||
		snap.Generated != uint64(res.StatesGenerated) || snap.PeakTable != uint64(res.PeakTableSize) {
		t.Errorf("process counters %+v do not reflect the search result %+v", snap, res)
	}
	StatsReset()
	if snap = StatsSnapshot(); snap.Searches != 0 || snap.Expanded != 0 {
		t.Errorf("StatsReset left counters %+v", snap)
	}
}

// TestBucketQueue unit-tests the monotone bucket queue, including pushes
// below the cursor (reopened nodes) and LIFO order within a bucket.
func TestBucketQueue(t *testing.T) {
	var q bucketQueue
	if _, _, ok := q.pop(); ok {
		t.Fatalf("pop on empty queue succeeded")
	}
	q.push(3, 30)
	q.push(1, 10)
	q.push(3, 31)
	if q.len() != 3 {
		t.Fatalf("len = %d, want 3", q.len())
	}
	node, f, ok := q.pop()
	if !ok || f != 1 || node != 10 {
		t.Fatalf("pop = %d@%d, want 10@1", node, f)
	}
	// Push below the cursor: the queue must serve it before bucket 3.
	q.push(0, 5)
	node, f, ok = q.pop()
	if !ok || f != 0 || node != 5 {
		t.Fatalf("pop after below-cursor push = %d@%d, want 5@0", node, f)
	}
	// Bucket 3 drains in LIFO order.
	node, f, _ = q.pop()
	if f != 3 || node != 31 {
		t.Fatalf("pop = %d@%d, want 31@3", node, f)
	}
	node, f, _ = q.pop()
	if f != 3 || node != 30 {
		t.Fatalf("pop = %d@%d, want 30@3", node, f)
	}
	if _, _, ok := q.pop(); ok {
		t.Fatalf("pop on drained queue succeeded")
	}
}

// TestNodeTable unit-tests the open-addressing table: get/put round trips,
// growth with rehashing, and collision survival.
func TestNodeTable(t *testing.T) {
	table := newNodeTable()
	rng := rand.New(rand.NewSource(7))
	keys := make([]stateKey, 0, 3000)
	for i := 0; i < 3000; i++ {
		var k stateKey
		k.served = int32(rng.Intn(1 << 12))
		k.cache = rng.Uint64()
		for d := 0; d < maxDisks; d++ {
			if rng.Intn(3) == 0 {
				k.flights[d] = flightOf(rng.Intn(60), 1+rng.Intn(200))
			}
		}
		if table.get(&k) != 0 {
			continue // duplicate random key
		}
		table.put(&k, int32(len(keys)+1))
		keys = append(keys, k)
	}
	if table.count != len(keys) {
		t.Fatalf("count = %d, want %d", table.count, len(keys))
	}
	if len(table.slots) <= minTableSlots {
		t.Fatalf("table never grew past %d slots despite %d keys", len(table.slots), len(keys))
	}
	for i, k := range keys {
		if got := table.get(&k); got != int32(i+1) {
			t.Fatalf("key %d: get = %d, want %d", i, got, i+1)
		}
	}
	var absent stateKey
	absent.served = -7
	if table.get(&absent) != 0 {
		t.Fatalf("absent key found")
	}
}

// TestHeuristicAdmissibleAtRoot spot-checks admissibility at the root state:
// h(start) must never exceed the true optimal stall time.
func TestHeuristicAdmissibleAtRoot(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 40; trial++ {
		n := 6 + rng.Intn(10)
		blocks := 3 + rng.Intn(5)
		k := 2 + rng.Intn(3)
		f := 1 + rng.Intn(4)
		disks := 1 + rng.Intn(3)
		seq := workload.Uniform(n, blocks, int64(7000+trial))
		in := workload.Instance(seq, k, f, disks, workload.AssignStripe, 0)
		s := newSearcher(in, Options{}, in.Blocks())
		start := s.initialKey()
		h0 := int(s.heuristic(&start, s.hs))
		res, err := Optimal(in, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if h0 > res.Stall {
			t.Fatalf("trial %d: h(start) = %d exceeds the optimal stall %d (seq=%v k=%d F=%d D=%d)",
				trial, h0, res.Stall, seq, k, f, disks)
		}
	}
}
