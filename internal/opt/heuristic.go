package opt

import "math/bits"

// The A* heuristic: an admissible per-state lower bound h on the remaining
// stall time, computed from the remaining mandatory fetch work.  See doc.go
// for the admissibility argument; in short, for every disk d the fetches that
// disk must still perform bound the remaining wall-clock time from below, and
// subtracting the r remaining requests (which account for the served time
// units) turns that into a stall bound.

// initHeuristic precomputes the per-position tables the bound is evaluated
// from: futureMask[p] is the set of block indices referenced at positions
// >= p, diskMask[d] the blocks residing on disk d, and nextRef a dense
// (n+1) x numBlocks table of first-reference-at-or-after positions (sentinel
// n when a block is never referenced again).
func (s *searcher) initHeuristic() {
	n := s.n
	nb := len(s.blocks)
	s.futureMask = make([]uint64, n+1)
	for p := n - 1; p >= 0; p-- {
		s.futureMask[p] = s.futureMask[p+1] | 1<<uint(s.seqIdx[p])
	}
	for bi := range s.blocks {
		s.diskMask[s.diskOf[bi]] |= 1 << uint(bi)
	}
	s.nextRef = make([]int32, (n+1)*nb)
	for bi := 0; bi < nb; bi++ {
		s.nextRef[n*nb+bi] = int32(n)
	}
	for p := n - 1; p >= 0; p-- {
		copy(s.nextRef[p*nb:(p+1)*nb], s.nextRef[(p+1)*nb:(p+2)*nb])
		s.nextRef[p*nb+int(s.seqIdx[p])] = int32(p)
	}
}

// nextRefAt returns the first position >= p at which block index bi is
// referenced, or n if there is none.
func (s *searcher) nextRefAt(bi, p int) int {
	return int(s.nextRef[p*len(s.blocks)+bi])
}

// heuristic computes h for a state.  With NoHeuristic set it returns 0, which
// reduces the search to uniform-cost (Dijkstra) order.
func (s *searcher) heuristic(key *stateKey) int32 {
	if s.opts.NoHeuristic {
		return 0
	}
	served := int(key.served)
	r := s.n - served
	future := s.futureMask[served]
	var inflight uint64
	for d := 0; d < s.in.Disks; d++ {
		if key.flights[d] != 0 {
			inflight |= 1 << uint(flightBlock(key.flights[d]))
		}
	}
	missing := future &^ (key.cache | inflight)
	best := 0
	for d := 0; d < s.in.Disks; d++ {
		rem := 0
		fb := -1
		if key.flights[d] != 0 {
			rem = flightRemaining(key.flights[d])
			fb = flightBlock(key.flights[d])
		}
		t := 0
		if dm := missing & s.diskMask[d]; dm != 0 {
			// Disk d must still fetch the m distinct future-referenced blocks
			// in dm, sequentially, after finishing its current fetch; the
			// block fetched last has its first future reference served only
			// after its fetch completes.  The scheduler can postpone at most
			// the latest-referenced block, so n - maxRef residual serves
			// remain after the final completion.
			m := bits.OnesCount64(dm)
			maxRef := 0
			for mm := dm; mm != 0; mm &= mm - 1 {
				if ref := s.nextRefAt(bits.TrailingZeros64(mm), served); ref > maxRef {
					maxRef = ref
				}
			}
			t = rem + m*s.in.F + (s.n - maxRef)
		}
		if fb >= 0 && future&(1<<uint(fb)) != 0 {
			// The in-flight block itself is still needed: its first future
			// reference is served only after the fetch's remaining rem units.
			if t2 := rem + (s.n - s.nextRefAt(fb, served)); t2 > t {
				t = t2
			}
		}
		if t-r > best {
			best = t - r
		}
	}
	return int32(best)
}
