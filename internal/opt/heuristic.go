package opt

// The A* heuristic: an admissible per-state lower bound h on the remaining
// stall time.  Three families of bounds are combined by max (each is a valid
// lower bound on the remaining elapsed time E, and h = max(0, T - r) where r
// is the number of unserved requests; see doc.go for the admissibility
// arguments):
//
//   - the per-disk slot/reference matching bound: disk d's j-th remaining
//     fetch completes no earlier than rem_d + j*F, and matching those
//     completion slots (ascending) against the missing blocks' first future
//     references (ascending) minimises, over the scheduler's choices, the
//     latest "fetch completes, then the tail of requests is served" chain;
//   - the disk-pair merged-slot bound: the same matching over the merged
//     completion slots of a disk pair against the pair's merged references,
//     which relaxes block-to-disk binding but exposes joint saturation;
//   - the landmark bound (landmark.go): a state-independent window-density
//     bound precomputed once up front from per-disk counting relaxations.
//
// The old PR-3 bound (rem + m*F + (n - maxRef) per disk) is exactly the last
// term (j = m) of the per-disk matching bound, so the new bound dominates it.

// hscratch holds the per-evaluation scratch of the heuristic: the per-disk
// ascending reference lists and the evaluation-local counters.  The sequential
// searcher owns one; the parallel driver gives each worker its own, so
// heuristic evaluation is safe to run concurrently against the read-only
// searcher tables.
type hscratch struct {
	refs [maxDisks][]int32
	// landmarkHits counts evaluations where the landmark bound strictly
	// exceeded the per-state fetch-work bounds.
	landmarkHits int
}

func newHScratch(n int) *hscratch {
	var h hscratch
	for d := range h.refs {
		h.refs[d] = make([]int32, 0, n)
	}
	return &h
}

// initHeuristic precomputes the per-position tables the bound is evaluated
// from: futureMask[p] is the set of block indices referenced at positions
// >= p, diskMask[d] the blocks residing on disk d, and nextRef a dense
// (n+1) x numBlocks table of first-reference-at-or-after positions (sentinel
// n when a block is never referenced again).  With landmarks enabled it also
// builds the window-density landmark table (landmark.go).
func (s *searcher) initHeuristic() {
	n := s.n
	nb := len(s.blocks)
	s.futureMask = make([]uint64, n+1)
	for p := n - 1; p >= 0; p-- {
		s.futureMask[p] = s.futureMask[p+1] | 1<<uint(s.seqIdx[p])
	}
	for bi := range s.blocks {
		s.diskMask[s.diskOf[bi]] |= 1 << uint(bi)
	}
	s.nextRef = make([]int32, (n+1)*nb)
	for bi := 0; bi < nb; bi++ {
		s.nextRef[n*nb+bi] = int32(n)
	}
	for p := n - 1; p >= 0; p-- {
		copy(s.nextRef[p*nb:(p+1)*nb], s.nextRef[(p+1)*nb:(p+2)*nb])
		s.nextRef[p*nb+int(s.seqIdx[p])] = int32(p)
	}
	if s.useLandmarks() {
		s.initLandmarks()
	}
}

// nextRefAt returns the first position >= p at which block index bi is
// referenced, or n if there is none.
func (s *searcher) nextRefAt(bi, p int) int {
	return int(s.nextRef[p*len(s.blocks)+bi])
}

// useLandmarks reports whether the landmark table participates in h.
func (s *searcher) useLandmarks() bool {
	return !s.opts.NoHeuristic && !s.opts.NoLandmarks
}

// useDominance reports whether canonicalized dominance merging is active.
// The blind reference configuration (NoHeuristic + BoundNone) keeps it off so
// that configuration remains exactly the historical Dijkstra engine.
func (s *searcher) useDominance() bool {
	if s.opts.NoDominance {
		return false
	}
	return !(s.opts.NoHeuristic && s.opts.Bound == BoundNone)
}

// heuristic computes h for a state.  With NoHeuristic set it returns 0, which
// reduces the search to uniform-cost (Dijkstra) order.
func (s *searcher) heuristic(key *stateKey, hs *hscratch) int32 {
	if s.opts.NoHeuristic {
		return 0
	}
	served := int(key.served)
	r := s.n - served
	future := s.futureMask[served]
	var inflight uint64
	for d := 0; d < s.in.Disks; d++ {
		if key.flights[d] != 0 {
			inflight |= 1 << uint(flightBlock(key.flights[d]))
		}
	}
	missing := future &^ (key.cache | inflight)

	// Collect, per disk, the ascending first-reference positions of the
	// missing future-referenced blocks: scanning the sequence forward visits
	// each block's first future reference in ascending position order.
	for d := 0; d < s.in.Disks; d++ {
		hs.refs[d] = hs.refs[d][:0]
	}
	if missing != 0 {
		seen := ^missing // positions of non-missing blocks are skipped as "seen"
		for p := served; p < s.n; p++ {
			bi := int(s.seqIdx[p])
			if seen&(1<<uint(bi)) != 0 {
				continue
			}
			seen |= 1 << uint(bi)
			d := s.diskOf[bi]
			hs.refs[d] = append(hs.refs[d], int32(p))
		}
	}

	best := 0
	f := s.in.F
	for d := 0; d < s.in.Disks; d++ {
		rem := 0
		fb := -1
		if key.flights[d] != 0 {
			rem = flightRemaining(key.flights[d])
			fb = flightBlock(key.flights[d])
		}
		// Per-disk slot/reference matching: ascending slots rem + j*F against
		// ascending refs.
		t := 0
		for j, ref := range hs.refs[d] {
			if v := rem + (j+1)*f + (s.n - int(ref)); v > t {
				t = v
			}
		}
		if fb >= 0 && future&(1<<uint(fb)) != 0 {
			// The in-flight block itself is still needed: its first future
			// reference is served only after the fetch's remaining rem units.
			if t2 := rem + (s.n - s.nextRefAt(fb, served)); t2 > t {
				t = t2
			}
		}
		if t-r > best {
			best = t - r
		}
	}
	// Disk-pair merged-slot bounds: joint saturation of a pair that the
	// per-disk bounds cannot see.  Skipped when either side has no missing
	// work (the merged matching would only borrow the idle disk's cheaper
	// slots and weaken below the per-disk bound).
	for d1 := 0; d1 < s.in.Disks; d1++ {
		if len(hs.refs[d1]) == 0 {
			continue
		}
		rem1 := 0
		if key.flights[d1] != 0 {
			rem1 = flightRemaining(key.flights[d1])
		}
		for d2 := d1 + 1; d2 < s.in.Disks; d2++ {
			if len(hs.refs[d2]) == 0 {
				continue
			}
			rem2 := 0
			if key.flights[d2] != 0 {
				rem2 = flightRemaining(key.flights[d2])
			}
			if t := pairBound(hs.refs[d1], hs.refs[d2], rem1, rem2, f, s.n); t-r > best {
				best = t - r
			}
		}
	}
	if s.useLandmarks() {
		if lm := int(s.landmark[served]); lm > best {
			best = lm
			hs.landmarkHits++
		}
	}
	return int32(best)
}

// pairBound matches the merged ascending completion slots of two disks
// (rem1 + j*F and rem2 + j*F) against the pair's merged ascending first
// references: the j-th earliest completion across the pair happens no earlier
// than the j-th smallest merged slot, and sorted-to-sorted matching minimises
// the resulting max over the scheduler's choices, so the result lower-bounds
// the remaining elapsed time.
func pairBound(refs1, refs2 []int32, rem1, rem2, f, n int) int {
	i1, i2 := 0, 0
	j1, j2 := 0, 0
	t := 0
	for i1 < len(refs1) || i2 < len(refs2) {
		var ref int
		if i2 >= len(refs2) || (i1 < len(refs1) && refs1[i1] <= refs2[i2]) {
			ref = int(refs1[i1])
			i1++
		} else {
			ref = int(refs2[i2])
			i2++
		}
		s1 := rem1 + (j1+1)*f
		s2 := rem2 + (j2+1)*f
		var slot int
		if s1 <= s2 {
			slot = s1
			j1++
		} else {
			slot = s2
			j2++
		}
		if v := slot + n - ref; v > t {
			t = v
		}
	}
	return t
}
