package opt

// bucketQueue is a monotone bucket priority queue over small non-negative
// integer priorities (the search's f = g + h values, bounded by the optimal
// stall time).  It replaces the former container/heap binary heap: push and
// pop are O(1) amortized, and entries are bare int32 arena indices, so the
// queue allocates only when a bucket grows.
//
// The cursor normally only moves forward (costs popped in non-decreasing
// order), but a push below the cursor moves it back: the search's heuristic
// is admissible yet not consistent, so a reopened node can re-enter the queue
// with an f value smaller than the current minimum.
type bucketQueue struct {
	buckets [][]int32
	cur     int
	count   int
}

func (q *bucketQueue) push(f int, node int32) {
	for f >= len(q.buckets) {
		q.buckets = append(q.buckets, nil)
	}
	q.buckets[f] = append(q.buckets[f], node)
	if f < q.cur {
		q.cur = f
	}
	q.count++
}

// pop removes and returns a node with the minimum f value.  Ties pop in LIFO
// order, which is deterministic and tends to reach goal states sooner (the
// most recently generated node of equal f is the deepest).
func (q *bucketQueue) pop() (node int32, f int, ok bool) {
	if q.count == 0 {
		return 0, 0, false
	}
	for len(q.buckets[q.cur]) == 0 {
		q.cur++
	}
	b := q.buckets[q.cur]
	node = b[len(b)-1]
	q.buckets[q.cur] = b[:len(b)-1]
	q.count--
	return node, q.cur, true
}

func (q *bucketQueue) len() int { return q.count }
