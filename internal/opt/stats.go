package opt

import "sync/atomic"

// Process-wide search counters, mirroring internal/lp's StatsSnapshot: every
// Optimal call accumulates its work here, so a whole experiment run can
// report how much exhaustive-search effort it spent (pcbench embeds the
// snapshot in its -json output for BENCH_*.json trajectory tracking).  The
// sums are order-independent, so they are byte-reproducible under the
// concurrent experiment driver.

// Counters aggregates search work across every Optimal call in the process.
type Counters struct {
	// Searches counts completed Optimal calls (including failed ones).
	Searches uint64
	// Expanded counts states popped from the queue and expanded.
	Expanded uint64
	// Generated counts states produced for relaxation (each search's root
	// plus every successor produced by an expansion).
	Generated uint64
	// PrunedByBound counts successors discarded because g + h reached the
	// branch-and-bound incumbent.
	PrunedByBound uint64
	// DuplicateHits counts successors that were already present in the node
	// table.
	DuplicateHits uint64
	// PeakTable is the largest node-table size seen in any single search.
	PeakTable uint64
}

var (
	statSearches  atomic.Uint64
	statExpanded  atomic.Uint64
	statGenerated atomic.Uint64
	statPruned    atomic.Uint64
	statDup       atomic.Uint64
	statPeak      atomic.Uint64
)

// StatsSnapshot returns the current process-wide counters.
func StatsSnapshot() Counters {
	return Counters{
		Searches:      statSearches.Load(),
		Expanded:      statExpanded.Load(),
		Generated:     statGenerated.Load(),
		PrunedByBound: statPruned.Load(),
		DuplicateHits: statDup.Load(),
		PeakTable:     statPeak.Load(),
	}
}

// StatsReset zeroes the process-wide counters.
func StatsReset() {
	statSearches.Store(0)
	statExpanded.Store(0)
	statGenerated.Store(0)
	statPruned.Store(0)
	statDup.Store(0)
	statPeak.Store(0)
}

// recordStats folds one search's counters into the process-wide totals.
func (s *searcher) recordStats() {
	statSearches.Add(1)
	statExpanded.Add(uint64(s.expanded))
	statGenerated.Add(uint64(s.generated))
	statPruned.Add(uint64(s.pruned))
	statDup.Add(uint64(s.dupHits))
	peak := uint64(s.table.count)
	for {
		cur := statPeak.Load()
		if peak <= cur || statPeak.CompareAndSwap(cur, peak) {
			return
		}
	}
}
