package opt

import "sync/atomic"

// Process-wide search counters, mirroring internal/lp's StatsSnapshot: every
// Optimal call accumulates its work here, so a whole experiment run can
// report how much exhaustive-search effort it spent (pcbench embeds the
// snapshot in its -json output for BENCH_*.json trajectory tracking).  The
// sums are order-independent, so they are byte-reproducible under the
// concurrent experiment driver.

// Counters aggregates search work across every Optimal call in the process.
type Counters struct {
	// Searches counts completed Optimal calls (including failed ones).
	Searches uint64
	// Expanded counts states popped from the queue and expanded.
	Expanded uint64
	// Generated counts states produced for relaxation (each search's root
	// plus every successor produced by an expansion).
	Generated uint64
	// PrunedByBound counts successors discarded because g + h reached the
	// branch-and-bound incumbent.
	PrunedByBound uint64
	// DuplicateHits counts successors that were already present in the node
	// table under the same raw key.
	DuplicateHits uint64
	// PrunedByDominance counts successors merged into a bisimilar node under
	// canonicalized dominance (different raw key, equal canonical key).
	PrunedByDominance uint64
	// LandmarkHits counts heuristic evaluations where the precomputed
	// landmark bound strictly exceeded the per-state fetch-work bounds.
	LandmarkHits uint64
	// PeakTable is the largest node-table size seen in any single search.
	PeakTable uint64
	// Workers is the largest Options.Workers any search ran with.
	Workers uint64
	// WorkerExpanded counts expansions performed by parallel driver workers
	// (zero when every search ran sequentially); it is a subset of Expanded.
	WorkerExpanded uint64
}

var (
	statSearches     atomic.Uint64
	statExpanded     atomic.Uint64
	statGenerated    atomic.Uint64
	statPruned       atomic.Uint64
	statDup          atomic.Uint64
	statDom          atomic.Uint64
	statLandmark     atomic.Uint64
	statPeak         atomic.Uint64
	statWorkers      atomic.Uint64
	statWorkerExpand atomic.Uint64
)

// StatsSnapshot returns the current process-wide counters.
func StatsSnapshot() Counters {
	return Counters{
		Searches:          statSearches.Load(),
		Expanded:          statExpanded.Load(),
		Generated:         statGenerated.Load(),
		PrunedByBound:     statPruned.Load(),
		DuplicateHits:     statDup.Load(),
		PrunedByDominance: statDom.Load(),
		LandmarkHits:      statLandmark.Load(),
		PeakTable:         statPeak.Load(),
		Workers:           statWorkers.Load(),
		WorkerExpanded:    statWorkerExpand.Load(),
	}
}

// StatsReset zeroes the process-wide counters.
func StatsReset() {
	statSearches.Store(0)
	statExpanded.Store(0)
	statGenerated.Store(0)
	statPruned.Store(0)
	statDup.Store(0)
	statDom.Store(0)
	statLandmark.Store(0)
	statPeak.Store(0)
	statWorkers.Store(0)
	statWorkerExpand.Store(0)
}

// casMax raises c to v if v is larger (a running maximum).
func casMax(c *atomic.Uint64, v uint64) {
	for {
		cur := c.Load()
		if v <= cur || c.CompareAndSwap(cur, v) {
			return
		}
	}
}

// recordStats folds one sequential search's counters into the process-wide
// totals (the parallel driver records through recordParallelStats).
func (s *searcher) recordStats() {
	statSearches.Add(1)
	statExpanded.Add(uint64(s.expanded))
	statGenerated.Add(uint64(s.generated))
	statPruned.Add(uint64(s.pruned))
	statDup.Add(uint64(s.dupHits))
	statDom.Add(uint64(s.prunedDom))
	statLandmark.Add(uint64(s.hs.landmarkHits))
	casMax(&statWorkers, 1)
	casMax(&statPeak, uint64(s.table.count))
}
