package opt

// Landmark lower bounds: a per-position table lm[p] of stall lower bounds
// precomputed once up front from counting relaxations, in the spirit of ALT
// landmarks (precompute on a relaxed problem, combine with the per-state
// bound by max at query time).  Unlike the per-state fetch-work bounds in
// heuristic.go, lm[p] holds for EVERY state with served = p, whatever its
// cache and in-flight content, so it can be attached to a state in O(1).
//
// Derivation (the admissibility proof lives in doc.go).  Fix a window [a, t]
// and let c_d be the number of distinct disk-d blocks whose first reference
// at or after a falls inside the window.  Any state at position a holds at
// most cap resident blocks in total and at most one partially fetched block
// per disk, so disk d must still complete at least (c_d - cap_d - 1)+ full
// fetches before position t can be served, where cap_d is the (adversarial)
// share of the cache holding disk-d blocks.  Serving through t therefore
// takes at least F * v elapsed units, with
//
//	v(a, t) = min over cap allocations (sum cap_d <= cap) of
//	          max_d (c_d - 1 - cap_d)+
//
// which a waterfill computes exactly: v is the smallest level such that the
// excess sum_d (c_d - 1 - v)+ fits in cap.  Serving the t - a + 1 requests
// of the window takes t - a + 1 units, so the stall incurred inside the
// window is at least
//
//	win(a, t) = max(0, F*v(a,t) - (t - a + 1))
//
// Because win(a, t) holds for ANY entering state, the bounds of DISJOINT
// windows add: stall is attributed to the request it precedes, and disjoint
// windows partition the requests they cover.  The table is therefore the
// best chain of disjoint windows,
//
//	lm[p] = max(lm[p+1], max over t in [p, n) of win(p, t) + lm[t+1])
//
// computed right to left.  This summation is what lets the landmark beat the
// per-state matching bounds of heuristic.go: those bound a single saturation
// chain, while a phased workload can force capacity overflows in several
// disjoint phases whose stalls accumulate.
//
// The table costs O(n^2 * D) once per search (v is carried monotonically
// across t for fixed p) and is shared read-only by every worker.

// initLandmarks builds s.landmark; called from initHeuristic when landmarks
// are enabled.
func (s *searcher) initLandmarks() {
	n := s.n
	s.landmark = make([]int32, n+1)
	f := s.in.F
	for p := n - 1; p >= 0; p-- {
		var cnt [maxDisks]int // c_d - counts of distinct first refs in [p, t]
		v := 0
		best := int(s.landmark[p+1]) // skip p: a window may start later
		for t := p; t < n; t++ {
			bi := int(s.seqIdx[t])
			if s.nextRefAt(bi, p) == t {
				cnt[s.diskOf[bi]]++
				// Raise the waterfill level until the excess fits in cap.
				for {
					excess := 0
					for d := 0; d < s.in.Disks; d++ {
						if e := cnt[d] - 1 - v; e > 0 {
							excess += e
						}
					}
					if excess <= s.cap {
						break
					}
					v++
				}
			}
			if lb := f*v - (t - p + 1); lb > 0 {
				if cand := lb + int(s.landmark[t+1]); cand > best {
					best = cand
				}
			}
		}
		s.landmark[p] = int32(best)
	}
}
