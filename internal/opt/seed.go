package opt

import (
	"pfcache/internal/core"
	"pfcache/internal/parallel"
	"pfcache/internal/sim"
	"pfcache/internal/single"
)

// Incumbent seeding for branch-and-bound: before the search starts, the
// existing greedy algorithms produce feasible schedules whose executed stall
// times are upper bounds on the optimum.  The cheapest one becomes the
// incumbent; any state with g + h >= incumbent can be pruned, and if the
// search prunes every path (the incumbent is already optimal) the seed
// schedule itself is returned.
//
// The seeds run on the instance's nominal cache size k, while the search may
// be granted ExtraCache additional locations; the bound remains valid because
// extra cache never increases the optimal stall time.

// seedCandidate is one greedy schedule considered for the incumbent.
type seedCandidate struct {
	name string
	run  func(*core.Instance) (*core.Schedule, error)
}

// seedIncumbent evaluates the greedy seed schedules and installs the cheapest
// feasible one as the incumbent.  Seeds that fail to produce or execute a
// schedule are skipped; with no surviving seed the search runs unpruned.
func (s *searcher) seedIncumbent() {
	var cands []seedCandidate
	if s.in.Disks == 1 {
		for _, a := range single.BoundSeeds() {
			cands = append(cands, seedCandidate{name: "single/" + a.Name, run: a.Run})
		}
	} else {
		for _, a := range parallel.BoundSeeds() {
			cands = append(cands, seedCandidate{name: "parallel/" + a.Name, run: a.Run})
		}
	}
	for _, c := range cands {
		sched, err := c.run(s.in)
		if err != nil {
			continue
		}
		res, err := sim.Run(s.in, sched, sim.Options{})
		if err != nil {
			continue
		}
		if s.seedSched == nil || res.Stall < s.seedStall {
			s.seedSched = sched
			s.seedStall = res.Stall
			s.seedName = c.name
		}
	}
	if s.seedSched != nil {
		s.incumbent = s.seedStall
	}
}
