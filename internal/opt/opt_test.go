package opt

import (
	"errors"
	"math/rand"
	"testing"

	"pfcache/internal/core"
	"pfcache/internal/sim"
	"pfcache/internal/single"
	"pfcache/internal/workload"
)

func introInstance() *core.Instance {
	seq := core.Sequence{0, 1, 2, 3, 3, 4, 0, 3, 3, 1}
	return core.SingleDisk(seq, 4, 4).WithInitialCache(0, 1, 2, 3)
}

func introParallelInstance() *core.Instance {
	seq := core.Sequence{0, 1, 4, 5, 2, 6, 3}
	diskOf := map[core.BlockID]int{0: 0, 1: 0, 2: 0, 3: 0, 4: 1, 5: 1, 6: 1}
	return core.MultiDisk(seq, 4, 4, 2, diskOf).WithInitialCache(0, 1, 4, 5)
}

// verify executes the schedule of a result and checks that the executor
// agrees with the reported stall and respects the extra-cache budget.
func verify(t *testing.T, in *core.Instance, res *Result, extra int) {
	t.Helper()
	simRes, err := sim.Run(in, res.Schedule, sim.Options{})
	if err != nil {
		t.Fatalf("optimal schedule infeasible: %v\n%v", err, res.Schedule)
	}
	if simRes.Stall != res.Stall {
		t.Fatalf("executor stall %d != reported optimal stall %d\n%v", simRes.Stall, res.Stall, res.Schedule)
	}
	if simRes.ExtraCache > extra {
		t.Fatalf("optimal schedule used %d extra cache locations, budget %d", simRes.ExtraCache, extra)
	}
}

// TestIntroExampleOptimal checks that the optimal stall time of the paper's
// single-disk introduction example is 1 (elapsed time 11), matching the
// "better option" discussed in the paper.
func TestIntroExampleOptimal(t *testing.T) {
	in := introInstance()
	res, err := Optimal(in, Options{})
	if err != nil {
		t.Fatalf("Optimal: %v", err)
	}
	if res.Stall != 1 || res.Elapsed != 11 {
		t.Fatalf("optimal stall=%d elapsed=%d, want 1 and 11", res.Stall, res.Elapsed)
	}
	verify(t, in, res, 0)
}

// TestIntroParallelOptimal checks that the optimal stall time of the paper's
// two-disk introduction example is 3, i.e. the schedule described in the
// paper is optimal.
func TestIntroParallelOptimal(t *testing.T) {
	in := introParallelInstance()
	res, err := Optimal(in, Options{})
	if err != nil {
		t.Fatalf("Optimal: %v", err)
	}
	if res.Stall != 3 {
		t.Fatalf("optimal parallel stall = %d, want 3", res.Stall)
	}
	verify(t, in, res, 0)
}

// TestOptimalStallWrapper exercises the convenience wrapper.
func TestOptimalStallWrapper(t *testing.T) {
	st, err := OptimalStall(introInstance(), Options{})
	if err != nil || st != 1 {
		t.Fatalf("OptimalStall = %d, %v; want 1, nil", st, err)
	}
	if _, err := OptimalStall(core.SingleDisk(core.Sequence{0}, 0, 1), Options{}); err == nil {
		t.Fatalf("invalid instance accepted")
	}
}

// TestPrunedMatchesFull validates the exchange-argument pruning: on random
// tiny instances the pruned search and the full search find the same optimal
// stall time.
func TestPrunedMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(7)
		blocks := 3 + rng.Intn(3)
		k := 2 + rng.Intn(2)
		f := 1 + rng.Intn(3)
		disks := 1 + rng.Intn(2)
		seq := workload.Uniform(n, blocks, int64(trial))
		in := workload.Instance(seq, k, f, disks, workload.AssignStripe, 0)
		pruned, err := Optimal(in, Options{})
		if err != nil {
			t.Fatalf("trial %d pruned: %v", trial, err)
		}
		full, err := Optimal(in, Options{Full: true})
		if err != nil {
			t.Fatalf("trial %d full: %v", trial, err)
		}
		if pruned.Stall != full.Stall {
			t.Fatalf("trial %d: pruned stall %d != full stall %d (seq=%v k=%d F=%d D=%d)",
				trial, pruned.Stall, full.Stall, seq, k, f, disks)
		}
		verify(t, in, pruned, 0)
		verify(t, in, full, 0)
	}
}

// TestOptimalLowerBoundsSingleDiskAlgorithms checks on random small instances
// that no approximation algorithm beats the exhaustive optimum and that the
// measured ratios respect the paper's bounds (Theorem 1 for Aggressive, 2 for
// Conservative, Theorem 3 for Delay).
func TestOptimalLowerBoundsSingleDiskAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		n := 8 + rng.Intn(8)
		blocks := 4 + rng.Intn(4)
		k := 2 + rng.Intn(3)
		f := 2 + rng.Intn(3)
		seq := workload.Uniform(n, blocks, int64(100+trial))
		in := core.SingleDisk(seq, k, f)
		optRes, err := Optimal(in, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		verify(t, in, optRes, 0)
		check := func(name string, sched *core.Schedule, bound float64) {
			res, err := sim.Run(in, sched, sim.Options{})
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if res.Stall < optRes.Stall {
				t.Fatalf("trial %d: %s stall %d beats optimal %d (seq=%v k=%d F=%d)",
					trial, name, res.Stall, optRes.Stall, seq, k, f)
			}
			ratio := float64(res.Elapsed) / float64(optRes.Elapsed)
			if ratio > bound+1e-9 {
				t.Fatalf("trial %d: %s elapsed ratio %.4f exceeds bound %.4f (seq=%v k=%d F=%d)",
					trial, name, ratio, bound, seq, k, f)
			}
		}
		ag, err := single.Aggressive(in)
		if err != nil {
			t.Fatalf("Aggressive: %v", err)
		}
		check("aggressive", ag, single.AggressiveUpperBound(k, f))
		cons, err := single.Conservative(in)
		if err != nil {
			t.Fatalf("Conservative: %v", err)
		}
		check("conservative", cons, single.ConservativeUpperBound())
		for _, d := range []int{0, 1, 2, 5} {
			dl, err := single.Delay(in, d)
			if err != nil {
				t.Fatalf("Delay(%d): %v", d, err)
			}
			check("delay", dl, single.DelayUpperBound(d, f))
		}
		comb, err := single.Combination(in)
		if err != nil {
			t.Fatalf("Combination: %v", err)
		}
		check("combination", comb, single.CombinationUpperBound(k, f))
	}
}

// TestOptimalParallelFeasibleAndConsistent checks optimal schedules on random
// multi-disk instances: they execute to exactly the reported stall, use no
// extra cache, and improve (weakly) when an extra cache location is granted.
func TestOptimalParallelFeasibleAndConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 25; trial++ {
		n := 6 + rng.Intn(6)
		blocks := 4 + rng.Intn(4)
		k := 2 + rng.Intn(2)
		f := 1 + rng.Intn(3)
		disks := 2 + rng.Intn(2)
		seq := workload.Uniform(n, blocks, int64(200+trial))
		in := workload.Instance(seq, k, f, disks, workload.AssignStripe, 0)
		base, err := Optimal(in, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		verify(t, in, base, 0)
		extra, err := Optimal(in, Options{ExtraCache: 1})
		if err != nil {
			t.Fatalf("trial %d extra: %v", trial, err)
		}
		verify(t, in, extra, 1)
		if extra.Stall > base.Stall {
			t.Fatalf("trial %d: extra cache increased optimal stall (%d > %d)", trial, extra.Stall, base.Stall)
		}
		if base.StatesExpanded <= 0 && !base.SeedOptimal {
			t.Fatalf("trial %d: no states expanded and no seed proved optimal", trial)
		}
	}
}

// TestMonotonicityInCacheSize checks that the optimal stall time is
// non-increasing in the cache size.
func TestMonotonicityInCacheSize(t *testing.T) {
	seq := workload.Zipf(14, 6, 1.0, 9)
	prev := -1
	for k := 1; k <= 5; k++ {
		in := core.SingleDisk(seq, k, 3)
		st, err := OptimalStall(in, Options{})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if prev >= 0 && st > prev {
			t.Fatalf("optimal stall increased from %d to %d when k grew to %d", prev, st, k)
		}
		prev = st
	}
}

// TestSequentialScanNeedsNoStallWithPrefetch checks a textbook case: a scan
// over m blocks with F <= k-1 can hide every fetch after the cold start.
func TestSequentialScanNeedsNoStallWithPrefetch(t *testing.T) {
	// Cache of 4, F = 2, scanning 8 blocks twice; the first k blocks are
	// warm.  After the cold region, prefetching hides all fetches except the
	// unavoidable ones at the start.
	seq := workload.SequentialScan(16, 8)
	in := core.SingleDisk(seq, 4, 2).WithInitialCache(0, 1, 2, 3)
	res, err := Optimal(in, Options{})
	if err != nil {
		t.Fatalf("Optimal: %v", err)
	}
	verify(t, in, res, 0)
	// Every block is re-referenced 8 requests later while fetches take 2 time
	// units and the disk is the only bottleneck: 12 fetches of 2 time units
	// fit in 16 request slots only if perfectly pipelined; the optimum must
	// still be strictly better than demand paging (12 * 2 = 24 stall).
	if res.Stall >= 24 {
		t.Fatalf("optimal stall %d not better than demand paging", res.Stall)
	}
}

// TestTooLarge checks the state budget guard.
func TestTooLarge(t *testing.T) {
	seq := workload.Uniform(40, 12, 1)
	in := core.SingleDisk(seq, 6, 4)
	// The blind reference search materialises states fastest; the informed
	// engine could in principle solve this instance within the budget.
	_, err := Optimal(in, Options{MaxStates: 50, Bound: BoundNone, NoHeuristic: true})
	var tooLarge *TooLargeError
	if !errors.As(err, &tooLarge) {
		t.Fatalf("error = %v, want TooLargeError", err)
	}
	if tooLarge.Error() == "" {
		t.Fatalf("empty error string")
	}
}

// TestInputValidation checks rejection of unsupported instances.
func TestInputValidation(t *testing.T) {
	if _, err := Optimal(core.SingleDisk(core.Sequence{0}, 0, 1), Options{}); err == nil {
		t.Errorf("invalid instance accepted")
	}
	seq := make(core.Sequence, 70)
	for i := range seq {
		seq[i] = core.BlockID(i)
	}
	if _, err := Optimal(core.SingleDisk(seq, 2, 1), Options{}); err == nil {
		t.Errorf("instance with more than 64 blocks accepted")
	}
	diskOf := map[core.BlockID]int{0: 0}
	many := core.MultiDisk(core.Sequence{0}, 1, 1, 9, diskOf)
	if _, err := Optimal(many, Options{}); err == nil {
		t.Errorf("instance with more than 8 disks accepted")
	}
}

// TestFlightEncoding exercises the flight encoding helpers.
func TestFlightEncoding(t *testing.T) {
	f := flightOf(13, 7)
	if flightBlock(f) != 13 || flightRemaining(f) != 7 {
		t.Fatalf("flight encoding round trip failed: %d %d", flightBlock(f), flightRemaining(f))
	}
	if flightOf(0, 1) == 0 {
		t.Fatalf("flight encoding of block 0 collides with the idle sentinel")
	}
}
