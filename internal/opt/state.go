package opt

// stateKey identifies a search state: the cursor position, the resident set,
// and for every disk the block being fetched (plus one) and its remaining
// fetch time.  The key is a fixed-size value with no pointers, so it can be
// stored directly in the open-addressing node table and compared with ==.
type stateKey struct {
	served  int32
	cache   uint64
	flights [maxDisks]uint16
}

// Flight encoding: a non-idle disk's uint16 holds the fetched block's index
// plus one in the high byte and the remaining fetch time in the low byte.
// Zero is the idle sentinel.  The packing caps the representable values;
// Optimal validates an instance against these limits up front and returns an
// *EncodingLimitError instead of silently corrupting states.
const (
	// maxFlightRemaining is the largest remaining fetch time (hence the
	// largest instance F) the low byte can hold.
	maxFlightRemaining = 255
	// maxFlightBlock is the largest block index the high byte can hold
	// (block+1 must fit in 8 bits).  maxBlocks keeps indices well below this,
	// but the limit is enforced independently so the encoding can never
	// overflow even if maxBlocks grows.
	maxFlightBlock = 254
)

func flightOf(block, remaining int) uint16 { return uint16(block+1)<<8 | uint16(remaining) }

func flightBlock(f uint16) int     { return int(f>>8) - 1 }
func flightRemaining(f uint16) int { return int(f & 0xff) }

// hash mixes the state into a 64-bit value for the open-addressing table.
// The flights array is packed into two words; each word is folded in with a
// multiply-xor-shift round (splitmix-style), which is cheap and spreads the
// small integers of the key across the high bits that the table mask uses.
func (k *stateKey) hash() uint64 {
	const m1 = 0x9E3779B97F4A7C15
	const m2 = 0xBF58476D1CE4E5B9
	flo := uint64(k.flights[0]) | uint64(k.flights[1])<<16 |
		uint64(k.flights[2])<<32 | uint64(k.flights[3])<<48
	fhi := uint64(k.flights[4]) | uint64(k.flights[5])<<16 |
		uint64(k.flights[6])<<32 | uint64(k.flights[7])<<48
	h := (uint64(uint32(k.served)) + 1) * m1
	h = (h ^ k.cache) * m2
	h ^= h >> 29
	h = (h ^ flo) * m1
	h ^= h >> 31
	h = (h ^ fhi) * m2
	h ^= h >> 32
	return h
}

// tick advances every in-flight fetch by delta time units, delivering
// completed blocks into the cache.
func tick(cache uint64, flights [maxDisks]uint16, delta, disks int) (uint64, [maxDisks]uint16) {
	for d := 0; d < disks; d++ {
		if flights[d] == 0 {
			continue
		}
		r := flightRemaining(flights[d])
		if r <= delta {
			cache |= 1 << uint(flightBlock(flights[d]))
			flights[d] = 0
		} else {
			flights[d] = flightOf(flightBlock(flights[d]), r-delta)
		}
	}
	return cache, flights
}
