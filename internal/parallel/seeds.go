package parallel

// BoundSeeds returns the algorithms whose schedules seed the branch-and-bound
// incumbent of the exact search in package opt for multi-disk instances: the
// greedy strategies that need no LP solve (Aggressive, Conservative and the
// demand baseline).  Every schedule they produce is feasible within the
// nominal cache size k, so its executed stall time is an upper bound on the
// optimal stall time — also for searches granted extra cache locations, which
// never increase the optimum.  The LP pipeline is deliberately excluded: the
// exact search is the independent ground truth the LP results are validated
// against, so it must not depend on them.
func BoundSeeds() []Algorithm {
	return []Algorithm{
		{Name: "aggressive", Run: Aggressive},
		{Name: "conservative", Run: Conservative},
		{Name: "demand", Run: Demand},
	}
}
