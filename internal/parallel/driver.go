package parallel

import (
	"fmt"

	"pfcache/internal/core"
)

// policy decides, for one idle disk at a decision point, which block to fetch
// and which block to evict (NoBlock for a free cache location).  The third
// return value reports whether a fetch is initiated at all.
type policy interface {
	decide(dr *driver, disk int) (block, evict core.BlockID, fetch bool)
}

// driver simulates the parallel-disk system while a policy makes per-disk
// fetch decisions, and records the decisions as a schedule.  Replaying the
// schedule through package sim reproduces the same stall time; the emitted
// fetches carry both a request-count anchor and a wall-clock lower bound so
// that decisions taken in the middle of a stall are not moved earlier by the
// executor.
type driver struct {
	in *core.Instance
	ix *core.Index

	cache     map[core.BlockID]bool
	freeSlots int

	time   int
	served int

	inflightBlock []core.BlockID // per disk, NoBlock when idle
	inflightDone  []int          // per disk

	sched *core.Schedule
}

func newDriver(in *core.Instance) *driver {
	d := &driver{
		in:            in,
		ix:            core.NewIndex(in.Seq),
		cache:         make(map[core.BlockID]bool, in.K),
		freeSlots:     in.K - len(in.InitialCache),
		inflightBlock: make([]core.BlockID, in.Disks),
		inflightDone:  make([]int, in.Disks),
		sched:         &core.Schedule{},
	}
	for i := range d.inflightBlock {
		d.inflightBlock[i] = core.NoBlock
	}
	for _, b := range in.InitialCache {
		d.cache[b] = true
	}
	return d
}

func (d *driver) cachedBlocks() []core.BlockID {
	out := make([]core.BlockID, 0, len(d.cache))
	for b := range d.cache {
		out = append(out, b)
	}
	return out
}

// nextMissingOnDisk returns the position of the next request at or after pos
// whose block resides on the given disk and is neither cached nor in flight,
// or -1 if there is none.
func (d *driver) nextMissingOnDisk(disk, pos int) int {
	for p := pos; p < d.in.N(); p++ {
		b := d.in.Seq[p]
		if d.in.Disk(b) != disk {
			continue
		}
		if d.cache[b] || d.blockInFlight(b) {
			continue
		}
		return p
	}
	return -1
}

func (d *driver) blockInFlight(b core.BlockID) bool {
	for _, fb := range d.inflightBlock {
		if fb == b {
			return true
		}
	}
	return false
}

func (d *driver) deliver() {
	for disk := range d.inflightBlock {
		if d.inflightBlock[disk] != core.NoBlock && d.inflightDone[disk] <= d.time {
			d.cache[d.inflightBlock[disk]] = true
			d.inflightBlock[disk] = core.NoBlock
		}
	}
}

func (d *driver) earliestDone() int {
	best := -1
	for disk := range d.inflightBlock {
		if d.inflightBlock[disk] == core.NoBlock {
			continue
		}
		if best == -1 || d.inflightDone[disk] < best {
			best = d.inflightDone[disk]
		}
	}
	return best
}

func (d *driver) run(p policy) (*core.Schedule, error) {
	n := d.in.N()
	for d.served < n {
		d.deliver()
		for disk := 0; disk < d.in.Disks; disk++ {
			if d.inflightBlock[disk] != core.NoBlock {
				continue
			}
			block, evict, ok := p.decide(d, disk)
			if !ok {
				continue
			}
			if evict != core.NoBlock {
				if !d.cache[evict] {
					return nil, fmt.Errorf("parallel: policy evicted absent block %v", evict)
				}
				delete(d.cache, evict)
			} else {
				if d.freeSlots <= 0 {
					return nil, fmt.Errorf("parallel: policy used a free cache location but none is available")
				}
				d.freeSlots--
			}
			d.inflightBlock[disk] = block
			d.inflightDone[disk] = d.time + d.in.F
			f := core.NewFetch(disk, d.served, block, evict)
			f.MinTime = d.time
			d.sched.Append(f)
		}
		b := d.in.Seq[d.served]
		switch {
		case d.cache[b]:
			d.time++
			d.served++
		default:
			done := -1
			if d.blockInFlight(b) {
				for disk := range d.inflightBlock {
					if d.inflightBlock[disk] == b {
						done = d.inflightDone[disk]
					}
				}
			} else {
				done = d.earliestDone()
			}
			if done < 0 {
				return nil, fmt.Errorf("parallel: request %d block %v is missing but no fetch is in progress", d.served, b)
			}
			d.time = done
		}
	}
	return d.sched, nil
}
