package parallel_test

import (
	"math/rand"
	"testing"

	"pfcache/internal/core"
	"pfcache/internal/opt"
	"pfcache/internal/parallel"
	"pfcache/internal/sim"
	"pfcache/internal/workload"
)

func introParallelInstance() *core.Instance {
	seq := core.Sequence{0, 1, 4, 5, 2, 6, 3}
	diskOf := map[core.BlockID]int{0: 0, 1: 0, 2: 0, 3: 0, 4: 1, 5: 1, 6: 1}
	return core.MultiDisk(seq, 4, 4, 2, diskOf).WithInitialCache(0, 1, 4, 5)
}

func mustRun(t *testing.T, in *core.Instance, sched *core.Schedule) *sim.Result {
	t.Helper()
	res, err := sim.Run(in, sched, sim.Options{})
	if err != nil {
		t.Fatalf("schedule infeasible: %v\n%v", err, sched)
	}
	return res
}

// TestAggressiveIntroParallel checks that the parallel Aggressive strategy
// reproduces the schedule described in the paper's two-disk introduction
// example: disk 1 fetches b3 at the request to b2 evicting b1, disk 2 fetches
// c3 one request later evicting b2, and the total stall time is 3.
func TestAggressiveIntroParallel(t *testing.T) {
	in := introParallelInstance()
	sched, err := parallel.Aggressive(in)
	if err != nil {
		t.Fatalf("Aggressive: %v", err)
	}
	res := mustRun(t, in, sched)
	if res.Stall != 3 || res.Elapsed != 10 {
		t.Fatalf("stall=%d elapsed=%d, want 3 and 10\n%v", res.Stall, res.Elapsed, sched)
	}
	if len(sched.Fetches) != 3 {
		t.Fatalf("fetch count = %d, want 3\n%v", len(sched.Fetches), sched)
	}
	first := sched.Fetches[0]
	if first.Disk != 0 || first.Block != 2 || first.Evict != 0 || first.After != 1 {
		t.Fatalf("first fetch = %v, want disk0 +b2 -b0 at anchor 1", first)
	}
	second := sched.Fetches[1]
	if second.Disk != 1 || second.Block != 6 || second.Evict != 1 || second.After != 2 {
		t.Fatalf("second fetch = %v, want disk1 +b6 -b1 at anchor 2", second)
	}
}

// TestConservativeAndDemandIntroParallel checks feasibility and sensible
// ordering of the other baselines on the worked example.
func TestConservativeAndDemandIntroParallel(t *testing.T) {
	in := introParallelInstance()
	cons, err := parallel.Conservative(in)
	if err != nil {
		t.Fatalf("Conservative: %v", err)
	}
	cres := mustRun(t, in, cons)
	dem, err := parallel.Demand(in)
	if err != nil {
		t.Fatalf("Demand: %v", err)
	}
	dres := mustRun(t, in, dem)
	if cres.Stall > dres.Stall {
		t.Fatalf("Conservative stall %d worse than demand stall %d", cres.Stall, dres.Stall)
	}
	// Demand paging pays the full fetch time for each of the three faults,
	// minus overlap it cannot exploit.
	if dres.Stall != 3*in.F {
		t.Fatalf("demand stall = %d, want %d", dres.Stall, 3*in.F)
	}
}

// TestLPOptimalIntroParallel checks the Theorem 4 algorithm on the worked
// example: stall at most the optimum (3) and extra cache within 2(D-1).
func TestLPOptimalIntroParallel(t *testing.T) {
	in := introParallelInstance()
	res, err := parallel.LPOptimal(in)
	if err != nil {
		t.Fatalf("LPOptimal: %v", err)
	}
	if res.Stall > 3 {
		t.Fatalf("LP-optimal stall = %d, want at most 3", res.Stall)
	}
	if res.ExtraCache > 2 {
		t.Fatalf("extra cache = %d, want at most 2", res.ExtraCache)
	}
	mustRun(t, in, res.Schedule)
}

// TestParallelAlgorithmsFeasibleOnRandomWorkloads checks feasibility, zero
// extra cache for the greedy algorithms, and the expected ordering
// LP-optimal <= others on random multi-disk instances (using the exhaustive
// optimum as an additional reference on the smallest ones).
func TestParallelAlgorithmsFeasibleOnRandomWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 12; trial++ {
		n := 10 + rng.Intn(8)
		blocks := 5 + rng.Intn(4)
		k := 3 + rng.Intn(2)
		f := 2 + rng.Intn(2)
		disks := 2 + rng.Intn(2)
		seq := workload.Uniform(n, blocks, int64(500+trial))
		in := workload.Instance(seq, k, f, disks, workload.AssignStripe, 0)

		optRes, err := opt.Optimal(in, opt.Options{})
		if err != nil {
			t.Fatalf("opt: %v", err)
		}
		lpRes, err := parallel.LPOptimal(in)
		if err != nil {
			t.Fatalf("LPOptimal: %v", err)
		}
		if lpRes.Stall > optRes.Stall {
			t.Errorf("trial %d: LP-optimal stall %d exceeds optimal %d (seq=%v k=%d F=%d D=%d)",
				trial, lpRes.Stall, optRes.Stall, seq, k, f, disks)
		}
		if lpRes.ExtraCache > 2*(disks-1) {
			t.Errorf("trial %d: LP-optimal extra cache %d exceeds 2(D-1)=%d", trial, lpRes.ExtraCache, 2*(disks-1))
		}

		for _, a := range []parallel.Algorithm{{Name: "aggressive", Run: parallel.Aggressive}, {Name: "conservative", Run: parallel.Conservative}, {Name: "demand", Run: parallel.Demand}} {
			sched, err := a.Run(in)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, a.Name, err)
			}
			res, err := sim.Run(in, sched, sim.Options{})
			if err != nil {
				t.Fatalf("trial %d %s: infeasible: %v\n%v", trial, a.Name, err, sched)
			}
			if res.ExtraCache != 0 {
				t.Errorf("trial %d %s: used %d extra cache locations", trial, a.Name, res.ExtraCache)
			}
			if res.Stall < optRes.Stall {
				t.Errorf("trial %d %s: stall %d beats the optimum %d", trial, a.Name, res.Stall, optRes.Stall)
			}
		}
	}
}

// TestSingleDiskDegenerateCase checks that the parallel algorithms also work
// with D = 1 and then agree with their single-disk counterparts' guarantees.
func TestSingleDiskDegenerateCase(t *testing.T) {
	seq := workload.Zipf(60, 8, 1.0, 3)
	in := core.SingleDisk(seq, 4, 3)
	for _, a := range parallel.Algorithms() {
		sched, err := a.Run(in)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		mustRun(t, in, sched)
	}
}

// TestByName exercises the registry.
func TestByName(t *testing.T) {
	for _, name := range []string{"lp-optimal", "aggressive", "conservative", "demand"} {
		if _, err := parallel.ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := parallel.ByName("nope"); err == nil {
		t.Errorf("unknown algorithm accepted")
	}
}

// TestInvalidInstanceRejected checks validation.
func TestInvalidInstanceRejected(t *testing.T) {
	bad := core.SingleDisk(core.Sequence{0}, 0, 1)
	if _, err := parallel.Aggressive(bad); err == nil {
		t.Errorf("Aggressive accepted an invalid instance")
	}
	if _, err := parallel.Conservative(bad); err == nil {
		t.Errorf("Conservative accepted an invalid instance")
	}
	if _, err := parallel.Demand(bad); err == nil {
		t.Errorf("Demand accepted an invalid instance")
	}
	var e *parallel.ErrNotParallel
	_, err := parallel.Aggressive(bad)
	if err != nil {
		var ok bool
		e, ok = err.(*parallel.ErrNotParallel)
		if !ok || e.Error() == "" || e.Unwrap() == nil {
			t.Errorf("unexpected error type %T", err)
		}
	}
}
