package parallel

import (
	"fmt"

	"pfcache/internal/core"
	"pfcache/internal/lp"
	"pfcache/internal/lpmodel"
)

// LPOptimal runs the Theorem 4 algorithm of the paper: it builds the
// synchronized-schedule linear program, solves its relaxation and extracts an
// integral schedule.  The returned result carries the schedule, its measured
// stall time and extra cache usage, and the fractional lower bound on
// sOPT(sigma, k) that the schedule is measured against.
func LPOptimal(in *core.Instance) (*lpmodel.PlanResult, error) {
	return LPOptimalWith(in, lp.Options{})
}

// LPOptimalWith is LPOptimal with explicit solver options, so callers (the
// experiment driver's -solver flag in particular) can select the simplex
// implementation or tune its tolerances.
func LPOptimalWith(in *core.Instance, opts lp.Options) (*lpmodel.PlanResult, error) {
	return lpmodel.Plan(in, opts)
}

// Func is a parallel-disk prefetching/caching algorithm.
type Func func(*core.Instance) (*core.Schedule, error)

// Algorithm pairs a parallel-disk algorithm with its display name.
type Algorithm struct {
	Name string
	Run  Func
}

// Algorithms returns the parallel-disk algorithm suite used by the experiment
// harness: the Theorem 4 LP algorithm, parallel Aggressive, parallel
// Conservative, and the demand-paging baseline.
func Algorithms() []Algorithm {
	return AlgorithmsWith(lp.Options{})
}

// AlgorithmsWith is Algorithms with explicit solver options applied to the
// lp-optimal entry (the other algorithms solve no LPs).
func AlgorithmsWith(opts lp.Options) []Algorithm {
	return []Algorithm{
		{Name: "lp-optimal", Run: func(in *core.Instance) (*core.Schedule, error) {
			res, err := LPOptimalWith(in, opts)
			if err != nil {
				return nil, err
			}
			return res.Schedule, nil
		}},
		{Name: "aggressive", Run: Aggressive},
		{Name: "conservative", Run: Conservative},
		{Name: "demand", Run: Demand},
	}
}

// ByName resolves a parallel-disk algorithm by name ("lp-optimal",
// "aggressive", "conservative" or "demand").
func ByName(name string) (Algorithm, error) {
	for _, a := range Algorithms() {
		if a.Name == name {
			return a, nil
		}
	}
	return Algorithm{}, fmt.Errorf("parallel: unknown algorithm %q", name)
}
