package parallel

import (
	"fmt"

	"pfcache/internal/core"
	"pfcache/internal/paging"
)

// ErrNotParallel is returned when an instance fails validation for the
// parallel algorithms (they accept any D >= 1, so this only wraps basic
// instance validation failures).
type ErrNotParallel struct {
	Err error
}

func (e *ErrNotParallel) Error() string {
	return fmt.Sprintf("parallel: invalid instance: %v", e.Err)
}

func (e *ErrNotParallel) Unwrap() error { return e.Err }

// Aggressive computes the schedule of the parallel-disk Aggressive strategy:
// whenever a disk is idle it starts a prefetch for the next missing block
// residing on that disk, provided some cached block is not requested before
// that block; the victim is the cached block whose next reference is furthest
// in the future.  Kimbrel and Karlin showed that the elapsed-time
// approximation ratio of this strategy grows like the number of disks D,
// which is the behaviour experiment E8 reproduces.
func Aggressive(in *core.Instance) (*core.Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, &ErrNotParallel{Err: err}
	}
	d := newDriver(in)
	return d.run(aggressivePolicy{})
}

type aggressivePolicy struct{}

func (aggressivePolicy) decide(dr *driver, disk int) (core.BlockID, core.BlockID, bool) {
	j := dr.nextMissingOnDisk(disk, dr.served)
	if j < 0 {
		return core.NoBlock, core.NoBlock, false
	}
	b := dr.in.Seq[j]
	if dr.freeSlots > 0 {
		return b, core.NoBlock, true
	}
	victim, ref := dr.ix.FurthestNext(dr.cachedBlocks(), dr.served)
	if victim == core.NoBlock || ref < j {
		// Every cached block is requested before the block to be fetched.
		return core.NoBlock, core.NoBlock, false
	}
	return b, victim, true
}

// Conservative computes the schedule of the parallel-disk Conservative
// strategy: it performs exactly the replacements of the optimal offline
// paging algorithm MIN and fetches each faulting block on its own disk at the
// earliest point consistent with the chosen eviction.
func Conservative(in *core.Instance) (*core.Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, &ErrNotParallel{Err: err}
	}
	ix := core.NewIndex(in.Seq)
	decisions := paging.MIN(in.Seq, in.K, in.InitialCache)
	sched := &core.Schedule{}
	for _, dec := range decisions {
		anchor := 0
		if dec.Victim != core.NoBlock {
			if last := ix.LastBefore(dec.Victim, dec.Pos); last >= 0 {
				anchor = last + 1
			}
		}
		sched.Append(core.NewFetch(in.Disk(dec.Block), anchor, dec.Block, dec.Victim))
	}
	return sched, nil
}

// Demand computes the no-prefetching baseline for parallel disks: each
// missing block is fetched, on its own disk, only when it is requested, with
// MIN replacement.
func Demand(in *core.Instance) (*core.Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, &ErrNotParallel{Err: err}
	}
	decisions := paging.MIN(in.Seq, in.K, in.InitialCache)
	sched := &core.Schedule{}
	for _, dec := range decisions {
		sched.Append(core.NewFetch(in.Disk(dec.Block), dec.Pos, dec.Block, dec.Victim))
	}
	return sched, nil
}
