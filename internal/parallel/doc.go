// Package parallel implements integrated prefetching and caching algorithms
// for systems with D parallel disks.
//
// The main entry point is LPOptimal, the Theorem 4 algorithm of the paper: it
// computes, in polynomial time, a schedule whose stall time is bounded by the
// optimal stall time sOPT(sigma, k) while using at most 2(D-1) extra cache
// locations, via the synchronized-schedule linear program of package lpmodel.
//
// The package also provides the natural parallel-disk generalisations of the
// classical single-disk strategies, which Kimbrel and Karlin analysed and
// which serve as baselines in the experiment harness:
//
//   - Aggressive: whenever a disk is idle, it starts a prefetch for the next
//     missing block residing on it, provided a cached block exists that is
//     not requested before that block; the victim is the cached block whose
//     next reference is furthest in the future.  Kimbrel and Karlin showed
//     that the approximation ratio of this strategy degrades to roughly D.
//
//   - Conservative: performs the replacements of the optimal paging algorithm
//     MIN, fetching each faulting block on its own disk at the earliest point
//     consistent with the eviction.
//
//   - Demand: the no-prefetching baseline (MIN replacement), fetching each
//     missing block only when it is requested.
//
// Kimbrel and Karlin's Reverse Aggressive algorithm (Aggressive run on the
// reversed sequence) is not implemented; it is prior work that the paper
// cites only for context, and its schedule-reversal construction is out of
// scope for this reproduction.  EXPERIMENTS.md records this gap.
package parallel
