package core

import (
	"reflect"
	"testing"
)

func validInstance() *Instance {
	seq, _ := ParseSequence("a b c a d b")
	return &Instance{
		Seq:   seq,
		K:     3,
		F:     2,
		Disks: 2,
		DiskOf: map[BlockID]int{
			0: 0, 1: 0, 2: 1, 3: 1,
		},
	}
}

func TestInstanceValidateOK(t *testing.T) {
	if err := validInstance().Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
}

func TestInstanceValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Instance)
	}{
		{"zero cache", func(in *Instance) { in.K = 0 }},
		{"zero fetch time", func(in *Instance) { in.F = 0 }},
		{"zero disks", func(in *Instance) { in.Disks = 0 }},
		{"missing disk map", func(in *Instance) { in.DiskOf = nil }},
		{"disk out of range", func(in *Instance) { in.DiskOf[2] = 5 }},
		{"oversized initial cache", func(in *Instance) { in.InitialCache = []BlockID{0, 1, 2, 3} }},
		{"duplicate initial block", func(in *Instance) { in.InitialCache = []BlockID{0, 0} }},
		{"invalid initial block", func(in *Instance) { in.InitialCache = []BlockID{NoBlock} }},
		{"invalid request", func(in *Instance) { in.Seq[0] = NoBlock }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := validInstance()
			tc.mutate(in)
			if err := in.Validate(); err == nil {
				t.Fatalf("expected validation error")
			}
		})
	}
}

func TestSingleDiskConstructor(t *testing.T) {
	seq, _ := ParseSequence("a b c")
	in := SingleDisk(seq, 2, 3)
	if err := in.Validate(); err != nil {
		t.Fatalf("SingleDisk instance invalid: %v", err)
	}
	if in.Disks != 1 {
		t.Errorf("Disks = %d, want 1", in.Disks)
	}
	if in.Disk(2) != 0 {
		t.Errorf("Disk(b2) = %d, want 0", in.Disk(2))
	}
	if in.N() != 3 {
		t.Errorf("N = %d, want 3", in.N())
	}
}

func TestMultiDiskConstructorAndQueries(t *testing.T) {
	in := validInstance()
	if got := in.Blocks(); !reflect.DeepEqual(got, []BlockID{0, 1, 2, 3}) {
		t.Errorf("Blocks = %v", got)
	}
	if got := in.BlocksOnDisk(0); !reflect.DeepEqual(got, []BlockID{0, 1}) {
		t.Errorf("BlocksOnDisk(0) = %v", got)
	}
	if got := in.BlocksOnDisk(1); !reflect.DeepEqual(got, []BlockID{2, 3}) {
		t.Errorf("BlocksOnDisk(1) = %v", got)
	}
	md := MultiDisk(in.Seq, 3, 2, 2, in.DiskOf)
	if err := md.Validate(); err != nil {
		t.Fatalf("MultiDisk invalid: %v", err)
	}
}

func TestWithInitialCacheAndBlocksIncludesInitial(t *testing.T) {
	seq, _ := ParseSequence("a b")
	in := SingleDisk(seq, 3, 2).WithInitialCache(0, 5)
	if err := in.Validate(); err != nil {
		t.Fatalf("instance with initial cache invalid: %v", err)
	}
	if got := in.Blocks(); !reflect.DeepEqual(got, []BlockID{0, 1, 5}) {
		t.Errorf("Blocks = %v, want [0 1 5]", got)
	}
}

func TestColdMisses(t *testing.T) {
	seq, _ := ParseSequence("a b c a b")
	in := SingleDisk(seq, 3, 2)
	if got := in.ColdMisses(); got != 3 {
		t.Errorf("ColdMisses = %d, want 3", got)
	}
	in = in.WithInitialCache(0, 1)
	if got := in.ColdMisses(); got != 1 {
		t.Errorf("ColdMisses with warm cache = %d, want 1", got)
	}
}

func TestInstanceClone(t *testing.T) {
	in := validInstance().WithInitialCache(0)
	c := in.Clone()
	c.Seq[0] = 3
	c.DiskOf[0] = 1
	c.InitialCache[0] = 1
	if in.Seq[0] == 3 || in.DiskOf[0] == 1 || in.InitialCache[0] == 1 {
		t.Fatalf("Clone aliases the original instance")
	}
}

func TestInstanceString(t *testing.T) {
	got := validInstance().String()
	if got == "" {
		t.Fatalf("empty String()")
	}
}
