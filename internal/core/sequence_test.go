package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestParseSequence(t *testing.T) {
	seq, names := ParseSequence("a b a c b")
	want := Sequence{0, 1, 0, 2, 1}
	if !reflect.DeepEqual(seq, want) {
		t.Fatalf("ParseSequence = %v, want %v", seq, want)
	}
	if names["a"] != 0 || names["b"] != 1 || names["c"] != 2 {
		t.Fatalf("unexpected name map %v", names)
	}
	if len(names) != 3 {
		t.Fatalf("expected 3 names, got %d", len(names))
	}
}

func TestParseSequenceEmpty(t *testing.T) {
	seq, names := ParseSequence("   ")
	if len(seq) != 0 || len(names) != 0 {
		t.Fatalf("expected empty parse, got %v %v", seq, names)
	}
}

func TestSequenceDistinct(t *testing.T) {
	seq := Sequence{3, 1, 3, 2, 1, 0}
	got := seq.Distinct()
	want := []BlockID{3, 1, 2, 0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Distinct = %v, want %v", got, want)
	}
}

func TestSequenceMaxBlock(t *testing.T) {
	if got := (Sequence{}).MaxBlock(); got != NoBlock {
		t.Errorf("empty MaxBlock = %v, want NoBlock", got)
	}
	if got := (Sequence{2, 7, 1}).MaxBlock(); got != 7 {
		t.Errorf("MaxBlock = %v, want 7", got)
	}
}

func TestSequenceValidate(t *testing.T) {
	if err := (Sequence{0, 1, 2}).Validate(); err != nil {
		t.Errorf("valid sequence rejected: %v", err)
	}
	if err := (Sequence{0, NoBlock}).Validate(); err == nil {
		t.Errorf("sequence with NoBlock accepted")
	}
}

func TestSequenceClone(t *testing.T) {
	seq := Sequence{1, 2, 3}
	c := seq.Clone()
	c[0] = 9
	if seq[0] != 1 {
		t.Fatalf("Clone aliases the original")
	}
}

func TestBlockString(t *testing.T) {
	if got := BlockID(5).String(); got != "b5" {
		t.Errorf("String = %q, want b5", got)
	}
	if got := NoBlock.String(); got != "-" {
		t.Errorf("NoBlock String = %q, want -", got)
	}
	if NoBlock.Valid() {
		t.Errorf("NoBlock reported valid")
	}
	if !BlockID(0).Valid() {
		t.Errorf("block 0 reported invalid")
	}
}

func TestIndexBasics(t *testing.T) {
	seq, _ := ParseSequence("a b a c b a")
	ix := NewIndex(seq)

	if ix.Len() != 6 {
		t.Fatalf("Len = %d, want 6", ix.Len())
	}
	if got := ix.Occurrences(0); !reflect.DeepEqual(got, []int{0, 2, 5}) {
		t.Errorf("Occurrences(a) = %v", got)
	}
	if got := ix.Count(1); got != 2 {
		t.Errorf("Count(b) = %d, want 2", got)
	}
	if got := ix.NextAt(0, 0); got != 0 {
		t.Errorf("NextAt(a,0) = %d, want 0", got)
	}
	if got := ix.NextAt(0, 1); got != 2 {
		t.Errorf("NextAt(a,1) = %d, want 2", got)
	}
	if got := ix.NextAfter(0, 2); got != 5 {
		t.Errorf("NextAfter(a,2) = %d, want 5", got)
	}
	if got := ix.NextAfter(0, 5); got != NoRef {
		t.Errorf("NextAfter(a,5) = %d, want NoRef", got)
	}
	if got := ix.NextAt(2, 4); got != NoRef {
		t.Errorf("NextAt(c,4) = %d, want NoRef", got)
	}
	if got := ix.LastBefore(0, 5); got != 2 {
		t.Errorf("LastBefore(a,5) = %d, want 2", got)
	}
	if got := ix.LastBefore(0, 0); got != -1 {
		t.Errorf("LastBefore(a,0) = %d, want -1", got)
	}
	if got := ix.First(2); got != 3 {
		t.Errorf("First(c) = %d, want 3", got)
	}
	if got := ix.Last(1); got != 4 {
		t.Errorf("Last(b) = %d, want 4", got)
	}
	if got := ix.First(99); got != NoRef {
		t.Errorf("First(unknown) = %d, want NoRef", got)
	}
	if got := ix.Last(99); got != -1 {
		t.Errorf("Last(unknown) = %d, want -1", got)
	}
	if got := ix.Blocks(); !reflect.DeepEqual(got, []BlockID{0, 1, 2}) {
		t.Errorf("Blocks = %v", got)
	}
}

func TestIndexFurthestAndEarliest(t *testing.T) {
	seq, _ := ParseSequence("a b c a b d")
	ix := NewIndex(seq)
	// At position 1 the next references are: a->3, b->1, c->2, d->5.
	b, ref := ix.FurthestNext([]BlockID{0, 1, 2, 3}, 1)
	if b != 3 || ref != 5 {
		t.Errorf("FurthestNext = %v@%d, want b3@5", b, ref)
	}
	b, ref = ix.EarliestNext([]BlockID{0, 2, 3}, 1)
	if b != 2 || ref != 2 {
		t.Errorf("EarliestNext = %v@%d, want b2@2", b, ref)
	}
	// Blocks never referenced again are "furthest".
	b, ref = ix.FurthestNext([]BlockID{0, 1}, 5)
	if b != 0 || ref != NoRef {
		t.Errorf("FurthestNext past end = %v@%d, want b0@NoRef", b, ref)
	}
	// EarliestNext skips blocks that are never referenced again.
	b, _ = ix.EarliestNext([]BlockID{0, 1, 2}, 6)
	if b != NoBlock {
		t.Errorf("EarliestNext past end = %v, want NoBlock", b)
	}
	b, _ = ix.FurthestNext(nil, 0)
	if b != NoBlock {
		t.Errorf("FurthestNext(nil) = %v, want NoBlock", b)
	}
}

// TestIndexQuickConsistency checks, on random sequences, that the index
// answers agree with a brute-force scan of the sequence.
func TestIndexQuickConsistency(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(raw []uint8, posRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		seq := make(Sequence, len(raw))
		for i, v := range raw {
			seq[i] = BlockID(v % 8)
		}
		ix := NewIndex(seq)
		pos := int(posRaw) % (len(seq) + 1)
		for b := BlockID(0); b < 8; b++ {
			// Brute-force NextAt.
			want := NoRef
			for p := pos; p < len(seq); p++ {
				if seq[p] == b {
					want = p
					break
				}
			}
			if got := ix.NextAt(b, pos); got != want {
				return false
			}
			// Brute-force LastBefore.
			wantLast := -1
			for p := 0; p < pos && p < len(seq); p++ {
				if seq[p] == b {
					wantLast = p
				}
			}
			if got := ix.LastBefore(b, pos); got != wantLast {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRefString(t *testing.T) {
	if got := refString(NoRef); got != "inf" {
		t.Errorf("refString(NoRef) = %q", got)
	}
	if got := refString(7); got != "7" {
		t.Errorf("refString(7) = %q", got)
	}
}

func TestSequenceString(t *testing.T) {
	seq := Sequence{0, 1}
	if got := seq.String(); got != "b0 b1" {
		t.Errorf("String = %q", got)
	}
}

// TestIndexRandomFurthest cross-checks FurthestNext against a direct argmax.
func TestIndexRandomFurthest(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(40)
		seq := make(Sequence, n)
		for i := range seq {
			seq[i] = BlockID(rng.Intn(6))
		}
		ix := NewIndex(seq)
		cands := []BlockID{0, 1, 2, 3, 4, 5}
		pos := rng.Intn(n + 1)
		got, gotRef := ix.FurthestNext(cands, pos)
		bestRef := -1
		for _, b := range cands {
			if r := ix.NextAt(b, pos); r > bestRef {
				bestRef = r
			}
		}
		if gotRef != bestRef {
			t.Fatalf("trial %d: FurthestNext ref %d, want %d (seq=%v pos=%d got=%v)",
				trial, gotRef, bestRef, seq, pos, got)
		}
	}
}
