package core

import (
	"fmt"
	"sort"
)

// Instance is a complete problem instance for integrated prefetching and
// caching: the request sequence, the cache size k, the fetch time F, the
// number of disks and the assignment of blocks to disks, and the initial
// cache contents.
//
// The zero value is not usable; construct instances with SingleDisk,
// MultiDisk or by filling in the fields and calling Validate.
type Instance struct {
	// Seq is the request sequence.
	Seq Sequence
	// K is the number of cache locations (the paper's k).
	K int
	// F is the fetch time in time units (the paper's F).
	F int
	// Disks is the number of parallel disks (the paper's D).  It must be at
	// least 1.
	Disks int
	// DiskOf maps every block referenced in Seq (and every block in
	// InitialCache) to the disk it resides on, in the range [0, Disks).  It
	// may be nil when Disks == 1, in which case every block resides on disk 0.
	DiskOf map[BlockID]int
	// InitialCache lists the blocks initially resident in the cache.  It may
	// contain at most K blocks; the remaining cache locations are initially
	// free.  A free location can absorb one fetched block without an
	// eviction.  This generalises the paper's convention that the cache
	// initially holds blocks that are never requested.
	InitialCache []BlockID
}

// SingleDisk builds a single-disk instance with an initially empty cache.
func SingleDisk(seq Sequence, k, f int) *Instance {
	return &Instance{Seq: seq, K: k, F: f, Disks: 1}
}

// MultiDisk builds a parallel-disk instance with an initially empty cache.
// diskOf must assign a disk in [0, disks) to every block in seq.
func MultiDisk(seq Sequence, k, f, disks int, diskOf map[BlockID]int) *Instance {
	return &Instance{Seq: seq, K: k, F: f, Disks: disks, DiskOf: diskOf}
}

// WithInitialCache returns a shallow copy of the instance whose initial cache
// holds the given blocks.
func (in *Instance) WithInitialCache(blocks ...BlockID) *Instance {
	out := *in
	out.InitialCache = append([]BlockID(nil), blocks...)
	return &out
}

// Clone returns a deep copy of the instance.
func (in *Instance) Clone() *Instance {
	out := *in
	out.Seq = in.Seq.Clone()
	out.InitialCache = append([]BlockID(nil), in.InitialCache...)
	if in.DiskOf != nil {
		out.DiskOf = make(map[BlockID]int, len(in.DiskOf))
		for b, d := range in.DiskOf {
			out.DiskOf[b] = d
		}
	}
	return &out
}

// N returns the number of requests.
func (in *Instance) N() int { return len(in.Seq) }

// Disk returns the disk on which block b resides.
func (in *Instance) Disk(b BlockID) int {
	if in.DiskOf == nil {
		return 0
	}
	return in.DiskOf[b]
}

// Blocks returns every block that appears in the request sequence or the
// initial cache, in increasing BlockID order.
func (in *Instance) Blocks() []BlockID {
	seen := make(map[BlockID]bool)
	var out []BlockID
	add := func(b BlockID) {
		if !seen[b] {
			seen[b] = true
			out = append(out, b)
		}
	}
	for _, b := range in.Seq {
		add(b)
	}
	for _, b := range in.InitialCache {
		add(b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// BlocksOnDisk returns the blocks of the instance residing on disk d, in
// increasing BlockID order.
func (in *Instance) BlocksOnDisk(d int) []BlockID {
	var out []BlockID
	for _, b := range in.Blocks() {
		if in.Disk(b) == d {
			out = append(out, b)
		}
	}
	return out
}

// Validate checks the structural invariants of the instance: positive cache
// size and fetch time, at least one disk, every block assigned to a valid
// disk, an initial cache that fits, and no duplicate initial blocks.
func (in *Instance) Validate() error {
	if err := in.Seq.Validate(); err != nil {
		return err
	}
	if in.K <= 0 {
		return fmt.Errorf("cache size k must be positive, got %d", in.K)
	}
	if in.F <= 0 {
		return fmt.Errorf("fetch time F must be positive, got %d", in.F)
	}
	if in.Disks <= 0 {
		return fmt.Errorf("number of disks must be positive, got %d", in.Disks)
	}
	if in.Disks > 1 && in.DiskOf == nil {
		return fmt.Errorf("DiskOf must be set for a %d-disk instance", in.Disks)
	}
	for _, b := range in.Blocks() {
		d := in.Disk(b)
		if d < 0 || d >= in.Disks {
			return fmt.Errorf("block %v assigned to disk %d, want a disk in [0,%d)", b, d, in.Disks)
		}
	}
	if len(in.InitialCache) > in.K {
		return fmt.Errorf("initial cache has %d blocks but the cache holds only %d", len(in.InitialCache), in.K)
	}
	seen := make(map[BlockID]bool)
	for _, b := range in.InitialCache {
		if !b.Valid() {
			return fmt.Errorf("initial cache contains invalid block %d", int(b))
		}
		if seen[b] {
			return fmt.Errorf("initial cache contains block %v twice", b)
		}
		seen[b] = true
	}
	return nil
}

// ColdMisses returns the number of distinct requested blocks that are not in
// the initial cache.  Every feasible schedule performs at least this many
// fetches.
func (in *Instance) ColdMisses() int {
	initial := make(map[BlockID]bool, len(in.InitialCache))
	for _, b := range in.InitialCache {
		initial[b] = true
	}
	n := 0
	for _, b := range in.Seq.Distinct() {
		if !initial[b] {
			n++
		}
	}
	return n
}

// String summarises the instance.
func (in *Instance) String() string {
	return fmt.Sprintf("instance{n=%d k=%d F=%d D=%d blocks=%d}",
		len(in.Seq), in.K, in.F, in.Disks, len(in.Blocks()))
}
