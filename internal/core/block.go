package core

import (
	"fmt"
	"strconv"
)

// BlockID identifies a memory block.  Blocks are small non-negative integers;
// NoBlock is the sentinel "no block" value used, for example, to mark a fetch
// that does not evict anything.
type BlockID int

// NoBlock is the sentinel value meaning "no block".
const NoBlock BlockID = -1

// String renders the block as "b<N>", or "-" for NoBlock.  The rendering is
// used by schedule and trace printers.
func (b BlockID) String() string {
	if b == NoBlock {
		return "-"
	}
	return "b" + strconv.Itoa(int(b))
}

// Valid reports whether the block is a real block (not NoBlock and not
// negative).
func (b BlockID) Valid() bool { return b >= 0 }

// NoRef is the position returned by reference lookups when a block is never
// (or never again) referenced.  It is larger than every valid position.
const NoRef = int(^uint(0) >> 1)

// refString renders a reference position, using "inf" for NoRef.  It is used
// by debugging helpers.
func refString(pos int) string {
	if pos == NoRef {
		return "inf"
	}
	return fmt.Sprintf("%d", pos)
}
