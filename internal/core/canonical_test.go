package core

import "testing"

func canonInstance() *Instance {
	seq := Sequence{0, 1, 2, 0, 3, 1}
	return &Instance{
		Seq:          seq,
		K:            3,
		F:            4,
		Disks:        2,
		DiskOf:       map[BlockID]int{0: 0, 1: 1, 2: 0, 3: 1},
		InitialCache: []BlockID{2, 0},
	}
}

func TestCanonicalKeyDeterministic(t *testing.T) {
	a, b := canonInstance(), canonInstance()
	if a.CanonicalKey() != b.CanonicalKey() {
		t.Fatalf("equal instances produced different keys:\n%q\n%q", a.CanonicalKey(), b.CanonicalKey())
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("equal instances produced different fingerprints")
	}
	// Initial cache is a set: order must not matter.
	c := canonInstance()
	c.InitialCache = []BlockID{0, 2}
	if a.CanonicalKey() != c.CanonicalKey() {
		t.Fatalf("initial-cache order changed the key:\n%q\n%q", a.CanonicalKey(), c.CanonicalKey())
	}
}

func TestCanonicalKeyDiscriminates(t *testing.T) {
	base := canonInstance()
	mutations := map[string]func(*Instance){
		"k":       func(in *Instance) { in.K = 4 },
		"f":       func(in *Instance) { in.F = 5 },
		"disks":   func(in *Instance) { in.Disks = 3 },
		"seq":     func(in *Instance) { in.Seq[0] = 3 },
		"seq-len": func(in *Instance) { in.Seq = in.Seq[:5] },
		"assign":  func(in *Instance) { in.DiskOf[2] = 1 },
		"initial": func(in *Instance) { in.InitialCache = []BlockID{0, 1} },
	}
	for name, mutate := range mutations {
		other := base.Clone()
		mutate(other)
		if base.CanonicalKey() == other.CanonicalKey() {
			t.Errorf("mutation %q did not change the canonical key %q", name, base.CanonicalKey())
		}
	}
}

// The sequence/initial-cache boundary must be unambiguous: a block moved from
// the tail of the initial-cache list into the sequence must change the key.
func TestCanonicalKeyNoFieldBleed(t *testing.T) {
	a := &Instance{Seq: Sequence{1, 2}, K: 2, F: 1, Disks: 1, InitialCache: []BlockID{3}}
	b := &Instance{Seq: Sequence{3, 1, 2}, K: 2, F: 1, Disks: 1}
	if a.CanonicalKey() == b.CanonicalKey() {
		t.Fatalf("distinct instances share key %q", a.CanonicalKey())
	}
}
