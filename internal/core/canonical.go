package core

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// AppendCanonical appends a canonical byte encoding of the instance to b and
// returns the extended slice.  Two instances produce the same encoding if and
// only if they are semantically identical: the request sequence, k, F, the
// number of disks, the block-to-disk assignment restricted to the instance's
// blocks, and the initial cache contents (as a set; residency has no order).
// The encoding is the cache key of the sweep service, so it must be cheap,
// allocation-light for a reused buffer, and independent of map iteration
// order.
func (in *Instance) AppendCanonical(b []byte) []byte {
	b = append(b, 'k')
	b = strconv.AppendInt(b, int64(in.K), 10)
	b = append(b, 'f')
	b = strconv.AppendInt(b, int64(in.F), 10)
	b = append(b, 'd')
	b = strconv.AppendInt(b, int64(in.Disks), 10)
	if len(in.InitialCache) > 0 {
		initial := make([]int, len(in.InitialCache))
		for i, blk := range in.InitialCache {
			initial[i] = int(blk)
		}
		sort.Ints(initial)
		b = append(b, 'i')
		for _, blk := range initial {
			b = append(b, ',')
			b = strconv.AppendInt(b, int64(blk), 10)
		}
	}
	if in.Disks > 1 {
		// Blocks() is sorted, so the assignment lines are ordered even though
		// DiskOf is a map.
		b = append(b, 'a')
		for _, blk := range in.Blocks() {
			b = append(b, ',')
			b = strconv.AppendInt(b, int64(blk), 10)
			b = append(b, ':')
			b = strconv.AppendInt(b, int64(in.Disk(blk)), 10)
		}
	}
	b = append(b, 's')
	for _, blk := range in.Seq {
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(blk), 10)
	}
	return b
}

// CanonicalKey returns the canonical encoding as a string.
func (in *Instance) CanonicalKey() string {
	return string(in.AppendCanonical(nil))
}

// Fingerprint returns a 64-bit FNV-1a hash of the canonical encoding.  It is
// the shard-selection hash of the sweep service: equal instances always land
// on the same shard, so duplicate requests contend on one solver instead of
// re-solving on several.
func (in *Instance) Fingerprint() uint64 {
	h := fnv.New64a()
	h.Write(in.AppendCanonical(nil))
	return h.Sum64()
}
