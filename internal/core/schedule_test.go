package core

import (
	"strings"
	"testing"
)

func TestFetchString(t *testing.T) {
	f := NewFetch(0, 3, 5, 2)
	if got := f.String(); got != "disk0@3: +b5 -b2" {
		t.Errorf("String = %q", got)
	}
	f = NewFetch(1, 0, 4, NoBlock)
	if got := f.String(); got != "disk1@0: +b4" {
		t.Errorf("String = %q", got)
	}
	f.EvictAtEnd = 4
	if got := f.String(); !strings.Contains(got, "drop b4 at end") {
		t.Errorf("String = %q, want end-eviction note", got)
	}
}

func TestScheduleBasics(t *testing.T) {
	s := &Schedule{}
	s.Append(NewFetch(0, 0, 1, NoBlock))
	s.Append(NewFetch(1, 2, 2, 0))
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	c := s.Clone()
	c.Fetches[0].Block = 9
	if s.Fetches[0].Block == 9 {
		t.Fatalf("Clone aliases the original")
	}
	per := s.PerDisk(2)
	if len(per[0]) != 1 || len(per[1]) != 1 {
		t.Fatalf("PerDisk split wrong: %v", per)
	}
	if !strings.Contains(s.String(), "disk1@2") {
		t.Errorf("String = %q", s.String())
	}
	empty := &Schedule{}
	if empty.String() != "(empty schedule)" {
		t.Errorf("empty String = %q", empty.String())
	}
}

func TestScheduleSortByAnchor(t *testing.T) {
	s := &Schedule{}
	s.Append(NewFetch(0, 5, 1, NoBlock))
	s.Append(NewFetch(0, 2, 2, NoBlock))
	s.Append(NewFetch(1, 2, 3, NoBlock))
	s.SortByAnchor()
	if s.Fetches[0].After != 2 || s.Fetches[2].After != 5 {
		t.Fatalf("SortByAnchor order wrong: %v", s.Fetches)
	}
	// Stability: the two anchor-2 fetches keep their relative order.
	if s.Fetches[0].Block != 2 || s.Fetches[1].Block != 3 {
		t.Fatalf("SortByAnchor not stable: %v", s.Fetches)
	}
}

func TestScheduleValidate(t *testing.T) {
	seq, _ := ParseSequence("a b c a")
	in := &Instance{
		Seq: seq, K: 2, F: 2, Disks: 2,
		DiskOf: map[BlockID]int{0: 0, 1: 0, 2: 1},
	}
	ok := &Schedule{Fetches: []Fetch{NewFetch(1, 1, 2, 0)}}
	if err := ok.Validate(in); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	cases := []struct {
		name string
		f    Fetch
	}{
		{"invalid block", NewFetch(0, 0, NoBlock, NoBlock)},
		{"disk out of range", NewFetch(5, 0, 0, NoBlock)},
		{"wrong disk for block", NewFetch(0, 0, 2, NoBlock)},
		{"anchor out of range", NewFetch(1, 9, 2, NoBlock)},
		{"fetch equals evict", NewFetch(1, 0, 2, 2)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := &Schedule{Fetches: []Fetch{tc.f}}
			if err := s.Validate(in); err == nil {
				t.Fatalf("expected validation error")
			}
		})
	}
}
