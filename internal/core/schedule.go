package core

import (
	"fmt"
	"sort"
	"strings"
)

// Fetch is a single prefetch operation in a schedule.
//
// A fetch becomes eligible once the first After requests of the sequence have
// been served; it starts at the earliest time at which it is eligible and its
// disk is idle (fetches on one disk execute in the order they appear in the
// schedule).  At initiation the block named by Evict is removed from the
// cache; if Evict is NoBlock the incoming block occupies a free cache
// location, or an extra location beyond the nominal cache size if no free
// location exists (the executor accounts for extra locations, which is how
// the paper's "at most 2(D-1) extra memory locations" guarantee is measured).
// The fetched block becomes available exactly F time units after initiation.
// If EvictAtEnd names a block, that block is evicted at the moment the fetch
// completes; this models the construction of Lemma 3 in which an otherwise
// idle disk loads a block into an extra location and discards it again at the
// end of the synchronized fetch interval.
type Fetch struct {
	// Disk is the disk performing the fetch.
	Disk int
	// After is the number of requests that must have been served before the
	// fetch may start (0 means the fetch may start immediately).
	After int
	// MinTime is a wall-clock lower bound on the initiation time (0 means no
	// bound).  It is used by schedules whose fetch initiations depend on the
	// completion of fetches on other disks, e.g. a fetch that is started in
	// the middle of a stall as soon as another disk becomes free; such a
	// dependency cannot be expressed with the request-count anchor alone.
	MinTime int
	// Block is the block being fetched.
	Block BlockID
	// Evict is the block evicted when the fetch is initiated, or NoBlock.
	Evict BlockID
	// EvictAtEnd is a block evicted when the fetch completes, or NoBlock.
	EvictAtEnd BlockID
}

// String renders the fetch compactly, e.g. "disk0@3: +b5 -b2".
func (f Fetch) String() string {
	s := fmt.Sprintf("disk%d@%d: +%v", f.Disk, f.After, f.Block)
	if f.Evict != NoBlock {
		s += fmt.Sprintf(" -%v", f.Evict)
	}
	if f.EvictAtEnd != NoBlock {
		s += fmt.Sprintf(" (drop %v at end)", f.EvictAtEnd)
	}
	return s
}

// NewFetch builds a fetch with no end-of-fetch eviction.
func NewFetch(disk, after int, block, evict BlockID) Fetch {
	return Fetch{Disk: disk, After: after, Block: block, Evict: evict, EvictAtEnd: NoBlock}
}

// Schedule is a prefetching/caching schedule: an ordered list of fetch
// operations.  The order determines the execution order of fetches that share
// a disk; fetches on different disks are independent (subject to their After
// anchors).
type Schedule struct {
	Fetches []Fetch
}

// Append adds a fetch to the schedule.
func (s *Schedule) Append(f Fetch) { s.Fetches = append(s.Fetches, f) }

// Len returns the number of fetch operations in the schedule.
func (s *Schedule) Len() int { return len(s.Fetches) }

// Clone returns a deep copy of the schedule.
func (s *Schedule) Clone() *Schedule {
	out := &Schedule{Fetches: make([]Fetch, len(s.Fetches))}
	copy(out.Fetches, s.Fetches)
	return out
}

// PerDisk splits the schedule into per-disk fetch lists, preserving order.
func (s *Schedule) PerDisk(disks int) [][]Fetch {
	out := make([][]Fetch, disks)
	for _, f := range s.Fetches {
		if f.Disk >= 0 && f.Disk < disks {
			out[f.Disk] = append(out[f.Disk], f)
		}
	}
	return out
}

// SortByAnchor stably sorts the fetches by their After anchor.  Fetches with
// equal anchors keep their relative order, so per-disk execution order is
// preserved for fetches that were already anchor-ordered.
func (s *Schedule) SortByAnchor() {
	sort.SliceStable(s.Fetches, func(i, j int) bool {
		return s.Fetches[i].After < s.Fetches[j].After
	})
}

// Validate performs static checks against an instance: every fetched block
// must reside on the fetch's disk, anchors must lie in [0, n], and blocks must
// be valid.  Dynamic feasibility (evicted blocks actually being in cache,
// requested blocks arriving in time) is checked by the executor in package
// sim.
func (s *Schedule) Validate(in *Instance) error {
	n := in.N()
	for i, f := range s.Fetches {
		if !f.Block.Valid() {
			return fmt.Errorf("fetch %d: invalid block %d", i, int(f.Block))
		}
		if f.Disk < 0 || f.Disk >= in.Disks {
			return fmt.Errorf("fetch %d: disk %d out of range [0,%d)", i, f.Disk, in.Disks)
		}
		if in.Disk(f.Block) != f.Disk {
			return fmt.Errorf("fetch %d: block %v resides on disk %d, not disk %d",
				i, f.Block, in.Disk(f.Block), f.Disk)
		}
		if f.After < 0 || f.After > n {
			return fmt.Errorf("fetch %d: anchor %d out of range [0,%d]", i, f.After, n)
		}
		if f.MinTime < 0 {
			return fmt.Errorf("fetch %d: negative minimum start time %d", i, f.MinTime)
		}
		if f.Evict == f.Block && f.Evict != NoBlock {
			return fmt.Errorf("fetch %d: fetches and evicts the same block %v", i, f.Block)
		}
	}
	return nil
}

// String renders the schedule, one fetch per line.
func (s *Schedule) String() string {
	if len(s.Fetches) == 0 {
		return "(empty schedule)"
	}
	parts := make([]string, len(s.Fetches))
	for i, f := range s.Fetches {
		parts[i] = f.String()
	}
	return strings.Join(parts, "\n")
}
