// Package core defines the problem model for integrated prefetching and
// caching in single and parallel disk systems, following the model of
// Cao, Felten, Karlin and Li that is used by Albers and Büttner
// ("Integrated prefetching and caching in single and parallel disk systems",
// SPAA 2003 / Information and Computation 198 (2005) 24-39).
//
// The model: a request sequence r1..rn of blocks must be served in order.
// Serving a request to a block that is present in the cache takes one time
// unit.  The cache holds k blocks.  A missing block must be fetched from the
// disk it resides on; a fetch takes F time units and may overlap the service
// of requests to cached blocks.  Initiating a fetch requires choosing a block
// to evict; the evicted block is unavailable from the moment the fetch is
// initiated and the fetched block becomes available when the fetch completes.
// If the fetch has not completed when its block is requested, the processor
// stalls for the remaining time.  With D parallel disks each block resides on
// exactly one disk, at most one fetch is in progress per disk, and stall time
// spent waiting for one disk lets fetches on all other disks progress.
//
// The objectives studied in the paper are the total stall time and the
// elapsed time (stall time plus the length of the request sequence).
//
// Package core contains the passive data types only: blocks, request
// sequences and their occurrence index, problem instances, and
// prefetching/caching schedules.  Executing a schedule and measuring its
// stall time is the job of package sim.
package core
