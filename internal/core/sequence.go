package core

import (
	"fmt"
	"sort"
	"strings"
)

// Sequence is a request sequence: Sequence[i] is the block referenced by the
// (i+1)-st request.  Positions are 0-based throughout the code base; the
// paper's request r_i corresponds to position i-1.
type Sequence []BlockID

// ParseSequence builds a sequence from a whitespace-separated list of block
// names.  Every distinct name is assigned the next free BlockID in order of
// first appearance, so "a b a c" becomes [0 1 0 2].  It is a convenience for
// tests, examples and the command-line tools.
func ParseSequence(s string) (Sequence, map[string]BlockID) {
	fields := strings.Fields(s)
	ids := make(map[string]BlockID, len(fields))
	seq := make(Sequence, 0, len(fields))
	for _, f := range fields {
		id, ok := ids[f]
		if !ok {
			id = BlockID(len(ids))
			ids[f] = id
		}
		seq = append(seq, id)
	}
	return seq, ids
}

// String renders the sequence as a space-separated list of blocks.
func (s Sequence) String() string {
	parts := make([]string, len(s))
	for i, b := range s {
		parts[i] = b.String()
	}
	return strings.Join(parts, " ")
}

// Clone returns a copy of the sequence.
func (s Sequence) Clone() Sequence {
	out := make(Sequence, len(s))
	copy(out, s)
	return out
}

// Distinct returns the distinct blocks of the sequence in order of first
// appearance.
func (s Sequence) Distinct() []BlockID {
	seen := make(map[BlockID]bool)
	var out []BlockID
	for _, b := range s {
		if !seen[b] {
			seen[b] = true
			out = append(out, b)
		}
	}
	return out
}

// MaxBlock returns the largest BlockID appearing in the sequence, or NoBlock
// for an empty sequence.
func (s Sequence) MaxBlock() BlockID {
	max := NoBlock
	for _, b := range s {
		if b > max {
			max = b
		}
	}
	return max
}

// Validate checks that every request names a valid block.
func (s Sequence) Validate() error {
	for i, b := range s {
		if !b.Valid() {
			return fmt.Errorf("request %d references invalid block %d", i, int(b))
		}
	}
	return nil
}

// Index is a precomputed occurrence index over a request sequence.  It
// answers "when is block b referenced next at or after position p" style
// queries in O(log n) time; these queries drive every algorithm in the
// repository (victim selection, hole computation, gap enumeration for the
// linear program).
type Index struct {
	seq    Sequence
	occ    map[BlockID][]int
	blocks []BlockID
}

// NewIndex builds the occurrence index for seq.
func NewIndex(seq Sequence) *Index {
	ix := &Index{
		seq: seq,
		occ: make(map[BlockID][]int),
	}
	for pos, b := range seq {
		if _, ok := ix.occ[b]; !ok {
			ix.blocks = append(ix.blocks, b)
		}
		ix.occ[b] = append(ix.occ[b], pos)
	}
	return ix
}

// Sequence returns the indexed sequence.
func (ix *Index) Sequence() Sequence { return ix.seq }

// Append extends the indexed sequence with one more request for block b,
// keeping every occurrence list sorted (the new position is past every
// existing one).  It is the incremental counterpart of NewIndex for the
// trace-extension path: an index grown request by request answers every
// query exactly as a fresh index over the extended sequence would.
func (ix *Index) Append(b BlockID) {
	pos := len(ix.seq)
	ix.seq = append(ix.seq, b)
	if _, ok := ix.occ[b]; !ok {
		ix.blocks = append(ix.blocks, b)
	}
	ix.occ[b] = append(ix.occ[b], pos)
}

// Len returns the number of requests in the indexed sequence.
func (ix *Index) Len() int { return len(ix.seq) }

// Blocks returns the distinct blocks of the sequence in order of first
// appearance.  The returned slice must not be modified.
func (ix *Index) Blocks() []BlockID { return ix.blocks }

// Occurrences returns the positions at which block b is referenced, in
// increasing order.  The returned slice must not be modified.
func (ix *Index) Occurrences(b BlockID) []int { return ix.occ[b] }

// Count returns how often block b is referenced.
func (ix *Index) Count(b BlockID) int { return len(ix.occ[b]) }

// NextAt returns the smallest position >= pos at which block b is referenced,
// or NoRef if there is none.
func (ix *Index) NextAt(b BlockID, pos int) int {
	occ := ix.occ[b]
	i := sort.SearchInts(occ, pos)
	if i == len(occ) {
		return NoRef
	}
	return occ[i]
}

// NextAfter returns the smallest position > pos at which block b is
// referenced, or NoRef if there is none.
func (ix *Index) NextAfter(b BlockID, pos int) int {
	return ix.NextAt(b, pos+1)
}

// LastBefore returns the largest position < pos at which block b is
// referenced, or -1 if there is none.
func (ix *Index) LastBefore(b BlockID, pos int) int {
	occ := ix.occ[b]
	i := sort.SearchInts(occ, pos)
	if i == 0 {
		return -1
	}
	return occ[i-1]
}

// First returns the position of the first reference to block b, or NoRef if b
// is never referenced.
func (ix *Index) First(b BlockID) int { return ix.NextAt(b, 0) }

// Last returns the position of the last reference to block b, or -1 if b is
// never referenced.
func (ix *Index) Last(b BlockID) int { return ix.LastBefore(b, len(ix.seq)) }

// FurthestNext returns, among the candidate blocks, one whose next reference
// at or after pos is furthest in the future (ties broken by smaller BlockID
// for determinism) together with that reference position.  Blocks that are
// never referenced again compare as NoRef, i.e. furthest possible.  It
// returns NoBlock if candidates is empty.
func (ix *Index) FurthestNext(candidates []BlockID, pos int) (BlockID, int) {
	best := NoBlock
	bestRef := -1
	for _, b := range candidates {
		ref := ix.NextAt(b, pos)
		if best == NoBlock || ref > bestRef || (ref == bestRef && b < best) {
			best, bestRef = b, ref
		}
	}
	return best, bestRef
}

// EarliestNext returns, among the candidate blocks, one whose next reference
// at or after pos is earliest (ties broken by smaller BlockID), together with
// that position.  It returns NoBlock if candidates is empty or none of the
// candidates is referenced again.
func (ix *Index) EarliestNext(candidates []BlockID, pos int) (BlockID, int) {
	best := NoBlock
	bestRef := NoRef
	for _, b := range candidates {
		ref := ix.NextAt(b, pos)
		if ref == NoRef {
			continue
		}
		if best == NoBlock || ref < bestRef || (ref == bestRef && b < best) {
			best, bestRef = b, ref
		}
	}
	return best, bestRef
}
