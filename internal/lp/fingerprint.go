package lp

// PatternFingerprint returns a 64-bit FNV-1a hash of the problem's
// *structure*: everything that determines the standard-form layout the
// revised solver builds, and nothing that depends on coefficient values.
// Two problems share a fingerprint exactly when they have the same variable
// count, the same constraints in the same order with the same nonzero
// positions, the same effective senses, and the same right-hand-side sign
// pattern.
//
// The last two terms matter: the sense/sign structure fixes which rows get
// slack columns, which get artificials, and the ±1 of every slack — i.e. the
// "bounds structure" of the standard form.  Hashing only the CSC nonzero
// positions would alias problems whose coefficient matrix matches but whose
// fixed/free row structure differs, and a symbolic LU analysis recorded for
// one would then be replayed against a basis with a different column layout.
// (The Batch warm-start path and the symbolic-factorization cache both key
// on this fingerprint, so the distinction is load-bearing, not cosmetic.)
//
// The hash is cached per problem version, so repeated calls between
// mutations cost one mutex acquisition.
func (p *Problem) PatternFingerprint() uint64 {
	p.cscMu.Lock()
	defer p.cscMu.Unlock()
	if p.fpVersion == p.version && p.fpValid {
		return p.fp
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(p.numVars))
	mix(uint64(len(p.cons)))
	for i := range p.cons {
		c := &p.cons[i]
		tag := uint64(effectiveSense(*c)) << 1
		if c.RHS < 0 {
			tag |= 1
		}
		mix(tag)
		mix(uint64(len(c.Coeffs)))
		for _, co := range c.Coeffs {
			mix(uint64(co.Var))
		}
	}
	p.fp = h
	p.fpVersion = p.version
	p.fpValid = true
	return h
}
