package lp

import "sync/atomic"

// Counters is a snapshot of the package-wide solve counters.  The experiment
// driver records these alongside benchmark tables so the per-revision
// trajectory files (BENCH_*.json) capture how much simplex work a full run
// performs, not just how long it took.
type Counters struct {
	// Solves is the number of completed Solver.Solve calls.
	Solves uint64
	// Iterations is the total number of simplex pivots across all solves.
	Iterations uint64
	// PricingPasses is the total number of full reduced-cost sweeps.
	PricingPasses uint64
	// Refactorizations is the total number of basis-inverse rebuilds
	// performed by the revised method (LU factorizations or eta-file
	// reinversions, per Options.Basis).
	Refactorizations uint64
	// EtaColumns is the total number of eta columns appended by the revised
	// method (update etas, plus reinversion fills on the BasisEta path).
	EtaColumns uint64
	// LUFills is the total fill-in created by BasisLU factorizations.
	LUFills uint64
	// WarmStarts is the number of solves that skipped phase one by starting
	// from a transferred prior basis.
	WarmStarts uint64
	// NumericRefactors is the number of refactorizations that found a
	// recorded symbolic skeleton and attempted a numeric-only replay.
	NumericRefactors uint64
	// SymbolicReuses is the number of replays that verified, skipping the
	// Markowitz analysis (see lusym.go).
	SymbolicReuses uint64
	// VerifiedSolves is the number of cascade solves whose result passed the
	// independent certificate check (Verify).
	VerifiedSolves uint64
	// VerifyFailures is the number of Optimal results the certificate check
	// rejected (each one triggers a cascade fallback).
	VerifyFailures uint64
	// CascadeFallbacks is the number of rungs abandoned by the self-healing
	// cascade (verification failures, singular refactorizations and
	// exhausted pivot budgets all count).
	CascadeFallbacks uint64
	// DualPivots is the total number of dual simplex pivots performed by
	// warm re-solves (Options.Dual).
	DualPivots uint64
	// FTUpdates is the total number of Forrest–Tomlin row-spike updates
	// absorbed into U factors (Options.Update == UpdateFT).
	FTUpdates uint64
}

var stats struct {
	solves, iters, passes, refactors, etas, luFills, warmStarts atomic.Uint64
	symReuses, numRefactors                                     atomic.Uint64
	verified, verifyFails, cascadeFalls                         atomic.Uint64
	dualPivots, ftUpdates                                       atomic.Uint64
}

// recordSolve folds one finished solve into the package counters; callers
// run concurrently (the experiment pool solves on several goroutines).
func recordSolve(sol *Solution) {
	stats.solves.Add(1)
	stats.iters.Add(uint64(sol.Iterations))
	stats.passes.Add(uint64(sol.PricingPasses))
	stats.refactors.Add(uint64(sol.Refactorizations))
	stats.etas.Add(uint64(sol.EtaColumns))
	stats.luFills.Add(uint64(sol.LUFills))
	stats.symReuses.Add(uint64(sol.SymbolicReuses))
	stats.numRefactors.Add(uint64(sol.NumericRefactors))
	stats.dualPivots.Add(uint64(sol.DualIterations))
	stats.ftUpdates.Add(uint64(sol.FTUpdates))
	if sol.WarmStarted {
		stats.warmStarts.Add(1)
	}
}

// StatsSnapshot returns the current package-wide solve counters.
func StatsSnapshot() Counters {
	return Counters{
		Solves:           stats.solves.Load(),
		Iterations:       stats.iters.Load(),
		PricingPasses:    stats.passes.Load(),
		Refactorizations: stats.refactors.Load(),
		EtaColumns:       stats.etas.Load(),
		LUFills:          stats.luFills.Load(),
		WarmStarts:       stats.warmStarts.Load(),
		NumericRefactors: stats.numRefactors.Load(),
		SymbolicReuses:   stats.symReuses.Load(),
		VerifiedSolves:   stats.verified.Load(),
		VerifyFailures:   stats.verifyFails.Load(),
		CascadeFallbacks: stats.cascadeFalls.Load(),
		DualPivots:       stats.dualPivots.Load(),
		FTUpdates:        stats.ftUpdates.Load(),
	}
}

// StatsReset zeroes the package-wide solve counters.
func StatsReset() {
	stats.solves.Store(0)
	stats.iters.Store(0)
	stats.passes.Store(0)
	stats.refactors.Store(0)
	stats.etas.Store(0)
	stats.luFills.Store(0)
	stats.warmStarts.Store(0)
	stats.symReuses.Store(0)
	stats.numRefactors.Store(0)
	stats.verified.Store(0)
	stats.verifyFails.Store(0)
	stats.cascadeFalls.Store(0)
	stats.dualPivots.Store(0)
	stats.ftUpdates.Store(0)
}
