package lp

// Batch amortises a sweep of same-shaped solves.  It owns one reusable
// Solver — whose buffers (tableau scratch, eta/LU storage, candidate lists)
// are sized by the first instance and reused allocation-free for the rest —
// plus a small set of per-pattern members, each holding a warm-basis slot
// and a duals arena for the problems sharing one structural fingerprint.
// Together with the solver's symbolic-factorization cache (lusym.go) this is
// the batch path's whole speedup: the first member of a pattern pays for the
// symbolic analysis, the scratch sizing and the allocations, and every later
// same-pattern solve replays, reuses and warm-starts.
//
// Correctness contract: a batched solve is bit-identical to the same solve
// on a fresh Solver unless the batch warm-starts it, and it warm-starts only
// when (a) the caller opted in via Options.WarmStart, or (b) the problem is
// the *same* Problem (same pointer, unmutated version) the member last
// solved — the re-solve pattern the E8 row loop already runs through
// SolveFrom.  Cold solves through a batch therefore produce the same bytes
// as cold solves outside it, which is what keeps the committed BENCH_*.json
// schedule tables byte-identical with batching on or off.
//
// A Batch is not safe for concurrent use; use one per goroutine (the service
// gives each shard its own).
type Batch struct {
	s       *Solver
	members map[uint64]*batchMember
	order   []uint64 // member insertion order, for bounded FIFO eviction
	sols    []*Solution
}

// batchMember is the per-pattern state: the warm-basis slot optimal solves
// snapshot into, the identity of the problem that produced it, and the arena
// backing the solutions' dual certificates.
type batchMember struct {
	warm     WarmBasis
	haveWarm bool
	lastProb *Problem
	lastVer  int
	duals    []float64
}

// maxBatchMembers bounds the per-batch member set; the oldest pattern is
// evicted (losing only its warm basis and arena, never correctness) when a
// long-running consumer feeds a batch more patterns than a sweep's worth.
const maxBatchMembers = 32

// NewBatch returns an empty Batch owning a fresh Solver.
func NewBatch() *Batch {
	return &Batch{s: NewSolver(), members: make(map[uint64]*batchMember)}
}

// Solver exposes the batch's underlying Solver for non-batched solves that
// should share its buffers.  The usual caveats apply: same goroutine only.
func (b *Batch) Solver() *Solver { return b.s }

// member returns (creating or evicting as needed) the slot for a pattern.
func (b *Batch) member(fp uint64) *batchMember {
	if m, ok := b.members[fp]; ok {
		return m
	}
	if len(b.members) >= maxBatchMembers {
		oldest := b.order[0]
		b.order = b.order[1:]
		delete(b.members, oldest)
	}
	m := &batchMember{}
	b.members[fp] = m
	b.order = append(b.order, fp)
	return m
}

// Solve solves p through the batch.  See the type comment for the exact
// warm-start policy; everything else (options, cascade, statuses, errors) is
// Solver.Solve's contract.  The returned Solution's dual certificate shares
// the member's arena: it stays valid until the next same-pattern solve
// through this batch, so callers that Verify solutions should do so before
// solving the next instance of the pattern.
func (b *Batch) Solve(p *Problem, opts Options) (*Solution, error) {
	if opts.Method != MethodRevised {
		return b.s.Solve(p, opts)
	}
	fp := p.PatternFingerprint()
	m := b.member(fp)

	var from *WarmBasis
	if m.haveWarm && (opts.WarmStart || (m.lastProb == p && m.lastVer == p.version)) {
		from = &m.warm
	}
	// The member slots supersede the Solver's single lastWarm slot: clearing
	// WarmStart here keeps exactly one warm-start authority per solve (and
	// keeps a foreign pattern's basis from leaking in through the solver).
	opts.WarmStart = false

	r := &b.s.rev
	r.warmDst = &m.warm
	r.warmSnapped = false
	r.dualsReuse = m.duals
	sol, err := b.s.solve(p, opts, from)
	r.warmDst = nil
	r.dualsReuse = nil

	m.lastProb, m.lastVer = p, p.version
	if err != nil {
		// A failed solve poisons only this member's warm state; the solver
		// arenas are reset per solve, so the next member starts clean.
		m.haveWarm = false
		return nil, err
	}
	if sol.duals != nil {
		m.duals = sol.duals
	}
	m.haveWarm = sol.Status == StatusOptimal && r.warmSnapped && sol.Downgrades == 0
	if sol.Downgrades > 0 {
		// A downgraded solve ran on suspect numerics: the skeletons its
		// refactorizations recorded must not vouch for future solves.
		r.symCache.clear()
	}
	return sol, nil
}

// BatchSolve solves every problem through the batch, in order.  Solutions
// come back index-aligned with probs; a member whose solve returns an error
// gets a nil Solution while the rest of the batch still runs (a failed
// member never corrupts the arenas of the next — the first such error is
// returned after the sweep).  The returned slice reuses the batch's internal
// backing and is only valid until the next BatchSolve call.
func BatchSolve(b *Batch, probs []*Problem, opts Options) ([]*Solution, error) {
	sols := b.sols[:0]
	var firstErr error
	for _, p := range probs {
		sol, err := b.Solve(p, opts)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		sols = append(sols, sol)
	}
	b.sols = sols
	return sols, firstErr
}
