package lp

// cscMatrix is a Problem's constraint matrix in compressed sparse column
// form, restricted to the structural variable columns and normalised so that
// every right-hand side is non-negative (rows with a negative RHS are
// multiplied by -1 and their sense flipped, exactly as the flat solver's
// load does).  Slack and artificial columns are not materialised: they are
// singletons whose row and sign follow from the per-row effective sense, and
// the revised solver handles them symbolically.
//
// The matrix is built once per Problem (see Problem.csc) and is strictly
// read-only during solves, so concurrent solves of one problem can share it.
type cscMatrix struct {
	rows, cols int

	// colPtr has cols+1 entries; column j's nonzeros are
	// rowIdx/val[colPtr[j]:colPtr[j+1]], ordered by increasing row.
	colPtr []int32
	rowIdx []int32
	val    []float64

	// The transposed (CSR) view of the same entries: row i's nonzeros are
	// colIdxR/valR[rowPtr[i]:rowPtr[i+1]], ordered by increasing column.
	// The steepest-edge engine reads pivot rows through it: the pivot row of
	// the tableau is a combination of the A-rows in the BTRAN'd unit
	// vector's support, so its assembly costs only those rows' nonzeros.
	rowPtr  []int32
	colIdxR []int32
	valR    []float64

	// sense[i] is row i's effective sense after sign normalisation and b[i]
	// its normalised (non-negative) right-hand side.
	sense []Sense
	b     []float64
}

// buildCSC assembles the CSC form of p's constraint matrix.  Cost is
// O(nonzeros + rows + cols): one counting pass and one fill pass.
func buildCSC(p *Problem) *cscMatrix {
	rows := p.NumConstraints()
	cols := p.NumVars()
	m := &cscMatrix{
		rows:   rows,
		cols:   cols,
		colPtr: make([]int32, cols+1),
		rowIdx: make([]int32, p.NumNonzeros()),
		val:    make([]float64, p.NumNonzeros()),
		sense:  make([]Sense, rows),
		b:      make([]float64, rows),
	}
	for i := 0; i < rows; i++ {
		c := p.Constraint(i)
		m.sense[i] = effectiveSense(c)
		if c.RHS < 0 {
			m.b[i] = -c.RHS
		} else {
			m.b[i] = c.RHS
		}
		for _, co := range c.Coeffs {
			m.colPtr[co.Var+1]++
		}
	}
	for j := 0; j < cols; j++ {
		m.colPtr[j+1] += m.colPtr[j]
	}
	// Fill pass: advancing per-column cursors kept inside colPtr would lose
	// the offsets, so use a scratch cursor slice.  Iterating rows in order
	// leaves every column's entries sorted by row.
	next := make([]int32, cols)
	copy(next, m.colPtr[:cols])
	for i := 0; i < rows; i++ {
		c := p.Constraint(i)
		sign := 1.0
		if c.RHS < 0 {
			sign = -1.0
		}
		for _, co := range c.Coeffs {
			at := next[co.Var]
			m.rowIdx[at] = int32(i)
			m.val[at] = sign * co.Value
			next[co.Var] = at + 1
		}
	}

	// CSR view: count, prefix-sum, and fill by sweeping the columns in
	// order, which leaves every row's entries sorted by column.
	m.rowPtr = make([]int32, rows+1)
	m.colIdxR = make([]int32, len(m.rowIdx))
	m.valR = make([]float64, len(m.val))
	for _, i := range m.rowIdx {
		m.rowPtr[i+1]++
	}
	for i := 0; i < rows; i++ {
		m.rowPtr[i+1] += m.rowPtr[i]
	}
	nextRow := make([]int32, rows)
	copy(nextRow, m.rowPtr[:rows])
	for j := 0; j < cols; j++ {
		for s := m.colPtr[j]; s < m.colPtr[j+1]; s++ {
			i := m.rowIdx[s]
			at := nextRow[i]
			m.colIdxR[at] = int32(j)
			m.valR[at] = m.val[s]
			nextRow[i] = at + 1
		}
	}
	return m
}

// colDot returns v · A_j for structural column j.
func (m *cscMatrix) colDot(v []float64, j int) float64 {
	dot := 0.0
	for s := m.colPtr[j]; s < m.colPtr[j+1]; s++ {
		dot += m.val[s] * v[m.rowIdx[s]]
	}
	return dot
}

// scatterCol adds structural column j into the dense vector out.
func (m *cscMatrix) scatterCol(j int, out []float64) {
	for s := m.colPtr[j]; s < m.colPtr[j+1]; s++ {
		out[m.rowIdx[s]] += m.val[s]
	}
}
