package lp

import "math"

// This file is the true Forrest–Tomlin basis update (Options.Update ==
// UpdateFT): instead of freezing the LU factors and appending product-form
// etas (UpdateEta, the default), each pivot rewrites the U factor itself.
//
// Replacing the basis column pivoted by row r with the entering column turns
// U into a spiked matrix: column t = pos(r) becomes the partially FTRAN'd
// entering column w = R L^-1 a_enter (the spike), and removing column t while
// cyclically shifting positions t+1.. left and moving row r to the last
// position leaves U upper triangular except for the row spike — row r's
// frozen entries in the shifted columns.  Forrest–Tomlin eliminates that row
// spike with multiples of the rows below it, which is recorded as one row
// eta (rowEtaFile) applied between L and U in FTRAN, and replaces column t
// by the spike with its new diagonal d = w_r - sum(m_q * w_{r_q}).
//
// Representation: updated columns are appended as fresh slots; the replaced
// slot is marked dead and skipped (its row was eliminated, so entries in
// other columns referencing it are logically zero).  ftOrder keeps the
// triangular position permutation, always exactly rows long.  The
// composition solved against is
//
//	B = L * M_1^-1 * ... * M_k^-1 * U_k
//
// so FTRAN applies L^-1, the row etas oldest first, then U_k^-1 in position
// order, and BTRAN the exact transposes in reverse.  A spike diagonal below
// luSingular rejects the update and the caller refactorizes instead — the
// basis arrays already carry the new column, so the fresh factorization
// absorbs the pivot exactly.

// rowEtaFile stores the row etas of the Forrest–Tomlin eliminations: per
// eta the spiked row r and the (physical row, multiplier) pairs of the rows
// subtracted from it.
type rowEtaFile struct {
	pivRow []int32
	start  []int32 // len(pivRow)+1 offsets into idx/val
	idx    []int32 // physical rows of the multipliers
	val    []float64
}

// reset empties the file (keeping capacity).
func (e *rowEtaFile) reset() {
	e.pivRow = e.pivRow[:0]
	if cap(e.start) == 0 {
		e.start = append(e.start, 0)
	}
	e.start = e.start[:1]
	e.start[0] = 0
	e.idx = e.idx[:0]
	e.val = e.val[:0]
}

// apply multiplies v by the row etas oldest first: v_r -= m · v.
func (e *rowEtaFile) apply(v []float64) {
	for k := range e.pivRow {
		t := v[e.pivRow[k]]
		for s := e.start[k]; s < e.start[k+1]; s++ {
			t -= e.val[s] * v[e.idx[s]]
		}
		v[e.pivRow[k]] = t
	}
}

// applyT multiplies v by the transposed row etas newest first:
// v_{r_q} -= m_q · v_r.
func (e *rowEtaFile) applyT(v []float64) {
	for k := len(e.pivRow) - 1; k >= 0; k-- {
		t := v[e.pivRow[k]]
		if t == 0 {
			continue
		}
		for s := e.start[k]; s < e.start[k+1]; s++ {
			v[e.idx[s]] -= e.val[s] * t
		}
	}
}

// ftInit arms the update state over a fresh factorization: every slot is
// live, position == elimination order, and the row-eta file is empty.
func (lu *luFactor) ftInit(allocs *int) {
	m := len(lu.pivRow)
	lu.ftOrder = grabInt32s(lu.ftOrder, m, allocs)
	lu.ftPos = grabInt32s(lu.ftPos, m, allocs)
	lu.rowSlot = grabInt32s(lu.rowSlot, lu.rows, allocs)
	lu.slotDead = grabBools(lu.slotDead, m, allocs)
	lu.ftMult = grabFloats(lu.ftMult, m, allocs)
	lu.ftMark = grabInt32s(lu.ftMark, m, allocs)
	clear(lu.ftMark)
	lu.ftGen = 0
	if cap(lu.ftTouch) < m {
		*allocs++
		lu.ftTouch = make([]int32, 0, m)
	}
	lu.ftTouch = lu.ftTouch[:0]
	for k := 0; k < m; k++ {
		lu.ftOrder[k] = int32(k)
		lu.ftPos[k] = int32(k)
		lu.rowSlot[lu.pivRow[k]] = int32(k)
		lu.slotDead[k] = false
	}
	lu.rEta.reset()
	lu.ftActive = true
}

// ftUpdate absorbs the pivot (leaving row leave, entering column enter) into
// the factors and reports whether the update was numerically acceptable;
// false means the caller must refactorize (the basis arrays already name the
// new column).  One partial FTRAN builds the spike, one pass over the
// trailing positions solves for the row-spike multipliers using only the
// column-wise U storage, and the commit appends a row eta plus the spike
// column while the replaced slot dies in place.
func (lu *luFactor) ftUpdate(r *revisedSolver, leave, enter int, allocs *int) bool {
	// Spike w = R L^-1 a_enter: the entering column pushed through L and the
	// accumulated row etas, but not U.
	w := r.work
	clear(w)
	r.scatterCol(enter, w)
	nL := len(lu.lStart) - 1
	for k := 0; k < nL; k++ {
		t := w[lu.pivRow[k]]
		if t == 0 {
			continue
		}
		for s := lu.lStart[k]; s < lu.lStart[k+1]; s++ {
			w[lu.lIdx[s]] -= lu.lVal[s] * t
		}
	}
	lu.rEta.apply(w)

	sOld := lu.rowSlot[leave]
	t := int(lu.ftPos[sOld])
	last := len(lu.ftOrder) - 1

	// Row-spike multipliers by forward substitution over the trailing
	// positions: at position p the remaining row-leave entry is the frozen
	// entry u0 (referencing sOld) minus the already-committed multipliers'
	// contributions through this column.
	lu.ftGen++
	touch := lu.ftTouch[:0]
	dNew := w[leave]
	for p := t + 1; p <= last; p++ {
		s := lu.ftOrder[p]
		u0, sum := 0.0, 0.0
		for e := lu.uStart[s]; e < lu.uStart[s+1]; e++ {
			ref := lu.uIdx[e]
			if ref == sOld {
				u0 = lu.uVal[e]
				continue
			}
			if lu.ftMark[ref] == lu.ftGen {
				sum += lu.ftMult[ref] * lu.uVal[e]
			}
		}
		if u0 == 0 && sum == 0 {
			continue
		}
		mq := (u0 - sum) * lu.uDiagInv[s]
		if mq == 0 {
			continue
		}
		lu.ftMult[s] = mq
		lu.ftMark[s] = lu.ftGen
		touch = append(touch, s)
		dNew -= mq * w[lu.pivRow[s]]
	}
	lu.ftTouch = touch
	if math.Abs(dNew) <= luSingular {
		return false
	}

	// Commit: one row eta, the dead slot, the spike as the new last column.
	if len(touch) > 0 {
		re := &lu.rEta
		if len(re.pivRow) == cap(re.pivRow) {
			*allocs++
		}
		re.pivRow = append(re.pivRow, int32(leave))
		for _, s := range touch {
			if len(re.idx) == cap(re.idx) {
				*allocs++
			}
			re.idx = append(re.idx, lu.pivRow[s])
			re.val = append(re.val, lu.ftMult[s])
		}
		re.start = append(re.start, int32(len(re.idx)))
	}
	lu.slotDead[sOld] = true
	sn := int32(len(lu.pivRow))
	if len(lu.pivRow) == cap(lu.pivRow) {
		*allocs++
	}
	lu.pivRow = append(lu.pivRow, int32(leave))
	lu.pivSlot = append(lu.pivSlot, -1) // never read: only factorize-time slots map basis positions
	lu.uDiagInv = append(lu.uDiagInv, 1/dNew)
	for i, v := range w {
		if i == leave || (v < luDrop && v > -luDrop) {
			continue
		}
		if len(lu.uIdx) == cap(lu.uIdx) {
			*allocs++
		}
		lu.uIdx = append(lu.uIdx, lu.rowSlot[i])
		lu.uVal = append(lu.uVal, v)
	}
	lu.uStart = append(lu.uStart, int32(len(lu.uIdx)))
	copy(lu.ftOrder[t:], lu.ftOrder[t+1:])
	lu.ftOrder[last] = sn
	lu.ftPos = append(lu.ftPos, int32(last))
	for p := t; p < last; p++ {
		lu.ftPos[lu.ftOrder[p]] = int32(p)
	}
	lu.rowSlot[leave] = sn
	lu.slotDead = append(lu.slotDead, false)
	lu.ftMult = append(lu.ftMult, 0)
	lu.ftMark = append(lu.ftMark, 0)
	return true
}

// ftranFT applies the updated basis inverse to v in place:
// v <- U^-1 M_k...M_1 L^-1 v.
func (lu *luFactor) ftranFT(v []float64) {
	nL := len(lu.lStart) - 1
	for k := 0; k < nL; k++ {
		t := v[lu.pivRow[k]]
		if t == 0 {
			continue
		}
		for s := lu.lStart[k]; s < lu.lStart[k+1]; s++ {
			v[lu.lIdx[s]] -= lu.lVal[s] * t
		}
	}
	lu.rEta.apply(v)
	for p := len(lu.ftOrder) - 1; p >= 0; p-- {
		s := lu.ftOrder[p]
		rr := lu.pivRow[s]
		t := v[rr]
		if t == 0 {
			continue
		}
		t *= lu.uDiagInv[s]
		v[rr] = t
		for e := lu.uStart[s]; e < lu.uStart[s+1]; e++ {
			ref := lu.uIdx[e]
			if lu.slotDead[ref] {
				continue
			}
			v[lu.pivRow[ref]] -= lu.uVal[e] * t
		}
	}
}

// btranFT applies the transposed updated inverse to v in place:
// v <- L^-T M_1^T...M_k^T U^-T v.
func (lu *luFactor) btranFT(v []float64) {
	for p := 0; p < len(lu.ftOrder); p++ {
		s := lu.ftOrder[p]
		rr := lu.pivRow[s]
		t := v[rr]
		for e := lu.uStart[s]; e < lu.uStart[s+1]; e++ {
			ref := lu.uIdx[e]
			if lu.slotDead[ref] {
				continue
			}
			t -= lu.uVal[e] * v[lu.pivRow[ref]]
		}
		v[rr] = t * lu.uDiagInv[s]
	}
	lu.rEta.applyT(v)
	nL := len(lu.lStart) - 1
	for k := nL - 1; k >= 0; k-- {
		rr := lu.pivRow[k]
		t := v[rr]
		for s := lu.lStart[k]; s < lu.lStart[k+1]; s++ {
			t -= lu.lVal[s] * v[lu.lIdx[s]]
		}
		v[rr] = t
	}
}
