package lp

// This file preserves the original dense [][]float64 two-phase simplex
// implementation as a test-only reference.  The property tests solve random
// problems and the paper's LP models with both the production flat-tableau
// Solver and this dense path and require matching statuses and objective
// values, and the benchmarks in the repository root compare their cost.
// It is compiled only under `go test` and is not part of the library.

import "math"

// denseSolve runs the reference dense two-phase primal simplex method.
func denseSolve(p *Problem, opts Options) (*Solution, error) {
	tol := opts.Tolerance
	if tol <= 0 {
		tol = defaultTolerance
	}
	t := newDenseTableau(p, tol)
	maxIter := opts.MaxIterations
	if maxIter <= 0 {
		maxIter = 200 * (t.cols + t.rows)
		if maxIter < 20000 {
			maxIter = 20000
		}
	}

	// Phase one: minimise the sum of artificial variables.
	if t.numArtificial > 0 {
		status := t.optimize(t.phase1Costs(), maxIter)
		if status == StatusIterLimit {
			return &Solution{Status: StatusIterLimit, Iterations: t.iterations}, nil
		}
		if t.objectiveValue(t.phase1Costs()) > tol*float64(1+t.rows) {
			return &Solution{Status: StatusInfeasible, Iterations: t.iterations}, nil
		}
		t.driveOutArtificials()
	}

	// Phase two: minimise the real objective.
	status := t.optimize(t.phase2Costs(), maxIter)
	switch status {
	case StatusIterLimit, StatusUnbounded:
		return &Solution{Status: status, Iterations: t.iterations}, nil
	}
	x := t.extract()
	return &Solution{
		Status:     StatusOptimal,
		X:          x,
		Objective:  p.Value(x),
		Iterations: t.iterations,
	}, nil
}

// denseTableau is the dense simplex tableau.  Columns are: the problem
// variables, then slack/surplus variables, then artificial variables; the
// final column is the right-hand side.
type denseTableau struct {
	p   *Problem
	tol float64

	rows int // number of constraints
	cols int // number of structural columns (vars + slacks + artificials)

	numVars       int
	numSlack      int
	numArtificial int

	a     [][]float64 // rows x (cols+1); a[i][cols] is the RHS
	basis []int       // basis[i] is the column basic in row i

	iterations int
	artCol     map[int]bool // columns that are artificial
}

func newDenseTableau(p *Problem, tol float64) *denseTableau {
	rows := p.NumConstraints()
	t := &denseTableau{
		p:       p,
		tol:     tol,
		rows:    rows,
		numVars: p.NumVars(),
		artCol:  make(map[int]bool),
	}
	// Count slacks and artificials.
	type rowPlan struct {
		slackSign  float64 // +1 for LE, -1 for GE, 0 for EQ (after RHS sign fix)
		artificial bool
	}
	plans := make([]rowPlan, rows)
	for i := 0; i < rows; i++ {
		c := p.Constraint(i)
		sense := c.Sense
		flip := c.RHS < 0
		if flip {
			// Multiply the row by -1 so the RHS becomes non-negative.
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		switch sense {
		case LE:
			plans[i] = rowPlan{slackSign: 1, artificial: false}
			t.numSlack++
		case GE:
			plans[i] = rowPlan{slackSign: -1, artificial: true}
			t.numSlack++
			t.numArtificial++
		case EQ:
			plans[i] = rowPlan{slackSign: 0, artificial: true}
			t.numArtificial++
		}
	}
	t.cols = t.numVars + t.numSlack + t.numArtificial
	t.a = make([][]float64, rows)
	t.basis = make([]int, rows)

	slackIdx := t.numVars
	artIdx := t.numVars + t.numSlack
	for i := 0; i < rows; i++ {
		row := make([]float64, t.cols+1)
		c := p.Constraint(i)
		sign := 1.0
		if c.RHS < 0 {
			sign = -1.0
		}
		for _, co := range c.Coeffs {
			row[co.Var] += sign * co.Value
		}
		row[t.cols] = sign * c.RHS
		if plans[i].slackSign != 0 {
			row[slackIdx] = plans[i].slackSign
			if plans[i].slackSign > 0 && !plans[i].artificial {
				t.basis[i] = slackIdx
			}
			slackIdx++
		}
		if plans[i].artificial {
			row[artIdx] = 1
			t.basis[i] = artIdx
			t.artCol[artIdx] = true
			artIdx++
		}
		t.a[i] = row
	}
	return t
}

// phase1Costs returns the phase-one cost vector: 1 for artificial columns.
func (t *denseTableau) phase1Costs() []float64 {
	costs := make([]float64, t.cols)
	for c := range t.artCol {
		costs[c] = 1
	}
	return costs
}

// phase2Costs returns the real objective over structural columns (artificial
// columns get cost zero and are blocked from entering).
func (t *denseTableau) phase2Costs() []float64 {
	costs := make([]float64, t.cols)
	for v := 0; v < t.numVars; v++ {
		costs[v] = t.p.Objective(v)
	}
	for c := range t.artCol {
		costs[c] = 0 // artificials are fixed at zero after phase one
	}
	return costs
}

// objectiveValue evaluates the given cost vector at the current basic
// solution.
func (t *denseTableau) objectiveValue(costs []float64) float64 {
	total := 0.0
	for i := 0; i < t.rows; i++ {
		total += costs[t.basis[i]] * t.a[i][t.cols]
	}
	return total
}

// reducedCosts computes the reduced cost of every column for the given cost
// vector.
func (t *denseTableau) reducedCosts(costs []float64) []float64 {
	rc := make([]float64, t.cols)
	copy(rc, costs)
	for i := 0; i < t.rows; i++ {
		cb := costs[t.basis[i]]
		if cb == 0 {
			continue
		}
		row := t.a[i]
		for j := 0; j < t.cols; j++ {
			if row[j] != 0 {
				rc[j] -= cb * row[j]
			}
		}
	}
	return rc
}

// optimize runs simplex pivots for the given cost vector until optimality,
// unboundedness or the iteration limit.
func (t *denseTableau) optimize(costs []float64, maxIter int) Status {
	degenerate := 0
	const degenerateSwitch = 50
	lastObj := t.objectiveValue(costs)
	for {
		if t.iterations >= maxIter {
			return StatusIterLimit
		}
		rc := t.reducedCosts(costs)
		useBland := degenerate >= degenerateSwitch
		enter := -1
		if useBland {
			for j := 0; j < t.cols; j++ {
				if rc[j] < -t.tol && !t.blockedColumn(costs, j) {
					enter = j
					break
				}
			}
		} else {
			best := -t.tol
			for j := 0; j < t.cols; j++ {
				if rc[j] < best && !t.blockedColumn(costs, j) {
					best = rc[j]
					enter = j
				}
			}
		}
		if enter < 0 {
			return StatusOptimal
		}
		// Ratio test.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.rows; i++ {
			aij := t.a[i][enter]
			if aij <= t.tol {
				continue
			}
			ratio := t.a[i][t.cols] / aij
			if ratio < bestRatio-t.tol || (math.Abs(ratio-bestRatio) <= t.tol && (leave < 0 || t.basis[i] < t.basis[leave])) {
				bestRatio = ratio
				leave = i
			}
		}
		if leave < 0 {
			return StatusUnbounded
		}
		t.pivot(leave, enter)
		t.iterations++
		obj := t.objectiveValue(costs)
		if obj >= lastObj-t.tol {
			degenerate++
		} else {
			degenerate = 0
		}
		lastObj = obj
	}
}

// blockedColumn reports whether column j must not enter the basis:
// artificial columns are blocked in phase two.
func (t *denseTableau) blockedColumn(costs []float64, j int) bool {
	if !t.artCol[j] {
		return false
	}
	// During phase one artificials carry cost 1; in phase two they carry
	// cost 0 and are blocked.
	return costs[j] == 0
}

// pivot performs a Gauss-Jordan pivot on (row, col).
func (t *denseTableau) pivot(row, col int) {
	piv := t.a[row][col]
	r := t.a[row]
	inv := 1.0 / piv
	for j := 0; j <= t.cols; j++ {
		r[j] *= inv
	}
	for i := 0; i < t.rows; i++ {
		if i == row {
			continue
		}
		factor := t.a[i][col]
		if factor == 0 {
			continue
		}
		ri := t.a[i]
		for j := 0; j <= t.cols; j++ {
			ri[j] -= factor * r[j]
		}
		ri[col] = 0
	}
	t.basis[row] = col
}

// driveOutArtificials removes artificial variables from the basis after
// phase one.
func (t *denseTableau) driveOutArtificials() {
	for i := 0; i < t.rows; i++ {
		if !t.artCol[t.basis[i]] {
			continue
		}
		pivoted := false
		for j := 0; j < t.numVars+t.numSlack; j++ {
			if math.Abs(t.a[i][j]) > t.tol {
				t.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			t.a[i][t.cols] = 0
		}
	}
}

// extract reads the current basic solution restricted to problem variables.
func (t *denseTableau) extract() []float64 {
	x := make([]float64, t.numVars)
	for i := 0; i < t.rows; i++ {
		b := t.basis[i]
		if b < t.numVars {
			v := t.a[i][t.cols]
			if v < 0 && v > -t.tol {
				v = 0
			}
			x[b] = v
		}
	}
	return x
}
