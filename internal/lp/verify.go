package lp

import (
	"fmt"
	"math"
)

// verifyTol is the certificate tolerance: looser than the solver's pivoting
// tolerance (1e-9) by three orders of magnitude, so legitimate round-off in
// a correct solve never fails verification, while any injected or organic
// corruption large enough to change a schedule fails it by many orders.
const verifyTol = 1e-6

// VerificationError reports which independent certificate check a solution
// failed.  Check is one of "bounds", "primal-residual", "objective" or
// "dual-feasibility".
type VerificationError struct {
	Check     string
	Violation float64
	Tolerance float64
}

func (e *VerificationError) Error() string {
	return fmt.Sprintf("lp: verification failed: %s violation %.3g exceeds %.3g",
		e.Check, e.Violation, e.Tolerance)
}

// Verify independently checks the optimality certificate of an Optimal
// solution against the problem: variable bounds (x >= 0), the primal
// residual max over constraints of the row violation, the reported objective
// against a recomputed c'x, and — for revised solves, which record their
// final simplex multipliers — dual feasibility (every reduced cost
// non-negative, dual signs matching the constraint senses).  Non-Optimal
// solutions verify trivially: there is no certificate to check.
//
// Verification is read-only and allocation-free on the pooled path: it walks
// the problem's constraints and the cached CSC matrix, allocating only the
// error it returns on failure.
func Verify(p *Problem, sol *Solution) error {
	if p == nil || sol == nil || sol.Status != StatusOptimal {
		return nil
	}

	// Bounds: every variable non-negative.
	worst := 0.0
	for _, v := range sol.X {
		if -v > worst {
			worst = -v
		}
	}
	if worst > verifyTol {
		return &VerificationError{Check: "bounds", Violation: worst, Tolerance: verifyTol}
	}

	// Primal residual: max over constraints of the (relative) row violation,
	// computed row-wise against the original constraint storage — no scratch
	// vector, no dependence on the solver's factored inverse.
	worst = 0
	for _, c := range p.cons {
		lhs := 0.0
		for _, co := range c.Coeffs {
			if co.Var < len(sol.X) {
				lhs += co.Value * sol.X[co.Var]
			}
		}
		var viol float64
		switch c.Sense {
		case LE:
			viol = lhs - c.RHS
		case GE:
			viol = c.RHS - lhs
		case EQ:
			viol = math.Abs(lhs - c.RHS)
		}
		if viol > 0 {
			if rel := viol / (1 + math.Abs(c.RHS)); rel > worst {
				worst = rel
			}
		}
	}
	if worst > verifyTol {
		return &VerificationError{Check: "primal-residual", Violation: worst, Tolerance: verifyTol}
	}

	// Objective: the reported value must match a recomputation from scratch.
	obj := p.Value(sol.X)
	if diff := math.Abs(obj-sol.Objective) / (1 + math.Abs(obj)); diff > verifyTol {
		return &VerificationError{Check: "objective", Violation: diff, Tolerance: verifyTol}
	}

	// Dual feasibility, when the solve recorded its multipliers (the revised
	// path does; the flat fallback does not, and primal feasibility plus its
	// own optimality test stand alone there).  The multipliers live in the
	// sign-normalised space of the cached CSC matrix, so reduced costs are
	// priced against it: rc_j = c_j - y'A_j >= 0 for every structural
	// column, and the sign of y on an inequality row is the (normalised)
	// slack column's reduced cost.
	y := sol.duals
	if y == nil {
		return nil
	}
	m := p.csc()
	if len(y) != m.rows {
		return nil // stale capture from a differently-shaped solve
	}
	worst = 0
	for i, s := range m.sense {
		var viol float64
		switch s {
		case LE:
			viol = y[i] // slack rc = -y_i >= -tol
		case GE:
			viol = -y[i] // slack rc = +y_i >= -tol
		}
		if viol > worst {
			worst = viol
		}
	}
	for j := 0; j < m.cols; j++ {
		rc := p.objective[j] - m.colDot(y, j)
		if viol := -rc / (1 + math.Abs(p.objective[j])); viol > worst {
			worst = viol
		}
	}
	if worst > verifyTol {
		return &VerificationError{Check: "dual-feasibility", Violation: worst, Tolerance: verifyTol}
	}
	return nil
}
