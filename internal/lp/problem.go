package lp

import (
	"fmt"
	"sync"
)

// Sense is the direction of a linear constraint.
type Sense int

// Constraint senses.
const (
	// LE is a "less than or equal" constraint.
	LE Sense = iota
	// EQ is an equality constraint.
	EQ
	// GE is a "greater than or equal" constraint.
	GE
)

// String renders the sense.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case EQ:
		return "="
	case GE:
		return ">="
	default:
		return fmt.Sprintf("sense(%d)", int(s))
	}
}

// Coef is one nonzero coefficient of a constraint: Value times variable Var.
type Coef struct {
	Var   int
	Value float64
}

// Constraint is a single linear constraint over the problem variables.
type Constraint struct {
	Coeffs []Coef
	Sense  Sense
	RHS    float64
}

// Problem is a linear program in minimisation form with non-negative
// variables.
type Problem struct {
	numVars   int
	objective []float64
	cons      []Constraint
	nnz       int // total nonzero coefficients across all constraints

	// AddConstraint merges duplicate variables with an epoch-stamped dense
	// scratch: stamp[v] == epoch marks v as seen in the current call and
	// slot[v] holds its position in the output, so merging is O(len(coeffs))
	// with no map and no clearing between calls.
	stamp []int
	slot  []int32
	epoch int

	// arena is the shared backing store for every constraint's Coeffs slice.
	// Constraints keep full-capacity subslices of whatever array arena pointed
	// at when they were added; growing the arena reallocates it but leaves the
	// old arrays (and the constraints aliasing them) intact, so the only
	// invalidation point is Reset.  With Reset-driven reuse (see BuildInto in
	// internal/lpmodel) a rebuilt problem performs zero coefficient
	// allocations in steady state.
	arena []Coef

	// The revised solver works from a compressed sparse column form of the
	// constraint matrix.  It is built lazily on first solve and cached until
	// the matrix changes (version counts matrix mutations); repeated solves
	// of the same problem then share one read-only copy.
	version    int
	cscMu      sync.Mutex
	cscCache   *cscMatrix
	cscVersion int

	// PatternFingerprint cache, guarded by cscMu alongside the CSC cache.
	fp        uint64
	fpVersion int
	fpValid   bool
}

// NewProblem creates a problem with the given number of non-negative
// variables, all with objective coefficient zero.
func NewProblem(numVars int) *Problem {
	if numVars < 0 {
		panic(fmt.Sprintf("lp: negative variable count %d", numVars))
	}
	return &Problem{
		numVars:   numVars,
		objective: make([]float64, numVars),
	}
}

// Reset empties the problem in place, keeping every internal buffer (the
// coefficient arena, the objective vector, the merge scratch) at capacity so
// the next build allocates nothing in steady state.  The problem afterwards
// has numVars non-negative variables with zero objective and no constraints.
//
// Reset invalidates all Constraint values previously returned for this
// problem: their Coeffs alias the arena being reused.  Callers that retain
// constraints across builds must copy them first.
func (p *Problem) Reset(numVars int) {
	if numVars < 0 {
		panic(fmt.Sprintf("lp: negative variable count %d", numVars))
	}
	p.numVars = numVars
	if cap(p.objective) < numVars {
		p.objective = make([]float64, numVars)
	} else {
		p.objective = p.objective[:numVars]
		clear(p.objective)
	}
	p.cons = p.cons[:0]
	p.arena = p.arena[:0]
	p.nnz = 0
	p.version++
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return p.numVars }

// NumConstraints returns the number of constraints.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// NumNonzeros returns the total number of nonzero constraint coefficients,
// the quantity the revised solver's per-pivot cost is proportional to.
func (p *Problem) NumNonzeros() int { return p.nnz }

// AddVariable appends a new variable with the given objective coefficient and
// returns its index.
func (p *Problem) AddVariable(objective float64) int {
	p.objective = append(p.objective, objective)
	p.numVars++
	p.version++
	return p.numVars - 1
}

// SetObjective sets the objective coefficient of variable v.
func (p *Problem) SetObjective(v int, c float64) {
	p.checkVar(v)
	p.objective[v] = c
}

// Objective returns the objective coefficient of variable v.
func (p *Problem) Objective(v int) float64 {
	p.checkVar(v)
	return p.objective[v]
}

// AddConstraint adds the constraint sum_i coeffs_i {sense} rhs and returns
// its index.  Coefficients referring to the same variable are summed (into
// the variable's first occurrence) and zero coefficients are dropped.  The
// coefficients are copied into a problem-owned arena, so callers may reuse
// the coeffs slice; the stored Coeffs stay valid until Reset.
func (p *Problem) AddConstraint(coeffs []Coef, sense Sense, rhs float64) int {
	for len(p.stamp) < p.numVars {
		p.stamp = append(p.stamp, 0)
		p.slot = append(p.slot, 0)
	}
	p.epoch++
	start := len(p.arena)
	for _, c := range coeffs {
		p.checkVar(c.Var)
		if p.stamp[c.Var] == p.epoch {
			p.arena[start+int(p.slot[c.Var])].Value += c.Value
			continue
		}
		p.stamp[c.Var] = p.epoch
		p.slot[c.Var] = int32(len(p.arena) - start)
		p.arena = append(p.arena, c)
	}
	w := start
	for s := start; s < len(p.arena); s++ {
		if p.arena[s].Value != 0 {
			p.arena[w] = p.arena[s]
			w++
		}
	}
	p.arena = p.arena[:w]
	out := p.arena[start:w:w]
	p.cons = append(p.cons, Constraint{Coeffs: out, Sense: sense, RHS: rhs})
	p.nnz += len(out)
	p.version++
	return len(p.cons) - 1
}

// ExtendConstraint appends coefficients to the existing constraint i,
// keeping its sense and RHS — the shape of a trace extension, where old rows
// gain entries only in freshly added columns.  The row is rewritten at the
// arena tail (rows are full-capacity sub-slices of the shared arena, so
// growing one in place would clobber its neighbour); the abandoned arena
// region is reclaimed by the next Reset.  Duplicate-variable merging follows
// AddConstraint: coefficients naming a variable the row already has are
// summed into it, and zero results are dropped.
func (p *Problem) ExtendConstraint(i int, coeffs []Coef) {
	for len(p.stamp) < p.numVars {
		p.stamp = append(p.stamp, 0)
		p.slot = append(p.slot, 0)
	}
	c := &p.cons[i]
	p.epoch++
	start := len(p.arena)
	for _, old := range c.Coeffs {
		p.stamp[old.Var] = p.epoch
		p.slot[old.Var] = int32(len(p.arena) - start)
		p.arena = append(p.arena, old)
	}
	for _, co := range coeffs {
		p.checkVar(co.Var)
		if p.stamp[co.Var] == p.epoch {
			p.arena[start+int(p.slot[co.Var])].Value += co.Value
			continue
		}
		p.stamp[co.Var] = p.epoch
		p.slot[co.Var] = int32(len(p.arena) - start)
		p.arena = append(p.arena, co)
	}
	w := start
	for s := start; s < len(p.arena); s++ {
		if p.arena[s].Value != 0 {
			p.arena[w] = p.arena[s]
			w++
		}
	}
	p.arena = p.arena[:w]
	p.nnz += (w - start) - len(c.Coeffs)
	c.Coeffs = p.arena[start:w:w]
	p.version++
}

// csc returns the cached compressed sparse column form of the constraint
// matrix, rebuilding it when constraints or variables were added since the
// last build.  Safe for concurrent solves of a fixed problem; mutating a
// problem concurrently with a solve is not supported (and never was).
func (p *Problem) csc() *cscMatrix {
	p.cscMu.Lock()
	defer p.cscMu.Unlock()
	if p.cscCache == nil || p.cscVersion != p.version {
		p.cscCache = buildCSC(p)
		p.cscVersion = p.version
	}
	return p.cscCache
}

// Constraint returns the i-th constraint.
func (p *Problem) Constraint(i int) Constraint {
	return p.cons[i]
}

func (p *Problem) checkVar(v int) {
	if v < 0 || v >= p.numVars {
		panic(fmt.Sprintf("lp: variable %d out of range [0,%d)", v, p.numVars))
	}
}

// Value evaluates the objective at x.
func (p *Problem) Value(x []float64) float64 {
	total := 0.0
	for i := 0; i < p.numVars && i < len(x); i++ {
		total += p.objective[i] * x[i]
	}
	return total
}

// Violation returns the largest constraint violation of x (0 when feasible)
// together with the index of the most violated constraint (-1 when feasible).
// Negative variable values also count as violations, reported with constraint
// index -1.
func (p *Problem) Violation(x []float64) (float64, int) {
	worst := 0.0
	worstIdx := -1
	for i := 0; i < p.numVars; i++ {
		v := 0.0
		if i < len(x) {
			v = x[i]
		}
		if -v > worst {
			worst = -v
			worstIdx = -1
		}
	}
	for ci, c := range p.cons {
		lhs := 0.0
		for _, co := range c.Coeffs {
			if co.Var < len(x) {
				lhs += co.Value * x[co.Var]
			}
		}
		var viol float64
		switch c.Sense {
		case LE:
			viol = lhs - c.RHS
		case GE:
			viol = c.RHS - lhs
		case EQ:
			viol = lhs - c.RHS
			if viol < 0 {
				viol = -viol
			}
		}
		if viol > worst {
			worst = viol
			worstIdx = ci
		}
	}
	return worst, worstIdx
}
