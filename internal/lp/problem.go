package lp

import "fmt"

// Sense is the direction of a linear constraint.
type Sense int

// Constraint senses.
const (
	// LE is a "less than or equal" constraint.
	LE Sense = iota
	// EQ is an equality constraint.
	EQ
	// GE is a "greater than or equal" constraint.
	GE
)

// String renders the sense.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case EQ:
		return "="
	case GE:
		return ">="
	default:
		return fmt.Sprintf("sense(%d)", int(s))
	}
}

// Coef is one nonzero coefficient of a constraint: Value times variable Var.
type Coef struct {
	Var   int
	Value float64
}

// Constraint is a single linear constraint over the problem variables.
type Constraint struct {
	Coeffs []Coef
	Sense  Sense
	RHS    float64
}

// Problem is a linear program in minimisation form with non-negative
// variables.
type Problem struct {
	numVars   int
	objective []float64
	cons      []Constraint

	mergeBuf map[int]float64 // scratch for AddConstraint coefficient merging
}

// NewProblem creates a problem with the given number of non-negative
// variables, all with objective coefficient zero.
func NewProblem(numVars int) *Problem {
	if numVars < 0 {
		panic(fmt.Sprintf("lp: negative variable count %d", numVars))
	}
	return &Problem{
		numVars:   numVars,
		objective: make([]float64, numVars),
	}
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return p.numVars }

// NumConstraints returns the number of constraints.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// AddVariable appends a new variable with the given objective coefficient and
// returns its index.
func (p *Problem) AddVariable(objective float64) int {
	p.objective = append(p.objective, objective)
	p.numVars++
	return p.numVars - 1
}

// SetObjective sets the objective coefficient of variable v.
func (p *Problem) SetObjective(v int, c float64) {
	p.checkVar(v)
	p.objective[v] = c
}

// Objective returns the objective coefficient of variable v.
func (p *Problem) Objective(v int) float64 {
	p.checkVar(v)
	return p.objective[v]
}

// AddConstraint adds the constraint sum_i coeffs_i {sense} rhs and returns
// its index.  Coefficients referring to the same variable are summed.
func (p *Problem) AddConstraint(coeffs []Coef, sense Sense, rhs float64) int {
	// The common case has no duplicate variables; detect that with a
	// quadratic scan for short constraints (skipping the merge map entirely)
	// and fall back to the map for long ones.
	const scanLimit = 64
	dup := len(coeffs) > scanLimit
	for i, c := range coeffs {
		p.checkVar(c.Var)
		if dup {
			continue
		}
		for _, prev := range coeffs[:i] {
			if prev.Var == c.Var {
				dup = true
				break
			}
		}
	}
	out := make([]Coef, 0, len(coeffs))
	if !dup {
		for _, c := range coeffs {
			if c.Value != 0 {
				out = append(out, c)
			}
		}
	} else {
		if p.mergeBuf == nil {
			p.mergeBuf = make(map[int]float64, len(coeffs))
		}
		merged := p.mergeBuf
		clear(merged)
		for _, c := range coeffs {
			merged[c.Var] += c.Value
		}
		for v, val := range merged {
			if val != 0 {
				out = append(out, Coef{Var: v, Value: val})
			}
		}
	}
	p.cons = append(p.cons, Constraint{Coeffs: out, Sense: sense, RHS: rhs})
	return len(p.cons) - 1
}

// Constraint returns the i-th constraint.
func (p *Problem) Constraint(i int) Constraint {
	return p.cons[i]
}

func (p *Problem) checkVar(v int) {
	if v < 0 || v >= p.numVars {
		panic(fmt.Sprintf("lp: variable %d out of range [0,%d)", v, p.numVars))
	}
}

// Value evaluates the objective at x.
func (p *Problem) Value(x []float64) float64 {
	total := 0.0
	for i := 0; i < p.numVars && i < len(x); i++ {
		total += p.objective[i] * x[i]
	}
	return total
}

// Violation returns the largest constraint violation of x (0 when feasible)
// together with the index of the most violated constraint (-1 when feasible).
// Negative variable values also count as violations, reported with constraint
// index -1.
func (p *Problem) Violation(x []float64) (float64, int) {
	worst := 0.0
	worstIdx := -1
	for i := 0; i < p.numVars; i++ {
		v := 0.0
		if i < len(x) {
			v = x[i]
		}
		if -v > worst {
			worst = -v
			worstIdx = -1
		}
	}
	for ci, c := range p.cons {
		lhs := 0.0
		for _, co := range c.Coeffs {
			if co.Var < len(x) {
				lhs += co.Value * x[co.Var]
			}
		}
		var viol float64
		switch c.Sense {
		case LE:
			viol = lhs - c.RHS
		case GE:
			viol = c.RHS - lhs
		case EQ:
			viol = lhs - c.RHS
			if viol < 0 {
				viol = -viol
			}
		}
		if viol > worst {
			worst = viol
			worstIdx = ci
		}
	}
	return worst, worstIdx
}
