package lp

import (
	"errors"
	"math"
)

// errSingularBasis reports a refactorization that could not complete because
// a basis column collapsed numerically; Solver.Solve catches it and reruns
// the solve on the flat path.
var errSingularBasis = errors.New("lp: singular basis during refactorization")

// driftCheckEvery is how often (in pivots) the revised solver verifies
// B·xB = b against the original matrix; drift beyond driftTol forces an
// early refactorization.
const driftCheckEvery = 48

// driftTol is the absolute residual above which the eta file is considered
// numerically stale.
const driftTol = 1e-7

// revisedSolver is the revised simplex: the constraint matrix is kept in the
// read-only CSC form cached on the Problem (built once, see Problem.csc), the
// basis inverse is a product-form eta file (one eta column per pivot,
// refactorized from scratch when the file grows past RefactorEvery pivots or
// when B·xB drifts from b), and every pivot is a BTRAN solve for the duals, a
// price over the candidate list, an FTRAN solve of the entering column, and
// an O(rows) update of the basic values — no dense tableau anywhere.
type revisedSolver struct {
	p   *Problem
	tol float64
	m   *cscMatrix // read-only structural columns + row senses + normalised b

	rows, cols                int
	numVars, numSlack, numArt int
	artLo                     int // first artificial column; artificials are [artLo, cols)

	// Slack and artificial columns are singletons and never materialised:
	// slackRow/slackSign and artRow map column index offsets to their row.
	slackRow  []int
	slackSign []float64
	artRow    []int

	basis   []int  // basis[i] is the column basic in row i
	inBasis []bool // per column
	xB      []float64
	costs   []float64 // cost vector of the current phase, per column
	y       []float64 // dual scratch: BTRAN of the basic costs
	alpha   []float64 // primal scratch: FTRAN of the entering column
	work    []float64 // refactorization / drift-check scratch
	rc      []float64 // reduced-cost scratch for full pricing passes
	cand    []int
	colBuf  []int // basis snapshot during refactorization

	eta           etaFile
	refactorEvery int
	sinceRefactor int // pivot etas appended since the last refactorization
	sincePivot    int // pivots since the last drift check

	phase int

	iterations  int
	phase1Iters int
	fullPasses  int
	refactors   int
	etaColumns  int
	allocs      int
}

// solve runs the two-phase revised simplex.
func (r *revisedSolver) solve(p *Problem, opts Options, tol float64) (*Solution, error) {
	r.p = p
	defer func() { r.p = nil; r.m = nil }() // do not retain the problem
	r.tol = tol
	r.iterations = 0
	r.phase1Iters = 0
	r.fullPasses = 0
	r.refactors = 0
	r.etaColumns = 0
	r.allocs = 0
	r.load(p)

	r.refactorEvery = opts.RefactorEvery
	if r.refactorEvery <= 0 {
		// The eta file costs O(rows) per column to apply, the refactorization
		// O(rows) FTRANs; capping the file around the row count balances the
		// two while keeping FTRAN/BTRAN far below one dense tableau sweep.
		r.refactorEvery = r.rows/2 + 32
		if r.refactorEvery > 128 {
			r.refactorEvery = 128
		}
	}

	maxIter := maxIterations(opts, r.rows, r.cols)

	// Phase one: minimise the sum of artificial variables.
	if r.numArt > 0 {
		r.setPhase(1)
		status, err := r.optimize(maxIter)
		if err != nil {
			return nil, err
		}
		r.phase1Iters = r.iterations
		if status == StatusIterLimit {
			return r.solution(StatusIterLimit, p), nil
		}
		if r.objectiveValue() > tol*float64(1+r.rows) {
			return r.solution(StatusInfeasible, p), nil
		}
		if err := r.driveOutArtificials(); err != nil {
			return nil, err
		}
	}

	// Phase two: minimise the real objective.
	r.setPhase(2)
	status, err := r.optimize(maxIter)
	if err != nil {
		return nil, err
	}
	switch status {
	case StatusIterLimit, StatusUnbounded:
		return r.solution(status, p), nil
	}
	return r.solution(StatusOptimal, p), nil
}

// load fetches the problem's CSC matrix and installs the initial slack/
// artificial basis, which is the identity (so the eta file starts empty and
// exact).
func (r *revisedSolver) load(p *Problem) {
	r.m = p.csc()
	rows := r.m.rows
	r.rows = rows
	r.numVars = r.m.cols
	r.numSlack = 0
	r.numArt = 0
	for _, sense := range r.m.sense {
		switch sense {
		case LE:
			r.numSlack++
		case GE:
			r.numSlack++
			r.numArt++
		case EQ:
			r.numArt++
		}
	}
	r.cols = r.numVars + r.numSlack + r.numArt
	r.artLo = r.numVars + r.numSlack

	r.slackRow = grabInts(r.slackRow, r.numSlack, &r.allocs)
	r.slackSign = grabFloats(r.slackSign, r.numSlack, &r.allocs)
	r.artRow = grabInts(r.artRow, r.numArt, &r.allocs)
	r.basis = grabInts(r.basis, rows, &r.allocs)
	r.inBasis = grabBools(r.inBasis, r.cols, &r.allocs)
	clear(r.inBasis)
	r.xB = grabFloats(r.xB, rows, &r.allocs)
	r.costs = grabFloats(r.costs, r.cols, &r.allocs)
	r.y = grabFloats(r.y, rows, &r.allocs)
	r.alpha = grabFloats(r.alpha, rows, &r.allocs)
	clear(r.alpha)
	r.work = grabFloats(r.work, rows, &r.allocs)
	r.rc = grabFloats(r.rc, r.cols, &r.allocs)
	if r.cand == nil {
		r.allocs++
		r.cand = make([]int, 0, candListSize)
	}
	r.cand = r.cand[:0]
	r.colBuf = grabInts(r.colBuf, rows, &r.allocs)
	r.eta.reset()
	r.sinceRefactor = 0
	r.sincePivot = 0

	slackIdx, artIdx := 0, 0
	for i := 0; i < rows; i++ {
		r.xB[i] = r.m.b[i]
		switch r.m.sense[i] {
		case LE:
			r.slackRow[slackIdx] = i
			r.slackSign[slackIdx] = 1
			r.setBasic(i, r.numVars+slackIdx)
			slackIdx++
		case GE:
			r.slackRow[slackIdx] = i
			r.slackSign[slackIdx] = -1
			slackIdx++
			r.artRow[artIdx] = i
			r.setBasic(i, r.artLo+artIdx)
			artIdx++
		case EQ:
			r.artRow[artIdx] = i
			r.setBasic(i, r.artLo+artIdx)
			artIdx++
		}
	}
}

func (r *revisedSolver) setBasic(row, col int) {
	r.basis[row] = col
	r.inBasis[col] = true
}

// colDot returns v · A_j for any column.
func (r *revisedSolver) colDot(v []float64, j int) float64 {
	switch {
	case j < r.numVars:
		return r.m.colDot(v, j)
	case j < r.artLo:
		return r.slackSign[j-r.numVars] * v[r.slackRow[j-r.numVars]]
	default:
		return v[r.artRow[j-r.artLo]]
	}
}

// scatterCol adds A_j into the dense vector out.
func (r *revisedSolver) scatterCol(j int, out []float64) {
	switch {
	case j < r.numVars:
		r.m.scatterCol(j, out)
	case j < r.artLo:
		out[r.slackRow[j-r.numVars]] += r.slackSign[j-r.numVars]
	default:
		out[r.artRow[j-r.artLo]] += 1
	}
}

// setPhase installs the cost vector of the given phase (see flatSolver).
func (r *revisedSolver) setPhase(phase int) {
	r.phase = phase
	clear(r.costs)
	if phase == 1 {
		for j := r.artLo; j < r.cols; j++ {
			r.costs[j] = 1
		}
		return
	}
	for v := 0; v < r.numVars; v++ {
		r.costs[v] = r.p.Objective(v)
	}
}

// objectiveValue evaluates the current phase's cost vector at the current
// basic solution.
func (r *revisedSolver) objectiveValue() float64 {
	total := 0.0
	for i := 0; i < r.rows; i++ {
		if cb := r.costs[r.basis[i]]; cb != 0 {
			total += cb * r.xB[i]
		}
	}
	return total
}

func (r *revisedSolver) priceLimit() int {
	if r.phase == 1 {
		return r.cols
	}
	return r.artLo
}

// computeDuals fills r.y with the simplex multipliers of the current basis:
// y = (B^-T) c_B, one BTRAN per pivot.
func (r *revisedSolver) computeDuals() {
	for i := 0; i < r.rows; i++ {
		r.y[i] = r.costs[r.basis[i]]
	}
	r.eta.btran(r.y)
}

// reducedCost prices one column against the duals in r.y.
func (r *revisedSolver) reducedCost(j int) float64 {
	return r.costs[j] - r.colDot(r.y, j)
}

// fullPrice computes the reduced cost of every eligible column into r.rc
// from the current duals.  Basic columns are pinned to zero so round-off
// never re-selects them.  Cost: one CSC sweep, O(nonzeros + cols).
func (r *revisedSolver) fullPrice() {
	r.fullPasses++
	limit := r.priceLimit()
	for j := 0; j < limit; j++ {
		if r.inBasis[j] {
			r.rc[j] = 0
			continue
		}
		r.rc[j] = r.costs[j] - r.colDot(r.y, j)
	}
}

// rebuildCandidates refreshes the candidate list from a full pricing pass
// and returns the most attractive eligible column, or -1 at optimality.
func (r *revisedSolver) rebuildCandidates() int {
	r.fullPrice()
	best, cand := selectCandidates(r.rc, r.priceLimit(), r.tol, r.cand)
	r.cand = cand
	return best
}

// priceDantzig prices the surviving candidate list against the current duals
// and falls back to a full pricing sweep only when the list runs dry.
func (r *revisedSolver) priceDantzig() int {
	best, bestRC := -1, -r.tol
	w := 0
	for _, j := range r.cand {
		if r.inBasis[j] {
			continue
		}
		rcj := r.reducedCost(j)
		if rcj < -r.tol {
			r.cand[w] = j
			w++
			if rcj < bestRC {
				bestRC, best = rcj, j
			}
		}
	}
	r.cand = r.cand[:w]
	if best >= 0 {
		return best
	}
	return r.rebuildCandidates()
}

// priceBland returns the smallest-index eligible column with negative
// reduced cost (Bland's anti-cycling rule), or -1 at optimality.
func (r *revisedSolver) priceBland() int {
	r.fullPrice()
	limit := r.priceLimit()
	for j := 0; j < limit; j++ {
		if r.rc[j] < -r.tol {
			return j
		}
	}
	return -1
}

// optimize runs revised simplex pivots for the current phase until
// optimality, unboundedness or the iteration limit, with the same pricing
// policy as the flat path (Dantzig over a candidate list, Bland after a run
// of degenerate pivots).
func (r *revisedSolver) optimize(maxIter int) (Status, error) {
	degenerate := 0
	lastObj := r.objectiveValue()
	r.cand = r.cand[:0]
	for {
		if r.iterations >= maxIter {
			return StatusIterLimit, nil
		}
		r.computeDuals()
		var enter int
		if degenerate >= degenerateSwitch {
			enter = r.priceBland()
		} else {
			enter = r.priceDantzig()
		}
		if enter < 0 {
			return StatusOptimal, nil
		}
		r.ftranColumn(enter)
		leave := r.ratioTest()
		if leave < 0 {
			return StatusUnbounded, nil
		}
		if err := r.pivot(leave, enter); err != nil {
			return 0, err
		}
		r.iterations++
		obj := r.objectiveValue()
		if obj >= lastObj-r.tol {
			degenerate++
		} else {
			degenerate = 0
		}
		lastObj = obj
	}
}

// ftranColumn fills r.alpha with B^-1 A_enter.  r.alpha is kept zeroed
// between calls.
func (r *revisedSolver) ftranColumn(enter int) {
	clear(r.alpha)
	r.scatterCol(enter, r.alpha)
	r.eta.ftran(r.alpha)
}

// ratioTest picks the leaving row for the FTRAN'd entering column in
// r.alpha, breaking ties towards the smallest basis index (the same
// lexicographic anti-cycling bias as the flat path).
func (r *revisedSolver) ratioTest() int {
	leave := -1
	bestRatio := math.Inf(1)
	for i := 0; i < r.rows; i++ {
		aij := r.alpha[i]
		if aij <= r.tol {
			continue
		}
		ratio := r.xB[i] / aij
		if ratio < bestRatio-r.tol ||
			(math.Abs(ratio-bestRatio) <= r.tol && (leave < 0 || r.basis[i] < r.basis[leave])) {
			bestRatio = ratio
			leave = i
		}
	}
	return leave
}

// pivot applies the basis change for the entering column whose FTRAN is in
// r.alpha: update the basic values, append an eta column, and refactorize
// when the file is long or the basic values have drifted.
func (r *revisedSolver) pivot(leave, enter int) error {
	theta := r.xB[leave] / r.alpha[leave]
	for i := 0; i < r.rows; i++ {
		if a := r.alpha[i]; a != 0 && i != leave {
			r.xB[i] -= theta * a
		}
	}
	r.xB[leave] = theta
	r.eta.push(r.alpha, leave, &r.allocs)
	r.etaColumns++
	r.inBasis[r.basis[leave]] = false
	r.setBasic(leave, enter)

	r.sincePivot++
	r.sinceRefactor++
	if r.sinceRefactor >= r.refactorEvery {
		return r.refactorize()
	}
	if r.sincePivot >= driftCheckEvery && r.residual() > driftTol {
		return r.refactorize()
	}
	return nil
}

// residual returns max_i |(B xB - b)_i|, the drift of the updated basic
// values from the original system.  Cost: one sweep over the basic columns'
// nonzeros.
func (r *revisedSolver) residual() float64 {
	r.sincePivot = 0
	for i := 0; i < r.rows; i++ {
		r.work[i] = -r.m.b[i]
	}
	for i := 0; i < r.rows; i++ {
		j := r.basis[i]
		v := r.xB[i]
		if v == 0 {
			continue
		}
		switch {
		case j < r.numVars:
			for s := r.m.colPtr[j]; s < r.m.colPtr[j+1]; s++ {
				r.work[r.m.rowIdx[s]] += r.m.val[s] * v
			}
		case j < r.artLo:
			r.work[r.slackRow[j-r.numVars]] += r.slackSign[j-r.numVars] * v
		default:
			r.work[r.artRow[j-r.artLo]] += v
		}
	}
	worst := 0.0
	for _, v := range r.work {
		worst = math.Max(worst, math.Abs(v))
	}
	return worst
}

// refactorize rebuilds the eta file from scratch for the current basis
// (product-form reinversion): each basic column is FTRAN'd through the
// partial file and pivots on its largest remaining entry.  Singleton slack
// and artificial columns are processed first so they contribute unit etas
// and the structural columns fill against as short a file as possible.  The
// basic values are then recomputed as B^-1 b, clearing accumulated drift.
// Rows may be reassigned to different basic variables by the pivot-row
// choice, which is harmless: basis[i] names the variable whose value lives
// in row i.
func (r *revisedSolver) refactorize() error {
	r.refactors++
	r.eta.reset()
	cols := r.colBuf[:r.rows]
	copy(cols, r.basis)
	// assigned marks pivot rows already consumed; reuse r.work as the FTRAN
	// scratch and r.y (free between pivots) is NOT usable here because the
	// caller needs it, so mark assignment through basis itself: basis[i] = -1
	// until row i is reassigned.
	for i := range r.basis {
		r.basis[i] = -1
	}
	for pass := 0; pass < 2; pass++ {
		for _, j := range cols {
			if (pass == 0) != (j >= r.numVars) {
				continue // singletons first, structural columns second
			}
			clear(r.work)
			r.scatterCol(j, r.work)
			r.eta.ftran(r.work)
			pivotRow, pivotAbs := -1, 0.0
			for i, v := range r.work {
				if r.basis[i] != -1 {
					continue
				}
				if a := math.Abs(v); a > pivotAbs {
					pivotAbs, pivotRow = a, i
				}
			}
			if pivotRow < 0 || pivotAbs <= etaDrop {
				return errSingularBasis
			}
			r.eta.push(r.work, pivotRow, &r.allocs)
			r.etaColumns++
			r.basis[pivotRow] = j
		}
	}
	copy(r.xB, r.m.b)
	r.eta.ftran(r.xB)
	r.sinceRefactor = 0
	r.sincePivot = 0
	return nil
}

// driveOutArtificials removes artificial variables from the basis after
// phase one, pivoting on any structural column with a nonzero entry in the
// artificial's row of B^-1 A, or neutralising the row when it has become
// redundant.  The row is read through one BTRAN of the unit vector plus a
// price over the structural columns.
func (r *revisedSolver) driveOutArtificials() error {
	for i := 0; i < r.rows; i++ {
		if r.basis[i] < r.artLo {
			continue
		}
		clear(r.work)
		r.work[i] = 1
		r.eta.btran(r.work)
		pivoted := false
		for j := 0; j < r.artLo; j++ {
			if r.inBasis[j] || math.Abs(r.colDot(r.work, j)) <= r.tol {
				continue
			}
			r.ftranColumn(j)
			if math.Abs(r.alpha[i]) <= r.tol {
				// The priced entry and the exact FTRAN disagree: this entry
				// is at the edge of tolerance; keep looking for a solid one.
				continue
			}
			refactorsBefore := r.refactors
			if err := r.pivot(i, j); err != nil {
				return err
			}
			pivoted = true
			if r.refactors != refactorsBefore {
				// The pivot triggered a refactorization, which may reassign
				// rows to different basic variables; restart the scan so no
				// relocated artificial is missed.  Each pivot removes one
				// artificial from the basis, so this terminates.
				i = -1
			}
			break
		}
		if !pivoted {
			// Redundant row (all structural entries at tolerance): keep the
			// artificial basic at value zero and clear round-off.
			r.xB[i] = 0
		}
	}
	return nil
}

// extract reads the current basic solution restricted to problem variables.
func (r *revisedSolver) extract() []float64 {
	x := make([]float64, r.numVars)
	for i := 0; i < r.rows; i++ {
		b := r.basis[i]
		if b < r.numVars {
			v := r.xB[i]
			if v < 0 && v > -r.tol {
				v = 0
			}
			x[b] = v
		}
	}
	return x
}

// solution assembles the Solution for the given terminal status.
func (r *revisedSolver) solution(status Status, p *Problem) *Solution {
	sol := &Solution{
		Status:           status,
		Iterations:       r.iterations,
		Phase1Iterations: r.phase1Iters,
		PricingPasses:    r.fullPasses,
		TableauAllocs:    r.allocs,
		Refactorizations: r.refactors,
		EtaColumns:       r.etaColumns,
	}
	if status == StatusOptimal {
		sol.X = r.extract()
		sol.Objective = p.Value(sol.X)
	}
	return sol
}
