package lp

import (
	"errors"
	"math"
)

// errSingularBasis reports a (re)factorization that could not complete
// because a basis column collapsed numerically; Solver.Solve catches it and
// reruns the solve on the flat path, and a warm start that trips it falls
// back to a cold start.
var errSingularBasis = errors.New("lp: singular basis during refactorization")

// driftCheckEvery is how often (in pivots) the revised solver verifies
// B·xB = b against the original matrix; drift beyond driftTol forces an
// early refactorization.
const driftCheckEvery = 48

// driftTol is the absolute residual above which the factored basis inverse
// is considered numerically stale.
const driftTol = 1e-7

// revisedSolver is the revised simplex: the constraint matrix is kept in the
// read-only CSC form cached on the Problem (built once, see Problem.csc), the
// basis inverse is a sparse LU factorization with product-form update etas
// between refactorizations (or a pure eta file behind Options.Basis ==
// BasisEta), and every pivot is a BTRAN solve for the duals, a price over the
// candidate list (steepest-edge by default, see pricing.go), an FTRAN solve
// of the entering column, and an O(rows) update of the basic values — no
// dense tableau anywhere.
type revisedSolver struct {
	p   *Problem
	tol float64
	m   *cscMatrix // read-only structural columns + row senses + normalised b

	rows, cols                int
	numVars, numSlack, numArt int
	artLo                     int // first artificial column; artificials are [artLo, cols)

	// Slack and artificial columns are singletons and never materialised:
	// slackRow/slackSign and artRow map column index offsets to their row.
	slackRow  []int
	slackSign []float64
	artRow    []int

	basis   []int  // basis[i] is the column basic in row i
	inBasis []bool // per column
	xB      []float64
	costs   []float64 // cost vector of the current phase, per column
	y       []float64 // dual scratch: BTRAN of the basic costs
	alpha   []float64 // primal scratch: FTRAN of the entering column
	work    []float64 // refactorization / drift-check scratch
	rc      []float64 // reduced-cost scratch for full pricing passes
	gamma   []float64 // steepest-edge reference weights, per column
	rho     []float64 // dual scratch: BTRAN of the leaving row's unit vector
	cand    []int
	colBuf  []int // basis snapshot during refactorization

	// Sparse pivot-row assembly state for the steepest-edge engine: per-row
	// singleton lookups and an epoch-stamped structural-column accumulator.
	rowSlack []int32   // row -> slack offset or -1
	rowArt   []int32   // row -> artificial offset or -1
	accVal   []float64 // per structural column: accumulated pivot-row entry
	accMark  []int32   // accMark[j] == accEpoch marks accVal[j] as current
	touched  []int32   // structural columns assembled this pivot
	accEpoch int32

	eta           etaFile  // update etas (BasisLU) or the whole inverse (BasisEta)
	lu            luFactor // factored basis (BasisLU only)
	pricing       Pricing
	basisMode     BasisMethod
	update        UpdateMethod
	dualMode      bool      // Options.Dual: widen warm starts to prefix bases
	dualRC        []float64 // maintained phase-2 reduced costs of the dual phase
	dualRow       []float64 // pivot row of B^-1 A, cached for the rc update
	refactorEvery int
	sinceRefactor int // pivot etas appended since the last refactorization
	sincePivot    int // pivots since the last drift check

	phase     int
	alphaNorm float64 // |alpha|^2, accumulated by ratioTest for enterWeight

	iterations       int
	phase1Iters      int
	dualIters        int
	ftUpdates        int
	fullPasses       int
	refactors        int
	etaColumns       int
	luFills          int
	seResets         int
	allocs           int
	symbolicReuses   int
	numericRefactors int
	warmStarted      bool

	// Symbolic-factorization reuse (lusym.go): probFP is the current
	// problem's structural fingerprint and symCache the per-solver store of
	// recorded elimination skeletons, keyed by (probFP, basis columns).
	probFP   uint64
	symCache symCache

	// capture and keepWarm are set from Options; lastWarm is the internal
	// snapshot Options.WarmStart replays on the next same-shaped solve.
	capture  bool
	keepWarm bool
	haveWarm bool
	lastWarm WarmBasis

	// Batch hooks (batch.go): when warmDst is non-nil an optimal solve
	// snapshots its basis there (warmSnapped reports that it did), and when
	// dualsReuse is non-nil the solution's dual copy reuses that backing
	// array instead of allocating.  Both are cleared by the batch after each
	// solve; plain Solver solves never see them set.
	warmDst     *WarmBasis
	warmSnapped bool
	dualsReuse  []float64

	// fault is the injected numerical failure of the current solve (nil in
	// production; see fault.go).  Solver.solve arms and clears it.
	fault *Fault
}

// solve runs the two-phase revised simplex.  A non-nil warm basis is tried
// first: when it transfers to this problem the solve starts in phase two
// from it, otherwise the ordinary cold start runs.
func (r *revisedSolver) solve(p *Problem, opts Options, tol float64, warm *WarmBasis) (*Solution, error) {
	r.p = p
	defer func() { r.p = nil; r.m = nil }() // do not retain the problem
	r.tol = tol
	r.pricing = opts.Pricing
	r.basisMode = opts.Basis
	r.update = opts.Update
	r.dualMode = opts.Dual
	r.capture = opts.CaptureBasis
	r.keepWarm = opts.WarmStart
	r.iterations = 0
	r.phase1Iters = 0
	r.dualIters = 0
	r.ftUpdates = 0
	r.fullPasses = 0
	r.refactors = 0
	r.etaColumns = 0
	r.luFills = 0
	r.seResets = 0
	r.allocs = 0
	r.symbolicReuses = 0
	r.numericRefactors = 0
	r.warmStarted = false
	r.phase = 0 // not stale from the last solve: faults gate on the phase
	r.probFP = p.PatternFingerprint()
	r.load(p)

	r.refactorEvery = opts.RefactorEvery
	if r.refactorEvery <= 0 {
		// The update etas cost O(rows) per column to apply, the
		// refactorization one sparse elimination (or O(rows) FTRANs on the
		// eta path); capping the file around the row count balances the two
		// while keeping FTRAN/BTRAN far below one dense tableau sweep.  The
		// LU elimination is cheap enough that a shorter file (more frequent
		// refactorization) wins on the larger experiment sizes.
		r.refactorEvery = r.rows/2 + 32
		cap := 128
		if r.basisMode == BasisLU {
			cap = 96
		}
		if r.refactorEvery > cap {
			r.refactorEvery = cap
		}
	}
	if r.fault.armed() {
		// Refactorize after every pivot so a corrupt-factor or
		// force-singular fault bites on the first pivot instead of depending
		// on the solve happening to refactorize.
		r.refactorEvery = 1
	}

	maxIter := maxIterations(opts, r.rows, r.cols)

	if warm != nil {
		if r.installBasis(warm) {
			r.warmStarted = true
			r.setPhase(2)
			status, err := r.optimize(maxIter)
			if err != nil {
				return nil, err
			}
			switch status {
			case StatusIterLimit, StatusUnbounded:
				return r.solution(status, p), nil
			}
			return r.solution(StatusOptimal, p), nil
		}
		// The failed install may have half-built a factorization over the
		// snapshot's basis: reload the crash basis and cold-start.
		r.load(p)
		if r.dualMode {
			// Options.Dual: the snapshot may still transplant as a prefix
			// basis (a trace extension or RHS move).  A dual phase repairs
			// primal feasibility; every uncertified exit reloads and falls
			// through to the ordinary cold start below.
			sol, ok, err := r.solveDualWarm(p, maxIter, warm)
			if err != nil {
				return nil, err
			}
			if ok {
				return sol, nil
			}
			r.load(p)
		}
	}

	// Phase one: minimise the sum of artificial variables.
	if r.numArt > 0 {
		r.setPhase(1)
		status, err := r.optimize(maxIter)
		if err != nil {
			return nil, err
		}
		r.phase1Iters = r.iterations
		if status == StatusIterLimit {
			return r.solution(StatusIterLimit, p), nil
		}
		if r.objectiveValue() > tol*float64(1+r.rows) {
			return r.solution(StatusInfeasible, p), nil
		}
		if err := r.driveOutArtificials(); err != nil {
			return nil, err
		}
	}

	// Phase two: minimise the real objective.
	r.setPhase(2)
	status, err := r.optimize(maxIter)
	if err != nil {
		return nil, err
	}
	switch status {
	case StatusIterLimit, StatusUnbounded:
		return r.solution(status, p), nil
	}
	return r.solution(StatusOptimal, p), nil
}

// load fetches the problem's CSC matrix and installs the initial slack/
// artificial basis, which is the identity (so the factored inverse starts
// empty and exact).
func (r *revisedSolver) load(p *Problem) {
	r.m = p.csc()
	rows := r.m.rows
	r.rows = rows
	r.numVars = r.m.cols
	r.numSlack = 0
	r.numArt = 0
	for _, sense := range r.m.sense {
		switch sense {
		case LE:
			r.numSlack++
		case GE:
			r.numSlack++
			r.numArt++
		case EQ:
			r.numArt++
		}
	}
	r.cols = r.numVars + r.numSlack + r.numArt
	r.artLo = r.numVars + r.numSlack

	r.slackRow = grabInts(r.slackRow, r.numSlack, &r.allocs)
	r.slackSign = grabFloats(r.slackSign, r.numSlack, &r.allocs)
	r.artRow = grabInts(r.artRow, r.numArt, &r.allocs)
	r.basis = grabInts(r.basis, rows, &r.allocs)
	r.inBasis = grabBools(r.inBasis, r.cols, &r.allocs)
	clear(r.inBasis)
	r.xB = grabFloats(r.xB, rows, &r.allocs)
	r.costs = grabFloats(r.costs, r.cols, &r.allocs)
	r.y = grabFloats(r.y, rows, &r.allocs)
	r.alpha = grabFloats(r.alpha, rows, &r.allocs)
	clear(r.alpha)
	r.work = grabFloats(r.work, rows, &r.allocs)
	r.rc = grabFloats(r.rc, r.cols, &r.allocs)
	r.gamma = grabFloats(r.gamma, r.cols, &r.allocs)
	r.rho = grabFloats(r.rho, rows, &r.allocs)
	if cap(r.cand) < seCandListSize {
		r.allocs++
		r.cand = make([]int, 0, seCandListSize)
	}
	r.cand = r.cand[:0]
	r.colBuf = grabInts(r.colBuf, rows, &r.allocs)
	r.rowSlack = grabInt32s(r.rowSlack, rows, &r.allocs)
	r.rowArt = grabInt32s(r.rowArt, rows, &r.allocs)
	r.accVal = grabFloats(r.accVal, r.numVars, &r.allocs)
	r.accMark = grabInt32s(r.accMark, r.numVars, &r.allocs)
	clear(r.accMark)
	r.accEpoch = 0
	if cap(r.touched) < r.numVars {
		r.allocs++
		r.touched = make([]int32, 0, r.numVars)
	}
	r.touched = r.touched[:0]
	r.eta.reset()
	r.lu.reset()
	r.sinceRefactor = 0
	r.sincePivot = 0

	slackIdx, artIdx := 0, 0
	for i := 0; i < rows; i++ {
		r.xB[i] = r.m.b[i]
		r.rowSlack[i] = -1
		r.rowArt[i] = -1
		switch r.m.sense[i] {
		case LE:
			r.slackRow[slackIdx] = i
			r.slackSign[slackIdx] = 1
			r.rowSlack[i] = int32(slackIdx)
			r.setBasic(i, r.numVars+slackIdx)
			slackIdx++
		case GE:
			r.slackRow[slackIdx] = i
			r.slackSign[slackIdx] = -1
			r.rowSlack[i] = int32(slackIdx)
			slackIdx++
			r.artRow[artIdx] = i
			r.rowArt[i] = int32(artIdx)
			r.setBasic(i, r.artLo+artIdx)
			artIdx++
		case EQ:
			r.artRow[artIdx] = i
			r.rowArt[i] = int32(artIdx)
			r.setBasic(i, r.artLo+artIdx)
			artIdx++
		}
	}
}

func (r *revisedSolver) setBasic(row, col int) {
	r.basis[row] = col
	r.inBasis[col] = true
}

// colDot returns v · A_j for any column.
func (r *revisedSolver) colDot(v []float64, j int) float64 {
	switch {
	case j < r.numVars:
		return r.m.colDot(v, j)
	case j < r.artLo:
		return r.slackSign[j-r.numVars] * v[r.slackRow[j-r.numVars]]
	default:
		return v[r.artRow[j-r.artLo]]
	}
}

// scatterCol adds A_j into the dense vector out.
func (r *revisedSolver) scatterCol(j int, out []float64) {
	switch {
	case j < r.numVars:
		r.m.scatterCol(j, out)
	case j < r.artLo:
		out[r.slackRow[j-r.numVars]] += r.slackSign[j-r.numVars]
	default:
		out[r.artRow[j-r.artLo]] += 1
	}
}

// ftranB applies the current basis inverse to v in place: the LU factors
// followed by the (oldest-first) update etas, or the whole eta file on the
// BasisEta path.
func (r *revisedSolver) ftranB(v []float64) {
	if r.basisMode == BasisLU {
		if r.lu.ftActive {
			// Forrest–Tomlin path: the factors absorb every pivot, so there
			// is no product-form update file to compose with.
			r.lu.ftranFT(v)
			return
		}
		r.lu.ftran(v)
	}
	r.eta.ftran(v)
}

// btranB applies the transposed basis inverse to v in place: the update etas
// newest-first, then the transposed LU factors.
func (r *revisedSolver) btranB(v []float64) {
	if r.basisMode == BasisLU && r.lu.ftActive {
		r.lu.btranFT(v)
		return
	}
	r.eta.btran(v)
	if r.basisMode == BasisLU {
		r.lu.btran(v)
	}
}

// setPhase installs the cost vector of the given phase (see flatSolver).
func (r *revisedSolver) setPhase(phase int) {
	r.phase = phase
	clear(r.costs)
	if phase == 1 {
		for j := r.artLo; j < r.cols; j++ {
			r.costs[j] = 1
		}
		return
	}
	for v := 0; v < r.numVars; v++ {
		r.costs[v] = r.p.Objective(v)
	}
}

// objectiveValue evaluates the current phase's cost vector at the current
// basic solution.
func (r *revisedSolver) objectiveValue() float64 {
	total := 0.0
	for i := 0; i < r.rows; i++ {
		if cb := r.costs[r.basis[i]]; cb != 0 {
			total += cb * r.xB[i]
		}
	}
	return total
}

func (r *revisedSolver) priceLimit() int {
	if r.phase == 1 {
		return r.cols
	}
	return r.artLo
}

// computeDuals fills r.y with the simplex multipliers of the current basis:
// y = (B^-T) c_B, one BTRAN per pivot.
func (r *revisedSolver) computeDuals() {
	for i := 0; i < r.rows; i++ {
		r.y[i] = r.costs[r.basis[i]]
	}
	r.btranB(r.y)
}

// reducedCost prices one column against the duals in r.y.
func (r *revisedSolver) reducedCost(j int) float64 {
	return r.costs[j] - r.colDot(r.y, j)
}

// fullPrice computes the reduced cost of every eligible column into r.rc
// from the current duals.  Basic columns are pinned to zero so round-off
// never re-selects them.  Cost: one CSC sweep, O(nonzeros + cols).
func (r *revisedSolver) fullPrice() {
	r.fullPasses++
	limit := r.priceLimit()
	for j := 0; j < limit; j++ {
		if r.inBasis[j] {
			r.rc[j] = 0
			continue
		}
		r.rc[j] = r.costs[j] - r.colDot(r.y, j)
	}
}

// rebuildCandidates refreshes the candidate list from a full pricing pass
// and returns the most attractive eligible column, or -1 at optimality.
func (r *revisedSolver) rebuildCandidates() int {
	r.fullPrice()
	best, cand := selectCandidates(r.rc, r.priceLimit(), r.tol, r.cand)
	r.cand = cand
	return best
}

// priceDantzig prices the surviving candidate list against the current duals
// and falls back to a full pricing sweep only when the list runs dry.
func (r *revisedSolver) priceDantzig() int {
	best, bestRC := -1, -r.tol
	w := 0
	for _, j := range r.cand {
		if r.inBasis[j] {
			continue
		}
		rcj := r.reducedCost(j)
		if rcj < -r.tol {
			r.cand[w] = j
			w++
			if rcj < bestRC {
				bestRC, best = rcj, j
			}
		}
	}
	r.cand = r.cand[:w]
	if best >= 0 {
		return best
	}
	return r.rebuildCandidates()
}

// priceBland returns the smallest-index eligible column with negative
// reduced cost (Bland's anti-cycling rule), or -1 at optimality.
func (r *revisedSolver) priceBland() int {
	r.fullPrice()
	limit := r.priceLimit()
	for j := 0; j < limit; j++ {
		if r.rc[j] < -r.tol {
			return j
		}
	}
	return -1
}

// optimize runs revised simplex pivots for the current phase until
// optimality, unboundedness or the iteration limit, pricing with the
// configured rule (steepest-edge or Dantzig over the shared candidate list,
// Bland after a run of degenerate pivots).
func (r *revisedSolver) optimize(maxIter int) (Status, error) {
	degenerate := 0
	lastObj := r.objectiveValue()
	r.cand = r.cand[:0]
	steepest := r.pricing == PricingSteepestEdge
	if steepest {
		r.resetReference()
		r.seResets-- // the per-phase reset is bookkeeping, not drift
		r.refreshRC()
	}
	for {
		if r.iterations >= maxIter {
			return StatusIterLimit, nil
		}
		bland := degenerate >= degenerateSwitch
		var enter int
		switch {
		case steepest && bland:
			enter = r.priceBlandSE()
			if enter < 0 {
				r.refreshRC()
				enter = r.priceBlandSE()
			}
		case steepest:
			enter = r.priceSteepest()
			if enter < 0 {
				// The maintained reduced costs say optimal; confirm against
				// freshly computed duals before declaring it, so incremental
				// round-off can never terminate a solve early.
				r.refreshRC()
				enter = r.refillSE()
			}
		case bland:
			r.computeDuals()
			enter = r.priceBland()
		default:
			r.computeDuals()
			enter = r.priceDantzig()
		}
		if enter < 0 {
			return StatusOptimal, nil
		}
		r.ftranColumn(enter)
		var leave int
		if steepest && !bland {
			leave = r.ratioTestSE()
		} else {
			// Bland's anti-cycling guarantee needs smallest-index selection
			// on BOTH sides of the pivot, so the fallback pairs its entering
			// rule with the classic smallest-basis-index ratio test even in
			// steepest-edge mode.
			leave = r.ratioTest()
		}
		if leave < 0 {
			return StatusUnbounded, nil
		}
		var gq float64
		if steepest {
			gq = r.enterWeight(enter)
			// The pivot's objective decrease is theta * |rc_enter|; reading
			// it off the maintained reduced costs replaces the O(rows)
			// objective evaluation of the Dantzig path.  Do it before
			// seUpdate pins rc[enter] to zero.
			if r.xB[leave]/r.alpha[leave]*-r.rc[enter] <= r.tol {
				degenerate++
			} else {
				degenerate = 0
			}
			r.seUpdate(enter, leave, gq)
		}
		if err := r.pivot(leave, enter); err != nil {
			return 0, err
		}
		r.iterations++
		if !steepest {
			obj := r.objectiveValue()
			if obj >= lastObj-r.tol {
				degenerate++
			} else {
				degenerate = 0
			}
			lastObj = obj
		}
	}
}

// ftranColumn fills r.alpha with B^-1 A_enter.  r.alpha is kept zeroed
// between calls.
func (r *revisedSolver) ftranColumn(enter int) {
	clear(r.alpha)
	r.scatterCol(enter, r.alpha)
	r.ftranB(r.alpha)
}

// ratioTest picks the leaving row for the FTRAN'd entering column in
// r.alpha, breaking ties towards the smallest basis index (the same
// lexicographic anti-cycling bias as the flat path).  The sweep also
// accumulates |alpha|^2 into r.alphaNorm for the steepest-edge engine's
// exact entering weight, saving it a second pass over the column.
func (r *revisedSolver) ratioTest() int {
	leave := -1
	bestRatio := math.Inf(1)
	norm := 0.0
	for i := 0; i < r.rows; i++ {
		aij := r.alpha[i]
		norm += aij * aij
		if aij <= r.tol {
			continue
		}
		ratio := r.xB[i] / aij
		if ratio < bestRatio-r.tol ||
			(math.Abs(ratio-bestRatio) <= r.tol && (leave < 0 || r.basis[i] < r.basis[leave])) {
			bestRatio = ratio
			leave = i
		}
	}
	r.alphaNorm = norm
	return leave
}

// ratioTestSE is the steepest-edge engine's leaving-row rule: the same
// minimum-ratio test, but ties broken first towards rows whose basic
// variable is artificial (driving infeasibility carriers out early) and then
// towards the largest pivot element (numerical stability), instead of the
// smallest basis index.  Termination on degenerate stretches is still
// guaranteed by the Bland fallback in optimize.
func (r *revisedSolver) ratioTestSE() int {
	leave := -1
	bestRatio := math.Inf(1)
	bestArt := false
	bestAbs := 0.0
	norm := 0.0
	for i := 0; i < r.rows; i++ {
		aij := r.alpha[i]
		norm += aij * aij
		if aij <= r.tol {
			continue
		}
		ratio := r.xB[i] / aij
		if ratio < bestRatio-r.tol {
			bestRatio, leave = ratio, i
			bestArt = r.basis[i] >= r.artLo
			bestAbs = aij
			continue
		}
		if math.Abs(ratio-bestRatio) > r.tol {
			continue
		}
		art := r.basis[i] >= r.artLo
		if art != bestArt {
			if art {
				bestRatio, leave, bestArt, bestAbs = ratio, i, true, aij
			}
			continue
		}
		if aij > bestAbs {
			bestRatio, leave, bestAbs = ratio, i, aij
		}
	}
	r.alphaNorm = norm
	return leave
}

// pivot applies the basis change for the entering column whose FTRAN is in
// r.alpha: update the basic values, append an update eta, and refactorize
// when the file is long or the basic values have drifted.
func (r *revisedSolver) pivot(leave, enter int) error {
	if f := r.fault; f != nil && f.PerturbPivot != 0 {
		r.alpha[leave] *= 1 + f.PerturbPivot
	}
	if r.basisMode == BasisLU && r.update == UpdateFT {
		return r.pivotFT(leave, enter)
	}
	theta := r.xB[leave] / r.alpha[leave]
	// One fused sweep over the FTRAN'd column updates the basic values and
	// writes the update eta's off-pivot entries (what etaFile.push would do
	// in a second pass).
	e := &r.eta
	if len(e.pivRow) == cap(e.pivRow) {
		r.allocs++
	}
	e.pivRow = append(e.pivRow, int32(leave))
	e.pivInv = append(e.pivInv, 1/r.alpha[leave])
	for i := 0; i < r.rows; i++ {
		a := r.alpha[i]
		if a == 0 || i == leave {
			continue
		}
		r.xB[i] -= theta * a
		if a > etaDrop || a < -etaDrop {
			if len(e.idx) == cap(e.idx) {
				r.allocs++
			}
			e.idx = append(e.idx, int32(i))
			e.val = append(e.val, a)
		}
	}
	e.start = append(e.start, int32(len(e.idx)))
	r.xB[leave] = theta
	r.etaColumns++
	r.inBasis[r.basis[leave]] = false
	r.setBasic(leave, enter)

	r.sincePivot++
	r.sinceRefactor++
	if r.sinceRefactor >= r.refactorEvery {
		return r.refactorize()
	}
	if r.sincePivot >= driftCheckEvery && r.residual() > driftTol {
		return r.refactorize()
	}
	return nil
}

// pivotFT is the Forrest–Tomlin variant of pivot: the basic values update is
// the same O(alpha-nonzeros) sweep, but instead of appending a product-form
// eta the U factor itself absorbs the column replacement (luFactor.ftUpdate).
// An update the factors reject — a vanishing spike diagonal — refactorizes
// instead, which absorbs the already-recorded basis change exactly.
func (r *revisedSolver) pivotFT(leave, enter int) error {
	if !r.lu.ftActive {
		// First pivot from the identity crash basis: there is nothing to
		// update yet, so factorize it first.  The basis is unchanged, so the
		// FTRAN'd column in r.alpha remains valid.
		if err := r.refactorize(); err != nil {
			return err
		}
	}
	theta := r.xB[leave] / r.alpha[leave]
	for i := 0; i < r.rows; i++ {
		a := r.alpha[i]
		if a == 0 || i == leave {
			continue
		}
		r.xB[i] -= theta * a
	}
	r.xB[leave] = theta
	r.inBasis[r.basis[leave]] = false
	r.setBasic(leave, enter)
	r.sincePivot++
	r.sinceRefactor++
	if !r.lu.ftUpdate(r, leave, enter, &r.allocs) {
		return r.refactorize()
	}
	r.ftUpdates++
	if r.sinceRefactor >= r.refactorEvery {
		return r.refactorize()
	}
	if r.sincePivot >= driftCheckEvery && r.residual() > driftTol {
		return r.refactorize()
	}
	return nil
}

// residual returns max_i |(B xB - b)_i|, the drift of the updated basic
// values from the original system.  Cost: one sweep over the basic columns'
// nonzeros.
func (r *revisedSolver) residual() float64 {
	r.sincePivot = 0
	for i := 0; i < r.rows; i++ {
		r.work[i] = -r.m.b[i]
	}
	for i := 0; i < r.rows; i++ {
		j := r.basis[i]
		v := r.xB[i]
		if v == 0 {
			continue
		}
		switch {
		case j < r.numVars:
			for s := r.m.colPtr[j]; s < r.m.colPtr[j+1]; s++ {
				r.work[r.m.rowIdx[s]] += r.m.val[s] * v
			}
		case j < r.artLo:
			r.work[r.slackRow[j-r.numVars]] += r.slackSign[j-r.numVars] * v
		default:
			r.work[r.artRow[j-r.artLo]] += v
		}
	}
	worst := 0.0
	for _, v := range r.work {
		worst = math.Max(worst, math.Abs(v))
	}
	return worst
}

// refactorize rebuilds the basis inverse from scratch for the current basis
// and recomputes the basic values as B^-1 b, clearing accumulated drift.
// Rows may be reassigned to different basic variables by the pivot choices,
// which is harmless: basis[i] names the variable whose value lives in row i.
//
// On the BasisLU path this is one sparse Markowitz elimination (lu.go); the
// update eta file is emptied because the fresh factors absorb it.  On the
// BasisEta path it is the PR-2 product-form reinversion: each basic column
// is FTRAN'd through the partial file and pivots on its largest remaining
// entry, singleton slack and artificial columns first so the structural
// columns fill against as short a file as possible.
func (r *revisedSolver) refactorize() error {
	if f := r.fault; f != nil && f.ForceSingular {
		return errSingularBasis
	}
	r.refactors++
	if r.basisMode == BasisLU {
		cols := r.colBuf[:r.rows]
		copy(cols, r.basis)
		// Symbolic split (lusym.go): a recorded skeleton for this exact
		// (problem pattern, basis) structure turns the Markowitz elimination
		// into a verified numeric-only replay; a miss — or a replay whose
		// value-dependent decisions no longer match — runs the full
		// factorization and records the skeleton it traces.
		basisFP := basisFingerprint(cols)
		e := r.symCache.lookup(r.probFP, basisFP, r.rows)
		if e != nil {
			r.numericRefactors++
			if r.lu.replay(r, cols, &e.rec) {
				r.symbolicReuses++
			} else {
				e.valid = false
			}
		}
		if e == nil || !e.valid {
			if e == nil {
				e = r.symCache.slot(r.probFP, basisFP)
			}
			r.lu.rec = &e.rec
			err := r.lu.factorize(r, cols)
			r.lu.rec = nil
			if err != nil {
				return err
			}
			e.valid = true
		}
		if f := r.fault; f != nil && f.CorruptFactor && r.phase == 2 {
			f.apply(r.lu.uDiagInv)
		}
		r.luFills += r.lu.fills
		for k, row := range r.lu.pivRow {
			r.basis[row] = cols[r.lu.pivSlot[k]]
		}
		r.eta.reset()
		copy(r.xB, r.m.b)
		r.lu.ftran(r.xB)
		if r.update == UpdateFT {
			r.lu.ftInit(&r.allocs)
		} else {
			r.lu.ftActive = false
		}
		r.sinceRefactor = 0
		r.sincePivot = 0
		return nil
	}

	r.eta.reset()
	cols := r.colBuf[:r.rows]
	copy(cols, r.basis)
	// assigned marks pivot rows already consumed; reuse r.work as the FTRAN
	// scratch and r.y (free between pivots) is NOT usable here because the
	// caller needs it, so mark assignment through basis itself: basis[i] = -1
	// until row i is reassigned.
	for i := range r.basis {
		r.basis[i] = -1
	}
	for pass := 0; pass < 2; pass++ {
		for _, j := range cols {
			if (pass == 0) != (j >= r.numVars) {
				continue // singletons first, structural columns second
			}
			clear(r.work)
			r.scatterCol(j, r.work)
			r.eta.ftran(r.work)
			pivotRow, pivotAbs := -1, 0.0
			for i, v := range r.work {
				if r.basis[i] != -1 {
					continue
				}
				if a := math.Abs(v); a > pivotAbs {
					pivotAbs, pivotRow = a, i
				}
			}
			if pivotRow < 0 || pivotAbs <= etaDrop {
				return errSingularBasis
			}
			r.eta.push(r.work, pivotRow, &r.allocs)
			r.etaColumns++
			r.basis[pivotRow] = j
		}
	}
	if f := r.fault; f != nil && f.CorruptFactor && r.phase == 2 {
		f.apply(r.eta.pivInv)
	}
	copy(r.xB, r.m.b)
	r.eta.ftran(r.xB)
	r.sinceRefactor = 0
	r.sincePivot = 0
	return nil
}

// driveOutArtificials removes artificial variables from the basis after
// phase one, pivoting on any structural column with a nonzero entry in the
// artificial's row of B^-1 A, or neutralising the row when it has become
// redundant.  The row is read through one BTRAN of the unit vector plus a
// price over the structural columns.
func (r *revisedSolver) driveOutArtificials() error {
	for i := 0; i < r.rows; i++ {
		if r.basis[i] < r.artLo {
			continue
		}
		clear(r.work)
		r.work[i] = 1
		r.btranB(r.work)
		pivoted := false
		for j := 0; j < r.artLo; j++ {
			if r.inBasis[j] || math.Abs(r.colDot(r.work, j)) <= r.tol {
				continue
			}
			r.ftranColumn(j)
			if math.Abs(r.alpha[i]) <= r.tol {
				// The priced entry and the exact FTRAN disagree: this entry
				// is at the edge of tolerance; keep looking for a solid one.
				continue
			}
			refactorsBefore := r.refactors
			if err := r.pivot(i, j); err != nil {
				return err
			}
			pivoted = true
			if r.refactors != refactorsBefore {
				// The pivot triggered a refactorization, which may reassign
				// rows to different basic variables; restart the scan so no
				// relocated artificial is missed.  Each pivot removes one
				// artificial from the basis, so this terminates.
				i = -1
			}
			break
		}
		if !pivoted {
			// Redundant row (all structural entries at tolerance): keep the
			// artificial basic at value zero and clear round-off.
			r.xB[i] = 0
		}
	}
	return nil
}

// extract reads the current basic solution restricted to problem variables.
func (r *revisedSolver) extract() []float64 {
	x := make([]float64, r.numVars)
	for i := 0; i < r.rows; i++ {
		b := r.basis[i]
		if b < r.numVars {
			v := r.xB[i]
			if v < 0 && v > -r.tol {
				v = 0
			}
			x[b] = v
		}
	}
	return x
}

// solution assembles the Solution for the given terminal status and, on an
// optimal solve, captures the basis snapshots requested through Options.
func (r *revisedSolver) solution(status Status, p *Problem) *Solution {
	sol := &Solution{
		Status:           status,
		Iterations:       r.iterations,
		Phase1Iterations: r.phase1Iters,
		DualIterations:   r.dualIters,
		FTUpdates:        r.ftUpdates,
		PricingPasses:    r.fullPasses,
		TableauAllocs:    r.allocs,
		Refactorizations: r.refactors,
		EtaColumns:       r.etaColumns,
		LUFills:          r.luFills,
		SymbolicReuses:   r.symbolicReuses,
		NumericRefactors: r.numericRefactors,
		PricingRule:      r.pricing,
		WarmStarted:      r.warmStarted,
	}
	if status == StatusOptimal {
		sol.X = r.extract()
		sol.Objective = p.Value(sol.X)
		if f := r.fault; f != nil && f.CorruptObjective {
			// An offset of 1+|obj| clears Verify's relative tolerance on any
			// problem, so the fault is deterministically caught, never a
			// silent no-op.
			sol.Objective += 1 + math.Abs(sol.Objective)
		}
		// Capture the final simplex multipliers (one BTRAN plus one copy) so
		// Verify can price the dual-feasibility check without re-deriving
		// them from the factored inverse the check is meant to distrust the
		// output of.
		r.computeDuals()
		if r.dualsReuse != nil {
			// Batch path: the member's arena absorbs the copy, so the
			// steady-state solve performs no duals allocation.  This recycles
			// the member's previous Solution's certificate; Verify tolerates
			// it (a stale duals slice can only fail, never falsely pass).
			sol.duals = append(r.dualsReuse[:0], r.y...)
		} else {
			sol.duals = append([]float64(nil), r.y...)
		}
		if r.capture {
			sol.Basis = r.captureBasis()
		}
		if r.keepWarm {
			r.snapshotInto(&r.lastWarm)
			r.haveWarm = true
		}
		if r.warmDst != nil {
			r.snapshotInto(r.warmDst)
			r.warmSnapped = true
		}
	}
	return sol
}
