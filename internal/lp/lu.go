package lp

import "math"

// luFactor is a sparse LU factorization of the simplex basis, the production
// replacement for rebuilding the product-form eta file from scratch
// (Options.Basis == BasisLU, the default; see eta.go for the surviving
// BasisEta path).
//
// The factorization is a right-looking sparse Gaussian elimination with
// Markowitz-style pivoting: at every step the pivot column is an active
// column of minimal active nonzero count, and within it the pivot row
// minimises the active row count among entries passing threshold partial
// pivoting (|entry| >= luPivotRel * max|column entry|).  That double minimum
// approximates the Markowitz cost (r-1)(c-1) while the threshold keeps the
// factors numerically stable, and on the ~1% dense prefetching LPs it keeps
// fill-in (tracked in fills, surfaced as Solution.LUFills) a small multiple
// of the basis nonzeros — where the eta-file reinversion wrote one fresh,
// increasingly dense eta column per basis column.
//
// The output is a permuted triangular pair kept in flat reusable arrays:
//
//   - L as unit-diagonal multiplier columns in elimination order (pivRow[k]
//     plus the (lIdx, lVal) run of off-pivot multipliers), applied like an
//     eta file with pivot scale 1;
//   - U column-wise in elimination order: the inverted diagonal uDiagInv[k]
//     plus (uIdx, uVal) entries whose row coordinate is the *elimination
//     index* of an earlier pivot (physical row = pivRow[uIdx[s]]).
//
// ftran/btran solve against L and U directly: B^-1 v = U^-1 L^-1 v and
// B^-T v = L^-T U^-T v, both in place on a dense physical-row vector.
// Between refactorizations the basis inverse is LU composed with the update
// eta file (see revisedSolver.ftranB/btranB): each pivot appends the
// FTRAN'd entering column as a product-form update in U-space — the
// untriangularised form of the Forrest–Tomlin column update, which keeps the
// factors frozen and the update cost proportional to the entering column's
// fill until the next refactorization.
type luFactor struct {
	rows int

	pivRow   []int32 // elimination order -> physical pivot row
	pivSlot  []int32 // elimination order -> basis position (column slot)
	lStart   []int32 // len(pivRow)+1 offsets into lIdx/lVal
	lIdx     []int32 // physical rows of L multipliers
	lVal     []float64
	uDiagInv []float64
	uStart   []int32 // len(pivRow)+1 offsets into uIdx/uVal
	uIdx     []int32 // elimination index of the entry's pivot row
	uVal     []float64

	// fills counts entries created beyond the basis columns' own nonzeros
	// during the last factorization.
	fills int

	// Factorization workspace, all reused across factorizations and solves.
	colIdx   [][]int32   // per basis slot: physical rows of the working column
	colVal   [][]float64 // per basis slot: matching values
	rowCols  [][]int32   // per physical row: column slots whose pattern has it
	rowOrder []int32     // physical row -> elimination index, -1 while active
	colDone  []bool      // column slot already pivoted
	colCount []int32     // active (unpivoted-row) entries per column slot
	rowCount []int32     // active columns containing each physical row
	mRows    []int32     // multiplier rows of the current step
	mVal     []float64   // dense multiplier value per physical row
	mMark    []int32     // mMark[i] == mGen marks i as a multiplier row
	present  []int32     // present[i] == pGen marks i as present in the target column
	mGen     int32
	pGen     int32

	// Column-count buckets for Markowitz pivot-column selection: bHead[c]
	// heads a doubly-linked list (bNext/bPrev) of the undone column slots
	// whose active count is exactly c (bCnt remembers the linked count so
	// unlinking knows its head).  Every count change relinks the column, so
	// popping the minimum is O(1) amortised instead of an O(rows) scan per
	// elimination step.
	bHead []int32
	bNext []int32
	bPrev []int32
	bCnt  []int32
	bCur  int32 // lowest bucket that may be nonempty

	// rec, when non-nil, receives the elimination's symbolic skeleton as
	// factorize runs (see lusym.go): pivot choices, target columns, update
	// predicates and fill verdicts, in execution order.  Recording never
	// changes the factorization itself.
	rec *luSymbolic

	// Forrest–Tomlin update state (Options.Update == UpdateFT, see ft.go).
	// Slots beyond the factorize-time rows are spike columns appended by
	// ftUpdate; replaced slots are lazily dead and skipped in solves.
	ftActive bool
	ftOrder  []int32 // triangular position -> slot (always rows long)
	ftPos    []int32 // slot -> triangular position (dead slots stale)
	rowSlot  []int32 // physical row -> the live slot it pivots
	slotDead []bool  // per slot: replaced by a later spike
	ftMult   []float64
	ftMark   []int32
	ftGen    int32
	ftTouch  []int32    // slots with live multipliers, in position order
	rEta     rowEtaFile // row etas of the spike eliminations
}

// luPivotRel is the threshold-partial-pivoting relative tolerance: a pivot
// candidate must be at least this fraction of the largest active entry of its
// column.  0.1 is the classic compromise between sparsity (freedom for the
// Markowitz row choice) and stability.
const luPivotRel = 0.1

// luDrop is the absolute magnitude below which fill-in entries are not
// recorded, mirroring etaDrop: the update that produced them is already
// bounded by the drift check and periodic refactorization.
const luDrop = 1e-12

// luSingular is the absolute pivot magnitude below which a column is treated
// as numerically zero and the basis as singular.
const luSingular = 1e-11

// reset empties the factor (keeping capacity), leaving it representing the
// identity — the state matching the initial slack/artificial basis.
func (lu *luFactor) reset() {
	lu.rows = 0
	lu.pivRow = lu.pivRow[:0]
	lu.pivSlot = lu.pivSlot[:0]
	lu.lIdx = lu.lIdx[:0]
	lu.lVal = lu.lVal[:0]
	lu.uDiagInv = lu.uDiagInv[:0]
	lu.uIdx = lu.uIdx[:0]
	lu.uVal = lu.uVal[:0]
	lu.lStart = lu.lStart[:0]
	lu.uStart = lu.uStart[:0]
	lu.fills = 0
	lu.ftActive = false
}

// nonzeros returns the entry count of both factors, the quantity ftran/btran
// cost is proportional to.
func (lu *luFactor) nonzeros() int { return len(lu.lIdx) + len(lu.uIdx) + len(lu.uDiagInv) }

// grow readies the workspace for an m-row factorization.
func (lu *luFactor) grow(m int, allocs *int) {
	if cap(lu.colIdx) < m {
		*allocs++
		colIdx := make([][]int32, m)
		copy(colIdx, lu.colIdx)
		lu.colIdx = colIdx
		colVal := make([][]float64, m)
		copy(colVal, lu.colVal)
		lu.colVal = colVal
		rowCols := make([][]int32, m)
		copy(rowCols, lu.rowCols)
		lu.rowCols = rowCols
	}
	lu.colIdx = lu.colIdx[:m]
	lu.colVal = lu.colVal[:m]
	lu.rowCols = lu.rowCols[:m]
	lu.rowOrder = grabInt32s(lu.rowOrder, m, allocs)
	lu.colDone = grabBools(lu.colDone, m, allocs)
	lu.colCount = grabInt32s(lu.colCount, m, allocs)
	lu.rowCount = grabInt32s(lu.rowCount, m, allocs)
	if cap(lu.mRows) < m {
		*allocs++
		lu.mRows = make([]int32, 0, m)
	}
	lu.mRows = lu.mRows[:0]
	lu.mVal = grabFloats(lu.mVal, m, allocs)
	lu.mMark = grabInt32s(lu.mMark, m, allocs)
	lu.present = grabInt32s(lu.present, m, allocs)
	lu.pivRow = grabInt32s(lu.pivRow, m, allocs)[:0]
	lu.pivSlot = grabInt32s(lu.pivSlot, m, allocs)[:0]
	lu.uDiagInv = grabFloats(lu.uDiagInv, m, allocs)[:0]
	if cap(lu.lStart) < m+1 {
		*allocs++
		lu.lStart = make([]int32, 0, m+1)
		lu.uStart = make([]int32, 0, m+1)
	}
	lu.lStart = append(lu.lStart[:0], 0)
	lu.uStart = append(lu.uStart[:0], 0)
	lu.lIdx = lu.lIdx[:0]
	lu.lVal = lu.lVal[:0]
	lu.uIdx = lu.uIdx[:0]
	lu.uVal = lu.uVal[:0]
	clear(lu.mMark)
	clear(lu.present)
	lu.mGen = 0
	lu.pGen = 0
	lu.fills = 0
	lu.bHead = grabInt32s(lu.bHead, m+1, allocs)
	lu.bNext = grabInt32s(lu.bNext, m, allocs)
	lu.bPrev = grabInt32s(lu.bPrev, m, allocs)
	lu.bCnt = grabInt32s(lu.bCnt, m, allocs)
	for i := range lu.bHead {
		lu.bHead[i] = -1
	}
	lu.bCur = 0
}

// bucketLink inserts column slot c at the head of its current count's list.
func (lu *luFactor) bucketLink(c int32) {
	cnt := lu.colCount[c]
	lu.bCnt[c] = cnt
	lu.bPrev[c] = -1
	lu.bNext[c] = lu.bHead[cnt]
	if lu.bHead[cnt] >= 0 {
		lu.bPrev[lu.bHead[cnt]] = c
	}
	lu.bHead[cnt] = c
	if cnt < lu.bCur {
		lu.bCur = cnt
	}
}

// bucketUnlink removes column slot c from the list it is linked into.
func (lu *luFactor) bucketUnlink(c int32) {
	p, n := lu.bPrev[c], lu.bNext[c]
	if p >= 0 {
		lu.bNext[p] = n
	} else {
		lu.bHead[lu.bCnt[c]] = n
	}
	if n >= 0 {
		lu.bPrev[n] = p
	}
}

// bucketRelink moves column slot c to the list of its updated count.
func (lu *luFactor) bucketRelink(c int32) {
	if lu.bCnt[c] == lu.colCount[c] {
		return
	}
	lu.bucketUnlink(c)
	lu.bucketLink(c)
}

// bucketPop unlinks and returns the undone column slot with the smallest
// active count, or -1 when none remains.
func (lu *luFactor) bucketPop() int32 {
	top := int32(len(lu.bHead) - 1)
	for lu.bCur <= top && lu.bHead[lu.bCur] < 0 {
		lu.bCur++
	}
	if lu.bCur > top {
		return -1
	}
	c := lu.bHead[lu.bCur]
	lu.bucketUnlink(c)
	return c
}

// pushCol appends one entry to working column c, counting backing growth.
func (lu *luFactor) pushCol(c int, row int32, v float64, allocs *int) {
	if len(lu.colIdx[c]) == cap(lu.colIdx[c]) {
		*allocs++
	}
	lu.colIdx[c] = append(lu.colIdx[c], row)
	lu.colVal[c] = append(lu.colVal[c], v)
}

// factorize computes the LU factors of the basis described by slots: the
// basis column of slot i is the problem column slots[i] of solver r.  On
// success the elimination's (pivot row, slot) pairing is available through
// pivRow/pivSlot so the caller can reassign basis rows, exactly as the eta
// reinversion did.  Returns errSingularBasis when a column has no usable
// pivot.
func (lu *luFactor) factorize(r *revisedSolver, slots []int) error {
	m := r.rows
	lu.grow(m, &r.allocs)
	lu.rows = m
	rec := lu.rec
	if rec != nil {
		rec.reset(m)
	}

	for i := 0; i < m; i++ {
		lu.colIdx[i] = lu.colIdx[i][:0]
		lu.colVal[i] = lu.colVal[i][:0]
		lu.rowCols[i] = lu.rowCols[i][:0]
		lu.rowOrder[i] = -1
		lu.colDone[i] = false
		lu.colCount[i] = 0
		lu.rowCount[i] = 0
	}

	// Load the basis columns into the working sparse form.
	for c, j := range slots {
		switch {
		case j < r.numVars:
			cm := r.m
			for s := cm.colPtr[j]; s < cm.colPtr[j+1]; s++ {
				lu.pushCol(c, cm.rowIdx[s], cm.val[s], &r.allocs)
			}
		case j < r.artLo:
			lu.pushCol(c, int32(r.slackRow[j-r.numVars]), r.slackSign[j-r.numVars], &r.allocs)
		default:
			lu.pushCol(c, int32(r.artRow[j-r.artLo]), 1, &r.allocs)
		}
		lu.colCount[c] = int32(len(lu.colIdx[c]))
		for _, row := range lu.colIdx[c] {
			if len(lu.rowCols[row]) == cap(lu.rowCols[row]) {
				r.allocs++
			}
			lu.rowCols[row] = append(lu.rowCols[row], int32(c))
			lu.rowCount[row]++
		}
	}

	for c := int32(0); c < int32(m); c++ {
		lu.bucketLink(c)
	}

	for k := 0; k < m; k++ {
		// Pivot column: the active column with the fewest active entries,
		// popped from the count buckets (deterministic link order, so the
		// elimination is reproducible).
		pc := int(lu.bucketPop())
		if pc < 0 || lu.colCount[pc] == 0 {
			return errSingularBasis
		}

		// Pivot row: threshold partial pivoting (within luPivotRel of the
		// column's largest active entry) with the smallest active row count,
		// breaking ties towards the smallest physical row.
		idx, val := lu.colIdx[pc], lu.colVal[pc]
		maxAbs := 0.0
		for s, row := range idx {
			if lu.rowOrder[row] >= 0 {
				continue
			}
			if a := math.Abs(val[s]); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs <= luSingular {
			return errSingularBasis
		}
		thresh := luPivotRel * maxAbs
		pr := int32(-1)
		prCount := int32(0)
		var pv float64
		for s, row := range idx {
			if lu.rowOrder[row] >= 0 {
				continue
			}
			if math.Abs(val[s]) < thresh {
				continue
			}
			if pr < 0 || lu.rowCount[row] < prCount || (lu.rowCount[row] == prCount && row < pr) {
				pr, prCount, pv = row, lu.rowCount[row], val[s]
			}
		}

		// Emit the L multipliers (active rows) and the U column (rows
		// pivoted in earlier steps, frozen since their step).
		lu.mGen++
		mRows := lu.mRows[:0]
		for s, row := range idx {
			if row == pr {
				continue
			}
			if ord := lu.rowOrder[row]; ord >= 0 {
				if len(lu.uIdx) == cap(lu.uIdx) {
					r.allocs++
				}
				lu.uIdx = append(lu.uIdx, ord)
				lu.uVal = append(lu.uVal, val[s])
				continue
			}
			l := val[s] / pv
			if len(lu.lIdx) == cap(lu.lIdx) {
				r.allocs++
			}
			lu.lIdx = append(lu.lIdx, row)
			lu.lVal = append(lu.lVal, l)
			lu.mVal[row] = l
			lu.mMark[row] = lu.mGen
			mRows = append(mRows, row)
			lu.rowCount[row]-- // column pc leaves the active set
		}
		lu.mRows = mRows
		lu.pivRow = append(lu.pivRow, pr)
		lu.pivSlot = append(lu.pivSlot, int32(pc))
		lu.uDiagInv = append(lu.uDiagInv, 1/pv)
		lu.lStart = append(lu.lStart, int32(len(lu.lIdx)))
		lu.uStart = append(lu.uStart, int32(len(lu.uIdx)))
		if rec != nil {
			rec.pivRow = append(rec.pivRow, pr)
			rec.pivCol = append(rec.pivCol, int32(pc))
		}

		// Eliminate the pivot row from every other active column that has an
		// entry in it.  The entry itself stays frozen in the column (it is a
		// future U entry); only active rows are updated, gaining fill at the
		// multiplier rows they lack.
		for _, c2i := range lu.rowCols[pr] {
			c2 := int(c2i)
			if c2 == pc || lu.colDone[c2] {
				continue
			}
			idx2, val2 := lu.colIdx[c2], lu.colVal[c2]
			var u float64
			found := false
			for s, row := range idx2 {
				if row == pr {
					u, found = val2[s], true
					break
				}
			}
			if !found {
				continue
			}
			lu.colCount[c2]-- // the pivot-row entry freezes
			hadUpd := u != 0 && len(mRows) > 0
			if rec != nil {
				rec.tCol = append(rec.tCol, c2i)
				rec.tHadUpd = append(rec.tHadUpd, hadUpd)
			}
			if hadUpd {
				lu.pGen++
				for s, row := range idx2 {
					if lu.mMark[row] == lu.mGen && lu.rowOrder[row] < 0 {
						val2[s] -= lu.mVal[row] * u
						lu.present[row] = lu.pGen
					}
				}
				for _, row := range mRows {
					if lu.present[row] == lu.pGen {
						continue
					}
					f := -lu.mVal[row] * u
					keep := !(f < luDrop && f > -luDrop)
					if rec != nil {
						rec.fillKeep = append(rec.fillKeep, keep)
					}
					if !keep {
						continue
					}
					lu.pushCol(c2, row, f, &r.allocs)
					if len(lu.rowCols[row]) == cap(lu.rowCols[row]) {
						r.allocs++
					}
					lu.rowCols[row] = append(lu.rowCols[row], c2i)
					lu.rowCount[row]++
					lu.colCount[c2]++
					lu.fills++
				}
			}
			lu.bucketRelink(c2i) // count changed: move to its new bucket
		}
		if rec != nil {
			rec.tStart = append(rec.tStart, int32(len(rec.tCol)))
		}

		lu.rowOrder[pr] = int32(k)
		lu.colDone[pc] = true
	}
	return nil
}

// ftran applies the factored basis inverse to v in place: v <- U^-1 L^-1 v.
func (lu *luFactor) ftran(v []float64) {
	n := len(lu.pivRow)
	for k := 0; k < n; k++ {
		t := v[lu.pivRow[k]]
		if t == 0 {
			continue
		}
		for s := lu.lStart[k]; s < lu.lStart[k+1]; s++ {
			v[lu.lIdx[s]] -= lu.lVal[s] * t
		}
	}
	for k := n - 1; k >= 0; k-- {
		r := lu.pivRow[k]
		t := v[r]
		if t == 0 {
			continue
		}
		t *= lu.uDiagInv[k]
		v[r] = t
		for s := lu.uStart[k]; s < lu.uStart[k+1]; s++ {
			v[lu.pivRow[lu.uIdx[s]]] -= lu.uVal[s] * t
		}
	}
}

// btran applies the transposed factored inverse to v in place:
// v <- L^-T U^-T v.
func (lu *luFactor) btran(v []float64) {
	n := len(lu.pivRow)
	for k := 0; k < n; k++ {
		r := lu.pivRow[k]
		t := v[r]
		for s := lu.uStart[k]; s < lu.uStart[k+1]; s++ {
			t -= lu.uVal[s] * v[lu.pivRow[lu.uIdx[s]]]
		}
		v[r] = t * lu.uDiagInv[k]
	}
	for k := n - 1; k >= 0; k-- {
		r := lu.pivRow[k]
		t := v[r]
		for s := lu.lStart[k]; s < lu.lStart[k+1]; s++ {
			t -= lu.lVal[s] * v[lu.lIdx[s]]
		}
		v[r] = t
	}
}

// grabInt32s is grabInts for int32 buffers.
func grabInt32s(buf []int32, n int, allocs *int) []int32 {
	if cap(buf) < n {
		*allocs++
		return make([]int32, n)
	}
	return buf[:n]
}
