package lp_test

// Tests of the verified-solve layer: the independent optimality certificate
// (lp.Verify), the typed numeric-failure errors, the self-healing cascade
// behind Options.Cascade, and the injectable numeric faults the cascade is
// proven against.  The hostile warm-start property test rides here too: a
// stale or fabricated basis must never change a solve's answer, only its
// cost.

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"pfcache/internal/lp"
)

// productionProblem is the classic two-variable production LP with a unique
// optimum: maximise 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18
// (objective -36 at (2,6) in min form).
func productionProblem() *lp.Problem {
	p := lp.NewProblem(2)
	p.SetObjective(0, -3)
	p.SetObjective(1, -5)
	p.AddConstraint([]lp.Coef{{Var: 0, Value: 1}}, lp.LE, 4)
	p.AddConstraint([]lp.Coef{{Var: 1, Value: 2}}, lp.LE, 12)
	p.AddConstraint([]lp.Coef{{Var: 0, Value: 3}, {Var: 1, Value: 2}}, lp.LE, 18)
	return p
}

func optimalSolution(t *testing.T, p *lp.Problem) *lp.Solution {
	t.Helper()
	sol, err := lp.Solve(p, lp.Options{})
	if err != nil || sol.Status != lp.StatusOptimal {
		t.Fatalf("solve: sol=%+v err=%v", sol, err)
	}
	return sol
}

// wantVerifyFailure asserts Verify rejects sol with the named check.
func wantVerifyFailure(t *testing.T, p *lp.Problem, sol *lp.Solution, check string) {
	t.Helper()
	err := lp.Verify(p, sol)
	var ve *lp.VerificationError
	if !errors.As(err, &ve) {
		t.Fatalf("Verify = %v, want *VerificationError (%s)", err, check)
	}
	if ve.Check != check {
		t.Fatalf("Verify failed check %q, want %q", ve.Check, check)
	}
}

// TestVerifyCertificate tampers with each component of an optimal solution
// and requires the certificate to name the corresponding failed check, while
// the untampered solution verifies clean.
func TestVerifyCertificate(t *testing.T) {
	p := productionProblem()

	if err := lp.Verify(p, optimalSolution(t, p)); err != nil {
		t.Fatalf("clean solution failed verification: %v", err)
	}

	sol := optimalSolution(t, p)
	lp.TamperX(sol, 0, -1)
	wantVerifyFailure(t, p, sol, "bounds")

	sol = optimalSolution(t, p)
	lp.TamperX(sol, 0, 100) // breaks x <= 4 long before the objective check runs
	wantVerifyFailure(t, p, sol, "primal-residual")

	sol = optimalSolution(t, p)
	lp.TamperObjective(sol, sol.Objective+1)
	wantVerifyFailure(t, p, sol, "objective")

	sol = optimalSolution(t, p)
	if !lp.HasDuals(sol) {
		t.Fatal("revised solve recorded no duals")
	}
	lp.TamperDual(sol, 0, 1) // a positive multiplier on a <= row is dual infeasible
	wantVerifyFailure(t, p, sol, "dual-feasibility")
}

// TestVerifyTrivialOnNonOptimal: non-optimal statuses carry no certificate.
func TestVerifyTrivialOnNonOptimal(t *testing.T) {
	p := lp.NewProblem(1)
	p.SetObjective(0, 1)
	p.AddConstraint([]lp.Coef{{Var: 0, Value: 1}}, lp.LE, 1)
	p.AddConstraint([]lp.Coef{{Var: 0, Value: 1}}, lp.GE, 2)
	sol, err := lp.Solve(p, lp.Options{})
	if err != nil || sol.Status != lp.StatusInfeasible {
		t.Fatalf("sol=%+v err=%v, want infeasible", sol, err)
	}
	if verr := lp.Verify(p, sol); verr != nil {
		t.Fatalf("Verify(infeasible) = %v, want nil", verr)
	}
	if verr := lp.Verify(p, nil); verr != nil {
		t.Fatalf("Verify(nil) = %v, want nil", verr)
	}
}

// TestNumericErrorStrings pins the wire-visible error strings of the typed
// numeric failures: the service maps them to HTTP bodies, so their wording
// is part of the observable contract.
func TestNumericErrorStrings(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{&lp.VerificationError{Check: "primal-residual", Violation: 0.0123, Tolerance: 1e-6},
			"lp: verification failed: primal-residual violation 0.0123 exceeds 1e-06"},
		{&lp.PivotBudgetError{Iterations: 7},
			"lp: pivot budget exhausted after 7 iterations"},
		{&lp.CascadeExhaustedError{Attempts: 4, Last: errors.New("boom")},
			"lp: solve cascade exhausted after 4 attempts: boom"},
	}
	for _, c := range cases {
		if got := c.err.Error(); got != c.want {
			t.Errorf("error string %q, want %q", got, c.want)
		}
	}
	ce := &lp.CascadeExhaustedError{Attempts: 4, Last: &lp.PivotBudgetError{Iterations: 1}}
	var pb *lp.PivotBudgetError
	if !errors.As(ce, &pb) || pb.Iterations != 1 {
		t.Errorf("CascadeExhaustedError does not unwrap to its cause")
	}
}

// faultRungZero installs a hook injecting f into every solve's first cascade
// rung and returns the uninstaller.
func faultRungZero(f *lp.Fault) func() {
	lp.SetFaultHook(func() lp.FaultPlan {
		return func(rung int) *lp.Fault {
			if rung == 0 {
				return f
			}
			return nil
		}
	})
	return func() { lp.SetFaultHook(nil) }
}

// TestCascadeHealsCorruptFactor corrupts the basis factorization on the
// first rung for every engine combination and requires the cascade to return
// the exact clean solution — same objective, bit-identical X — with the
// damage visible only in Downgrades and the package counters.
func TestCascadeHealsCorruptFactor(t *testing.T) {
	for _, combo := range engineCombos {
		t.Run(combo.name, func(t *testing.T) {
			p := productionProblem()
			opts := lp.Options{Pricing: combo.opts.Pricing, Basis: combo.opts.Basis, Cascade: true}
			solver := lp.NewSolver()
			clean, err := solver.Solve(p, opts)
			if err != nil || clean.Status != lp.StatusOptimal || clean.Downgrades != 0 {
				t.Fatalf("clean solve: sol=%+v err=%v", clean, err)
			}

			before := lp.StatsSnapshot()
			undo := faultRungZero(&lp.Fault{CorruptFactor: true, CorruptEntry: -1})
			healed, err := solver.Solve(p, opts)
			undo()
			if err != nil || healed.Status != lp.StatusOptimal {
				t.Fatalf("faulted solve: sol=%+v err=%v", healed, err)
			}
			if healed.Downgrades == 0 {
				t.Fatal("corrupted rung was not downgraded")
			}
			for i := range healed.X {
				if healed.X[i] != clean.X[i] {
					t.Fatalf("healed X[%d] = %g, clean %g: recovery changed the answer", i, healed.X[i], clean.X[i])
				}
			}
			after := lp.StatsSnapshot()
			if after.VerifyFailures == before.VerifyFailures {
				t.Error("corruption was not caught by verification")
			}
			if after.CascadeFallbacks == before.CascadeFallbacks {
				t.Error("recovery did not count a cascade fallback")
			}
		})
	}
}

// TestCascadeHealsCorruptObjective corrupts the reported objective on the
// first rung: the certificate's recomputation must catch it every time, and
// the clean re-solve must return the exact answer.
func TestCascadeHealsCorruptObjective(t *testing.T) {
	p := productionProblem()
	solver := lp.NewSolver()
	clean, err := solver.Solve(p, lp.Options{Cascade: true})
	if err != nil {
		t.Fatal(err)
	}

	before := lp.StatsSnapshot()
	undo := faultRungZero(&lp.Fault{CorruptObjective: true})
	healed, err := solver.Solve(p, lp.Options{Cascade: true})
	undo()
	if err != nil || healed.Status != lp.StatusOptimal || healed.Downgrades != 1 {
		t.Fatalf("faulted solve: sol=%+v err=%v, want a once-downgraded optimum", healed, err)
	}
	if healed.Objective != clean.Objective {
		t.Fatalf("healed objective %g, clean %g", healed.Objective, clean.Objective)
	}
	if d := lp.StatsSnapshot().VerifyFailures - before.VerifyFailures; d != 1 {
		t.Fatalf("verify failures rose by %d, want exactly 1", d)
	}
}

// TestCascadeHealsSingularBasis forces every refactorization of the first
// rung singular; the cascade's clean re-solve must return the exact answer.
func TestCascadeHealsSingularBasis(t *testing.T) {
	for _, combo := range engineCombos {
		t.Run(combo.name, func(t *testing.T) {
			p := productionProblem()
			opts := lp.Options{Pricing: combo.opts.Pricing, Basis: combo.opts.Basis, Cascade: true}
			solver := lp.NewSolver()
			clean, err := solver.Solve(p, opts)
			if err != nil {
				t.Fatal(err)
			}

			undo := faultRungZero(&lp.Fault{ForceSingular: true})
			healed, err := solver.Solve(p, opts)
			undo()
			if err != nil || healed.Status != lp.StatusOptimal || healed.Downgrades == 0 {
				t.Fatalf("faulted solve: sol=%+v err=%v, want a downgraded optimum", healed, err)
			}
			if math.Abs(healed.Objective-clean.Objective) > 1e-9 {
				t.Fatalf("healed objective %g, clean %g", healed.Objective, clean.Objective)
			}
		})
	}
}

// TestCascadeHealsPerturbedPivot scales every pivot element on the first
// rung.  Whether the damage surfaces as a failed certificate or a singular
// refactorization, the final answer must be the clean optimum.
func TestCascadeHealsPerturbedPivot(t *testing.T) {
	p := productionProblem()
	undo := faultRungZero(&lp.Fault{PerturbPivot: 0.25})
	defer undo()
	sol, err := lp.Solve(p, lp.Options{Cascade: true})
	if err != nil || sol.Status != lp.StatusOptimal {
		t.Fatalf("sol=%+v err=%v", sol, err)
	}
	if math.Abs(sol.Objective-(-36)) > 1e-6 {
		t.Fatalf("objective %g, want -36", sol.Objective)
	}
}

// TestPivotBudgetWithoutCascade pins the non-cascade contract: an injected
// budget produces a StatusIterLimit solution, not an error — typed failures
// are a cascade feature.
func TestPivotBudgetWithoutCascade(t *testing.T) {
	p := productionProblem()
	undo := faultRungZero(&lp.Fault{PivotBudget: 1})
	defer undo()
	sol, err := lp.Solve(p, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.StatusIterLimit || sol.Iterations != 1 {
		t.Fatalf("status=%v iterations=%d, want iter-limit after 1 pivot", sol.Status, sol.Iterations)
	}
}

// TestCascadeExhaustion arms the budget on every rung: the cascade must fail
// with the typed exhaustion error rather than return a partial answer, and
// the next (clean) solve on the same solver must succeed.
func TestCascadeExhaustion(t *testing.T) {
	p := productionProblem()
	lp.SetFaultHook(func() lp.FaultPlan {
		return func(rung int) *lp.Fault { return &lp.Fault{PivotBudget: 1} }
	})
	solver := lp.NewSolver()
	_, err := solver.Solve(p, lp.Options{Cascade: true})
	lp.SetFaultHook(nil)
	var ce *lp.CascadeExhaustedError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CascadeExhaustedError", err)
	}
	if ce.Attempts != 4 {
		t.Errorf("Attempts = %d, want 4", ce.Attempts)
	}
	sol, err := solver.Solve(p, lp.Options{Cascade: true})
	if err != nil || sol.Status != lp.StatusOptimal {
		t.Fatalf("clean solve after exhaustion: sol=%+v err=%v", sol, err)
	}
}

// effectiveSenses mirrors the solver's sign normalisation: a row with a
// negative RHS is multiplied by -1, flipping its inequality sense.
func effectiveSenses(p *lp.Problem) []lp.Sense {
	senses := make([]lp.Sense, p.NumConstraints())
	for i := range senses {
		c := p.Constraint(i)
		senses[i] = c.Sense
		if c.RHS < 0 {
			switch c.Sense {
			case lp.LE:
				senses[i] = lp.GE
			case lp.GE:
				senses[i] = lp.LE
			}
		}
	}
	return senses
}

// TestHostileWarmStarts is the stale/hostile warm-start property test: over
// the full engine grid and a lattice of random problems, a warm basis that is
// the wrong shape, or singular for the new coefficients, must fall back to a
// cold start silently and match the cold solve exactly.
func TestHostileWarmStarts(t *testing.T) {
	rng := rand.New(rand.NewSource(90210))
	for _, combo := range engineCombos {
		opts := lp.Options{Pricing: combo.opts.Pricing, Basis: combo.opts.Basis}
		solver := lp.NewSolver()
		for trial := 0; trial < 60; trial++ {
			p, _ := randomProblem(rng)
			cold, err := solver.Solve(p, opts)
			if err != nil {
				t.Fatalf("%s trial %d: cold: %v", combo.name, trial, err)
			}

			rows := p.NumConstraints()
			hostile := []*lp.WarmBasis{
				// Wrong shape: one row too many.
				lp.ForgeWarmBasis(rows+1, p.NumVars(), make([]int, rows+1), make([]lp.Sense, rows+1)),
				// Wrong variable count.
				lp.ForgeWarmBasis(rows, p.NumVars()+3, make([]int, rows), effectiveSenses(p)),
				// Right shape, singular for the coefficients: every basis
				// column is structural column 0.
				lp.ForgeWarmBasis(rows, p.NumVars(), make([]int, rows), effectiveSenses(p)),
			}
			for h, b := range hostile {
				warm, err := solver.SolveFrom(p, opts, b)
				if err != nil {
					t.Fatalf("%s trial %d hostile %d: %v", combo.name, trial, h, err)
				}
				if warm.Status != cold.Status {
					t.Fatalf("%s trial %d hostile %d: status %v, cold %v", combo.name, trial, h, warm.Status, cold.Status)
				}
				if rows > 1 && warm.WarmStarted {
					t.Fatalf("%s trial %d hostile %d: claimed to warm start from a hostile basis", combo.name, trial, h)
				}
				if cold.Status == lp.StatusOptimal && math.Abs(warm.Objective-cold.Objective) > 1e-6 {
					t.Fatalf("%s trial %d hostile %d: objective %g, cold %g", combo.name, trial, h, warm.Objective, cold.Objective)
				}
			}
		}
	}
}

// TestDualButNotPrimalFeasibleWarmStart captures the optimal basis of one
// problem and replays it on a same-shaped problem whose RHS moved under it:
// the old basis prices dual feasible but its basic point is infeasible, so
// the solve must reject it and match the cold answer.
func TestDualButNotPrimalFeasibleWarmStart(t *testing.T) {
	for _, combo := range engineCombos {
		t.Run(combo.name, func(t *testing.T) {
			opts := lp.Options{Pricing: combo.opts.Pricing, Basis: combo.opts.Basis}
			donorOpts := opts
			donorOpts.CaptureBasis = true
			solver := lp.NewSolver()
			donor, err := solver.Solve(productionProblem(), donorOpts)
			if err != nil || donor.Basis == nil {
				t.Fatalf("donor: sol=%+v err=%v", donor, err)
			}

			// Same coefficients and senses, third RHS tightened from 18 to 6:
			// replaying the donor basis {x, y, slack0} solves to y = 6,
			// x = (6 - 12)/3 = -2 — a negative basic value, so the snapshot is
			// dual-consistent but primal infeasible here.
			tight := lp.NewProblem(2)
			tight.SetObjective(0, -3)
			tight.SetObjective(1, -5)
			tight.AddConstraint([]lp.Coef{{Var: 0, Value: 1}}, lp.LE, 4)
			tight.AddConstraint([]lp.Coef{{Var: 1, Value: 2}}, lp.LE, 12)
			tight.AddConstraint([]lp.Coef{{Var: 0, Value: 3}, {Var: 1, Value: 2}}, lp.LE, 6)

			cold, err := solver.Solve(tight, opts)
			if err != nil || cold.Status != lp.StatusOptimal {
				t.Fatalf("cold: sol=%+v err=%v", cold, err)
			}
			warm, err := solver.SolveFrom(tight, opts, donor.Basis)
			if err != nil {
				t.Fatal(err)
			}
			if warm.WarmStarted {
				t.Fatal("primal-infeasible donor basis was accepted")
			}
			if warm.Status != cold.Status || math.Abs(warm.Objective-cold.Objective) > 1e-9 {
				t.Fatalf("warm %v/%g, cold %v/%g", warm.Status, warm.Objective, cold.Status, cold.Objective)
			}
			if verr := lp.Verify(tight, warm); verr != nil {
				t.Fatalf("fallback solution failed verification: %v", verr)
			}
		})
	}
}

// BenchmarkRevisedSolveVerifiedE7Size measures the cascade-wrapped solve on
// the E7-sized model: a clean solve's cascade cost is one Verify walk on top
// of the plain revised solve (compare BenchmarkRevisedSolveE7Size), and the
// allocation guard bounds it like every other solve path.
func BenchmarkRevisedSolveVerifiedE7Size(b *testing.B) {
	benchSolve(b, lp.Options{Method: lp.MethodRevised, Cascade: true})
}
