package lp

import (
	"fmt"
	"math"
)

// Status is the outcome of a solve.
type Status int

// Solve outcomes.
const (
	// StatusOptimal means an optimal basic feasible solution was found.
	StatusOptimal Status = iota
	// StatusInfeasible means the constraints have no solution.
	StatusInfeasible
	// StatusUnbounded means the objective is unbounded below.
	StatusUnbounded
	// StatusIterLimit means the iteration budget was exhausted.
	StatusIterLimit
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusIterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Options tunes the solver.
type Options struct {
	// MaxIterations caps the total number of simplex pivots (0 means an
	// automatic limit based on the problem size).
	MaxIterations int
	// Tolerance is the feasibility/optimality tolerance (0 means 1e-9).
	Tolerance float64
}

// Solution is the result of a solve.
type Solution struct {
	// Status reports how the solve ended.
	Status Status
	// X is the value of every problem variable (valid when Status is
	// StatusOptimal).
	X []float64
	// Objective is the objective value of X.
	Objective float64
	// Iterations is the number of simplex pivots performed.
	Iterations int
}

const defaultTolerance = 1e-9

// Solve runs the two-phase primal simplex method on the problem.
func Solve(p *Problem, opts Options) (*Solution, error) {
	tol := opts.Tolerance
	if tol <= 0 {
		tol = defaultTolerance
	}
	t := newTableau(p, tol)
	maxIter := opts.MaxIterations
	if maxIter <= 0 {
		maxIter = 200 * (t.cols + t.rows)
		if maxIter < 20000 {
			maxIter = 20000
		}
	}

	// Phase one: minimise the sum of artificial variables.
	if t.numArtificial > 0 {
		status := t.optimize(t.phase1Costs(), maxIter)
		if status == StatusIterLimit {
			return &Solution{Status: StatusIterLimit, Iterations: t.iterations}, nil
		}
		if t.objectiveValue(t.phase1Costs()) > tol*float64(1+t.rows) {
			return &Solution{Status: StatusInfeasible, Iterations: t.iterations}, nil
		}
		t.driveOutArtificials()
	}

	// Phase two: minimise the real objective.
	status := t.optimize(t.phase2Costs(), maxIter)
	switch status {
	case StatusIterLimit, StatusUnbounded:
		return &Solution{Status: status, Iterations: t.iterations}, nil
	}
	x := t.extract()
	return &Solution{
		Status:     StatusOptimal,
		X:          x,
		Objective:  p.Value(x),
		Iterations: t.iterations,
	}, nil
}

// tableau is the dense simplex tableau.  Columns are: the problem variables,
// then slack/surplus variables, then artificial variables; the final column
// is the right-hand side.
type tableau struct {
	p   *Problem
	tol float64

	rows int // number of constraints
	cols int // number of structural columns (vars + slacks + artificials)

	numVars       int
	numSlack      int
	numArtificial int

	a     [][]float64 // rows x (cols+1); a[i][cols] is the RHS
	basis []int       // basis[i] is the column basic in row i

	iterations int
	artCol     map[int]bool // columns that are artificial
}

func newTableau(p *Problem, tol float64) *tableau {
	rows := p.NumConstraints()
	t := &tableau{
		p:       p,
		tol:     tol,
		rows:    rows,
		numVars: p.NumVars(),
		artCol:  make(map[int]bool),
	}
	// Count slacks and artificials.
	type rowPlan struct {
		slackSign  float64 // +1 for LE, -1 for GE, 0 for EQ (after RHS sign fix)
		artificial bool
	}
	plans := make([]rowPlan, rows)
	for i := 0; i < rows; i++ {
		c := p.Constraint(i)
		sense := c.Sense
		flip := c.RHS < 0
		if flip {
			// Multiply the row by -1 so the RHS becomes non-negative.
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		switch sense {
		case LE:
			plans[i] = rowPlan{slackSign: 1, artificial: false}
			t.numSlack++
		case GE:
			plans[i] = rowPlan{slackSign: -1, artificial: true}
			t.numSlack++
			t.numArtificial++
		case EQ:
			plans[i] = rowPlan{slackSign: 0, artificial: true}
			t.numArtificial++
		}
	}
	t.cols = t.numVars + t.numSlack + t.numArtificial
	t.a = make([][]float64, rows)
	t.basis = make([]int, rows)

	slackIdx := t.numVars
	artIdx := t.numVars + t.numSlack
	for i := 0; i < rows; i++ {
		row := make([]float64, t.cols+1)
		c := p.Constraint(i)
		sign := 1.0
		if c.RHS < 0 {
			sign = -1.0
		}
		for _, co := range c.Coeffs {
			row[co.Var] += sign * co.Value
		}
		row[t.cols] = sign * c.RHS
		if plans[i].slackSign != 0 {
			row[slackIdx] = plans[i].slackSign
			if plans[i].slackSign > 0 && !plans[i].artificial {
				t.basis[i] = slackIdx
			}
			slackIdx++
		}
		if plans[i].artificial {
			row[artIdx] = 1
			t.basis[i] = artIdx
			t.artCol[artIdx] = true
			artIdx++
		}
		t.a[i] = row
	}
	return t
}

// phase1Costs returns the phase-one cost vector: 1 for artificial columns.
func (t *tableau) phase1Costs() []float64 {
	costs := make([]float64, t.cols)
	for c := range t.artCol {
		costs[c] = 1
	}
	return costs
}

// phase2Costs returns the real objective over structural columns (artificial
// columns get a prohibitively large cost so they stay out of the basis).
func (t *tableau) phase2Costs() []float64 {
	costs := make([]float64, t.cols)
	for v := 0; v < t.numVars; v++ {
		costs[v] = t.p.Objective(v)
	}
	for c := range t.artCol {
		costs[c] = 0 // artificials are fixed at zero after phase one
	}
	return costs
}

// objectiveValue evaluates the given cost vector at the current basic
// solution.
func (t *tableau) objectiveValue(costs []float64) float64 {
	total := 0.0
	for i := 0; i < t.rows; i++ {
		total += costs[t.basis[i]] * t.a[i][t.cols]
	}
	return total
}

// reducedCosts computes the reduced cost of every column for the given cost
// vector.
func (t *tableau) reducedCosts(costs []float64) []float64 {
	// y = c_B B^{-1} is implicit: because the tableau rows are kept in
	// B^{-1}A form, the reduced cost of column j is c_j - sum_i c_{B(i)} a_ij.
	rc := make([]float64, t.cols)
	copy(rc, costs)
	for i := 0; i < t.rows; i++ {
		cb := costs[t.basis[i]]
		if cb == 0 {
			continue
		}
		row := t.a[i]
		for j := 0; j < t.cols; j++ {
			if row[j] != 0 {
				rc[j] -= cb * row[j]
			}
		}
	}
	return rc
}

// optimize runs simplex pivots for the given cost vector until optimality,
// unboundedness or the iteration limit.  It uses Dantzig pricing and switches
// to Bland's rule after a run of degenerate pivots to guarantee termination.
func (t *tableau) optimize(costs []float64, maxIter int) Status {
	degenerate := 0
	const degenerateSwitch = 50
	lastObj := t.objectiveValue(costs)
	for {
		if t.iterations >= maxIter {
			return StatusIterLimit
		}
		rc := t.reducedCosts(costs)
		useBland := degenerate >= degenerateSwitch
		enter := -1
		if useBland {
			for j := 0; j < t.cols; j++ {
				if rc[j] < -t.tol && !t.blockedColumn(costs, j) {
					enter = j
					break
				}
			}
		} else {
			best := -t.tol
			for j := 0; j < t.cols; j++ {
				if rc[j] < best && !t.blockedColumn(costs, j) {
					best = rc[j]
					enter = j
				}
			}
		}
		if enter < 0 {
			return StatusOptimal
		}
		// Ratio test.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.rows; i++ {
			aij := t.a[i][enter]
			if aij <= t.tol {
				continue
			}
			ratio := t.a[i][t.cols] / aij
			if ratio < bestRatio-t.tol || (math.Abs(ratio-bestRatio) <= t.tol && (leave < 0 || t.basis[i] < t.basis[leave])) {
				bestRatio = ratio
				leave = i
			}
		}
		if leave < 0 {
			return StatusUnbounded
		}
		t.pivot(leave, enter)
		t.iterations++
		obj := t.objectiveValue(costs)
		if obj >= lastObj-t.tol {
			degenerate++
		} else {
			degenerate = 0
		}
		lastObj = obj
	}
}

// blockedColumn reports whether column j must not enter the basis: artificial
// columns are blocked in phase two.
func (t *tableau) blockedColumn(costs []float64, j int) bool {
	if !t.artCol[j] {
		return false
	}
	// During phase one artificials carry cost 1; in phase two they carry cost
	// 0 and are blocked.
	return costs[j] == 0
}

// pivot performs a Gauss-Jordan pivot on (row, col).
func (t *tableau) pivot(row, col int) {
	piv := t.a[row][col]
	r := t.a[row]
	inv := 1.0 / piv
	for j := 0; j <= t.cols; j++ {
		r[j] *= inv
	}
	for i := 0; i < t.rows; i++ {
		if i == row {
			continue
		}
		factor := t.a[i][col]
		if factor == 0 {
			continue
		}
		ri := t.a[i]
		for j := 0; j <= t.cols; j++ {
			ri[j] -= factor * r[j]
		}
		ri[col] = 0
	}
	t.basis[row] = col
}

// driveOutArtificials removes artificial variables from the basis after phase
// one, pivoting on any usable structural column, or dropping the row when it
// has become redundant.
func (t *tableau) driveOutArtificials() {
	for i := 0; i < t.rows; i++ {
		if !t.artCol[t.basis[i]] {
			continue
		}
		pivoted := false
		for j := 0; j < t.numVars+t.numSlack; j++ {
			if math.Abs(t.a[i][j]) > t.tol {
				t.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// The row is all zeros over structural columns: the constraint is
			// redundant; keep the artificial basic at value zero.  Zero the
			// RHS to guard against accumulated round-off.
			t.a[i][t.cols] = 0
		}
	}
}

// extract reads the current basic solution restricted to problem variables.
func (t *tableau) extract() []float64 {
	x := make([]float64, t.numVars)
	for i := 0; i < t.rows; i++ {
		b := t.basis[i]
		if b < t.numVars {
			v := t.a[i][t.cols]
			if v < 0 && v > -t.tol {
				v = 0
			}
			x[b] = v
		}
	}
	return x
}
