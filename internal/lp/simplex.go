package lp

import (
	"fmt"
	"math"
	"sync"
)

// Status is the outcome of a solve.
type Status int

// Solve outcomes.
const (
	// StatusOptimal means an optimal basic feasible solution was found.
	StatusOptimal Status = iota
	// StatusInfeasible means the constraints have no solution.
	StatusInfeasible
	// StatusUnbounded means the objective is unbounded below.
	StatusUnbounded
	// StatusIterLimit means the iteration budget was exhausted.
	StatusIterLimit
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusIterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Options tunes the solver.
type Options struct {
	// MaxIterations caps the total number of simplex pivots (0 means an
	// automatic limit based on the problem size).
	MaxIterations int
	// Tolerance is the feasibility/optimality tolerance (0 means 1e-9).
	Tolerance float64
}

// Solution is the result of a solve.
type Solution struct {
	// Status reports how the solve ended.
	Status Status
	// X is the value of every problem variable (valid when Status is
	// StatusOptimal).
	X []float64
	// Objective is the objective value of X.
	Objective float64
	// Iterations is the total number of simplex pivots performed (both
	// phases).
	Iterations int
	// Phase1Iterations is the number of pivots spent finding a basic
	// feasible solution.
	Phase1Iterations int
	// PricingPasses is the number of full reduced-cost sweeps over all
	// columns; partial pricing keeps this far below Iterations on large
	// programs.
	PricingPasses int
	// TableauAllocs is the number of backing-buffer allocations this solve
	// performed; 0 means the Solver reused buffers from an earlier solve.
	TableauAllocs int
}

const defaultTolerance = 1e-9

// solverPool recycles Solvers (and so their tableau buffers) across
// package-level Solve calls, which is what makes repeated solves in the
// experiment sweeps allocation-free in steady state.
var solverPool = sync.Pool{New: func() interface{} { return NewSolver() }}

// Solve runs the two-phase primal simplex method on the problem.  It draws a
// reusable Solver from an internal pool; callers with a long sequence of
// solves can hold their own Solver instead.
func Solve(p *Problem, opts Options) (*Solution, error) {
	s := solverPool.Get().(*Solver)
	sol, err := s.Solve(p, opts)
	solverPool.Put(s)
	return sol, err
}

// Solver is a reusable two-phase primal simplex solver.  The tableau is one
// contiguous float64 slice in row-major order (row stride cols+1, the last
// column holding the right-hand side); columns are the problem variables,
// then slack/surplus variables, then artificial variables, so artificial
// membership is the index range [artLo, cols).  All working buffers are kept
// between solves, so a Solver that has seen a problem of a given size solves
// subsequent problems of similar size without allocating.
//
// A Solver is not safe for concurrent use; use one per goroutine (the
// package-level Solve does this via an internal pool).
type Solver struct {
	p   *Problem // problem being solved (valid during Solve only)
	tol float64

	rows   int // number of constraints
	cols   int // structural columns (vars + slacks + artificials)
	stride int // cols + 1; the extra column is the RHS

	numVars  int
	numSlack int
	numArt   int
	artLo    int // first artificial column; artificials are [artLo, cols)

	a     []float64 // rows*stride backing array
	basis []int     // basis[i] is the column basic in row i
	costs []float64 // cost vector of the current phase
	rc    []float64 // reduced-cost scratch for full pricing passes
	cand  []int     // candidate columns from the last full pricing pass
	plans []Sense   // per-row effective sense after RHS sign normalisation

	phase int // 1 or 2; artificial columns may enter only in phase 1

	iterations  int
	phase1Iters int
	fullPasses  int
	allocs      int
}

// NewSolver returns an empty Solver; buffers are allocated lazily on first
// use and reused afterwards.
func NewSolver() *Solver { return &Solver{} }

// candListSize bounds the candidate list kept by partial pricing: a full
// pricing pass remembers up to this many attractive columns, and subsequent
// pivots price only those until the list runs dry.
const candListSize = 24

// Solve solves the problem, reusing the solver's buffers.
func (s *Solver) Solve(p *Problem, opts Options) (*Solution, error) {
	tol := opts.Tolerance
	if tol <= 0 {
		tol = defaultTolerance
	}
	s.p = p
	defer func() { s.p = nil }() // do not retain the problem after the solve
	s.tol = tol
	s.iterations = 0
	s.phase1Iters = 0
	s.fullPasses = 0
	s.allocs = 0
	s.load(p)

	maxIter := opts.MaxIterations
	if maxIter <= 0 {
		maxIter = 200 * (s.cols + s.rows)
		if maxIter < 20000 {
			maxIter = 20000
		}
	}

	// Phase one: minimise the sum of artificial variables.
	if s.numArt > 0 {
		s.setPhase(1)
		status := s.optimize(maxIter)
		s.phase1Iters = s.iterations
		if status == StatusIterLimit {
			return s.solution(StatusIterLimit, p), nil
		}
		if s.objectiveValue() > tol*float64(1+s.rows) {
			return s.solution(StatusInfeasible, p), nil
		}
		s.driveOutArtificials()
	}

	// Phase two: minimise the real objective.
	s.setPhase(2)
	status := s.optimize(maxIter)
	switch status {
	case StatusIterLimit, StatusUnbounded:
		return s.solution(status, p), nil
	}
	return s.solution(StatusOptimal, p), nil
}

// grabFloats returns buf resized to n, reallocating only when capacity is
// short; fresh content is NOT zeroed.
func (s *Solver) grabFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		s.allocs++
		return make([]float64, n)
	}
	return buf[:n]
}

func (s *Solver) grabInts(buf []int, n int) []int {
	if cap(buf) < n {
		s.allocs++
		return make([]int, n)
	}
	return buf[:n]
}

// effectiveSense is the sense of a constraint after the row is multiplied
// by -1 when its RHS is negative (so the tableau RHS is non-negative).
func effectiveSense(c Constraint) Sense {
	if c.RHS < 0 {
		switch c.Sense {
		case LE:
			return GE
		case GE:
			return LE
		}
	}
	return c.Sense
}

// load builds the flat tableau from the problem's sparse constraints.
func (s *Solver) load(p *Problem) {
	rows := p.NumConstraints()
	s.rows = rows
	s.numVars = p.NumVars()
	s.numSlack = 0
	s.numArt = 0
	if cap(s.plans) < rows {
		s.allocs++
		s.plans = make([]Sense, rows)
	}
	s.plans = s.plans[:rows]
	for i := 0; i < rows; i++ {
		sense := effectiveSense(p.Constraint(i))
		s.plans[i] = sense
		switch sense {
		case LE:
			s.numSlack++
		case GE:
			s.numSlack++
			s.numArt++
		case EQ:
			s.numArt++
		}
	}
	s.cols = s.numVars + s.numSlack + s.numArt
	s.stride = s.cols + 1
	s.artLo = s.numVars + s.numSlack

	s.a = s.grabFloats(s.a, rows*s.stride)
	clear(s.a)
	s.basis = s.grabInts(s.basis, rows)
	s.costs = s.grabFloats(s.costs, s.cols)
	s.rc = s.grabFloats(s.rc, s.cols)
	if s.cand == nil {
		s.allocs++
		s.cand = make([]int, 0, candListSize)
	}
	s.cand = s.cand[:0]

	slackIdx := s.numVars
	artIdx := s.artLo
	for i := 0; i < rows; i++ {
		c := p.Constraint(i)
		sense := s.plans[i]
		sign := 1.0
		if c.RHS < 0 {
			sign = -1.0
		}
		row := s.a[i*s.stride : i*s.stride+s.stride]
		for _, co := range c.Coeffs {
			row[co.Var] += sign * co.Value
		}
		row[s.cols] = sign * c.RHS
		switch sense {
		case LE:
			row[slackIdx] = 1
			s.basis[i] = slackIdx
			slackIdx++
		case GE:
			row[slackIdx] = -1
			slackIdx++
			row[artIdx] = 1
			s.basis[i] = artIdx
			artIdx++
		case EQ:
			row[artIdx] = 1
			s.basis[i] = artIdx
			artIdx++
		}
	}
}

// setPhase installs the cost vector of the given phase: phase one charges 1
// per artificial variable, phase two charges the problem objective on the
// structural variables (artificial columns are excluded from pricing
// entirely in phase two, so their cost is irrelevant).
func (s *Solver) setPhase(phase int) {
	s.phase = phase
	clear(s.costs)
	if phase == 1 {
		for j := s.artLo; j < s.cols; j++ {
			s.costs[j] = 1
		}
		return
	}
	for v := 0; v < s.numVars; v++ {
		s.costs[v] = s.p.Objective(v)
	}
}

// objectiveValue evaluates the current phase's cost vector at the current
// basic solution.
func (s *Solver) objectiveValue() float64 {
	total := 0.0
	for i := 0; i < s.rows; i++ {
		cb := s.costs[s.basis[i]]
		if cb != 0 {
			total += cb * s.a[i*s.stride+s.cols]
		}
	}
	return total
}

// priceLimit is the exclusive upper bound of columns eligible to enter the
// basis: artificial columns may enter only during phase one.
func (s *Solver) priceLimit() int {
	if s.phase == 1 {
		return s.cols
	}
	return s.artLo
}

// reducedCost computes the reduced cost of a single column against the
// current basis.
func (s *Solver) reducedCost(j int) float64 {
	r := s.costs[j]
	for i := 0; i < s.rows; i++ {
		cb := s.costs[s.basis[i]]
		if cb != 0 {
			r -= cb * s.a[i*s.stride+j]
		}
	}
	return r
}

// fullPrice runs one cache-friendly row-wise sweep computing the reduced
// cost of every column into s.rc.
func (s *Solver) fullPrice() {
	s.fullPasses++
	rc := s.rc
	copy(rc, s.costs)
	for i := 0; i < s.rows; i++ {
		cb := s.costs[s.basis[i]]
		if cb == 0 {
			continue
		}
		row := s.a[i*s.stride : i*s.stride+s.cols]
		for j, v := range row {
			if v != 0 {
				rc[j] -= cb * v
			}
		}
	}
}

// rebuildCandidates refreshes the candidate list from a full pricing pass
// and returns the most attractive eligible column, or -1 at optimality.
func (s *Solver) rebuildCandidates() int {
	s.fullPrice()
	limit := s.priceLimit()
	s.cand = s.cand[:0]
	best, bestRC := -1, -s.tol
	// Keep the candListSize most negative reduced costs.  worst tracks the
	// largest (least attractive) reduced cost currently in the list so most
	// columns are rejected with a single comparison.
	worst := math.Inf(-1)
	for j := 0; j < limit; j++ {
		r := s.rc[j]
		if r >= -s.tol {
			continue
		}
		if r < bestRC {
			bestRC, best = r, j
		}
		if len(s.cand) < candListSize {
			s.cand = append(s.cand, j)
			if r > worst {
				worst = r
			}
			continue
		}
		if r >= worst {
			continue
		}
		// Replace the current worst candidate; the list's new maximum is
		// the larger of its old runner-up and the newcomer.
		wi, wr, runnerUp := 0, math.Inf(-1), math.Inf(-1)
		for k, cj := range s.cand {
			v := s.rc[cj]
			if v > wr {
				runnerUp = wr
				wr, wi = v, k
			} else if v > runnerUp {
				runnerUp = v
			}
		}
		s.cand[wi] = j
		worst = runnerUp
		if r > worst {
			worst = r
		}
	}
	return best
}

// priceDantzig returns the entering column under Dantzig pricing with a
// candidate list: surviving candidates from the last full pass are re-priced
// exactly (a handful of columns), and only when none remains attractive does
// the solver pay for a full pricing sweep.
func (s *Solver) priceDantzig() int {
	best, bestRC := -1, -s.tol
	w := 0
	for _, j := range s.cand {
		r := s.reducedCost(j)
		if r < -s.tol {
			s.cand[w] = j
			w++
			if r < bestRC {
				bestRC, best = r, j
			}
		}
	}
	s.cand = s.cand[:w]
	if best >= 0 {
		return best
	}
	return s.rebuildCandidates()
}

// priceBland returns the smallest-index eligible column with negative
// reduced cost (Bland's anti-cycling rule), or -1 at optimality.
func (s *Solver) priceBland() int {
	s.fullPrice()
	limit := s.priceLimit()
	for j := 0; j < limit; j++ {
		if s.rc[j] < -s.tol {
			return j
		}
	}
	return -1
}

// optimize runs simplex pivots for the current phase until optimality,
// unboundedness or the iteration limit.  It uses Dantzig pricing over a
// candidate list and switches to Bland's rule after a run of degenerate
// pivots to guarantee termination.
func (s *Solver) optimize(maxIter int) Status {
	degenerate := 0
	const degenerateSwitch = 50
	lastObj := s.objectiveValue()
	s.cand = s.cand[:0]
	for {
		if s.iterations >= maxIter {
			return StatusIterLimit
		}
		var enter int
		if degenerate >= degenerateSwitch {
			enter = s.priceBland()
		} else {
			enter = s.priceDantzig()
		}
		if enter < 0 {
			return StatusOptimal
		}
		leave := s.ratioTest(enter)
		if leave < 0 {
			return StatusUnbounded
		}
		s.pivot(leave, enter)
		s.iterations++
		obj := s.objectiveValue()
		if obj >= lastObj-s.tol {
			degenerate++
		} else {
			degenerate = 0
		}
		lastObj = obj
	}
}

// ratioTest picks the leaving row for the entering column, breaking ties
// towards the smallest basis index (lexicographic anti-cycling bias).
func (s *Solver) ratioTest(enter int) int {
	leave := -1
	bestRatio := math.Inf(1)
	for i := 0; i < s.rows; i++ {
		aij := s.a[i*s.stride+enter]
		if aij <= s.tol {
			continue
		}
		ratio := s.a[i*s.stride+s.cols] / aij
		if ratio < bestRatio-s.tol ||
			(math.Abs(ratio-bestRatio) <= s.tol && (leave < 0 || s.basis[i] < s.basis[leave])) {
			bestRatio = ratio
			leave = i
		}
	}
	return leave
}

// pivot performs a Gauss-Jordan pivot on (row, col) over the flat tableau.
func (s *Solver) pivot(row, col int) {
	stride := s.stride
	r := s.a[row*stride : row*stride+stride]
	inv := 1.0 / r[col]
	for j := range r {
		r[j] *= inv
	}
	for i := 0; i < s.rows; i++ {
		if i == row {
			continue
		}
		ri := s.a[i*stride : i*stride+stride]
		factor := ri[col]
		if factor == 0 {
			continue
		}
		for j, v := range r {
			if v != 0 {
				ri[j] -= factor * v
			}
		}
		ri[col] = 0
	}
	s.basis[row] = col
}

// driveOutArtificials removes artificial variables from the basis after
// phase one, pivoting on any usable structural column, or neutralising the
// row when it has become redundant.
func (s *Solver) driveOutArtificials() {
	for i := 0; i < s.rows; i++ {
		if s.basis[i] < s.artLo {
			continue
		}
		pivoted := false
		row := s.a[i*s.stride : i*s.stride+s.artLo]
		for j, v := range row {
			if math.Abs(v) > s.tol {
				s.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// The row is all zeros over structural columns: the constraint
			// is redundant; keep the artificial basic at value zero.  Zero
			// the RHS to guard against accumulated round-off.
			s.a[i*s.stride+s.cols] = 0
		}
	}
}

// extract reads the current basic solution restricted to problem variables.
func (s *Solver) extract() []float64 {
	x := make([]float64, s.numVars)
	for i := 0; i < s.rows; i++ {
		b := s.basis[i]
		if b < s.numVars {
			v := s.a[i*s.stride+s.cols]
			if v < 0 && v > -s.tol {
				v = 0
			}
			x[b] = v
		}
	}
	return x
}

// solution assembles the Solution for the given terminal status.
func (s *Solver) solution(status Status, p *Problem) *Solution {
	sol := &Solution{
		Status:           status,
		Iterations:       s.iterations,
		Phase1Iterations: s.phase1Iters,
		PricingPasses:    s.fullPasses,
		TableauAllocs:    s.allocs,
	}
	if status == StatusOptimal {
		sol.X = s.extract()
		sol.Objective = p.Value(sol.X)
	}
	return sol
}
