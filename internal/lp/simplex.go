package lp

import (
	"fmt"
	"math"
	"sync"
)

// Status is the outcome of a solve.
type Status int

// Solve outcomes.
const (
	// StatusOptimal means an optimal basic feasible solution was found.
	StatusOptimal Status = iota
	// StatusInfeasible means the constraints have no solution.
	StatusInfeasible
	// StatusUnbounded means the objective is unbounded below.
	StatusUnbounded
	// StatusIterLimit means the iteration budget was exhausted.
	StatusIterLimit
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusIterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Method selects the simplex implementation.
type Method int

// Solve methods.
const (
	// MethodRevised (the default) is the revised simplex: the constraint
	// matrix stays in a read-only sparse column form, the basis inverse is a
	// product-form eta file with periodic refactorization, and every pivot
	// costs time proportional to the nonzeros it touches.
	MethodRevised Method = iota
	// MethodFlat is the PR-1 flat-tableau path with dense O(rows x cols)
	// Gauss-Jordan pivots, kept as a reference and numerical fallback.
	MethodFlat
)

// String names the method.
func (m Method) String() string {
	switch m {
	case MethodRevised:
		return "revised"
	case MethodFlat:
		return "flat"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// ParseMethod resolves a method name ("revised" or "flat") as used by command
// line flags.
func ParseMethod(name string) (Method, error) {
	switch name {
	case "revised":
		return MethodRevised, nil
	case "flat":
		return MethodFlat, nil
	default:
		return 0, fmt.Errorf("lp: unknown solve method %q (want revised or flat)", name)
	}
}

// BasisMethod selects how the revised simplex represents the basis inverse.
type BasisMethod int

// Basis representations.
const (
	// BasisLU (the default) factorizes the basis as a sparse LU with
	// Markowitz pivoting and solves BTRAN/FTRAN against the triangular
	// factors, appending product-form update etas between refactorizations
	// (see lu.go).
	BasisLU BasisMethod = iota
	// BasisEta is the PR-2 representation — a pure product-form eta file
	// rebuilt from scratch at every refactorization — kept as the reference
	// implementation.
	BasisEta
)

// String names the basis representation.
func (b BasisMethod) String() string {
	switch b {
	case BasisLU:
		return "lu"
	case BasisEta:
		return "eta"
	default:
		return fmt.Sprintf("basis(%d)", int(b))
	}
}

// ParseBasis resolves a basis-representation name ("lu" or "eta") as used by
// command line flags.
func ParseBasis(name string) (BasisMethod, error) {
	switch name {
	case "lu":
		return BasisLU, nil
	case "eta":
		return BasisEta, nil
	default:
		return 0, fmt.Errorf("lp: unknown basis representation %q (want lu or eta)", name)
	}
}

// UpdateMethod selects how the BasisLU representation absorbs a pivot
// between refactorizations.
type UpdateMethod int

// Basis update methods.
const (
	// UpdateEta (the default) appends the FTRAN'd entering column as a
	// product-form eta in U-space — the untriangularised Forrest–Tomlin
	// variant: the LU factors stay frozen and the eta file grows by one
	// column per pivot until the next refactorization.
	UpdateEta UpdateMethod = iota
	// UpdateFT is the true Forrest–Tomlin row-spike update: each pivot
	// replaces one column of U by the (partially FTRAN'd) entering column,
	// eliminates the resulting row spike into a row-eta file, and cyclically
	// permutes U back to triangular form.  The U factor itself evolves, so
	// FTRAN/BTRAN keep solving against genuinely triangular data instead of
	// an ever-growing product file.  Ignored by BasisEta and MethodFlat.
	UpdateFT
)

// String names the update method.
func (u UpdateMethod) String() string {
	switch u {
	case UpdateEta:
		return "eta"
	case UpdateFT:
		return "ft"
	default:
		return fmt.Sprintf("update(%d)", int(u))
	}
}

// ParseUpdate resolves an update-method name ("eta" or "ft") as used by
// command line flags.
func ParseUpdate(name string) (UpdateMethod, error) {
	switch name {
	case "eta":
		return UpdateEta, nil
	case "ft":
		return UpdateFT, nil
	default:
		return 0, fmt.Errorf("lp: unknown basis update method %q (want eta or ft)", name)
	}
}

// Options tunes the solver.
type Options struct {
	// MaxIterations caps the total number of simplex pivots (0 means an
	// automatic limit based on the problem size).
	MaxIterations int
	// Tolerance is the feasibility/optimality tolerance (0 means 1e-9).
	Tolerance float64
	// Method selects the simplex implementation; the zero value is
	// MethodRevised.
	Method Method
	// RefactorEvery bounds the update-eta growth of the revised method: after
	// this many pivots since the last refactorization the basis inverse is
	// rebuilt from scratch (0 means an automatic threshold based on the row
	// count).  Ignored by MethodFlat.
	RefactorEvery int
	// Pricing selects the entering-column rule of the revised method; the
	// zero value is PricingSteepestEdge.  Ignored by MethodFlat (which always
	// prices with Dantzig's rule).
	Pricing Pricing
	// Basis selects the basis-inverse representation of the revised method;
	// the zero value is BasisLU.  Ignored by MethodFlat.
	Basis BasisMethod
	// WarmStart lets the revised method start from the optimal basis of the
	// Solver's previous solve whenever that basis transfers to this problem
	// (same shape, nonsingular, primal feasible), falling back to the
	// ordinary phase-1 cold start otherwise.  Ignored by MethodFlat.
	WarmStart bool
	// CaptureBasis asks an optimal revised solve to snapshot its final basis
	// into Solution.Basis, for replay through Solver.SolveFrom.
	CaptureBasis bool
	// Dual widens the warm-start acceptance of the revised method: a basis
	// snapshot that no longer matches the problem's exact shape — because
	// rows and columns were appended (Problem/Model extension) or the RHS
	// moved — is transplanted anyway when the old rows form a prefix of the
	// new ones, and a dual simplex phase re-optimizes from it before the
	// ordinary primal clean-up runs.  Any basis the dual phase cannot certify
	// falls back to the cold primal start, so (like WarmStart) Dual is always
	// safe to request.  Ignored by MethodFlat.
	Dual bool
	// Update selects how the BasisLU representation absorbs pivots between
	// refactorizations; the zero value is UpdateEta.  Ignored by BasisEta and
	// MethodFlat.
	Update UpdateMethod
	// Cascade opts the revised method into the self-healing solve ladder:
	// every Optimal result is checked against the independent certificate
	// (Verify), and a verification failure, singular refactorization or
	// exhausted pivot budget re-solves down the engine ladder — same engines
	// cold, then Dantzig pricing over a pure eta file, then the flat
	// reference path — instead of being returned.  See cascade.go.  Ignored
	// by MethodFlat.
	Cascade bool
}

// Solution is the result of a solve.
type Solution struct {
	// Status reports how the solve ended.
	Status Status
	// X is the value of every problem variable (valid when Status is
	// StatusOptimal).
	X []float64
	// Objective is the objective value of X.
	Objective float64
	// Iterations is the total number of simplex pivots performed (both
	// phases).
	Iterations int
	// Phase1Iterations is the number of pivots spent finding a basic
	// feasible solution.
	Phase1Iterations int
	// PricingPasses is the number of full reduced-cost sweeps over all
	// columns; partial pricing keeps this far below Iterations on large
	// programs.
	PricingPasses int
	// TableauAllocs is the number of backing-buffer allocations this solve
	// performed; 0 means the Solver reused buffers from an earlier solve.
	TableauAllocs int
	// Refactorizations is the number of times the revised method rebuilt the
	// basis inverse from scratch (always 0 for MethodFlat).
	Refactorizations int
	// EtaColumns is the total number of eta columns appended to the basis
	// inverse by the revised method — update etas plus, on the BasisEta
	// path, the columns written during refactorizations (always 0 for
	// MethodFlat).
	EtaColumns int
	// LUFills is the total fill-in (entries beyond the basis columns' own
	// nonzeros) created by the BasisLU factorizations of this solve.
	LUFills int
	// NumericRefactors counts the BasisLU refactorizations of this solve that
	// found a recorded symbolic skeleton for their (problem pattern, basis)
	// structure and attempted a numeric-only replay (see lusym.go).
	NumericRefactors int
	// SymbolicReuses counts the attempted replays whose value-dependent
	// decisions all verified, so the Markowitz analysis was skipped entirely.
	// NumericRefactors - SymbolicReuses replays fell back to a full
	// factorization.
	SymbolicReuses int
	// PricingRule is the entering-column rule the solve priced with.
	PricingRule Pricing
	// WarmStarted reports that the solve skipped phase one by starting from
	// a transferred prior basis (see Options.WarmStart, Solver.SolveFrom).
	WarmStarted bool
	// DualIterations is the number of dual simplex pivots performed
	// (Options.Dual only; included in Iterations).
	DualIterations int
	// FTUpdates is the number of Forrest–Tomlin row-spike updates absorbed
	// into the U factor (Options.Update == UpdateFT only).
	FTUpdates int
	// Basis is the optimal basis snapshot requested by Options.CaptureBasis
	// (nil otherwise or when the solve did not end optimal).
	Basis *WarmBasis
	// Downgrades is the number of cascade rungs abandoned before this
	// solution was produced (always 0 without Options.Cascade; 0 under the
	// cascade means the configured engines' own result verified).
	Downgrades int

	// duals holds the final simplex multipliers of a revised optimal solve,
	// in the sign-normalised row space of the problem's CSC form; Verify
	// prices the dual-feasibility check against them.  The flat path leaves
	// them nil.
	duals []float64
}

const defaultTolerance = 1e-9

// candListSize bounds the candidate list kept by partial pricing: a full
// pricing pass remembers up to this many attractive columns, and subsequent
// pivots price only those until the list runs dry.
const candListSize = 24

// degenerateSwitch is the number of consecutive non-improving pivots after
// which pricing falls back to Bland's rule to guarantee termination.
const degenerateSwitch = 50

// solverPool recycles Solvers (and so their working buffers) across
// package-level Solve calls, which is what makes repeated solves in the
// experiment sweeps allocation-free in steady state.
var solverPool = sync.Pool{New: func() interface{} { return NewSolver() }}

// Solve runs the two-phase primal simplex method on the problem.  It draws a
// reusable Solver from an internal pool; callers with a long sequence of
// solves can hold their own Solver instead.
func Solve(p *Problem, opts Options) (*Solution, error) {
	s := solverPool.Get().(*Solver)
	sol, err := s.Solve(p, opts)
	solverPool.Put(s)
	return sol, err
}

// SolveFrom is Solve warm-started from an explicit basis snapshot (see
// Solver.SolveFrom); a nil basis is an ordinary Solve.
func SolveFrom(p *Problem, opts Options, from *WarmBasis) (*Solution, error) {
	s := solverPool.Get().(*Solver)
	sol, err := s.SolveFrom(p, opts, from)
	solverPool.Put(s)
	return sol, err
}

// Solver is a reusable two-phase primal simplex solver holding the working
// state of both implementations (revised and flat), so a Solver that has seen
// a problem of a given size solves subsequent problems of similar size
// without allocating.
//
// A Solver is not safe for concurrent use; use one per goroutine (the
// package-level Solve does this via an internal pool).
type Solver struct {
	rev  revisedSolver
	flat flatSolver
}

// NewSolver returns an empty Solver; buffers are allocated lazily on first
// use and reused afterwards.
func NewSolver() *Solver { return &Solver{} }

// Solve solves the problem with the implementation selected by opts.Method,
// reusing the solver's buffers.  A revised solve that hits a numerically
// singular refactorization (which a correct basis never produces exactly,
// only catastrophic round-off does) transparently falls back to the flat
// path.  With Options.WarmStart the revised method first tries the optimal
// basis of this Solver's previous solve (see WarmBasis).
func (s *Solver) Solve(p *Problem, opts Options) (*Solution, error) {
	return s.SolveFrom(p, opts, nil)
}

// SolveFrom is Solve warm-started from an explicit basis snapshot (see
// WarmBasis): when the snapshot transfers to this problem the solve skips
// phase one entirely, and when it does not the ordinary cold start runs.
// Only MethodRevised uses the snapshot.  A nil basis is an ordinary Solve —
// except that with Options.WarmStart set, the Solver's own last optimal
// basis stands in for it.
func (s *Solver) SolveFrom(p *Problem, opts Options, from *WarmBasis) (*Solution, error) {
	if opts.Method != MethodRevised {
		from = nil
	} else if from == nil && opts.WarmStart && s.rev.haveWarm {
		from = &s.rev.lastWarm
	}
	return s.solve(p, opts, from)
}

// SolveDualFrom is SolveFrom with Options.Dual forced: the snapshot is
// transplanted even when it is out of shape for this problem (rows/columns
// appended) or primal infeasible (RHS perturbed), as long as the old rows
// form a prefix of the new ones, and a dual simplex phase re-optimizes from
// it.  A basis the dual phase cannot certify falls back to the ordinary cold
// start, so the call is always safe.
func (s *Solver) SolveDualFrom(p *Problem, opts Options, from *WarmBasis) (*Solution, error) {
	opts.Dual = true
	return s.SolveFrom(p, opts, from)
}

func (s *Solver) solve(p *Problem, opts Options, warm *WarmBasis) (*Solution, error) {
	tol := opts.Tolerance
	if tol <= 0 {
		tol = defaultTolerance
	}
	plan := loadFaultPlan()
	if opts.Cascade && opts.Method == MethodRevised {
		return s.cascadeSolve(p, opts, tol, warm, plan)
	}
	var fault *Fault
	if plan != nil {
		fault = plan(0)
	}
	if fault != nil && fault.PivotBudget > 0 {
		opts.MaxIterations = fault.PivotBudget
	}
	var sol *Solution
	var err error
	switch opts.Method {
	case MethodRevised:
		s.rev.fault = fault
		sol, err = s.rev.solve(p, opts, tol, warm)
		s.rev.fault = nil
		if err == errSingularBasis {
			sol, err = s.flat.solve(p, opts, tol)
		}
	case MethodFlat:
		sol, err = s.flat.solve(p, opts, tol)
	default:
		return nil, fmt.Errorf("lp: unknown solve method %d", int(opts.Method))
	}
	if err == nil {
		recordSolve(sol)
	}
	return sol, err
}

// maxIterations resolves the pivot budget for a problem of the given size.
func maxIterations(opts Options, rows, cols int) int {
	maxIter := opts.MaxIterations
	if maxIter <= 0 {
		maxIter = 200 * (cols + rows)
		if maxIter < 20000 {
			maxIter = 20000
		}
	}
	return maxIter
}

// grabFloats returns buf resized to n, reallocating only when capacity is
// short; fresh content is NOT zeroed.
func grabFloats(buf []float64, n int, allocs *int) []float64 {
	if cap(buf) < n {
		*allocs++
		return make([]float64, n)
	}
	return buf[:n]
}

func grabInts(buf []int, n int, allocs *int) []int {
	if cap(buf) < n {
		*allocs++
		return make([]int, n)
	}
	return buf[:n]
}

func grabBools(buf []bool, n int, allocs *int) []bool {
	if cap(buf) < n {
		*allocs++
		return make([]bool, n)
	}
	return buf[:n]
}

// effectiveSense is the sense of a constraint after the row is multiplied
// by -1 when its RHS is negative (so the tableau RHS is non-negative).
func effectiveSense(c Constraint) Sense {
	if c.RHS < 0 {
		switch c.Sense {
		case LE:
			return GE
		case GE:
			return LE
		}
	}
	return c.Sense
}

// selectCandidates refreshes cand with the (up to candListSize) most negative
// entries of rc[:limit] below -tol and returns the most attractive column
// together with the updated list, or -1 at optimality.  Shared by the full
// pricing passes of both simplex implementations.
func selectCandidates(rc []float64, limit int, tol float64, cand []int) (int, []int) {
	cand = cand[:0]
	best, bestRC := -1, -tol
	// Keep the candListSize most negative reduced costs.  worst tracks the
	// largest (least attractive) reduced cost currently in the list so most
	// columns are rejected with a single comparison.
	worst := math.Inf(-1)
	for j := 0; j < limit; j++ {
		r := rc[j]
		if r >= -tol {
			continue
		}
		if r < bestRC {
			bestRC, best = r, j
		}
		if len(cand) < candListSize {
			cand = append(cand, j)
			if r > worst {
				worst = r
			}
			continue
		}
		if r >= worst {
			continue
		}
		// Replace the current worst candidate; the list's new maximum is
		// the larger of its old runner-up and the newcomer.
		wi, wr, runnerUp := 0, math.Inf(-1), math.Inf(-1)
		for k, cj := range cand {
			v := rc[cj]
			if v > wr {
				runnerUp = wr
				wr, wi = v, k
			} else if v > runnerUp {
				runnerUp = v
			}
		}
		cand[wi] = j
		worst = runnerUp
		if r > worst {
			worst = r
		}
	}
	return best, cand
}
