package lp

import "math"

// This file is the dual simplex phase behind Options.Dual: re-optimization
// from a warm basis that is dual feasible but not primal feasible for the
// problem at hand — exactly the shape a trace extension leaves behind.
//
// When a problem grows by appended rows and columns (Problem.AddVariable,
// AddConstraint, ExtendConstraint on old rows gaining only NEW columns), the
// old optimal basis B extends to B' = [[B, 0], [C, S]] where S holds the
// crash slack/artificial columns of the new rows.  B' is nonsingular whenever
// B is, and its simplex multipliers are y' = (y_old, 0): every OLD column
// keeps its reduced cost, so the transplanted basis stays dual feasible with
// respect to the old column set, while the appended rows may leave basic
// values negative (a violated new inequality) or basic artificials positive
// (a violated new equality).  The dual simplex repairs exactly that — each
// pivot drives out the worst primal violation while keeping reduced costs
// non-negative — after which an ordinary primal phase prices in the new
// columns (the only ones that can carry negative reduced costs).
//
// Every exit that is not a certified optimum abandons the transplant and
// falls back to the cold two-phase primal start, so Options.Dual is always
// safe to request, and under Options.Cascade the result is additionally
// checked by the independent certificate (Verify) like any other solve.

// dualStallWindow is the number of consecutive dual pivots the total primal
// violation may fail to improve before the warm re-optimization is declared
// degenerate and handed to the cold primal path.
const dualStallWindow = 64

// matchesPrefix reports whether the snapshot describes a leading sub-problem
// of the standard form the solver has loaded: no more rows or structural
// variables, and element-wise equal effective senses on the shared row
// prefix (which pins the slack column layout of those rows).
func (b *WarmBasis) matchesPrefix(r *revisedSolver) bool {
	if b == nil || b.rows == 0 || b.rows > r.rows || b.numVars > r.numVars {
		return false
	}
	if len(b.cols) != b.rows || len(b.senses) < b.rows || len(r.m.sense) < b.rows {
		return false
	}
	for i := 0; i < b.rows; i++ {
		if b.senses[i] != r.m.sense[i] {
			return false
		}
	}
	return true
}

// installBasisDual transplants a prefix-shaped snapshot onto the loaded
// problem: the snapshot's basic columns are remapped into the extended
// column space row by row, the appended rows keep the crash basis load
// installed (slack for inequalities, artificial for equalities), and the
// whole basis is refactorized.  Unlike installBasis there is no primal
// feasibility requirement — that is the dual phase's job — and donor
// artificials are accepted: slack and artificial columns are both enumerated
// in row order over the shared, sense-identical prefix, so donor offset k
// names the same row's column here, and a zero-valued artificial parked on a
// degenerate equality (the normal residue of a previous warm dual solve)
// transplants as harmlessly as it sat in the donor — the post-solve
// basicArtificialViolation check rejects any that come back carrying value.
// Any out-of-range column, duplicate column or singular refactorization
// reports no transfer.
func (r *revisedSolver) installBasisDual(from *WarmBasis) bool {
	if !from.matchesPrefix(r) {
		return false
	}
	donorSlack, donorArt := 0, 0
	for _, s := range from.senses[:from.rows] {
		if s == LE || s == GE {
			donorSlack++
		}
		if s == GE || s == EQ {
			donorArt++
		}
	}
	clear(r.inBasis)
	for i := 0; i < r.rows; i++ {
		c := r.basis[i] // appended rows: crash column from load
		if i < from.rows {
			c = from.cols[i]
			switch {
			case c < 0 || c >= from.numVars+donorSlack+donorArt:
				return false
			case c < from.numVars:
				// Structural column: indices are append-stable.
			case c < from.numVars+donorSlack:
				// Slack column: the sense prefix is element-wise equal, so
				// slack offset k of the donor is slack offset k here, shifted
				// past the (possibly larger) structural block.
				c = r.numVars + (c - from.numVars)
			default:
				// Artificial column: same row-order enumeration argument.
				c = r.artLo + (c - from.numVars - donorSlack)
			}
		}
		if r.inBasis[c] {
			return false
		}
		r.basis[i] = c
		r.inBasis[c] = true
	}
	// A half-built factorization on failure is fine: the caller reloads.
	return r.refactorize() == nil
}

// optimizeDual runs dual simplex pivots from the current basis until primal
// feasibility (StatusOptimal), a detected primal infeasibility
// (StatusInfeasible — trusted only as "abandon the warm start" by the
// caller), or a budget.  The leaving row is the largest primal violation: a
// basic value below zero, or a basic artificial above zero (the residue of
// an appended equality row).  The entering column minimises the dual ratio
// |rc_j| / |row_j| over the nonbasic non-artificial columns whose reduced
// cost is non-negative; columns that are already dual infeasible (fresh
// extension columns priced below zero) are left for the primal clean-up
// phase that follows.
//
// Reduced costs are maintained across pivots instead of re-priced: the dual
// step moves y by t·rho, so rc_j shifts by -t·row_j using the pivot row the
// entering scan computed anyway, and the file is re-priced from fresh duals
// only when a pivot triggered a refactorization.  Maintenance drift is
// harmless — termination is decided by primal feasibility alone, and the
// primal clean-up phase re-prices every column from scratch — it can only
// cost extra clean-up pivots, never a wrong optimum.
//
// The pivot budget bounds the transplant's cost at a fraction of a cold
// solve: a warm basis that needs that many repairs has lost its locality
// advantage (each dual pivot carries a full pricing scan), so the solve is
// handed back to the cold primal path instead of grinding on.
func (r *revisedSolver) optimizeDual(maxIter int) (Status, error) {
	r.dualRC = grabFloats(r.dualRC, r.artLo, &r.allocs)
	r.dualRow = grabFloats(r.dualRow, r.artLo, &r.allocs)
	reprice := func() {
		r.computeDuals()
		r.fullPasses++
		for j := 0; j < r.artLo; j++ {
			r.dualRC[j] = r.costs[j] - r.colDot(r.y, j)
		}
	}
	reprice()
	budget := r.rows/4 + 64
	bestSum := math.Inf(1)
	stall := 0
	for {
		if r.iterations >= maxIter || r.dualIters >= budget {
			return StatusIterLimit, nil
		}
		// Leaving row: worst violation, ties to the smallest row index.  The
		// total violation doubles as a progress measure: a transplant whose
		// repairs keep shuffling infeasibility between rows instead of
		// shrinking it (dual degeneracy) is abandoned early, well before the
		// pivot budget, because the cold primal start handles those bases
		// faster than a thrashing dual phase does.
		leave := -1
		dir := 0.0
		worst := r.tol
		sum := 0.0
		for i, v := range r.xB {
			switch {
			case -v > worst:
				worst, leave, dir = -v, i, -1
			case v > worst && r.basis[i] >= r.artLo:
				worst, leave, dir = v, i, 1
			}
			if v < 0 {
				sum -= v
			} else if r.basis[i] >= r.artLo {
				sum += v
			}
		}
		if leave < 0 {
			return StatusOptimal, nil
		}
		if sum < bestSum-r.tol {
			bestSum, stall = sum, 0
		} else if stall++; stall > dualStallWindow {
			return StatusIterLimit, nil
		}
		// Row leave of B^-1 A, via one BTRAN of the unit vector.
		clear(r.rho)
		r.rho[leave] = 1
		r.btranB(r.rho)
		r.fullPasses++
		enter := -1
		bestRatio := math.Inf(1)
		for j := 0; j < r.artLo; j++ {
			if r.inBasis[j] {
				r.dualRow[j] = 0
				continue
			}
			row := r.colDot(r.rho, j)
			r.dualRow[j] = row
			a := dir * row
			if a <= r.tol {
				continue
			}
			rc := r.dualRC[j]
			if rc < -r.tol {
				continue
			}
			if rc < 0 {
				rc = 0
			}
			ratio := rc / a
			if ratio < bestRatio-r.tol ||
				(math.Abs(ratio-bestRatio) <= r.tol && (enter < 0 || j < enter)) {
				bestRatio, enter = ratio, j
			}
		}
		if enter < 0 {
			// A violated row with no eligible entering column is a dual ray:
			// the restricted problem is primal infeasible.  The caller treats
			// this as "re-derive the verdict cold", never as a certificate.
			return StatusInfeasible, nil
		}
		r.ftranColumn(enter)
		if dir*r.alpha[leave] <= r.tol {
			// The priced row entry and the exact FTRAN disagree at tolerance;
			// abandon rather than divide by a vanishing pivot.
			return StatusIterLimit, nil
		}
		leaveCol := r.basis[leave]
		refactorsBefore := r.refactors
		if err := r.pivot(leave, enter); err != nil {
			return 0, err
		}
		r.iterations++
		r.dualIters++
		if r.refactors != refactorsBefore {
			reprice() // a refactorization resets drift; re-price from it
			continue
		}
		t := dir * bestRatio
		if t != 0 {
			for j := 0; j < r.artLo; j++ {
				if v := r.dualRow[j]; v != 0 {
					r.dualRC[j] -= t * v
				}
			}
			if leaveCol < r.artLo {
				// The leaving column re-enters the nonbasic file at rc = -t
				// (its pivot-row entry is exactly 1).
				r.dualRC[leaveCol] = -t
			}
		}
		r.dualRC[enter] = 0
	}
}

// basicArtificialViolation returns the largest |value| carried by a basic
// artificial column, the quantity that must vanish for a warm dual solve to
// report optimality (a positive basic artificial is a violated constraint).
func (r *revisedSolver) basicArtificialViolation() float64 {
	worst := 0.0
	for i, c := range r.basis {
		if c >= r.artLo {
			if a := math.Abs(r.xB[i]); a > worst {
				worst = a
			}
		}
	}
	return worst
}

// solveDualWarm attempts the dual-simplex warm path on a freshly loaded
// problem: transplant the prefix basis, repair primal feasibility with dual
// pivots, then run the ordinary primal phase two to price in any appended
// columns.  It returns (solution, true) only for a fully certified optimum;
// (nil, false) means the caller must reload and cold-start.  Errors other
// than a singular refactorization (absorbed as "no transfer") propagate.
func (r *revisedSolver) solveDualWarm(p *Problem, maxIter int, warm *WarmBasis) (*Solution, bool, error) {
	if !r.installBasisDual(warm) {
		return nil, false, nil
	}
	r.warmStarted = true
	r.setPhase(2)
	status, err := r.optimizeDual(maxIter)
	if err == errSingularBasis {
		r.warmStarted = false
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	if status == StatusOptimal {
		for i, v := range r.xB {
			if v < 0 {
				r.xB[i] = 0 // within tolerance, or optimizeDual would not have stopped
			}
		}
		status, err = r.optimize(maxIter)
		if err == errSingularBasis {
			r.warmStarted = false
			return nil, false, nil
		}
		if err != nil {
			return nil, false, err
		}
		if status == StatusOptimal && r.basicArtificialViolation() <= r.tol {
			return r.solution(StatusOptimal, p), true, nil
		}
	}
	// Anything else — a dual ray, an exhausted budget, an unbounded clean-up
	// phase, or an artificial still carrying value — is not trusted from the
	// transplanted basis: the cold start re-derives the terminal verdict.
	r.warmStarted = false
	return nil, false, nil
}
