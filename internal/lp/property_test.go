package lp_test

// Property tests comparing the flat-tableau Solver against the pre-refactor
// dense reference path and against the exhaustive search of package opt, on
// both random LPs and the paper's synchronized-schedule models.  These live
// in an external test package so they can import lpmodel/opt/workload (which
// depend on lp) without an import cycle; the dense reference is reached
// through lp.DenseSolve in export_test.go.

import (
	"math"
	"math/rand"
	"testing"

	"pfcache/internal/lp"
	"pfcache/internal/lpmodel"
	"pfcache/internal/opt"
	"pfcache/internal/workload"
)

// randomProblem builds a random LP with a known feasible point, mixing LE,
// GE and EQ constraints (mirroring the generator of the solver unit tests).
func randomProblem(rng *rand.Rand) (*lp.Problem, []float64) {
	nVars := 2 + rng.Intn(6)
	nCons := 1 + rng.Intn(8)
	p := lp.NewProblem(nVars)
	x0 := make([]float64, nVars)
	for i := range x0 {
		x0[i] = rng.Float64() * 5
		p.SetObjective(i, rng.Float64()*4-1)
	}
	for c := 0; c < nCons; c++ {
		coeffs := make([]lp.Coef, 0, nVars)
		lhs := 0.0
		for v := 0; v < nVars; v++ {
			if rng.Float64() < 0.6 {
				val := rng.Float64()*4 - 2
				coeffs = append(coeffs, lp.Coef{Var: v, Value: val})
				lhs += val * x0[v]
			}
		}
		if len(coeffs) == 0 {
			continue
		}
		switch rng.Intn(3) {
		case 0:
			p.AddConstraint(coeffs, lp.LE, lhs+rng.Float64())
		case 1:
			p.AddConstraint(coeffs, lp.GE, lhs-rng.Float64())
		default:
			p.AddConstraint(coeffs, lp.EQ, lhs)
		}
	}
	return p, x0
}

// TestFlatMatchesDenseRandom solves random feasible problems with both the
// flat Solver and the dense reference and requires matching statuses and
// objective values (the optimal vertex may differ on degenerate optima, so X
// is checked only for feasibility).
func TestFlatMatchesDenseRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	solver := lp.NewSolver()
	for trial := 0; trial < 200; trial++ {
		p, _ := randomProblem(rng)
		flat, err := solver.Solve(p, lp.Options{})
		if err != nil {
			t.Fatalf("trial %d: flat: %v", trial, err)
		}
		dense, err := lp.DenseSolve(p, lp.Options{})
		if err != nil {
			t.Fatalf("trial %d: dense: %v", trial, err)
		}
		if flat.Status != dense.Status {
			t.Fatalf("trial %d: status flat=%v dense=%v", trial, flat.Status, dense.Status)
		}
		if flat.Status != lp.StatusOptimal {
			continue
		}
		if math.Abs(flat.Objective-dense.Objective) > 1e-6 {
			t.Fatalf("trial %d: objective flat=%g dense=%g", trial, flat.Objective, dense.Objective)
		}
		if viol, idx := p.Violation(flat.X); viol > 1e-6 {
			t.Fatalf("trial %d: flat solution violates constraint %d by %g", trial, idx, viol)
		}
	}
}

// TestFlatMatchesDenseInfeasible checks that both paths agree on an
// infeasible system.
func TestFlatMatchesDenseInfeasible(t *testing.T) {
	p := lp.NewProblem(1)
	p.SetObjective(0, 1)
	p.AddConstraint([]lp.Coef{{Var: 0, Value: 1}}, lp.LE, 1)
	p.AddConstraint([]lp.Coef{{Var: 0, Value: 1}}, lp.GE, 2)
	flat, err := lp.Solve(p, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dense, err := lp.DenseSolve(p, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if flat.Status != lp.StatusInfeasible || dense.Status != lp.StatusInfeasible {
		t.Fatalf("status flat=%v dense=%v, want infeasible", flat.Status, dense.Status)
	}
}

// TestFlatMatchesDenseUnbounded checks that both paths agree on an unbounded
// objective.
func TestFlatMatchesDenseUnbounded(t *testing.T) {
	p := lp.NewProblem(1)
	p.SetObjective(0, -1)
	p.AddConstraint([]lp.Coef{{Var: 0, Value: 1}}, lp.GE, 1)
	flat, err := lp.Solve(p, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dense, err := lp.DenseSolve(p, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if flat.Status != lp.StatusUnbounded || dense.Status != lp.StatusUnbounded {
		t.Fatalf("status flat=%v dense=%v, want unbounded", flat.Status, dense.Status)
	}
}

// TestFlatIterationLimit checks the iteration guard and its counters.
func TestFlatIterationLimit(t *testing.T) {
	p := lp.NewProblem(3)
	for v := 0; v < 3; v++ {
		p.SetObjective(v, -1)
	}
	p.AddConstraint([]lp.Coef{{Var: 0, Value: 1}, {Var: 1, Value: 1}, {Var: 2, Value: 1}}, lp.LE, 10)
	p.AddConstraint([]lp.Coef{{Var: 0, Value: 1}, {Var: 1, Value: 2}}, lp.LE, 8)
	p.AddConstraint([]lp.Coef{{Var: 1, Value: 1}, {Var: 2, Value: 3}}, lp.LE, 9)
	sol, err := lp.Solve(p, lp.Options{MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.StatusIterLimit && sol.Status != lp.StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if sol.Iterations > 1 {
		t.Fatalf("iterations = %d, want <= 1", sol.Iterations)
	}
}

// TestSolverReuseIsAllocationFree asserts that a reused Solver stops
// allocating tableau buffers after the first solve of a given size, which is
// the property the experiment sweeps rely on.
func TestSolverReuseIsAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	solver := lp.NewSolver()
	p, _ := randomProblem(rng)
	first, err := solver.Solve(p, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if first.TableauAllocs == 0 {
		t.Fatalf("first solve reported zero tableau allocations")
	}
	again, err := solver.Solve(p, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if again.TableauAllocs != 0 {
		t.Fatalf("repeat solve allocated %d buffers, want 0", again.TableauAllocs)
	}
	if again.Status != first.Status || math.Abs(again.Objective-first.Objective) > 1e-9 {
		t.Fatalf("repeat solve diverged: %+v vs %+v", again, first)
	}
}

// TestFlatMatchesDenseOnPaperModels builds the synchronized-schedule LP for
// random small multi-disk instances and requires the flat Solver and the
// dense reference to agree on the relaxation's optimal value; the value must
// also be a valid lower bound on the exhaustive-search optimal stall, and
// the extracted schedule's stall must never beat the exhaustive optimum
// (which is allowed extra cache as in Lemma 3).
func TestFlatMatchesDenseOnPaperModels(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive search is slow in -short mode")
	}
	for trial := 0; trial < 6; trial++ {
		disks := 1 + trial%3
		seq := workload.Uniform(9, 5, int64(4000+trial))
		in := workload.Instance(seq, 3, 2, disks, workload.AssignStripe, 0)
		m, err := lpmodel.Build(in)
		if err != nil {
			t.Fatalf("trial %d: Build: %v", trial, err)
		}
		fracSolver := lp.NewSolver()
		flat, err := lp.Solve(m.Problem, lp.Options{})
		if err != nil {
			t.Fatalf("trial %d: flat: %v", trial, err)
		}
		frac, err := m.SolveWith(fracSolver, lp.Options{})
		if err != nil {
			t.Fatalf("trial %d: SolveWith: %v", trial, err)
		}
		if math.Abs(frac.Objective-flat.Objective) > 1e-9 {
			t.Fatalf("trial %d: SolveWith objective %g differs from Solve %g", trial, frac.Objective, flat.Objective)
		}
		dense, err := lp.DenseSolve(m.Problem, lp.Options{})
		if err != nil {
			t.Fatalf("trial %d: dense: %v", trial, err)
		}
		if flat.Status != lp.StatusOptimal || dense.Status != lp.StatusOptimal {
			t.Fatalf("trial %d: status flat=%v dense=%v", trial, flat.Status, dense.Status)
		}
		if math.Abs(flat.Objective-dense.Objective) > 1e-6 {
			t.Fatalf("trial %d: LP objective flat=%g dense=%g", trial, flat.Objective, dense.Objective)
		}
		optRes, err := opt.Optimal(in, opt.Options{})
		if err != nil {
			t.Fatalf("trial %d: opt: %v", trial, err)
		}
		if flat.Objective > float64(optRes.Stall)+1e-6 {
			t.Fatalf("trial %d: LP bound %g exceeds optimal stall %d", trial, flat.Objective, optRes.Stall)
		}
		res, err := lpmodel.Plan(in, lp.Options{})
		if err != nil {
			t.Fatalf("trial %d: Plan: %v", trial, err)
		}
		if res.Stall > optRes.Stall {
			t.Fatalf("trial %d: plan stall %d worse than optimal stall %d", trial, res.Stall, optRes.Stall)
		}
	}
}

// buildE7SizedProblem constructs the synchronized-schedule LP at the E7
// sweep's size, the model the flat solver was rebuilt for.
func buildE7SizedProblem(b *testing.B) *lp.Problem {
	b.Helper()
	seq := workload.Uniform(11, 6, 900)
	in := workload.Instance(seq, 3, 2, 3, workload.AssignStripe, 0)
	m, err := lpmodel.Build(in)
	if err != nil {
		b.Fatal(err)
	}
	return m.Problem
}

// BenchmarkFlatSolveE7Size is the production flat-tableau path with a
// reused Solver.
func BenchmarkFlatSolveE7Size(b *testing.B) {
	p := buildE7SizedProblem(b)
	solver := lp.NewSolver()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.Solve(p, lp.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDenseSolveE7Size is the pre-refactor dense [][]float64 reference
// path on the same problem, kept so the speedup stays measurable.
func BenchmarkDenseSolveE7Size(b *testing.B) {
	p := buildE7SizedProblem(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lp.DenseSolve(p, lp.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
