package lp_test

// Property tests pinning the three solver implementations to each other on
// random LPs and on the paper's synchronized-schedule models: the production
// revised simplex (sparse CSC + product-form eta file), the PR-1 flat-tableau
// path kept behind Options.Method, and the pre-refactor dense reference.
// These live in an external test package so they can import
// lpmodel/opt/workload (which depend on lp) without an import cycle; the
// dense reference is reached through lp.DenseSolve in export_test.go.

import (
	"math"
	"math/rand"
	"testing"

	"pfcache/internal/lp"
	"pfcache/internal/lpmodel"
	"pfcache/internal/opt"
	"pfcache/internal/workload"
)

// randomProblem builds a random LP with a known feasible point, mixing LE,
// GE and EQ constraints (mirroring the generator of the solver unit tests).
func randomProblem(rng *rand.Rand) (*lp.Problem, []float64) {
	nVars := 2 + rng.Intn(6)
	nCons := 1 + rng.Intn(8)
	p := lp.NewProblem(nVars)
	x0 := make([]float64, nVars)
	for i := range x0 {
		x0[i] = rng.Float64() * 5
		p.SetObjective(i, rng.Float64()*4-1)
	}
	for c := 0; c < nCons; c++ {
		coeffs := make([]lp.Coef, 0, nVars)
		lhs := 0.0
		for v := 0; v < nVars; v++ {
			if rng.Float64() < 0.6 {
				val := rng.Float64()*4 - 2
				coeffs = append(coeffs, lp.Coef{Var: v, Value: val})
				lhs += val * x0[v]
			}
		}
		if len(coeffs) == 0 {
			continue
		}
		switch rng.Intn(3) {
		case 0:
			p.AddConstraint(coeffs, lp.LE, lhs+rng.Float64())
		case 1:
			p.AddConstraint(coeffs, lp.GE, lhs-rng.Float64())
		default:
			p.AddConstraint(coeffs, lp.EQ, lhs)
		}
	}
	return p, x0
}

// solveAllThree runs the revised, flat and dense implementations on p and
// requires matching statuses and (when optimal) objectives within 1e-6; the
// optimal vertex may differ on degenerate optima, so X is checked only for
// feasibility.  It returns the revised solution.
func solveAllThree(t *testing.T, rev, flat *lp.Solver, p *lp.Problem, opts lp.Options) *lp.Solution {
	t.Helper()
	revOpts := opts
	revOpts.Method = lp.MethodRevised
	revised, err := rev.Solve(p, revOpts)
	if err != nil {
		t.Fatalf("revised: %v", err)
	}
	flatOpts := opts
	flatOpts.Method = lp.MethodFlat
	flatSol, err := flat.Solve(p, flatOpts)
	if err != nil {
		t.Fatalf("flat: %v", err)
	}
	dense, err := lp.DenseSolve(p, opts)
	if err != nil {
		t.Fatalf("dense: %v", err)
	}
	if revised.Status != flatSol.Status || revised.Status != dense.Status {
		t.Fatalf("status revised=%v flat=%v dense=%v", revised.Status, flatSol.Status, dense.Status)
	}
	if revised.Status != lp.StatusOptimal {
		return revised
	}
	if math.Abs(revised.Objective-flatSol.Objective) > 1e-6 {
		t.Fatalf("objective revised=%g flat=%g", revised.Objective, flatSol.Objective)
	}
	if math.Abs(revised.Objective-dense.Objective) > 1e-6 {
		t.Fatalf("objective revised=%g dense=%g", revised.Objective, dense.Objective)
	}
	for name, sol := range map[string]*lp.Solution{"revised": revised, "flat": flatSol} {
		if viol, idx := p.Violation(sol.X); viol > 1e-6 {
			t.Fatalf("%s solution violates constraint %d by %g", name, idx, viol)
		}
	}
	return revised
}

// TestSolversMatchRandom solves random feasible problems with all three
// implementations and requires matching statuses and objective values.
func TestSolversMatchRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	rev, flat := lp.NewSolver(), lp.NewSolver()
	for trial := 0; trial < 200; trial++ {
		p, _ := randomProblem(rng)
		solveAllThree(t, rev, flat, p, lp.Options{})
	}
}

// TestSolversMatchRandomSmallRefactor reruns the random lattice with a tiny
// refactorization interval so eta-file rebuilds happen mid-solve even on
// small problems.
func TestSolversMatchRandomSmallRefactor(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	rev, flat := lp.NewSolver(), lp.NewSolver()
	for trial := 0; trial < 200; trial++ {
		p, _ := randomProblem(rng)
		solveAllThree(t, rev, flat, p, lp.Options{RefactorEvery: 2})
	}
}

// TestSolversMatchInfeasible checks that all three paths agree on an
// infeasible system.
func TestSolversMatchInfeasible(t *testing.T) {
	p := lp.NewProblem(1)
	p.SetObjective(0, 1)
	p.AddConstraint([]lp.Coef{{Var: 0, Value: 1}}, lp.LE, 1)
	p.AddConstraint([]lp.Coef{{Var: 0, Value: 1}}, lp.GE, 2)
	sol := solveAllThree(t, lp.NewSolver(), lp.NewSolver(), p, lp.Options{})
	if sol.Status != lp.StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

// TestSolversMatchUnbounded checks that all three paths agree on an
// unbounded objective.
func TestSolversMatchUnbounded(t *testing.T) {
	p := lp.NewProblem(1)
	p.SetObjective(0, -1)
	p.AddConstraint([]lp.Coef{{Var: 0, Value: 1}}, lp.GE, 1)
	sol := solveAllThree(t, lp.NewSolver(), lp.NewSolver(), p, lp.Options{})
	if sol.Status != lp.StatusUnbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

// TestSolversMatchDegenerate runs Beale's classic cycling example padded
// with redundant rows (heavy degeneracy, exercising the Bland fallback) and
// requires all three implementations to find the optimum.
func TestSolversMatchDegenerate(t *testing.T) {
	p := lp.NewProblem(3)
	p.SetObjective(0, -0.75)
	p.SetObjective(1, 150)
	p.SetObjective(2, -0.02)
	p.AddConstraint([]lp.Coef{{Var: 0, Value: 0.25}, {Var: 1, Value: -60}, {Var: 2, Value: -0.04}}, lp.LE, 0)
	p.AddConstraint([]lp.Coef{{Var: 0, Value: 0.5}, {Var: 1, Value: -90}, {Var: 2, Value: -0.02}}, lp.LE, 0)
	for i := 0; i < 6; i++ {
		p.AddConstraint([]lp.Coef{{Var: 2, Value: 1}}, lp.LE, 1)
	}
	sol := solveAllThree(t, lp.NewSolver(), lp.NewSolver(), p, lp.Options{})
	if sol.Status != lp.StatusOptimal || math.Abs(sol.Objective-(-0.05)) > 1e-6 {
		t.Fatalf("status=%v objective=%g, want optimal -0.05", sol.Status, sol.Objective)
	}
}

// TestIterationLimitBothMethods checks the iteration guard and its counters
// on both production paths.
func TestIterationLimitBothMethods(t *testing.T) {
	for _, method := range []lp.Method{lp.MethodRevised, lp.MethodFlat} {
		p := lp.NewProblem(3)
		for v := 0; v < 3; v++ {
			p.SetObjective(v, -1)
		}
		p.AddConstraint([]lp.Coef{{Var: 0, Value: 1}, {Var: 1, Value: 1}, {Var: 2, Value: 1}}, lp.LE, 10)
		p.AddConstraint([]lp.Coef{{Var: 0, Value: 1}, {Var: 1, Value: 2}}, lp.LE, 8)
		p.AddConstraint([]lp.Coef{{Var: 1, Value: 1}, {Var: 2, Value: 3}}, lp.LE, 9)
		sol, err := lp.Solve(p, lp.Options{MaxIterations: 1, Method: method})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != lp.StatusIterLimit && sol.Status != lp.StatusOptimal {
			t.Fatalf("%v: status = %v", method, sol.Status)
		}
		if sol.Iterations > 1 {
			t.Fatalf("%v: iterations = %d, want <= 1", method, sol.Iterations)
		}
	}
}

// TestSolverReuseIsAllocationFree asserts that a reused Solver stops
// allocating buffers after the first solve of a given size — for both
// methods — which is the property the experiment sweeps rely on.
func TestSolverReuseIsAllocationFree(t *testing.T) {
	for _, method := range []lp.Method{lp.MethodRevised, lp.MethodFlat} {
		rng := rand.New(rand.NewSource(7))
		solver := lp.NewSolver()
		p, _ := randomProblem(rng)
		opts := lp.Options{Method: method}
		first, err := solver.Solve(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		if first.TableauAllocs == 0 {
			t.Fatalf("%v: first solve reported zero buffer allocations", method)
		}
		again, err := solver.Solve(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		if again.TableauAllocs != 0 {
			t.Fatalf("%v: repeat solve allocated %d buffers, want 0", method, again.TableauAllocs)
		}
		if again.Status != first.Status || math.Abs(again.Objective-first.Objective) > 1e-9 {
			t.Fatalf("%v: repeat solve diverged: %+v vs %+v", method, again, first)
		}
	}
}

// TestRevisedRefactorizationLongSolve forces frequent basis reinversions on
// the E7-sized paper model (a long solve with ~200 pivots) and checks that
// the heavily-refactorized solve still matches the flat path exactly and
// reports its refactorization work.
func TestRevisedRefactorizationLongSolve(t *testing.T) {
	p := buildE7SizedProblem(t)
	rev, err := lp.Solve(p, lp.Options{Method: lp.MethodRevised, RefactorEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := lp.Solve(p, lp.Options{Method: lp.MethodFlat})
	if err != nil {
		t.Fatal(err)
	}
	if rev.Status != lp.StatusOptimal || flat.Status != lp.StatusOptimal {
		t.Fatalf("status revised=%v flat=%v", rev.Status, flat.Status)
	}
	if math.Abs(rev.Objective-flat.Objective) > 1e-6 {
		t.Fatalf("objective revised=%g flat=%g", rev.Objective, flat.Objective)
	}
	if rev.Refactorizations < 5 {
		t.Fatalf("Refactorizations = %d, want >= 5 with RefactorEvery=8 over %d pivots",
			rev.Refactorizations, rev.Iterations)
	}
	if rev.EtaColumns == 0 {
		t.Fatal("EtaColumns = 0, want > 0")
	}
	if viol, idx := p.Violation(rev.X); viol > 1e-6 {
		t.Fatalf("revised solution violates constraint %d by %g", idx, viol)
	}
}

// TestSolversMatchOnPaperModels builds the synchronized-schedule LP for
// random small multi-disk instances and requires all three implementations
// to agree on the relaxation's optimal value; the value must also be a valid
// lower bound on the exhaustive-search optimal stall, and the extracted
// schedule's stall must never beat the exhaustive optimum (which is allowed
// extra cache as in Lemma 3).
func TestSolversMatchOnPaperModels(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive search is slow in -short mode")
	}
	rev, flat := lp.NewSolver(), lp.NewSolver()
	for trial := 0; trial < 6; trial++ {
		disks := 1 + trial%3
		seq := workload.Uniform(9, 5, int64(4000+trial))
		in := workload.Instance(seq, 3, 2, disks, workload.AssignStripe, 0)
		m, err := lpmodel.Build(in)
		if err != nil {
			t.Fatalf("trial %d: Build: %v", trial, err)
		}
		sol := solveAllThree(t, rev, flat, m.Problem, lp.Options{})
		if sol.Status != lp.StatusOptimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		frac, err := m.SolveWith(rev, lp.Options{})
		if err != nil {
			t.Fatalf("trial %d: SolveWith: %v", trial, err)
		}
		if math.Abs(frac.Objective-sol.Objective) > 1e-9 {
			t.Fatalf("trial %d: SolveWith objective %g differs from Solve %g", trial, frac.Objective, sol.Objective)
		}
		optRes, err := opt.Optimal(in, opt.Options{})
		if err != nil {
			t.Fatalf("trial %d: opt: %v", trial, err)
		}
		if sol.Objective > float64(optRes.Stall)+1e-6 {
			t.Fatalf("trial %d: LP bound %g exceeds optimal stall %d", trial, sol.Objective, optRes.Stall)
		}
		res, err := lpmodel.Plan(in, lp.Options{})
		if err != nil {
			t.Fatalf("trial %d: Plan: %v", trial, err)
		}
		if res.Stall > optRes.Stall {
			t.Fatalf("trial %d: plan stall %d worse than optimal stall %d", trial, res.Stall, optRes.Stall)
		}
	}
}

// buildE7SizedProblem constructs the synchronized-schedule LP at the E7
// sweep's size, the model the solvers are tuned for.
func buildE7SizedProblem(tb testing.TB) *lp.Problem {
	tb.Helper()
	seq := workload.Uniform(11, 6, 900)
	in := workload.Instance(seq, 3, 2, 3, workload.AssignStripe, 0)
	m, err := lpmodel.Build(in)
	if err != nil {
		tb.Fatal(err)
	}
	return m.Problem
}

// benchSolve measures repeated solves of the E7-sized problem with a reused
// Solver, after one untimed warm-up solve so the steady-state (buffer-reuse)
// cost is what gets reported even at -benchtime 1x.
func benchSolve(b *testing.B, opts lp.Options) {
	p := buildE7SizedProblem(b)
	solver := lp.NewSolver()
	if _, err := solver.Solve(p, opts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.Solve(p, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRevisedSolveE7Size is the production revised-simplex path with a
// reused Solver.
func BenchmarkRevisedSolveE7Size(b *testing.B) {
	benchSolve(b, lp.Options{Method: lp.MethodRevised})
}

// BenchmarkFlatSolveE7Size is the PR-1 flat-tableau path on the same
// problem, kept so the revised/flat speedup stays measurable.
func BenchmarkFlatSolveE7Size(b *testing.B) {
	benchSolve(b, lp.Options{Method: lp.MethodFlat})
}

// BenchmarkDenseSolveE7Size is the pre-refactor dense [][]float64 reference
// path on the same problem.
func BenchmarkDenseSolveE7Size(b *testing.B) {
	p := buildE7SizedProblem(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lp.DenseSolve(p, lp.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
