package lp

// DenseSolve exposes the test-only dense reference solver to external test
// packages (which may import lpmodel without creating an import cycle), so
// the property tests can compare the production flat-tableau Solver against
// the pre-refactor dense path on the paper's LP models.
var DenseSolve = denseSolve

// ForgeWarmBasis fabricates a WarmBasis with arbitrary (possibly hostile)
// contents, bypassing the capture path, so the external property tests can
// feed stale and corrupt snapshots into warm-started solves.
func ForgeWarmBasis(rows, numVars int, cols []int, senses []Sense) *WarmBasis {
	return &WarmBasis{rows: rows, numVars: numVars, cols: cols, senses: senses}
}

// TamperX exposes a solution's X for hostile mutation in verification tests
// while keeping the duals (which external packages cannot reach) intact.
func TamperX(sol *Solution, i int, v float64) { sol.X[i] = v }

// TamperObjective overwrites a solution's reported objective.
func TamperObjective(sol *Solution, v float64) { sol.Objective = v }

// TamperDual overwrites one recorded simplex multiplier (no-op when the
// solve recorded none).
func TamperDual(sol *Solution, i int, v float64) {
	if i < len(sol.duals) {
		sol.duals[i] = v
	}
}

// HasDuals reports whether the solve recorded its simplex multipliers.
func HasDuals(sol *Solution) bool { return sol.duals != nil }
