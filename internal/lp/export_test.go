package lp

// DenseSolve exposes the test-only dense reference solver to external test
// packages (which may import lpmodel without creating an import cycle), so
// the property tests can compare the production flat-tableau Solver against
// the pre-refactor dense path on the paper's LP models.
var DenseSolve = denseSolve
