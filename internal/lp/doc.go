// Package lp is a small linear-programming solver built for the
// prefetching/caching linear programs of Section 3 of the paper.
//
// The paper's parallel-disk algorithm needs "an optimal solution of the
// relaxed linear program", which it treats as a black box.  Because this
// repository uses only the Go standard library, the solver is implemented
// here from scratch: a two-phase primal simplex method over problems of the
// form
//
//	minimize    c'x
//	subject to  a_i'x {<=,=,>=} b_i     for every constraint i
//	            x >= 0
//
// Phase one minimises the sum of artificial variables to find a basic
// feasible solution (detecting infeasibility), phase two optimises the real
// objective (detecting unboundedness).
//
// # The revised simplex and its inner engines
//
// The production implementation (Options.Method == MethodRevised, the
// default) is a revised simplex.  The constraint matrix is kept in a
// read-only compressed sparse column form built once per Problem (with a CSR
// twin for row reads, see sparse.go); slack and artificial columns are
// singletons handled symbolically.  Its two inner engines are selectable:
//
// Pricing (Options.Pricing, pricing.go).  The default PricingSteepestEdge is
// a projected steepest edge: the entering column maximises rc_j^2 / gamma_j,
// where gamma_j approximates the projected column norm 1 + |B^-1 A_j|^2
// through Devex-style reference weights.  The engine maintains the whole
// reduced-cost vector incrementally from the pivot row (one BTRAN of the
// leaving row's unit vector, whose support assembles the pivot row sparsely
// through the CSR view), so a pivot costs one FTRAN, one BTRAN and a pass
// over the pivot row's fill — there is no per-pivot duals solve and no
// per-pivot repricing.  The entering column's exact weight is read off its
// FTRAN each pivot; when the stored weight has drifted beyond seDriftRatio
// the whole reference framework resets to unit weights (the Devex fallback).
// Maintained reduced costs are confirmed against freshly computed duals
// before optimality is declared, so incremental round-off can never
// terminate a solve early.  The leaving row breaks ratio-test ties towards
// basic artificials and then the largest pivot element (ratioTestSE).
// PricingDantzig keeps the PR-1/PR-2 rule — most negative reduced cost over
// a candidate list, duals recomputed per pivot — as the reference
// implementation and the rule the experiment suite pins for reproducing the
// committed BENCH_*.json schedule values.  Both rules fall back to Bland's
// rule after a run of degenerate pivots, which guarantees termination.
//
// Basis (Options.Basis, lu.go/eta.go).  The default BasisLU factorizes the
// basis as a sparse LU: right-looking Gaussian elimination with
// Markowitz-style pivoting (minimum-count column from a bucket queue,
// minimum-row-count row within threshold partial pivoting at luPivotRel),
// BTRAN/FTRAN solved against the triangular factors directly, and fill-in
// tracked in Solution.LUFills.  Between refactorizations each pivot appends
// its FTRAN'd column as a product-form update in U-space — the
// untriangularised form of the Forrest–Tomlin column update — so the factors
// stay frozen and the update file stays short (refactorization every
// RefactorEvery pivots, or earlier when B·xB drifts from b beyond
// tolerance).  BasisEta keeps the PR-2 representation — a pure product-form
// eta file rebuilt from scratch at every refactorization — as the reference;
// on the experiment-sized LPs the LU factors hold an order of magnitude
// fewer nonzeros than the reinversion's eta columns, which is where most of
// the revised path's speedup over PR-2 comes from.
//
// # Warm starts
//
// A solve can start from the optimal basis of an earlier solve instead of
// the phase-1 crash basis: Solver.SolveFrom replays an explicit WarmBasis
// snapshot (captured via Options.CaptureBasis into Solution.Basis), and
// Options.WarmStart replays the Solver's own last optimal basis.  The
// snapshot transfers only when the target problem has the same shape (rows,
// variables, constraint senses), refactorizes without going singular, and
// yields a primal feasible point; otherwise the solve silently cold-starts,
// so warm starting is always safe to request.  On the identical problem a
// warm start terminates without a single pivot at the donor's vertex — the
// contract the E8 row loop (lower-bound solve then planning solve of the
// same instance) and the service shards rely on, and what makes warm-started
// sweeps solve in half the pivots of cold ones.
//
// # Dual re-optimization and Forrest–Tomlin updates
//
// Warm starts as described above require the donor basis to be primal
// feasible on the target problem, which a grown problem never satisfies.
// Options.Dual (dual.go) covers exactly that shape: when a problem is
// extended in place by appended rows and columns (Problem.AddVariable,
// AddConstraint, ExtendConstraint on old rows gaining only new columns), the
// old optimal basis B extends to B' = [[B, 0], [C, S]] with the new rows'
// crash slack/artificial columns in S.  B' keeps every old column's reduced
// cost — the transplant is dual feasible by construction — while the
// appended rows may violate primal feasibility.  Solver.SolveDualFrom
// transplants the snapshot (installBasisDual accepts donor artificials and
// skips the primal-feasibility gate installBasis enforces), runs dual
// simplex pivots that drive out the worst primal violation per pivot while
// keeping reduced costs non-negative, and finishes with an ordinary primal
// phase that prices in the appended columns — the only ones that can carry
// negative reduced costs.  A stalled dual phase (dualStallWindow pivots
// without violation progress), an exhausted budget or any non-optimal exit
// abandons the transplant for the cold two-phase primal start, so Dual is
// always safe to request; under Options.Cascade the result additionally
// passes the independent certificate like any other solve.
//
// The dual phase's pivots are cheapest under Options.Update == UpdateFT
// (ft.go), the true Forrest–Tomlin update: instead of freezing the LU
// factors and appending product-form etas (UpdateEta, the default), each
// pivot rewrites the U factor itself — the entering spike replaces the
// leaving column, the row spike left by the cyclic position shift is
// eliminated with multiples of the rows below it and recorded as one row
// eta applied between L and U.  U stays triangular across pivots, so the
// update file does not accumulate the fill that product-form etas do on
// long re-optimization runs; a spike diagonal too small to trust rejects
// the update and refactorizes instead, absorbing the pivot exactly.
// Solution and StatsSnapshot count DualPivots and FTUpdates alongside the
// primal counters, so pcbench's trajectory files record how much of a
// sweep's work the incremental path saved.
//
// The PR-1 flat-tableau implementation survives behind MethodFlat — one
// contiguous row-major []float64 with the artificial columns as a trailing
// index range — as the middle rung of the property-test lattice (revised vs
// flat vs the retired dense reference) and as the automatic fallback should
// a refactorization ever go numerically singular.
//
// # Batched solving
//
// A sweep solves many LPs that share one structure: the same constraint
// pattern with different numbers, or literally the same Problem solved
// twice (the E8 lower-bound-then-plan loop, a service shard's repeated
// instance).  Batch (batch.go) amortises everything such solves can share,
// at three layers:
//
// Symbolic factorization (lusym.go).  Factorizing a basis decomposes into a
// symbolic phase — the Markowitz pivot order and the fill pattern, which
// depend only on the nonzero structure — and the numeric elimination.  Every
// BasisLU factorization records its skeleton (pivot order, per-step target
// columns, update and fill keep/drop decisions) into a per-Solver cache
// keyed by (problem pattern fingerprint, basis fingerprint); the next
// factorization of the same pattern pair replays the recording against the
// new values instead of re-running pivot selection.  The replay re-verifies
// every value-dependent decision it replays (threshold pivot-row election,
// update predicates, drop-tolerance calls) and falls back to a full
// factorization on the first mismatch, so a passing replay is bit-identical
// to what a fresh factorization would compute — reuse changes cost, never
// bytes.  Solution.NumericRefactors counts refactorizations attempted
// through the cache and Solution.SymbolicReuses the successful replays.
//
// Pattern identity (fingerprint.go).  Problem.PatternFingerprint hashes the
// structural identity of a problem: variable and constraint counts, each
// constraint's coefficient positions, and — because they decide the
// slack/artificial column layout and signs in standard form — the bounds
// structure: every constraint's effective sense and right-hand-side sign.
// Two problems with identical coefficient positions but different fixed/free
// row structure therefore never alias one cached symbolic analysis.
//
// Arenas and warm state (batch.go).  A Batch owns one Solver — tableau
// scratch, eta/LU storage, candidate lists, all sized by the first solve and
// reused allocation-free — plus per-pattern slots holding a warm basis and a
// dual-certificate arena.  Batch.Solve warm-starts a member only when the
// caller opted in (Options.WarmStart) or the problem is the same unmutated
// Problem the member last solved; otherwise the solve is cold and
// bit-identical to the same solve on a fresh Solver, which is what keeps
// recorded benchmark tables independent of batching.  BatchSolve sweeps a
// whole problem list, surviving failed members without corrupting the
// arenas of the rest.  In steady state a batched solve performs exactly two
// allocations (the Solution and its X vector), a property
// scripts/allocguard.sh pins.  Batching composes with the cascade: a
// downgraded solve poisons the member's warm basis and the solver's whole
// symbolic cache, since skeletons recorded under suspect numerics must not
// vouch for later solves.
//
// # Verified solves and the engine cascade
//
// Verify (verify.go) checks a finished Solution against its Problem as an
// independent certificate: primal feasibility of X (variable bounds and
// per-constraint residuals, relative to 1+|b_i|), the reported objective
// against a recomputation c'x, and — for Optimal solutions, whose duals the
// revised solver captures at termination — dual feasibility of the priced
// reduced costs.  A failure is a *VerificationError naming the first check
// that failed ("bounds", "primal-residual", "objective",
// "dual-feasibility") and by how much.  The checks use only the Problem's
// own data, never the solver's factorization, so a corrupted basis inverse
// cannot vouch for itself.
//
// Options.Cascade (cascade.go) turns a solve into a self-healing ladder.
// Every Optimal result must pass Verify before it is returned; a failed
// certificate, a singular refactorization, or an exhausted per-rung pivot
// budget abandons the rung and re-solves one rung down — first the
// configured engines cold (discarding a possibly poisoned warm basis), then
// the reference engines (PricingDantzig over BasisEta) cold, finally
// MethodFlat.  Infeasible/Unbounded are accepted only from the final rung,
// since a damaged factorization can misreport either.  Solution.Downgrades
// records how many rungs were abandoned (0 = first try verified), and the
// process-wide VerifiedSolves/VerifyFailures/CascadeFallbacks counters make
// silent corruption observable.  If every rung fails, the solve returns
// *CascadeExhaustedError wrapping the last rung's error.  Without Cascade, a
// solve that exceeds Options.MaxIterations reports StatusIterLimit, and
// asking for more iterations than the budget allows yields
// *PivotBudgetError.
//
// The cascade's healing is exact, not approximate: rung 1 re-runs the same
// engines from a cold start, which is bit-identical to an unfaulted cold
// solve, so callers that cache or compare response bytes (the service tier)
// serve the same bytes whether or not a fault was healed.  SetFaultHook
// (fault.go) is the test-only seam that lets internal/faultinject corrupt
// factorizations, reported objectives and refactorizations on chosen rungs
// to prove exactly that.
//
// Every working buffer of all engines lives on a reusable Solver, so
// repeated solves — the experiment sweeps solve hundreds of similar-sized
// programs — run without allocating in steady state.  The package-level
// Solve draws Solvers from an internal pool; Solution carries pivot,
// pricing-pass, refactorization, eta-column, LU-fill, warm-start and
// allocation counters, and StatsSnapshot aggregates them process-wide, so
// performance regressions are observable in benchmarks, in pcbench's JSON
// trajectory files, and on a live pcserve's /v1/stats.
//
// Numbers are float64 with explicit tolerances; the prefetching LPs are
// small and well scaled, and the experiment harness cross-checks the LP
// results against an exhaustive search, so this precision is sufficient.
package lp
