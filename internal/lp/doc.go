// Package lp is a small linear-programming solver built for the
// prefetching/caching linear programs of Section 3 of the paper.
//
// The paper's parallel-disk algorithm needs "an optimal solution of the
// relaxed linear program", which it treats as a black box.  Because this
// repository uses only the Go standard library, the solver is implemented
// here from scratch: a dense two-phase primal simplex method over problems of
// the form
//
//	minimize    c'x
//	subject to  a_i'x {<=,=,>=} b_i     for every constraint i
//	            x >= 0
//
// Phase one minimises the sum of artificial variables to find a basic
// feasible solution (detecting infeasibility), phase two optimises the real
// objective (detecting unboundedness).  Pivoting uses Dantzig's rule over a
// candidate list (partial pricing: a full reduced-cost sweep refills the
// list only when every remembered column has turned unattractive) with an
// automatic switch to Bland's rule when the objective stalls, which
// guarantees termination on degenerate problems.
//
// The tableau is a single contiguous []float64 in row-major order with the
// artificial columns as a trailing index range, and every working buffer
// lives on a reusable Solver, so repeated solves — the experiment sweeps
// solve hundreds of similar-sized programs — run without allocating in
// steady state.  The package-level Solve draws Solvers from an internal
// pool; Solution carries pivot, pricing-pass and allocation counters so
// performance regressions are observable in benchmarks.
//
// Numbers are float64 with explicit tolerances; the prefetching LPs are
// small and well scaled, and the experiment harness cross-checks the LP
// results against an exhaustive search, so this precision is sufficient.
package lp
