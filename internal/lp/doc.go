// Package lp is a small linear-programming solver built for the
// prefetching/caching linear programs of Section 3 of the paper.
//
// The paper's parallel-disk algorithm needs "an optimal solution of the
// relaxed linear program", which it treats as a black box.  Because this
// repository uses only the Go standard library, the solver is implemented
// here from scratch: a two-phase primal simplex method over problems of the
// form
//
//	minimize    c'x
//	subject to  a_i'x {<=,=,>=} b_i     for every constraint i
//	            x >= 0
//
// Phase one minimises the sum of artificial variables to find a basic
// feasible solution (detecting infeasibility), phase two optimises the real
// objective (detecting unboundedness).  Pivoting uses Dantzig's rule over a
// candidate list (partial pricing: a full reduced-cost sweep refills the
// list only when every remembered column has turned unattractive) with an
// automatic switch to Bland's rule when the objective stalls, which
// guarantees termination on degenerate problems.
//
// The production implementation (Options.Method == MethodRevised, the
// default) is a revised simplex: the constraint matrix is kept in a
// read-only compressed sparse column form built once per Problem, the basis
// inverse is a product-form eta file (one eta column per pivot), and each
// pivot performs a BTRAN solve for the duals, prices candidates as sparse
// column dot products, FTRANs the entering column for the ratio test, and
// updates the basic values in O(rows) — so pivot cost is proportional to the
// nonzeros touched instead of the O(rows x cols) dense Gauss-Jordan update.
// The eta file is rebuilt from scratch (refactorized) after RefactorEvery
// pivots or when the basic values drift from B^-1 b beyond tolerance, which
// bounds both its length and the accumulated round-off.  The paper's
// synchronized-schedule LPs are about 1% dense, which makes the revised path
// several times faster than the flat tableau at experiment sizes.
//
// The PR-1 flat-tableau implementation survives behind MethodFlat — one
// contiguous row-major []float64 with the artificial columns as a trailing
// index range — as the middle rung of the property-test lattice (revised vs
// flat vs the retired dense reference) and as the automatic fallback should
// a refactorization ever go numerically singular.
//
// Every working buffer of both implementations lives on a reusable Solver,
// so repeated solves — the experiment sweeps solve hundreds of similar-sized
// programs — run without allocating in steady state.  The package-level
// Solve draws Solvers from an internal pool; Solution carries pivot,
// pricing-pass, refactorization, eta-column and allocation counters, and
// StatsSnapshot aggregates them process-wide, so performance regressions are
// observable in benchmarks and in pcbench's JSON trajectory files.
//
// Numbers are float64 with explicit tolerances; the prefetching LPs are
// small and well scaled, and the experiment harness cross-checks the LP
// results against an exhaustive search, so this precision is sufficient.
package lp
