package lp

import "sync/atomic"

// Fault describes one injected numerical failure inside the revised simplex.
// Faults exist for tests (package faultinject drives them through
// SetFaultHook): they make the fast engine wrong on demand so the
// verification layer and the self-healing cascade can be proven against real
// numerical damage rather than trusted on inspection.  A nil *Fault injects
// nothing; the zero value injects nothing either.
type Fault struct {
	// CorruptFactor corrupts the factored basis inverse at every phase-two
	// refactorization of the solve: the selected pivot entries of the LU
	// diagonal (BasisLU) or the eta file (BasisEta) are scaled by
	// 1+CorruptScale.  Re-applying at every refactorization makes the fault
	// sticky — the drift check and the periodic refactorization self-heal a
	// one-shot corruption, so a transient flip would often be absorbed
	// silently before it could reach the solution.  Phase one is left clean
	// so the damage reaches the optimality certificate (a corrupted phase
	// one merely misreports infeasibility, which the cascade distrusts
	// anyway but which exercises nothing).
	CorruptFactor bool
	// CorruptEntry selects the elimination index whose factor entry is
	// corrupted (reduced modulo the factor length); -1 corrupts every entry,
	// which guarantees the damage reaches the basic values instead of
	// depending on one pivot's flow.
	CorruptEntry int
	// CorruptScale is the relative size of the corruption (0 means 0.5).
	CorruptScale float64
	// PerturbPivot scales every pivot element by 1+PerturbPivot before the
	// basis update, poisoning both the update eta and the basic values.
	PerturbPivot float64
	// CorruptObjective corrupts the reported objective value of an Optimal
	// revised solve at extraction time (the X vector stays intact), modelling
	// damage to the result after the arithmetic finished.  Unlike factor
	// corruption — whose phase-two damage can surface as an untrusted
	// terminal status or a singular basis instead of a bad certificate —
	// this fault is guaranteed to be caught by Verify's objective
	// recomputation on every problem, which makes it the deterministic
	// driver for the verification-failure path.
	CorruptObjective bool
	// ForceSingular makes every refactorization of the solve report
	// errSingularBasis, exercising the singular-basis recovery paths.
	ForceSingular bool
	// PivotBudget overrides the solve's pivot budget when positive; a budget
	// of 1 exhausts immediately, converting the solve into StatusIterLimit
	// (and, under Options.Cascade, into a typed PivotBudgetError once every
	// rung has exhausted it).
	PivotBudget int
}

// armed reports whether a fault arming CorruptFactor or ForceSingular wants
// an aggressive refactorization schedule: refactorizing after every pivot
// makes either fault bite on the first pivot instead of depending on the
// solve happening to refactorize, so an armed fault is deterministically
// effective.
func (f *Fault) armed() bool {
	return f != nil && (f.CorruptFactor || f.ForceSingular)
}

// apply corrupts the factor entries selected by the fault.
func (f *Fault) apply(factor []float64) {
	if len(factor) == 0 {
		return
	}
	scale := 1 + f.CorruptScale
	if f.CorruptScale == 0 {
		scale = 1.5
	}
	if f.CorruptEntry >= 0 {
		factor[f.CorruptEntry%len(factor)] *= scale
		return
	}
	for i := range factor {
		factor[i] *= scale
	}
}

// FaultPlan maps a cascade rung (0 = the configured engine, rising through
// the downgrade ladder of Options.Cascade) to the fault injected into that
// rung's solve, or nil for a clean solve.  Returning a fault for rung 0 only
// is the usual shape: the recovery rungs then reproduce the clean result.
type FaultPlan func(rung int) *Fault

type faultHookFunc func() FaultPlan

var faultHook atomic.Pointer[faultHookFunc]

// SetFaultHook installs a process-wide hook consulted once per top-level
// Solver solve; the returned FaultPlan (nil = no faults) governs that
// solve's cascade rungs.  Passing nil removes the hook.  Test-only: the hook
// is global because the service's solvers are owned by its shards.
func SetFaultHook(fn func() FaultPlan) {
	if fn == nil {
		faultHook.Store(nil)
		return
	}
	f := faultHookFunc(fn)
	faultHook.Store(&f)
}

// loadFaultPlan fetches this solve's fault plan from the hook (nil when no
// hook is installed or the hook declines to fault this solve).
func loadFaultPlan() FaultPlan {
	fp := faultHook.Load()
	if fp == nil {
		return nil
	}
	return (*fp)()
}
