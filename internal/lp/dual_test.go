package lp_test

// Tests for the incremental-solve machinery: the dual simplex warm path
// (Options.Dual / Solver.SolveDualFrom) and the true Forrest–Tomlin update
// (Options.Update == UpdateFT).  The dual tests build extended problems the
// way a trace extension does — appended variables, appended rows, old rows
// gaining only new columns (Problem.ExtendConstraint) — and pin the warm
// re-solve to a cold solve of the same problem; the FT tests pin the updated
// factors against the frozen-factor default across the engine grid.

import (
	"math"
	"math/rand"
	"testing"

	"pfcache/internal/lp"
)

// extendProblem grows p by appended variables and rows the way a trace
// extension does, using the optimal X of the base solve to steer how many of
// the new rows violate the old basis: each "violated" row is an equality the
// old solution misses by 1 (its crash artificial starts positive), each
// "satisfied" row is a loose inequality.  Old rows touched gain only new
// columns.  Returns the indices of the new variables.
func extendProblem(p *lp.Problem, x []float64, newVars, violated, satisfied int, rng *rand.Rand) []int {
	added := make([]int, 0, newVars)
	for v := 0; v < newVars; v++ {
		added = append(added, p.AddVariable(rng.Float64()*2))
	}
	for r := 0; r < violated; r++ {
		j := rng.Intn(len(x))
		nv := added[rng.Intn(len(added))]
		p.AddConstraint([]lp.Coef{{Var: j, Value: 1}, {Var: nv, Value: 1}}, lp.EQ, x[j]+1)
	}
	for r := 0; r < satisfied; r++ {
		coeffs := make([]lp.Coef, 0, len(added))
		for _, nv := range added {
			if rng.Float64() < 0.7 {
				coeffs = append(coeffs, lp.Coef{Var: nv, Value: 1 + rng.Float64()})
			}
		}
		if len(coeffs) == 0 {
			coeffs = append(coeffs, lp.Coef{Var: added[0], Value: 1})
		}
		p.AddConstraint(coeffs, lp.LE, 10+rng.Float64())
	}
	// A few old rows gain a fresh column with a zero-influence coefficient
	// pattern: the column is new, so the old basis matrix is untouched.
	if cons := p.NumConstraints() - violated - satisfied; cons > 0 {
		for k := 0; k < 2 && k < cons; k++ {
			i := rng.Intn(cons)
			p.ExtendConstraint(i, []lp.Coef{{Var: added[rng.Intn(len(added))], Value: rng.Float64()}})
		}
	}
	return added
}

// dualEngineGrid is the engine grid the dual warm path must hold on.
var dualEngineGrid = []lp.Options{
	{Pricing: lp.PricingSteepestEdge, Basis: lp.BasisLU},
	{Pricing: lp.PricingSteepestEdge, Basis: lp.BasisLU, Update: lp.UpdateFT},
	{Pricing: lp.PricingSteepestEdge, Basis: lp.BasisEta},
	{Pricing: lp.PricingDantzig, Basis: lp.BasisLU},
	{Pricing: lp.PricingDantzig, Basis: lp.BasisLU, Update: lp.UpdateFT},
	{Pricing: lp.PricingDantzig, Basis: lp.BasisEta},
}

// TestDualResolveMatchesColdRandom extends random base problems and requires
// the dual warm re-solve to agree with a cold solve of the same extended
// problem — same status, same objective, feasible X — across the engine
// grid, including extensions that leave the problem infeasible.
func TestDualResolveMatchesColdRandom(t *testing.T) {
	for gi, grid := range dualEngineGrid {
		rng := rand.New(rand.NewSource(4242 + int64(gi)))
		warmSolver, coldSolver := lp.NewSolver(), lp.NewSolver()
		dualStarts := 0
		for trial := 0; trial < 120; trial++ {
			p, _ := randomProblem(rng)
			opts := grid
			opts.CaptureBasis = true
			base, err := warmSolver.Solve(p, opts)
			if err != nil {
				t.Fatalf("grid %d trial %d: base: %v", gi, trial, err)
			}
			if base.Status != lp.StatusOptimal {
				continue
			}
			infeasible := trial%5 == 4
			if infeasible {
				// An equality over fresh non-negative columns with a negative
				// RHS cannot be satisfied.
				nv := p.AddVariable(0)
				p.AddConstraint([]lp.Coef{{Var: nv, Value: 1}}, lp.EQ, -3)
			} else {
				extendProblem(p, base.X, 1+rng.Intn(3), rng.Intn(3), rng.Intn(3), rng)
			}
			warm, err := warmSolver.SolveDualFrom(p, grid, base.Basis)
			if err != nil {
				t.Fatalf("grid %d trial %d: warm: %v", gi, trial, err)
			}
			cold, err := coldSolver.Solve(p, grid)
			if err != nil {
				t.Fatalf("grid %d trial %d: cold: %v", gi, trial, err)
			}
			if warm.Status != cold.Status {
				t.Fatalf("grid %d trial %d: status warm=%v cold=%v", gi, trial, warm.Status, cold.Status)
			}
			if warm.Status == lp.StatusOptimal {
				if math.Abs(warm.Objective-cold.Objective) > 1e-6 {
					t.Fatalf("grid %d trial %d: objective warm=%g cold=%g", gi, trial, warm.Objective, cold.Objective)
				}
				if viol, idx := p.Violation(warm.X); viol > 1e-6 {
					t.Fatalf("grid %d trial %d: warm X violates constraint %d by %g", gi, trial, idx, viol)
				}
			}
			if warm.DualIterations > 0 {
				dualStarts++
			}
		}
		if dualStarts == 0 {
			t.Fatalf("grid %d: no trial exercised a dual pivot", gi)
		}
	}
}

// TestDualResolveE7Extension extends the E7-sized paper LP by a handful of
// rows/columns and requires the dual warm re-solve to match the cold solve
// while performing a small fraction of its pivots — the O(pivots-changed)
// property the incremental serving path is built on.
func TestDualResolveE7Extension(t *testing.T) {
	for gi, grid := range dualEngineGrid {
		p := buildE7SizedProblem(t)
		warmSolver, coldSolver := lp.NewSolver(), lp.NewSolver()
		opts := grid
		opts.CaptureBasis = true
		base, err := warmSolver.Solve(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		if base.Status != lp.StatusOptimal {
			t.Fatalf("grid %d: base status %v", gi, base.Status)
		}
		rng := rand.New(rand.NewSource(7))
		extendProblem(p, base.X, 3, 2, 2, rng)
		warm, err := warmSolver.SolveDualFrom(p, grid, base.Basis)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := coldSolver.Solve(p, grid)
		if err != nil {
			t.Fatal(err)
		}
		if warm.Status != lp.StatusOptimal || cold.Status != lp.StatusOptimal {
			t.Fatalf("grid %d: statuses warm=%v cold=%v", gi, warm.Status, cold.Status)
		}
		if math.Abs(warm.Objective-cold.Objective) > 1e-6 {
			t.Fatalf("grid %d: objective warm=%g cold=%g", gi, warm.Objective, cold.Objective)
		}
		if !warm.WarmStarted {
			t.Fatalf("grid %d: extension re-solve did not transplant the basis", gi)
		}
		if 2*warm.Iterations > cold.Iterations {
			t.Fatalf("grid %d: warm re-solve used %d pivots, cold %d — want at least 2x fewer",
				gi, warm.Iterations, cold.Iterations)
		}
	}
}

// TestDualHostileBasis feeds the dual path forged prefix-shaped snapshots —
// duplicate columns, out-of-range columns, donor artificials — and requires
// a safe fallback to the cold result every time.
func TestDualHostileBasis(t *testing.T) {
	p, _ := randomProblem(rand.New(rand.NewSource(5)))
	coldSolver := lp.NewSolver()
	cold, err := coldSolver.Solve(p, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rows := p.NumConstraints()
	senses := make([]lp.Sense, rows)
	for i := 0; i < rows; i++ {
		senses[i] = p.Constraint(i).Sense
	}
	hostile := [][]int{
		make([]int, rows),     // all zeros: duplicates unless rows == 1
		{int(^uint(0) >> 1)},  // out of range
		{-1},                  // negative
		{p.NumVars() + 10000}, // far past any slack
	}
	for hi, cols := range hostile {
		if len(cols) > rows {
			continue
		}
		forged := lp.ForgeWarmBasis(len(cols), p.NumVars(), cols, senses[:len(cols)])
		warmSolver := lp.NewSolver()
		warm, err := warmSolver.SolveDualFrom(p, lp.Options{}, forged)
		if err != nil {
			t.Fatalf("hostile %d: %v", hi, err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("hostile %d: status %v, cold %v", hi, warm.Status, cold.Status)
		}
		if warm.Status == lp.StatusOptimal && math.Abs(warm.Objective-cold.Objective) > 1e-6 {
			t.Fatalf("hostile %d: objective %g, cold %g", hi, warm.Objective, cold.Objective)
		}
	}
}

// TestDualCascadeVerifies runs the extension re-solve through the cascade so
// the dual warm result passes the independent certificate like any other
// solve.
func TestDualCascadeVerifies(t *testing.T) {
	p := buildE7SizedProblem(t)
	solver := lp.NewSolver()
	base, err := solver.Solve(p, lp.Options{CaptureBasis: true, Cascade: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	extendProblem(p, base.X, 2, 2, 1, rng)
	warm, err := solver.SolveDualFrom(p, lp.Options{Cascade: true}, base.Basis)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != lp.StatusOptimal {
		t.Fatalf("status %v", warm.Status)
	}
	if warm.Downgrades != 0 {
		t.Fatalf("dual warm solve fell down the cascade %d rungs", warm.Downgrades)
	}
	if err := lp.Verify(p, warm); err != nil {
		t.Fatalf("certificate: %v", err)
	}
}

// TestFTMatchesDefaultRandom solves the random lattice with the
// Forrest–Tomlin update against the flat reference, mirroring
// TestSolversMatchRandom, with a small refactorization interval variant so
// updated factors both accumulate long spike chains and survive frequent
// re-initialisation.
func TestFTMatchesDefaultRandom(t *testing.T) {
	for _, every := range []int{0, 2} {
		rng := rand.New(rand.NewSource(321))
		rev, flat := lp.NewSolver(), lp.NewSolver()
		for trial := 0; trial < 200; trial++ {
			p, _ := randomProblem(rng)
			solveAllThree(t, rev, flat, p, lp.Options{Update: lp.UpdateFT, RefactorEvery: every})
		}
	}
}

// TestFTLongUpdateChain forces the E7-sized solve to absorb long
// Forrest–Tomlin chains (no periodic refactorization to hide behind) and
// pins status and objective to the default engine plus the certificate.
func TestFTLongUpdateChain(t *testing.T) {
	p := buildE7SizedProblem(t)
	ref, err := lp.NewSolver().Solve(p, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ft, err := lp.NewSolver().Solve(p, lp.Options{Update: lp.UpdateFT, RefactorEvery: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if ft.Status != ref.Status {
		t.Fatalf("status ft=%v ref=%v", ft.Status, ref.Status)
	}
	if math.Abs(ft.Objective-ref.Objective) > 1e-6 {
		t.Fatalf("objective ft=%g ref=%g", ft.Objective, ref.Objective)
	}
	if ft.FTUpdates < 50 {
		t.Fatalf("expected a long Forrest–Tomlin chain, got %d updates", ft.FTUpdates)
	}
	if err := lp.Verify(p, ft); err != nil {
		t.Fatalf("certificate: %v", err)
	}
}

// BenchmarkDualResolveE7Extension measures the incremental re-solve after an
// E7-sized extension: capture once (untimed), then per op extend-shaped
// problems are re-solved dual-warm.  Compare with
// BenchmarkRevisedSolveE7Size for the cold cost the warm path avoids.
func BenchmarkDualResolveE7Extension(b *testing.B) {
	p := buildE7SizedProblem(b)
	solver := lp.NewSolver()
	base, err := solver.Solve(p, lp.Options{CaptureBasis: true})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	extendProblem(p, base.X, 3, 2, 2, rng)
	if _, err := solver.SolveDualFrom(p, lp.Options{}, base.Basis); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.SolveDualFrom(p, lp.Options{}, base.Basis); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRevisedSolveFTE7Size is the Forrest–Tomlin engine on the E7-sized
// problem, the updated-factor counterpart of BenchmarkRevisedSolveE7Size.
func BenchmarkRevisedSolveFTE7Size(b *testing.B) {
	benchSolve(b, lp.Options{Update: lp.UpdateFT})
}
