package lp

import (
	"fmt"
	"math"
)

// Pricing selects the rule the revised simplex uses to pick the entering
// column.  MethodFlat always prices with Dantzig's rule.
type Pricing int

// Pricing rules.
const (
	// PricingSteepestEdge (the default) is projected steepest edge with
	// incrementally updated reference weights: the entering column maximises
	// rc_j^2 / gamma_j, where gamma_j approximates 1 + |B^-1 A_j|^2.  The
	// weights are maintained Devex-style (updated from the pivot row for the
	// candidate list, exact for the entering column) and the whole reference
	// framework is reset to unit weights when the entering column's stored
	// weight has drifted too far from its exact value.
	PricingSteepestEdge Pricing = iota
	// PricingDantzig is the PR-1/PR-2 rule — most negative reduced cost over
	// a candidate list — kept as the reference implementation.
	PricingDantzig
)

// String names the pricing rule.
func (p Pricing) String() string {
	switch p {
	case PricingSteepestEdge:
		return "steepest-edge"
	case PricingDantzig:
		return "dantzig"
	default:
		return fmt.Sprintf("pricing(%d)", int(p))
	}
}

// ParsePricing resolves a pricing-rule name ("steepest-edge" or "dantzig") as
// used by command line flags.
func ParsePricing(name string) (Pricing, error) {
	switch name {
	case "steepest-edge", "steepest":
		return PricingSteepestEdge, nil
	case "dantzig":
		return PricingDantzig, nil
	default:
		return 0, fmt.Errorf("lp: unknown pricing rule %q (want steepest-edge or dantzig)", name)
	}
}

// seCandListSize bounds the steepest-edge candidate list.  Refilling it is a
// pure scan of the maintained reduced-cost vector (no matrix work), so the
// list can be much larger than the Dantzig path's candListSize — surviving
// longer between refills on heavily degenerate phases where pivots knock
// many candidates' reduced costs nonnegative.
const seCandListSize = 16

// seDriftRatio bounds how far an entering column's stored reference weight
// may deviate from its exact value (measured when the column's FTRAN is
// computed anyway) before the whole reference framework is reset to unit
// weights — the Devex-style fallback that keeps approximate weights from
// steering pricing with stale information.
const seDriftRatio = 128

// resetReference restores the steepest-edge reference framework: every
// column's weight returns to 1 (the weight of a column in the reference
// frame), forgetting any accumulated approximation.
func (r *revisedSolver) resetReference() {
	r.seResets++
	g := r.gamma[:r.cols]
	for i := range g {
		g[i] = 1
	}
}

// priceSteepest returns the entering column under steepest-edge pricing over
// the shared candidate list.  The engine keeps the whole rc vector current
// from the pivot row (see seUpdate), so scoring a candidate is two loads and
// a divide — no duals, no column dots — and when the list runs dry refilling
// it (refillSE) is a pure scan of the maintained vector.
func (r *revisedSolver) priceSteepest() int {
	best, bestScore := -1, 0.0
	w := 0
	for _, j := range r.cand {
		if r.inBasis[j] || r.rc[j] >= -r.tol {
			continue
		}
		r.cand[w] = j
		w++
		if score := r.rc[j] * r.rc[j] / r.gamma[j]; score > bestScore {
			bestScore, best = score, j
		}
	}
	r.cand = r.cand[:w]
	if best >= 0 {
		return best
	}
	return r.refillSE()
}

// refillSE rebuilds the candidate list with the (up to candListSize) best
// steepest-edge scores over the maintained reduced costs and returns the
// best column, or -1 when every reduced cost is within tolerance.
func (r *revisedSolver) refillSE() int {
	cand := r.cand[:0]
	best, bestScore := -1, 0.0
	worst := 0.0 // smallest score currently in a full list
	limit := r.priceLimit()
	for j := 0; j < limit; j++ {
		if r.rc[j] >= -r.tol || r.inBasis[j] {
			continue
		}
		s := r.rc[j] * r.rc[j] / r.gamma[j]
		if s > bestScore {
			bestScore, best = s, j
		}
		if len(cand) < seCandListSize {
			cand = append(cand, j)
			if len(cand) == seCandListSize {
				worst = scoreMin(r, cand)
			}
			continue
		}
		if s <= worst {
			continue
		}
		// Replace the current worst candidate.
		wi := 0
		wv := math.Inf(1)
		for k, cj := range cand {
			if v := r.rc[cj] * r.rc[cj] / r.gamma[cj]; v < wv {
				wv, wi = v, k
			}
		}
		cand[wi] = j
		worst = scoreMin(r, cand)
	}
	r.cand = cand
	return best
}

// scoreMin returns the smallest steepest-edge score in the candidate list.
func scoreMin(r *revisedSolver, cand []int) float64 {
	min := math.Inf(1)
	for _, j := range cand {
		if v := r.rc[j] * r.rc[j] / r.gamma[j]; v < min {
			min = v
		}
	}
	return min
}

// refreshRC recomputes the duals and the full reduced-cost vector from
// scratch, resetting any error the incremental updates accumulated.
func (r *revisedSolver) refreshRC() {
	r.computeDuals()
	r.fullPrice()
}

// enterWeight returns the exact projected steepest-edge weight of the
// entering column, 1 + |B^-1 A_enter|^2 (the squared norm was accumulated by
// the ratio test's sweep over the FTRAN'd column), and resets the reference
// framework when the stored weight has drifted beyond seDriftRatio — the
// "weights drift" fallback.
func (r *revisedSolver) enterWeight(enter int) float64 {
	exact := 1 + r.alphaNorm
	if stored := r.gamma[enter]; exact > seDriftRatio*stored || stored > seDriftRatio*exact {
		r.resetReference()
	}
	r.gamma[enter] = exact
	return exact
}

// priceBlandSE is Bland's rule over the maintained reduced costs: the
// smallest-index eligible column with negative reduced cost, or -1 when none
// remains.  Unlike priceBland it costs no duals BTRAN and no pricing sweep —
// the steepest-edge engine keeps rc current through seUpdate even for
// Bland-selected pivots.
func (r *revisedSolver) priceBlandSE() int {
	limit := r.priceLimit()
	for j := 0; j < limit; j++ {
		if !r.inBasis[j] && r.rc[j] < -r.tol {
			return j
		}
	}
	return -1
}

// seUpdate propagates one pivot through the steepest-edge engine's state
// before the basis changes: one BTRAN of the leaving row's unit vector
// yields rho with B^-T e_r, whose support spans the pivot row
// alpha_rj = rho · A_j.  The pivot row is assembled sparsely — only the
// A-rows in rho's support are read, through the CSC matrix's CSR view, into
// an epoch-stamped accumulator — and only the columns it actually touches
// get the reduced-cost recurrence (rc_j -= (rc_q/alpha_rq) * alpha_rj) and
// the Devex weight update (w_j = max(w_j, (alpha_rj/alpha_rq)^2 * w_q)).
// This one sparse pass replaces the per-pivot duals BTRAN and candidate
// repricing of the Dantzig path, and costs O(pivot-row fill), not
// O(matrix nonzeros).  gq is the entering column's exact weight from
// enterWeight.
func (r *revisedSolver) seUpdate(enter, leave int, gq float64) {
	alphaR := r.alpha[leave]
	leaving := r.basis[leave]
	if w := gq / (alphaR * alphaR); w > 1 {
		r.gamma[leaving] = w
	} else {
		r.gamma[leaving] = 1
	}
	clear(r.rho)
	r.rho[leave] = 1
	r.btranB(r.rho)
	mult := r.rc[enter] / alphaR
	inv := 1 / alphaR
	phase1 := r.phase == 1
	cm := r.m
	r.accEpoch++
	epoch := r.accEpoch
	touched := r.touched[:0]
	for i, v := range r.rho {
		if v == 0 {
			continue
		}
		// Structural columns accumulate across support rows.
		for s := cm.rowPtr[i]; s < cm.rowPtr[i+1]; s++ {
			j := cm.colIdxR[s]
			if r.accMark[j] == epoch {
				r.accVal[j] += v * cm.valR[s]
				continue
			}
			r.accMark[j] = epoch
			r.accVal[j] = v * cm.valR[s]
			touched = append(touched, j)
		}
		// Slack and artificial columns are row singletons: their pivot-row
		// entry comes from this support row alone.
		if sj := r.rowSlack[i]; sj >= 0 {
			if j := r.numVars + int(sj); !r.inBasis[j] {
				ab := r.slackSign[sj] * v
				r.rc[j] -= mult * ab
				ab *= inv
				if w := ab * ab * gq; w > r.gamma[j] {
					r.gamma[j] = w
				}
			}
		}
		if aj := r.rowArt[i]; phase1 && aj >= 0 {
			if j := r.artLo + int(aj); !r.inBasis[j] {
				ab := v
				r.rc[j] -= mult * ab
				ab *= inv
				if w := ab * ab * gq; w > r.gamma[j] {
					r.gamma[j] = w
				}
			}
		}
	}
	r.touched = touched
	for _, j := range touched {
		if r.inBasis[j] {
			continue
		}
		ab := r.accVal[j]
		r.rc[j] -= mult * ab
		ab *= inv
		if w := ab * ab * gq; w > r.gamma[j] {
			r.gamma[j] = w
		}
	}
	// The entering column turns basic (its rc is pinned to zero by the basic
	// skip above on later sweeps); the leaving column turns nonbasic with the
	// textbook post-pivot reduced cost -rc_q/alpha_rq.
	r.rc[enter] = 0
	r.rc[leaving] = -mult
}
