package lp

// WarmBasis is an opaque snapshot of a simplex basis, captured from an
// optimal solve (Options.CaptureBasis, Solution.Basis) and fed back into a
// later solve of a same-shaped problem (Solver.SolveFrom, Options.WarmStart).
//
// A warm start replays the snapshot instead of the phase-1 crash basis: the
// basis is refactorized for the new problem's coefficients and, when it is
// nonsingular and primal feasible, the solve proceeds straight to phase two
// from it — which costs zero pivots when the snapshot is already optimal for
// the new problem (the common case: the near-identical LPs a sweep solves
// row after row).  Whenever the snapshot does not transfer — the dimensions
// or constraint senses changed, the refactorization went singular, or the
// replayed basis is infeasible — the solve silently falls back to the
// ordinary cold start, so warm starting is always safe to request.
type WarmBasis struct {
	rows    int
	numVars int
	cols    []int   // basis column per constraint row
	senses  []Sense // per-row effective senses (shared, read-only)
}

// Rows returns the number of constraint rows the snapshot was taken from.
func (b *WarmBasis) Rows() int { return b.rows }

// matches reports whether the snapshot's shape equals the standard form the
// given revised solver has loaded: same row count, variable count and per-row
// effective senses (which fix the slack/artificial column layout).
func (b *WarmBasis) matches(r *revisedSolver) bool {
	if b == nil || b.rows != r.rows || b.numVars != r.numVars || len(b.cols) != r.rows {
		return false
	}
	if len(b.senses) != len(r.m.sense) {
		return false
	}
	for i, s := range b.senses {
		if s != r.m.sense[i] {
			return false
		}
	}
	return true
}

// snapshotInto overwrites dst with the solver's current basis, reusing dst's
// backing storage.  The sense slice is shared with the problem's immutable
// CSC form, not copied.
func (r *revisedSolver) snapshotInto(dst *WarmBasis) {
	dst.rows = r.rows
	dst.numVars = r.numVars
	dst.cols = append(dst.cols[:0], r.basis...)
	dst.senses = r.m.sense
}

// captureBasis allocates a fresh snapshot of the solver's current basis (for
// Solution.Basis, which outlives the solver's reusable buffers).
func (r *revisedSolver) captureBasis() *WarmBasis {
	b := &WarmBasis{}
	r.snapshotInto(b)
	return b
}

// installBasis replaces the crash basis installed by load with the
// snapshot's columns and rebuilds the factorization and basic values.  It
// reports whether the snapshot transferred: false means the caller must
// reload and cold-start (the basis was out of shape, carried an artificial,
// was singular for the new coefficients, or not primal feasible).
func (r *revisedSolver) installBasis(from *WarmBasis) bool {
	if !from.matches(r) {
		return false
	}
	for _, c := range from.cols {
		// Artificial columns are rejected outright, not just when their
		// value is positive: the warm path jumps straight to phase two,
		// which neither prices artificials out nor watches their values, so
		// a zero-valued artificial from the donor's redundant row could
		// silently drift positive on a problem where that row is binding —
		// an infeasible point reported optimal.  (Shapes match, so the
		// donor's artificial range is exactly [artLo, cols).)
		if c < 0 || c >= r.artLo {
			return false
		}
	}
	clear(r.inBasis)
	for i, c := range from.cols {
		r.basis[i] = c
		r.inBasis[c] = true
	}
	if err := r.refactorize(); err != nil {
		return false
	}
	// The replayed basis must describe a basic feasible solution of the new
	// problem: non-negative basic values.
	for i, v := range r.xB {
		if v < -r.tol {
			return false
		}
		if v < 0 {
			r.xB[i] = 0
		}
	}
	return true
}
