package lp

import (
	"math"
	"math/rand"
	"testing"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if viol, idx := p.Violation(sol.X); viol > 1e-6 {
		t.Fatalf("solution violates constraint %d by %g", idx, viol)
	}
	return sol
}

// TestSimpleTwoVariable solves a classic production problem:
// maximise 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (optimum 36 at (2,6)).
func TestSimpleTwoVariable(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective(0, -3) // maximise by minimising the negation
	p.SetObjective(1, -5)
	p.AddConstraint([]Coef{{0, 1}}, LE, 4)
	p.AddConstraint([]Coef{{1, 2}}, LE, 12)
	p.AddConstraint([]Coef{{0, 3}, {1, 2}}, LE, 18)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-(-36)) > 1e-6 {
		t.Fatalf("objective = %f, want -36", sol.Objective)
	}
	if math.Abs(sol.X[0]-2) > 1e-6 || math.Abs(sol.X[1]-6) > 1e-6 {
		t.Fatalf("x = %v, want (2,6)", sol.X)
	}
}

// TestEqualityAndGE exercises equality and >= constraints:
// minimise 2x + 3y s.t. x + y = 10, x >= 3, y >= 2  (optimum 23 at (8,2)).
func TestEqualityAndGE(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective(0, 2)
	p.SetObjective(1, 3)
	p.AddConstraint([]Coef{{0, 1}, {1, 1}}, EQ, 10)
	p.AddConstraint([]Coef{{0, 1}}, GE, 3)
	p.AddConstraint([]Coef{{1, 1}}, GE, 2)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-22) > 1e-6 {
		t.Fatalf("objective = %f, want 22", sol.Objective)
	}
	if math.Abs(sol.X[0]-8) > 1e-6 || math.Abs(sol.X[1]-2) > 1e-6 {
		t.Fatalf("x = %v, want (8,2)", sol.X)
	}
}

// TestNegativeRHS checks that constraints with negative right-hand sides are
// normalised correctly: minimise x s.t. -x <= -5 means x >= 5.
func TestNegativeRHS(t *testing.T) {
	p := NewProblem(1)
	p.SetObjective(0, 1)
	p.AddConstraint([]Coef{{0, -1}}, LE, -5)
	sol := solveOK(t, p)
	if math.Abs(sol.X[0]-5) > 1e-6 {
		t.Fatalf("x = %v, want 5", sol.X)
	}
}

// TestInfeasible checks infeasibility detection.
func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.SetObjective(0, 1)
	p.AddConstraint([]Coef{{0, 1}}, LE, 1)
	p.AddConstraint([]Coef{{0, 1}}, GE, 2)
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

// TestUnbounded checks unboundedness detection: minimise -x with x only
// bounded below.
func TestUnbounded(t *testing.T) {
	p := NewProblem(1)
	p.SetObjective(0, -1)
	p.AddConstraint([]Coef{{0, 1}}, GE, 1)
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != StatusUnbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

// TestIterationLimit checks the iteration guard.
func TestIterationLimit(t *testing.T) {
	p := NewProblem(3)
	p.SetObjective(0, -1)
	p.SetObjective(1, -1)
	p.SetObjective(2, -1)
	p.AddConstraint([]Coef{{0, 1}, {1, 1}, {2, 1}}, LE, 10)
	p.AddConstraint([]Coef{{0, 1}, {1, 2}}, LE, 8)
	p.AddConstraint([]Coef{{1, 1}, {2, 3}}, LE, 9)
	sol, err := Solve(p, Options{MaxIterations: 1})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != StatusIterLimit && sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
}

// TestDegenerateProblem solves a problem with many redundant constraints
// (heavy degeneracy) to exercise the Bland's-rule fallback.
func TestDegenerateProblem(t *testing.T) {
	p := NewProblem(3)
	p.SetObjective(0, -0.75)
	p.SetObjective(1, 150)
	p.SetObjective(2, -0.02)
	// A classic cycling-prone example (Beale) padded with redundant rows.
	p.AddConstraint([]Coef{{0, 0.25}, {1, -60}, {2, -0.04}}, LE, 0)
	p.AddConstraint([]Coef{{0, 0.5}, {1, -90}, {2, -0.02}}, LE, 0)
	p.AddConstraint([]Coef{{2, 1}}, LE, 1)
	for i := 0; i < 5; i++ {
		p.AddConstraint([]Coef{{2, 1}}, LE, 1)
	}
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-(-0.05)) > 1e-6 {
		t.Fatalf("objective = %f, want -0.05", sol.Objective)
	}
}

// TestTransportationProblem solves a small balanced transportation problem
// whose optimum is known to be integral.
func TestTransportationProblem(t *testing.T) {
	// Two suppliers (10, 15), three consumers (5, 10, 10).
	// Costs: s0: [2 4 5], s1: [3 1 7].  Optimal cost: ship s0->c0 5, s0->c2 5,
	// s1->c1 10, s1->c2 5 => 5*2+5*5+10*1+5*7 = 80.
	cost := []float64{2, 4, 5, 3, 1, 7}
	p := NewProblem(6)
	for i, c := range cost {
		p.SetObjective(i, c)
	}
	p.AddConstraint([]Coef{{0, 1}, {1, 1}, {2, 1}}, EQ, 10)
	p.AddConstraint([]Coef{{3, 1}, {4, 1}, {5, 1}}, EQ, 15)
	p.AddConstraint([]Coef{{0, 1}, {3, 1}}, EQ, 5)
	p.AddConstraint([]Coef{{1, 1}, {4, 1}}, EQ, 10)
	p.AddConstraint([]Coef{{2, 1}, {5, 1}}, EQ, 10)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-75) > 1e-6 {
		t.Fatalf("objective = %f, want 75", sol.Objective)
	}
}

// TestRedundantEqualities checks that linearly dependent equality constraints
// do not break phase one.
func TestRedundantEqualities(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 1)
	p.AddConstraint([]Coef{{0, 1}, {1, 1}}, EQ, 4)
	p.AddConstraint([]Coef{{0, 2}, {1, 2}}, EQ, 8) // redundant
	p.AddConstraint([]Coef{{0, 1}}, GE, 1)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-4) > 1e-6 {
		t.Fatalf("objective = %f, want 4", sol.Objective)
	}
}

// TestRandomFeasibleProblems generates random LPs with a known feasible point
// and checks that the solver finds a solution at least as good and feasible.
func TestRandomFeasibleProblems(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		nVars := 2 + rng.Intn(6)
		nCons := 1 + rng.Intn(8)
		p := NewProblem(nVars)
		x0 := make([]float64, nVars)
		for i := range x0 {
			x0[i] = rng.Float64() * 5
			p.SetObjective(i, rng.Float64()*4-1)
		}
		for c := 0; c < nCons; c++ {
			coeffs := make([]Coef, 0, nVars)
			lhs := 0.0
			for v := 0; v < nVars; v++ {
				if rng.Float64() < 0.6 {
					val := rng.Float64()*4 - 2
					coeffs = append(coeffs, Coef{Var: v, Value: val})
					lhs += val * x0[v]
				}
			}
			if len(coeffs) == 0 {
				continue
			}
			switch rng.Intn(3) {
			case 0:
				p.AddConstraint(coeffs, LE, lhs+rng.Float64())
			case 1:
				p.AddConstraint(coeffs, GE, lhs-rng.Float64())
			default:
				p.AddConstraint(coeffs, EQ, lhs)
			}
		}
		sol, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		switch sol.Status {
		case StatusOptimal:
			if viol, idx := p.Violation(sol.X); viol > 1e-6 {
				t.Fatalf("trial %d: violation %g at constraint %d", trial, viol, idx)
			}
			if sol.Objective > p.Value(x0)+1e-6 {
				t.Fatalf("trial %d: objective %f worse than known feasible point %f", trial, sol.Objective, p.Value(x0))
			}
		case StatusUnbounded:
			// Possible since objectives may be negative; fine.
		default:
			t.Fatalf("trial %d: unexpected status %v (the problem is feasible by construction)", trial, sol.Status)
		}
	}
}

// TestProblemAccessorsAndPanics exercises the Problem API.
func TestProblemAccessorsAndPanics(t *testing.T) {
	p := NewProblem(2)
	if p.NumVars() != 2 || p.NumConstraints() != 0 {
		t.Fatalf("unexpected sizes")
	}
	v := p.AddVariable(3)
	if v != 2 || p.Objective(2) != 3 {
		t.Fatalf("AddVariable failed")
	}
	idx := p.AddConstraint([]Coef{{0, 1}, {0, 2}, {1, 0}}, LE, 5)
	c := p.Constraint(idx)
	if len(c.Coeffs) != 1 || c.Coeffs[0].Value != 3 {
		t.Fatalf("coefficients not merged: %+v", c)
	}
	if got := p.Value([]float64{1, 1, 2}); got != 6 {
		t.Fatalf("Value = %f", got)
	}
	if viol, _ := p.Violation([]float64{-1, 0, 0}); viol < 1 {
		t.Fatalf("negative variable not flagged as violation")
	}
	for _, s := range []Sense{LE, EQ, GE, Sense(9)} {
		if s.String() == "" {
			t.Errorf("empty sense name")
		}
	}
	for _, s := range []Status{StatusOptimal, StatusInfeasible, StatusUnbounded, StatusIterLimit, Status(9)} {
		if s.String() == "" {
			t.Errorf("empty status name")
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("expected panic for bad variable index")
			}
		}()
		p.SetObjective(99, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("expected panic for negative variable count")
			}
		}()
		NewProblem(-1)
	}()
}

// TestZeroVariableProblem checks the degenerate empty problem.
func TestZeroVariableProblem(t *testing.T) {
	p := NewProblem(0)
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != StatusOptimal || sol.Objective != 0 {
		t.Fatalf("unexpected solution %+v", sol)
	}
}
