package lp

import "math"

// This file is the symbolic half of the basis LU split: a factorization's
// value-independent skeleton (Markowitz pivot order, elimination targets,
// fill pattern) is recorded once per (problem pattern, basis) pair and then
// *replayed* against new numeric values, skipping the Markowitz machinery —
// the count buckets, the per-row column lists and the active-count
// bookkeeping that exist only to choose pivots — on every later
// refactorization of the same basis structure.
//
// The catch is that the Markowitz choices are not purely symbolic: the
// pivot-row choice applies threshold partial pivoting to the current values,
// and fill-in below luDrop is not recorded.  A blind replay against different
// values could therefore diverge from what a fresh factorization would do.
// The replay is made exact by *verifying* every value-dependent decision as
// it is replayed:
//
//   - the pivot-row selection loop is re-run against the new values and must
//     elect the recorded row;
//   - each target column's "had an update" predicate (u != 0 with live
//     multipliers) must match the recording;
//   - each fill candidate's keep/drop verdict under luDrop must match the
//     recorded bit, consumed in order.
//
// Everything else — which column pivots at each step, which columns are
// elimination targets, which entries freeze into U — is a deterministic
// function of the initial pattern plus those verified decisions, so a replay
// that passes all checks produces bit-identical factors to a fresh
// factorization (same operations in the same order), and one that fails any
// check falls back to the full factorize, which reloads the working columns
// from scratch and is untouched by the partial replay.  Callers therefore
// never observe a difference beyond the symbolic_reuses/numeric_refactors
// counters.

// luSymbolic is one recorded elimination skeleton.
type luSymbolic struct {
	rows     int
	pivRow   []int32 // per step: the elected pivot row (verified on replay)
	pivCol   []int32 // per step: the Markowitz-chosen pivot column slot
	tStart   []int32 // rows+1 offsets into tCol/tHadUpd
	tCol     []int32 // per step: elimination-target column slots, in order
	tHadUpd  []bool  // per target: whether the update loop ran (verified)
	fillKeep []bool  // per fill candidate, in order: kept vs dropped (verified)
}

func (rec *luSymbolic) reset(rows int) {
	rec.rows = rows
	rec.pivRow = rec.pivRow[:0]
	rec.pivCol = rec.pivCol[:0]
	rec.tStart = append(rec.tStart[:0], 0)
	rec.tCol = rec.tCol[:0]
	rec.tHadUpd = rec.tHadUpd[:0]
	rec.fillKeep = rec.fillKeep[:0]
}

// symCacheSize bounds the per-solver symbolic cache.  A cold solve walks
// through many transient bases, but the steady-state pattern — warm-start
// installs and periodic refactorizations of near-optimal bases — revisits a
// handful of structures, and a sweep of same-pattern instances revisits the
// same handful across members.
const symCacheSize = 16

// symEntry is one cache slot: a skeleton keyed by the problem's structural
// fingerprint plus a hash of the basis column slots.
type symEntry struct {
	probFP  uint64
	basisFP uint64
	valid   bool
	rec     luSymbolic
}

// symCache is a small round-robin-evicting map from (problem pattern, basis)
// to recorded skeletons.  Sixteen entries are scanned linearly; two uint64
// compares per entry are noise next to the factorization they gate.
type symCache struct {
	entries []*symEntry
	clock   int
}

// basisFingerprint hashes the basis column slots (FNV-1a over the column
// indices).  Combined with the problem's PatternFingerprint this identifies
// the exact structural input of a factorization.
func basisFingerprint(slots []int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, j := range slots {
		v := uint64(j)
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	return h
}

// lookup returns the valid entry for the key, or nil.
func (c *symCache) lookup(probFP, basisFP uint64, rows int) *symEntry {
	for _, e := range c.entries {
		if e.valid && e.probFP == probFP && e.basisFP == basisFP && e.rec.rows == rows {
			return e
		}
	}
	return nil
}

// slot returns a (possibly recycled) entry to record the key into.  The
// entry is invalid until the caller's factorization succeeds and it calls
// commit.
func (c *symCache) slot(probFP, basisFP uint64) *symEntry {
	var e *symEntry
	if len(c.entries) < symCacheSize {
		e = &symEntry{}
		c.entries = append(c.entries, e)
	} else {
		e = c.entries[c.clock%len(c.entries)]
		c.clock++
	}
	e.probFP = probFP
	e.basisFP = basisFP
	e.valid = false
	return e
}

// clear invalidates every entry (keeping their storage).  The cascade calls
// this when a solve's certificate fails verification: a skeleton recorded
// under suspect numerics must not vouch for future factorizations.
func (c *symCache) clear() {
	for _, e := range c.entries {
		e.valid = false
	}
}

// replay re-runs the recorded elimination against the current basis values,
// verifying every value-dependent decision.  On success the factor state
// (pivRow/pivSlot, L, U, fills) is bit-identical to what factorize would
// produce; on any mismatch it returns false and leaves cleanup to the full
// factorize the caller runs next (which reloads the columns from scratch).
func (lu *luFactor) replay(r *revisedSolver, slots []int, rec *luSymbolic) bool {
	m := r.rows
	if rec.rows != m || len(rec.pivRow) != m {
		return false
	}
	lu.grow(m, &r.allocs)
	lu.rows = m

	for i := 0; i < m; i++ {
		lu.colIdx[i] = lu.colIdx[i][:0]
		lu.colVal[i] = lu.colVal[i][:0]
		lu.rowOrder[i] = -1
		lu.rowCount[i] = 0
	}

	// Load the basis columns exactly as factorize does, minus the Markowitz
	// bookkeeping (rowCols, colCount, buckets) the recording replaces.
	for c, j := range slots {
		switch {
		case j < r.numVars:
			cm := r.m
			for s := cm.colPtr[j]; s < cm.colPtr[j+1]; s++ {
				lu.pushCol(c, cm.rowIdx[s], cm.val[s], &r.allocs)
			}
		case j < r.artLo:
			lu.pushCol(c, int32(r.slackRow[j-r.numVars]), r.slackSign[j-r.numVars], &r.allocs)
		default:
			lu.pushCol(c, int32(r.artRow[j-r.artLo]), 1, &r.allocs)
		}
		for _, row := range lu.colIdx[c] {
			lu.rowCount[row]++
		}
	}

	fillCur, tCur := 0, 0
	for k := 0; k < m; k++ {
		pc := int(rec.pivCol[k])
		idx, val := lu.colIdx[pc], lu.colVal[pc]

		// Re-run the threshold-partial-pivoting row election against the new
		// values; the recorded skeleton is only valid if it elects the same
		// row a fresh factorization would.
		maxAbs := 0.0
		for s, row := range idx {
			if lu.rowOrder[row] >= 0 {
				continue
			}
			if a := math.Abs(val[s]); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs <= luSingular {
			return false // fresh factorize will report errSingularBasis
		}
		thresh := luPivotRel * maxAbs
		pr := int32(-1)
		prCount := int32(0)
		var pv float64
		for s, row := range idx {
			if lu.rowOrder[row] >= 0 {
				continue
			}
			if math.Abs(val[s]) < thresh {
				continue
			}
			if pr < 0 || lu.rowCount[row] < prCount || (lu.rowCount[row] == prCount && row < pr) {
				pr, prCount, pv = row, lu.rowCount[row], val[s]
			}
		}
		if pr != rec.pivRow[k] {
			return false
		}

		lu.mGen++
		mRows := lu.mRows[:0]
		for s, row := range idx {
			if row == pr {
				continue
			}
			if ord := lu.rowOrder[row]; ord >= 0 {
				if len(lu.uIdx) == cap(lu.uIdx) {
					r.allocs++
				}
				lu.uIdx = append(lu.uIdx, ord)
				lu.uVal = append(lu.uVal, val[s])
				continue
			}
			l := val[s] / pv
			if len(lu.lIdx) == cap(lu.lIdx) {
				r.allocs++
			}
			lu.lIdx = append(lu.lIdx, row)
			lu.lVal = append(lu.lVal, l)
			lu.mVal[row] = l
			lu.mMark[row] = lu.mGen
			mRows = append(mRows, row)
			lu.rowCount[row]--
		}
		lu.mRows = mRows
		lu.pivRow = append(lu.pivRow, pr)
		lu.pivSlot = append(lu.pivSlot, int32(pc))
		lu.uDiagInv = append(lu.uDiagInv, 1/pv)
		lu.lStart = append(lu.lStart, int32(len(lu.lIdx)))
		lu.uStart = append(lu.uStart, int32(len(lu.uIdx)))

		// Eliminate the recorded target columns, verifying the update
		// predicate and every fill keep/drop verdict against the recording.
		for stop := int(rec.tStart[k+1]); tCur < stop; tCur++ {
			c2 := int(rec.tCol[tCur])
			idx2, val2 := lu.colIdx[c2], lu.colVal[c2]
			var u float64
			found := false
			for s, row := range idx2 {
				if row == pr {
					u, found = val2[s], true
					break
				}
			}
			if !found {
				return false
			}
			had := u != 0 && len(mRows) > 0
			if had != rec.tHadUpd[tCur] {
				return false
			}
			if !had {
				continue
			}
			lu.pGen++
			for s, row := range idx2 {
				if lu.mMark[row] == lu.mGen && lu.rowOrder[row] < 0 {
					val2[s] -= lu.mVal[row] * u
					lu.present[row] = lu.pGen
				}
			}
			for _, row := range mRows {
				if lu.present[row] == lu.pGen {
					continue
				}
				f := -lu.mVal[row] * u
				keep := !(f < luDrop && f > -luDrop)
				if fillCur >= len(rec.fillKeep) || keep != rec.fillKeep[fillCur] {
					return false
				}
				fillCur++
				if !keep {
					continue
				}
				lu.pushCol(c2, row, f, &r.allocs)
				lu.rowCount[row]++
				lu.fills++
			}
		}

		lu.rowOrder[pr] = int32(k)
	}
	return fillCur == len(rec.fillKeep) && tCur == len(rec.tCol)
}
