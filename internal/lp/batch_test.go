package lp_test

import (
	"math"
	"math/rand"
	"testing"

	"pfcache/internal/lp"
)

// batchSweepProblems builds the property-test batch: a mix of random LPs, a
// degenerate paper-sized model (the synchronized-schedule LP has alternative
// optima at degenerate vertices), and an infeasible member placed mid-batch
// so the sweep must survive a failed member without corrupting the arenas
// the later members solve from.
func batchSweepProblems(tb testing.TB) []*lp.Problem {
	tb.Helper()
	rng := rand.New(rand.NewSource(42))
	var probs []*lp.Problem
	for i := 0; i < 4; i++ {
		p, _ := randomProblem(rng)
		probs = append(probs, p)
	}
	probs = append(probs, buildE7SizedProblem(tb))
	infeasible := lp.NewProblem(1)
	infeasible.AddConstraint([]lp.Coef{{Var: 0, Value: 1}}, lp.LE, 1)
	infeasible.AddConstraint([]lp.Coef{{Var: 0, Value: 1}}, lp.GE, 2)
	probs = append(probs, infeasible)
	for i := 0; i < 3; i++ {
		p, _ := randomProblem(rng)
		probs = append(probs, p)
	}
	return probs
}

// TestBatchSolveMatchesColdAcrossEngines pins the batch path's correctness
// contract over the full engine grid (pricing x basis) crossed with the
// warm/cold option: the first pass of a batch over distinct problems is
// bit-identical — status, iteration count, objective and every solution
// coordinate compared by their float64 bits — to solving each problem cold
// on its own fresh Solver.  The infeasible member mid-batch must fail in
// place without disturbing the members after it.
func TestBatchSolveMatchesColdAcrossEngines(t *testing.T) {
	probs := batchSweepProblems(t)
	for _, combo := range engineCombos {
		for _, warm := range []bool{false, true} {
			opts := combo.opts
			opts.WarmStart = warm
			batch := lp.NewBatch()
			sols, err := lp.BatchSolve(batch, probs, opts)
			if err != nil {
				t.Fatalf("%s warm=%v: %v", combo.name, warm, err)
			}
			if len(sols) != len(probs) {
				t.Fatalf("%s warm=%v: %d solutions for %d problems", combo.name, warm, len(sols), len(probs))
			}
			for i, p := range probs {
				ref, err := lp.NewSolver().Solve(p, opts)
				if err != nil {
					t.Fatalf("%s warm=%v prob %d ref: %v", combo.name, warm, i, err)
				}
				got := sols[i]
				if got == nil {
					t.Fatalf("%s warm=%v prob %d: nil batched solution", combo.name, warm, i)
				}
				if got.Status != ref.Status || got.Iterations != ref.Iterations {
					t.Fatalf("%s warm=%v prob %d: batched %v/%d pivots, cold %v/%d",
						combo.name, warm, i, got.Status, got.Iterations, ref.Status, ref.Iterations)
				}
				if math.Float64bits(got.Objective) != math.Float64bits(ref.Objective) {
					t.Fatalf("%s warm=%v prob %d: batched objective %x, cold %x",
						combo.name, warm, i, math.Float64bits(got.Objective), math.Float64bits(ref.Objective))
				}
				if len(got.X) != len(ref.X) {
					t.Fatalf("%s warm=%v prob %d: %d coords, cold %d", combo.name, warm, i, len(got.X), len(ref.X))
				}
				for j := range got.X {
					if math.Float64bits(got.X[j]) != math.Float64bits(ref.X[j]) {
						t.Fatalf("%s warm=%v prob %d x[%d]: batched %x, cold %x",
							combo.name, warm, i, j, math.Float64bits(got.X[j]), math.Float64bits(ref.X[j]))
					}
				}
			}
		}
	}
}

// TestBatchSolveWarmRounds re-solves the same problems through the same
// batch: every previously-optimal member must warm-start off its own pattern
// slot (terminating at the same objective), every solution must carry a
// passing certificate when verified before the next same-pattern solve, and
// under the LU basis the steady-state rounds must reuse recorded symbolic
// factorizations.  (The reuse is asserted on round three, not two: round
// one's periodic refactorizations stop a few pivots short of the optimum, so
// the optimal basis is first factorized — and recorded — by round two's warm
// refactorization, and replayed from round three on.)
func TestBatchSolveWarmRounds(t *testing.T) {
	for _, combo := range engineCombos {
		probs := batchSweepProblems(t)
		batch := lp.NewBatch()
		first, err := lp.BatchSolve(batch, probs, combo.opts)
		if err != nil {
			t.Fatalf("%s round 1: %v", combo.name, err)
		}
		firstObj := make([]float64, len(first))
		firstStatus := make([]lp.Status, len(first))
		for i, sol := range first {
			firstObj[i], firstStatus[i] = sol.Objective, sol.Status
		}
		for round := 2; round <= 3; round++ {
			reuses := 0
			for i, p := range probs {
				sol, err := batch.Solve(p, combo.opts)
				if err != nil {
					t.Fatalf("%s round %d prob %d: %v", combo.name, round, i, err)
				}
				if sol.Status != firstStatus[i] || math.Abs(sol.Objective-firstObj[i]) > 1e-9 {
					t.Fatalf("%s round %d prob %d diverged: %v/%g vs %v/%g",
						combo.name, round, i, sol.Status, sol.Objective, firstStatus[i], firstObj[i])
				}
				if firstStatus[i] == lp.StatusOptimal {
					if !sol.WarmStarted {
						t.Fatalf("%s round %d prob %d did not warm start", combo.name, round, i)
					}
					// The certificate shares the member's arena: verify it
					// inside the validity window, before the next same-pattern
					// solve.
					if verr := lp.Verify(p, sol); verr != nil {
						t.Fatalf("%s round %d prob %d failed verification: %v", combo.name, round, i, verr)
					}
				}
				reuses += sol.SymbolicReuses
			}
			if combo.opts.Basis == lp.BasisLU && round == 3 && reuses == 0 {
				t.Fatalf("%s: steady-state round replayed no recorded symbolic factorization", combo.name)
			}
			if combo.opts.Basis == lp.BasisEta && reuses != 0 {
				t.Fatalf("%s: eta basis reported %d symbolic reuses", combo.name, reuses)
			}
		}
	}
}

// TestPatternFingerprintBoundsStructure is the regression test for the cache
// aliasing fix: the pattern fingerprint must incorporate the bounds structure
// of the problem — constraint senses and right-hand-side signs, which decide
// slack/artificial column layout and signs in the solver's standard form —
// not just the CSC nonzero positions.  Two problems with identical coefficient
// patterns but different fixed/free row structure must not share a symbolic
// cache entry.
func TestPatternFingerprintBoundsStructure(t *testing.T) {
	build := func(sense lp.Sense, rhs float64, vals ...float64) *lp.Problem {
		p := lp.NewProblem(2)
		p.AddConstraint([]lp.Coef{{Var: 0, Value: vals[0]}, {Var: 1, Value: vals[1]}}, sense, rhs)
		return p
	}
	base := build(lp.LE, 1, 1, 1)

	if fp, again := base.PatternFingerprint(), base.PatternFingerprint(); fp != again {
		t.Fatalf("fingerprint not stable: %x then %x", fp, again)
	}
	if other := build(lp.LE, 1, 3, -7); base.PatternFingerprint() != other.PatternFingerprint() {
		t.Fatal("same pattern with different coefficient values must share a fingerprint")
	}
	if other := build(lp.LE, 5, 1, 1); base.PatternFingerprint() != other.PatternFingerprint() {
		t.Fatal("same pattern with a different same-sign RHS must share a fingerprint")
	}

	// An equality row has no slack column at all (a "fixed" row where the LE
	// row has a free one): aliasing these would replay a factorization whose
	// recorded elimination assumes a column that does not exist.
	if eq := build(lp.EQ, 1, 1, 1); base.PatternFingerprint() == eq.PatternFingerprint() {
		t.Fatal("LE and EQ rows with identical coefficients must not share a fingerprint")
	}
	if ge := build(lp.GE, 1, 1, 1); base.PatternFingerprint() == ge.PatternFingerprint() {
		t.Fatal("LE and GE rows with identical coefficients must not share a fingerprint")
	}
	// A negative RHS flips the row's sign normalisation (and so the slack
	// column's sign) in the solver's standard form.
	if neg := build(lp.LE, -1, 1, 1); base.PatternFingerprint() == neg.PatternFingerprint() {
		t.Fatal("positive- and negative-RHS rows must not share a fingerprint")
	}

	// Mutating the structure invalidates the cached fingerprint.
	before := base.PatternFingerprint()
	base.AddConstraint([]lp.Coef{{Var: 1, Value: 2}}, lp.LE, 3)
	if base.PatternFingerprint() == before {
		t.Fatal("adding a constraint must change the fingerprint")
	}
}

// BenchmarkBatchSolveE7Size is the batched successor of
// BenchmarkRevisedSolveWarmSweepE7Size: the same E7-size sweep (each model's
// LP solved twice per point, the lower-bound-then-plan pattern of the E8 row
// loop), routed through one persistent Batch.  In steady state every solve
// replays a recorded symbolic factorization and warm-starts from its
// pattern's basis, and the arenas make the whole sweep allocation-free
// beyond the two unavoidable allocations per solve (the Solution and its X
// vector), which scripts/allocguard.sh bounds.
func BenchmarkBatchSolveE7Size(b *testing.B) {
	models := e7SweepInstances(b)
	var probs []*lp.Problem
	for _, m := range models {
		probs = append(probs, m.Problem, m.Problem)
	}
	batch := lp.NewBatch()
	// Warm-up sweeps, untimed: the first records symbolic factorizations and
	// sizes the arenas, the rest let every capacity converge, so even
	// -benchtime 1x (the CI allocation guard) reports the steady state — two
	// allocations per solve, every refactorization a replay.
	for warmup := 0; warmup < 4; warmup++ {
		if _, err := lp.BatchSolve(batch, probs, lp.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lp.BatchSolve(batch, probs, lp.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
