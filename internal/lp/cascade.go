package lp

import "fmt"

// PivotBudgetError is the typed form of an exhausted pivot budget under
// Options.Cascade: instead of handing back a StatusIterLimit solution (the
// non-cascade contract), the cascade treats a budget exhaustion as a failed
// rung, and reports it through this error once no rung can complete — a
// cycling or injected-budget solve becomes a typed, mappable failure rather
// than a silent partial answer.
type PivotBudgetError struct {
	// Iterations is the number of pivots spent before the budget ran out.
	Iterations int
}

func (e *PivotBudgetError) Error() string {
	return fmt.Sprintf("lp: pivot budget exhausted after %d iterations", e.Iterations)
}

// CascadeExhaustedError reports that every rung of the self-healing cascade
// failed: each produced a singular basis, exhausted its pivot budget, or
// returned a solution that failed verification.  Last is the final rung's
// failure (Unwrap exposes it for errors.As/Is).
type CascadeExhaustedError struct {
	// Attempts is the number of rungs tried.
	Attempts int
	// Last is the final rung's failure.
	Last error
}

func (e *CascadeExhaustedError) Error() string {
	return fmt.Sprintf("lp: solve cascade exhausted after %d attempts: %v", e.Attempts, e.Last)
}

func (e *CascadeExhaustedError) Unwrap() error { return e.Last }

// cascadeSolve is the opt-in self-healing ladder behind Options.Cascade.
// Every Optimal result is verified against the independent certificate
// (Verify); a verification failure, singular refactorization, exhausted
// pivot budget or suspect terminal status abandons the rung and re-solves
// one step down the ladder:
//
//	rung 0  the configured engines, warm-started when a basis was offered
//	rung 1  the same engines, cold (a clean re-solve: transient numerical
//	        damage — cosmic or injected — does not repeat, and the result
//	        is bit-identical to what the configured engine computes fresh)
//	rung 2  Dantzig pricing over a pure eta file (the PR-2 reference pair)
//	rung 3  the flat dense-tableau path (the PR-1 reference, no shared
//	        machinery with the revised solver at all)
//
// A rung's Optimal solution is returned only after it verifies; a terminal
// Infeasible/Unbounded status is trusted only from the last (reference)
// rung, since a corrupted basis can misreport either.  Solution.Downgrades
// records how many rungs were abandoned; the package-wide VerifyFailures and
// CascadeFallbacks counters aggregate across solves.
func (s *Solver) cascadeSolve(p *Problem, opts Options, tol float64, warm *WarmBasis, plan FaultPlan) (*Solution, error) {
	alt := opts
	alt.Pricing = PricingDantzig
	alt.Basis = BasisEta
	rungs := [...]struct {
		opts Options
		warm *WarmBasis
		flat bool
	}{
		{opts: opts, warm: warm},
		{opts: opts},
		{opts: alt},
		{opts: opts, flat: true},
	}
	var lastErr error
	for i := range rungs {
		rg := &rungs[i]
		if i > 0 {
			stats.cascadeFalls.Add(1)
		}
		var fault *Fault
		if plan != nil {
			fault = plan(i)
		}
		ro := rg.opts
		if fault != nil && fault.PivotBudget > 0 {
			ro.MaxIterations = fault.PivotBudget
		}
		var sol *Solution
		var err error
		if rg.flat {
			sol, err = s.flat.solve(p, ro, tol)
		} else {
			s.rev.fault = fault
			sol, err = s.rev.solve(p, ro, tol, rg.warm)
			s.rev.fault = nil
		}
		switch {
		case err == errSingularBasis:
			lastErr = err
			continue
		case err != nil:
			return nil, err
		}
		switch sol.Status {
		case StatusOptimal:
			if verr := Verify(p, sol); verr != nil {
				stats.verifyFails.Add(1)
				// The basis captured alongside a failed solve is as suspect
				// as the solve: poison it so the next warm start cannot
				// replay the damage.  The symbolic skeletons recorded during
				// the failed solve are equally suspect — a downgrade clears
				// the whole cache so no later refactorization replays them.
				s.rev.haveWarm = false
				s.rev.symCache.clear()
				lastErr = verr
				continue
			}
			stats.verified.Add(1)
			sol.Downgrades = i
			recordSolve(sol)
			return sol, nil
		case StatusIterLimit:
			lastErr = &PivotBudgetError{Iterations: sol.Iterations}
			continue
		default:
			// Infeasible/Unbounded: a corrupted basis can misreport either,
			// so the status is only trusted from the final reference rung.
			if i == len(rungs)-1 {
				sol.Downgrades = i
				recordSolve(sol)
				return sol, nil
			}
			lastErr = fmt.Errorf("lp: rung %d ended %v before the reference engine confirmed it", i, sol.Status)
			continue
		}
	}
	return nil, &CascadeExhaustedError{Attempts: len(rungs), Last: lastErr}
}
