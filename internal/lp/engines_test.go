package lp_test

// Property tests pinning the revised simplex's interchangeable inner engines
// to each other: steepest-edge vs Dantzig pricing, LU vs eta basis, and
// warm-started vs cold solves.  Every combination must agree on statuses and
// objectives across the same random/degenerate/infeasible/unbounded lattice
// the implementation lattice (revised/flat/dense) is pinned on.

import (
	"math"
	"math/rand"
	"testing"

	"pfcache/internal/lp"
	"pfcache/internal/lpmodel"
	"pfcache/internal/workload"
)

// engineCombos enumerates the revised simplex's pricing x basis grid.
var engineCombos = []struct {
	name string
	opts lp.Options
}{
	{"steepest-lu", lp.Options{Pricing: lp.PricingSteepestEdge, Basis: lp.BasisLU}},
	{"steepest-eta", lp.Options{Pricing: lp.PricingSteepestEdge, Basis: lp.BasisEta}},
	{"dantzig-lu", lp.Options{Pricing: lp.PricingDantzig, Basis: lp.BasisLU}},
	{"dantzig-eta", lp.Options{Pricing: lp.PricingDantzig, Basis: lp.BasisEta}},
}

// solveAllEngines solves p with every pricing/basis combination and requires
// matching statuses and (when optimal) objectives within 1e-6 plus feasible
// solutions.  It returns the default-engine solution.
func solveAllEngines(t *testing.T, solvers []*lp.Solver, p *lp.Problem, base lp.Options) *lp.Solution {
	t.Helper()
	var ref *lp.Solution
	for i, combo := range engineCombos {
		opts := base
		opts.Pricing = combo.opts.Pricing
		opts.Basis = combo.opts.Basis
		sol, err := solvers[i].Solve(p, opts)
		if err != nil {
			t.Fatalf("%s: %v", combo.name, err)
		}
		if sol.PricingRule != opts.Pricing {
			t.Fatalf("%s: PricingRule = %v", combo.name, sol.PricingRule)
		}
		if ref == nil {
			ref = sol
			continue
		}
		if sol.Status != ref.Status {
			t.Fatalf("%s: status %v, %s got %v", combo.name, sol.Status, engineCombos[0].name, ref.Status)
		}
		if sol.Status != lp.StatusOptimal {
			continue
		}
		if math.Abs(sol.Objective-ref.Objective) > 1e-6 {
			t.Fatalf("%s: objective %g vs %g", combo.name, sol.Objective, ref.Objective)
		}
		if viol, idx := p.Violation(sol.X); viol > 1e-6 {
			t.Fatalf("%s: solution violates constraint %d by %g", combo.name, idx, viol)
		}
	}
	return ref
}

func newEngineSolvers() []*lp.Solver {
	solvers := make([]*lp.Solver, len(engineCombos))
	for i := range solvers {
		solvers[i] = lp.NewSolver()
	}
	return solvers
}

// TestEnginesMatchRandom pins all four pricing/basis combinations to each
// other on the random problem lattice.
func TestEnginesMatchRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	solvers := newEngineSolvers()
	for trial := 0; trial < 200; trial++ {
		p, _ := randomProblem(rng)
		solveAllEngines(t, solvers, p, lp.Options{})
	}
}

// TestEnginesMatchRandomSmallRefactor reruns the grid with a tiny
// refactorization interval so LU factorizations and eta reinversions happen
// mid-solve even on small problems.
func TestEnginesMatchRandomSmallRefactor(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	solvers := newEngineSolvers()
	for trial := 0; trial < 200; trial++ {
		p, _ := randomProblem(rng)
		solveAllEngines(t, solvers, p, lp.Options{RefactorEvery: 2})
	}
}

// TestEnginesMatchInfeasibleUnboundedDegenerate covers the classic terminal
// statuses on every engine combination.
func TestEnginesMatchInfeasibleUnboundedDegenerate(t *testing.T) {
	solvers := newEngineSolvers()

	infeasible := lp.NewProblem(1)
	infeasible.SetObjective(0, 1)
	infeasible.AddConstraint([]lp.Coef{{Var: 0, Value: 1}}, lp.LE, 1)
	infeasible.AddConstraint([]lp.Coef{{Var: 0, Value: 1}}, lp.GE, 2)
	if sol := solveAllEngines(t, solvers, infeasible, lp.Options{}); sol.Status != lp.StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}

	unbounded := lp.NewProblem(1)
	unbounded.SetObjective(0, -1)
	unbounded.AddConstraint([]lp.Coef{{Var: 0, Value: 1}}, lp.GE, 1)
	if sol := solveAllEngines(t, solvers, unbounded, lp.Options{}); sol.Status != lp.StatusUnbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}

	// Beale's cycling example padded with redundant rows.
	beale := lp.NewProblem(3)
	beale.SetObjective(0, -0.75)
	beale.SetObjective(1, 150)
	beale.SetObjective(2, -0.02)
	beale.AddConstraint([]lp.Coef{{Var: 0, Value: 0.25}, {Var: 1, Value: -60}, {Var: 2, Value: -0.04}}, lp.LE, 0)
	beale.AddConstraint([]lp.Coef{{Var: 0, Value: 0.5}, {Var: 1, Value: -90}, {Var: 2, Value: -0.02}}, lp.LE, 0)
	for i := 0; i < 6; i++ {
		beale.AddConstraint([]lp.Coef{{Var: 2, Value: 1}}, lp.LE, 1)
	}
	sol := solveAllEngines(t, solvers, beale, lp.Options{})
	if sol.Status != lp.StatusOptimal || math.Abs(sol.Objective-(-0.05)) > 1e-6 {
		t.Fatalf("status=%v objective=%g, want optimal -0.05", sol.Status, sol.Objective)
	}
}

// TestEnginesMatchOnPaperModels pins the engine grid on the paper's
// synchronized-schedule LPs.
func TestEnginesMatchOnPaperModels(t *testing.T) {
	solvers := newEngineSolvers()
	for trial := 0; trial < 4; trial++ {
		disks := 1 + trial%3
		seq := workload.Uniform(10, 6, int64(7000+trial))
		in := workload.Instance(seq, 3, 2, disks, workload.AssignStripe, 0)
		m, err := lpmodel.Build(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sol := solveAllEngines(t, solvers, m.Problem, lp.Options{})
		if sol.Status != lp.StatusOptimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
	}
}

// TestWarmStartIdenticalProblem replays an optimal basis on the identical
// problem: the warm solve must report WarmStarted, spend zero pivots, and
// reproduce the cold solution exactly.
func TestWarmStartIdenticalProblem(t *testing.T) {
	p := buildE7SizedProblem(t)
	solver := lp.NewSolver()
	cold, err := solver.Solve(p, lp.Options{CaptureBasis: true})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Status != lp.StatusOptimal || cold.Basis == nil {
		t.Fatalf("cold: status=%v basis=%v", cold.Status, cold.Basis)
	}
	if cold.WarmStarted {
		t.Fatal("cold solve reported WarmStarted")
	}
	warm, err := solver.SolveFrom(p, lp.Options{}, cold.Basis)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.WarmStarted {
		t.Fatal("warm solve did not use the basis")
	}
	if warm.Iterations != 0 {
		t.Fatalf("warm solve spent %d pivots on an already-optimal basis", warm.Iterations)
	}
	if warm.Status != cold.Status || math.Abs(warm.Objective-cold.Objective) > 1e-9 {
		t.Fatalf("warm solve diverged: %v/%g vs %v/%g", warm.Status, warm.Objective, cold.Status, cold.Objective)
	}
	for i := range warm.X {
		if math.Abs(warm.X[i]-cold.X[i]) > 1e-9 {
			t.Fatalf("warm X[%d] = %g, cold %g", i, warm.X[i], cold.X[i])
		}
	}
}

// TestWarmStartFallsBackAcrossShapes feeds a basis from a different-shaped
// problem and requires a silent, correct cold start.
func TestWarmStartFallsBackAcrossShapes(t *testing.T) {
	small := lp.NewProblem(2)
	small.SetObjective(0, -1)
	small.AddConstraint([]lp.Coef{{Var: 0, Value: 1}, {Var: 1, Value: 1}}, lp.LE, 4)
	solver := lp.NewSolver()
	donor, err := solver.Solve(small, lp.Options{CaptureBasis: true})
	if err != nil {
		t.Fatal(err)
	}
	p := buildE7SizedProblem(t)
	cold, err := solver.Solve(p, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := solver.SolveFrom(p, lp.Options{}, donor.Basis)
	if err != nil {
		t.Fatal(err)
	}
	if warm.WarmStarted {
		t.Fatal("warm solve claimed to use a foreign-shaped basis")
	}
	if warm.Status != cold.Status || math.Abs(warm.Objective-cold.Objective) > 1e-9 {
		t.Fatalf("fallback diverged: %v/%g vs %v/%g", warm.Status, warm.Objective, cold.Status, cold.Objective)
	}
}

// TestWarmStartRejectsArtificialBasis captures a basis that keeps a
// zero-valued artificial on a redundant row and replays it on a same-shaped
// problem where that row binds.  The snapshot must be rejected (the warm
// path never prices artificials out, so accepting it could report an
// infeasible point optimal) and the solve must fall back to a correct cold
// start.
func TestWarmStartRejectsArtificialBasis(t *testing.T) {
	donor := lp.NewProblem(2)
	donor.SetObjective(0, 1)
	donor.AddConstraint([]lp.Coef{{Var: 0, Value: 1}, {Var: 1, Value: 1}}, lp.EQ, 2)
	donor.AddConstraint([]lp.Coef{{Var: 0, Value: 1}, {Var: 1, Value: 1}}, lp.EQ, 2) // redundant duplicate
	solver := lp.NewSolver()
	donorSol, err := solver.Solve(donor, lp.Options{CaptureBasis: true})
	if err != nil {
		t.Fatal(err)
	}
	if donorSol.Status != lp.StatusOptimal {
		t.Fatalf("donor status %v", donorSol.Status)
	}

	target := lp.NewProblem(2)
	target.SetObjective(0, 1)
	target.AddConstraint([]lp.Coef{{Var: 0, Value: 1}, {Var: 1, Value: 1}}, lp.EQ, 2)
	target.AddConstraint([]lp.Coef{{Var: 0, Value: 1}, {Var: 1, Value: -1}}, lp.EQ, 1) // binding now
	cold, err := solver.Solve(target, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := solver.SolveFrom(target, lp.Options{}, donorSol.Basis)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != cold.Status || math.Abs(warm.Objective-cold.Objective) > 1e-9 {
		t.Fatalf("warm diverged: %v/%g vs cold %v/%g", warm.Status, warm.Objective, cold.Status, cold.Objective)
	}
	if viol, idx := target.Violation(warm.X); viol > 1e-6 {
		t.Fatalf("warm solution violates constraint %d by %g", idx, viol)
	}
}

// e7SweepInstances builds the warm-start sweep: E7-sized instances whose LPs
// are each solved twice per point, the pattern the E8 row loop and the
// service shards amortise with warm starts (a lower-bound solve followed by
// the planning solve of the same instance).
func e7SweepInstances(tb testing.TB) []*lpmodel.Model {
	tb.Helper()
	var models []*lpmodel.Model
	for seed := int64(900); seed < 906; seed++ {
		seq := workload.Uniform(11, 6, seed)
		in := workload.Instance(seq, 3, 2, 3, workload.AssignStripe, 0)
		m, err := lpmodel.Build(in)
		if err != nil {
			tb.Fatal(err)
		}
		models = append(models, m)
	}
	return models
}

// TestWarmStartSweepMatchesCold runs the E7-size sweep twice — every LP
// solved twice per point, first all-cold, then with the second solve
// warm-started from the first's optimal basis — and requires identical
// statuses and objectives with at least 2x fewer total simplex pivots.
func TestWarmStartSweepMatchesCold(t *testing.T) {
	models := e7SweepInstances(t)
	solver := lp.NewSolver()

	coldIters, warmIters := 0, 0
	for _, m := range models {
		first, err := solver.Solve(m.Problem, lp.Options{CaptureBasis: true})
		if err != nil {
			t.Fatal(err)
		}
		second, err := solver.Solve(m.Problem, lp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if first.Status != lp.StatusOptimal || second.Status != lp.StatusOptimal {
			t.Fatalf("cold statuses %v/%v", first.Status, second.Status)
		}
		coldIters += first.Iterations + second.Iterations

		warmFirst, err := solver.Solve(m.Problem, lp.Options{CaptureBasis: true})
		if err != nil {
			t.Fatal(err)
		}
		warmSecond, err := solver.SolveFrom(m.Problem, lp.Options{}, warmFirst.Basis)
		if err != nil {
			t.Fatal(err)
		}
		if !warmSecond.WarmStarted {
			t.Fatal("second solve did not warm start")
		}
		if warmSecond.Status != second.Status || math.Abs(warmSecond.Objective-second.Objective) > 1e-9 {
			t.Fatalf("warm sweep diverged: %v/%g vs %v/%g",
				warmSecond.Status, warmSecond.Objective, second.Status, second.Objective)
		}
		warmIters += warmFirst.Iterations + warmSecond.Iterations
	}
	if warmIters >= coldIters {
		t.Fatalf("warm sweep used %d pivots, cold %d — want strictly fewer", warmIters, coldIters)
	}
	if 2*warmIters > coldIters {
		t.Fatalf("warm sweep used %d pivots, cold %d — want at least 2x fewer", warmIters, coldIters)
	}
}

// BenchmarkRevisedSolveSteepestEdgeE7Size is the new default engine pairing
// (steepest-edge pricing over the LU basis) under its explicit name, so the
// trajectory keeps tracking it even if the defaults ever move again.
func BenchmarkRevisedSolveSteepestEdgeE7Size(b *testing.B) {
	benchSolve(b, lp.Options{Pricing: lp.PricingSteepestEdge, Basis: lp.BasisLU})
}

// BenchmarkRevisedSolveDantzigEtaE7Size is the PR-2 engine pairing (Dantzig
// pricing over the eta-file basis) — the baseline of this revision's speedup
// claim and the configuration the experiment suite pins for reproduction.
func BenchmarkRevisedSolveDantzigEtaE7Size(b *testing.B) {
	benchSolve(b, lp.Options{Pricing: lp.PricingDantzig, Basis: lp.BasisEta})
}

// BenchmarkRevisedSolveWarmSweepE7Size measures the warm-started E7-size
// sweep: per instance, a capture solve plus a warm-started re-solve (the E8
// row-loop pattern).  Compare with twice BenchmarkRevisedSolveE7Size for the
// cold cost of the same pivot work.
func BenchmarkRevisedSolveWarmSweepE7Size(b *testing.B) {
	models := e7SweepInstances(b)
	solver := lp.NewSolver()
	for _, m := range models { // warm buffers and per-problem CSC caches
		if _, err := solver.Solve(m.Problem, lp.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range models {
			first, err := solver.Solve(m.Problem, lp.Options{CaptureBasis: true})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := solver.SolveFrom(m.Problem, lp.Options{}, first.Basis); err != nil {
				b.Fatal(err)
			}
		}
	}
}
