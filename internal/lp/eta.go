package lp

// etaFile is a product-form representation of the basis inverse: one eta
// column per pivot.  Writing the FTRAN'd entering column as alpha with pivot
// row r, the pivot multiplies the current inverse on the left by E^-1, where
// E is the identity with column r replaced by alpha.  The file stores, per
// eta, the pivot row, 1/alpha_r, and the off-pivot nonzeros of alpha in flat
// arrays, so the whole file is three slices regardless of pivot count and is
// reusable across solves without allocation.
//
// With the initial basis being the identity (slack/artificial starting basis)
// or a fresh refactorization, the basis inverse is E_k^-1 ... E_1^-1 applied
// oldest-first (ftran) and its transpose applied newest-first (btran).
type etaFile struct {
	pivRow []int32
	pivInv []float64 // 1/alpha_r per eta
	start  []int32   // len(pivRow)+1 offsets into idx/val
	idx    []int32   // off-pivot row indices
	val    []float64 // off-pivot alpha values
}

// etaDrop is the absolute magnitude below which off-pivot entries are not
// recorded.  The prefetching LPs have O(1)-scaled data, so entries this small
// are floating-point noise; dropping them keeps eta columns sparse, and the
// periodic refactorization plus the drift check bound any accumulated error.
const etaDrop = 1e-12

// reset empties the file (keeping capacity).
func (e *etaFile) reset() {
	e.pivRow = e.pivRow[:0]
	e.pivInv = e.pivInv[:0]
	if cap(e.start) == 0 {
		e.start = append(e.start, 0)
	}
	e.start = e.start[:1]
	e.start[0] = 0
	e.idx = e.idx[:0]
	e.val = e.val[:0]
}

// count returns the number of eta columns in the file.
func (e *etaFile) count() int { return len(e.pivRow) }

// nonzeros returns the total number of stored off-pivot entries, the quantity
// ftran/btran cost is proportional to.
func (e *etaFile) nonzeros() int { return len(e.idx) }

// push appends the eta column of a pivot on row r with FTRAN'd entering
// column alpha.  allocs counts backing-array growth so solver reuse remains
// observable in Solution.TableauAllocs.
func (e *etaFile) push(alpha []float64, r int, allocs *int) {
	if len(e.pivRow) == cap(e.pivRow) {
		*allocs++
	}
	e.pivRow = append(e.pivRow, int32(r))
	e.pivInv = append(e.pivInv, 1/alpha[r])
	for i, v := range alpha {
		if i == r || (v < etaDrop && v > -etaDrop) {
			continue
		}
		if len(e.idx) == cap(e.idx) {
			*allocs++
		}
		e.idx = append(e.idx, int32(i))
		e.val = append(e.val, v)
	}
	e.start = append(e.start, int32(len(e.idx)))
}

// ftran applies the basis inverse to v in place: each eta, oldest first,
// scales its pivot row and subtracts the off-pivot column.  Etas whose pivot
// entry of v is zero are skipped entirely, which keeps FTRANs of sparse
// columns cheap early in the eta file.
func (e *etaFile) ftran(v []float64) {
	for k := range e.pivRow {
		r := e.pivRow[k]
		t := v[r]
		if t == 0 {
			continue
		}
		t *= e.pivInv[k]
		v[r] = t
		for s := e.start[k]; s < e.start[k+1]; s++ {
			v[e.idx[s]] -= e.val[s] * t
		}
	}
}

// btran applies the transposed basis inverse to v in place: each eta, newest
// first, replaces its pivot entry by (v_r - alpha_offpivot · v) / alpha_r.
func (e *etaFile) btran(v []float64) {
	for k := len(e.pivRow) - 1; k >= 0; k-- {
		r := e.pivRow[k]
		t := v[r]
		for s := e.start[k]; s < e.start[k+1]; s++ {
			t -= e.val[s] * v[e.idx[s]]
		}
		v[r] = t * e.pivInv[k]
	}
}
