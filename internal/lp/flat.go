package lp

import "math"

// flatSolver is the PR-1 flat-tableau two-phase primal simplex path, kept
// behind Options.Method == MethodFlat.  The tableau is one contiguous float64
// slice in row-major order (row stride cols+1, the last column holding the
// right-hand side); columns are the problem variables, then slack/surplus
// variables, then artificial variables, so artificial membership is the index
// range [artLo, cols).  All working buffers are kept between solves.
//
// Its per-pivot Gauss-Jordan update costs O(rows x cols) regardless of
// sparsity, which is why the revised path (revised.go) is the default; the
// flat path survives as the second rung of the property-test lattice and as
// the numerical fallback for a singular refactorization.
type flatSolver struct {
	p   *Problem // problem being solved (valid during solve only)
	tol float64

	rows   int // number of constraints
	cols   int // structural columns (vars + slacks + artificials)
	stride int // cols + 1; the extra column is the RHS

	numVars  int
	numSlack int
	numArt   int
	artLo    int // first artificial column; artificials are [artLo, cols)

	a     []float64 // rows*stride backing array
	basis []int     // basis[i] is the column basic in row i
	costs []float64 // cost vector of the current phase
	rc    []float64 // reduced-cost scratch for full pricing passes
	cand  []int     // candidate columns from the last full pricing pass
	plans []Sense   // per-row effective sense after RHS sign normalisation

	phase int // 1 or 2; artificial columns may enter only in phase 1

	iterations  int
	phase1Iters int
	fullPasses  int
	allocs      int
}

// solve runs the two-phase simplex on the flat tableau.
func (f *flatSolver) solve(p *Problem, opts Options, tol float64) (*Solution, error) {
	f.p = p
	defer func() { f.p = nil }() // do not retain the problem after the solve
	f.tol = tol
	f.iterations = 0
	f.phase1Iters = 0
	f.fullPasses = 0
	f.allocs = 0
	f.load(p)

	maxIter := maxIterations(opts, f.rows, f.cols)

	// Phase one: minimise the sum of artificial variables.
	if f.numArt > 0 {
		f.setPhase(1)
		status := f.optimize(maxIter)
		f.phase1Iters = f.iterations
		if status == StatusIterLimit {
			return f.solution(StatusIterLimit, p), nil
		}
		if f.objectiveValue() > tol*float64(1+f.rows) {
			return f.solution(StatusInfeasible, p), nil
		}
		f.driveOutArtificials()
	}

	// Phase two: minimise the real objective.
	f.setPhase(2)
	status := f.optimize(maxIter)
	switch status {
	case StatusIterLimit, StatusUnbounded:
		return f.solution(status, p), nil
	}
	return f.solution(StatusOptimal, p), nil
}

// load builds the flat tableau from the problem's sparse constraints.
func (f *flatSolver) load(p *Problem) {
	rows := p.NumConstraints()
	f.rows = rows
	f.numVars = p.NumVars()
	f.numSlack = 0
	f.numArt = 0
	if cap(f.plans) < rows {
		f.allocs++
		f.plans = make([]Sense, rows)
	}
	f.plans = f.plans[:rows]
	for i := 0; i < rows; i++ {
		sense := effectiveSense(p.Constraint(i))
		f.plans[i] = sense
		switch sense {
		case LE:
			f.numSlack++
		case GE:
			f.numSlack++
			f.numArt++
		case EQ:
			f.numArt++
		}
	}
	f.cols = f.numVars + f.numSlack + f.numArt
	f.stride = f.cols + 1
	f.artLo = f.numVars + f.numSlack

	f.a = grabFloats(f.a, rows*f.stride, &f.allocs)
	clear(f.a)
	f.basis = grabInts(f.basis, rows, &f.allocs)
	f.costs = grabFloats(f.costs, f.cols, &f.allocs)
	f.rc = grabFloats(f.rc, f.cols, &f.allocs)
	if f.cand == nil {
		f.allocs++
		f.cand = make([]int, 0, candListSize)
	}
	f.cand = f.cand[:0]

	slackIdx := f.numVars
	artIdx := f.artLo
	for i := 0; i < rows; i++ {
		c := p.Constraint(i)
		sense := f.plans[i]
		sign := 1.0
		if c.RHS < 0 {
			sign = -1.0
		}
		row := f.a[i*f.stride : i*f.stride+f.stride]
		for _, co := range c.Coeffs {
			row[co.Var] += sign * co.Value
		}
		row[f.cols] = sign * c.RHS
		switch sense {
		case LE:
			row[slackIdx] = 1
			f.basis[i] = slackIdx
			slackIdx++
		case GE:
			row[slackIdx] = -1
			slackIdx++
			row[artIdx] = 1
			f.basis[i] = artIdx
			artIdx++
		case EQ:
			row[artIdx] = 1
			f.basis[i] = artIdx
			artIdx++
		}
	}
}

// setPhase installs the cost vector of the given phase: phase one charges 1
// per artificial variable, phase two charges the problem objective on the
// structural variables (artificial columns are excluded from pricing
// entirely in phase two, so their cost is irrelevant).
func (f *flatSolver) setPhase(phase int) {
	f.phase = phase
	clear(f.costs)
	if phase == 1 {
		for j := f.artLo; j < f.cols; j++ {
			f.costs[j] = 1
		}
		return
	}
	for v := 0; v < f.numVars; v++ {
		f.costs[v] = f.p.Objective(v)
	}
}

// objectiveValue evaluates the current phase's cost vector at the current
// basic solution.
func (f *flatSolver) objectiveValue() float64 {
	total := 0.0
	for i := 0; i < f.rows; i++ {
		cb := f.costs[f.basis[i]]
		if cb != 0 {
			total += cb * f.a[i*f.stride+f.cols]
		}
	}
	return total
}

// priceLimit is the exclusive upper bound of columns eligible to enter the
// basis: artificial columns may enter only during phase one.
func (f *flatSolver) priceLimit() int {
	if f.phase == 1 {
		return f.cols
	}
	return f.artLo
}

// reducedCost computes the reduced cost of a single column against the
// current basis.
func (f *flatSolver) reducedCost(j int) float64 {
	r := f.costs[j]
	for i := 0; i < f.rows; i++ {
		cb := f.costs[f.basis[i]]
		if cb != 0 {
			r -= cb * f.a[i*f.stride+j]
		}
	}
	return r
}

// fullPrice runs one cache-friendly row-wise sweep computing the reduced
// cost of every column into f.rc.
func (f *flatSolver) fullPrice() {
	f.fullPasses++
	rc := f.rc
	copy(rc, f.costs)
	for i := 0; i < f.rows; i++ {
		cb := f.costs[f.basis[i]]
		if cb == 0 {
			continue
		}
		row := f.a[i*f.stride : i*f.stride+f.cols]
		for j, v := range row {
			if v != 0 {
				rc[j] -= cb * v
			}
		}
	}
}

// rebuildCandidates refreshes the candidate list from a full pricing pass
// and returns the most attractive eligible column, or -1 at optimality.
func (f *flatSolver) rebuildCandidates() int {
	f.fullPrice()
	best, cand := selectCandidates(f.rc, f.priceLimit(), f.tol, f.cand)
	f.cand = cand
	return best
}

// priceDantzig returns the entering column under Dantzig pricing with a
// candidate list: surviving candidates from the last full pass are re-priced
// exactly (a handful of columns), and only when none remains attractive does
// the solver pay for a full pricing sweep.
func (f *flatSolver) priceDantzig() int {
	best, bestRC := -1, -f.tol
	w := 0
	for _, j := range f.cand {
		r := f.reducedCost(j)
		if r < -f.tol {
			f.cand[w] = j
			w++
			if r < bestRC {
				bestRC, best = r, j
			}
		}
	}
	f.cand = f.cand[:w]
	if best >= 0 {
		return best
	}
	return f.rebuildCandidates()
}

// priceBland returns the smallest-index eligible column with negative
// reduced cost (Bland's anti-cycling rule), or -1 at optimality.
func (f *flatSolver) priceBland() int {
	f.fullPrice()
	limit := f.priceLimit()
	for j := 0; j < limit; j++ {
		if f.rc[j] < -f.tol {
			return j
		}
	}
	return -1
}

// optimize runs simplex pivots for the current phase until optimality,
// unboundedness or the iteration limit.  It uses Dantzig pricing over a
// candidate list and switches to Bland's rule after a run of degenerate
// pivots to guarantee termination.
func (f *flatSolver) optimize(maxIter int) Status {
	degenerate := 0
	lastObj := f.objectiveValue()
	f.cand = f.cand[:0]
	for {
		if f.iterations >= maxIter {
			return StatusIterLimit
		}
		var enter int
		if degenerate >= degenerateSwitch {
			enter = f.priceBland()
		} else {
			enter = f.priceDantzig()
		}
		if enter < 0 {
			return StatusOptimal
		}
		leave := f.ratioTest(enter)
		if leave < 0 {
			return StatusUnbounded
		}
		f.pivot(leave, enter)
		f.iterations++
		obj := f.objectiveValue()
		if obj >= lastObj-f.tol {
			degenerate++
		} else {
			degenerate = 0
		}
		lastObj = obj
	}
}

// ratioTest picks the leaving row for the entering column, breaking ties
// towards the smallest basis index (lexicographic anti-cycling bias).
func (f *flatSolver) ratioTest(enter int) int {
	leave := -1
	bestRatio := math.Inf(1)
	for i := 0; i < f.rows; i++ {
		aij := f.a[i*f.stride+enter]
		if aij <= f.tol {
			continue
		}
		ratio := f.a[i*f.stride+f.cols] / aij
		if ratio < bestRatio-f.tol ||
			(math.Abs(ratio-bestRatio) <= f.tol && (leave < 0 || f.basis[i] < f.basis[leave])) {
			bestRatio = ratio
			leave = i
		}
	}
	return leave
}

// pivot performs a Gauss-Jordan pivot on (row, col) over the flat tableau.
func (f *flatSolver) pivot(row, col int) {
	stride := f.stride
	r := f.a[row*stride : row*stride+stride]
	inv := 1.0 / r[col]
	for j := range r {
		r[j] *= inv
	}
	for i := 0; i < f.rows; i++ {
		if i == row {
			continue
		}
		ri := f.a[i*stride : i*stride+stride]
		factor := ri[col]
		if factor == 0 {
			continue
		}
		for j, v := range r {
			if v != 0 {
				ri[j] -= factor * v
			}
		}
		ri[col] = 0
	}
	f.basis[row] = col
}

// driveOutArtificials removes artificial variables from the basis after
// phase one, pivoting on any usable structural column, or neutralising the
// row when it has become redundant.
func (f *flatSolver) driveOutArtificials() {
	for i := 0; i < f.rows; i++ {
		if f.basis[i] < f.artLo {
			continue
		}
		pivoted := false
		row := f.a[i*f.stride : i*f.stride+f.artLo]
		for j, v := range row {
			if math.Abs(v) > f.tol {
				f.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// The row is all zeros over structural columns: the constraint
			// is redundant; keep the artificial basic at value zero.  Zero
			// the RHS to guard against accumulated round-off.
			f.a[i*f.stride+f.cols] = 0
		}
	}
}

// extract reads the current basic solution restricted to problem variables.
func (f *flatSolver) extract() []float64 {
	x := make([]float64, f.numVars)
	for i := 0; i < f.rows; i++ {
		b := f.basis[i]
		if b < f.numVars {
			v := f.a[i*f.stride+f.cols]
			if v < 0 && v > -f.tol {
				v = 0
			}
			x[b] = v
		}
	}
	return x
}

// solution assembles the Solution for the given terminal status.
func (f *flatSolver) solution(status Status, p *Problem) *Solution {
	sol := &Solution{
		Status:           status,
		Iterations:       f.iterations,
		Phase1Iterations: f.phase1Iters,
		PricingPasses:    f.fullPasses,
		TableauAllocs:    f.allocs,
	}
	if status == StatusOptimal {
		sol.X = f.extract()
		sol.Objective = p.Value(sol.X)
	}
	return sol
}
