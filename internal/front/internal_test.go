package front

import (
	"testing"
	"time"
)

// TestRingDeterministicAndComplete: same names → same order; every backend
// appears exactly once in every walk; the owner changes with the key.
func TestRingDeterministicAndComplete(t *testing.T) {
	names := []string{"http://a:1", "http://b:2", "http://c:3"}
	r1 := newRing(names, 64)
	r2 := newRing(names, 64)

	owners := make(map[int]int)
	for key := uint64(0); key < 4096; key++ {
		o1 := r1.order(key * 0x9e3779b97f4a7c15)
		o2 := r2.order(key * 0x9e3779b97f4a7c15)
		if len(o1) != 3 {
			t.Fatalf("order returned %d backends, want 3", len(o1))
		}
		seen := map[int]bool{}
		for i, b := range o1 {
			if o2[i] != b {
				t.Fatalf("two identical rings disagree for key %d", key)
			}
			if seen[b] {
				t.Fatalf("backend %d repeated in walk %v", b, o1)
			}
			seen[b] = true
		}
		owners[o1[0]]++
	}
	// 64 vnodes over 3 backends: no backend should own a trivial share.
	for b := 0; b < 3; b++ {
		if owners[b] < 4096/10 {
			t.Errorf("backend %d owns only %d/4096 keys; ring is badly unbalanced", b, owners[b])
		}
	}
}

// TestRingAffinityStableUnderGrowth: keys mostly keep their owner when a
// backend joins — the property that makes backend caches survive fleet
// resizes.
func TestRingAffinityStableUnderGrowth(t *testing.T) {
	small := newRing([]string{"http://a:1", "http://b:2"}, 64)
	grown := newRing([]string{"http://a:1", "http://b:2", "http://c:3"}, 64)
	moved := 0
	const keys = 4096
	for key := uint64(0); key < keys; key++ {
		k := key * 0x9e3779b97f4a7c15
		before := small.order(k)[0]
		after := grown.order(k)[0]
		if after != before && after != 2 {
			moved++ // moved between the two survivors: consistent hashing forbids this in the ideal
		}
	}
	if moved > keys/10 {
		t.Errorf("%d/%d keys moved between surviving backends when a third joined", moved, keys)
	}
}

// TestBreakerLifecycle drives the closed → open → half-open → closed cycle
// with an injected clock.
func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(2, time.Second)
	b.now = func() time.Time { return now }

	if !b.allow() {
		t.Fatal("fresh breaker refuses")
	}
	b.onFailure()
	if !b.allow() {
		t.Fatal("breaker opened below threshold")
	}
	b.onFailure() // second consecutive failure: opens
	if b.allow() {
		t.Fatal("breaker did not open at threshold")
	}
	if got := b.snapshot(); got != "open" {
		t.Fatalf("state %q, want open", got)
	}

	now = now.Add(1500 * time.Millisecond) // past cooldown
	if !b.allow() {
		t.Fatal("half-open probe refused after cooldown")
	}
	if b.allow() {
		t.Fatal("second concurrent half-open probe allowed")
	}
	b.onFailure() // probe failed: open again
	if b.allow() {
		t.Fatal("breaker closed after a failed probe")
	}

	now = now.Add(1500 * time.Millisecond)
	if !b.allow() {
		t.Fatal("second half-open probe refused")
	}
	b.onSuccess()
	if got := b.snapshot(); got != "closed" {
		t.Fatalf("state %q after successful probe, want closed", got)
	}
	if !b.allow() || !b.allow() {
		t.Fatal("closed breaker refuses traffic")
	}

	// A success resets the consecutive-failure count.
	b.onFailure()
	b.onSuccess()
	b.onFailure()
	if !b.allow() {
		t.Fatal("non-consecutive failures opened the breaker")
	}
}
