package front_test

import (
	"testing"
	"time"

	"pfcache/internal/faultinject"
	"pfcache/internal/front"
)

// TestFrontStatsTimeoutBoundsSlowBackend pins the /v1/stats fan-in bound: a
// backend that answers slowly (here: behind a latency-injecting proxy) loses
// its Stats block but cannot stall the aggregate — the front's reply returns
// within the per-backend deadline, not the backend's latency.
func TestFrontStatsTimeoutBoundsSlowBackend(t *testing.T) {
	fast := newBackend(t)
	slow := newBackend(t)
	p := faultinject.New(slow.URL)
	t.Cleanup(p.Close)

	const statsTimeout = 75 * time.Millisecond
	f, _ := newFront(t, []string{fast.URL, p.URL()}, func(o *front.Options) {
		o.StatsTimeout = statsTimeout
	})

	// Both backends healthy and fast: both Stats blocks must be present.
	deadline := time.Now().Add(5 * time.Second)
	for f.Stats(t.Context()).HealthyBackends != 2 {
		if time.Now().After(deadline) {
			t.Fatal("front never saw both backends healthy")
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, b := range f.Stats(t.Context()).Backends {
		if b.Stats == nil {
			t.Fatalf("fast healthy backend %s has no stats block", b.URL)
		}
	}

	// Now one backend turns slow — far past the stats deadline, but well
	// under the health timeout, so it stays in the healthy set and the stats
	// fan-in still queries it.
	const latency = 600 * time.Millisecond
	p.SetLatency(latency)

	start := time.Now()
	stats := f.Stats(t.Context())
	elapsed := time.Since(start)
	// The generous margin (deadline + half the injected latency) keeps the
	// bound meaningful without flaking on loaded -race runs: an unbounded
	// fan-in would take the full latency or longer.
	if elapsed >= latency {
		t.Errorf("stats fan-in took %v, not bounded by the %v per-backend deadline", elapsed, statsTimeout)
	}
	if stats.HealthyBackends != 2 {
		t.Fatalf("healthy backends = %d during latency, want 2 (latency must stay under the health timeout)", stats.HealthyBackends)
	}
	var sawFast, sawSlow bool
	for _, b := range stats.Backends {
		switch b.URL {
		case fast.URL:
			sawFast = true
			if b.Stats == nil {
				t.Error("fast backend lost its stats block to the slow one")
			}
		case p.URL():
			sawSlow = true
			if b.Stats != nil {
				t.Error("slow backend delivered stats inside a deadline it cannot meet")
			}
		}
	}
	if !sawFast || !sawSlow {
		t.Fatalf("stats reply missing a backend entry: %+v", stats.Backends)
	}

	// Latency cleared: the slow backend's stats come back — the timeout is
	// what cut them off, not a sticky failure state.
	p.SetLatency(0)
	for _, b := range f.Stats(t.Context()).Backends {
		if b.URL == p.URL() && b.Stats == nil {
			t.Error("recovered backend still has no stats block")
		}
	}
}
