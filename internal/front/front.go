// Package front is the fault-tolerant multi-backend tier in front of a
// fleet of pcserve processes (command pcfront).
//
// Schedule requests are routed by consistent-hashing the instance's
// canonical fingerprint across the backends, so the same instance always
// lands on the same backend — keeping that backend's response cache and
// warm-started shard solvers hot — while the surrounding machinery makes a
// single stuck, dead or overloaded backend invisible to clients:
//
//   - every request runs under a deadline, split into bounded attempts;
//   - a failed attempt (connection error, 5xx, truncated body) retries on
//     the next distinct backend in ring order, after an exponential backoff
//     with jitter;
//   - an active health checker polls each backend's /readyz with fail and
//     restore thresholds, steering routing away from dead backends between
//     requests;
//   - a per-backend circuit breaker fences backends that fail real traffic,
//     with a half-open probe after a cooldown;
//   - sweeps fan out per-experiment across the healthy backends and stream
//     each experiment's result as an NDJSON line the moment it completes, so
//     one slow backend or experiment cannot head-of-line-block the rest.
package front

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pfcache/internal/service"
)

// Options configures a Front.
type Options struct {
	// Backends are the pcserve base URLs (e.g. "http://10.0.0.1:8080").
	Backends []string
	// Replicas is the number of virtual ring points per backend (0 = 64).
	Replicas int

	// HealthInterval is the readiness poll period (0 = 1s); HealthTimeout
	// bounds one probe (0 = HealthInterval); HealthPath is the probed
	// endpoint (empty = "/readyz").
	HealthInterval time.Duration
	HealthTimeout  time.Duration
	HealthPath     string
	// FailThreshold consecutive failed probes mark a backend unhealthy
	// (0 = 3); RestoreThreshold consecutive successes restore it (0 = 2).
	FailThreshold    int
	RestoreThreshold int

	// RequestTimeout is the overall per-request deadline across all retry
	// attempts (0 = 15s).  AttemptTimeout bounds a single attempt (0 = 5s,
	// clamped to the remaining budget).
	RequestTimeout time.Duration
	AttemptTimeout time.Duration
	// MaxAttempts is the total number of tries per request across backends
	// (0 = number of backends, at least 3).
	MaxAttempts int
	// RetryBaseDelay seeds the exponential backoff between attempts
	// (0 = 25ms); RetryMaxDelay caps it (0 = 1s).  Actual delays are
	// jittered to half-to-full of the nominal value.
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration

	// BreakerThreshold consecutive request failures open a backend's
	// circuit (0 = 5); BreakerCooldown is the open interval before a
	// half-open probe (0 = 2s).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// SweepTimeout is the overall deadline of one fanned-out sweep
	// (0 = 10min; experiments are slow compared to schedule requests).
	SweepTimeout time.Duration

	// StatsTimeout bounds each per-backend /v1/stats fetch during stats
	// aggregation (0 = 2s).  The fan-in runs the fetches concurrently, so
	// this is also roughly the worst-case latency one slow backend can add
	// to GET /v1/stats on the front.
	StatsTimeout time.Duration

	// SessionTranscripts bounds the session transcripts the front retains
	// for transparent replay after a backend loses a session (0 = 1024).
	SessionTranscripts int

	// Client overrides the HTTP client used for backend traffic and health
	// probes (nil = a client with sane timeouts).
	Client *http.Client
}

// backend is one pcserve replica plus its tracking state.
type backend struct {
	name string // base URL, also the ring identity
	hc   *healthChecker
	br   *breaker

	requests atomic.Uint64 // attempts sent to this backend
	failures atomic.Uint64 // attempts that failed (network, 5xx, truncation)
}

// Front routes requests across the backends.  It implements http.Handler.
type Front struct {
	opts        Options
	client      *http.Client
	backends    []*backend
	ring        *ring
	mux         *http.ServeMux
	transcripts *transcriptStore

	requests       atomic.Uint64 // schedule requests accepted
	retries        atomic.Uint64 // extra attempts beyond each request's first
	sweeps         atomic.Uint64 // fan-out sweeps served
	rr             atomic.Uint64 // round-robin cursor for non-affine work
	sessionCreates atomic.Uint64 // sessions opened through this front
	sessionReplays atomic.Uint64 // sessions rebuilt on a backend by transcript replay
}

// New builds a front tier over the given backends and starts the health
// checkers.  Close must be called to stop them.
func New(opts Options) (*Front, error) {
	if len(opts.Backends) == 0 {
		return nil, errors.New("front: at least one backend is required")
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = 15 * time.Second
	}
	if opts.AttemptTimeout <= 0 {
		opts.AttemptTimeout = 5 * time.Second
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = max(3, len(opts.Backends))
	}
	if opts.RetryBaseDelay <= 0 {
		opts.RetryBaseDelay = 25 * time.Millisecond
	}
	if opts.RetryMaxDelay <= 0 {
		opts.RetryMaxDelay = time.Second
	}
	if opts.SweepTimeout <= 0 {
		opts.SweepTimeout = 10 * time.Minute
	}
	if opts.StatsTimeout <= 0 {
		opts.StatsTimeout = 2 * time.Second
	}
	if opts.HealthPath == "" {
		opts.HealthPath = "/readyz"
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}

	f := &Front{opts: opts, client: client, mux: http.NewServeMux(),
		transcripts: newTranscriptStore(opts.SessionTranscripts)}
	names := make([]string, len(opts.Backends))
	for i, raw := range opts.Backends {
		name := strings.TrimRight(strings.TrimSpace(raw), "/")
		if name == "" {
			return nil, fmt.Errorf("front: backend %d has an empty URL", i)
		}
		names[i] = name
		b := &backend{
			name: name,
			hc: newHealthChecker(name+opts.HealthPath, client,
				opts.HealthInterval, opts.HealthTimeout,
				opts.FailThreshold, opts.RestoreThreshold),
			br: newBreaker(opts.BreakerThreshold, opts.BreakerCooldown),
		}
		f.backends = append(f.backends, b)
	}
	f.ring = newRing(names, opts.Replicas)

	f.mux.HandleFunc("POST /v1/schedule", f.handleSchedule)
	f.mux.HandleFunc("POST /v1/session", f.handleSessionCreate)
	f.mux.HandleFunc("POST /v1/session/{id}/extend", f.handleSessionExtend)
	f.mux.HandleFunc("DELETE /v1/session/{id}", f.handleSessionClose)
	f.mux.HandleFunc("POST /v1/sweep", f.handleSweep)
	f.mux.HandleFunc("GET /v1/stats", f.handleStats)
	f.mux.HandleFunc("GET /healthz", f.handleHealth)
	f.mux.HandleFunc("GET /readyz", f.handleReady)

	for _, b := range f.backends {
		b.hc.run()
	}
	return f, nil
}

// Close stops the health checkers.
func (f *Front) Close() {
	for _, b := range f.backends {
		b.hc.close()
	}
}

// ServeHTTP dispatches to the front endpoints, converting handler panics
// into 500s.
func (f *Front) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			httpError(w, http.StatusInternalServerError, fmt.Errorf("front: internal panic: %v", rec))
		}
	}()
	f.mux.ServeHTTP(w, r)
}

// httpError reports err with the given status as a JSON body, mirroring the
// backend's error shape.
func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// maxRequestBody mirrors the backends' request-body bound: oversized bodies
// are refused at the edge instead of being proxied inward.
const maxRequestBody = 16 << 20

// bufferedResponse is one backend's reply, fully read into memory.  Reading
// the whole body before touching the client's connection is what lets the
// front retry a mid-body truncation invisibly: nothing is sent downstream
// until a complete, consistent reply is in hand.
type bufferedResponse struct {
	status  int
	header  http.Header
	body    []byte
	backend string
}

// errShortBody marks a reply whose body ended before its declared length.
var errShortBody = errors.New("front: backend response truncated")

// attempt sends one request to one backend and reads the reply fully.
// A nil error with status >= 500 is still a failed attempt for the caller.
func (f *Front) attempt(ctx context.Context, b *backend, method, path string, body []byte) (*bufferedResponse, error) {
	actx, cancel := context.WithTimeout(ctx, f.opts.AttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, method, b.name+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if len(body) > 0 {
		req.Header.Set("Content-Type", "application/json")
	}
	b.requests.Add(1)
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errShortBody, err)
	}
	if resp.ContentLength >= 0 && int64(len(payload)) != resp.ContentLength {
		return nil, errShortBody
	}
	return &bufferedResponse{status: resp.StatusCode, header: resp.Header, body: payload, backend: b.name}, nil
}

// forward runs the retry loop: try candidates (backend indices in preference
// order) under ctx's deadline, skipping unhealthy/tripped backends while any
// viable one remains, backing off with jitter between attempts.  It returns
// the first complete non-5xx reply.  `retried` reports whether extra
// attempts were spent.
func (f *Front) forward(ctx context.Context, candidates []int, method, path string, body []byte) (*bufferedResponse, bool, error) {
	var lastErr error
	attempts := 0
	retried := false
	// Round 0 respects health and breaker state; if that filters everyone
	// out (mass outage, cold breakers), a final unfiltered round gives the
	// request its last chance instead of failing without trying.
	for round := 0; round < 2 && attempts < f.opts.MaxAttempts; round++ {
		for _, idx := range candidates {
			if attempts >= f.opts.MaxAttempts {
				break
			}
			if err := ctx.Err(); err != nil {
				return nil, retried, fmt.Errorf("front: request deadline exhausted after %d attempts: %w (last: %v)", attempts, err, lastErr)
			}
			b := f.backends[idx]
			if round == 0 {
				if !b.hc.healthy.Load() {
					continue
				}
				if !b.br.allow() {
					continue
				}
			}
			if attempts > 0 {
				retried = true
				f.retries.Add(1)
				f.backoff(ctx, attempts-1)
			}
			attempts++
			resp, err := f.attempt(ctx, b, method, path, body)
			if err != nil {
				b.failures.Add(1)
				b.br.onFailure()
				lastErr = err
				continue
			}
			if resp.status >= 500 {
				// The backend answered but could not serve (shed, panic,
				// internal error): a failure for the breaker, a retryable
				// event for the request.
				b.failures.Add(1)
				b.br.onFailure()
				lastErr = fmt.Errorf("front: %s answered %d: %s", b.name, resp.status, strings.TrimSpace(string(resp.body)))
				continue
			}
			b.br.onSuccess()
			return resp, retried, nil
		}
	}
	if lastErr == nil {
		lastErr = errors.New("front: no backends available")
	}
	return nil, retried, fmt.Errorf("front: all %d attempts failed: %w", attempts, lastErr)
}

// backoff sleeps the jittered exponential delay for the given retry number,
// or returns early when ctx ends.
func (f *Front) backoff(ctx context.Context, retry int) {
	d := f.opts.RetryBaseDelay << uint(min(retry, 20))
	if d > f.opts.RetryMaxDelay {
		d = f.opts.RetryMaxDelay
	}
	// Jitter into [d/2, d): desynchronises a thundering herd of retries
	// after a backend death.
	d = d/2 + time.Duration(rand.Int64N(int64(d/2)+1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// writeBuffered relays a buffered backend reply to the client, tagging which
// backend served it.
func writeBuffered(w http.ResponseWriter, resp *bufferedResponse) {
	if ct := resp.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if xc := resp.header.Get("X-Cache"); xc != "" {
		w.Header().Set("X-Cache", xc)
	}
	w.Header().Set("X-Backend", resp.backend)
	w.WriteHeader(resp.status)
	w.Write(resp.body)
}

func (f *Front) handleSchedule(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("front: request body exceeds %d bytes", tooLarge.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, fmt.Errorf("front: reading request body: %w", err))
		return
	}
	// Decode and build the instance locally: it validates the request at
	// the edge (bad requests never consume a backend attempt) and yields
	// the canonical fingerprint the ring routes by.
	var req service.ScheduleRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("front: bad request body: %w", err))
		return
	}
	if req.Strategy == "" {
		httpError(w, http.StatusBadRequest, errors.New("front: strategy must be set"))
		return
	}
	in, err := req.BuildInstance()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	f.requests.Add(1)

	ctx, cancel := context.WithTimeout(r.Context(), f.opts.RequestTimeout)
	defer cancel()
	// The original raw bytes are forwarded (not a re-marshalling), so the
	// backend computes exactly the cache key a direct client would produce.
	resp, _, err := f.forward(ctx, f.ring.order(in.Fingerprint()), "POST", "/v1/schedule", raw)
	if err != nil {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusBadGateway, err)
		return
	}
	writeBuffered(w, resp)
}

// healthyOrder returns backend indices for non-affine work (sweeps, stats):
// healthy backends first, rotated by the round-robin cursor for spread, then
// the unhealthy ones as a last resort.
func (f *Front) healthyOrder(shift uint64) []int {
	var healthy, down []int
	for i, b := range f.backends {
		if b.hc.healthy.Load() {
			healthy = append(healthy, i)
		} else {
			down = append(down, i)
		}
	}
	if len(healthy) > 1 {
		k := int(shift % uint64(len(healthy)))
		healthy = append(healthy[k:], healthy[:k]...)
	}
	return append(healthy, down...)
}

// sweepLine is one NDJSON line of a fanned-out sweep: the experiment, the
// backend that ran it, and either its sweep result (the same SweepResponse
// JSON a direct /v1/sweep returns, compacted) or an error.
type sweepLine struct {
	ID      string          `json:"id"`
	Backend string          `json:"backend,omitempty"`
	Sweep   json.RawMessage `json:"sweep,omitempty"`
	Error   string          `json:"error,omitempty"`
}

func (f *Front) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req service.SweepRequest
	err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody)).Decode(&req)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("front: request body exceeds %d bytes", tooLarge.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, fmt.Errorf("front: bad request body: %w", err))
		return
	}
	exps, err := service.ResolveExperiments(req.IDs)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	f.sweeps.Add(1)

	ctx, cancel := context.WithTimeout(r.Context(), f.opts.SweepTimeout)
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	var wmu sync.Mutex // one experiment's line at a time
	emit := func(line sweepLine) {
		wmu.Lock()
		defer wmu.Unlock()
		json.NewEncoder(w).Encode(line)
		if flusher != nil {
			flusher.Flush()
		}
	}

	// Fan out one single-experiment sweep per experiment, spread round-robin
	// over the healthy backends, each with the full retry machinery.  Lines
	// stream in completion order: a slow experiment (or a slow backend)
	// delays only its own line.
	var wg sync.WaitGroup
	for _, e := range exps {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			one := req
			one.IDs = []string{id}
			body, merr := json.Marshal(&one)
			if merr != nil {
				emit(sweepLine{ID: id, Error: merr.Error()})
				return
			}
			// The cursor alone spreads the fan-out: each goroutine draws a
			// distinct consecutive shift.  (Adding the loop index on top
			// would advance the shift by two per experiment, which for an
			// even healthy count degenerates to one backend.)
			resp, _, ferr := f.forward(ctx, f.healthyOrder(f.rr.Add(1)), "POST", "/v1/sweep", body)
			if ferr != nil {
				emit(sweepLine{ID: id, Error: ferr.Error()})
				return
			}
			if resp.status != http.StatusOK {
				emit(sweepLine{ID: id, Backend: resp.backend,
					Error: fmt.Sprintf("backend answered %d: %s", resp.status, strings.TrimSpace(string(resp.body)))})
				return
			}
			var compact bytes.Buffer
			if cerr := json.Compact(&compact, resp.body); cerr != nil {
				emit(sweepLine{ID: id, Backend: resp.backend, Error: cerr.Error()})
				return
			}
			emit(sweepLine{ID: id, Backend: resp.backend, Sweep: compact.Bytes()})
		}(e.ID)
	}
	wg.Wait()
}

func (f *Front) handleHealth(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "ok")
}

// handleReady: the front is ready when at least one backend is healthy.
func (f *Front) handleReady(w http.ResponseWriter, r *http.Request) {
	for _, b := range f.backends {
		if b.hc.healthy.Load() {
			fmt.Fprintln(w, "ok")
			return
		}
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	fmt.Fprintln(w, "no healthy backends")
}

func (f *Front) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(f.Stats(r.Context()))
}
