package front_test

// End-to-end chaos tests: a real front tier over three real backends, each
// behind a faultinject.Proxy, with backends killed and restarted and faults
// injected mid-run.  The invariant under test is the tentpole guarantee:
// clients of the front see zero errors and byte-identical responses no
// matter what the fleet does underneath.

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pfcache/internal/faultinject"
	"pfcache/internal/front"
	"pfcache/internal/lp"
	"pfcache/internal/service"
)

// chaosBackend is a pcserve-equivalent backend that can be killed and
// restarted on the same address, like a real process under a supervisor.
type chaosBackend struct {
	addr string // fixed after the first start

	mu   sync.Mutex
	svc  *service.Server
	hsrv *http.Server
}

func startChaosBackend(t *testing.T) *chaosBackend {
	t.Helper()
	b := &chaosBackend{}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b.addr = ln.Addr().String()
	b.serve(ln)
	t.Cleanup(b.kill)
	return b
}

func (b *chaosBackend) serve(ln net.Listener) {
	b.mu.Lock()
	defer b.mu.Unlock()
	// A generous queue so chaos load never sheds: every non-200 in these
	// tests must come from an injected fault, not organic overload.
	b.svc = service.NewServer(service.Options{Shards: 2, QueueDepth: 1024, CacheEntries: 128})
	b.hsrv = &http.Server{Handler: b.svc}
	go b.hsrv.Serve(ln)
}

// kill stops the listener and tears down every open connection, exactly what
// clients observe of a SIGKILLed process.
func (b *chaosBackend) kill() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.hsrv == nil {
		return
	}
	b.hsrv.Close()
	b.svc.Close()
	b.hsrv, b.svc = nil, nil
}

// restart brings a fresh backend up on the same address — with a cold cache
// and cold solvers, as a restarted process would have.
func (b *chaosBackend) restart(t *testing.T) {
	t.Helper()
	b.kill()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err := net.Listen("tcp", b.addr)
		if err == nil {
			b.serve(ln)
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("could not re-listen on %s: %v", b.addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (b *chaosBackend) url() string { return "http://" + b.addr }

// chaosFleet is three restartable backends, each behind a chaos proxy, with
// a front routing over the proxies.
type chaosFleet struct {
	backends []*chaosBackend
	proxies  []*faultinject.Proxy
	front    *front.Front
	url      string // front base URL
}

func startChaosFleet(t *testing.T, mod func(*front.Options)) *chaosFleet {
	t.Helper()
	fl := &chaosFleet{}
	var urls []string
	for i := 0; i < 3; i++ {
		b := startChaosBackend(t)
		p := faultinject.New(b.url())
		t.Cleanup(p.Close)
		fl.backends = append(fl.backends, b)
		fl.proxies = append(fl.proxies, p)
		urls = append(urls, p.URL())
	}
	f, fs := newFront(t, urls, func(o *front.Options) {
		o.MaxAttempts = 4
		o.AttemptTimeout = 10 * time.Second
		o.RequestTimeout = 30 * time.Second
		o.RetryBaseDelay = 5 * time.Millisecond
		o.RetryMaxDelay = 50 * time.Millisecond
		o.BreakerThreshold = 3
		o.BreakerCooldown = 100 * time.Millisecond
		if mod != nil {
			mod(o)
		}
	})
	fl.front, fl.url = f, fs.URL

	// Wait until the front has seen every backend healthy, so the run starts
	// from a known fleet state.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if fl.front.Stats(t.Context()).HealthyBackends == 3 {
			return fl
		}
		if time.Now().After(deadline) {
			t.Fatal("front never saw all 3 backends healthy")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// chaosRequests is the replayed request set: pairwise-distinct instance
// shapes (distinct n), so backend-side warm-started solvers cannot make a
// replay's LP iteration counts differ from the fresh-solver references.
func chaosRequests(t *testing.T) (reqs [][]byte, refs [][]byte) {
	t.Helper()
	set := []*service.ScheduleRequest{
		zipfSchedule("aggressive", 40, 11),
		zipfSchedule("conservative", 36, 12),
		zipfSchedule("combination", 32, 13),
		zipfSchedule("demand-lru", 28, 14),
		zipfSchedule("lp-optimal", 26, 15),
		zipfSchedule("lp-optimal", 22, 16),
		zipfSchedule("lp-optimal", 18, 17),
		zipfSchedule("opt", 13, 18),
	}
	for i, r := range set {
		want, err := service.ScheduleBody(r, lp.Options{WarmStart: true})
		if err != nil {
			t.Fatalf("reference %d: %v", i, err)
		}
		reqs = append(reqs, mustMarshal(t, r))
		refs = append(refs, want)
	}
	return reqs, refs
}

// replay drives `iters` rounds of the request set from `workers` concurrent
// clients, checking every response for status 200 and byte-identicality.
// After each completed request it calls tick(completed).
func replay(t *testing.T, url string, reqs, refs [][]byte, workers, iters int, tick func(int)) {
	t.Helper()
	var completed atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan string, workers*iters*len(reqs))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				i := (w + it) % len(reqs)
				resp, err := http.Post(url+"/v1/schedule", "application/json", bytes.NewReader(reqs[i]))
				if err != nil {
					errs <- fmt.Sprintf("worker %d iter %d: transport error: %v", w, it, err)
					continue
				}
				var body bytes.Buffer
				_, rerr := body.ReadFrom(resp.Body)
				resp.Body.Close()
				switch {
				case rerr != nil:
					errs <- fmt.Sprintf("worker %d iter %d: body read: %v", w, it, rerr)
				case resp.StatusCode != http.StatusOK:
					errs <- fmt.Sprintf("worker %d iter %d: status %d: %.200s", w, it, resp.StatusCode, body.String())
				case !bytes.Equal(body.Bytes(), refs[i]):
					errs <- fmt.Sprintf("worker %d iter %d: request %d body differs from reference", w, it, i)
				}
				if tick != nil {
					tick(int(completed.Add(1)))
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	n := 0
	for e := range errs {
		n++
		if n <= 10 {
			t.Error(e)
		}
	}
	if n > 10 {
		t.Errorf("... and %d more client-visible errors", n-10)
	}
}

// TestChaosKillRestartMidRun is the headline e2e: three backends serve a
// concurrent replay; one is killed a third of the way in and restarted (cold)
// two thirds in.  Clients must see zero errors and byte-identical bodies.
func TestChaosKillRestartMidRun(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e is slow")
	}
	fl := startChaosFleet(t, nil)
	reqs, refs := chaosRequests(t)

	const workers, iters = 8, 15
	total := workers * iters
	var killed, restarted atomic.Bool
	var mu sync.Mutex // serialises kill/restart against each other
	replay(t, fl.url, reqs, refs, workers, iters, func(done int) {
		switch {
		case done >= total/3 && killed.CompareAndSwap(false, true):
			mu.Lock()
			fl.backends[1].kill()
			mu.Unlock()
			t.Logf("killed backend 1 after %d/%d requests", done, total)
		case done >= 2*total/3 && killed.Load() && restarted.CompareAndSwap(false, true):
			mu.Lock()
			fl.backends[1].restart(t)
			mu.Unlock()
			t.Logf("restarted backend 1 after %d/%d requests", done, total)
		}
	})
	if !killed.Load() || !restarted.Load() {
		t.Fatalf("kill/restart never triggered (killed=%v restarted=%v)", killed.Load(), restarted.Load())
	}

	// The kill must have bitten, one way or the other: either a request hit
	// the dead backend and was retried elsewhere, or the health checker
	// observed the death (and later the revival) and routed around it.
	// Neither signal alone is guaranteed — they race — but both absent means
	// the dead window was never exercised.
	stats := fl.front.Stats(t.Context())
	if stats.Retries == 0 && stats.Backends[1].Transitions == 0 {
		t.Error("no retries and no health transitions on the killed backend — the kill never bit")
	}
	if stats.Requests != uint64(total) {
		t.Errorf("front counted %d requests, want %d", stats.Requests, total)
	}

	// And the restarted backend must rejoin the healthy set.
	deadline := time.Now().Add(5 * time.Second)
	for fl.front.Stats(t.Context()).HealthyBackends != 3 {
		if time.Now().After(deadline) {
			t.Fatal("restarted backend never rejoined the healthy set")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosInjectedFaultsInvisible floods the proxies with resets, 500s,
// truncations and latency; every client request must still succeed with a
// byte-identical body.
func TestChaosInjectedFaultsInvisible(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e is slow")
	}
	// Flakiness (not outage) is the regime here: give requests their full
	// candidate walk twice over rather than letting simultaneous fault hits
	// trip every breaker and strand a request with a single short round.
	fl := startChaosFleet(t, func(o *front.Options) {
		o.MaxAttempts = 6
		o.BreakerThreshold = 12
	})
	reqs, refs := chaosRequests(t)

	fl.proxies[2].SetLatency(10 * time.Millisecond)

	// Faults arrive spread across the run — every few completions one more
	// reset, 500 or truncation lands on a rotating proxy — the way a flaky
	// fleet actually fails.  (An all-at-once barrage that outnumbers a
	// request's whole retry budget is an outage, not flakiness; the
	// kill/restart test covers that regime.)
	var injected atomic.Int64
	replay(t, fl.url, reqs, refs, 6, 10, func(done int) {
		if done%6 != 0 {
			return
		}
		k := int(injected.Add(1))
		p := fl.proxies[k%len(fl.proxies)]
		switch (k / len(fl.proxies)) % 3 {
		case 0:
			p.InjectResets(1)
		case 1:
			p.InjectStatus500(1)
		default:
			p.InjectTruncations(1)
		}
	})

	var resets, statuses, truncs int64
	for _, p := range fl.proxies {
		resets += p.Resets.Load()
		statuses += p.Statuses.Load()
		truncs += p.Truncations.Load()
	}
	if resets == 0 || statuses == 0 || truncs == 0 {
		t.Errorf("fault budgets not exercised (resets=%d statuses=%d truncations=%d) — the run proved nothing",
			resets, statuses, truncs)
	}
	t.Logf("survived %d resets, %d injected 500s, %d truncations invisibly", resets, statuses, truncs)
}
